// Package xorbp is a from-scratch reproduction of "A Lightweight
// Isolation Mechanism for Secure Branch Predictors" (Zhao et al., DAC
// 2021): the XOR-BP / Noisy-XOR-BP content- and index-encoding defenses,
// the branch predictors they protect (Gshare, Tournament, TAGE, LTAGE,
// TAGE-SC-L, BTB, RAS), a cycle-approximate processor model with an OS
// scheduling layer, synthetic SPEC CPU 2006 workloads, the paper's
// proof-of-concept attacks, and a harness that regenerates every table
// and figure of the evaluation.
//
// This root package is the facade: it wires a secured predictor system
// in a few calls. The building blocks live in internal/ packages; the
// per-experiment runners in internal/experiment; the attacks in
// internal/attack. Command-line entry points: cmd/bpsim (performance
// figures/tables), cmd/attacksim (PoC attacks and Table 1), cmd/hwcost
// (Table 5).
package xorbp

import (
	"fmt"

	"xorbp/internal/core"
	"xorbp/internal/cpu"
	"xorbp/internal/experiment"
	"xorbp/internal/workload"
)

// Mechanism re-exports the isolation mechanism selector.
type Mechanism = core.Mechanism

// The isolation mechanisms of the paper.
const (
	// Baseline is the unprotected shared predictor.
	Baseline = core.Baseline
	// CompleteFlush flushes every table on a switch event.
	CompleteFlush = core.CompleteFlush
	// PreciseFlush flushes only the switching thread's entries.
	PreciseFlush = core.PreciseFlush
	// XOR is content encoding only (XOR-BP).
	XOR = core.XOR
	// NoisyXOR is content plus index encoding (Noisy-XOR-BP), the paper's
	// full proposal.
	NoisyXOR = core.NoisyXOR
)

// Options re-exports the isolation configuration.
type Options = core.Options

// DefaultOptions returns the paper's recommended configuration:
// Noisy-XOR-BP with Enhanced-XOR-PHT and key rotation on privilege
// changes.
func DefaultOptions() Options { return core.DefaultOptions() }

// OptionsFor returns Options for a named mechanism with paper defaults.
func OptionsFor(m Mechanism) Options { return core.OptionsFor(m) }

// Config describes a simulated system.
type Config struct {
	// Isolation selects and configures the defense.
	Isolation Options
	// Predictor names the direction predictor: "gshare", "tournament",
	// "ltage", "tage_sc_l" (the gem5 set) or "tage" (the FPGA prototype).
	Predictor string
	// SMTThreads is the number of hardware threads (1, 2 or 4). 1 selects
	// the FPGA single-threaded core configuration; >1 the gem5 SMT model.
	SMTThreads int
	// TimerPeriod is the scheduler quantum in cycles (0 = 2M, the scaled
	// stand-in for Linux's 8M-cycle slice).
	TimerPeriod uint64
	// Benchmarks are the modelled SPEC 2006 workloads to run (see
	// Benchmarks() for names). On a single-threaded core they time-share;
	// on SMT they run one per hardware thread.
	Benchmarks []string
	// Seed makes the whole simulation reproducible.
	Seed uint64
}

// System is a ready-to-run simulated processor with a secured predictor.
type System struct {
	core *cpu.Core
	ctrl *core.Controller
	cfg  Config
}

// New builds a System.
func New(cfg Config) (*System, error) {
	if cfg.Predictor == "" {
		cfg.Predictor = "tage"
	}
	if cfg.SMTThreads == 0 {
		cfg.SMTThreads = 1
	}
	if cfg.TimerPeriod == 0 {
		cfg.TimerPeriod = 2_000_000
	}
	if len(cfg.Benchmarks) == 0 {
		return nil, fmt.Errorf("xorbp: no benchmarks given")
	}
	var progs []workload.Program
	for i, name := range cfg.Benchmarks {
		p, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		progs = append(progs, workload.NewGenerator(p, cfg.Seed*1000+uint64(i)))
	}
	ctrl := core.NewController(cfg.Isolation, cfg.Seed)
	dir := experiment.NewDirPredictor(cfg.Predictor, ctrl)
	var mcfg cpu.Config
	if cfg.SMTThreads == 1 {
		mcfg = cpu.FPGAConfig()
	} else {
		mcfg = cpu.Gem5Config(cfg.SMTThreads)
	}
	c := cpu.New(mcfg, cpu.DefaultScheduler(cfg.TimerPeriod), ctrl, dir)
	c.Assign(progs...)
	return &System{core: c, ctrl: ctrl, cfg: cfg}, nil
}

// Result summarizes a measurement window.
type Result struct {
	// Cycles is the measured cycle count: target-attributed cycles on a
	// single-threaded core, wall cycles on SMT.
	Cycles uint64
	// Instructions retired by the target (first) benchmark.
	Instructions uint64
	// MPKI is the target's direction mispredictions per kilo-instruction.
	MPKI float64
	// PrivilegeSwitches and ContextSwitches during the window.
	PrivilegeSwitches, ContextSwitches uint64
}

// Run executes warmup instructions (untimed), then measures a window of
// measure instructions and returns the result. Both counts apply to the
// target benchmark on a single-threaded core and to the combined
// instruction stream on SMT (the paper's methodologies).
func (s *System) Run(warmup, measure uint64) Result {
	smt := s.cfg.SMTThreads > 1
	if smt {
		s.core.RunTotalInstructions(warmup)
	} else {
		s.core.RunTargetInstructions(warmup)
	}
	s.core.ResetStats()
	ctx0, priv0, _, _ := s.ctrl.Stats()

	var cycles uint64
	if smt {
		cycles = s.core.RunTotalInstructions(measure)
	} else {
		s.core.RunTargetInstructions(measure)
		cycles = s.core.ThreadCyclesOf(0, 0)
	}
	ctx1, priv1, _, _ := s.ctrl.Stats()
	st := s.core.ThreadStatsOf(0, 0)
	return Result{
		Cycles:            cycles,
		Instructions:      st.Instructions,
		MPKI:              st.MPKI(),
		PrivilegeSwitches: priv1 - priv0,
		ContextSwitches:   ctx1 - ctx0,
	}
}

// Overhead runs cfg against the same configuration with Baseline
// isolation and returns the normalized performance overhead — the
// measurement behind every performance figure in the paper.
func Overhead(cfg Config, warmup, measure uint64) (float64, error) {
	base := cfg
	base.Isolation = OptionsFor(Baseline)
	bs, err := New(base)
	if err != nil {
		return 0, err
	}
	ms, err := New(cfg)
	if err != nil {
		return 0, err
	}
	br := bs.Run(warmup, measure)
	mr := ms.Run(warmup, measure)
	return float64(mr.Cycles)/float64(br.Cycles) - 1, nil
}

// Benchmarks lists the modelled SPEC CPU 2006 workload names.
func Benchmarks() []string { return workload.Names() }

// Predictors lists the available direction predictor names.
func Predictors() []string {
	return append(experiment.PredictorNames(), "tage")
}
