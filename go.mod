module xorbp

go 1.24
