package xorbp

// The benchmark harness: one testing.B benchmark per table and figure in
// the paper's evaluation (DESIGN.md §4). Each benchmark runs its
// experiment at BenchScale and prints the same rows/series the paper
// reports. Regenerate everything at full scale with:
//
//	go run ./cmd/bpsim -scale full
//	go run ./cmd/attacksim
//	go run ./cmd/hwcost
//
// The benchmarks report ns/op for one full experiment regeneration;
// the rendered tables go to stdout on the first iteration.

import (
	"fmt"
	"testing"

	"xorbp/internal/attack"
	"xorbp/internal/core"
	"xorbp/internal/cpu"
	"xorbp/internal/experiment"
	"xorbp/internal/hwcost"
	"xorbp/internal/report"
	"xorbp/internal/runcache"
	"xorbp/internal/workload"
)

// benchTable runs one experiment per b.N iteration, printing the table
// once.
func benchTable(b *testing.B, name string, run func() *report.Table) {
	b.Helper()
	printed := false
	for i := 0; i < b.N; i++ {
		t := run()
		if !printed {
			fmt.Printf("\n%s\n", t.Render())
			printed = true
		}
	}
}

// session returns a fresh memoizing session at bench scale. NewSession
// sizes the engine's worker pool to the available CPUs; within one
// benchmark iteration all of a figure's independent simulations run
// concurrently.
func session() *experiment.Session {
	return experiment.NewSession(experiment.BenchScale())
}

// BenchmarkFigure1 regenerates Figure 1: Complete Flush overhead on the
// single-threaded core at the three flush periods.
func BenchmarkFigure1(b *testing.B) {
	benchTable(b, "fig1", func() *report.Table { return session().Figure1() })
}

// BenchmarkFigure2 regenerates Figure 2: Complete Flush overhead on SMT-2
// and SMT-4.
func BenchmarkFigure2(b *testing.B) {
	benchTable(b, "fig2", func() *report.Table { return session().Figure2() })
}

// BenchmarkFigure3 regenerates Figure 3: Complete vs Precise Flush on
// SMT-2.
func BenchmarkFigure3(b *testing.B) {
	benchTable(b, "fig3", func() *report.Table { return session().Figure3() })
}

// BenchmarkFigure7 regenerates Figure 7: XOR-BTB / Noisy-XOR-BTB
// overhead per case and timer period.
func BenchmarkFigure7(b *testing.B) {
	benchTable(b, "fig7", func() *report.Table { return session().Figure7() })
}

// BenchmarkFigure8 regenerates Figure 8: XOR-PHT / Noisy-XOR-PHT
// overhead.
func BenchmarkFigure8(b *testing.B) {
	benchTable(b, "fig8", func() *report.Table { return session().Figure8() })
}

// BenchmarkFigure9 regenerates Figure 9: the combined XOR-BP /
// Noisy-XOR-BP overhead.
func BenchmarkFigure9(b *testing.B) {
	benchTable(b, "fig9", func() *report.Table { return session().Figure9() })
}

// BenchmarkFigure10 regenerates Figure 10: three isolation mechanisms
// across four predictors on SMT-2.
func BenchmarkFigure10(b *testing.B) {
	benchTable(b, "fig10", func() *report.Table { return session().Figure10() })
}

// BenchmarkTable1 regenerates the Table 1 security matrix from the PoC
// attacks.
func BenchmarkTable1(b *testing.B) {
	benchTable(b, "table1", func() *report.Table {
		return attack.Table1(attack.QuickConfig())
	})
}

// BenchmarkTable2 renders the processor configurations.
func BenchmarkTable2(b *testing.B) {
	benchTable(b, "table2", experiment.Table2)
}

// BenchmarkTable3 renders the benchmark sets.
func BenchmarkTable3(b *testing.B) {
	benchTable(b, "table3", experiment.Table3)
}

// BenchmarkTable4 regenerates Table 4: privilege switches per Mcycle.
func BenchmarkTable4(b *testing.B) {
	benchTable(b, "table4", func() *report.Table { return session().Table4() })
}

// BenchmarkTable5 regenerates Table 5: area and timing overhead.
func BenchmarkTable5(b *testing.B) {
	benchTable(b, "table5", hwcost.Table5)
}

// BenchmarkPoCAccuracy regenerates the §5.5(3) training-accuracy
// comparison (96.5%/97.2% baseline anchors).
func BenchmarkPoCAccuracy(b *testing.B) {
	benchTable(b, "poc", func() *report.Table {
		return attack.PoCAccuracy(attack.QuickConfig())
	})
}

// BenchmarkMPKI regenerates the §6.3 baseline MPKI anchors per predictor.
func BenchmarkMPKI(b *testing.B) {
	benchTable(b, "mpki", func() *report.Table { return session().MPKI() })
}

// BenchmarkRunCacheReplay measures regenerating Figure 1 at bench scale
// entirely from a warmed persistent store — the cross-invocation replay
// path bpsim takes on its second run with -cache. Each iteration opens a
// fresh executor on the shared directory and must execute zero
// simulations; ns/op is the cost of opening the store plus decoding and
// assembling 72 cached results.
func BenchmarkRunCacheReplay(b *testing.B) {
	dir := b.TempDir()
	cachedSession := func() *experiment.Session {
		st, err := runcache.Open(dir, experiment.SchemaVersion())
		if err != nil {
			b.Fatal(err)
		}
		e := experiment.NewExecutor(0)
		e.SetStore(st)
		return experiment.NewSessionWith(experiment.BenchScale(), e)
	}
	cachedSession().Figure1() // warm the store (untimed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := cachedSession()
		s.Figure1()
		if n := s.Executor().Runs(); n != 0 {
			b.Fatalf("replay executed %d simulations, want 0", n)
		}
	}
}

// ---- ablation benches (DESIGN.md §5) ----

// ablationSession backs the ablation benchmarks with one engine-cached
// session (Table 3 case1 on the FPGA core), so every ablation pair shares
// the same baseline simulation instead of recomputing it.
var ablationSession = session()

// ablationOverhead measures one single-core configuration's overhead.
func ablationOverhead(opts core.Options) float64 {
	scale := ablationSession.Scale()
	return ablationSession.SingleCoreOverhead(opts,
		workload.SingleCorePairs()[0], scale.TimerPeriods[1])
}

// BenchmarkAblationRotateOnPrivilege compares key rotation on privilege
// changes (the paper's design) against per-level stable keys — the
// design choice behind the Table 4 discussion.
func BenchmarkAblationRotateOnPrivilege(b *testing.B) {
	for i := 0; i < b.N; i++ {
		on := core.OptionsFor(core.NoisyXOR)
		off := on
		off.RotateOnPrivilege = false
		if i == 0 {
			fmt.Printf("\nAblation: rotate-on-privilege on=%+.2f%% off=%+.2f%%\n",
				ablationOverhead(on)*100, ablationOverhead(off)*100)
		}
	}
}

// BenchmarkAblationEnhancedPHT compares plain XOR-PHT (entry-width key)
// against the Enhanced word-key schedule (§5.2).
func BenchmarkAblationEnhancedPHT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		enh := core.OptionsFor(core.NoisyXOR)
		plain := enh
		plain.EnhancedPHT = false
		if i == 0 {
			fmt.Printf("\nAblation: Enhanced-XOR-PHT on=%+.2f%% plain=%+.2f%%\n",
				ablationOverhead(enh)*100, ablationOverhead(plain)*100)
		}
	}
}

// BenchmarkAblationCodec compares the XOR codec against the strengthened
// rotate+XOR codec (§5.4).
func BenchmarkAblationCodec(b *testing.B) {
	for i := 0; i < b.N; i++ {
		xor := core.OptionsFor(core.NoisyXOR)
		rot := xor
		rot.Codec = core.RotXORCodec{}
		if i == 0 {
			fmt.Printf("\nAblation: codec xor=%+.2f%% rotxor=%+.2f%%\n",
				ablationOverhead(xor)*100, ablationOverhead(rot)*100)
		}
	}
}

// BenchmarkAblationScrambler compares the XOR index scrambler against the
// two-round Feistel extension (§5.4 "small lookup tables").
func BenchmarkAblationScrambler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		xor := core.OptionsFor(core.NoisyXOR)
		feistel := xor
		feistel.Scrambler = core.FeistelScrambler{}
		if i == 0 {
			fmt.Printf("\nAblation: scrambler xor=%+.2f%% feistel=%+.2f%%\n",
				ablationOverhead(xor)*100, ablationOverhead(feistel)*100)
		}
	}
}

// ---- microbenchmarks of the hot paths ----

// BenchmarkPredictorLookup measures raw predict+update throughput per
// predictor under Noisy-XOR-BP (the simulator's hot path).
func BenchmarkPredictorLookup(b *testing.B) {
	for _, name := range experiment.PredictorNames() {
		b.Run(name, func(b *testing.B) {
			ctrl := core.NewController(core.OptionsFor(core.NoisyXOR), 1)
			dir := experiment.NewDirPredictor(name, ctrl)
			d := core.Domain{Thread: 0, Priv: core.User}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pc := uint64(0x400000 + (i%509)*4)
				taken := i%3 != 0
				dir.Predict(d, pc)
				dir.Update(d, pc, taken)
			}
		})
	}
}

// BenchmarkSimulatorThroughput measures end-to-end simulated instructions
// per second for the FPGA configuration, under the production fast
// engine and the reference stepper it is verified against (ns/op is ns
// per simulated instruction; cmd/bpbench measures the full cell grid).
func BenchmarkSimulatorThroughput(b *testing.B) {
	for _, e := range []struct {
		name   string
		engine cpu.Engine
	}{{"fast", cpu.EngineFast}, {"reference", cpu.EngineReference}} {
		b.Run(e.name, func(b *testing.B) {
			ctrl := core.NewController(core.OptionsFor(core.NoisyXOR), 1)
			dir := experiment.NewDirPredictor("tage", ctrl)
			c := cpu.New(cpu.FPGAConfig(), cpu.DefaultScheduler(1_000_000), ctrl, dir)
			c.SetEngine(e.engine)
			c.Assign(workload.NewGenerator(workload.MustByName("gcc"), 1))
			b.ReportAllocs()
			b.ResetTimer()
			c.RunTargetInstructions(uint64(b.N))
		})
	}
}
