// BranchScope-style perception attack (§2.1): the attacker primes the
// victim's PHT entry to a weak state, single-steps the victim through one
// execution of a secret-dependent branch, then probes the entry and reads
// the secret from its own (mis)prediction. The demo also shows the §5.5
// scenario-4 corner case: plain fixed-width XOR leaks through a reference
// branch, which the Enhanced word-key schedule closes.
package main

import (
	"fmt"

	"xorbp/internal/attack"
	"xorbp/internal/core"
)

func main() {
	const bits = 4000

	fmt.Println("BranchScope secret-bit inference accuracy (chance = 50%)")
	fmt.Println()
	for _, m := range []core.Mechanism{core.Baseline, core.CompleteFlush,
		core.XOR, core.NoisyXOR} {
		acc := attack.BranchScope(core.OptionsFor(m), attack.SingleThreaded, bits, 1)
		fmt.Printf("  %-16s %6.2f%%\n", m, acc*100)
	}

	fmt.Println()
	fmt.Println("Reference-branch corner case (§5.5 scenario 4):")
	plain := core.OptionsFor(core.XOR)
	plain.Scope = core.StructPHT
	plain.EnhancedPHT = false
	enhanced := plain
	enhanced.EnhancedPHT = true
	rotxor := plain
	rotxor.Codec = core.RotXORCodec{}

	fmt.Printf("  %-22s %6.2f%%  (fixed key width leaks)\n", "plain XOR-PHT",
		attack.ReferencePerception(plain, bits, 1)*100)
	fmt.Printf("  %-22s %6.2f%%  (word-keyed schedule)\n", "Enhanced-XOR-PHT",
		attack.ReferencePerception(enhanced, bits, 1)*100)
	fmt.Printf("  %-22s %6.2f%%  (rotate+XOR codec, §5.4)\n", "RotXOR codec",
		attack.ReferencePerception(rotxor, bits, 1)*100)

	fmt.Println()
	fmt.Println("Single-step detector countermeasure (§5.5 scenario 3), which")
	fmt.Println("defends even the unprotected baseline by bypassing updates:")
	fmt.Printf("  %-22s %6.2f%%\n", "Baseline + detector",
		attack.BranchScopeWithDetector(core.OptionsFor(core.Baseline), bits, 1)*100)

	fmt.Println()
	fmt.Println("Single-stepping forces kernel round-trips; each one rotates the")
	fmt.Println("private keys, so the primed state is gone before the probe")
	fmt.Println("(§5.5 scenario 5).")
}
