// SMT isolation study: compares the three defenses on an SMT-2 core
// across the four gem5 predictors for one Table 3 pair — a single-pair
// slice of the paper's Figure 10. Complete Flush destroys the shared
// tables on every privilege switch of either thread; Noisy-XOR-BP only
// invalidates the rotating domain's own view.
package main

import (
	"fmt"
	"log"

	"xorbp"
)

func main() {
	const (
		warmup  = 2_000_000
		measure = 12_000_000
	)
	pair := []string{"zeusmp", "gobmk"} // Table 3 SMT case12

	fmt.Printf("SMT-2 isolation overhead on %v (warmup %dM, measure %dM)\n\n",
		pair, warmup/1_000_000, measure/1_000_000)
	fmt.Printf("%-12s %14s %14s %14s\n", "predictor",
		"CompleteFlush", "PreciseFlush", "Noisy-XOR-BP")

	for _, pred := range []string{"gshare", "tournament", "ltage", "tage_sc_l"} {
		row := fmt.Sprintf("%-12s", pred)
		for _, mech := range []xorbp.Mechanism{xorbp.CompleteFlush,
			xorbp.PreciseFlush, xorbp.NoisyXOR} {
			over, err := xorbp.Overhead(xorbp.Config{
				Isolation:  xorbp.OptionsFor(mech),
				Predictor:  pred,
				SMTThreads: 2,
				Benchmarks: pair,
				Seed:       1,
			}, warmup, measure)
			if err != nil {
				log.Fatal(err)
			}
			row += fmt.Sprintf(" %13.2f%%", over*100)
		}
		fmt.Println(row)
	}
	fmt.Println()
	fmt.Println("Paper shape (Figure 10): Noisy-XOR-BP beats Complete Flush by")
	fmt.Println("26-37% on average, and more accurate predictors pay more.")
}
