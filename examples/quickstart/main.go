// Quickstart: build a processor with the paper's Noisy-XOR-BP isolation,
// run a pair of modelled SPEC workloads, and print the performance
// overhead against the unprotected baseline — the measurement behind
// every performance figure in the paper.
package main

import (
	"fmt"
	"log"

	"xorbp"
)

func main() {
	cfg := xorbp.Config{
		Isolation:  xorbp.DefaultOptions(), // Noisy-XOR-BP, Enhanced-XOR-PHT
		Predictor:  "tage",                 // the FPGA prototype predictor
		Benchmarks: []string{"gcc", "calculix"},
		Seed:       1,
	}

	system, err := xorbp.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res := system.Run(2_000_000, 8_000_000)
	fmt.Printf("Noisy-XOR-BP run: %d instructions in %d cycles (IPC %.2f)\n",
		res.Instructions, res.Cycles,
		float64(res.Instructions)/float64(res.Cycles))
	fmt.Printf("  direction MPKI:      %.2f\n", res.MPKI)
	fmt.Printf("  privilege switches:  %d\n", res.PrivilegeSwitches)
	fmt.Printf("  context switches:    %d\n", res.ContextSwitches)

	over, err := xorbp.Overhead(cfg, 2_000_000, 8_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nOverhead vs unprotected baseline: %+.2f%%\n", over*100)
	fmt.Println("(The paper's Figure 9 reports < 1.3% on average for this setup.)")
}
