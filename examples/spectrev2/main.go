// Spectre-V2-style malicious BTB training (the paper's Listing 1): an
// attacker thread repeatedly installs its own target for a shared
// indirect branch, then lets the victim run. On the unprotected baseline
// the victim's front end speculatively jumps to the attacker's gadget;
// under XOR-BTB the stored tag and target decode to noise for the
// victim's key and the hijack collapses to the measurement-noise floor.
package main

import (
	"fmt"

	"xorbp/internal/attack"
	"xorbp/internal/core"
)

func main() {
	const iterations = 10000

	fmt.Println("Spectre-V2-style BTB training, 10000 iterations (Listing 1)")
	fmt.Println()
	for _, m := range []core.Mechanism{core.Baseline, core.CompleteFlush,
		core.XOR, core.NoisyXOR} {
		rate := attack.BTBTraining(core.OptionsFor(m), attack.SingleThreaded,
			iterations, 1)
		fmt.Printf("  %-16s hijack success: %6.2f%%\n", m, rate*100)
	}
	fmt.Println()
	fmt.Println("Same attack across SMT threads (no switches between phases):")
	for _, m := range []core.Mechanism{core.Baseline, core.CompleteFlush,
		core.XOR, core.NoisyXOR} {
		rate := attack.BTBTraining(core.OptionsFor(m), attack.SMT,
			iterations, 1)
		fmt.Printf("  %-16s hijack success: %6.2f%%\n", m, rate*100)
	}
	fmt.Println()
	fmt.Println("Paper anchors: 96.5% on the unprotected prototype, < 1% with")
	fmt.Println("XOR-based isolation; flushing cannot protect SMT (Table 1).")
}
