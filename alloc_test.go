package xorbp

// Steady-state allocation guards: the tentpole's zero-allocation
// contract for the simulation inner loop, enforced per predictor and
// end-to-end. Lazy per-thread state (TAGE fold banks, scratch) is
// warmed before measuring; after that, Predict/Update and the whole
// cycle loop must not touch the heap — an allocation on these paths
// costs GC pressure across millions of simulated branches per cell.

import (
	"testing"

	"xorbp/internal/core"
	"xorbp/internal/cpu"
	"xorbp/internal/experiment"
	"xorbp/internal/workload"
)

// predictorsUnderTest is the sweep-grid set plus the FPGA prototype.
func predictorsUnderTest() []string {
	return append(experiment.PredictorNames(), "tage")
}

func TestPredictorSteadyStateAllocs(t *testing.T) {
	for _, mech := range []core.Mechanism{core.Baseline, core.NoisyXOR, core.PreciseFlush} {
		for _, name := range predictorsUnderTest() {
			t.Run(mech.String()+"/"+name, func(t *testing.T) {
				ctrl := core.NewController(core.OptionsFor(mech), 1)
				dir := experiment.NewDirPredictor(name, ctrl)
				d := core.Domain{Thread: 0, Priv: core.User}
				step := func(i int) {
					pc := uint64(0x400000 + (i%509)*4)
					taken := i%3 != 0
					dir.Predict(d, pc)
					dir.Update(d, pc, taken)
				}
				for i := 0; i < 4096; i++ { // warm lazy thread state
					step(i)
				}
				i := 0
				avg := testing.AllocsPerRun(200, func() {
					step(i)
					i++
				})
				if avg != 0 {
					t.Fatalf("%s Predict/Update allocates %.1f objects per branch in steady state", name, avg)
				}
			})
		}
	}
}

func TestSimulatorSteadyStateAllocs(t *testing.T) {
	build := func(smt bool) *cpu.Core {
		ctrl := core.NewController(core.OptionsFor(core.NoisyXOR), 1)
		cfg, pred := cpu.FPGAConfig(), "tage"
		if smt {
			cfg, pred = cpu.Gem5Config(2), "ltage"
		}
		dir := experiment.NewDirPredictor(pred, ctrl)
		c := cpu.New(cfg, cpu.DefaultScheduler(200_000), ctrl, dir)
		c.Assign(
			workload.NewGenerator(workload.MustByName("gcc"), 1),
			workload.NewGenerator(workload.MustByName("calculix"), 2),
		)
		return c
	}
	t.Run("single", func(t *testing.T) {
		c := build(false)
		c.RunTargetInstructions(400_000) // warm tables, rings, generator buffers
		avg := testing.AllocsPerRun(20, func() { c.RunTargetInstructions(10_000) })
		if avg != 0 {
			t.Fatalf("single-core inner loop allocates %.1f objects per 10k instructions", avg)
		}
	})
	t.Run("smt2", func(t *testing.T) {
		c := build(true)
		c.RunTotalInstructions(600_000)
		avg := testing.AllocsPerRun(20, func() { c.RunTotalInstructions(10_000) })
		if avg != 0 {
			t.Fatalf("SMT inner loop allocates %.1f objects per 10k instructions", avg)
		}
	})
	t.Run("reference-engine", func(t *testing.T) {
		c := build(false)
		c.SetEngine(cpu.EngineReference)
		c.RunTargetInstructions(400_000)
		avg := testing.AllocsPerRun(20, func() { c.RunTargetInstructions(10_000) })
		if avg != 0 {
			t.Fatalf("reference stepper allocates %.1f objects per 10k instructions", avg)
		}
	})
}
