package xorbp

import "testing"

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config should error (no benchmarks)")
	}
	if _, err := New(Config{Benchmarks: []string{"not-a-benchmark"}}); err == nil {
		t.Fatal("unknown benchmark should error")
	}
}

func TestRunProducesResult(t *testing.T) {
	s, err := New(Config{
		Isolation:  DefaultOptions(),
		Benchmarks: []string{"gcc", "calculix"},
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The window must cover several syscalls (gcc: ~1.3 per Minstr).
	r := s.Run(200_000, 3_000_000)
	if r.Cycles == 0 || r.Instructions < 3_000_000 {
		t.Fatalf("implausible result: %+v", r)
	}
	if r.MPKI <= 0 || r.MPKI > 100 {
		t.Fatalf("implausible MPKI: %v", r.MPKI)
	}
	if r.PrivilegeSwitches == 0 {
		t.Fatal("no privilege switches observed")
	}
}

func TestOverheadSmall(t *testing.T) {
	over, err := Overhead(Config{
		Isolation:  DefaultOptions(),
		Benchmarks: []string{"milc", "povray"},
		Seed:       2,
	}, 1_000_000, 3_000_000)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline: low single-digit percent.
	if over < -0.02 || over > 0.10 {
		t.Fatalf("Noisy-XOR-BP overhead %.2f%% outside the plausible band", over*100)
	}
}

func TestSMTSystem(t *testing.T) {
	s, err := New(Config{
		Isolation:  OptionsFor(NoisyXOR),
		Predictor:  "ltage",
		SMTThreads: 2,
		Benchmarks: []string{"zeusmp", "lbm"},
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := s.Run(500_000, 2_000_000)
	if r.Cycles == 0 {
		t.Fatal("SMT run produced no cycles")
	}
}

func TestRegistryAccessors(t *testing.T) {
	if len(Benchmarks()) < 20 {
		t.Fatalf("expected >= 20 modelled benchmarks, got %d", len(Benchmarks()))
	}
	preds := Predictors()
	want := map[string]bool{"gshare": true, "tournament": true, "ltage": true,
		"tage_sc_l": true, "tage": true}
	for _, p := range preds {
		delete(want, p)
	}
	if len(want) != 0 {
		t.Fatalf("missing predictors: %v", want)
	}
}

func TestDeterministicFacade(t *testing.T) {
	run := func() Result {
		s, err := New(Config{
			Isolation:  DefaultOptions(),
			Benchmarks: []string{"hmmer", "GemsFDTD"},
			Seed:       9,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s.Run(100_000, 300_000)
	}
	if run() != run() {
		t.Fatal("facade runs are not deterministic")
	}
}
