package chaos

// FleetFaults implements fleet.WorkerFaults: it drives a pull worker's
// failure modes from the plan's fleet rules. Attach with
// fleet.PullWorker.SetFaults.
type FleetFaults struct {
	inj *Injector
}

// NewFleetFaults builds the worker-fault hook over inj.
func NewFleetFaults(inj *Injector) *FleetFaults { return &FleetFaults{inj: inj} }

// CrashBatch reports whether the worker should die mid-batch here:
// abandon unfinished specs without completing or nacking them, and
// stop heartbeating, so the lease lapses and the fleet steals the
// remainder.
func (f *FleetFaults) CrashBatch() bool { return f.inj.Hit(WorkerCrash{}) }

// DropHeartbeat reports whether to suppress this heartbeat post.
func (f *FleetFaults) DropHeartbeat() bool { return f.inj.Hit(HeartbeatLoss{}) }

// DuplicateComplete reports whether to report this completion a second
// time, exercising the queue's first-wins idempotency.
func (f *FleetFaults) DuplicateComplete() bool { return f.inj.Hit(DupComplete{}) }
