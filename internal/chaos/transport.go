package chaos

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// slowDelay is the fixed extra latency a Slow injection adds. Fixed
// rather than drawn so wall-clock effects stay bounded and the draw
// streams stay purely decisional.
const slowDelay = 50 * time.Millisecond

// Transport is an http.RoundTripper that injects transport faults in
// front of an inner transport. Install it with wire.Client.SetTransport
// (bpsim -chaos does). Only dispatch requests (POST /run) are eligible:
// health probes and control traffic pass through untouched, so a
// chaos'd client still connects and the faults land where retry,
// failover and the circuit breaker must absorb them.
type Transport struct {
	inner http.RoundTripper
	inj   *Injector
	// sleep implements Slow; injectable so tests run on a fake clock.
	sleep func(d time.Duration)
}

// NewTransport wraps inner (nil selects http.DefaultTransport) with
// fault injection from inj.
func NewTransport(inj *Injector, inner http.RoundTripper) *Transport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &Transport{inner: inner, inj: inj, sleep: time.Sleep}
}

// SetSleep replaces the Slow-injection sleeper (tests inject a fake).
func (t *Transport) SetSleep(sleep func(d time.Duration)) {
	if sleep != nil {
		t.sleep = sleep
	}
}

// timeoutError is the injected Timeout failure: it satisfies
// net.Error's Timeout contract so callers classify it exactly like a
// real deadline miss.
type timeoutError struct{}

func (timeoutError) Error() string   { return "chaos: injected request timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

// RoundTrip applies at most one injected fault per dispatch, in fixed
// precedence (timeout, reset, 500, slow), then forwards.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if req.URL.Path != "/run" {
		return t.inner.RoundTrip(req)
	}
	switch {
	case t.inj.Hit(Timeout{}):
		closeReqBody(req)
		return nil, timeoutError{}
	case t.inj.Hit(Reset{}):
		closeReqBody(req)
		return nil, fmt.Errorf("chaos: injected connection reset by peer")
	case t.inj.Hit(HTTP500{}):
		closeReqBody(req)
		return synthesize500(req), nil
	case t.inj.Hit(Slow{}):
		t.sleep(slowDelay)
	}
	return t.inner.RoundTrip(req)
}

// closeReqBody honors the RoundTripper contract: the body is always
// closed, even when the request never leaves this process.
func closeReqBody(req *http.Request) {
	if req.Body != nil {
		_ = req.Body.Close()
	}
}

// synthesize500 fabricates the 500 a crashing worker would have sent.
func synthesize500(req *http.Request) *http.Response {
	body := `{"error":"chaos: injected internal server error"}`
	h := make(http.Header)
	h.Set("Content-Type", "application/json")
	return &http.Response{
		Status:        "500 Internal Server Error",
		StatusCode:    http.StatusInternalServerError,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        h,
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}
