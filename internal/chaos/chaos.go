// Package chaos is the seeded, fully deterministic fault-injection
// layer behind `bpsim/attacksim -chaos` and cmd/chaosbench. It threads
// synthetic failures through the engine's existing seams — the wire
// client's HTTP transport (timeouts, connection resets, 5xx, slow
// responses), the run cache's file writes (bit flips, truncation,
// ENOSPC), the snapshot store's prefix blobs (corruption), and the
// pull fleet's worker loop (crash mid-lease, heartbeat loss, duplicate
// completions, leader restart) — without those packages ever importing
// this one: each seam exposes a small hook interface (http.RoundTripper,
// runcache.FileFault, fleet.WorkerFaults) that chaos implements.
//
// Every decision flows from a FaultPlan: a seed plus per-fault rules.
// Each rule owns an independent SplitMix64 stream derived from the plan
// seed and the fault's name, and consumes exactly one draw per decision
// point, so a failure run replays bit-for-bit from its plan — no wall
// clock, no global randomness. The point of the whole layer is the
// invariant it gates: tables rendered under faults must be
// byte-identical to the fault-free serial run.
package chaos

// Seam names group the fault kinds by the subsystem they perturb. They
// appear in reports and documentation; injection sites consult concrete
// fault kinds, not seams.
const (
	SeamTransport = "transport" // wire.Client HTTP dispatch
	SeamCacheFile = "cachefile" // runcache entry writes
	SeamSnapshot  = "snapshot"  // snapshot-store prefix blobs
	SeamFleet     = "fleet"     // pull-queue worker/leader lifecycle
)

// Fault is one injectable fault kind. Implementations are stateless
// markers; the Injector owns all state. Name is the wire vocabulary of
// FaultPlan rules; Seam names the subsystem the fault perturbs.
type Fault interface {
	Name() string
	Seam() string
}

// Timeout makes a dispatched request fail with a timeout-shaped
// network error before reaching the worker.
type Timeout struct{}

func (Timeout) Name() string { return "timeout" }
func (Timeout) Seam() string { return SeamTransport }

// Reset makes a dispatched request fail as if the peer reset the
// connection mid-exchange.
type Reset struct{}

func (Reset) Name() string { return "reset" }
func (Reset) Seam() string { return SeamTransport }

// HTTP500 answers a dispatched request with a synthesized 500 instead
// of forwarding it — the worker never sees the spec.
type HTTP500 struct{}

func (HTTP500) Name() string { return "http500" }
func (HTTP500) Seam() string { return SeamTransport }

// Slow delays a dispatched request before forwarding it, modeling a
// straggling worker or congested link. The response is otherwise
// untouched.
type Slow struct{}

func (Slow) Name() string { return "slow" }
func (Slow) Seam() string { return SeamTransport }

// BitFlip flips one deterministic bit in a cache entry on its way to
// disk: the in-memory copy stays good, and the next Open must detect
// the corruption by checksum and quarantine the file.
type BitFlip struct{}

func (BitFlip) Name() string { return "bitflip" }
func (BitFlip) Seam() string { return SeamCacheFile }

// Truncate cuts a cache entry's file to half its length mid-write,
// modeling a crash between write and rename being made visible.
type Truncate struct{}

func (Truncate) Name() string { return "truncate" }
func (Truncate) Seam() string { return SeamCacheFile }

// ENOSPC fails a cache entry write outright, as a full disk would. The
// store keeps the entry in memory and counts the put error.
type ENOSPC struct{}

func (ENOSPC) Name() string { return "enospc" }
func (ENOSPC) Seam() string { return SeamCacheFile }

// SnapCorrupt flips one deterministic bit in a snapshot-store prefix
// blob on its way to disk; restore-from-prefix must fall back to a
// cold simulation with identical results.
type SnapCorrupt struct{}

func (SnapCorrupt) Name() string { return "snapcorrupt" }
func (SnapCorrupt) Seam() string { return SeamSnapshot }

// WorkerCrash kills a pull worker mid-batch: unfinished specs are
// neither completed nor nacked, the heartbeat stops, and the fleet
// must steal the stalled lease.
type WorkerCrash struct{}

func (WorkerCrash) Name() string { return "workercrash" }
func (WorkerCrash) Seam() string { return SeamFleet }

// HeartbeatLoss suppresses one heartbeat post, modeling a dropped
// packet; enough in a row and the lease lapses.
type HeartbeatLoss struct{}

func (HeartbeatLoss) Name() string { return "heartbeatloss" }
func (HeartbeatLoss) Seam() string { return SeamFleet }

// DupComplete reports one completion twice, exercising the queue's
// first-wins idempotency.
type DupComplete struct{}

func (DupComplete) Name() string { return "dupcomplete" }
func (DupComplete) Seam() string { return SeamFleet }

// LeaderRestart tells an orchestrating harness (cmd/chaosbench) to
// kill and restart the pull-queue leader at this decision point; the
// restarted sweep must resume from its journal with workers rejoining.
type LeaderRestart struct{}

func (LeaderRestart) Name() string { return "leaderrestart" }
func (LeaderRestart) Seam() string { return SeamFleet }

// FaultByName resolves a FaultPlan rule's fault name to its kind.
// bpvet's exhaustive analyzer holds this registry and FaultNames
// mutually complete.
func FaultByName(name string) (Fault, bool) {
	switch name {
	case Timeout{}.Name():
		return Timeout{}, true
	case Reset{}.Name():
		return Reset{}, true
	case HTTP500{}.Name():
		return HTTP500{}, true
	case Slow{}.Name():
		return Slow{}, true
	case BitFlip{}.Name():
		return BitFlip{}, true
	case Truncate{}.Name():
		return Truncate{}, true
	case ENOSPC{}.Name():
		return ENOSPC{}, true
	case SnapCorrupt{}.Name():
		return SnapCorrupt{}, true
	case WorkerCrash{}.Name():
		return WorkerCrash{}, true
	case HeartbeatLoss{}.Name():
		return HeartbeatLoss{}, true
	case DupComplete{}.Name():
		return DupComplete{}, true
	case LeaderRestart{}.Name():
		return LeaderRestart{}, true
	default:
		return nil, false
	}
}

// FaultNames lists every registered fault kind — the FaultPlan rule
// vocabulary, in documentation order.
func FaultNames() []string {
	return []string{
		"timeout",
		"reset",
		"http500",
		"slow",
		"bitflip",
		"truncate",
		"enospc",
		"snapcorrupt",
		"workercrash",
		"heartbeatloss",
		"dupcomplete",
		"leaderrestart",
	}
}
