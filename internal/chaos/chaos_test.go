package chaos

import (
	"bytes"
	"errors"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestPlanCodecRoundTrip: Encode stamps the format tag and DecodePlan
// reads its own output back unchanged.
func TestPlanCodecRoundTrip(t *testing.T) {
	p := FaultPlan{
		Seed: 42,
		Rules: []Rule{
			{Fault: "timeout", Rate: 0.25},
			{Fault: "bitflip", Rate: 1, After: 3, Count: 1},
		},
	}
	raw := p.Encode()
	got, err := DecodePlan(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Plan != PlanFormat {
		t.Fatalf("decoded format %q, want %q", got.Plan, PlanFormat)
	}
	if got.Seed != p.Seed || len(got.Rules) != len(p.Rules) {
		t.Fatalf("round trip lost fields: %+q", raw)
	}
	if !bytes.Equal(got.Encode(), raw) {
		t.Fatal("re-encoding a decoded plan changed its bytes")
	}
}

// TestDecodePlanStrict: typos must fail the run, not silently disable a
// fault — unknown fields, unknown fault names, missing format tag, and
// out-of-range rates are all errors.
func TestDecodePlanStrict(t *testing.T) {
	cases := []struct {
		name, raw, want string
	}{
		{"unknown field", `{"plan":"xorbp-chaos/1","seed":1,"rules":[{"fault":"timeout","rtae":0.5}]}`, "unknown field"},
		{"unknown fault", `{"plan":"xorbp-chaos/1","seed":1,"rules":[{"fault":"tmeout","rate":0.5}]}`, `unknown fault "tmeout"`},
		{"missing tag", `{"seed":1,"rules":[]}`, "format tag"},
		{"foreign format", `{"plan":"xorbp-chaos/9","seed":1,"rules":[]}`, `format "xorbp-chaos/9"`},
		{"rate range", `{"plan":"xorbp-chaos/1","seed":1,"rules":[{"fault":"timeout","rate":1.5}]}`, "outside [0, 1]"},
		{"duplicate rule", `{"plan":"xorbp-chaos/1","seed":1,"rules":[{"fault":"reset","rate":1},{"fault":"reset","rate":0}]}`, "duplicate rule"},
		{"negative after", `{"plan":"xorbp-chaos/1","seed":1,"rules":[{"fault":"reset","rate":1,"after":-2}]}`, "negative"},
	}
	for _, tc := range cases {
		_, err := DecodePlan([]byte(tc.raw))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
}

// TestLoadPlan: the -chaos flag path, including a clear error for a
// missing file.
func TestLoadPlan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := os.WriteFile(path, FaultPlan{Seed: 9}.Encode(), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := LoadPlan(path)
	if err != nil || p.Seed != 9 {
		t.Fatalf("LoadPlan = %+v, %v", p, err)
	}
	if _, err := LoadPlan(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("loading a missing plan file succeeded")
	}
}

// TestFaultRegistryRoundTrip: every name in FaultNames resolves through
// FaultByName back to itself with a known seam. (bpvet's exhaustive
// analyzer enforces the same statically; this keeps it honest at run
// time too.)
func TestFaultRegistryRoundTrip(t *testing.T) {
	seams := map[string]bool{SeamTransport: true, SeamCacheFile: true, SeamSnapshot: true, SeamFleet: true}
	for _, name := range FaultNames() {
		f, ok := FaultByName(name)
		if !ok {
			t.Fatalf("FaultNames lists %q but FaultByName cannot resolve it", name)
		}
		if f.Name() != name {
			t.Fatalf("FaultByName(%q).Name() = %q", name, f.Name())
		}
		if !seams[f.Seam()] {
			t.Fatalf("fault %q claims unknown seam %q", name, f.Seam())
		}
	}
	if _, ok := FaultByName("no-such-fault"); ok {
		t.Fatal("FaultByName resolved a name outside the registry")
	}
}

// TestInjectorDeterminism: two injectors over the same plan make the
// same decision sequence; a different seed makes a different one.
func TestInjectorDeterminism(t *testing.T) {
	plan := FaultPlan{Seed: 7, Rules: []Rule{{Fault: "timeout", Rate: 0.5}}}
	decisions := func(p FaultPlan) []bool {
		in, err := NewInjector(p)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 64)
		for i := range out {
			out[i] = in.Hit(Timeout{})
		}
		return out
	}
	a, b := decisions(plan), decisions(plan)
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between identical plans", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("rate-0.5 rule fired %d/%d times; stream looks degenerate", fired, len(a))
	}
	other := decisions(FaultPlan{Seed: 8, Rules: plan.Rules})
	same := true
	for i := range a {
		if a[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical decision sequences")
	}
}

// TestInjectorRateAfterCount: After skips exactly that many decision
// points, Count caps total injections, Rate 1 fires at every eligible
// point, and an unruled fault never fires.
func TestInjectorRateAfterCount(t *testing.T) {
	in, err := NewInjector(FaultPlan{Seed: 1, Rules: []Rule{
		{Fault: "reset", Rate: 1, After: 3, Count: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	var got []bool
	for i := 0; i < 8; i++ {
		got = append(got, in.Hit(Reset{}))
	}
	want := []bool{false, false, false, true, true, false, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("decisions = %v, want %v", got, want)
		}
	}
	if in.Hit(Timeout{}) {
		t.Fatal("a fault without a rule fired")
	}
	counts := in.Counts()
	if counts["transport/reset"] != 2 || len(counts) != 1 {
		t.Fatalf("Counts = %v, want transport/reset=2 only", counts)
	}
	lines := in.CountLines()
	if len(lines) != 1 || lines[0] != "transport/reset=2" {
		t.Fatalf("CountLines = %v", lines)
	}
}

// TestInjectorNilSafe: a nil injector is "chaos disabled" — never
// fires, never panics.
func TestInjectorNilSafe(t *testing.T) {
	var in *Injector
	if in.Hit(Timeout{}) || in.Draw(BitFlip{}) != 0 || in.Counts() != nil {
		t.Fatal("nil injector injected something")
	}
}

// echoTripper is the inner transport under test: it answers every
// request 200 with a fixed body, recording what it saw.
type echoTripper struct{ hits int }

func (e *echoTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	e.hits++
	if req.Body != nil {
		_, _ = io.Copy(io.Discard, req.Body)
		_ = req.Body.Close()
	}
	return &http.Response{
		StatusCode: http.StatusOK,
		Body:       io.NopCloser(strings.NewReader("ok")),
		Request:    req,
	}, nil
}

// TestTransportFaults: each transport fault surfaces with its intended
// shape — Timeout as a net.Error timeout, Reset as an error, HTTP500 as
// a synthesized 500 (inner transport never sees the request), Slow as a
// recorded sleep before an untouched forward.
func TestTransportFaults(t *testing.T) {
	mustReq := func(path string) *http.Request {
		req, err := http.NewRequest(http.MethodPost, "http://worker"+path, strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		return req
	}
	newT := func(rule Rule) (*Transport, *echoTripper, *[]time.Duration) {
		in, err := NewInjector(FaultPlan{Seed: 3, Rules: []Rule{rule}})
		if err != nil {
			t.Fatal(err)
		}
		inner := &echoTripper{}
		tr := NewTransport(in, inner)
		var slept []time.Duration
		tr.SetSleep(func(d time.Duration) { slept = append(slept, d) })
		return tr, inner, &slept
	}

	tr, inner, _ := newT(Rule{Fault: "timeout", Rate: 1, Count: 1})
	_, err := tr.RoundTrip(mustReq("/run"))
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("timeout fault returned %v, want a net.Error timeout", err)
	}
	if inner.hits != 0 {
		t.Fatal("timeout fault still forwarded the request")
	}
	if resp, err := tr.RoundTrip(mustReq("/run")); err != nil || resp.StatusCode != 200 {
		t.Fatalf("count-1 rule kept firing: %v %v", resp, err)
	}

	tr, inner, _ = newT(Rule{Fault: "reset", Rate: 1, Count: 1})
	if _, err := tr.RoundTrip(mustReq("/run")); err == nil || !strings.Contains(err.Error(), "reset") {
		t.Fatalf("reset fault returned %v", err)
	}

	tr, inner, _ = newT(Rule{Fault: "http500", Rate: 1, Count: 1})
	resp, err := tr.RoundTrip(mustReq("/run"))
	if err != nil || resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("http500 fault returned %v, %v", resp, err)
	}
	if inner.hits != 0 {
		t.Fatal("synthesized 500 still forwarded the request")
	}

	tr, inner, slept := newT(Rule{Fault: "slow", Rate: 1, Count: 1})
	if resp, err := tr.RoundTrip(mustReq("/run")); err != nil || resp.StatusCode != 200 {
		t.Fatalf("slow fault broke the forward: %v %v", resp, err)
	}
	if inner.hits != 1 || len(*slept) != 1 {
		t.Fatalf("slow fault: inner hits %d, sleeps %v", inner.hits, *slept)
	}

	// Control traffic is exempt: the same always-fire rule never touches
	// a health probe.
	tr, inner, _ = newT(Rule{Fault: "timeout", Rate: 1})
	if _, err := tr.RoundTrip(mustReq("/healthz")); err != nil {
		t.Fatalf("fault injected on /healthz: %v", err)
	}
	if inner.hits != 1 {
		t.Fatal("/healthz did not pass through")
	}
}

// TestCacheFaults: the write-path hook applies exactly one fault —
// ENOSPC errors the write, Truncate halves it, BitFlip flips a single
// bit in a copy — and passes bytes through untouched otherwise.
func TestCacheFaults(t *testing.T) {
	raw := bytes.Repeat([]byte{0xA5}, 64)
	newCF := func(rules ...Rule) *CacheFaults {
		in, err := NewInjector(FaultPlan{Seed: 11, Rules: rules})
		if err != nil {
			t.Fatal(err)
		}
		return NewCacheFaults(in)
	}

	if _, err := newCF(Rule{Fault: "enospc", Rate: 1, Count: 1}).WriteEntry("k", raw); err == nil {
		t.Fatal("enospc rule did not fail the write")
	}

	out, err := newCF(Rule{Fault: "truncate", Rate: 1, Count: 1}).WriteEntry("k", raw)
	if err != nil || len(out) != len(raw)/2 {
		t.Fatalf("truncate: len %d, err %v; want %d, nil", len(out), err, len(raw)/2)
	}

	out, err = newCF(Rule{Fault: "bitflip", Rate: 1, Count: 1}).WriteEntry("k", raw)
	if err != nil || len(out) != len(raw) {
		t.Fatalf("bitflip: len %d, err %v", len(out), err)
	}
	diff := 0
	for i := range raw {
		for b := 0; b < 8; b++ {
			if (raw[i]^out[i])&(1<<b) != 0 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Fatalf("bitflip changed %d bits, want exactly 1", diff)
	}
	if raw[0] != 0xA5 {
		t.Fatal("bitflip aliased the caller's buffer")
	}

	out, err = newCF().WriteEntry("k", raw)
	if err != nil || !bytes.Equal(out, raw) {
		t.Fatal("empty plan perturbed a write")
	}

	// The snapshot variant only corrupts; it never truncates or errors.
	in, err := NewInjector(FaultPlan{Seed: 11, Rules: []Rule{
		{Fault: "snapcorrupt", Rate: 1, Count: 1},
		{Fault: "enospc", Rate: 1},
		{Fault: "truncate", Rate: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	sf := NewSnapFaults(in)
	out, err = sf.WriteEntry("k", raw)
	if err != nil || len(out) != len(raw) || bytes.Equal(out, raw) {
		t.Fatalf("snap faults: err %v, len %d, changed %v", err, len(out), !bytes.Equal(out, raw))
	}
}
