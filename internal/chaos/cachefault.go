package chaos

import "fmt"

// CacheFaults implements runcache.FileFault: it perturbs cache entry
// bytes on their way to disk (the in-memory copy is untouched). Attach
// with runcache.Store.SetFileFault. The flip/trunc/full fields name
// which plan rules drive each failure mode, so the same implementation
// serves both the result cache (BitFlip/Truncate/ENOSPC) and the
// snapshot store (SnapCorrupt) — see NewCacheFaults and NewSnapFaults.
type CacheFaults struct {
	inj   *Injector
	flip  Fault // bit-flip rule; nil disables
	trunc Fault // truncation rule; nil disables
	full  Fault // write-error rule; nil disables
}

// NewCacheFaults drives a result cache's write path from the plan's
// bitflip/truncate/enospc rules.
func NewCacheFaults(inj *Injector) *CacheFaults {
	return &CacheFaults{inj: inj, flip: BitFlip{}, trunc: Truncate{}, full: ENOSPC{}}
}

// NewSnapFaults drives a snapshot store's write path from the plan's
// snapcorrupt rule (corruption only — a snapshot write error already
// degrades to a cold run upstream).
func NewSnapFaults(inj *Injector) *CacheFaults {
	return &CacheFaults{inj: inj, flip: SnapCorrupt{}}
}

// WriteEntry applies at most one fault to the bytes about to be
// written for key: an outright write error (ENOSPC), truncation to
// half length, or a single deterministic bit flip. The returned slice
// is a copy; the caller's buffer is never aliased.
func (c *CacheFaults) WriteEntry(key string, raw []byte) ([]byte, error) {
	switch {
	case c.full != nil && c.inj.Hit(c.full):
		return nil, fmt.Errorf("chaos: injected write failure (no space left on device)")
	case c.trunc != nil && c.inj.Hit(c.trunc):
		return append([]byte(nil), raw[:len(raw)/2]...), nil
	case c.flip != nil && c.inj.Hit(c.flip) && len(raw) > 0:
		out := append([]byte(nil), raw...)
		bit := c.inj.Draw(c.flip) % uint64(len(out)*8)
		out[bit/8] ^= 1 << (bit % 8)
		return out, nil
	}
	return raw, nil
}
