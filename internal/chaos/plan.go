package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// PlanFormat versions the FaultPlan file format. Bump it when a field
// changes meaning; DecodePlan refuses other versions outright rather
// than guessing.
const PlanFormat = "xorbp-chaos/1"

// Rule schedules one fault kind: after the first After decision points
// pass, each further decision point fires with probability Rate on the
// rule's own seeded stream, up to Count injections (0 = unbounded).
// Rate 1 with Count 1 and After N is the idiom for "exactly once, at
// the N+1th opportunity".
type Rule struct {
	// Fault names the kind (FaultNames vocabulary).
	Fault string `json:"fault"`
	// Rate is the per-decision-point injection probability in [0, 1].
	Rate float64 `json:"rate"`
	// After skips the first After decision points entirely.
	After int `json:"after,omitempty"`
	// Count caps total injections by this rule; 0 means unbounded.
	Count int `json:"count,omitempty"`
}

// FaultPlan is the complete, replayable description of a chaos run:
// a seed and one rule per fault kind. Two processes given the same
// plan make identical injection decisions at identical decision
// points — that is what makes a CI chaos failure reproducible locally.
type FaultPlan struct {
	// Plan is the format tag; Encode stamps it, DecodePlan enforces it.
	Plan string `json:"plan"`
	// Seed roots every rule's decision stream.
	Seed uint64 `json:"seed"`
	// Rules schedule the faults. At most one rule per fault kind.
	Rules []Rule `json:"rules"`
}

// Validate checks the plan's vocabulary and ranges: every rule must
// name a registered fault exactly once, with a probability.
func (p FaultPlan) Validate() error {
	if p.Plan != "" && p.Plan != PlanFormat {
		return fmt.Errorf("chaos: plan format %q, this build reads %q", p.Plan, PlanFormat)
	}
	seen := make(map[string]bool, len(p.Rules))
	for i, r := range p.Rules {
		if _, ok := FaultByName(r.Fault); !ok {
			return fmt.Errorf("chaos: rule %d: unknown fault %q", i, r.Fault)
		}
		if seen[r.Fault] {
			return fmt.Errorf("chaos: rule %d: duplicate rule for fault %q", i, r.Fault)
		}
		seen[r.Fault] = true
		if r.Rate < 0 || r.Rate > 1 {
			return fmt.Errorf("chaos: rule %d (%s): rate %v outside [0, 1]", i, r.Fault, r.Rate)
		}
		if r.After < 0 || r.Count < 0 {
			return fmt.Errorf("chaos: rule %d (%s): negative after/count", i, r.Fault)
		}
	}
	return nil
}

// Encode renders the plan's canonical single-line JSON form, format
// tag stamped. Deterministic: same plan, same bytes.
func (p FaultPlan) Encode() []byte {
	p.Plan = PlanFormat
	out, err := json.Marshal(p)
	if err != nil {
		// Every field is a scalar, string or slice thereof; Marshal
		// cannot fail on them.
		panic("chaos: encoding plan: " + err.Error())
	}
	return out
}

// DecodePlan strictly parses and validates an encoded plan: unknown
// fields, unknown fault names and out-of-range rates are all errors —
// a typo in a chaos plan must fail the run, not silently disable the
// fault it meant to schedule.
func DecodePlan(raw []byte) (FaultPlan, error) {
	var p FaultPlan
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return FaultPlan{}, fmt.Errorf("chaos: decoding plan: %w", err)
	}
	if p.Plan == "" {
		return FaultPlan{}, fmt.Errorf("chaos: plan is missing its %q format tag", PlanFormat)
	}
	if err := p.Validate(); err != nil {
		return FaultPlan{}, err
	}
	return p, nil
}

// LoadPlan reads and decodes a plan file (the -chaos flag).
func LoadPlan(path string) (FaultPlan, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return FaultPlan{}, fmt.Errorf("chaos: %w", err)
	}
	p, err := DecodePlan(raw)
	if err != nil {
		return FaultPlan{}, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}
