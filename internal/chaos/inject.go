package chaos

import (
	"fmt"
	"sort"
	"sync"

	"xorbp/internal/rng"
)

// Injector makes the plan's injection decisions. Each rule owns an
// independent SplitMix64 stream seeded from the plan seed and the
// fault's name, and consumes exactly one draw per decision point —
// so given the same plan and the same per-seam decision ordering, two
// runs inject identically. Safe for concurrent use; concurrency can
// reorder which decision point gets which draw, but the decision
// *sequence* per fault is fixed by the plan, which is what replaying
// a failure needs.
type Injector struct {
	mu    sync.Mutex
	rules map[string]*ruleState
}

// ruleState is one rule's live decision stream.
type ruleState struct {
	rule  Rule
	src   *rng.SplitMix64
	calls uint64 // decision points consumed
	fired uint64 // injections granted
}

// NewInjector builds an injector over a validated plan. Faults without
// a rule never fire, so a nil-safe "no chaos" injector is simply one
// built from an empty plan.
func NewInjector(plan FaultPlan) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	in := &Injector{rules: make(map[string]*ruleState, len(plan.Rules))}
	for _, r := range plan.Rules {
		in.rules[r.Fault] = &ruleState{
			rule: r,
			src:  rng.NewSplitMix64(plan.Seed ^ rng.Mix64(fnv64(r.Fault))),
		}
	}
	return in, nil
}

// fnv64 hashes a fault name (FNV-1a) to decorrelate rule streams
// sharing one plan seed.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Hit consumes one decision point for f and reports whether the fault
// fires there. A nil injector (chaos disabled) never fires.
func (in *Injector) Hit(f Fault) bool {
	if in == nil {
		return false
	}
	name := f.Name()
	in.mu.Lock()
	defer in.mu.Unlock()
	st := in.rules[name]
	if st == nil {
		return false
	}
	st.calls++
	if st.calls <= uint64(st.rule.After) {
		return false
	}
	if st.rule.Count > 0 && st.fired >= uint64(st.rule.Count) {
		return false
	}
	// Top 53 bits give a uniform draw in [0, 1); Rate 1 always fires
	// and Rate 0 never does.
	draw := float64(st.src.Next()>>11) / (1 << 53)
	if st.rule.Rate < 1 && draw >= st.rule.Rate {
		return false
	}
	st.fired++
	return true
}

// Draw returns the next value of f's stream — the deterministic
// entropy an injection site needs beyond the fire/skip decision (e.g.
// which bit a BitFlip flips). Call only after Hit granted the fault.
func (in *Injector) Draw(f Fault) uint64 {
	if in == nil {
		return 0
	}
	name := f.Name()
	in.mu.Lock()
	defer in.mu.Unlock()
	st := in.rules[name]
	if st == nil {
		return 0
	}
	return st.src.Next()
}

// Counts reports injections granted so far, one "seam/name" line key
// per fault that fired — chaosbench's report of what the plan actually
// did.
func (in *Injector) Counts() map[string]uint64 {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	fired := make(map[string]uint64)
	for name, st := range in.rules {
		if st.fired > 0 {
			fired[name] = st.fired
		}
	}
	in.mu.Unlock()
	out := make(map[string]uint64, len(fired))
	for name, n := range fired {
		f, _ := FaultByName(name)
		out[f.Seam()+"/"+name] = n
	}
	return out
}

// CountLines renders Counts as sorted "seam/name=N" strings for
// deterministic display.
func (in *Injector) CountLines() []string {
	counts := in.Counts()
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = fmt.Sprintf("%s=%d", k, counts[k])
	}
	return out
}
