package attack

import (
	"fmt"
	"sort"

	"xorbp/internal/core"
)

// Outcome is one counted measurement: Successes observed events over
// Trials opportunities. Counting (rather than returning a rate) is what
// lets the sweep engine split a wide cell into independent seed batches
// and merge them exactly — integer sums lose nothing.
type Outcome struct {
	Successes int `json:"successes"`
	Trials    int `json:"trials"`
}

// Rate returns Successes/Trials (0 when empty). For an unsplit cell this
// is bit-identical to what the corresponding exported attack function
// returns: the same division of the same integers.
func (o Outcome) Rate() float64 {
	if o.Trials == 0 {
		return 0
	}
	return float64(o.Successes) / float64(o.Trials)
}

// Add merges another batch of the same logical cell.
func (o Outcome) Add(p Outcome) Outcome {
	return Outcome{Successes: o.Successes + p.Successes, Trials: o.Trials + p.Trials}
}

// Metric says how an attack's measured rate is read.
type Metric int

// Metrics.
const (
	// SuccessRate: the floor of a defeated attack is ~0 (training
	// attacks, ASLR recovery).
	SuccessRate Metric = iota
	// InferenceAccuracy: the floor of a defeated attack is chance = 0.5
	// (perception and contention attacks over secret bits).
	InferenceAccuracy
)

// String names the metric.
func (m Metric) String() string {
	if m == InferenceAccuracy {
		return "accuracy"
	}
	return "rate"
}

// aslrCandidates fixes the Jump-over-ASLR sweep width so the attack is
// fully described by (opts, env, trials) like every other registry entry.
const aslrCandidates = 32

// Info describes one registered attack: the PoC's engine-facing face.
type Info struct {
	// Name is the attack's wire name (wire.AttackSpec.Name).
	Name string
	// Metric classifies the measured rate.
	Metric Metric
	// SingleOnly marks attacks that only exist on the time-shared core
	// (the grid skips their SMT cells).
	SingleOnly bool
	// UsesDir marks attacks driven through the direction predictor —
	// only these get a predictor sweep dimension; the BTB attacks never
	// touch it.
	UsesDir bool
	// UsesAttempts marks attacks with an inner attempts loop
	// (wire.AttackSpec.Attempts; ignored by the others).
	UsesAttempts bool
	// Run measures the attack: trials (and attempts, where used) sized
	// per the request, environment knobs from ev.
	Run func(opts core.Options, ev Env, trials, attempts int) Outcome
}

// registry holds every attack the engine can dispatch, keyed by wire
// name. Populated at init; read-only afterwards, so lookups are safe
// from any goroutine.
var registry = map[string]Info{}

func register(i Info) {
	if _, dup := registry[i.Name]; dup {
		panic(fmt.Sprintf("attack: duplicate registration %q", i.Name))
	}
	registry[i.Name] = i
}

func init() {
	register(Info{Name: "btb_training", Metric: SuccessRate, Run: btbTraining})
	register(Info{Name: "pht_training", Metric: SuccessRate, UsesDir: true, UsesAttempts: true, Run: phtTraining})
	register(Info{Name: "pht_steering", Metric: SuccessRate, UsesDir: true, UsesAttempts: true, Run: phtSteering})
	register(Info{Name: "branch_scope", Metric: InferenceAccuracy, UsesDir: true, Run: branchScope})
	register(Info{Name: "branch_scope_detector", Metric: InferenceAccuracy, UsesDir: true, SingleOnly: true, Run: branchScopeDetector})
	register(Info{Name: "sbpa", Metric: InferenceAccuracy, Run: sbpaContention})
	register(Info{Name: "sbpa_blanket", Metric: InferenceAccuracy, Run: sbpaBlanket})
	register(Info{Name: "reference", Metric: InferenceAccuracy, UsesDir: true, SingleOnly: true, Run: referencePerception})
	register(Info{Name: "aslr", Metric: SuccessRate,
		Run: func(opts core.Options, ev Env, trials, _ int) Outcome {
			return aslrLeak(opts, ev, trials, aslrCandidates)
		}})
}

// Names lists every registered attack in sorted (deterministic) order.
func Names() []string {
	ns := make([]string, 0, len(registry))
	for n := range registry {
		ns = append(ns, n)
	}
	sort.Strings(ns)
	return ns
}

// ByName resolves a registered attack.
func ByName(name string) (Info, bool) {
	i, ok := registry[name]
	return i, ok
}

// Request names one logical measurement: a registered attack against a
// mechanism configuration on one core arrangement, at a size and seed.
// It is the unit Table1With and PoCAccuracyWith ask their Measurer for —
// small enough to run in-process, canonical enough to become an engine
// job byte-for-byte.
type Request struct {
	Attack   string
	Opts     core.Options
	Scenario Scenario
	Trials   int
	Attempts int
	Seed     uint64
}

// Measurer resolves requests to rates. Measure runs them in-process;
// the secsweep subsystem substitutes an engine-backed measurer so the
// same cells flow through the memo cache, the persistent store and the
// distributed backend instead.
type Measurer func(Request) float64

// Measure resolves a request in-process through the registry — the
// reference measurer every other implementation must agree with.
func Measure(r Request) float64 {
	info, ok := ByName(r.Attack)
	if !ok {
		panic(fmt.Sprintf("attack: measuring unregistered attack %q", r.Attack))
	}
	return info.Run(r.Opts, Env{Scenario: r.Scenario, Seed: r.Seed}, r.Trials, r.Attempts).Rate()
}
