package attack

import (
	"xorbp/internal/core"
	"xorbp/internal/predictor"
	"xorbp/internal/rng"
)

// ReferencePerception implements the §5.5 scenario 4 corner case against
// plain (fixed-key-width) XOR-PHT: because one content key encodes every
// entry, the XOR offset between the victim's key and the attacker's key
// is the same for all entries. The attacker probes a *reference* entry
// whose true direction is known (a heavily biased branch), recovers the
// offset's direction bit, and applies it to the probe of the target
// entry to decode the secret.
//
// Enhanced-XOR-PHT breaks the attack: each word has its own derived key,
// so the reference offset says nothing about the target's word (the
// "root cause is the fixed mapping relationship between the branch
// instruction address and content keys", §5.5).
//
// Returns the inference accuracy over bits (0.5 = chance).
func ReferencePerception(opts core.Options, bits int, seed uint64) float64 {
	return referencePerception(opts, Env{Scenario: SingleThreaded, Seed: seed}, bits, 0).Rate()
}

// referencePerception is ReferencePerception over an explicit
// environment, counted. The attack only exists on the time-shared core
// (the offset recovery needs the attacker to probe under one key), so
// the environment's scenario is forced to SingleThreaded.
func referencePerception(opts core.Options, ev Env, bits, _ int) Outcome {
	ev.Scenario = SingleThreaded
	e := newEnvWith(opts, ev)
	secrets := rng.NewXoshiro256(rng.Mix64(ev.Seed ^ 0x4ef))

	// Two victim branches whose PHT entries sit in different words:
	// the reference (always taken) and the secret-dependent target.
	const refPC = 0x40_2000
	const targetPC = refPC + 4*64 // 64 entries apart: a different word

	correct := 0
	for i := 0; i < bits; i++ {
		secret := secrets.Bool(0.5)

		// Victim quantum: both branches execute to saturation under the
		// victim's current key.
		for r := 0; r < 4; r++ {
			e.dir.Predict(e.victim, refPC)
			e.dir.Update(e.victim, refPC, true)
			e.dir.Predict(e.victim, targetPC)
			e.dir.Update(e.victim, targetPC, secret)
		}

		// Switch to the attacker (rotates the victim's key away; the
		// attacker reads with its own key).
		e.switchToAttacker()

		// Probe both entries. Under plain XOR the decoded direction bit
		// of each entry is the true bit XOR one shared offset bit.
		bRef := e.dir.Predict(e.attacker, refPC)
		bTgt := e.dir.Predict(e.attacker, targetPC)
		// Recover the offset from the reference (true direction: taken),
		// then undo it on the target probe.
		offset := bRef != true
		inferred := bTgt != offset
		if e.observe(inferred) == secret {
			correct++
		}

		// Restore scheduling so the next round's victim quantum has a
		// fresh key (as the OS would).
		e.switchToVictim()
		e.switchToAttacker()
		e.switchToVictim()
	}
	return Outcome{Successes: correct, Trials: bits}
}

// SBPABlanket is the weakened contention attack available when index
// randomization hides the victim's set (§5.5 scenario 3's discussion):
// the attacker primes the *entire* BTB and senses whether any eviction
// happened at all — learning only that the victim executed some taken
// branch, not which. Returns the detection accuracy over trials
// (0.5 = chance).
func SBPABlanket(opts core.Options, sc Scenario, trials int, seed uint64) float64 {
	return sbpaBlanket(opts, Env{Scenario: sc, Seed: seed}, trials, 0).Rate()
}

// sbpaBlanket is SBPABlanket over an explicit environment, counted.
func sbpaBlanket(opts core.Options, ev Env, trials, _ int) Outcome {
	e := newEnvWith(opts, ev)
	secrets := rng.NewXoshiro256(rng.Mix64(ev.Seed ^ 0xb1a))
	cfg := e.btb.Config()
	victimPC := uint64(0x40_1000)

	prime := func() {
		// One branch per set per way, covering the whole BTB.
		for s := uint64(0); s < uint64(cfg.Sets); s++ {
			for w := uint64(0); w < uint64(cfg.Ways); w++ {
				pc := (s << 2) | ((w + 1) << (2 + 8 + 2)) | 0x8000000
				e.btb.Update(e.attacker, pc, pc+16, predictor.UncondDirect)
			}
		}
	}
	probeMisses := func() int {
		misses := 0
		for s := uint64(0); s < uint64(cfg.Sets); s++ {
			for w := uint64(0); w < uint64(cfg.Ways); w++ {
				pc := (s << 2) | ((w + 1) << (2 + 8 + 2)) | 0x8000000
				if _, hit := e.btb.Lookup(e.attacker, pc); !hit {
					misses++
				}
			}
		}
		return misses
	}

	correct := 0
	for i := 0; i < trials; i++ {
		secret := secrets.Bool(0.5)
		prime()
		base := probeMisses() // self-conflict floor after priming
		e.switchToVictim()
		if secret {
			e.btb.Update(e.victim, victimPC, victimPC+64, predictor.CondDirect)
		}
		e.switchToAttacker()
		inferred := e.observe(probeMisses() > base)
		if inferred == secret {
			correct++
		}
	}
	return Outcome{Successes: correct, Trials: trials}
}
