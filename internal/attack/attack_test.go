package attack

import (
	"testing"

	"xorbp/internal/core"
)

const (
	iters  = 400
	trials = 800
	seed   = 7
)

func opts(m core.Mechanism) core.Options { return core.OptionsFor(m) }

func scoped(m core.Mechanism, s core.Structure, enhanced bool) core.Options {
	o := core.OptionsFor(m)
	o.Scope = s
	o.EnhancedPHT = enhanced
	return o
}

func TestBTBTrainingBaselineSucceeds(t *testing.T) {
	rate := BTBTraining(opts(core.Baseline), SingleThreaded, iters, seed)
	if rate < 0.9 {
		t.Fatalf("baseline BTB training rate %.3f, want > 0.9 (paper: 96.5%%)", rate)
	}
}

func TestBTBTrainingDefendedByXOR(t *testing.T) {
	for _, m := range []core.Mechanism{core.XOR, core.NoisyXOR, core.CompleteFlush} {
		rate := BTBTraining(opts(m), SingleThreaded, iters, seed)
		if rate > 0.03 {
			t.Errorf("%v: BTB training rate %.3f, want < 0.03 (paper: <1%%)", m, rate)
		}
	}
}

func TestBTBTrainingSMT(t *testing.T) {
	// Concurrent threads: flush mechanisms never fire between phases, so
	// they do not protect; the encoding mechanisms still do (different
	// per-thread keys).
	if rate := BTBTraining(opts(core.CompleteFlush), SMT, iters, seed); rate < 0.9 {
		t.Errorf("CompleteFlush SMT: rate %.3f, want high (no protection)", rate)
	}
	if rate := BTBTraining(opts(core.NoisyXOR), SMT, iters, seed); rate > 0.03 {
		t.Errorf("NoisyXOR SMT: rate %.3f, want < 0.03", rate)
	}
}

func TestPHTTrainingAnchors(t *testing.T) {
	base := PHTTraining(opts(core.Baseline), SingleThreaded, iters, 100, seed)
	if base < 0.9 {
		t.Fatalf("baseline PHT training %.3f, want > 0.9 (paper: 97.2%%)", base)
	}
	prot := PHTTraining(opts(core.NoisyXOR), SingleThreaded, iters, 100, seed)
	if prot > 0.01 {
		t.Fatalf("protected PHT training %.3f, want < 0.01 (paper: <1%%)", prot)
	}
}

func TestPHTSteeringSeparatesFlushFromBaseline(t *testing.T) {
	// Steering (both directions on demand) succeeds on the baseline and
	// fails under Complete Flush, whose reset state is not attacker-
	// chosen.
	// With 40 attempts per direction and 3.5% channel noise the expected
	// pass rate is ~0.88 (Bin(40,0.965) >= 37, squared).
	base := PHTSteering(opts(core.Baseline), SingleThreaded, 50, 40, seed)
	if base < 0.75 {
		t.Fatalf("baseline steering %.3f, want > 0.75", base)
	}
	cf := PHTSteering(opts(core.CompleteFlush), SingleThreaded, 50, 40, seed)
	if cf > 0.05 {
		t.Fatalf("CompleteFlush steering %.3f, want ~0", cf)
	}
}

func TestBranchScopePerception(t *testing.T) {
	base := BranchScope(opts(core.Baseline), SingleThreaded, trials, seed)
	if base < 0.9 {
		t.Fatalf("baseline BranchScope accuracy %.3f, want > 0.9", base)
	}
	// Single-stepping forces kernel round-trips whose key rotations
	// destroy the primed state (§5.5 scenario 5).
	prot := BranchScope(opts(core.NoisyXOR), SingleThreaded, trials, seed)
	if prot > 0.57 {
		t.Fatalf("protected BranchScope accuracy %.3f, want ~0.5 (chance)", prot)
	}
}

func TestSBPAContention(t *testing.T) {
	base := SBPAContention(opts(core.Baseline), SingleThreaded, trials, seed)
	if base < 0.9 {
		t.Fatalf("baseline SBPA accuracy %.3f, want > 0.9", base)
	}
	// Single core: rotation between prime and probe destroys the signal.
	prot := SBPAContention(opts(core.NoisyXOR), SingleThreaded, trials, seed)
	if prot > 0.57 {
		t.Fatalf("protected SBPA accuracy %.3f, want ~0.5", prot)
	}
	// SMT with content-only XOR: the attacker's entries stay decodable
	// and the victim's eviction is visible — no protection (Table 1).
	smtXOR := SBPAContention(scoped(core.XOR, core.StructBTB, false), SMT, trials, seed)
	if smtXOR < 0.9 {
		t.Fatalf("XOR-BTB SMT contention accuracy %.3f, want high", smtXOR)
	}
	// Index randomization hides the victim's set.
	smtNXOR := SBPAContention(scoped(core.NoisyXOR, core.StructBTB, false), SMT, trials, seed)
	if smtNXOR > 0.57 {
		t.Fatalf("Noisy-XOR-BTB SMT targeted contention %.3f, want ~0.5", smtNXOR)
	}
}

func TestSBPABlanketStillDetectsActivityOnSMT(t *testing.T) {
	// The weakened blanket attack still detects "some taken branch ran"
	// under Noisy-XOR on SMT — the paper's Mitigate verdict.
	acc := SBPABlanket(scoped(core.NoisyXOR, core.StructBTB, false), SMT, trials/2, seed)
	if acc < 0.85 {
		t.Fatalf("blanket SBPA accuracy %.3f, want high (Mitigate)", acc)
	}
	// On a single-threaded core even the blanket variant dies with the
	// key rotation.
	acc = SBPABlanket(scoped(core.NoisyXOR, core.StructBTB, false), SingleThreaded, trials/2, seed)
	if acc > 0.57 {
		t.Fatalf("single-core blanket SBPA accuracy %.3f, want ~0.5", acc)
	}
}

func TestReferenceBranchCornerCase(t *testing.T) {
	// §5.5 scenario 4: plain fixed-width XOR leaks through a reference
	// branch; the Enhanced word-key schedule closes the channel.
	plain := ReferencePerception(scoped(core.XOR, core.StructPHT, false), trials, seed)
	if plain < 0.85 {
		t.Fatalf("plain XOR-PHT reference attack accuracy %.3f, want high", plain)
	}
	enhanced := ReferencePerception(scoped(core.XOR, core.StructPHT, true), trials, seed)
	if enhanced > 0.57 {
		t.Fatalf("Enhanced-XOR-PHT reference attack accuracy %.3f, want ~0.5", enhanced)
	}
}

func TestRotXORCodecAlsoDefendsReferenceAttack(t *testing.T) {
	// The §5.4 strengthened codec (rotate+XOR) breaks the bitwise
	// alignment the reference attack needs, even without word keys.
	o := scoped(core.XOR, core.StructPHT, false)
	o.Codec = core.RotXORCodec{}
	acc := ReferencePerception(o, trials, seed)
	if acc > 0.6 {
		t.Fatalf("RotXOR reference attack accuracy %.3f, want near chance", acc)
	}
}

func TestVerdictClassifier(t *testing.T) {
	if v := classifyRate(0.96, 0.96); v != NoProtection {
		t.Fatalf("full-rate attack classified %v", v)
	}
	if v := classifyRate(0.006, 0.96); v != Defend {
		t.Fatalf("near-zero attack classified %v", v)
	}
	if v := classifyRate(0.4, 0.96); v != Mitigate {
		t.Fatalf("partial attack classified %v", v)
	}
	if v := classifyAccuracy(0.52, 0.96); v != Defend {
		t.Fatalf("chance accuracy classified %v", v)
	}
	if v := classifyAccuracy(0.95, 0.96); v != NoProtection {
		t.Fatalf("baseline accuracy classified %v", v)
	}
	if worse(Defend, Mitigate) != Mitigate || worse(NoProtection, Defend) != NoProtection {
		t.Fatal("worse() ordering broken")
	}
	if capMitigate(NoProtection) != Mitigate || capMitigate(Defend) != Defend {
		t.Fatal("capMitigate broken")
	}
}

func TestTable1Shape(t *testing.T) {
	tab := Table1(QuickConfig())
	if len(tab.Rows) != 9 {
		t.Fatalf("Table 1 has %d rows, want 9", len(tab.Rows))
	}
	// Spot-check the paper's headline cells.
	cell := func(row, col int) string { return tab.Rows[row][col] }
	// BTB CompleteFlush on SMT: no protection at all.
	if cell(0, 4) != "No Protection" || cell(0, 5) != "No Protection" {
		t.Errorf("CF SMT row = %q/%q, want No Protection", cell(0, 4), cell(0, 5))
	}
	// Noisy-XOR-BTB: defends everything except SMT contention (Mitigate).
	if cell(3, 2) != "Defend" || cell(3, 3) != "Defend" || cell(3, 5) != "Mitigate" {
		t.Errorf("NXOR-BTB row wrong: %v", tab.Rows[3])
	}
	// Plain XOR-PHT single-core reuse: Mitigate (reference corner case).
	if cell(6, 2) != "Mitigate" {
		t.Errorf("XOR-PHT single reuse = %q, want Mitigate", cell(6, 2))
	}
	// Enhanced-XOR-PHT closes it.
	if cell(7, 2) != "Defend" {
		t.Errorf("Enhanced-XOR-PHT single reuse = %q, want Defend", cell(7, 2))
	}
}

func TestPoCAccuracyAnchors(t *testing.T) {
	tab := PoCAccuracy(QuickConfig())
	if len(tab.Rows) != 2 {
		t.Fatalf("PoC table has %d rows", len(tab.Rows))
	}
}

func TestDeterminism(t *testing.T) {
	a := BTBTraining(opts(core.NoisyXOR), SingleThreaded, 200, 3)
	b := BTBTraining(opts(core.NoisyXOR), SingleThreaded, 200, 3)
	if a != b {
		t.Fatal("attack simulation is not deterministic")
	}
}

func TestSingleStepDetectorDefendsBranchScope(t *testing.T) {
	// The §5.5 scenario 3 countermeasure blinds single-step perception
	// even on the unprotected baseline.
	acc := BranchScopeWithDetector(opts(core.Baseline), trials, seed)
	if acc > 0.57 {
		t.Fatalf("detector-equipped baseline BranchScope accuracy %.3f, want ~0.5", acc)
	}
	// Sanity: without the detector the same attack works (tested above).
}

func TestASLRLeak(t *testing.T) {
	// Jump-over-ASLR (§2.1): recovering the victim branch's BTB index
	// bits works on the baseline and collapses to chance under
	// Noisy-XOR-BP's index randomization.
	const candidates = 32
	base := ASLRLeak(opts(core.Baseline), SMT, 60, candidates, seed)
	if base < 0.85 {
		t.Fatalf("baseline ASLR leak rate %.3f, want > 0.85", base)
	}
	prot := ASLRLeak(opts(core.NoisyXOR), SMT, 60, candidates, seed)
	if prot > 3.0/candidates+0.1 {
		t.Fatalf("protected ASLR leak rate %.3f, want ~1/%d", prot, candidates)
	}
}

func TestRegistryCoversEveryPoC(t *testing.T) {
	want := []string{"aslr", "branch_scope", "branch_scope_detector", "btb_training",
		"pht_steering", "pht_training", "reference", "sbpa", "sbpa_blanket"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("registry names = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry names = %v, want %v", got, want)
		}
	}
	if _, ok := ByName("btb_training"); !ok {
		t.Fatal("btb_training not resolvable")
	}
	if _, ok := ByName("nonsense"); ok {
		t.Fatal("unregistered attack resolved")
	}
}

func TestRegistryMatchesExportedFunctions(t *testing.T) {
	// The registry entries are the engine's face of the PoCs: for the
	// same arguments they must measure the exact rate the exported
	// functions return (the property Table-1-through-the-engine relies
	// on).
	o := opts(core.NoisyXOR)
	if got, want := Measure(Request{Attack: "btb_training", Opts: o, Scenario: SingleThreaded,
		Trials: 150, Seed: 11}), BTBTraining(o, SingleThreaded, 150, 11); got != want {
		t.Fatalf("registry btb_training = %v, direct = %v", got, want)
	}
	if got, want := Measure(Request{Attack: "pht_training", Opts: o, Scenario: SingleThreaded,
		Trials: 60, Attempts: 30, Seed: 11}), PHTTraining(o, SingleThreaded, 60, 30, 11); got != want {
		t.Fatalf("registry pht_training = %v, direct = %v", got, want)
	}
	if got, want := Measure(Request{Attack: "sbpa", Opts: o, Scenario: SMT,
		Trials: 200, Seed: 11}), SBPAContention(o, SMT, 200, 11); got != want {
		t.Fatalf("registry sbpa = %v, direct = %v", got, want)
	}
}

func TestOutcomeArithmetic(t *testing.T) {
	a := Outcome{Successes: 3, Trials: 10}
	b := Outcome{Successes: 1, Trials: 5}
	if m := a.Add(b); m.Successes != 4 || m.Trials != 15 {
		t.Fatalf("merge = %+v", m)
	}
	if (Outcome{}).Rate() != 0 {
		t.Fatal("empty outcome rate not 0")
	}
	if r := a.Rate(); r != 0.3 {
		t.Fatalf("rate = %v", r)
	}
}

func TestRekeyPeriodIsTheIsolationKnob(t *testing.T) {
	// The re-key curve's premise: with timer-driven re-keying, XOR-BP's
	// residual BTB-training rate grows with the period — at period 1
	// (every scheduling event) it defends like the paper's design, and
	// by period 64 the trained state usually survives the train->probe
	// window, approaching the baseline rate.
	o := opts(core.XOR)
	tight := btbTraining(o, Env{Scenario: SingleThreaded, Seed: seed, RekeyPeriod: 1}, iters, 0).Rate()
	loose := btbTraining(o, Env{Scenario: SingleThreaded, Seed: seed, RekeyPeriod: 64}, iters, 0).Rate()
	if tight > 0.05 {
		t.Fatalf("rekey period 1 residual rate %.3f, want ~0 (per-event rotation)", tight)
	}
	if loose < 0.8 {
		t.Fatalf("rekey period 64 residual rate %.3f, want near baseline", loose)
	}
	mid := btbTraining(o, Env{Scenario: SingleThreaded, Seed: seed, RekeyPeriod: 8}, iters, 0).Rate()
	if !(tight < mid && mid < loose) {
		t.Fatalf("residual rate not monotonic in the period: %v, %v, %v", tight, mid, loose)
	}
}

func TestRekeyPeriodZeroMatchesEventDriven(t *testing.T) {
	// Period 0 is the paper's event-driven controller: byte-identical
	// behavior to the unparameterized PoC entry points.
	o := opts(core.NoisyXOR)
	a := btbTraining(o, Env{Scenario: SingleThreaded, Seed: seed}, 200, 0).Rate()
	b := BTBTraining(o, SingleThreaded, 200, seed)
	if a != b {
		t.Fatalf("Env without RekeyPeriod diverged: %v vs %v", a, b)
	}
}

func TestTable1WithCollectsASupersetOnZeroRates(t *testing.T) {
	// The engine renders Table 1 in two passes: a collect pass whose
	// measurer returns 0 for everything, then a replay pass against the
	// batch's results. The collect pass must request a superset of any
	// real pass (zero rates classify as Defend, which triggers every
	// conditional fallback), or the replay would dead-end.
	cfg := QuickConfig()
	var collected []Request
	Table1With(cfg, func(r Request) float64 { collected = append(collected, r); return 0 })
	seen := map[Request]bool{}
	for _, r := range collected {
		seen[normReq(r)] = true
	}
	Table1With(cfg, func(r Request) float64 {
		if !seen[normReq(r)] {
			t.Fatalf("real pass requested %+v, not collected by the zero pass", r)
		}
		return Measure(r)
	})
}

// normReq blanks the interface-typed option fields so a Request can be
// used as a map key regardless of codec/scrambler identity (they are
// carried by name on the wire anyway).
func normReq(r Request) Request {
	r.Opts.Codec, r.Opts.Scrambler = nil, nil
	return r
}
