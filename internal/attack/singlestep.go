package attack

import (
	"xorbp/internal/core"
	"xorbp/internal/rng"
)

// BranchScopeWithDetector reruns the BranchScope perception attack
// against a system equipped with the §5.5 scenario 3 single-step
// detector: the OS notices that the victim is being driven one
// instruction at a time and bypasses predictor updates for the starved
// thread, so the attacker's probe sees no victim-dependent state at all —
// independent of the encoding mechanism (it defends even the baseline).
// Returns the inference accuracy over bits (0.5 = chance).
func BranchScopeWithDetector(opts core.Options, bits int, seed uint64) float64 {
	return branchScopeDetector(opts, Env{Scenario: SingleThreaded, Seed: seed}, bits, 0).Rate()
}

// branchScopeDetector is BranchScopeWithDetector over an explicit
// environment, counted. Single-step detection is a single-core
// countermeasure, so the scenario is forced to SingleThreaded.
func branchScopeDetector(opts core.Options, ev Env, bits, _ int) Outcome {
	ev.Scenario = SingleThreaded
	e := newEnvWith(opts, ev)
	det := core.NewSingleStepDetector()
	secrets := rng.NewXoshiro256(rng.Mix64(ev.Seed ^ 0x5ed))
	correct := 0
	for i := 0; i < bits; i++ {
		secret := secrets.Bool(0.5)

		for _, t := range []bool{true, true, false} {
			e.dir.Predict(e.attacker, sharedCondPC)
			e.dir.Update(e.attacker, sharedCondPC, t)
		}

		// Single-step: each kernel entry observes the victim's starvation
		// (one instruction per round-trip).
		e.singleStep()
		det.KernelEntry(1)
		e.switchToVictim()
		e.dir.Predict(e.victim, sharedCondPC)
		if !det.Bypass() {
			// Updates are architecturally bypassed while the detector is
			// tripped.
			e.dir.Update(e.victim, sharedCondPC, secret)
		}
		e.switchToAttacker()
		e.singleStep()
		det.KernelEntry(1)

		probePred := e.dir.Predict(e.attacker, sharedCondPC)
		e.dir.Update(e.attacker, sharedCondPC, false)
		if e.observe(probePred) == secret {
			correct++
		}
	}
	return Outcome{Successes: correct, Trials: bits}
}
