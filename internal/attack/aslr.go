package attack

import (
	"xorbp/internal/core"
	"xorbp/internal/predictor"
	"xorbp/internal/rng"
)

// ASLRLeak implements the Jump-over-ASLR BTB attack of §2.1 (Evtyushkin
// et al. [12]): the BTB index uses only the low PC bits, so a victim
// branch at a randomized address collides with an attacker branch when
// their low bits match. The attacker sweeps candidate low-bit values,
// priming one BTB set per candidate and probing for the eviction the
// victim's branch causes — recovering the low bits of a victim code
// address and defeating ASLR.
//
// Under Noisy-XOR-BP the set the victim lands in depends on the victim's
// private index key, so the recovered "low bits" carry no information
// about the victim's addresses. Returns the fraction of trials where the
// attacker recovers the victim's true index bits (chance ≈ 1/candidates).
func ASLRLeak(opts core.Options, sc Scenario, trials, candidates int, seed uint64) float64 {
	return aslrLeak(opts, Env{Scenario: sc, Seed: seed}, trials, candidates).Rate()
}

// aslrLeak is ASLRLeak over an explicit environment, counted.
func aslrLeak(opts core.Options, ev Env, trials, candidates int) Outcome {
	e := newEnvWith(opts, ev)
	secrets := rng.NewXoshiro256(rng.Mix64(ev.Seed ^ 0xa51e))
	cfg := e.btb.Config()
	recovered := 0
	for trial := 0; trial < trials; trial++ {
		// The victim's branch lives at a randomized address; its BTB
		// index bits are the secret.
		secretIdx := uint64(secrets.Intn(candidates))
		victimPC := (uint64(secrets.Intn(1<<12))<<20 | secretIdx<<2) | 0x10000000

		best, bestMisses := -1, 0
		for cand := 0; cand < candidates; cand++ {
			// Prime every way of the candidate set with attacker branches.
			prime := make([]uint64, cfg.Ways)
			for w := range prime {
				// Distinct per-way bits must land inside the stored
				// partial-tag window (PC bits just above the index).
				prime[w] = uint64(cand)<<2 | uint64(w+1)<<12 | 0x20000000
				e.btb.Update(e.attacker, prime[w], prime[w]+16, predictor.UncondDirect)
			}
			e.switchToVictim()
			e.btb.Update(e.victim, victimPC, victimPC+64, predictor.CondDirect)
			e.switchToAttacker()
			misses := 0
			for _, pc := range prime {
				if _, hit := e.btb.Lookup(e.attacker, pc); !hit {
					misses++
				}
			}
			if misses > bestMisses {
				bestMisses = misses
				best = cand
			}
		}
		if best == int(secretIdx) && e.observe(true) {
			recovered++
		}
	}
	return Outcome{Successes: recovered, Trials: trials}
}
