// Package attack implements the paper's proof-of-concept attacks (§2,
// §5.5 and Listings 1–2) against the same predictor stack the performance
// experiments use, and the Defend/Mitigate/NoProtection classifier that
// regenerates Table 1.
//
// The attacks drive the BTB and direction predictor directly with the
// exact access sequences of the listings; OS interactions (the sleep(1)
// context switch, single-stepping interrupts) are modelled as the
// corresponding isolation-controller events. The cache side channel the
// listings use for observation is modelled as a noisy Boolean channel
// (DESIGN.md §2): the paper itself attributes its 96.5%/97.2% baseline
// rates and ~1% residual rate to Flush+Reload measurement noise on the
// RISC-V platform (§5.5 footnote 1), so the channel's false-negative and
// false-positive rates are set to land in that regime.
package attack

import (
	"xorbp/internal/btb"
	"xorbp/internal/core"
	"xorbp/internal/gshare"
	"xorbp/internal/predictor"
	"xorbp/internal/rng"
)

// Channel noise of the modelled Flush+Reload observation (§5.5 footnote:
// whole-cache eviction on RISC-V is imprecise).
const (
	// falseNegative is the probability a real signal is missed.
	falseNegative = 0.035
	// falsePositive is the probability noise looks like a signal.
	falsePositive = 0.008
)

// Scenario selects the core arrangement: attacker and victim time-sharing
// one hardware thread (context switches between phases) or running
// concurrently on two SMT threads (no switches between phases).
type Scenario int

// Scenarios.
const (
	// SingleThreaded: attacker and victim share hardware thread 0 and the
	// OS switches between them (the Listing 1/2 "sleep(1)" scenario).
	SingleThreaded Scenario = iota
	// SMT: attacker on hardware thread 0, victim on hardware thread 1,
	// running concurrently.
	SMT
)

// String names the scenario.
func (s Scenario) String() string {
	if s == SMT {
		return "SMT"
	}
	return "single"
}

// Scenarios lists both core arrangements in grid order.
func Scenarios() []Scenario { return []Scenario{SingleThreaded, SMT} }

// ScenarioByName resolves a scenario's wire name (its String() value).
func ScenarioByName(name string) (Scenario, bool) {
	switch name {
	case "single":
		return SingleThreaded, true
	case "SMT":
		return SMT, true
	}
	return SingleThreaded, false
}

// Env describes the attacked system beyond the mechanism options: the
// core arrangement, the seed, and the two sweep knobs the security grid
// adds on top of the paper's PoC setup.
type Env struct {
	Scenario Scenario
	Seed     uint64
	// NewDir overrides the direction predictor under attack. nil selects
	// the PoC default: the FPGA prototype's base configuration reduced to
	// its PHT essence (a bimodal table), matching the BranchScope model
	// of a directional predictor.
	NewDir func(*core.Controller) predictor.DirPredictor
	// RekeyPeriod switches the isolation controller from event-driven to
	// timer-driven: 0 (the paper's design) delivers every scheduling
	// event to the controller, so keys rotate (or tables flush) on every
	// context switch and privilege change; K >= 1 models a periodic
	// re-key/flush timer with expected period K events. The timer is
	// asynchronous to the software's scheduling pattern, so each event
	// is delivered with probability 1/K (a strict every-Kth-event rule
	// would alias against the attack loop's fixed event parity and
	// either always or never land inside the train->probe window).
	// Between deliveries the attacker and a time-shared victim share one
	// domain key, so the residual attack rate grows with the period —
	// the lightweight-isolation knob the re-key curve sweeps.
	RekeyPeriod uint64
}

// env bundles the structures under attack.
type env struct {
	ctrl *core.Controller
	btb  *btb.BTB
	dir  predictor.DirPredictor
	rng  *rng.Xoshiro256

	attacker core.Domain
	victim   core.Domain
	scenario Scenario

	rekeyPeriod uint64
	timer       *rng.Xoshiro256 // drives the asynchronous re-key timer
}

// newEnv builds the attacked system with the PoC defaults.
func newEnv(opts core.Options, sc Scenario, seed uint64) *env {
	return newEnvWith(opts, Env{Scenario: sc, Seed: seed})
}

// newEnvWith builds the attacked system for an explicit environment.
func newEnvWith(opts core.Options, ev Env) *env {
	ctrl := core.NewController(opts, ev.Seed)
	e := &env{
		ctrl:        ctrl,
		btb:         btb.New(btb.FPGAConfig(), ctrl),
		rng:         rng.NewXoshiro256(rng.Mix64(ev.Seed ^ 0xa77ac)),
		scenario:    ev.Scenario,
		rekeyPeriod: ev.RekeyPeriod,
	}
	if ev.RekeyPeriod > 0 {
		// A dedicated stream: the timer must not perturb the observation
		// noise draws shared with the period-0 (event-driven) runs.
		e.timer = rng.NewXoshiro256(rng.Mix64(ev.Seed ^ 0x7153e))
	}
	if ev.NewDir != nil {
		e.dir = ev.NewDir(ctrl)
	} else {
		e.dir = gshare.New(gshare.Config{IndexBits: 12, HistoryBits: 0}, ctrl)
	}
	e.attacker = core.Domain{Thread: 0, Priv: core.User}
	if ev.Scenario == SMT {
		e.victim = core.Domain{Thread: 1, Priv: core.User}
	} else {
		e.victim = core.Domain{Thread: 0, Priv: core.User}
	}
	return e
}

// isoEvent delivers one scheduling event to the isolation controller —
// always under the paper's event-driven design, or when the
// asynchronous timer fires (probability 1/RekeyPeriod per event) when
// the controller is timer-driven.
func (e *env) isoEvent(fire func()) {
	if e.rekeyPeriod == 0 {
		fire()
		return
	}
	if e.rekeyPeriod == 1 || e.timer.Bool(1/float64(e.rekeyPeriod)) {
		fire()
	}
}

// switchToVictim models the OS handing the core to the victim (Listing
// 1/2 "sleep(1)"): on a single-threaded core this is a context switch; on
// SMT the victim is already running.
func (e *env) switchToVictim() {
	if e.scenario == SingleThreaded {
		e.isoEvent(func() { e.ctrl.ContextSwitch(0) })
	}
}

// switchToAttacker models the switch back for the probe phase.
func (e *env) switchToAttacker() {
	if e.scenario == SingleThreaded {
		e.isoEvent(func() { e.ctrl.ContextSwitch(0) })
	}
}

// singleStep models the attacker forcing one victim instruction via
// interrupts (the BranchScope technique, §3): each step is a kernel
// round-trip on the victim's hardware thread.
func (e *env) singleStep() {
	e.isoEvent(func() { e.ctrl.PrivilegeChange(e.victim.Thread, core.Kernel) })
	e.isoEvent(func() { e.ctrl.PrivilegeChange(e.victim.Thread, core.User) })
}

// observe passes a true signal through the noisy side channel.
func (e *env) observe(signal bool) bool {
	if signal {
		return !e.rng.Bool(falseNegative)
	}
	return e.rng.Bool(falsePositive)
}

// Shared virtual addresses of the PoC listings.
const (
	sharedIndirectPC = 0x40_0800 // shared_interface's p() call site
	attackerFn       = 0xbad000  // attacker_function
	victimFn         = 0x600100  // victim_function
	sharedCondPC     = 0x40_0c00 // Listing 2's bounds check
)

// BTBTraining runs the Listing 1 attack: the attacker trains the shared
// indirect branch to attacker_function; success means the victim's
// next execution of shared_interface speculatively jumps there. Returns
// the success rate over iterations.
func BTBTraining(opts core.Options, sc Scenario, iterations int, seed uint64) float64 {
	return btbTraining(opts, Env{Scenario: sc, Seed: seed}, iterations, 0).Rate()
}

// btbTraining is BTBTraining over an explicit environment, counted.
func btbTraining(opts core.Options, ev Env, iterations, _ int) Outcome {
	e := newEnvWith(opts, ev)
	successes := 0
	for i := 0; i < iterations; i++ {
		// Attacker: p points at attacker_function; execute the call.
		for r := 0; r < 4; r++ {
			e.btb.Update(e.attacker, sharedIndirectPC, attackerFn, predictor.Indirect)
		}
		e.switchToVictim()
		// Victim executes shared_interface(); the front end predicts the
		// indirect target from the BTB under the victim's keys.
		tgt, hit := e.btb.Lookup(e.victim, sharedIndirectPC)
		hijacked := hit && tgt == attackerFn
		// The victim resolves the real target and updates.
		e.btb.Update(e.victim, sharedIndirectPC, victimFn, predictor.Indirect)
		if e.observe(hijacked) {
			successes++
		}
		e.switchToAttacker()
	}
	return Outcome{Successes: successes, Trials: iterations}
}

// PHTTraining runs the Listing 2 attack: the attacker trains the shared
// bounds check not-taken; an iteration is `attempts` victim executions
// and the attack succeeds if more than 90% of them follow the trained
// direction (the paper's decision rule). Returns the success rate over
// iterations.
func PHTTraining(opts core.Options, sc Scenario, iterations, attempts int, seed uint64) float64 {
	return phtTraining(opts, Env{Scenario: sc, Seed: seed}, iterations, attempts).Rate()
}

// phtTraining is PHTTraining over an explicit environment, counted.
func phtTraining(opts core.Options, ev Env, iterations, attempts int) Outcome {
	e := newEnvWith(opts, ev)
	const trainedDirection = false // attacker trains Not-Taken
	successes := 0
	for i := 0; i < iterations; i++ {
		followed := 0
		for a := 0; a < attempts; a++ {
			// Train: shared_interface(i) with i >= array_size, 32 times
			// (enough to saturate any counter on the path).
			for r := 0; r < 32; r++ {
				e.dir.Predict(e.attacker, sharedCondPC)
				e.dir.Update(e.attacker, sharedCondPC, trainedDirection)
			}
			e.switchToVictim()
			pred := e.dir.Predict(e.victim, sharedCondPC)
			// The victim's in-bounds access is architecturally taken.
			e.dir.Update(e.victim, sharedCondPC, true)
			if e.observe(pred == trainedDirection) {
				followed++
			}
			e.switchToAttacker()
		}
		if followed*10 > attempts*9 {
			successes++
		}
	}
	return Outcome{Successes: successes, Trials: iterations}
}

// BranchScope runs the §2.1 perception attack: the attacker primes the
// victim branch's PHT entry to a weak state, single-steps the victim
// through one execution of its secret-dependent branch, then probes the
// entry and infers the secret direction from its own (mis)prediction.
// Returns the inference accuracy over secret bits (0.5 = chance).
func BranchScope(opts core.Options, sc Scenario, bits int, seed uint64) float64 {
	return branchScope(opts, Env{Scenario: sc, Seed: seed}, bits, 0).Rate()
}

// branchScope is BranchScope over an explicit environment, counted.
func branchScope(opts core.Options, ev Env, bits, _ int) Outcome {
	e := newEnvWith(opts, ev)
	secrets := rng.NewXoshiro256(rng.Mix64(ev.Seed ^ 0x5ec))
	correct := 0
	for i := 0; i < bits; i++ {
		secret := secrets.Bool(0.5)

		// Prime: drive the shared entry to weak-taken (T,T,N from any
		// state lands on 2 for a 2-bit counter).
		for _, t := range []bool{true, true, false} {
			e.dir.Predict(e.attacker, sharedCondPC)
			e.dir.Update(e.attacker, sharedCondPC, t)
		}

		// Victim executes its branch once under single-step control.
		e.singleStep()
		e.switchToVictim()
		e.dir.Predict(e.victim, sharedCondPC)
		e.dir.Update(e.victim, sharedCondPC, secret)
		e.switchToAttacker()
		e.singleStep()

		// Probe: from weak-taken (2), a taken secret moved the counter to
		// 3 and a not-taken secret to 1, so the attacker's not-taken
		// probe mispredicts exactly when the secret was taken.
		probePred := e.dir.Predict(e.attacker, sharedCondPC)
		e.dir.Update(e.attacker, sharedCondPC, false)
		inferredTaken := e.observe(probePred)
		if inferredTaken == secret {
			correct++
		}
	}
	return Outcome{Successes: correct, Trials: bits}
}

// SBPAContention runs the §2.1 contention attack: the attacker occupies
// every way of the BTB set congruent with the victim's target branch,
// lets the victim run, then probes its own entries; an eviction reveals
// that the victim's branch was taken. Returns the inference accuracy over
// trials (0.5 = chance).
func SBPAContention(opts core.Options, sc Scenario, trials int, seed uint64) float64 {
	return sbpaContention(opts, Env{Scenario: sc, Seed: seed}, trials, 0).Rate()
}

// sbpaContention is SBPAContention over an explicit environment, counted.
func sbpaContention(opts core.Options, ev Env, trials, _ int) Outcome {
	e := newEnvWith(opts, ev)
	secrets := rng.NewXoshiro256(rng.Mix64(ev.Seed ^ 0x5b9a))
	cfg := e.btb.Config()
	// Attacker branches congruent with the victim branch's set: same
	// index bits, different tags.
	victimPC := uint64(0x40_1000)
	prime := make([]uint64, cfg.Ways)
	for w := range prime {
		prime[w] = victimPC + uint64(w+1)*uint64(cfg.Sets)*4
	}
	correct := 0
	for i := 0; i < trials; i++ {
		secret := secrets.Bool(0.5) // was the victim branch taken?

		// Prime: fill the set.
		for _, pc := range prime {
			e.btb.Update(e.attacker, pc, pc+16, predictor.UncondDirect)
		}
		e.switchToVictim()
		if secret {
			// Taken branches allocate in the BTB ("the BTB will be
			// updated if and only if the target branch is Taken", §2.1).
			e.btb.Update(e.victim, victimPC, victimPC+64, predictor.CondDirect)
		}
		e.switchToAttacker()

		// Probe: count misses among the attacker's primed branches.
		misses := 0
		for _, pc := range prime {
			if _, hit := e.btb.Lookup(e.attacker, pc); !hit {
				misses++
			}
		}
		inferredTaken := e.observe(misses > 0)
		if inferredTaken == secret {
			correct++
		}
	}
	return Outcome{Successes: correct, Trials: trials}
}
