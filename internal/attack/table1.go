package attack

import (
	"fmt"

	"xorbp/internal/core"
	"xorbp/internal/report"
)

// Verdict is the Table 1 classification.
type Verdict int

// Verdicts, ordered from strongest protection to none.
const (
	Defend Verdict = iota
	Mitigate
	NoProtection
	NotApplicable
)

// String renders the verdict with the paper's vocabulary.
func (v Verdict) String() string {
	switch v {
	case Defend:
		return "Defend"
	case Mitigate:
		return "Mitigate"
	case NoProtection:
		return "No Protection"
	default:
		return "n/a"
	}
}

// worse returns the weaker of two verdicts.
func worse(a, b Verdict) Verdict {
	if b > a && b != NotApplicable {
		return b
	}
	if a == NotApplicable {
		return b
	}
	return a
}

// classifyRate classifies a success-rate metric (training attacks, floor
// near 0) against the measured baseline rate.
func classifyRate(rate, baseline float64) Verdict {
	switch {
	case rate < 0.05:
		return Defend
	case rate > 0.8*baseline:
		return NoProtection
	default:
		return Mitigate
	}
}

// classifyAccuracy classifies an inference-accuracy metric (perception
// and contention attacks, chance = 0.5).
func classifyAccuracy(acc, baseline float64) Verdict {
	excess := acc - 0.5
	baseExcess := baseline - 0.5
	switch {
	case excess < 0.08:
		return Defend
	case baseExcess > 0 && excess > 0.8*baseExcess:
		return NoProtection
	default:
		return Mitigate
	}
}

// capMitigate caps a conditional attack's contribution: succeeding via a
// precondition-laden channel (a usable reference branch, blanket priming
// that only reveals "some taken branch ran") demonstrates residual
// leakage, not full compromise.
func capMitigate(v Verdict) Verdict {
	if v == NoProtection {
		return Mitigate
	}
	return v
}

// PHTSteering measures the attacker's ability to *choose* the victim's
// predicted direction: an iteration succeeds only if the attacker can
// steer the victim branch both taken and not-taken on demand (>90% of
// attempts each). This separates real influence from coincidence with the
// predictor's reset state.
func PHTSteering(opts core.Options, sc Scenario, iterations, attempts int, seed uint64) float64 {
	return phtSteering(opts, Env{Scenario: sc, Seed: seed}, iterations, attempts).Rate()
}

// phtSteering is PHTSteering over an explicit environment, counted.
func phtSteering(opts core.Options, ev Env, iterations, attempts int) Outcome {
	e := newEnvWith(opts, ev)
	successes := 0
	for i := 0; i < iterations; i++ {
		ok := true
		for _, dir := range []bool{true, false} {
			followed := 0
			for a := 0; a < attempts; a++ {
				for r := 0; r < 32; r++ {
					e.dir.Predict(e.attacker, sharedCondPC)
					e.dir.Update(e.attacker, sharedCondPC, dir)
				}
				e.switchToVictim()
				pred := e.dir.Predict(e.victim, sharedCondPC)
				e.dir.Update(e.victim, sharedCondPC, !dir) // architecturally opposite
				if e.observe(pred == dir) {
					followed++
				}
				e.switchToAttacker()
			}
			if followed*10 <= attempts*9 {
				ok = false
				break
			}
		}
		if ok {
			successes++
		}
	}
	return Outcome{Successes: successes, Trials: iterations}
}

// Config sizes the Table 1 / PoC experiments.
type Config struct {
	// Iterations for the training attacks (the paper uses 10000).
	Iterations int
	// Attempts per PHT-training iteration (the paper uses 100).
	Attempts int
	// Bits/trials for perception and contention attacks.
	Trials int
	// Seed for determinism.
	Seed uint64
}

// DefaultConfig returns paper-equivalent sizes.
func DefaultConfig() Config {
	return Config{Iterations: 10000, Attempts: 100, Trials: 4000, Seed: 1}
}

// QuickConfig returns reduced sizes for tests and benches.
func QuickConfig() Config {
	return Config{Iterations: 300, Attempts: 40, Trials: 600, Seed: 1}
}

// mechanism option sets for the Table 1 rows.
func btbRows() []struct {
	name string
	opts core.Options
} {
	mk := func(m core.Mechanism) core.Options {
		o := core.OptionsFor(m)
		o.Scope = core.StructBTB
		return o
	}
	return []struct {
		name string
		opts core.Options
	}{
		{"Complete Flush", mk(core.CompleteFlush)},
		{"Precise Flush", mk(core.PreciseFlush)},
		{"XOR-BTB", mk(core.XOR)},
		{"Noisy-XOR-BTB", mk(core.NoisyXOR)},
	}
}

func phtRows() []struct {
	name string
	opts core.Options
} {
	mk := func(m core.Mechanism, enhanced bool) core.Options {
		o := core.OptionsFor(m)
		o.Scope = core.StructPHT
		o.EnhancedPHT = enhanced
		return o
	}
	return []struct {
		name string
		opts core.Options
	}{
		{"Complete Flush", mk(core.CompleteFlush, false)},
		{"Precise Flush", mk(core.PreciseFlush, false)},
		{"XOR-PHT", mk(core.XOR, false)},
		{"Enhanced-XOR-PHT", mk(core.XOR, true)},
		{"Noisy-XOR-PHT", mk(core.NoisyXOR, true)},
	}
}

// Table1 regenerates the paper's security comparison by running every
// attack against every mechanism on both core arrangements and
// classifying the measured rates.
func Table1(cfg Config) *report.Table { return Table1With(cfg, Measure) }

// Table1With is Table1 with measurement delegated: every attack rate the
// classification needs is obtained through m, so the same table can be
// computed in-process (Measure) or through the sweep engine — cached,
// parallel, distributed — with verdicts guaranteed identical, because a
// measurement is a pure function of its Request either way.
func Table1With(cfg Config, m Measurer) *report.Table {
	t := &report.Table{
		Title: "Table 1: security comparison (measured)",
		Header: []string{"structure", "mechanism",
			"single/reuse", "single/contention", "SMT/reuse", "SMT/contention"},
		Caption: "Verdicts derived from measured attack success; 'Mitigate' marks\n" +
			"residual conditional leakage (reference-branch decode for plain\n" +
			"XOR-PHT, blanket-priming detection for Noisy-XOR-BTB on SMT).\n" +
			"PHT contention is n/a: PHT updates overwrite rather than evict\n" +
			"(§2.1), so no contention channel exists.\n" +
			"Known deltas vs the paper's analytic grades: (1) SMT/reuse under\n" +
			"the XOR mechanisms is graded Mitigate there via the unbounded-\n" +
			"retry 2^-(N+T) bound; the measured single-shot rate rounds to\n" +
			"Defend. (2) The paper's Precise Flush PHT row assumes per-entry\n" +
			"thread IDs even for 2-bit counters (its own footnote calls that\n" +
			"cost prohibitive); this PHT carries none, so PF measures\n" +
			"No Protection against SMT reuse.",
	}
	base := core.OptionsFor(core.Baseline)
	req := func(attack string, opts core.Options, sc Scenario, trials, attempts int) Request {
		return Request{Attack: attack, Opts: opts, Scenario: sc,
			Trials: trials, Attempts: attempts, Seed: cfg.Seed}
	}

	// Baseline reference rates.
	btbTrainBase := m(req("btb_training", base, SingleThreaded, cfg.Iterations, 0))
	sbpaBase := m(req("sbpa", base, SingleThreaded, cfg.Trials, 0))
	phtSteerBase := m(req("pht_steering", base, SingleThreaded, cfg.Iterations/10, cfg.Attempts))
	bsBase := m(req("branch_scope", base, SingleThreaded, cfg.Trials, 0))

	for _, row := range btbRows() {
		cells := []string{"BTB", row.name}
		for _, sc := range []Scenario{SingleThreaded, SMT} {
			// Reuse: malicious training.
			v := classifyRate(m(req("btb_training", row.opts, sc, cfg.Iterations, 0)), btbTrainBase)
			cells = append(cells, v.String())
			// Contention: targeted SBPA, with the blanket variant as the
			// conditional fallback.
			cv := classifyAccuracy(m(req("sbpa", row.opts, sc, cfg.Trials, 0)), sbpaBase)
			if cv == Defend {
				blanket := classifyAccuracy(m(req("sbpa_blanket", row.opts, sc, cfg.Trials/4, 0)), sbpaBase)
				cv = worse(cv, capMitigate(blanket))
			}
			cells = append(cells, cv.String())
		}
		// Reorder: single/reuse, single/cont, smt/reuse, smt/cont already.
		t.AddRow(cells...)
	}

	for _, row := range phtRows() {
		cells := []string{"PHT", row.name}
		for _, sc := range []Scenario{SingleThreaded, SMT} {
			// Reuse: steering + perception, plus the reference-branch
			// corner case on the single-threaded core.
			v := classifyRate(m(req("pht_steering", row.opts, sc, cfg.Iterations/10, cfg.Attempts)), phtSteerBase)
			v = worse(v, classifyAccuracy(m(req("branch_scope", row.opts, sc, cfg.Trials, 0)), bsBase))
			if sc == SingleThreaded {
				ref := classifyAccuracy(m(req("reference", row.opts, SingleThreaded, cfg.Trials, 0)), 1.0-falseNegative)
				v = worse(v, capMitigate(ref))
			}
			cells = append(cells, v.String(), NotApplicable.String())
		}
		t.AddRow(cells...)
	}
	return t
}

// PoCAccuracy reproduces the §5.5(3) experiment: training success against
// BTB and PHT for the baseline and the XOR-based isolation, with the
// paper's anchors (96.5% / 97.2% baseline, <1% protected).
func PoCAccuracy(cfg Config) *report.Table { return PoCAccuracyWith(cfg, Measure) }

// PoCAccuracyWith is PoCAccuracy with measurement delegated, like
// Table1With.
func PoCAccuracyWith(cfg Config, m Measurer) *report.Table {
	t := &report.Table{
		Title:  "PoC attack accuracy (Section 5.5(3))",
		Header: []string{"attack", "Baseline", "Noisy-XOR-BP"},
		Caption: "Paper anchors: baseline 96.5% (BTB) / 97.2% (PHT); with\n" +
			"XOR-based isolation both fall below 1%.",
	}
	base := core.OptionsFor(core.Baseline)
	nxor := core.OptionsFor(core.NoisyXOR)
	fmtPct := func(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
	req := func(attack string, opts core.Options, attempts int) Request {
		return Request{Attack: attack, Opts: opts, Scenario: SingleThreaded,
			Trials: cfg.Iterations, Attempts: attempts, Seed: cfg.Seed}
	}
	t.AddRow("BTB training (Listing 1)",
		fmtPct(m(req("btb_training", base, 0))),
		fmtPct(m(req("btb_training", nxor, 0))))
	t.AddRow("PHT training (Listing 2)",
		fmtPct(m(req("pht_training", base, cfg.Attempts))),
		fmtPct(m(req("pht_training", nxor, cfg.Attempts))))
	return t
}
