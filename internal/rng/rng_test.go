package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMix64Deterministic(t *testing.T) {
	if Mix64(0) != Mix64(0) {
		t.Fatal("Mix64 is not deterministic")
	}
	if Mix64(1) == Mix64(2) {
		t.Fatal("Mix64 collides on adjacent inputs")
	}
}

func TestMix64AvalancheProperty(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	f := func(x uint64, bit uint8) bool {
		b := uint(bit % 64)
		a := Mix64(x)
		c := Mix64(x ^ (1 << b))
		diff := a ^ c
		n := 0
		for diff != 0 {
			diff &= diff - 1
			n++
		}
		return n >= 12 && n <= 52
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitMix64Sequence(t *testing.T) {
	// Known-answer test against the SplitMix64 reference with seed 0:
	// first outputs of the reference C implementation.
	s := NewSplitMix64(0)
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
	}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Fatalf("output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestXoshiroDeterminism(t *testing.T) {
	a := NewXoshiro256(42)
	b := NewXoshiro256(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverge at draw %d", i)
		}
	}
}

func TestXoshiroSeedSensitivity(t *testing.T) {
	a := NewXoshiro256(1)
	b := NewXoshiro256(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds collided %d/100 times", same)
	}
}

func TestIntnRange(t *testing.T) {
	g := NewXoshiro256(7)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := g.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewXoshiro256(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-squared-ish sanity check over 10 buckets.
	g := NewXoshiro256(99)
	const buckets = 10
	const draws = 100000
	var count [buckets]int
	for i := 0; i < draws; i++ {
		count[g.Uint64n(buckets)]++
	}
	want := float64(draws) / buckets
	for i, c := range count {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d too far from %f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	g := NewXoshiro256(3)
	for i := 0; i < 10000; i++ {
		v := g.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	g := NewXoshiro256(11)
	const draws = 200000
	hits := 0
	for i := 0; i < draws; i++ {
		if g.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / draws
	if p < 0.29 || p > 0.31 {
		t.Fatalf("Bool(0.3) frequency %v out of tolerance", p)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := NewXoshiro256(5)
	child := parent.Fork()
	c1 := child.Uint64()
	// A fresh parent consumed differently must yield the same child stream.
	parent2 := NewXoshiro256(5)
	child2 := parent2.Fork()
	parent2.Uint64() // extra parent draws after the fork
	parent2.Uint64()
	if child2.Uint64() != c1 {
		t.Fatal("forked stream depends on later parent draws")
	}
}

func TestHWRNGDeterministicPerSeed(t *testing.T) {
	a := NewHWRNG(1)
	b := NewHWRNG(1)
	c := NewHWRNG(2)
	av, bv, cv := a.Draw(), b.Draw(), c.Draw()
	if av != bv {
		t.Fatal("HWRNG not reproducible for equal seeds")
	}
	if av == cv {
		t.Fatal("HWRNG seed does not influence stream")
	}
}

func BenchmarkXoshiroUint64(b *testing.B) {
	g := NewXoshiro256(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += g.Uint64()
	}
	_ = sink
}
