// Package rng provides the deterministic pseudo-random sources used by
// every simulated component in this repository.
//
// Two generators are provided:
//
//   - SplitMix64: a tiny, stateless-feeling mixer used both as a seeding
//     function and as a fast per-index hash (the Enhanced-XOR-PHT word key
//     schedule is built on Mix64).
//   - Xoshiro256: the general-purpose stream generator used for workload
//     synthesis and the hardware random-number-generator model.
//
// All randomness in the simulator must flow from explicitly seeded sources
// so that every experiment is exactly reproducible (see DESIGN.md §6).
// math/rand is deliberately not used: its global state would make results
// depend on test execution order.
package rng

import (
	"math/bits"

	"xorbp/internal/snap"
)

// Mix64 is the SplitMix64 finalizer. It maps a 64-bit value to a
// statistically independent 64-bit value and is its own documentation of
// the constants from Steele et al., "Fast Splittable Pseudorandom Number
// Generators" (OOPSLA 2014).
//
//bpvet:hotpath
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SplitMix64 is a counter-based PRNG: each call advances an internal
// counter and returns Mix64 of it. It is used to expand a single seed into
// independent sub-seeds.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next 64-bit value in the stream.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	x := s.state
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Snapshot writes the counter state.
func (s *SplitMix64) Snapshot(w *snap.Writer) { w.U64(s.state) }

// Restore replaces the counter state.
func (s *SplitMix64) Restore(r *snap.Reader) { s.state = r.U64() }

// Xoshiro256 implements xoshiro256** (Blackman & Vigna). It is the
// workhorse generator for workload synthesis: fast, 256-bit state, and
// passes the statistical batteries relevant at simulation scale.
type Xoshiro256 struct {
	s [4]uint64
}

// NewXoshiro256 returns a generator whose state is expanded from seed via
// SplitMix64, as recommended by the xoshiro authors. A zero seed is valid.
func NewXoshiro256(seed uint64) *Xoshiro256 {
	var g Xoshiro256
	sm := NewSplitMix64(seed)
	for i := range g.s {
		g.s[i] = sm.Next()
	}
	return &g
}

// Uint64 returns the next value in the stream.
//
//bpvet:hotpath
func (g *Xoshiro256) Uint64() uint64 {
	result := bits.RotateLeft64(g.s[1]*5, 7) * 9
	t := g.s[1] << 17
	g.s[2] ^= g.s[0]
	g.s[3] ^= g.s[1]
	g.s[1] ^= g.s[2]
	g.s[0] ^= g.s[3]
	g.s[2] ^= t
	g.s[3] = bits.RotateLeft64(g.s[3], 45)
	return result
}

// Uint32 returns the high 32 bits of the next value (the high bits of
// xoshiro256** have the best statistical quality).
//
//bpvet:hotpath
func (g *Xoshiro256) Uint32() uint32 { return uint32(g.Uint64() >> 32) }

// Intn returns a uniform value in [0, n). It panics if n <= 0.
// Lemire's multiply-shift rejection method avoids modulo bias.
//
//bpvet:hotpath
func (g *Xoshiro256) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(g.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
//
//bpvet:hotpath
func (g *Xoshiro256) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	// Lemire rejection sampling on the 128-bit product.
	for {
		v := g.Uint64()
		hi, lo := bits.Mul64(v, n)
		if lo >= n || lo >= -n%n {
			return hi
		}
	}
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
//
//bpvet:hotpath
func (g *Xoshiro256) Float64() float64 {
	return float64(g.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
//
//bpvet:hotpath
func (g *Xoshiro256) Bool(p float64) bool { return g.Float64() < p }

// Fork returns a new generator seeded from this one's stream. Forked
// generators produce streams independent of further draws from the parent,
// which keeps sub-components deterministic when the parent's consumption
// pattern changes.
func (g *Xoshiro256) Fork() *Xoshiro256 { return NewXoshiro256(g.Uint64()) }

// Snapshot writes the 256-bit stream state. Restoring it resumes the
// stream at exactly the draw the snapshot was taken at.
func (g *Xoshiro256) Snapshot(w *snap.Writer) {
	w.U64(g.s[0])
	w.U64(g.s[1])
	w.U64(g.s[2])
	w.U64(g.s[3])
}

// Restore replaces the stream state.
func (g *Xoshiro256) Restore(r *snap.Reader) {
	g.s[0] = r.U64()
	g.s[1] = r.U64()
	g.s[2] = r.U64()
	g.s[3] = r.U64()
}

// HWRNG models the dedicated hardware random number generator the paper
// assumes for key generation ("we assume these random numbers can be
// generated using a dedicated hardware mechanism", §5.4). In silicon this
// is a true entropy source; in the simulator it is a seeded stream so that
// experiments replay exactly. The type exists (rather than using
// Xoshiro256 directly) so key-consuming code documents where hardware
// entropy is required.
type HWRNG struct {
	g *Xoshiro256
}

// NewHWRNG returns a hardware RNG model with the given simulation seed.
func NewHWRNG(seed uint64) *HWRNG {
	return &HWRNG{g: NewXoshiro256(Mix64(seed ^ 0x48575f524e47))} // "HW_RNG"
}

// Draw returns the next random key-generation value.
//
//bpvet:hotpath
func (r *HWRNG) Draw() uint64 { return r.g.Uint64() }

// Snapshot writes the entropy stream position.
func (r *HWRNG) Snapshot(w *snap.Writer) { r.g.Snapshot(w) }

// Restore replaces the entropy stream position.
func (r *HWRNG) Restore(rd *snap.Reader) { r.g.Restore(rd) }
