package driver

import (
	"fmt"
	"net/http"
	"os"

	"xorbp/internal/chaos"
	"xorbp/internal/runcache"
)

// Chaos is the drivers' view of an active fault-injection plan: the
// injector plus the ready-made seam adapters Connect and the store
// wiring consume.
type Chaos struct {
	Inj *chaos.Injector
}

// LoadChaos loads and arms a -chaos plan file. Returns nil when path
// is empty (no chaos); exits on an invalid plan — a typo'd plan must
// not silently run fault-free.
func LoadChaos(prog, path string) *Chaos {
	if path == "" {
		return nil
	}
	plan, err := chaos.LoadPlan(path)
	if err != nil {
		fatal(prog, 1, "%v", err)
	}
	inj, err := chaos.NewInjector(plan)
	if err != nil {
		fatal(prog, 1, "%v", err)
	}
	fmt.Fprintf(os.Stderr, "%s: chaos plan %s armed (seed %d, %d rules)\n",
		prog, path, plan.Seed, len(plan.Rules))
	return &Chaos{Inj: inj}
}

// Transport returns the fault-injecting HTTP transport for
// ConnectOptions.Transport (nil when chaos is off).
func (c *Chaos) Transport() http.RoundTripper {
	if c == nil {
		return nil
	}
	return chaos.NewTransport(c.Inj, nil)
}

// ArmStore attaches the cache write-path faults to the run cache
// store. No-op when chaos is off or the store is nil.
func (c *Chaos) ArmStore(st *runcache.Store) {
	if c == nil || st == nil {
		return
	}
	st.SetFileFault(chaos.NewCacheFaults(c.Inj))
}

// Report prints the injections the plan actually fired, for the end of
// a chaos run's stderr.
func (c *Chaos) Report(prog string) {
	if c == nil {
		return
	}
	lines := c.Inj.CountLines()
	if len(lines) == 0 {
		fmt.Fprintf(os.Stderr, "%s: chaos: no faults fired\n", prog)
		return
	}
	for _, l := range lines {
		fmt.Fprintf(os.Stderr, "%s: chaos: injected %s\n", prog, l)
	}
}
