package driver

import (
	"strings"
	"testing"
	"time"

	"xorbp/internal/experiment"
)

func TestParseShardUnsharded(t *testing.T) {
	i, n := ParseShard("test", "", false)
	if i != 0 || n != 1 {
		t.Fatalf("unsharded = %d/%d, want 0/1", i, n)
	}
}

func TestConnectLocal(t *testing.T) {
	conn := Connect(ConnectOptions{Prog: "test", Workers: 7, WorkersSet: true})
	defer conn.Close()
	if conn.Backend != nil || conn.Client != nil {
		t.Fatal("local connect returned a remote backend")
	}
	if conn.PoolSize != 7 || conn.Name != "local" {
		t.Fatalf("local connect = (%d, %q), want (7, local)", conn.PoolSize, conn.Name)
	}
	if conn.Policy != "" || conn.WorkerCached() != 0 || conn.Queue() != nil {
		t.Fatalf("local conn carries fleet state: policy %q, worker-cached %d",
			conn.Policy, conn.WorkerCached())
	}
}

func TestSummarize(t *testing.T) {
	exec := experiment.NewExecutor(2)
	conn := &Conn{Name: "local"}
	rec := Summarize(exec, conn, 1, 4, time.Now().Add(-time.Second))
	if rec.Type != "summary" || rec.Backend != "local" || rec.Workers != 2 {
		t.Fatalf("summary = %+v", rec)
	}
	if rec.Shard != "1/4" {
		t.Fatalf("shard = %q, want 1/4", rec.Shard)
	}
	if rec.WallMS < 900 {
		t.Fatalf("wall = %vms, want ~1000", rec.WallMS)
	}
	if rec = Summarize(exec, conn, 0, 1, time.Now()); rec.Shard != "" {
		t.Fatalf("unsharded summary carries shard %q", rec.Shard)
	}
}

func TestShardProgressReportsDeltas(t *testing.T) {
	// The executor's counters are session-cumulative; successive lines
	// must attribute only each experiment's own cells.
	exec := experiment.NewExecutor(1)
	var p ShardProgress
	first := p.Line(exec, 0, 2, "alpha")
	if !strings.Contains(first, "alpha: 0 resolved, 0 skipped") {
		t.Fatalf("first line = %q", first)
	}
	p.prevDone, p.prevSkipped = 0, 0 // baseline
	p2 := ShardProgress{prevDone: 3, prevSkipped: 1}
	line := p2.Line(exec, 0, 2, "beta")
	if !strings.Contains(line, "beta: -3 resolved, -1 skipped") {
		// A synthetic negative delta proves the subtraction happens; real
		// executors only grow.
		t.Fatalf("delta line = %q", line)
	}
}
