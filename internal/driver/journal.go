package driver

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"xorbp/internal/experiment"
	"xorbp/internal/wire"
)

// journalFormat versions the sweep-journal file format; OpenJournal
// refuses other versions rather than guessing at their records.
const journalFormat = "xorbp-sweep/1"

// Journal is the crash-safe sweep WAL behind `-journal`/`-resume`:
// an append-only JSON-lines file recording the planned wire keys and,
// as they resolve, each completed key with its canonical result bytes.
// Appends are fsynced, so a SIGKILL loses at most the in-flight cells;
// a torn final line (killed mid-append) is tolerated and dropped on
// resume. Because `done` records carry the result itself, resume is
// self-contained: it needs neither the run cache nor the fleet that
// computed the originals — bpsim -resume primes the executor from the
// journal and simulates only the remainder, in every topology
// (in-process, push, pull leader).
//
// Journal implements experiment.JournalSink.
type Journal struct {
	path   string
	schema string

	mu   sync.Mutex
	f    *os.File
	done map[string]json.RawMessage // completed key → canonical result
	// appendErr is sticky: after a failed append the journal stops
	// claiming durability (Err reports it at end of run) but the sweep
	// itself continues — a broken journal must not poison results.
	appendErr error
}

// journalLine is the on-disk record: the first line is a header
// (Journal/Schema set), every later line one operation.
type journalLine struct {
	// Journal/Schema stamp the header line.
	Journal string `json:"journal,omitempty"`
	Schema  string `json:"schema,omitempty"`
	// Op is "plan" or "done" on operation lines.
	Op     string          `json:"op,omitempty"`
	Keys   []string        `json:"keys,omitempty"`   // plan: planned wire keys
	Key    string          `json:"key,omitempty"`    // done: resolved wire key
	Result json.RawMessage `json:"result,omitempty"` // done: canonical result bytes
}

// OpenJournal opens (resume=true) or starts (resume=false) the sweep
// journal at path under the given wire schema. Resuming replays the
// existing file — refusing a missing file, a foreign format, or a
// schema mismatch with a clear error, and dropping a torn tail line —
// then compacts it in place (write-temp + atomic rename) so repeated
// resumes don't grow the file without bound.
func OpenJournal(path, schema string, resume bool) (*Journal, error) {
	j := &Journal{path: path, schema: schema, done: make(map[string]json.RawMessage)}
	if !resume {
		return j, j.rotateLocked()
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("journal: -resume: %w (start without -resume to begin a new sweep)", err)
	}
	if err := j.replay(raw); err != nil {
		return nil, err
	}
	// Compact: the rewritten file carries the header plus one done
	// record per completed cell, atomically replacing the old log.
	if err := j.rotateLocked(); err != nil {
		return nil, err
	}
	return j, nil
}

// replay loads the done set from a journal's raw bytes.
func (j *Journal) replay(raw []byte) error {
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	first := true
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec journalLine
		if json.Unmarshal(line, &rec) != nil {
			// A torn line is a crash mid-append; everything before it
			// already parsed, so stop here and keep what we have.
			break
		}
		if first {
			first = false
			if rec.Journal != journalFormat {
				return fmt.Errorf("journal: %s is not a %s journal", j.path, journalFormat)
			}
			if rec.Schema != j.schema {
				return fmt.Errorf("journal: %s was written under schema %q, this build runs %q — rebuild one side or start a new journal",
					j.path, rec.Schema, j.schema)
			}
			continue
		}
		if rec.Op == "done" && rec.Key != "" && len(rec.Result) > 0 {
			j.done[rec.Key] = rec.Result
		}
	}
	if first {
		return fmt.Errorf("journal: %s is empty — start without -resume to begin a new sweep", j.path)
	}
	return nil
}

// rotateLocked rewrites the journal as header + compacted done records
// via write-temp + atomic rename, then reopens it for appending.
// Callers hold no lock during Open; later rotation is not exposed —
// compaction happens once per resume, which bounds growth at one
// sweep's records.
func (j *Journal) rotateLocked() error {
	dir := filepath.Dir(j.path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".journal-*")
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	w := bufio.NewWriter(tmp)
	writeLine := func(rec journalLine) {
		if err == nil {
			var raw []byte
			if raw, err = json.Marshal(rec); err == nil {
				raw = append(raw, '\n')
				_, err = w.Write(raw)
			}
		}
	}
	writeLine(journalLine{Journal: journalFormat, Schema: j.schema})
	keys := make([]string, 0, len(j.done))
	for k := range j.done {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		writeLine(journalLine{Op: "done", Key: k, Result: j.done[k]})
	}
	if err == nil {
		err = w.Flush()
	}
	if err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("journal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("journal: %w", err)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("journal: %w", err)
	}
	f, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if j.f != nil {
		_ = j.f.Close()
	}
	j.f = f
	return nil
}

// append writes one fsynced record line. Failures are sticky but
// non-fatal: the sweep's results don't depend on the journal.
func (j *Journal) append(rec journalLine) {
	if j.appendErr != nil {
		return
	}
	raw, err := json.Marshal(rec)
	if err == nil {
		raw = append(raw, '\n')
		if _, err = j.f.Write(raw); err == nil {
			err = j.f.Sync()
		}
	}
	if err != nil {
		j.appendErr = fmt.Errorf("journal: %w", err)
	}
}

// Plan records the sweep's planned wire keys — the denominator a
// resumed run checks its remainder against, and the queue state a
// restarted pull leader re-derives (planned minus done is exactly what
// gets resubmitted).
func (j *Journal) Plan(keys []string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.append(journalLine{Op: "plan", Keys: keys})
}

// Completed appends one resolved cell (idempotent: a key already
// journaled — e.g. primed from this very journal — is not rewritten).
// Implements experiment.JournalSink.
func (j *Journal) Completed(key string, res experiment.RunResult) {
	if key == "" {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, dup := j.done[key]; dup {
		return
	}
	enc := res.Encode()
	j.done[key] = json.RawMessage(enc)
	j.append(journalLine{Op: "done", Key: key, Result: json.RawMessage(enc)})
}

// Done returns how many completed cells the journal holds.
func (j *Journal) Done() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// PrimeExecutor pre-resolves every journaled cell on the executor
// (experiment.Executor.Prime) and returns how many were primed. Call
// before the first batch runs.
func (j *Journal) PrimeExecutor(exec *experiment.Executor) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	n := 0
	for key, raw := range j.done {
		res, err := wire.DecodeResult(raw)
		if err != nil {
			// A record that no longer decodes under this schema cannot
			// be replayed; the cell will simply re-simulate.
			continue
		}
		exec.Prime(key, res)
		n++
	}
	return n
}

// Err reports the sticky append failure, if any — surfaced at end of
// run so a sweep whose journal went bad is not silently unresumable.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appendErr
}

// Close flushes nothing (appends are already fsynced) and releases the
// file handle.
func (j *Journal) Close() error {
	j.mu.Lock()
	f := j.f
	j.f = nil
	j.mu.Unlock()
	if f == nil {
		return nil
	}
	return f.Close()
}

// AttachJournal is the drivers' one-call journal plumbing: opens (or
// resumes) the journal, primes the executor from its completed cells,
// records the planned grid, and installs the journal as the executor's
// sink. Call after planning (exec.Plan) and before the first batch.
// Returns nil when path is empty; exits on misuse or an unreadable
// journal — resuming from a journal that cannot be read must not
// silently re-simulate a week of work.
func AttachJournal(prog string, exec *experiment.Executor, path string, resume bool) *Journal {
	if path == "" {
		if resume {
			fatal(prog, 2, "-resume replays a sweep journal; it needs -journal FILE")
		}
		return nil
	}
	j, err := OpenJournal(path, experiment.SchemaVersion(), resume)
	if err != nil {
		fatal(prog, 1, "%v", err)
	}
	if resume {
		n := j.PrimeExecutor(exec)
		fmt.Fprintf(os.Stderr, "%s: resume: %d completed cells replayed from %s\n", prog, n, path)
	}
	j.Plan(exec.PlannedKeys())
	exec.SetJournal(j)
	return j
}
