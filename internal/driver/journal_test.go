package driver

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xorbp/internal/experiment"
	"xorbp/internal/wire"
)

func tmpJournal(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "sweep.journal")
}

// TestJournalAppendReplay: completions written before a (simulated)
// crash are all there on resume, and duplicate completions are recorded
// once.
func TestJournalAppendReplay(t *testing.T) {
	path := tmpJournal(t)
	j, err := OpenJournal(path, "schema-a", false)
	if err != nil {
		t.Fatal(err)
	}
	j.Plan([]string{"k0", "k1", "k2"})
	j.Completed("k0", wire.Result{Cycles: 10})
	j.Completed("k1", wire.Result{Cycles: 11})
	j.Completed("k1", wire.Result{Cycles: 99}) // duplicate: first wins
	j.Completed("", wire.Result{Cycles: 1})    // no key, no record
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	// No Close: a SIGKILL'd process doesn't close its journal either.

	r, err := OpenJournal(path, "schema-a", true)
	if err != nil {
		t.Fatal(err)
	}
	if r.Done() != 2 {
		t.Fatalf("resumed journal holds %d cells, want 2", r.Done())
	}
	exec := experiment.NewExecutor(1)
	if n := r.PrimeExecutor(exec); n != 2 || exec.Primed() != 2 {
		t.Fatalf("primed %d cells (executor says %d), want 2", n, exec.Primed())
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestJournalTornTailTolerated: a file killed mid-append ends in half a
// record; resume keeps everything before the tear and drops the tear.
func TestJournalTornTailTolerated(t *testing.T) {
	path := tmpJournal(t)
	j, err := OpenJournal(path, "schema-a", false)
	if err != nil {
		t.Fatal(err)
	}
	j.Completed("k0", wire.Result{Cycles: 10})
	j.Completed("k1", wire.Result{Cycles: 11})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"done","key":"k2","resu`); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()

	r, err := OpenJournal(path, "schema-a", true)
	if err != nil {
		t.Fatal(err)
	}
	if r.Done() != 2 {
		t.Fatalf("resumed journal holds %d cells, want the 2 before the torn tail", r.Done())
	}
}

// TestJournalRefusals: resume fails cleanly on a missing file, an empty
// file, a foreign format, and a schema mismatch — each with an error
// that says what to do.
func TestJournalRefusals(t *testing.T) {
	if _, err := OpenJournal(filepath.Join(t.TempDir(), "absent"), "schema-a", true); err == nil ||
		!strings.Contains(err.Error(), "-resume") {
		t.Fatalf("missing-file resume: %v", err)
	}

	empty := tmpJournal(t)
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(empty, "schema-a", true); err == nil ||
		!strings.Contains(err.Error(), "empty") {
		t.Fatalf("empty-file resume: %v", err)
	}

	foreign := tmpJournal(t)
	if err := os.WriteFile(foreign, []byte(`{"journal":"other-tool/3","schema":"schema-a"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(foreign, "schema-a", true); err == nil ||
		!strings.Contains(err.Error(), "not a") {
		t.Fatalf("foreign-format resume: %v", err)
	}

	mismatch := tmpJournal(t)
	j, err := OpenJournal(mismatch, "schema-old", false)
	if err != nil {
		t.Fatal(err)
	}
	j.Completed("k0", wire.Result{Cycles: 1})
	_ = j.Close()
	if _, err := OpenJournal(mismatch, "schema-new", true); err == nil ||
		!strings.Contains(err.Error(), "schema") {
		t.Fatalf("schema-mismatch resume: %v", err)
	}
}

// TestJournalCompaction: repeated resumes rewrite the file to header +
// one line per completed cell, so the journal's size is bounded by the
// sweep, not by its crash count.
func TestJournalCompaction(t *testing.T) {
	path := tmpJournal(t)
	j, err := OpenJournal(path, "schema-a", false)
	if err != nil {
		t.Fatal(err)
	}
	// Several plan records and interleaved completions, as repeated
	// crashed runs would leave behind.
	for pass := 0; pass < 3; pass++ {
		j.Plan([]string{"k0", "k1", "k2", "k3"})
		j.Completed(fmt.Sprintf("k%d", pass), wire.Result{Cycles: uint64(pass)})
	}
	_ = j.Close()

	r, err := OpenJournal(path, "schema-a", true)
	if err != nil {
		t.Fatal(err)
	}
	_ = r.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 4 { // header + 3 done records
		t.Fatalf("compacted journal has %d lines, want 4:\n%s", len(lines), raw)
	}
	if !strings.Contains(lines[0], journalFormat) {
		t.Fatalf("compacted journal lost its header: %q", lines[0])
	}
	for _, l := range lines[1:] {
		if !strings.Contains(l, `"op":"done"`) {
			t.Fatalf("compacted journal kept a non-done line: %q", l)
		}
	}
}

// TestAttachJournalLifecycle: the drivers' one-call plumbing — nil
// without a path, journal installed as the executor sink with the plan
// recorded, and a later resume primed from what the first run completed.
func TestAttachJournalLifecycle(t *testing.T) {
	if j := AttachJournal("test", experiment.NewExecutor(1), "", false); j != nil {
		t.Fatal("AttachJournal without a path returned a journal")
	}

	path := tmpJournal(t)
	exec := experiment.NewExecutor(1)
	p := experiment.NewPlanner()
	experiment.NewSessionWith(experiment.MicroScale(), p).Figure1()
	exec.Plan(p)

	j := AttachJournal("test", exec, path, false)
	if j == nil {
		t.Fatal("AttachJournal returned nil with a path set")
	}
	keys := exec.PlannedKeys()
	j.Completed(keys[0], wire.Result{Cycles: 5})
	j.Completed(keys[1], wire.Result{Cycles: 6})
	_ = j.Close()

	resumed := experiment.NewExecutor(1)
	resumed.Plan(p)
	j2 := AttachJournal("test", resumed, path, true)
	defer j2.Close()
	if resumed.Primed() != 2 {
		t.Fatalf("resumed executor primed %d cells, want 2", resumed.Primed())
	}
	if j2.Done() != 2 {
		t.Fatalf("resumed journal holds %d cells, want 2", j2.Done())
	}
}
