// Package driver holds the CLI plumbing the sweep drivers (bpsim,
// attacksim) share: strict shard parsing, execution-backend selection
// over -serve-addrs, and the final -json summary record. One
// implementation keeps the two binaries' flag semantics and wire
// behavior from drifting apart.
package driver

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"xorbp/internal/experiment"
)

// Summary is the final -json record: the invocation's totals, so
// scripted sweeps read one line instead of tallying run records.
type Summary struct {
	Type      string `json:"type"` // "summary"
	Planned   int    `json:"planned"`
	Simulated uint64 `json:"simulated"`
	Cached    int    `json:"cached"`
	Skipped   int    `json:"skipped"`
	// WorkerCached counts dispatched runs the remote fleet answered
	// from its own stores (a subset of Simulated, which tallies
	// dispatches — the driver cannot see inside the backend).
	WorkerCached uint64 `json:"worker_cached,omitempty"`
	// Resumed counts cells pre-resolved from the sweep journal
	// (-resume); Degraded counts push-mode runs simulated in-process
	// because every worker's circuit was open.
	Resumed  int     `json:"resumed,omitempty"`
	Degraded uint64  `json:"degraded,omitempty"`
	WallMS   float64 `json:"wall_ms"`
	Backend  string  `json:"backend"`          // "local", "remote" or "pull"
	Policy   string  `json:"policy,omitempty"` // dispatch policy in force
	Workers  int     `json:"workers"`
	Shard    string  `json:"shard,omitempty"`
}

// Summarize assembles the summary record from the executor's counters
// and the connected topology's.
func Summarize(exec *experiment.Executor, conn *Conn,
	shardI, shardN int, wallStart time.Time) Summary {
	rec := Summary{
		Type:      "summary",
		Planned:   exec.Planned(),
		Simulated: exec.Runs(),
		Cached:    exec.Replays(),
		Skipped:   exec.Skipped(),
		WallMS:    float64(time.Since(wallStart)) / float64(time.Millisecond), //bpvet:allow wall-clock telemetry in the summary line; never part of a result or cache key
		Backend:   conn.Name,
		Policy:    conn.Policy,
		Workers:   exec.Workers(),
	}
	rec.WorkerCached = conn.WorkerCached()
	rec.Resumed = exec.Primed()
	rec.Degraded = conn.Degraded()
	if shardN > 1 {
		rec.Shard = fmt.Sprintf("%d/%d", shardI, shardN)
	}
	return rec
}

// ParseShard strictly parses a -shard I/N flag ("" means unsharded:
// 0/1). Malformed input exits 2 — a typo like "1/2/4" must be
// rejected, not run as shard 1/2, because a mis-sharded process breaks
// the fleet's partition. haveSink reports whether results have
// somewhere to go (-cache or -serve-addrs); sharding without one would
// discard every result, so that exits 1.
func ParseShard(prog, s string, haveSink bool) (i, n int) {
	if s == "" {
		return 0, 1
	}
	is, ns, ok := strings.Cut(s, "/")
	i, err1 := strconv.Atoi(is)
	n, err2 := strconv.Atoi(ns)
	if !ok || err1 != nil || err2 != nil || n < 1 || i < 0 || i >= n {
		fmt.Fprintf(os.Stderr, "%s: invalid -shard %q (want I/N with 0 <= I < N)\n", prog, s)
		StopProfiles()
		os.Exit(2)
	}
	if !haveSink {
		fmt.Fprintf(os.Stderr, "%s: -shard without -cache or -serve-addrs would discard every result; "+
			"point the shards at a shared -cache (or at bpserve workers, which cache on their side)\n", prog)
		StopProfiles()
		os.Exit(1)
	}
	return i, n
}

// ShardProgress reports one sharded experiment's resolved/skipped cell
// counts as deltas against the previous call — the executor's counters
// are session-cumulative, and attributing the whole session to each
// experiment in turn would misreport every line after the first.
type ShardProgress struct {
	prevDone, prevSkipped int
}

// Line formats the stderr notice for one completed experiment under a
// shard assignment and advances the baseline.
func (p *ShardProgress) Line(exec *experiment.Executor, shardI, shardN int, name string) string {
	done, skipped := exec.Done(), exec.Skipped()
	line := fmt.Sprintf("[shard %d/%d] %s: %d resolved, %d skipped (tables suppressed)",
		shardI, shardN, name, done-p.prevDone, skipped-p.prevSkipped)
	p.prevDone, p.prevSkipped = done, skipped
	return line
}
