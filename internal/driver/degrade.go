package driver

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"xorbp/internal/experiment"
	"xorbp/internal/wire"
)

// Fallback is the graceful-degradation backend: it dispatches through
// the primary (a push-mode wire.Client), and when the primary reports
// the whole fleet undispatchable — every worker's circuit breaker open
// (wire.ErrFleetDown) — it simulates the spec on the in-process
// LocalBackend instead of poisoning the sweep. Results are pure
// functions of the spec, so degraded cells are byte-identical to what
// the fleet would have computed; only the wall clock suffers. The
// first degradation warns once on stderr; every degraded run is
// counted into the summary record.
type Fallback struct {
	prog     string
	primary  experiment.Backend
	local    experiment.LocalBackend
	warn     sync.Once
	degraded atomic.Uint64
}

// NewFallback wraps primary with local-simulation degradation.
func NewFallback(prog string, primary experiment.Backend) *Fallback {
	return &Fallback{prog: prog, primary: primary}
}

// Run dispatches through the primary, degrading to local simulation
// only on a fleet-down verdict. Every other failure — including
// protocol errors and exhausted retries against a partially-live
// fleet — propagates unchanged.
func (f *Fallback) Run(ctx context.Context, spec wire.Spec) (experiment.RunResult, error) {
	res, err := f.primary.Run(ctx, spec)
	if err != nil && errors.Is(err, wire.ErrFleetDown) {
		f.warn.Do(func() {
			fmt.Fprintf(os.Stderr,
				"%s: every worker's circuit is open; degrading to in-process simulation (results are unaffected; see -degrade)\n",
				f.prog)
		})
		f.degraded.Add(1)
		return f.local.Run(ctx, spec)
	}
	return res, err
}

// Degraded counts runs simulated in-process because the fleet was
// down.
func (f *Fallback) Degraded() uint64 { return f.degraded.Load() }
