package driver

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
)

// activeProfiles is the stop hook of the current StartProfiles call, so
// error paths that terminate via os.Exit (fatalf, ParseShard, Connect)
// can flush captures the deferred stop would otherwise lose.
var activeProfiles func()

// StartProfiles starts the pprof captures behind the shared
// -cpuprofile/-memprofile flags of bpsim and attacksim. The returned
// stop function (also reachable as StopProfiles, and invoked by the
// driver package's own exit paths) stops the CPU profile and writes the
// heap profile after a final GC, so the memory numbers reflect live
// steady-state allocations rather than garbage awaiting collection. It
// is idempotent: deferred and explicit early-exit calls compose.
//
// Either path may be empty to skip that profile. Errors are fatal (exit
// 1): a sweep run specifically to capture a profile should not complete
// having silently captured nothing.
func StartProfiles(prog, cpuProfile, memProfile string) (stop func()) {
	var cpuFile *os.File
	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: -cpuprofile: %v\n", prog, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "%s: -cpuprofile: %v\n", prog, err)
			os.Exit(1)
		}
		cpuFile = f
	}
	var once sync.Once
	stop = func() {
		once.Do(func() {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				if err := cpuFile.Close(); err != nil {
					fmt.Fprintf(os.Stderr, "%s: -cpuprofile: %v\n", prog, err)
				}
			}
			if memProfile != "" {
				f, err := os.Create(memProfile)
				if err != nil {
					fmt.Fprintf(os.Stderr, "%s: -memprofile: %v\n", prog, err)
					return
				}
				runtime.GC()
				if err := pprof.WriteHeapProfile(f); err != nil {
					fmt.Fprintf(os.Stderr, "%s: -memprofile: %v\n", prog, err)
				}
				if err := f.Close(); err != nil {
					fmt.Fprintf(os.Stderr, "%s: -memprofile: %v\n", prog, err)
				}
			}
		})
	}
	activeProfiles = stop
	return stop
}

// StopProfiles flushes any active profile captures. Safe to call any
// number of times, including with none active; error paths must call it
// before os.Exit, which skips deferred stops.
func StopProfiles() {
	if activeProfiles != nil {
		activeProfiles()
	}
}
