package driver

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"xorbp/internal/experiment"
	"xorbp/internal/fleet"
	"xorbp/internal/wire"
)

// defaultFleetPool is the executor fan-out width in pull mode when
// -workers is left at its default: the leader cannot know the fleet's
// capacity ahead of time (workers come and go), so it keeps enough
// submissions outstanding that every claimer finds a full batch.
const defaultFleetPool = 128

// FleetFlags is the dispatch-topology flag bundle the sweep drivers
// share; register it with AddFleetFlags before flag.Parse.
type FleetFlags struct {
	// Fleet runs the invocation as a pull-queue leader on this listen
	// address: specs are queued, bpserve -pull workers claim them.
	Fleet *string
	// Lease is the pull-queue claim lease: a worker silent this long
	// forfeits its batch to the rest of the fleet.
	Lease *time.Duration
	// Route picks the push-mode routing policy over -serve-addrs.
	Route *string
	// TLSCert/TLSKey serve the -fleet leader endpoint over TLS.
	TLSCert *string
	TLSKey  *string
	// TLSCA pins the worker fleet's certificate authority for
	// -serve-addrs dispatch (switches the wire client to HTTPS).
	TLSCA *string
	// Degrade controls push-mode graceful degradation: when every
	// worker's circuit breaker is open, fall back to in-process
	// simulation instead of failing the sweep.
	Degrade *bool
}

// AddFleetFlags registers the shared dispatch-topology flags on the
// default flag set.
func AddFleetFlags() *FleetFlags {
	return &FleetFlags{
		Fleet:   flag.String("fleet", "", "run as a pull-queue leader on this listen address; bpserve -pull workers claim the specs (mutually exclusive with -serve-addrs)"),
		Lease:   flag.Duration("fleet-lease", fleet.DefaultLease, "with -fleet: claim lease; a worker silent this long forfeits its batch"),
		Route:   flag.String("route", "", "with -serve-addrs: routing policy ("+strings.Join(fleet.ScorerNames(), ", ")+"; default round-robin)"),
		TLSCert: flag.String("tls-cert", "", "with -fleet: serve the leader endpoint over TLS with this certificate"),
		TLSKey:  flag.String("tls-key", "", "with -fleet: private key for -tls-cert"),
		TLSCA:   flag.String("tls-ca", "", "with -serve-addrs: PEM CA bundle to pin; dispatch switches to HTTPS"),
		Degrade: flag.Bool("degrade", true, "with -serve-addrs: when every worker's circuit is open, simulate in-process instead of failing the sweep"),
	}
}

// Conn is a connected execution topology: the backend the executor
// should run over, how wide to fan out, and the bookkeeping the final
// summary wants. Close releases whatever the topology started (the
// leader listener, the statz poller).
type Conn struct {
	// Backend executes specs; nil selects the in-process pool.
	Backend experiment.Backend
	// Client is the push-mode wire client (nil in local and pull modes).
	Client *wire.Client
	// PoolSize is the executor fan-out width.
	PoolSize int
	// Name labels the topology in the summary record: "local",
	// "remote", or "pull".
	Name string
	// Policy is the dispatch policy in force ("" when local;
	// "roundrobin" unless -route overrode it; "pull" for the queue).
	Policy string

	queue    *fleet.Queue
	fb       *fleet.Backend
	fallback *Fallback
	hs       *http.Server
	cancel   context.CancelFunc
}

// Degraded counts push-mode runs simulated in-process because every
// worker's circuit was open (0 outside push mode or with -degrade=false).
func (c *Conn) Degraded() uint64 {
	if c.fallback == nil {
		return 0
	}
	return c.fallback.Degraded()
}

// WorkerCached counts dispatched runs the fleet answered from
// worker-side stores instead of simulating, whichever topology is in
// force.
func (c *Conn) WorkerCached() uint64 {
	switch {
	case c.Client != nil:
		return c.Client.Replays()
	case c.fb != nil:
		return c.fb.Replays()
	}
	return 0
}

// Queue exposes the pull queue (nil outside pull mode) for end-of-run
// reporting.
func (c *Conn) Queue() *fleet.Queue { return c.queue }

// Close stops whatever the topology started. Safe on every mode.
func (c *Conn) Close() {
	if c.cancel != nil {
		c.cancel()
	}
	if c.hs != nil {
		_ = c.hs.Close()
	}
}

// ConnectOptions names Connect's inputs; Fleet may be nil when the
// caller registers no fleet surface.
type ConnectOptions struct {
	Prog       string
	ServeAddrs string
	Token      string
	Workers    int
	WorkersSet bool
	Fleet      *FleetFlags
	// Transport, when set, replaces the push-mode wire client's HTTP
	// transport — the chaos layer's fault-injection seam (-chaos).
	Transport http.RoundTripper
}

// Connect picks the execution topology: the in-process pool, a probed
// push-mode wire.Client over -serve-addrs (optionally scorer-routed
// and TLS-pinned), or a pull-queue leader on -fleet. Misconfiguration
// exits — a sweep should fail fast, not at its first dispatched run.
func Connect(opts ConnectOptions) *Conn {
	var (
		fleetAddr, route, tlsCert, tlsKey, tlsCA string
		leaseDur                                 time.Duration
	)
	if f := opts.Fleet; f != nil {
		fleetAddr, route, leaseDur = *f.Fleet, *f.Route, *f.Lease
		tlsCert, tlsKey, tlsCA = *f.TLSCert, *f.TLSKey, *f.TLSCA
	}
	switch {
	case fleetAddr != "" && opts.ServeAddrs != "":
		fatal(opts.Prog, 2, "-fleet (pull dispatch) and -serve-addrs (push dispatch) are mutually exclusive")
	case route != "" && opts.ServeAddrs == "":
		fatal(opts.Prog, 2, "-route orders -serve-addrs workers; it needs -serve-addrs")
	case (tlsCert != "") != (tlsKey != ""):
		fatal(opts.Prog, 2, "-tls-cert and -tls-key come as a pair")
	case tlsCert != "" && fleetAddr == "":
		fatal(opts.Prog, 2, "-tls-cert/-tls-key secure the -fleet leader endpoint; they need -fleet")
	}
	if fleetAddr != "" {
		return connectFleet(opts.Prog, fleetAddr, opts.Token, leaseDur,
			tlsCert, tlsKey, opts.Workers, opts.WorkersSet)
	}
	if opts.ServeAddrs == "" {
		return &Conn{PoolSize: opts.Workers, Name: "local"}
	}
	return connectPush(opts, route, tlsCA)
}

// connectPush probes a -serve-addrs fleet and installs the routing
// policy.
func connectPush(opts ConnectOptions, route, tlsCA string) *Conn {
	client := wire.NewClient(strings.Split(opts.ServeAddrs, ","))
	client.SetToken(opts.Token)
	if opts.Transport != nil {
		if tlsCA != "" {
			fatal(opts.Prog, 2, "-chaos and -tls-ca are mutually exclusive: the fault-injecting transport would bypass the pinned CA")
		}
		client.SetTransport(opts.Transport)
	}
	if tlsCA != "" {
		pool, err := wire.LoadCertPool(tlsCA)
		if err != nil {
			fatal(opts.Prog, 1, "%v", err)
		}
		client.SetTLS(pool)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	err := client.Probe(ctx)
	cancel()
	if err != nil {
		fatal(opts.Prog, 1, "probing workers: %v", err)
	}
	poolSize := opts.Workers
	if !opts.WorkersSet {
		poolSize = client.Workers()
	}
	conn := &Conn{Backend: client, Client: client, PoolSize: poolSize,
		Name: "remote", Policy: "roundrobin"}
	degrade := true
	if opts.Fleet != nil && opts.Fleet.Degrade != nil {
		degrade = *opts.Fleet.Degrade
	}
	if degrade {
		conn.fallback = NewFallback(opts.Prog, client)
		conn.Backend = conn.fallback
	}
	if route != "" {
		scorer, ok := fleet.ScorerByName(route)
		if !ok {
			fatal(opts.Prog, 2, "unknown -route %q (want one of %s)",
				route, strings.Join(fleet.ScorerNames(), ", "))
		}
		router := fleet.NewRouter(client, scorer)
		router.Install()
		conn.Policy = route
		if _, needsStatz := scorer.(fleet.LeastLoaded); needsStatz {
			pctx, stop := context.WithCancel(context.Background())
			conn.cancel = stop
			go router.Poll(pctx, 0)
		}
	}
	return conn
}

// connectFleet starts a pull-queue leader and returns its submitting
// backend.
func connectFleet(prog, addr, token string, leaseDur time.Duration,
	tlsCert, tlsKey string, workers int, workersSet bool) *Conn {
	// The wall clock drives real lease expiry here; it never reaches a
	// result or cache key (tests inject fake clocks instead).
	q := fleet.NewQueue(leaseDur, time.Now)
	leader := fleet.NewLeader(q, token)
	hs := &http.Server{Handler: leader.Handler()}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(prog, 1, "fleet leader: %v", err)
	}
	go func() {
		var serr error
		if tlsCert != "" {
			serr = hs.ServeTLS(ln, tlsCert, tlsKey)
		} else {
			serr = hs.Serve(ln)
		}
		if serr != nil && serr != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "%s: fleet leader: %v\n", prog, serr)
		}
	}()
	scheme := "http"
	if tlsCert != "" {
		scheme = "https"
	}
	fmt.Fprintf(os.Stderr, "%s: fleet leader listening on %s://%s (lease %v); start workers with: bpserve -pull %s\n",
		prog, scheme, ln.Addr(), q.Lease(), ln.Addr())
	poolSize := workers
	if !workersSet {
		poolSize = defaultFleetPool
	}
	fb := leader.Backend()
	return &Conn{Backend: fb, PoolSize: poolSize, Name: "pull", Policy: "pull",
		queue: q, fb: fb, hs: hs}
}

// fatal prints one driver-level configuration error and exits.
func fatal(prog string, code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, prog+": "+format+"\n", args...)
	StopProfiles()
	os.Exit(code)
}
