// Package secsweep is the security-sweep subsystem: it promotes the
// paper's proof-of-concept attacks (internal/attack) to first-class
// experiment-engine jobs and grows the attacker-present grid far beyond
// Table 1 — every registered attack crossed with both core
// arrangements, the isolation mechanisms, a range of re-key periods and
// the registered direction predictors, in the style of the grids
// secure-BPU evaluations like STBPU and CIBPU report.
//
// Because every cell is an engine job (experiment.AttackJob), the grid
// inherits the whole execution stack for free: the in-memory memo
// cache, the persistent run cache (warm re-runs simulate nothing), the
// bounded worker pool, remote bpserve fleets and static shard
// partitioning. Wide cells are split into independent seed batches so
// they parallelize and distribute like narrow ones; batch outcomes are
// integer counts, so merging them is exact and the rendered tables are
// byte-identical for every worker count and backend.
package secsweep

import (
	"fmt"

	"xorbp/internal/attack"
	"xorbp/internal/core"
	"xorbp/internal/experiment"
	"xorbp/internal/report"
)

// Config sizes the sweep.
type Config struct {
	// Attack carries the per-attack iteration/trial counts and the seed
	// (the same knobs attack.Table1 takes).
	Attack attack.Config
	// RekeyPeriods are the timer periods (in scheduling events) the
	// re-key curve sweeps; the paper's event-driven design is period 1.
	RekeyPeriods []uint64
	// Predictors are the direction predictors the PHT-attack grid
	// covers; "" is the PoC's default bimodal table.
	Predictors []string
	// Batches splits each wide cell into this many independent-seed
	// trial batches so one cell can occupy several workers (or several
	// machines). 1 disables splitting. Verdict cells are never split:
	// they must measure exactly what attack.Table1 measures.
	Batches int
}

// DefaultConfig sweeps at paper scale.
func DefaultConfig() Config {
	return Config{
		Attack:       attack.DefaultConfig(),
		RekeyPeriods: []uint64{1, 2, 4, 8, 16, 64},
		Predictors:   append([]string{""}, experiment.PredictorNames()...),
		Batches:      4,
	}
}

// QuickConfig sweeps at smoke-test scale.
func QuickConfig() Config {
	return Config{
		Attack:       attack.QuickConfig(),
		RekeyPeriods: []uint64{1, 4, 16},
		Predictors:   []string{"", "gshare", "perceptron"},
		Batches:      2,
	}
}

// Sweep renders the security grid through an executor. Run the same
// sweep against a planning executor first (experiment.NewPlanner) and
// Plan the result into the real one to get session-wide progress/ETA,
// exactly like bpsim's figure sessions.
type Sweep struct {
	cfg  Config
	exec *experiment.Executor
}

// New creates a sweep over the executor.
func New(cfg Config, exec *experiment.Executor) *Sweep {
	if cfg.Batches < 1 {
		cfg.Batches = 1
	}
	return &Sweep{cfg: cfg, exec: exec}
}

// Tables renders the whole subsystem in report order: the two
// success-rate matrices, the re-key residual curve, the predictor
// cross, and the Table 1 verdict reproduction.
func (s *Sweep) Tables() []*report.Table {
	return []*report.Table{
		s.Matrix(attack.SingleThreaded),
		s.Matrix(attack.SMT),
		s.RekeyCurve(),
		s.PredictorMatrix(),
		s.Verdicts(),
	}
}

// variant is one isolation-mechanism row of the matrices.
type variant struct {
	name  string
	opts  core.Options
	rekey uint64
}

// variants are the matrix rows: no protection, the heavyweight flush on
// every switch, and the paper's two encoding designs (event-driven).
func variants() []variant {
	return []variant{
		{"Baseline", core.OptionsFor(core.Baseline), 0},
		{"CompleteFlush", core.OptionsFor(core.CompleteFlush), 0},
		{"XOR-BP", core.OptionsFor(core.XOR), 0},
		{"Noisy-XOR-BP", core.OptionsFor(core.NoisyXOR), 0},
	}
}

// curveAttacks are the re-key curve's columns: the attacks whose
// defense on a time-shared core is exactly the switch-driven key
// rotation/flush — the state the timer knob trades away.
func curveAttacks() []string {
	return []string{"btb_training", "pht_training", "pht_steering", "branch_scope", "sbpa"}
}

// predictorAttacks are the predictor cross's columns: the attacks that
// drive the direction predictor.
func predictorAttacks() []string {
	return []string{"pht_training", "pht_steering", "branch_scope", "reference"}
}

// cellSize maps an attack to its trial/attempt budget at this config's
// scale, mirroring attack.Table1's conventions. Attempts are nonzero
// only for attacks whose registry entry uses them — a dead knob baked
// into a cell's wire key would invalidate cache entries for nothing.
func (c Config) cellSize(name string) (trials, attempts int) {
	a := c.Attack
	if info, ok := attack.ByName(name); ok && info.UsesAttempts {
		attempts = a.Attempts
	}
	switch name {
	case "btb_training", "pht_training":
		return a.Iterations, attempts
	case "pht_steering":
		return maxInt(a.Iterations/10, 1), attempts
	case "sbpa_blanket":
		return maxInt(a.Trials/4, 1), attempts
	case "aslr":
		return maxInt(a.Trials/10, 1), attempts
	default: // branch_scope, branch_scope_detector, sbpa, reference
		return a.Trials, attempts
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// grid accumulates the batch jobs of a table's logical cells so one
// RunAttackBatch call resolves everything concurrently.
type grid struct {
	cfg   Config
	jobs  []experiment.AttackJob
	spans [][2]int // [start, end) into jobs, one per cell
}

// addCell splits one logical cell into its independent-seed batch jobs
// and returns the cell's index.
func (g *grid) addCell(j experiment.AttackJob) int {
	start := len(g.jobs)
	b := g.cfg.Batches
	if b > j.Trials {
		b = j.Trials
	}
	if b < 1 {
		b = 1
	}
	base, extra := j.Trials/b, j.Trials%b
	for i := 0; i < b; i++ {
		bj := j
		bj.Trials = base
		if i < extra {
			bj.Trials++
		}
		if bj.Trials == 0 {
			continue
		}
		// Batch 0 keeps the cell's seed; later batches offset it. Every
		// RNG stream in the harness passes raw seeds through a mixer, so
		// adjacent seeds decorrelate fully.
		bj.Seed = j.Seed + uint64(i)
		g.jobs = append(g.jobs, bj)
	}
	g.spans = append(g.spans, [2]int{start, len(g.jobs)})
	return len(g.spans) - 1
}

// resolve runs every accumulated job through the executor and merges
// batches back into per-cell outcomes (exact: integer sums in span
// order).
func (g *grid) resolve(exec *experiment.Executor) []attack.Outcome {
	outs := exec.RunAttackBatch(g.jobs)
	merged := make([]attack.Outcome, len(g.spans))
	for c, sp := range g.spans {
		for i := sp[0]; i < sp[1]; i++ {
			merged[c] = merged[c].Add(outs[i])
		}
	}
	return merged
}

// fmtCell renders a merged outcome as a percentage.
func fmtCell(o attack.Outcome) string {
	return fmt.Sprintf("%.1f%%", o.Rate()*100)
}

// Matrix renders the success-rate matrix for one core arrangement: one
// row per isolation mechanism, one column per registered attack, the
// default (bimodal) predictor, event-driven re-keying.
func (s *Sweep) Matrix(sc attack.Scenario) *report.Table {
	t := &report.Table{
		Title:  fmt.Sprintf("Security sweep: attack success matrix (%s)", scenarioLabel(sc)),
		Header: []string{"mechanism"},
		Caption: "Measured success rate (training/recovery attacks) or inference\n" +
			"accuracy (perception/contention attacks, chance = 50%) per\n" +
			"registered attack; PoC bimodal direction predictor, event-driven\n" +
			"re-keying. Table 1's verdicts classify these same channels.",
	}
	var cols []string
	for _, name := range attack.Names() {
		info, _ := attack.ByName(name)
		if sc == attack.SMT && info.SingleOnly {
			continue
		}
		cols = append(cols, name)
		t.Header = append(t.Header, name)
	}
	g := &grid{cfg: s.cfg}
	type rowCells struct {
		v     variant
		cells []int
	}
	var rows []rowCells
	for _, v := range variants() {
		r := rowCells{v: v}
		for _, name := range cols {
			trials, attempts := s.cfg.cellSize(name)
			r.cells = append(r.cells, g.addCell(experiment.AttackJob{
				Attack:      name,
				Opts:        v.opts,
				Scenario:    sc,
				RekeyPeriod: v.rekey,
				Trials:      trials,
				Attempts:    attempts,
				Seed:        s.cfg.Attack.Seed,
			}))
		}
		rows = append(rows, r)
	}
	outs := g.resolve(s.exec)
	for _, r := range rows {
		cells := []string{r.v.name}
		for _, c := range r.cells {
			cells = append(cells, fmtCell(outs[c]))
		}
		t.AddRow(cells...)
	}
	return t
}

// RekeyCurve renders the residual-rate-vs-re-key-period curve: the
// lightweight-isolation knob Table 1 only samples at its extremes. Rows
// sweep the timer period for XOR-BP (key rotation) and CompleteFlush
// (table flush) on the time-shared core; period 1 re-keys on every
// scheduling event (the paper's design, up to timer asynchrony) and
// large periods approach the unprotected baseline.
func (s *Sweep) RekeyCurve() *report.Table {
	t := &report.Table{
		Title:  "Security sweep: residual attack rate vs re-key/flush period",
		Header: append([]string{"mechanism", "period"}, curveAttacks()...),
		Caption: "Single-threaded core; period in scheduling events between timer\n" +
			"firings (expected — the timer is asynchronous to the attack loop).\n" +
			"Frequent re-keying buys security with warm-up overhead (Figures\n" +
			"1-3); this curve prices the other side of that trade.",
	}
	mechs := []variant{
		{"XOR-BP", core.OptionsFor(core.XOR), 0},
		{"CompleteFlush", core.OptionsFor(core.CompleteFlush), 0},
	}
	g := &grid{cfg: s.cfg}
	type rowCells struct {
		mech   string
		period uint64
		cells  []int
	}
	var rows []rowCells
	for _, m := range mechs {
		for _, p := range s.cfg.RekeyPeriods {
			r := rowCells{mech: m.name, period: p}
			for _, name := range curveAttacks() {
				trials, attempts := s.cfg.cellSize(name)
				r.cells = append(r.cells, g.addCell(experiment.AttackJob{
					Attack:      name,
					Opts:        m.opts,
					Scenario:    attack.SingleThreaded,
					RekeyPeriod: p,
					Trials:      trials,
					Attempts:    attempts,
					Seed:        s.cfg.Attack.Seed,
				}))
			}
			rows = append(rows, r)
		}
	}
	outs := g.resolve(s.exec)
	for _, r := range rows {
		cells := []string{r.mech, fmt.Sprintf("%d", r.period)}
		for _, c := range r.cells {
			cells = append(cells, fmtCell(outs[c]))
		}
		t.AddRow(cells...)
	}
	return t
}

// PredictorMatrix renders the predictor cross: every registered
// direction predictor against the PHT-driven attacks, unprotected and
// under the paper's full mechanism — does the defense hold regardless
// of predictor organization (2-bit counters, weight tables, tagged
// geometric histories)?
func (s *Sweep) PredictorMatrix() *report.Table {
	t := &report.Table{
		Title:  "Security sweep: PHT attacks x direction predictors",
		Header: []string{"predictor"},
		Caption: "Single-threaded core. base = Baseline (no isolation),\n" +
			"nxor = Noisy-XOR-BP. A mechanism that only defends the bimodal\n" +
			"PoC table would show here.",
	}
	for _, name := range predictorAttacks() {
		t.Header = append(t.Header, name+"/base", name+"/nxor")
	}
	base := core.OptionsFor(core.Baseline)
	nxor := core.OptionsFor(core.NoisyXOR)
	g := &grid{cfg: s.cfg}
	type rowCells struct {
		pred  string
		cells []int
	}
	var rows []rowCells
	for _, pred := range s.cfg.Predictors {
		r := rowCells{pred: predLabel(pred)}
		for _, name := range predictorAttacks() {
			trials, attempts := s.cfg.cellSize(name)
			for _, opts := range []core.Options{base, nxor} {
				r.cells = append(r.cells, g.addCell(experiment.AttackJob{
					Attack:   name,
					Opts:     opts,
					Scenario: attack.SingleThreaded,
					Pred:     pred,
					Trials:   trials,
					Attempts: attempts,
					Seed:     s.cfg.Attack.Seed,
				}))
			}
		}
		rows = append(rows, r)
	}
	outs := g.resolve(s.exec)
	for _, r := range rows {
		cells := []string{r.pred}
		for _, c := range r.cells {
			cells = append(cells, fmtCell(outs[c]))
		}
		t.AddRow(cells...)
	}
	return t
}

// Verdicts reproduces Table 1 through the engine: the exact
// measurements attack.Table1 takes, resolved as (cacheable,
// distributable) engine jobs, classified by the exact same rules — so
// its verdicts are guaranteed equal to the in-process table's.
func (s *Sweep) Verdicts() *report.Table {
	return TableVia(s.exec, func(m attack.Measurer) *report.Table {
		return attack.Table1With(s.cfg.Attack, m)
	})
}

// TableVia renders any measurement-driven attack table through the
// engine in three steps: a collect pass enumerates every request the
// builder can make (the builder sees zero rates, which classify as
// Defend and therefore trigger every conditional fallback — a superset
// of any real pass), one engine batch resolves them all concurrently,
// and a replay pass renders the table from the batch's outcomes.
// Verdict cells are deliberately not batch-split: each request maps to
// exactly one job, so the measured rate is bit-identical to the
// in-process measurer's.
func TableVia(exec *experiment.Executor, build func(attack.Measurer) *report.Table) *report.Table {
	var reqs []attack.Request
	build(func(r attack.Request) float64 {
		reqs = append(reqs, r)
		return 0
	})
	jobs := make([]experiment.AttackJob, len(reqs))
	for i, r := range reqs {
		jobs[i] = experiment.JobFor(r)
	}
	outs := exec.RunAttackBatch(jobs)
	memo := make(map[reqKey]float64, len(reqs))
	for i, r := range reqs {
		memo[keyOf(r)] = outs[i].Rate()
	}
	return build(func(r attack.Request) float64 {
		rate, ok := memo[keyOf(r)]
		if !ok {
			// The collect pass's zero rates request a superset of every
			// real pass; a miss is a builder bug, not a runtime state.
			panic(fmt.Sprintf("secsweep: replay pass requested uncollected cell %+v", r))
		}
		return rate
	})
}

// reqKey is a request's comparable identity: options normalized, the
// interface fields carried by registered name (like the wire form).
type reqKey struct {
	attackName string
	opts       core.Options
	codec      string
	scrambler  string
	scenario   attack.Scenario
	trials     int
	attempts   int
	seed       uint64
}

func keyOf(r attack.Request) reqKey {
	o := r.Opts.Normalized()
	k := reqKey{
		attackName: r.Attack,
		opts:       o,
		codec:      o.Codec.Name(),
		scrambler:  o.Scrambler.Name(),
		scenario:   r.Scenario,
		trials:     r.Trials,
		attempts:   r.Attempts,
		seed:       r.Seed,
	}
	k.opts.Codec, k.opts.Scrambler = nil, nil
	return k
}

func scenarioLabel(sc attack.Scenario) string {
	if sc == attack.SMT {
		return "SMT core"
	}
	return "single-threaded core"
}

func predLabel(p string) string {
	if p == "" {
		return "bimodal"
	}
	return p
}
