package secsweep_test

import (
	"fmt"
	"strings"
	"testing"

	"xorbp/internal/attack"
	"xorbp/internal/experiment"
	"xorbp/internal/runcache"
	"xorbp/internal/secsweep"
	"xorbp/internal/serve"
	"xorbp/internal/wire"

	"net/http/httptest"
)

// testConfig is a miniature sweep: structurally complete, seconds-fast.
func testConfig() secsweep.Config {
	return secsweep.Config{
		Attack:       attack.Config{Iterations: 100, Attempts: 20, Trials: 160, Seed: 3},
		RekeyPeriods: []uint64{1, 16},
		Predictors:   []string{"", "perceptron"},
		Batches:      2,
	}
}

// renderAll renders the full sweep through an executor and joins the
// tables — the byte string every determinism test compares.
func renderAll(t *testing.T, exec *experiment.Executor) string {
	t.Helper()
	var b strings.Builder
	for _, tab := range secsweep.New(testConfig(), exec).Tables() {
		b.WriteString(tab.Render())
		b.WriteByte('\n')
	}
	if err := exec.Err(); err != nil {
		t.Fatalf("executor poisoned: %v", err)
	}
	return b.String()
}

// TestSerialEqualsParallel: the sweep's tables are byte-identical for
// every worker count — outcomes are pure functions of their specs and
// batch merging is ordered integer addition.
func TestSerialEqualsParallel(t *testing.T) {
	serial := renderAll(t, experiment.NewExecutor(1))
	parallel := renderAll(t, experiment.NewExecutor(8))
	if serial != parallel {
		t.Fatalf("parallel sweep differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
	if !strings.Contains(serial, "attack success matrix") ||
		!strings.Contains(serial, "re-key/flush period") ||
		!strings.Contains(serial, "Table 1") {
		t.Fatal("sweep output is missing a table")
	}
}

// TestDistributedMatchesSerial: the same sweep through a live bpserve
// worker (full wire round-trip for every attack job) renders the same
// bytes.
func TestDistributedMatchesSerial(t *testing.T) {
	serial := renderAll(t, experiment.NewExecutor(1))

	srv := serve.New(4, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := wire.NewClient([]string{strings.TrimPrefix(ts.URL, "http://")})
	if err := client.Probe(t.Context()); err != nil {
		t.Fatal(err)
	}
	exec := experiment.NewExecutorWith(client.Workers(), client)
	remote := renderAll(t, exec)
	if serial != remote {
		t.Fatalf("distributed sweep differs from serial:\n--- serial ---\n%s\n--- remote ---\n%s",
			serial, remote)
	}
	if srv.Runs() == 0 {
		t.Fatal("no attack jobs reached the worker")
	}
}

// TestWarmCacheSimulatesZero: a second sweep over the same persistent
// store replays every attack cell and simulates nothing — the
// incremental-sweep property the performance grids already have.
func TestWarmCacheSimulatesZero(t *testing.T) {
	dir := t.TempDir()
	st, err := runcache.Open(dir, wire.SchemaVersion())
	if err != nil {
		t.Fatal(err)
	}
	cold := experiment.NewExecutor(4)
	cold.SetStore(st)
	first := renderAll(t, cold)
	if cold.Runs() == 0 {
		t.Fatal("cold sweep simulated nothing")
	}

	st2, err := runcache.Open(dir, wire.SchemaVersion())
	if err != nil {
		t.Fatal(err)
	}
	warm := experiment.NewExecutor(4)
	warm.SetStore(st2)
	second := renderAll(t, warm)
	if got := warm.Runs(); got != 0 {
		t.Fatalf("warm sweep executed %d attack simulations, want 0", got)
	}
	if warm.Replays() == 0 {
		t.Fatal("warm sweep replayed nothing")
	}
	if first != second {
		t.Fatalf("warm sweep differs from cold:\n--- cold ---\n%s\n--- warm ---\n%s", first, second)
	}
}

// TestShardsPartitionTheSweep: two sharded executors over one store
// split the attack grid exactly; an unsharded run afterwards replays
// the union without simulating and renders the serial bytes.
func TestShardsPartitionTheSweep(t *testing.T) {
	serial := renderAll(t, experiment.NewExecutor(1))

	dir := t.TempDir()
	var shardRuns uint64
	for i := 0; i < 2; i++ {
		st, err := runcache.Open(dir, wire.SchemaVersion())
		if err != nil {
			t.Fatal(err)
		}
		e := experiment.NewExecutor(4)
		e.SetStore(st)
		e.SetShard(i, 2)
		renderAll(t, e)
		if e.Runs() == 0 {
			t.Fatalf("shard %d simulated nothing", i)
		}
		shardRuns += e.Runs()
	}
	st, err := runcache.Open(dir, wire.SchemaVersion())
	if err != nil {
		t.Fatal(err)
	}
	merge := experiment.NewExecutor(4)
	merge.SetStore(st)
	merged := renderAll(t, merge)
	if got := merge.Runs(); got != 0 {
		t.Fatalf("merge run executed %d simulations, want 0 (shards did not partition)", got)
	}
	ref := experiment.NewExecutor(1)
	renderAll(t, ref)
	if shardRuns != ref.Runs() {
		t.Fatalf("shard runs sum to %d, serial executed %d", shardRuns, ref.Runs())
	}
	if merged != serial {
		t.Fatalf("merged sweep differs from serial:\n--- serial ---\n%s\n--- merged ---\n%s",
			serial, merged)
	}
}

// TestVerdictsReproduceTable1: the engine-rendered verdict table is the
// paper's Table 1, byte for byte — same measurements, same classifier.
func TestVerdictsReproduceTable1(t *testing.T) {
	cfg := testConfig()
	direct := attack.Table1(cfg.Attack).Render()
	viaEngine := secsweep.New(cfg, experiment.NewExecutor(4)).Verdicts().Render()
	if direct != viaEngine {
		t.Fatalf("engine verdicts differ from attack.Table1:\n--- direct ---\n%s\n--- engine ---\n%s",
			direct, viaEngine)
	}
}

// TestPlannerCoversTheSweep: a dry render through a planning executor
// declares every cell the real render resolves — the mechanism behind
// session-wide progress/ETA in attacksim.
func TestPlannerCoversTheSweep(t *testing.T) {
	planner := experiment.NewPlanner()
	renderAll(t, planner)
	exec := experiment.NewExecutor(4)
	planned := exec.Plan(planner)
	if planned == 0 {
		t.Fatal("planner recorded no attack cells")
	}
	renderAll(t, exec)
	if got := exec.Planned(); got != planned {
		t.Fatalf("real sweep grew the plan: %d planned, %d after running", planned, got)
	}
	if exec.Done() != planned {
		t.Fatalf("resolved %d of %d planned cells", exec.Done(), planned)
	}
}

// TestMatrixSeparatesMechanisms: sanity on the measured numbers — the
// baseline row must show the BTB-training channel wide open and the
// Noisy-XOR row must close it.
func TestMatrixSeparatesMechanisms(t *testing.T) {
	tab := secsweep.New(testConfig(), experiment.NewExecutor(4)).Matrix(attack.SingleThreaded)
	col := -1
	for i, h := range tab.Header {
		if h == "btb_training" {
			col = i
		}
	}
	if col < 0 {
		t.Fatalf("no btb_training column in %v", tab.Header)
	}
	var baseRate, nxorRate string
	for _, row := range tab.Rows {
		switch row[0] {
		case "Baseline":
			baseRate = row[col]
		case "Noisy-XOR-BP":
			nxorRate = row[col]
		}
	}
	if pctOf(t, baseRate) < 90 {
		t.Fatalf("baseline BTB training = %s, want ~96%%", baseRate)
	}
	if pctOf(t, nxorRate) > 3 {
		t.Fatalf("Noisy-XOR BTB training = %s, want ~0%% (channel noise only)", nxorRate)
	}
}

// pctOf parses a rendered "%.1f%%" cell.
func pctOf(t *testing.T, cell string) float64 {
	t.Helper()
	var v float64
	if _, err := fmt.Sscanf(cell, "%f%%", &v); err != nil {
		t.Fatalf("unparseable rate cell %q: %v", cell, err)
	}
	return v
}
