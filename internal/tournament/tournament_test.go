package tournament

import (
	"testing"

	"xorbp/internal/core"
)

func ctrl(m core.Mechanism) *core.Controller {
	return core.NewController(core.OptionsFor(m), 1)
}

func d(t core.HWThread) core.Domain { return core.Domain{Thread: t, Priv: core.User} }

func train(p *Tournament, dom core.Domain, pc uint64, taken bool, n int) {
	for i := 0; i < n; i++ {
		p.Predict(dom, pc)
		p.Update(dom, pc, taken)
	}
}

func TestLearnsBiasedBranch(t *testing.T) {
	// The local history register needs LocalHistBits rounds to reach its
	// all-taken steady state before the pattern entry stabilizes, so train
	// well past that.
	for _, m := range []core.Mechanism{core.Baseline, core.NoisyXOR} {
		p := New(Gem5Config(), ctrl(m))
		train(p, d(0), 0x400100, true, 30)
		if !p.Predict(d(0), 0x400100) {
			t.Errorf("%v: biased branch not learned", m)
		}
	}
}

func TestLocalComponentCapturesShortPeriod(t *testing.T) {
	// A period-4 per-branch pattern (T T T N) is exactly what the local
	// history component captures, even when the global path is polluted
	// by other branches.
	p := New(Gem5Config(), ctrl(core.Baseline))
	pattern := []bool{true, true, true, false}
	step := 0
	other := uint64(0x500000)
	for i := 0; i < 2000; i++ {
		// Interleave an unrelated random-ish branch to disturb the path
		// history.
		p.Predict(d(0), other+uint64(i%7)*4)
		p.Update(d(0), other+uint64(i%7)*4, i%3 == 0)

		taken := pattern[step%len(pattern)]
		step++
		p.Predict(d(0), 0x400200)
		p.Update(d(0), 0x400200, taken)
	}
	correct := 0
	for i := 0; i < 400; i++ {
		p.Predict(d(0), other+uint64(i%7)*4)
		p.Update(d(0), other+uint64(i%7)*4, i%3 == 0)

		taken := pattern[step%len(pattern)]
		step++
		if p.Predict(d(0), 0x400200) == taken {
			correct++
		}
		p.Update(d(0), 0x400200, taken)
	}
	if correct < 360 {
		t.Fatalf("period-4 local pattern accuracy %d/400, want >=360", correct)
	}
}

func TestChooserAdapts(t *testing.T) {
	// After heavy training on a deterministic global correlation the
	// chooser should exploit it: branch B repeats branch A's direction.
	p := New(Gem5Config(), ctrl(core.Baseline))
	g := uint64(0)
	for i := 0; i < 4000; i++ {
		g = g*1103515245 + 12345
		dir := g&0x10000 != 0
		p.Predict(d(0), 0x400100)
		p.Update(d(0), 0x400100, dir)
		p.Predict(d(0), 0x400200)
		p.Update(d(0), 0x400200, dir) // perfectly correlated
	}
	correct := 0
	for i := 0; i < 1000; i++ {
		g = g*1103515245 + 12345
		dir := g&0x10000 != 0
		p.Predict(d(0), 0x400100)
		p.Update(d(0), 0x400100, dir)
		if p.Predict(d(0), 0x400200) == dir {
			correct++
		}
		p.Update(d(0), 0x400200, dir)
	}
	if correct < 850 {
		t.Fatalf("correlated branch accuracy %d/1000, want >=850", correct)
	}
}

func TestKeyRotationForcesRetrain(t *testing.T) {
	c := ctrl(core.NoisyXOR)
	p := New(Gem5Config(), c)
	pc := uint64(0x400300)
	train(p, d(0), pc, true, 50)
	if !p.Predict(d(0), pc) {
		t.Fatal("training failed")
	}
	c.ContextSwitch(0)
	// Retrain and verify it converges again (warm-up property).
	train(p, d(0), pc, true, 30)
	if !p.Predict(d(0), pc) {
		t.Fatal("did not recover after key rotation")
	}
}

func TestFlushClearsAllTables(t *testing.T) {
	c := ctrl(core.CompleteFlush)
	p := New(Gem5Config(), c)
	train(p, d(0), 0x400400, true, 50)
	c.ContextSwitch(0)
	// After a complete flush the local history and counters are back to
	// init: a not-taken-biased fresh state. One taken training round must
	// behave like cold start (weak counters move immediately).
	train(p, d(0), 0x400400, false, 3)
	if p.Predict(d(0), 0x400400) {
		t.Fatal("state survived complete flush")
	}
}

func TestPerThreadPathHistory(t *testing.T) {
	p := New(Gem5Config(), ctrl(core.Baseline))
	h := p.pathHistory[0]
	p.Predict(d(1), 0x100)
	p.Update(d(1), 0x100, true)
	if p.pathHistory[0] != h {
		t.Fatal("thread 1 update disturbed thread 0 path history")
	}
}

func TestStorageBits(t *testing.T) {
	p := New(Gem5Config(), ctrl(core.Baseline))
	// 2048*11 + 2048*2 + 8192*2 + 8192*2 bits = 6.75 KB table payload
	// (the paper rounds to 6.3 KB counting only prediction bits).
	want := uint64(2048*11 + 2048*2 + 8192*2 + 8192*2)
	if p.StorageBits() != want {
		t.Fatalf("StorageBits = %d, want %d", p.StorageBits(), want)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() int {
		p := New(Gem5Config(), ctrl(core.NoisyXOR))
		correct := 0
		for i := 0; i < 2000; i++ {
			pc := uint64(0x400000 + (i%53)*4)
			taken := (i/7)%2 == 0
			if p.Predict(d(0), pc) == taken {
				correct++
			}
			p.Update(d(0), pc, taken)
		}
		return correct
	}
	if run() != run() {
		t.Fatal("tournament simulation is not deterministic")
	}
}
