// Package tournament implements the Alpha 21264-style hybrid predictor
// evaluated in the paper (Kessler [25]; Figure 6a): a local component
// (per-branch history table feeding a pattern table), a global component
// indexed by path history, and a chooser that picks between them.
//
// Per Figure 6(a) every table — including the local history table itself —
// is accessed through the index key and content key of the executing
// domain when Noisy-XOR-PHT is active.
package tournament

import (
	"xorbp/internal/bitutil"
	"xorbp/internal/core"
	"xorbp/internal/predictor"
	"xorbp/internal/snap"
	"xorbp/internal/store"
)

const pcShift = 2

// Config sizes the tournament predictor.
type Config struct {
	// LocalHistBits is the per-branch history length (Figure 6a: 11).
	LocalHistBits uint
	// LocalEntriesBits is log2 of the local history table size (11 -> 2048).
	LocalEntriesBits uint
	// GlobalBits is log2 of the global/choice table sizes and the path
	// history length (13 -> 8192).
	GlobalBits uint
}

// Gem5Config is the paper's 6.3 KB tournament configuration: 2048×11-bit
// local histories, 2048×2-bit local counters, 8192×2-bit global and
// choice tables.
func Gem5Config() Config {
	return Config{LocalHistBits: 11, LocalEntriesBits: 11, GlobalBits: 13}
}

// Tournament is the predictor.
type Tournament struct {
	cfg Config

	guardL *core.Guard // local history table
	guardP *core.Guard // local prediction table
	guardG *core.Guard // global prediction table
	guardC *core.Guard // choice table

	localHist   *store.WordArray // LocalEntriesBits x LocalHistBits
	localPred   *store.WordArray // LocalHistBits-indexed 2-bit counters
	globalPred  *store.WordArray // GlobalBits 2-bit counters
	choicePred  *store.WordArray // GlobalBits 2-bit counters
	pathHistory [core.MaxHWThreads]uint64

	scratch [core.MaxHWThreads]scratch
}

// scratch carries predict-time state to the update.
type scratch struct {
	localIdx     uint64 // physical index into localHist
	localPattern uint64
	localPIdx    uint64 // physical index into localPred
	globalIdx    uint64
	choiceIdx    uint64
	localTaken   bool
	globalTaken  bool
}

// New builds a tournament predictor registered for flush events. Each
// table gets its own guard salt, matching the Figure 6 caption ("each
// table can also have their own index key and content key").
func New(cfg Config, ctrl *core.Controller) *Tournament {
	t := &Tournament{
		cfg:    cfg,
		guardL: ctrl.Guard(0x70a1, core.StructPHT),
		guardP: ctrl.Guard(0x70a2, core.StructPHT),
		guardG: ctrl.Guard(0x70a3, core.StructPHT),
		guardC: ctrl.Guard(0x70a4, core.StructPHT),
	}
	// Local histories reset to their row index: distinct post-flush
	// patterns avoid the transient where every branch aliases onto the
	// zero-pattern counter (a one-gate-per-row hardware reset).
	t.localHist = store.NewWordArrayInit(t.guardL, cfg.LocalEntriesBits, cfg.LocalHistBits,
		func(idx uint64) uint64 { return idx })
	t.localPred = store.NewWordArray(t.guardP, cfg.LocalHistBits, 2, 1)
	t.globalPred = store.NewWordArray(t.guardG, cfg.GlobalBits, 2, 1)
	// Choice init 2: weakly prefer the global component, the Alpha reset
	// state.
	t.choicePred = store.NewWordArray(t.guardC, cfg.GlobalBits, 2, 2)
	ctrl.Register(t, core.StructPHT)
	return t
}

// Name implements predictor.DirPredictor.
func (t *Tournament) Name() string { return "tournament" }

// Predict implements predictor.DirPredictor.
//
//bpvet:hotpath
func (t *Tournament) Predict(d core.Domain, pc uint64) bool {
	s := &t.scratch[d.Thread]

	// Local component: PC -> per-branch history -> pattern counter.
	logicalL := (pc >> pcShift) & bitutil.Mask(t.cfg.LocalEntriesBits)
	s.localIdx = t.guardL.ScrambleIndex(logicalL, d, t.cfg.LocalEntriesBits)
	s.localPattern = t.localHist.Get(d, s.localIdx) & bitutil.Mask(t.cfg.LocalHistBits)
	s.localPIdx = t.guardP.ScrambleIndex(s.localPattern, d, t.cfg.LocalHistBits)
	s.localTaken = t.localPred.Get(d, s.localPIdx) >= 2

	// Global component and chooser share the path history index.
	path := t.pathHistory[d.Thread] & bitutil.Mask(t.cfg.GlobalBits)
	s.globalIdx = t.guardG.ScrambleIndex(path, d, t.cfg.GlobalBits)
	s.choiceIdx = t.guardC.ScrambleIndex(path, d, t.cfg.GlobalBits)
	s.globalTaken = t.globalPred.Get(d, s.globalIdx) >= 2

	if t.choicePred.Get(d, s.choiceIdx) >= 2 {
		return s.globalTaken
	}
	return s.localTaken
}

// Update implements predictor.DirPredictor.
//
//bpvet:hotpath
func (t *Tournament) Update(d core.Domain, pc uint64, taken bool) {
	s := &t.scratch[d.Thread]

	// Chooser trains towards whichever component was right, only when
	// they disagreed.
	if s.localTaken != s.globalTaken {
		t.choicePred.Update(d, s.choiceIdx, func(v uint64) uint64 {
			return bump2(v, s.globalTaken == taken)
		})
	}

	t.localPred.Update(d, s.localPIdx, func(v uint64) uint64 { return bump2(v, taken) })
	t.globalPred.Update(d, s.globalIdx, func(v uint64) uint64 { return bump2(v, taken) })

	// Shift the outcome into the branch's local history and the thread's
	// path history.
	newPattern := (s.localPattern<<1 | b2u(taken)) & bitutil.Mask(t.cfg.LocalHistBits)
	t.localHist.Set(d, s.localIdx, newPattern)
	t.pathHistory[d.Thread] = t.pathHistory[d.Thread]<<1 | b2u(taken)
}

// FlushAll implements core.Flusher.
//
//bpvet:hotpath
func (t *Tournament) FlushAll() {
	t.localHist.FlushAll()
	t.localPred.FlushAll()
	t.globalPred.FlushAll()
	t.choicePred.FlushAll()
}

// FlushThread implements core.Flusher.
//
//bpvet:hotpath
func (t *Tournament) FlushThread(th core.HWThread) {
	t.localHist.FlushThread(th)
	t.localPred.FlushThread(th)
	t.globalPred.FlushThread(th)
	t.choicePred.FlushThread(th)
}

// Snapshot writes all four tables and the per-thread path histories
// (scratch is predict-to-update carry state, dead at cycle boundaries).
func (t *Tournament) Snapshot(w *snap.Writer) {
	t.localHist.Snapshot(w)
	t.localPred.Snapshot(w)
	t.globalPred.Snapshot(w)
	t.choicePred.Snapshot(w)
	for i := range t.pathHistory {
		w.U64(t.pathHistory[i])
	}
}

// Restore replaces the tables and path histories.
func (t *Tournament) Restore(r *snap.Reader) {
	t.localHist.Restore(r)
	t.localPred.Restore(r)
	t.globalPred.Restore(r)
	t.choicePred.Restore(r)
	for i := range t.pathHistory {
		t.pathHistory[i] = r.U64()
	}
}

// StorageBits implements predictor.DirPredictor.
func (t *Tournament) StorageBits() uint64 {
	return t.localHist.StorageBits() + t.localPred.StorageBits() +
		t.globalPred.StorageBits() + t.choicePred.StorageBits()
}

// Entries reports the logical entry count across all four tables (for
// the Precise Flush walk cost model).
func (t *Tournament) Entries() uint64 {
	return t.localHist.Len() + t.localPred.Len() +
		t.globalPred.Len() + t.choicePred.Len()
}

// bump2 saturating-updates a 2-bit counter value.
func bump2(v uint64, up bool) uint64 {
	if up {
		if v < 3 {
			return v + 1
		}
		return v
	}
	if v > 0 {
		return v - 1
	}
	return 0
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

var _ predictor.DirPredictor = (*Tournament)(nil)
var _ core.Flusher = (*Tournament)(nil)

// PredictUpdate implements predictor.PredictUpdater: the fused
// predict-then-train call the simulator dispatches once per conditional
// branch (identical to Predict followed by Update).
//
//bpvet:hotpath
func (t *Tournament) PredictUpdate(d core.Domain, pc uint64, taken bool) bool {
	pred := t.Predict(d, pc)
	t.Update(d, pc, taken)
	return pred
}

var _ predictor.PredictUpdater = (*Tournament)(nil)
