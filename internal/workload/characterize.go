package workload

import (
	"fmt"

	"xorbp/internal/predictor"
	"xorbp/internal/report"
)

// Characteristics summarizes a benchmark model's branch statistics over a
// sampled stream — the quantities the paper anchors its analysis on
// (§6.2: static conditional branch ratios of 12.1% for gcc, 8.1% for
// calculix, 4.8% for gromacs, 7.6% for GemsFDTD).
type Characteristics struct {
	Name           string
	Events         uint64
	Instructions   uint64
	BranchRatio    float64 // dynamic branches / instructions
	CondRatio      float64 // conditional branches / instructions
	TakenRate      float64
	IndirectShare  float64 // indirect branches / branches
	CallShare      float64
	StaticBranches int
	SyscallPer10K  float64
}

// Characterize samples n events from the benchmark and summarizes them.
func Characterize(name string, n int, seed uint64) (Characteristics, error) {
	prof, err := ByName(name)
	if err != nil {
		return Characteristics{}, err
	}
	g := NewGenerator(prof, seed)
	var ev BranchEvent
	var c Characteristics
	c.Name = name
	c.StaticBranches = g.StaticBranches()
	var cond, taken, indirect, calls, syscalls uint64
	for i := 0; i < n; i++ {
		g.Next(&ev)
		c.Events++
		c.Instructions += uint64(ev.Gap) + 1
		if ev.Class == predictor.CondDirect {
			cond++
		}
		if ev.Class == predictor.Indirect || ev.Class == predictor.IndirectCall {
			indirect++
		}
		if ev.Class.PushesRAS() {
			calls++
		}
		if ev.Taken {
			taken++
		}
		if ev.Syscall {
			syscalls++
		}
	}
	c.BranchRatio = float64(c.Events) / float64(c.Instructions)
	c.CondRatio = float64(cond) / float64(c.Instructions)
	c.TakenRate = float64(taken) / float64(c.Events)
	c.IndirectShare = float64(indirect) / float64(c.Events)
	c.CallShare = float64(calls) / float64(c.Events)
	c.SyscallPer10K = float64(syscalls) / float64(c.Instructions) * 10000
	return c, nil
}

// CharacterizationTable renders the branch statistics of every modelled
// benchmark (sorted), with the paper's quoted conditional-branch-ratio
// anchors where available.
func CharacterizationTable(n int, seed uint64) (*report.Table, error) {
	anchors := map[string]string{
		"gcc": "12.1%", "calculix": "8.1%", "gromacs": "4.8%", "GemsFDTD": "7.6%",
	}
	t := &report.Table{
		Title: "Workload characterization (synthetic SPEC CPU 2006 models)",
		Header: []string{"benchmark", "static", "br ratio", "cond ratio",
			"paper cond", "taken", "ind%", "sys/10K"},
		Caption: "Paper anchors from §6.2 where quoted; the synthetic models are\n" +
			"calibrated to them (see internal/workload/profiles.go).",
	}
	for _, name := range sortedNames() {
		c, err := Characterize(name, n, seed)
		if err != nil {
			return nil, err
		}
		anchor := anchors[name]
		if anchor == "" {
			anchor = "-"
		}
		t.AddRow(c.Name,
			fmt.Sprint(c.StaticBranches),
			fmt.Sprintf("%.1f%%", c.BranchRatio*100),
			fmt.Sprintf("%.1f%%", c.CondRatio*100),
			anchor,
			fmt.Sprintf("%.1f%%", c.TakenRate*100),
			fmt.Sprintf("%.1f%%", c.IndirectShare*100),
			fmt.Sprintf("%.2f", c.SyscallPer10K))
	}
	return t, nil
}

// sortedNames returns the benchmark names in stable order.
func sortedNames() []string {
	names := Names()
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}
