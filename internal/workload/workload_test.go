package workload

import (
	"testing"

	"xorbp/internal/predictor"
)

func TestGeneratorDeterminism(t *testing.T) {
	a := NewGenerator(MustByName("gcc"), 1)
	b := NewGenerator(MustByName("gcc"), 1)
	var ea, eb BranchEvent
	for i := 0; i < 20000; i++ {
		a.Next(&ea)
		b.Next(&eb)
		if ea != eb {
			t.Fatalf("streams diverge at event %d: %+v vs %+v", i, ea, eb)
		}
	}
}

func TestGeneratorSeedSensitivity(t *testing.T) {
	a := NewGenerator(MustByName("gcc"), 1)
	b := NewGenerator(MustByName("gcc"), 2)
	var ea, eb BranchEvent
	same := 0
	for i := 0; i < 1000; i++ {
		a.Next(&ea)
		b.Next(&eb)
		if ea.Taken == eb.Taken && ea.PC == eb.PC {
			same++
		}
	}
	if same > 900 {
		t.Fatalf("different seeds produce near-identical streams (%d/1000)", same)
	}
}

func TestAllProfilesGenerate(t *testing.T) {
	for _, name := range Names() {
		g := NewGenerator(MustByName(name), 7)
		var ev BranchEvent
		conds := 0
		for i := 0; i < 5000; i++ {
			g.Next(&ev)
			if ev.PC == 0 {
				t.Fatalf("%s: zero PC", name)
			}
			if ev.Gap == 0 {
				t.Fatalf("%s: zero gap", name)
			}
			if ev.Class == predictor.CondDirect {
				conds++
			}
			if ev.Class == predictor.Return && ev.Target == 0 {
				t.Fatalf("%s: return without target", name)
			}
		}
		if conds < 3000 {
			t.Errorf("%s: only %d/5000 conditional branches", name, conds)
		}
	}
}

func TestSyscallRateRoughlyMatchesProfile(t *testing.T) {
	p := MustByName("gcc")
	g := NewGenerator(p, 3)
	var ev BranchEvent
	instr := uint64(0)
	syscalls := 0
	const events = 400000
	for i := 0; i < events; i++ {
		g.Next(&ev)
		instr += uint64(ev.Gap) + 1
		if ev.Syscall {
			syscalls++
		}
	}
	want := p.SyscallPer10K * float64(instr) / 10000
	got := float64(syscalls)
	if got < want*0.8 || got > want*1.2 {
		t.Fatalf("syscalls %v, want about %v over %d instructions", got, want, instr)
	}
}

func TestLoopTripCountsStable(t *testing.T) {
	// Loop-back branches must produce runs of taken ending in one
	// not-taken, with a consistent trip count per site.
	p := Profile{
		Name: "looponly", Regions: 1, SitesMin: 1, SitesMax: 1, ZipfS: 1,
		GapMean: 5, LoopFrac: 1.0, TripMin: 9, TripMax: 9, BiasedFrac: 1.0,
		BiasMin: 0.99, PatternPeriodMax: 4, CodeBase: 0x1000,
	}
	g := NewGenerator(p, 5)
	var ev BranchEvent
	// Find the loop site: it is the conditional that is sometimes not
	// taken with target == region entry... simpler: count takens between
	// not-takens for the most frequent PC.
	counts := map[uint64][]bool{}
	for i := 0; i < 4000; i++ {
		g.Next(&ev)
		if ev.Class == predictor.CondDirect {
			counts[ev.PC] = append(counts[ev.PC], ev.Taken)
		}
	}
	// The loop site sees 8 taken then 1 not-taken cycles (trip 9).
	found := false
	for _, seq := range counts {
		run, ok := 0, true
		sawExit := false
		for _, taken := range seq {
			if taken {
				run++
				if run > 8 {
					ok = false
					break
				}
			} else {
				sawExit = true
				if run != 8 {
					ok = false
					break
				}
				run = 0
			}
		}
		if ok && sawExit {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no site shows the stable 8-taken/1-exit loop shape")
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nonexistent"); err == nil {
		t.Fatal("unknown benchmark did not error")
	}
}

func TestPairsComplete(t *testing.T) {
	for _, p := range SingleCorePairs() {
		if _, err := ByName(p.First); err != nil {
			t.Errorf("%s: %v", p.ID, err)
		}
		if _, err := ByName(p.Second); err != nil {
			t.Errorf("%s: %v", p.ID, err)
		}
	}
	for _, p := range SMTPairs() {
		if _, err := ByName(p.First); err != nil {
			t.Errorf("smt %s: %v", p.ID, err)
		}
		if _, err := ByName(p.Second); err != nil {
			t.Errorf("smt %s: %v", p.ID, err)
		}
	}
	if len(SingleCorePairs()) != 12 || len(SMTPairs()) != 12 {
		t.Fatal("Table 3 requires 12 cases per column")
	}
}

func TestSMTQuads(t *testing.T) {
	quads := SMTQuads()
	if len(quads) != 6 {
		t.Fatalf("expected 6 quads, got %d", len(quads))
	}
	for _, q := range quads {
		for _, n := range q.Names {
			if _, err := ByName(n); err != nil {
				t.Errorf("%s: %v", q.ID, err)
			}
		}
	}
}

func TestFootprintDiversity(t *testing.T) {
	big := NewGenerator(MustByName("gcc"), 1).StaticBranches()
	small := NewGenerator(MustByName("libquantum"), 1).StaticBranches()
	if big < 5*small {
		t.Fatalf("gcc footprint (%d) should dwarf libquantum (%d)", big, small)
	}
}

func TestCallsBalancedByReturns(t *testing.T) {
	g := NewGenerator(MustByName("povray"), 2)
	var ev BranchEvent
	calls, rets := 0, 0
	for i := 0; i < 100000; i++ {
		g.Next(&ev)
		switch ev.Class {
		case predictor.Call, predictor.IndirectCall:
			calls++
		case predictor.Return:
			rets++
		}
	}
	if calls == 0 {
		t.Fatal("povray should perform calls")
	}
	// The sampling window may cut between a call and its return.
	if diff := calls - rets; diff < 0 || diff > 1 {
		t.Fatalf("calls %d vs returns %d, want balanced within 1", calls, rets)
	}
}

func TestKernelProfileGenerates(t *testing.T) {
	g := NewGenerator(KernelProfile(), 9)
	var ev BranchEvent
	for i := 0; i < 2000; i++ {
		g.Next(&ev)
		if ev.Syscall {
			t.Fatal("kernel profile must not issue syscalls")
		}
	}
}

func TestInvalidProfilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid profile did not panic")
		}
	}()
	NewGenerator(Profile{Name: "bad"}, 1)
}

func TestCharacterizeAnchors(t *testing.T) {
	// The paper's quoted conditional-branch ratios are calibration
	// anchors; allow a generous band since the models are synthetic.
	anchors := map[string]float64{
		"gcc": 0.121, "calculix": 0.081, "gromacs": 0.048, "GemsFDTD": 0.076,
	}
	for name, want := range anchors {
		c, err := Characterize(name, 200000, 1)
		if err != nil {
			t.Fatal(err)
		}
		if c.CondRatio < want*0.5 || c.CondRatio > want*1.6 {
			t.Errorf("%s: cond ratio %.3f, anchor %.3f", name, c.CondRatio, want)
		}
		if c.StaticBranches == 0 || c.TakenRate <= 0 || c.TakenRate >= 1 {
			t.Errorf("%s: degenerate characteristics %+v", name, c)
		}
	}
}

func TestCharacterizationTable(t *testing.T) {
	tab, err := CharacterizationTable(20000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(Names()) {
		t.Fatalf("table has %d rows, want %d", len(tab.Rows), len(Names()))
	}
}

func TestCharacterizeUnknown(t *testing.T) {
	if _, err := Characterize("nope", 10, 1); err == nil {
		t.Fatal("unknown benchmark did not error")
	}
}

// TestNextBatchMatchesNext asserts the batch seam observes exactly the
// single-event stream: a generator drained via NextBatch (in awkward
// chunk sizes spanning refill boundaries) produces the same events as
// an identical generator drained via Next.
func TestNextBatchMatchesNext(t *testing.T) {
	single := NewGenerator(MustByName("gcc"), 7)
	batched := NewGenerator(MustByName("gcc"), 7)
	var want []BranchEvent
	var ev BranchEvent
	for i := 0; i < 5000; i++ {
		single.Next(&ev)
		want = append(want, ev)
	}
	var got []BranchEvent
	chunk := make([]BranchEvent, 0, 173)
	for len(got) < len(want) {
		n := cap(chunk)
		if rem := len(want) - len(got); rem < n {
			n = rem
		}
		buf := chunk[:n]
		if filled := batched.NextBatch(buf); filled != n {
			t.Fatalf("NextBatch filled %d of %d", filled, n)
		}
		got = append(got, buf...)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d differs: batch %+v, single %+v", i, got[i], want[i])
		}
	}
}

// TestNextBatchInterleavesWithNext asserts the two APIs share one
// cursor: alternating calls continue the same stream.
func TestNextBatchInterleavesWithNext(t *testing.T) {
	ref := NewGenerator(MustByName("mcf"), 3)
	mix := NewGenerator(MustByName("mcf"), 3)
	var want []BranchEvent
	var ev BranchEvent
	for i := 0; i < 600; i++ {
		ref.Next(&ev)
		want = append(want, ev)
	}
	var got []BranchEvent
	buf := make([]BranchEvent, 97)
	for len(got) < 500 {
		mix.NextBatch(buf)
		got = append(got, buf...)
		mix.Next(&ev)
		got = append(got, ev)
	}
	for i := range got {
		if got[i] != want[i%len(want)] && i < len(want) {
			t.Fatalf("event %d differs after interleaving", i)
		}
	}
}

// TestBatchedAdapter lifts a Next-only program and checks passthrough
// for programs that already batch.
func TestBatchedAdapter(t *testing.T) {
	g := NewGenerator(MustByName("lbm"), 1)
	if bp := Batched(g); bp != Program(g) {
		t.Fatal("Batched re-wrapped a BatchProgram")
	}
	type nextOnly struct{ Program }
	ref := NewGenerator(MustByName("lbm"), 9)
	ad := Batched(nextOnly{NewGenerator(MustByName("lbm"), 9)})
	buf := make([]BranchEvent, 256)
	if n := ad.NextBatch(buf); n != len(buf) {
		t.Fatalf("adapter filled %d, want %d", n, len(buf))
	}
	var ev BranchEvent
	for i := range buf {
		ref.Next(&ev)
		if buf[i] != ev {
			t.Fatalf("adapter event %d differs", i)
		}
	}
}
