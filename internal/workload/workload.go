// Package workload synthesizes deterministic branch streams that stand in
// for the SPEC CPU 2006 benchmarks of the paper's evaluation (Table 3).
//
// No SPEC traces ship with this repository, so each benchmark is modelled
// as a small structured program (DESIGN.md §2): a set of regions (loop
// nests) whose branch sites exhibit the behaviours that differentiate
// real predictors —
//
//   - loop branches with stable trip counts (loop predictors win),
//   - periodic per-branch patterns of varying period (local components
//     capture short periods, long-history TAGE tables capture long ones),
//   - branches correlated with an earlier branch's outcome (global
//     history), and
//   - biased and unbiased random branches (statistical correction floor).
//
// Region popularity is Zipf-distributed to model hot/cold code, indirect
// branches rotate through target sets, calls/returns exercise the RAS,
// and syscalls are injected at per-benchmark rates so that privilege-
// switch frequencies land in the range of the paper's Table 4.
package workload

import (
	"math"

	"xorbp/internal/predictor"
	"xorbp/internal/rng"
	"xorbp/internal/snap"

	"xorbp/internal/bitutil"
)

// BranchEvent is one dynamic branch with its resolved outcome. Gap is the
// number of non-branch instructions fetched before it.
type BranchEvent struct {
	PC      uint64
	Target  uint64
	Class   predictor.Class
	Taken   bool
	Gap     uint16
	Syscall bool // a syscall follows this instruction
}

// Snapshot writes one branch event.
func (e *BranchEvent) Snapshot(w *snap.Writer) {
	w.U64(e.PC)
	w.U64(e.Target)
	w.U8(uint8(e.Class))
	w.Bool(e.Taken)
	w.U16(e.Gap)
	w.Bool(e.Syscall)
}

// Restore reads one branch event.
func (e *BranchEvent) Restore(r *snap.Reader) {
	e.PC = r.U64()
	e.Target = r.U64()
	e.Class = predictor.Class(r.U8())
	e.Taken = r.Bool()
	e.Gap = r.U16()
	e.Syscall = r.Bool()
}

// Program produces a deterministic stream of branch events.
type Program interface {
	// Name identifies the benchmark.
	Name() string
	// Next fills ev with the next dynamic branch.
	Next(ev *BranchEvent)
}

// BatchProgram is a Program that can hand out events in bulk. The
// simulator's hot loop refills per-thread event rings through this seam,
// amortizing interface dispatch over whole batches instead of paying it
// per branch. Implementations must produce exactly the stream Next
// would: interleaving Next and NextBatch calls observes one cursor.
type BatchProgram interface {
	Program
	// NextBatch fills evs completely with the next len(evs) dynamic
	// branches and returns the count filled (== len(evs)).
	NextBatch(evs []BranchEvent) int
}

// Batched adapts any Program to BatchProgram. Programs that already
// batch (the Generator, trace replays) are returned unchanged; others
// get a loop-over-Next adapter, so callers can always refill rings with
// one call.
func Batched(p Program) BatchProgram {
	if b, ok := p.(BatchProgram); ok {
		return b
	}
	return singleBatch{p}
}

// singleBatch lifts a single-event Program into the batch interface.
type singleBatch struct{ Program }

//bpvet:hotpath
func (s singleBatch) NextBatch(evs []BranchEvent) int {
	for i := range evs {
		s.Program.Next(&evs[i])
	}
	return len(evs)
}

// Profile parameterizes a synthetic benchmark.
type Profile struct {
	// Name of the modelled benchmark (e.g. "gcc").
	Name string
	// Regions is the number of static code regions (loop nests).
	Regions int
	// SitesMin/SitesMax bound the number of conditional branch sites per
	// region body.
	SitesMin, SitesMax int
	// ZipfS is the region-popularity skew (higher = hotter hot code).
	ZipfS float64
	// GapMean is the mean number of non-branch instructions between
	// branches (≈ 1/branch-ratio - 1).
	GapMean int
	// Behaviour mix: fractions of conditional sites per kind. The
	// remainder beyond these fractions is unbiased random (the
	// unpredictable floor).
	LoopFrac, PatternFrac, CorrFrac, BiasedFrac float64
	// TripMin/TripMax bound loop trip counts.
	TripMin, TripMax int
	// PatternPeriodMax bounds periodic-site period length.
	PatternPeriodMax int
	// BiasMin is the minimum taken-probability of biased sites (they are
	// symmetrically inverted half the time).
	BiasMin float64
	// IndirectFrac is the fraction of regions ending in an indirect jump.
	IndirectFrac float64
	// IndirectTargets is the number of targets per indirect site.
	IndirectTargets int
	// CallFrac is the fraction of region invocations entered via call
	// (exercising the RAS).
	CallFrac float64
	// SyscallPer10K is the expected number of syscalls per 10,000
	// instructions (sets the Table 4 privilege-switch rate).
	SyscallPer10K float64
	// PhasePeriod is the number of region invocations between phase
	// changes (0 = single phase). Phases shift the hot region set,
	// modelling program phases.
	PhasePeriod int
	// CodeBase is the base PC of the program's code.
	CodeBase uint64
}

// site kinds.
type siteKind uint8

const (
	siteLoop siteKind = iota
	sitePattern
	siteCorr
	siteBiased
	siteRandom
)

// site is one static conditional branch.
type site struct {
	pc   uint64
	kind siteKind

	// pattern state
	pattern []bool
	pos     int

	// correlation: this site repeats (possibly inverted) the outcome of
	// body site srcIdx earlier in the same iteration — a global-history
	// correlation at branch distance idx-srcIdx.
	srcIdx int
	invert bool

	// biased sites
	bias float64

	// loop sites
	trip int
}

// region is a loop nest: a body of conditional sites, an optional loop
// branch, an optional trailing indirect jump, and the region's entry
// call/return pair.
type region struct {
	id       int
	body     []site
	loopSite *site // loop-back branch; nil = straight-line region
	indirect *site
	targets  []uint64
	callPC   uint64
	retPC    uint64
	entry    uint64
}

// Generator implements Program for a Profile.
type Generator struct {
	prof Profile
	rng  *rng.Xoshiro256
	zipf *bitutil.Zipf

	regions []region

	// generated-event buffer (one region invocation at a time)
	buf []BranchEvent
	pos int

	// outcome history per region for correlated sites:
	// hist[regionID][siteIdx] ring of recent outcomes.
	hist [][]bool

	phase       int
	invocations int

	instRetired uint64
	sysAccum    float64
}

// NewGenerator builds a deterministic generator for prof; seed
// diversifies runs (the same seed reproduces the same stream).
func NewGenerator(prof Profile, seed uint64) *Generator {
	if prof.Regions <= 0 || prof.SitesMin <= 0 || prof.SitesMax < prof.SitesMin {
		panic("workload: invalid profile geometry")
	}
	g := &Generator{
		prof: prof,
		rng:  rng.NewXoshiro256(rng.Mix64(seed ^ hashName(prof.Name))),
		zipf: bitutil.NewZipf(prof.Regions, prof.ZipfS),
	}
	g.build()
	return g
}

func hashName(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// build lays out the static program.
func (g *Generator) build() {
	pc := g.prof.CodeBase
	nextPC := func() uint64 {
		pc += 4 * uint64(1+g.rng.Intn(4))
		return pc
	}
	for r := 0; r < g.prof.Regions; r++ {
		nSites := g.prof.SitesMin
		if g.prof.SitesMax > g.prof.SitesMin {
			nSites += g.rng.Intn(g.prof.SitesMax - g.prof.SitesMin + 1)
		}
		reg := region{id: r, entry: nextPC(), callPC: nextPC(), retPC: nextPC()}
		for i := 0; i < nSites; i++ {
			s := site{pc: nextPC()}
			u := g.rng.Float64()
			switch {
			case u < g.prof.PatternFrac:
				s.kind = sitePattern
				period := 2 + g.rng.Intn(max(1, g.prof.PatternPeriodMax-1))
				s.pattern = make([]bool, period)
				for j := range s.pattern {
					s.pattern[j] = g.rng.Bool(0.5)
				}
			case u < g.prof.PatternFrac+g.prof.CorrFrac && i > 0:
				s.kind = siteCorr
				s.srcIdx = g.rng.Intn(i)
				s.invert = g.rng.Bool(0.3)
			case u < g.prof.PatternFrac+g.prof.CorrFrac+g.prof.BiasedFrac:
				s.kind = siteBiased
				s.bias = g.prof.BiasMin + g.rng.Float64()*(0.99-g.prof.BiasMin)
				if g.rng.Bool(0.5) {
					s.bias = 1 - s.bias
				}
			default:
				s.kind = siteRandom
			}
			reg.body = append(reg.body, s)
		}
		// Loop-back branch with a stable trip count for LoopFrac of
		// regions.
		if g.rng.Float64() < g.prof.LoopFrac {
			trip := g.prof.TripMin
			if g.prof.TripMax > g.prof.TripMin {
				trip += g.rng.Intn(g.prof.TripMax - g.prof.TripMin + 1)
			}
			reg.loopSite = &site{pc: nextPC(), kind: siteLoop, trip: trip}
		}
		if g.rng.Float64() < g.prof.IndirectFrac && g.prof.IndirectTargets > 1 {
			reg.indirect = &site{pc: nextPC(), kind: sitePattern}
			for t := 0; t < g.prof.IndirectTargets; t++ {
				reg.targets = append(reg.targets, nextPC())
			}
		}
		g.regions = append(g.regions, reg)
		g.hist = append(g.hist, make([]bool, len(reg.body)))
	}
}

// Name implements Program.
func (g *Generator) Name() string { return g.prof.Name }

// Next implements Program.
//
//bpvet:hotpath
func (g *Generator) Next(ev *BranchEvent) {
	for g.pos >= len(g.buf) {
		g.refill()
	}
	*ev = g.buf[g.pos]
	g.pos++
}

// NextBatch implements BatchProgram: whole region invocations are copied
// out of the generation buffer at memmove speed, refilling as needed.
// It shares the Next cursor, so mixing the two APIs is safe.
//
//bpvet:hotpath
func (g *Generator) NextBatch(evs []BranchEvent) int {
	n := 0
	for n < len(evs) {
		if g.pos >= len(g.buf) {
			g.refill()
		}
		c := copy(evs[n:], g.buf[g.pos:])
		g.pos += c
		n += c
	}
	return n
}

// gap draws the non-branch instruction count before a branch.
func (g *Generator) gap() uint16 {
	m := g.prof.GapMean
	if m < 1 {
		m = 1
	}
	return uint16(1 + g.rng.Intn(2*m-1))
}

// emit appends an event, deciding syscall injection from the accumulated
// instruction count.
func (g *Generator) emit(pc, target uint64, class predictor.Class, taken bool) {
	e := BranchEvent{PC: pc, Target: target, Class: class, Taken: taken, Gap: g.gap()}
	n := uint64(e.Gap) + 1
	g.instRetired += n
	g.sysAccum += float64(n) * g.prof.SyscallPer10K / 10000
	if g.sysAccum >= 1 {
		g.sysAccum--
		e.Syscall = true
	}
	g.buf = append(g.buf, e) //bpvet:allow amortized: refill truncates to buf[:0], so capacity is reused after the first invocation
}

// outcomeOf resolves one conditional site's direction.
func (g *Generator) outcomeOf(reg *region, idx int) bool {
	s := &reg.body[idx]
	var out bool
	switch s.kind {
	case sitePattern:
		out = s.pattern[s.pos]
		s.pos = (s.pos + 1) % len(s.pattern)
	case siteCorr:
		out = g.hist[reg.id][s.srcIdx] != s.invert
	case siteBiased:
		out = g.rng.Bool(s.bias)
	default: // siteRandom
		out = g.rng.Bool(0.5)
	}
	g.hist[reg.id][idx] = out
	return out
}

// refill generates one region invocation into the buffer.
func (g *Generator) refill() {
	g.buf = g.buf[:0]
	g.pos = 0
	g.invocations++
	if g.prof.PhasePeriod > 0 && g.invocations%g.prof.PhasePeriod == 0 {
		g.phase++
	}

	// Pick a region: Zipf rank rotated by the phase so the hot set
	// drifts.
	rank := g.zipf.Sample(g.rng)
	ri := (rank + g.phase*7) % len(g.regions)
	reg := &g.regions[ri]

	// Optionally enter via call.
	called := g.rng.Float64() < g.prof.CallFrac
	if called {
		g.emit(reg.callPC, reg.entry, predictor.Call, true)
	}

	trips := 1
	if reg.loopSite != nil {
		trips = reg.loopSite.trip
	}
	for it := 0; it < trips; it++ {
		for i := range reg.body {
			s := &reg.body[i]
			taken := g.outcomeOf(reg, i)
			tgt := s.pc + 16
			g.emit(s.pc, tgt, predictor.CondDirect, taken)
		}
		if reg.loopSite != nil {
			// Loop-back: taken while iterations remain.
			g.emit(reg.loopSite.pc, reg.entry, predictor.CondDirect, it+1 < trips)
		}
	}
	if reg.indirect != nil {
		// Rotate deterministically through the target set with occasional
		// random jumps, a switch-dispatch shape.
		s := reg.indirect
		s.pos = (s.pos + 1) % len(reg.targets)
		ti := s.pos
		if g.rng.Bool(0.15) {
			ti = g.rng.Intn(len(reg.targets))
		}
		g.emit(s.pc, reg.targets[ti], predictor.Indirect, true)
	}
	if called {
		g.emit(reg.retPC, reg.callPC+4, predictor.Return, true)
	}
}

// Snapshot writes the generator's mutable state: the RNG, per-site
// pattern cursors, indirect rotation cursors, the correlation history
// rings, the phase/invocation/accounting counters, and the contents of
// the generation buffer with its read cursor. The static program layout
// (regions, patterns, trip counts, targets) is rebuilt deterministically
// from the profile and seed by NewGenerator, so it is not serialized.
func (g *Generator) Snapshot(w *snap.Writer) {
	g.rng.Snapshot(w)
	for ri := range g.regions {
		reg := &g.regions[ri]
		for i := range reg.body {
			if reg.body[i].kind == sitePattern {
				w.U32(uint32(reg.body[i].pos))
			}
		}
		if reg.indirect != nil {
			w.U32(uint32(reg.indirect.pos))
		}
	}
	for _, h := range g.hist {
		for _, b := range h {
			w.Bool(b)
		}
	}
	w.I64(int64(g.phase))
	w.I64(int64(g.invocations))
	w.U64(g.instRetired)
	w.U64(math.Float64bits(g.sysAccum))
	w.U32(uint32(len(g.buf)))
	for i := range g.buf {
		g.buf[i].Snapshot(w)
	}
	w.U32(uint32(g.pos))
}

// Restore replaces the generator's mutable state from a snapshot taken
// of a generator built from the same profile and seed.
func (g *Generator) Restore(r *snap.Reader) {
	g.rng.Restore(r)
	for ri := range g.regions {
		reg := &g.regions[ri]
		for i := range reg.body {
			if reg.body[i].kind == sitePattern {
				p := int(r.U32())
				if n := len(reg.body[i].pattern); n > 0 && p < n {
					reg.body[i].pos = p
				} else {
					r.Fail("workload: pattern cursor %d out of range", p)
				}
			}
		}
		if reg.indirect != nil {
			p := int(r.U32())
			if n := len(reg.targets); n > 0 && p < n {
				reg.indirect.pos = p
			} else {
				r.Fail("workload: indirect cursor %d out of range", p)
			}
		}
	}
	for _, h := range g.hist {
		for i := range h {
			h[i] = r.Bool()
		}
	}
	g.phase = int(r.I64())
	g.invocations = int(r.I64())
	g.instRetired = r.U64()
	g.sysAccum = math.Float64frombits(r.U64())
	n := int(r.U32())
	if r.Err() != nil || n > r.Remaining() {
		r.Fail("workload: buffer length %d exceeds snapshot", n)
		return
	}
	g.buf = g.buf[:0]
	for i := 0; i < n; i++ {
		var e BranchEvent
		e.Restore(r)
		g.buf = append(g.buf, e)
	}
	p := int(r.U32())
	if p < 0 || p > len(g.buf) {
		r.Fail("workload: buffer cursor %d out of range", p)
		return
	}
	g.pos = p
}

// StaticBranches returns the number of static conditional branch sites
// (for footprint diagnostics).
func (g *Generator) StaticBranches() int {
	n := 0
	for i := range g.regions {
		n += len(g.regions[i].body)
		if g.regions[i].loopSite != nil {
			n++
		}
	}
	return n
}

var _ BatchProgram = (*Generator)(nil)

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
