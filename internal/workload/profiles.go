package workload

import "fmt"

// Profiles models the SPEC CPU 2006 benchmarks used in Table 3. The
// parameters are synthetic stand-ins chosen from public characterisations
// of each benchmark: control-flow footprint (regions/sites), branch
// density (GapMean ≈ 1/ratio - 1), predictability mix, loop structure,
// indirect-branch usage and syscall rate. See DESIGN.md §2 for the
// substitution argument.
//
// The paper quotes several anchors these profiles are calibrated against
// (cmd/diag prints the measured values): gcc has a 12.1% conditional
// branch ratio and ~90.1% PHT accuracy; calculix 8.1% and 94.0%; gromacs
// 4.8% and 88.9%; GemsFDTD 7.6%; libquantum reaches 99.3% BTB accuracy
// with a tiny hot loop set; gobmk has a large footprint with heavy BTB
// residency; Table 4's privilege-switch rates (1.6–7.0 per Mcycle) set
// the syscall parameters.
//
// The fractions Pattern+Corr+Biased leave a small remainder of unbiased
// random sites — the genuinely unpredictable floor that separates hard
// (gobmk, sjeng, mcf) from easy (lbm, libquantum) benchmarks.
var profiles = map[string]Profile{
	"gcc": {
		Name: "gcc", Regions: 420, SitesMin: 3, SitesMax: 10, ZipfS: 0.85,
		GapMean: 7, LoopFrac: 0.30, PatternFrac: 0.367, CorrFrac: 0.298,
		BiasedFrac: 0.300, TripMin: 2, TripMax: 24, PatternPeriodMax: 14,
		BiasMin: 0.935, IndirectFrac: 0.14, IndirectTargets: 6, CallFrac: 0.5,
		SyscallPer10K: 0.0134, PhasePeriod: 2500, CodeBase: 0x10000000,
	},
	"calculix": {
		Name: "calculix", Regions: 150, SitesMin: 2, SitesMax: 7, ZipfS: 1.1,
		GapMean: 11, LoopFrac: 0.55, PatternFrac: 0.356, CorrFrac: 0.267,
		BiasedFrac: 0.357, TripMin: 4, TripMax: 60, PatternPeriodMax: 10,
		BiasMin: 0.935, IndirectFrac: 0.04, IndirectTargets: 4, CallFrac: 0.35,
		SyscallPer10K: 0.0069, PhasePeriod: 0, CodeBase: 0x11000000,
	},
	"milc": {
		Name: "milc", Regions: 60, SitesMin: 2, SitesMax: 5, ZipfS: 1.2,
		GapMean: 14, LoopFrac: 0.65, PatternFrac: 0.312, CorrFrac: 0.241,
		BiasedFrac: 0.432, TripMin: 8, TripMax: 80, PatternPeriodMax: 8,
		BiasMin: 0.945, IndirectFrac: 0.03, IndirectTargets: 4, CallFrac: 0.3,
		SyscallPer10K: 0.0055, PhasePeriod: 0, CodeBase: 0x12000000,
	},
	"povray": {
		Name: "povray", Regions: 260, SitesMin: 3, SitesMax: 9, ZipfS: 0.9,
		GapMean: 8, LoopFrac: 0.25, PatternFrac: 0.309, CorrFrac: 0.326,
		BiasedFrac: 0.324, TripMin: 2, TripMax: 12, PatternPeriodMax: 12,
		BiasMin: 0.915, IndirectFrac: 0.18, IndirectTargets: 8, CallFrac: 0.6,
		SyscallPer10K: 0.0245, PhasePeriod: 1800, CodeBase: 0x13000000,
	},
	"bzip2_source": {
		Name: "bzip2_source", Regions: 90, SitesMin: 3, SitesMax: 8, ZipfS: 1.0,
		GapMean: 6, LoopFrac: 0.45, PatternFrac: 0.367, CorrFrac: 0.262,
		BiasedFrac: 0.341, TripMin: 4, TripMax: 50, PatternPeriodMax: 12,
		BiasMin: 0.920, IndirectFrac: 0.05, IndirectTargets: 4, CallFrac: 0.3,
		SyscallPer10K: 0.0027, PhasePeriod: 3000, CodeBase: 0x14000000,
	},
	"soplex": {
		Name: "soplex", Regions: 210, SitesMin: 2, SitesMax: 8, ZipfS: 0.95,
		GapMean: 9, LoopFrac: 0.40, PatternFrac: 0.321, CorrFrac: 0.294,
		BiasedFrac: 0.349, TripMin: 3, TripMax: 40, PatternPeriodMax: 10,
		BiasMin: 0.915, IndirectFrac: 0.08, IndirectTargets: 5, CallFrac: 0.45,
		SyscallPer10K: 0.0027, PhasePeriod: 2200, CodeBase: 0x15000000,
	},
	"namd": {
		Name: "namd", Regions: 70, SitesMin: 2, SitesMax: 6, ZipfS: 1.15,
		GapMean: 16, LoopFrac: 0.60, PatternFrac: 0.327, CorrFrac: 0.238,
		BiasedFrac: 0.422, TripMin: 8, TripMax: 100, PatternPeriodMax: 8,
		BiasMin: 0.945, IndirectFrac: 0.02, IndirectTargets: 4, CallFrac: 0.3,
		SyscallPer10K: 0.0008, PhasePeriod: 0, CodeBase: 0x16000000,
	},
	"sphinx3": {
		Name: "sphinx3", Regions: 160, SitesMin: 2, SitesMax: 7, ZipfS: 1.0,
		GapMean: 9, LoopFrac: 0.45, PatternFrac: 0.334, CorrFrac: 0.272,
		BiasedFrac: 0.374, TripMin: 4, TripMax: 48, PatternPeriodMax: 10,
		BiasMin: 0.925, IndirectFrac: 0.06, IndirectTargets: 5, CallFrac: 0.4,
		SyscallPer10K: 0.0046, PhasePeriod: 2600, CodeBase: 0x17000000,
	},
	"hmmer": {
		Name: "hmmer", Regions: 40, SitesMin: 2, SitesMax: 5, ZipfS: 1.3,
		GapMean: 7, LoopFrac: 0.70, PatternFrac: 0.328, CorrFrac: 0.239,
		BiasedFrac: 0.425, TripMin: 10, TripMax: 120, PatternPeriodMax: 6,
		BiasMin: 0.955, IndirectFrac: 0.01, IndirectTargets: 4, CallFrac: 0.2,
		SyscallPer10K: 0.0018, PhasePeriod: 0, CodeBase: 0x18000000,
	},
	"GemsFDTD": {
		Name: "GemsFDTD", Regions: 80, SitesMin: 2, SitesMax: 6, ZipfS: 1.1,
		GapMean: 12, LoopFrac: 0.60, PatternFrac: 0.327, CorrFrac: 0.238,
		BiasedFrac: 0.421, TripMin: 8, TripMax: 90, PatternPeriodMax: 8,
		BiasMin: 0.955, IndirectFrac: 0.02, IndirectTargets: 4, CallFrac: 0.25,
		SyscallPer10K: 0.0017, PhasePeriod: 0, CodeBase: 0x19000000,
	},
	"gobmk": {
		Name: "gobmk", Regions: 520, SitesMin: 3, SitesMax: 11, ZipfS: 0.75,
		GapMean: 7, LoopFrac: 0.22, PatternFrac: 0.295, CorrFrac: 0.297,
		BiasedFrac: 0.357, TripMin: 2, TripMax: 14, PatternPeriodMax: 10,
		BiasMin: 0.905, IndirectFrac: 0.10, IndirectTargets: 7, CallFrac: 0.55,
		SyscallPer10K: 0.0031, PhasePeriod: 1500, CodeBase: 0x1a000000,
	},
	"libquantum": {
		Name: "libquantum", Regions: 18, SitesMin: 1, SitesMax: 4, ZipfS: 1.4,
		GapMean: 8, LoopFrac: 0.80, PatternFrac: 0.311, CorrFrac: 0.214,
		BiasedFrac: 0.471, TripMin: 16, TripMax: 200, PatternPeriodMax: 6,
		BiasMin: 0.965, IndirectFrac: 0.0, IndirectTargets: 0, CallFrac: 0.15,
		SyscallPer10K: 0.0011, PhasePeriod: 0, CodeBase: 0x1b000000,
	},
	"gromacs": {
		Name: "gromacs", Regions: 130, SitesMin: 2, SitesMax: 6, ZipfS: 1.0,
		GapMean: 20, LoopFrac: 0.45, PatternFrac: 0.297, CorrFrac: 0.251,
		BiasedFrac: 0.401, TripMin: 4, TripMax: 60, PatternPeriodMax: 8,
		BiasMin: 0.885, IndirectFrac: 0.03, IndirectTargets: 4, CallFrac: 0.3,
		SyscallPer10K: 0.0019, PhasePeriod: 0, CodeBase: 0x1c000000,
	},
	"mcf": {
		Name: "mcf", Regions: 34, SitesMin: 2, SitesMax: 6, ZipfS: 1.1,
		GapMean: 9, LoopFrac: 0.35, PatternFrac: 0.281, CorrFrac: 0.254,
		BiasedFrac: 0.410, TripMin: 2, TripMax: 30, PatternPeriodMax: 8,
		BiasMin: 0.895, IndirectFrac: 0.02, IndirectTargets: 4, CallFrac: 0.25,
		SyscallPer10K: 0.0038, PhasePeriod: 0, CodeBase: 0x1d000000,
	},
	"astar": {
		Name: "astar", Regions: 48, SitesMin: 2, SitesMax: 6, ZipfS: 1.05,
		GapMean: 8, LoopFrac: 0.35, PatternFrac: 0.292, CorrFrac: 0.268,
		BiasedFrac: 0.390, TripMin: 2, TripMax: 26, PatternPeriodMax: 8,
		BiasMin: 0.900, IndirectFrac: 0.03, IndirectTargets: 4, CallFrac: 0.3,
		SyscallPer10K: 0.0028, PhasePeriod: 1200, CodeBase: 0x1e000000,
	},
	"perlbench": {
		Name: "perlbench", Regions: 340, SitesMin: 3, SitesMax: 9, ZipfS: 0.9,
		GapMean: 7, LoopFrac: 0.28, PatternFrac: 0.323, CorrFrac: 0.309,
		BiasedFrac: 0.333, TripMin: 2, TripMax: 18, PatternPeriodMax: 12,
		BiasMin: 0.925, IndirectFrac: 0.20, IndirectTargets: 10, CallFrac: 0.6,
		SyscallPer10K: 0.0108, PhasePeriod: 2000, CodeBase: 0x1f000000,
	},
	"bwaves": {
		Name: "bwaves", Regions: 46, SitesMin: 2, SitesMax: 5, ZipfS: 1.25,
		GapMean: 15, LoopFrac: 0.70, PatternFrac: 0.304, CorrFrac: 0.229,
		BiasedFrac: 0.456, TripMin: 10, TripMax: 140, PatternPeriodMax: 6,
		BiasMin: 0.950, IndirectFrac: 0.01, IndirectTargets: 4, CallFrac: 0.2,
		SyscallPer10K: 0.0031, PhasePeriod: 0, CodeBase: 0x20000000,
	},
	"zeusmp": {
		Name: "zeusmp", Regions: 70, SitesMin: 2, SitesMax: 6, ZipfS: 1.15,
		GapMean: 13, LoopFrac: 0.62, PatternFrac: 0.35, CorrFrac: 0.20,
		BiasedFrac: 0.438, TripMin: 8, TripMax: 100, PatternPeriodMax: 8,
		BiasMin: 0.95, IndirectFrac: 0.02, IndirectTargets: 4, CallFrac: 0.25,
		SyscallPer10K: 0.0028, PhasePeriod: 0, CodeBase: 0x21000000,
	},
	"lbm": {
		Name: "lbm", Regions: 16, SitesMin: 1, SitesMax: 4, ZipfS: 1.4,
		GapMean: 18, LoopFrac: 0.80, PatternFrac: 0.25, CorrFrac: 0.15,
		BiasedFrac: 0.587, TripMin: 20, TripMax: 220, PatternPeriodMax: 4,
		BiasMin: 0.97, IndirectFrac: 0.0, IndirectTargets: 0, CallFrac: 0.1,
		SyscallPer10K: 0.0011, PhasePeriod: 0, CodeBase: 0x22000000,
	},
	"dealII": {
		Name: "dealII", Regions: 280, SitesMin: 2, SitesMax: 8, ZipfS: 0.95,
		GapMean: 9, LoopFrac: 0.38, PatternFrac: 0.32, CorrFrac: 0.25,
		BiasedFrac: 0.405, TripMin: 3, TripMax: 36, PatternPeriodMax: 10,
		BiasMin: 0.90, IndirectFrac: 0.12, IndirectTargets: 6, CallFrac: 0.5,
		SyscallPer10K: 0.0030, PhasePeriod: 2400, CodeBase: 0x23000000,
	},
	"leslie3d": {
		Name: "leslie3d", Regions: 60, SitesMin: 2, SitesMax: 5, ZipfS: 1.2,
		GapMean: 14, LoopFrac: 0.68, PatternFrac: 0.304, CorrFrac: 0.229,
		BiasedFrac: 0.455, TripMin: 10, TripMax: 120, PatternPeriodMax: 6,
		BiasMin: 0.950, IndirectFrac: 0.01, IndirectTargets: 4, CallFrac: 0.2,
		SyscallPer10K: 0.0021, PhasePeriod: 0, CodeBase: 0x24000000,
	},
	"sjeng": {
		Name: "sjeng", Regions: 150, SitesMin: 3, SitesMax: 8, ZipfS: 0.85,
		GapMean: 8, LoopFrac: 0.22, PatternFrac: 0.286, CorrFrac: 0.284,
		BiasedFrac: 0.379, TripMin: 2, TripMax: 12, PatternPeriodMax: 8,
		BiasMin: 0.905, IndirectFrac: 0.08, IndirectTargets: 6, CallFrac: 0.45,
		SyscallPer10K: 0.0034, PhasePeriod: 1400, CodeBase: 0x25000000,
	},
	"h264ref": {
		Name: "h264ref", Regions: 120, SitesMin: 2, SitesMax: 7, ZipfS: 1.05,
		GapMean: 8, LoopFrac: 0.50, PatternFrac: 0.358, CorrFrac: 0.259,
		BiasedFrac: 0.363, TripMin: 4, TripMax: 44, PatternPeriodMax: 12,
		BiasMin: 0.930, IndirectFrac: 0.06, IndirectTargets: 5, CallFrac: 0.4,
		SyscallPer10K: 0.0028, PhasePeriod: 2000, CodeBase: 0x26000000,
	},
	"omnetpp": {
		Name: "omnetpp", Regions: 200, SitesMin: 2, SitesMax: 8, ZipfS: 0.9,
		GapMean: 8, LoopFrac: 0.25, PatternFrac: 0.298, CorrFrac: 0.299,
		BiasedFrac: 0.363, TripMin: 2, TripMax: 16, PatternPeriodMax: 10,
		BiasMin: 0.910, IndirectFrac: 0.16, IndirectTargets: 8, CallFrac: 0.55,
		SyscallPer10K: 0.0045, PhasePeriod: 1600, CodeBase: 0x27000000,
	},
}

// KernelProfile models the syscall/interrupt handler footprint executed
// on each privilege switch: a modest set of biased kernel branches.
func KernelProfile() Profile {
	return Profile{
		Name: "kernel", Regions: 24, SitesMin: 2, SitesMax: 5, ZipfS: 1.1,
		GapMean: 6, LoopFrac: 0.25, PatternFrac: 0.10, CorrFrac: 0.10,
		BiasedFrac: 0.74, TripMin: 2, TripMax: 10, PatternPeriodMax: 6,
		BiasMin: 0.85, IndirectFrac: 0.10, IndirectTargets: 5, CallFrac: 0.4,
		SyscallPer10K: 0, PhasePeriod: 0, CodeBase: 0xffff00000000,
	}
}

// ByName returns the profile for a modelled benchmark.
func ByName(name string) (Profile, error) {
	p, ok := profiles[name]
	if !ok {
		return Profile{}, fmt.Errorf("workload: unknown benchmark %q", name)
	}
	return p, nil
}

// MustByName is ByName for static names; it panics on unknown names.
func MustByName(name string) Profile {
	p, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Names lists the modelled benchmarks.
func Names() []string {
	out := make([]string, 0, len(profiles))
	for n := range profiles {
		out = append(out, n)
	}
	return out
}

// Pair is a two-benchmark combination from Table 3.
type Pair struct {
	ID     string // "case1" .. "case12"
	First  string // target benchmark (single-thread runs measure this one)
	Second string
}

// SingleCorePairs is Table 3's single-threaded column: the target
// benchmark first, the context-switch background second.
func SingleCorePairs() []Pair {
	return []Pair{
		{"case1", "gcc", "calculix"},
		{"case2", "milc", "povray"},
		{"case3", "bzip2_source", "soplex"},
		{"case4", "namd", "sphinx3"},
		{"case5", "hmmer", "GemsFDTD"},
		{"case6", "gobmk", "libquantum"},
		{"case7", "gromacs", "GemsFDTD"},
		{"case8", "mcf", "astar"},
		{"case9", "soplex", "hmmer"},
		{"case10", "libquantum", "calculix"},
		{"case11", "mcf", "perlbench"},
		{"case12", "bwaves", "namd"},
	}
}

// SMTPairs is Table 3's SMT-2 column: the two benchmarks run concurrently
// on two hardware threads.
func SMTPairs() []Pair {
	return []Pair{
		{"case1", "zeusmp", "lbm"},
		{"case2", "zeusmp", "dealII"},
		{"case3", "bwaves", "milc"},
		{"case4", "leslie3d", "gromacs"},
		{"case5", "dealII", "sjeng"},
		{"case6", "gromacs", "astar"},
		{"case7", "gobmk", "h264ref"},
		{"case8", "libquantum", "milc"},
		{"case9", "gobmk", "gromacs"},
		{"case10", "milc", "bzip2_source"},
		{"case11", "libquantum", "omnetpp"},
		{"case12", "zeusmp", "gobmk"},
	}
}

// Quad is a four-benchmark combination for the SMT-4 experiment
// (Figure 2). The paper does not list SMT-4 sets; quads are formed by
// joining consecutive SMT-2 pairs, documented in EXPERIMENTS.md.
type Quad struct {
	ID    string
	Names [4]string
}

// SMTQuads returns the SMT-4 sets.
func SMTQuads() []Quad {
	pairs := SMTPairs()
	var quads []Quad
	for i := 0; i+1 < len(pairs); i += 2 {
		quads = append(quads, Quad{
			ID: fmt.Sprintf("quad%d", i/2+1),
			Names: [4]string{
				pairs[i].First, pairs[i].Second,
				pairs[i+1].First, pairs[i+1].Second,
			},
		})
	}
	return quads
}
