package report

import (
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	tab := &Table{
		Title:   "Demo",
		Header:  []string{"name", "value"},
		Caption: "a caption",
	}
	tab.AddRow("alpha", "1")
	tab.AddRow("longer-name", "22")
	out := tab.Render()
	for _, want := range []string{"Demo", "====", "name", "alpha", "longer-name", "a caption"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Columns align: the header's second column starts where the widest
	// cell dictates.
	lines := strings.Split(out, "\n")
	var header, row string
	for _, l := range lines {
		if strings.HasPrefix(l, "name") {
			header = l
		}
		if strings.HasPrefix(l, "longer-name") {
			row = l
		}
	}
	if strings.Index(header, "value") != strings.Index(row, "22") {
		t.Fatalf("columns misaligned:\n%q\n%q", header, row)
	}
}

func TestRenderNoTitle(t *testing.T) {
	tab := &Table{Header: []string{"x"}}
	tab.AddRow("1")
	out := tab.Render()
	if strings.Contains(out, "=") {
		t.Fatal("untitled table should not render a title underline")
	}
}

func TestRenderExtraCellsIgnored(t *testing.T) {
	tab := &Table{Header: []string{"only"}}
	tab.AddRow("a", "overflow")
	out := tab.Render()
	if !strings.Contains(out, "a") {
		t.Fatal("row lost")
	}
}
