package report

import (
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	tab := &Table{
		Title:   "Demo",
		Header:  []string{"name", "value"},
		Caption: "a caption",
	}
	tab.AddRow("alpha", "1")
	tab.AddRow("longer-name", "22")
	out := tab.Render()
	for _, want := range []string{"Demo", "====", "name", "alpha", "longer-name", "a caption"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Columns align: the header's second column starts where the widest
	// cell dictates.
	lines := strings.Split(out, "\n")
	var header, row string
	for _, l := range lines {
		if strings.HasPrefix(l, "name") {
			header = l
		}
		if strings.HasPrefix(l, "longer-name") {
			row = l
		}
	}
	if strings.Index(header, "value") != strings.Index(row, "22") {
		t.Fatalf("columns misaligned:\n%q\n%q", header, row)
	}
}

func TestRenderNoTitle(t *testing.T) {
	tab := &Table{Header: []string{"x"}}
	tab.AddRow("1")
	out := tab.Render()
	if strings.Contains(out, "=") {
		t.Fatal("untitled table should not render a title underline")
	}
}

// TestRenderExtraCellsRendered is the regression test for rows wider
// than the header: every cell must render (Render used to drop them,
// making the text and JSON forms of a table disagree), and the widths —
// including the separator — must account for cells in the extra
// columns.
func TestRenderExtraCellsRendered(t *testing.T) {
	tab := &Table{Header: []string{"only"}}
	tab.AddRow("a", "overflow")
	tab.AddRow("bb", "x")
	out := tab.Render()
	if !strings.Contains(out, "overflow") {
		t.Fatalf("cell beyond the header width was dropped:\n%s", out)
	}
	// The extra column aligns like any other: both rows place their
	// second cell at the same offset.
	lines := strings.Split(out, "\n")
	var rowA, rowB string
	for _, l := range lines {
		if strings.HasPrefix(l, "a ") {
			rowA = l
		}
		if strings.HasPrefix(l, "bb") {
			rowB = l
		}
	}
	if strings.Index(rowA, "overflow") != strings.Index(rowB, "x") {
		t.Fatalf("extra column misaligned:\n%q\n%q", rowA, rowB)
	}
	// The separator spans the extra column too.
	if !strings.Contains(out, strings.Repeat("-", len("overflow"))) {
		t.Fatalf("separator does not cover the extra column:\n%s", out)
	}
}
