// Package report renders the aligned text tables every experiment and
// attack harness prints.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Header  []string
	Rows    [][]string
	Caption string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render produces aligned text output.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title)))
	}
	// Width accounting covers every row, not just the header: a row wider
	// than the header still renders all its cells (and the separator
	// spans them), so the text output never silently disagrees with the
	// table's JSON form.
	cols := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n", t.Caption)
	}
	return b.String()
}
