// Package report renders the aligned text tables every experiment and
// attack harness prints.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Header  []string
	Rows    [][]string
	Caption string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render produces aligned text output.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title)))
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i >= len(widths) {
				break
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n", t.Caption)
	}
	return b.String()
}
