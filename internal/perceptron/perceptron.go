// Package perceptron implements the perceptron direction predictor
// (Jiménez & Lin, HPCA 2001): each branch hashes to a row of signed
// weights, the prediction is the sign of the dot product between the
// weights and the global history, and training nudges the weights when
// the prediction was wrong or the margin was below the threshold.
//
// It extends the reproduction's predictor set beyond the paper's four
// gem5 predictors (a ROADMAP item): a weight-table predictor stresses
// the isolation mechanisms differently from saturating-counter PHTs —
// content encoding garbles multi-bit signed weights rather than 2-bit
// counters, and a single branch's state spans a whole row.
//
// Every weight column is a secured WordArray, so Noisy-XOR-PHT applies
// exactly as it does to the other direction predictors: the row index
// passes through the domain's index scrambler and the stored weights
// through its content codec.
package perceptron

import (
	"xorbp/internal/bitutil"
	"xorbp/internal/core"
	"xorbp/internal/predictor"
	"xorbp/internal/snap"
	"xorbp/internal/store"
)

const pcShift = 2

// Config sizes a perceptron predictor.
type Config struct {
	// IndexBits is log2 of the row count.
	IndexBits uint
	// HistoryBits is the global history length; each row holds
	// HistoryBits+1 weights (one per history bit plus the bias).
	HistoryBits uint
	// WeightBits is the signed weight width (stored offset-binary).
	WeightBits uint
}

// DefaultConfig is an 8.3 KB table: 512 rows x 13 8-bit weights,
// comparable to the paper's gem5 predictor budgets (2-6.3 KB tables,
// Table: Figure 10).
func DefaultConfig() Config {
	return Config{IndexBits: 9, HistoryBits: 12, WeightBits: 8}
}

// Perceptron is the predictor. weights[0] is the bias column;
// weights[1..HistoryBits] pair with the history bits, newest first.
type Perceptron struct {
	cfg   Config
	guard *core.Guard

	weights []*store.WordArray
	theta   int // training threshold: floor(1.93*h + 14)

	ghr     [core.MaxHWThreads]uint64
	scratch [core.MaxHWThreads]scratch
}

// scratch carries predict-time state to the update.
type scratch struct {
	row  uint64 // physical (post-scramble) row index
	hist uint64 // history snapshot the prediction used
	sum  int    // margin, for threshold training
}

// New builds a perceptron predictor registered for flush events.
func New(cfg Config, ctrl *core.Controller) *Perceptron {
	p := &Perceptron{
		cfg:   cfg,
		guard: ctrl.Guard(0x9e4c, core.StructPHT),
		theta: int(1.93*float64(cfg.HistoryBits)) + 14,
	}
	// Offset-binary zero: a flushed table predicts weakly not-taken with
	// no history bias, like the other predictors' weak reset states.
	zero := uint64(1) << (cfg.WeightBits - 1)
	p.weights = make([]*store.WordArray, cfg.HistoryBits+1)
	for i := range p.weights {
		p.weights[i] = store.NewWordArray(p.guard, cfg.IndexBits, cfg.WeightBits, zero)
	}
	ctrl.Register(p, core.StructPHT)
	return p
}

// Name implements predictor.DirPredictor.
func (p *Perceptron) Name() string { return "perceptron" }

// row computes the physical row index for (d, pc).
func (p *Perceptron) row(d core.Domain, pc uint64) uint64 {
	logical := (pc >> pcShift) & bitutil.Mask(p.cfg.IndexBits)
	return p.guard.ScrambleIndex(logical, d, p.cfg.IndexBits)
}

// decode maps a stored offset-binary weight to its signed value.
func (p *Perceptron) decode(stored uint64) int {
	return int(stored) - (1 << (p.cfg.WeightBits - 1))
}

// encode maps a signed weight back to storage, saturating at the width.
func (p *Perceptron) encode(w int) uint64 {
	bias := 1 << (p.cfg.WeightBits - 1)
	if w > bias-1 {
		w = bias - 1
	}
	if w < -bias {
		w = -bias
	}
	return uint64(w + bias)
}

// Predict implements predictor.DirPredictor.
//
//bpvet:hotpath
func (p *Perceptron) Predict(d core.Domain, pc uint64) bool {
	row := p.row(d, pc)
	hist := p.ghr[d.Thread]
	sum := p.decode(p.weights[0].Get(d, row))
	for i := uint(0); i < p.cfg.HistoryBits; i++ {
		w := p.decode(p.weights[i+1].Get(d, row))
		if hist>>i&1 == 1 {
			sum += w
		} else {
			sum -= w
		}
	}
	p.scratch[d.Thread] = scratch{row: row, hist: hist, sum: sum}
	return sum >= 0
}

// Update implements predictor.DirPredictor: threshold training against
// the predict-time scratch state, then history shift.
//
//bpvet:hotpath
func (p *Perceptron) Update(d core.Domain, pc uint64, taken bool) {
	s := p.scratch[d.Thread]
	predicted := s.sum >= 0
	margin := s.sum
	if margin < 0 {
		margin = -margin
	}
	if predicted != taken || margin <= p.theta {
		p.weights[0].Update(d, s.row, func(v uint64) uint64 {
			return p.encode(p.decode(v) + step(taken))
		})
		for i := uint(0); i < p.cfg.HistoryBits; i++ {
			h := s.hist>>i&1 == 1
			p.weights[i+1].Update(d, s.row, func(v uint64) uint64 {
				return p.encode(p.decode(v) + step(h == taken))
			})
		}
	}
	p.ghr[d.Thread] = p.ghr[d.Thread]<<1 | b2u(taken)
}

// step is the per-weight training delta: +1 when the history bit (or
// the branch itself, for the bias weight) agreed with the outcome.
func step(agree bool) int {
	if agree {
		return 1
	}
	return -1
}

// FlushAll implements core.Flusher.
//
//bpvet:hotpath
func (p *Perceptron) FlushAll() {
	for _, w := range p.weights {
		w.FlushAll()
	}
}

// FlushThread implements core.Flusher; like the PHTs, weight rows carry
// no owner bits, so this degrades to whatever the arrays track.
//
//bpvet:hotpath
func (p *Perceptron) FlushThread(t core.HWThread) {
	for _, w := range p.weights {
		w.FlushThread(t)
	}
}

// Snapshot writes every weight column and the per-thread histories
// (scratch is predict-to-update carry state, dead at cycle boundaries).
func (p *Perceptron) Snapshot(w *snap.Writer) {
	for _, col := range p.weights {
		col.Snapshot(w)
	}
	for i := range p.ghr {
		w.U64(p.ghr[i])
	}
}

// Restore replaces the weight columns and histories.
func (p *Perceptron) Restore(r *snap.Reader) {
	for _, col := range p.weights {
		col.Restore(r)
	}
	for i := range p.ghr {
		p.ghr[i] = r.U64()
	}
}

// StorageBits implements predictor.DirPredictor.
func (p *Perceptron) StorageBits() uint64 {
	var total uint64
	for _, w := range p.weights {
		total += w.StorageBits()
	}
	return total
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

var _ predictor.DirPredictor = (*Perceptron)(nil)
var _ core.Flusher = (*Perceptron)(nil)

// PredictUpdate implements predictor.PredictUpdater: the fused
// predict-then-train call the simulator dispatches once per conditional
// branch (identical to Predict followed by Update).
//
//bpvet:hotpath
func (p *Perceptron) PredictUpdate(d core.Domain, pc uint64, taken bool) bool {
	pred := p.Predict(d, pc)
	p.Update(d, pc, taken)
	return pred
}

var _ predictor.PredictUpdater = (*Perceptron)(nil)
