package perceptron

import (
	"testing"

	"xorbp/internal/core"
)

func newP(m core.Mechanism) (*Perceptron, *core.Controller) {
	ctrl := core.NewController(core.OptionsFor(m), 1)
	return New(DefaultConfig(), ctrl), ctrl
}

// TestLearnsHistoryCorrelatedBranch: the perceptron's defining ability —
// a branch whose outcome is a parity-like function of recent history,
// which no saturating counter can track.
func TestLearnsHistoryCorrelatedBranch(t *testing.T) {
	p, _ := newP(core.Baseline)
	d := core.Domain{Thread: 0, Priv: core.User}
	const pc = 0x40_1000

	// Outcome pattern: alternating pairs (T,T,N,N,...) — fully determined
	// by the previous two outcomes.
	outcome := func(i int) bool { return i%4 < 2 }
	correct := 0
	const rounds = 2000
	for i := 0; i < rounds; i++ {
		pred := p.Predict(d, pc)
		want := outcome(i)
		if pred == want {
			correct++
		}
		p.Update(d, pc, want)
	}
	// Score only the second half (after training).
	correct = 0
	for i := rounds; i < rounds*2; i++ {
		if p.Predict(d, pc) == outcome(i) {
			correct++
		}
		p.Update(d, pc, outcome(i))
	}
	if acc := float64(correct) / rounds; acc < 0.95 {
		t.Fatalf("trained accuracy %.3f on a history-determined branch, want > 0.95", acc)
	}
}

// TestBiasOnlyBranch: a heavily biased branch is learned through the
// bias weight alone.
func TestBiasOnlyBranch(t *testing.T) {
	p, _ := newP(core.Baseline)
	d := core.Domain{Thread: 0, Priv: core.User}
	const pc = 0x40_2000
	for i := 0; i < 64; i++ {
		p.Predict(d, pc)
		p.Update(d, pc, true)
	}
	if !p.Predict(d, pc) {
		t.Fatal("always-taken branch predicted not-taken after training")
	}
}

// TestKeyRotationIsolatesTrainedState: under Noisy-XOR-PHT a context
// switch rotates the domain keys, so the trained weights decode as
// garbage — the isolation property the security sweep measures.
func TestKeyRotationIsolatesTrainedState(t *testing.T) {
	p, ctrl := newP(core.NoisyXOR)
	d := core.Domain{Thread: 0, Priv: core.User}
	const pc = 0x40_3000
	for i := 0; i < 256; i++ {
		p.Predict(d, pc)
		p.Update(d, pc, true)
	}
	if !p.Predict(d, pc) {
		t.Fatal("trained branch not predicted taken before rotation")
	}
	// Rotate: the same domain now holds fresh keys; both the row index
	// and the weight decoding change, so the strong bias must not
	// survive. Check across many branches: some garbled rows can still
	// decode positive by chance, but most training must be lost.
	ctrl.ContextSwitch(0)
	survived := 0
	const branches = 128
	for b := 0; b < branches; b++ {
		pc2 := uint64(0x50_0000 + b*4)
		for i := 0; i < 64; i++ {
			p.Predict(d, pc2)
			p.Update(d, pc2, true)
		}
	}
	ctrl.ContextSwitch(0)
	for b := 0; b < branches; b++ {
		if p.Predict(d, uint64(0x50_0000+b*4)) {
			survived++
		}
	}
	if survived > branches*3/4 {
		t.Fatalf("%d/%d trained branches survived a key rotation — no isolation", survived, branches)
	}
}

// TestFlushResetsWeights: flush mechanisms restore the weak reset state.
func TestFlushResetsWeights(t *testing.T) {
	p, _ := newP(core.CompleteFlush)
	d := core.Domain{Thread: 0, Priv: core.User}
	const pc = 0x40_4000
	for i := 0; i < 128; i++ {
		p.Predict(d, pc)
		p.Update(d, pc, true)
	}
	p.FlushAll()
	s := p.scratch[0]
	p.Predict(d, pc)
	if p.scratch[0].sum != 0 {
		t.Fatalf("post-flush margin = %d, want 0 (reset weights)", p.scratch[0].sum)
	}
	_ = s
}

// TestStorageBits: 512 rows x 13 weights x 8 bits.
func TestStorageBits(t *testing.T) {
	p, _ := newP(core.Baseline)
	want := uint64(512 * 13 * 8)
	if got := p.StorageBits(); got != want {
		t.Fatalf("storage = %d bits, want %d", got, want)
	}
	if p.Name() != "perceptron" {
		t.Fatalf("name = %q", p.Name())
	}
}

// TestWeightSaturation: encode clamps at the signed width.
func TestWeightSaturation(t *testing.T) {
	p, _ := newP(core.Baseline)
	if got := p.decode(p.encode(1000)); got != 127 {
		t.Fatalf("positive saturation = %d, want 127", got)
	}
	if got := p.decode(p.encode(-1000)); got != -128 {
		t.Fatalf("negative saturation = %d, want -128", got)
	}
	if got := p.decode(p.encode(0)); got != 0 {
		t.Fatalf("zero round-trip = %d", got)
	}
}

// TestDeterminism: identical histories produce identical predictions.
func TestDeterminism(t *testing.T) {
	run := func() []bool {
		p, _ := newP(core.NoisyXOR)
		d := core.Domain{Thread: 0, Priv: core.User}
		var out []bool
		for i := 0; i < 200; i++ {
			pc := uint64(0x40_0000 + (i%17)*4)
			out = append(out, p.Predict(d, pc))
			p.Update(d, pc, i%3 == 0)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("prediction %d diverged", i)
		}
	}
}
