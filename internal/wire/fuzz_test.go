package wire

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// The decode fuzzers guard the trust boundary of the wire schema: every
// byte string a bpserve worker or cache loader can receive must either
// decode cleanly or return an error — never panic — and anything that
// decodes must survive a canonical re-encode/re-decode round trip
// unchanged. The committed corpora under testdata/fuzz/ seed the
// interesting shapes; `go test -fuzz=FuzzDecodeSpec` explores from
// there.

// seedGoldens adds every golden encoding as a fuzz seed, so the corpus
// always contains the current canonical forms.
func seedGoldens(f *testing.F, names ...string) {
	f.Helper()
	for _, name := range names {
		b, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			f.Fatalf("reading golden seed: %v", err)
		}
		f.Add(b)
	}
}

func FuzzDecodeSpec(f *testing.F) {
	seedGoldens(f, "spec.golden.json", "attack_spec.golden.json")
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"kind":"attack"}`))
	f.Add([]byte(`{"threads":["gcc","gcc"],"timer":1}`))
	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := DecodeSpec(b)
		if err != nil {
			return // rejected input; the absence of a panic is the pass
		}
		enc := s.Encode()
		s2, err := DecodeSpec(enc)
		if err != nil {
			t.Fatalf("canonical re-encoding does not decode: %v\n%s", err, enc)
		}
		if !bytes.Equal(enc, s2.Encode()) {
			t.Fatalf("decode/encode round trip is not a fixed point:\n%s\n%s", enc, s2.Encode())
		}
		// The cache key is a pure function of the canonical form; two
		// derivations must agree.
		if s.Key() != s2.Key() {
			t.Fatal("equal canonical encodings derive different cache keys")
		}
	})
}

func FuzzDecodeResult(f *testing.F) {
	seedGoldens(f, "result.golden.json", "attack_result.golden.json")
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"target_mpki":1.5,"elapsed_cycles":9}`))
	f.Fuzz(func(t *testing.T, b []byte) {
		r, err := DecodeResult(b)
		if err != nil {
			return
		}
		enc := r.Encode()
		r2, err := DecodeResult(enc)
		if err != nil {
			t.Fatalf("canonical re-encoding does not decode: %v\n%s", err, enc)
		}
		if !bytes.Equal(enc, r2.Encode()) {
			t.Fatalf("decode/encode round trip is not a fixed point:\n%s\n%s", enc, r2.Encode())
		}
	})
}
