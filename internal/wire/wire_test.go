package wire

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"xorbp/internal/core"
	"xorbp/internal/cpu"
)

// -update-golden regenerates testdata/ from the current encoding. Run
// it deliberately: committing new goldens IS a schema change.
var updateGolden = flag.Bool("update-golden", false, "rewrite golden wire encodings")

// goldenSpec exercises every Spec field with distinctive values.
func goldenSpec() Spec {
	return Spec{
		Opts: core.Options{
			Mechanism:         core.NoisyXOR,
			Scope:             core.StructAll,
			EnhancedPHT:       true,
			RotateOnPrivilege: true,
			FlushOnPrivilege:  true,
		},
		Codec:     "xor",
		Scrambler: "xor",
		Pred:      "tage",
		Cfg:       cpu.FPGAConfig(),
		Timer:     1_000_000,
		Threads:   []string{"gcc", "calculix"},
		Scale: Scale{
			WarmupInstr:     4_000_000,
			MeasureInstr:    16_000_000,
			SMTWarmupInstr:  8_000_000,
			SMTMeasureInstr: 48_000_000,
			TimerPeriods:    [3]uint64{1_000_000, 2_000_000, 3_000_000},
			TimerLabels:     [3]string{"4M", "8M", "12M"},
			Seed:            1,
		},
	}
}

// goldenResult exercises every Result field, including a populated
// Others slice.
func goldenResult() Result {
	return Result{
		Cycles: 123_456_789,
		Target: cpu.ThreadStats{
			Instructions: 16_000_000, Branches: 3_000_000, CondBranches: 2_500_000,
			DirMisp: 40_000, EffMisp: 42_000, TargMisp: 2_000, DecodeRedir: 9_000,
			Syscalls: 123,
		},
		Others: []cpu.ThreadStats{
			{Instructions: 15_000_000, Branches: 2_800_000, CondBranches: 2_300_000,
				DirMisp: 39_000, EffMisp: 41_000, TargMisp: 1_900, DecodeRedir: 8_500,
				Syscalls: 110},
		},
		PrivSwitches: 456,
		CtxSwitches:  78,
		BTBHitRate:   0.9375,
	}
}

// checkGolden compares got with the named golden file, rewriting it
// under -update-golden. The goldens lock the canonical byte encoding:
// if this test fails, the wire schema drifted, which invalidates every
// shared cache and mixed-version worker fleet — make sure that is what
// you intend, regenerate, and call the change out in review.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(got, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update-golden once): %v", err)
	}
	want = bytes.TrimSuffix(want, []byte("\n"))
	if !bytes.Equal(got, want) {
		t.Fatalf("canonical encoding drifted from %s:\n got: %s\nwant: %s", path, got, want)
	}
}

func TestSpecGoldenRoundTrip(t *testing.T) {
	s := goldenSpec()
	enc := s.Encode()
	checkGolden(t, "spec.golden.json", enc)

	dec, err := DecodeSpec(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec, s) {
		t.Fatalf("spec round-trip mismatch:\n got: %+v\nwant: %+v", dec, s)
	}
	if !bytes.Equal(dec.Encode(), enc) {
		t.Fatal("re-encoding a decoded spec changed the bytes")
	}
}

func TestResultGoldenRoundTrip(t *testing.T) {
	r := goldenResult()
	enc := r.Encode()
	checkGolden(t, "result.golden.json", enc)

	dec, err := DecodeResult(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec, r) {
		t.Fatalf("result round-trip mismatch:\n got: %+v\nwant: %+v", dec, r)
	}
}

// TestEncodeDeterministic: equal specs encode to identical bytes — the
// property the cache keys and the cross-process write-through both
// stand on.
func TestEncodeDeterministic(t *testing.T) {
	a, b := goldenSpec(), goldenSpec()
	if !bytes.Equal(a.Encode(), b.Encode()) {
		t.Fatal("equal specs encoded differently")
	}
	if a.Key() != b.Key() {
		t.Fatal("equal specs keyed differently")
	}
}

// TestEncodeIgnoresInterfaceValues: a populated Codec/Scrambler value
// must not leak into the canonical bytes — identity travels by name.
func TestEncodeIgnoresInterfaceValues(t *testing.T) {
	a := goldenSpec()
	b := goldenSpec()
	b.Opts.Codec = core.RotXORCodec{}
	b.Opts.Scrambler = core.FeistelScrambler{}
	if !bytes.Equal(a.Encode(), b.Encode()) {
		t.Fatal("interface values leaked into the canonical encoding")
	}
}

// TestKeySensitivity: changing any load-bearing field changes the key.
func TestKeySensitivity(t *testing.T) {
	base := goldenSpec().Key()
	mutations := map[string]func(*Spec){
		"mechanism": func(s *Spec) { s.Opts.Mechanism = core.XOR },
		"codec":     func(s *Spec) { s.Codec = "rotxor" },
		"scrambler": func(s *Spec) { s.Scrambler = "feistel" },
		"pred":      func(s *Spec) { s.Pred = "gshare" },
		"timer":     func(s *Spec) { s.Timer++ },
		"threads":   func(s *Spec) { s.Threads = []string{"mcf"} },
		"seed":      func(s *Spec) { s.Scale.Seed++ },
		"cfg":       func(s *Spec) { s.Cfg.FetchWidth++ },
	}
	for name, mutate := range mutations {
		s := goldenSpec()
		mutate(&s)
		if s.Key() == base {
			t.Errorf("mutation %q did not change the key", name)
		}
	}
}

// TestDecodeRejectsUnknownFields: a spec from a different schema
// generation fails loudly instead of being silently reinterpreted.
func TestDecodeRejectsUnknownFields(t *testing.T) {
	if _, err := DecodeSpec([]byte(`{"opts":{},"surprise":1}`)); err == nil {
		t.Fatal("unknown spec field accepted")
	}
	if _, err := DecodeResult([]byte(`{"cycles":1,"surprise":1}`)); err == nil {
		t.Fatal("unknown result field accepted")
	}
}

// TestSchemaVersionTracksTypes: the version string embeds the wire type
// structure, so it mentions the load-bearing types and is stable across
// calls.
func TestSchemaVersionTracksTypes(t *testing.T) {
	v := SchemaVersion()
	if v != SchemaVersion() {
		t.Fatal("SchemaVersion is not deterministic")
	}
	for _, want := range []string{"wire.Spec", "wire.Result", "core.Options",
		"cpu.Config", "wire.Scale", "cpu.ThreadStats", "Mechanism"} {
		if !strings.Contains(v, want) {
			t.Errorf("schema version missing %q:\n%s", want, v)
		}
	}
}

// goldenAttackSpec exercises every field of the attack job kind.
func goldenAttackSpec() Spec {
	return Spec{
		Kind: KindAttack,
		Opts: core.Options{
			Mechanism:         core.XOR,
			Scope:             core.StructPHT,
			EnhancedPHT:       true,
			RotateOnPrivilege: true,
			FlushOnPrivilege:  true,
		},
		Codec:     "xor",
		Scrambler: "xor",
		Pred:      "perceptron",
		Attack: &AttackSpec{
			Name:        "pht_training",
			Scenario:    "SMT",
			RekeyPeriod: 16,
			Trials:      10_000,
			Attempts:    100,
			Seed:        7,
		},
	}
}

// goldenAttackResult exercises the attack-kind result payload.
func goldenAttackResult() Result {
	return Result{Attack: &AttackResult{Successes: 9_654, Trials: 10_000}}
}

func TestAttackSpecGoldenRoundTrip(t *testing.T) {
	s := goldenAttackSpec()
	enc := s.Encode()
	checkGolden(t, "attack_spec.golden.json", enc)

	dec, err := DecodeSpec(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec, s) {
		t.Fatalf("attack spec round-trip mismatch:\n got: %+v\nwant: %+v", dec, s)
	}
	if !bytes.Equal(dec.Encode(), enc) {
		t.Fatal("re-encoding a decoded attack spec changed the bytes")
	}
}

func TestAttackResultGoldenRoundTrip(t *testing.T) {
	r := goldenAttackResult()
	enc := r.Encode()
	checkGolden(t, "attack_result.golden.json", enc)

	dec, err := DecodeResult(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec, r) {
		t.Fatalf("attack result round-trip mismatch:\n got: %+v\nwant: %+v", dec, r)
	}
	if got, want := dec.Attack.Rate(), 0.9654; got != want {
		t.Fatalf("decoded attack rate = %v, want %v", got, want)
	}
}

// TestPerfSpecOmitsAttackFields: the attack-kind fields must not leak
// into the canonical bytes of performance runs — their keys (and any
// warm cache built from them) would otherwise change for nothing.
func TestPerfSpecOmitsAttackFields(t *testing.T) {
	enc := string(goldenSpec().Encode())
	for _, banned := range []string{`"kind"`, `"attack"`} {
		if strings.Contains(enc, banned) {
			t.Errorf("performance spec encoding contains %s: %s", banned, enc)
		}
	}
}

// TestAttackKeySensitivity: every attack-payload field is load-bearing
// for the cache key.
func TestAttackKeySensitivity(t *testing.T) {
	base := goldenAttackSpec().Key()
	if base == goldenSpec().Key() {
		t.Fatal("attack and performance specs share a key")
	}
	mutations := map[string]func(*Spec){
		"name":     func(s *Spec) { s.Attack.Name = "btb_training" },
		"scenario": func(s *Spec) { s.Attack.Scenario = "single" },
		"rekey":    func(s *Spec) { s.Attack.RekeyPeriod++ },
		"trials":   func(s *Spec) { s.Attack.Trials++ },
		"attempts": func(s *Spec) { s.Attack.Attempts++ },
		"seed":     func(s *Spec) { s.Attack.Seed++ },
		"pred":     func(s *Spec) { s.Pred = "" },
		"mech":     func(s *Spec) { s.Opts.Mechanism = core.NoisyXOR },
	}
	for name, mutate := range mutations {
		s := goldenAttackSpec()
		mutate(&s)
		if s.Key() == base {
			t.Errorf("attack mutation %q did not change the key", name)
		}
	}
}

// TestSchemaEpoch3: the union schema is a new epoch — epoch-2 caches
// are superseded, not aliased.
func TestSchemaEpoch3(t *testing.T) {
	if !strings.Contains(SchemaVersion(), "/epoch3/") {
		t.Fatalf("schema version %q is not epoch 3", SchemaVersion())
	}
	for _, want := range []string{"wire.AttackSpec", "wire.AttackResult"} {
		if !strings.Contains(SchemaVersion(), want) {
			t.Errorf("schema version missing %q", want)
		}
	}
}
