package wire

import (
	"bytes"
	"context"
	"crypto/tls"
	"crypto/x509"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Client dispatches specs to a set of bpserve workers over the wire
// protocol. It satisfies the experiment engine's Backend interface
// (Run(ctx, Spec) (Result, error)), so a set of remote daemons is a
// drop-in replacement for the in-process pool.
//
// Dispatch order is round-robin by default, or whatever a routing hook
// (SetPicker — the seam internal/fleet's scorers plug into) returns;
// either way a request that fails on one worker (network error, 5xx)
// fails over to the others, with a bounded deterministic backoff
// between full rotations, before the run is reported failed. Results
// are pure functions of the spec, so which worker computes a run never
// affects the rendered tables.
type Client struct {
	addrs  []string
	scheme string // "http", or "https" after SetTLS
	hc     *http.Client
	token  string // shared bearer token ("" = none)
	// caps holds per-worker capacities learned by Probe; zero before.
	caps []int
	next atomic.Uint64
	// pick, when set, orders the workers to try for one spec (best
	// first); nil is round-robin.
	pick func(spec Spec, n int) []int
	// sleep pauses between failover rotations; injectable so retry
	// tests run on a fake clock instead of the wall.
	sleep func(ctx context.Context, d time.Duration) error
	// replays counts runs the fleet answered from its own stores
	// (RunResponse.Cached) — work dispatched but not simulated.
	replays atomic.Uint64
	// brk holds one circuit breaker per address (index-aligned with
	// addrs): a worker that keeps failing is skipped for a cooldown
	// instead of burning every Run's retry rotations. See breaker.go.
	bmu sync.Mutex
	brk []breaker
}

// retryPasses is how many full rotations over the worker set Run
// attempts before giving up. Between rotations Run waits out the
// corresponding retryBackoff step, so a transient blip — a worker
// restart, a dropped connection — is retried for several seconds
// before it poisons a multi-hour sweep.
const retryPasses = 4

// retryBackoff is the deterministic wait schedule between failover
// rotations: after rotation k fails, Run sleeps retryBackoff[k-1].
// The schedule is fixed (no jitter) so retry behavior is reproducible
// and testable against an injected sleeper.
var retryBackoff = [retryPasses - 1]time.Duration{
	250 * time.Millisecond,
	1 * time.Second,
	4 * time.Second,
}

// NewClient creates a client over host:port worker addresses (as given
// to bpsim -serve-addrs). Blank entries are dropped; whitespace is
// trimmed.
func NewClient(addrs []string) *Client {
	var clean []string
	for _, a := range addrs {
		if a = strings.TrimSpace(a); a != "" {
			clean = append(clean, a)
		}
	}
	return &Client{
		addrs:  clean,
		scheme: "http",
		// No overall timeout: a full-scale simulation can legitimately
		// take minutes. Cancellation flows through the request context.
		hc:    &http.Client{},
		caps:  make([]int, len(clean)),
		brk:   make([]breaker, len(clean)),
		sleep: sleepWall,
	}
}

// sleepWall is the default sleeper: a timer racing the context.
func sleepWall(ctx context.Context, d time.Duration) error {
	select {
	case <-time.After(d):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Addrs returns the worker addresses the client dispatches to.
func (c *Client) Addrs() []string { return append([]string(nil), c.addrs...) }

// Capacities returns the per-worker capacities learned by Probe (zero
// before), index-aligned with Addrs.
func (c *Client) Capacities() []int { return append([]int(nil), c.caps...) }

// SetToken attaches a shared bearer token to every request (the
// counterpart of bpserve -token). Set before Probe; an empty token
// sends no Authorization header.
func (c *Client) SetToken(token string) { c.token = token }

// SetPicker installs a routing hook: for each dispatched spec it
// returns the worker indices to try, best first (failover walks the
// returned order). nil restores round-robin. Routing only chooses
// where a spec executes — results are pure functions of the spec, so
// every picker yields byte-identical tables.
func (c *Client) SetPicker(pick func(spec Spec, n int) []int) { c.pick = pick }

// SetSleep replaces the inter-rotation backoff sleeper (tests inject a
// fake clock; the default waits out the wall).
func (c *Client) SetSleep(sleep func(ctx context.Context, d time.Duration) error) {
	if sleep != nil {
		c.sleep = sleep
	}
}

// SetTransport replaces the client's HTTP transport — the seam the
// chaos layer's fault-injecting RoundTripper plugs into (and tests
// inject stubs through). Call before SetTLS or not at all with TLS:
// SetTLS installs its own transport.
func (c *Client) SetTransport(rt http.RoundTripper) { c.hc.Transport = rt }

// SetTLS switches the client to HTTPS with the fleet's certificate
// authority pinned: only workers presenting a chain to ca are trusted,
// so a spoofed or man-in-the-middled worker fails the handshake
// instead of feeding the sweep forged results. Combine with SetToken —
// TLS authenticates the transport, the token authenticates the peer.
func (c *Client) SetTLS(ca *x509.CertPool) {
	c.scheme = "https"
	c.hc.Transport = &http.Transport{TLSClientConfig: &tls.Config{RootCAs: ca}}
}

// LoadCertPool reads a PEM bundle (the -tls-ca flag) into a pinned
// certificate pool for SetTLS.
func LoadCertPool(path string) (*x509.CertPool, error) {
	pem, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("wire: reading CA bundle: %w", err)
	}
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(pem) {
		return nil, fmt.Errorf("wire: %s contains no usable CA certificates", path)
	}
	return pool, nil
}

// authorize stamps the bearer header onto a request.
func (c *Client) authorize(req *http.Request) {
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
}

// Probe checks every worker's /healthz: reachability, schema agreement
// and capacity. It must succeed before the client is used as a backend —
// a sweep should fail fast on a misconfigured fleet, not at its first
// dispatched run.
func (c *Client) Probe(ctx context.Context) error {
	if len(c.addrs) == 0 {
		return fmt.Errorf("wire: no worker addresses")
	}
	for i, addr := range c.addrs {
		h, err := c.health(ctx, addr)
		if err != nil {
			return fmt.Errorf("wire: worker %s: %w", addr, err)
		}
		if h.Schema != SchemaVersion() {
			return fmt.Errorf("wire: worker %s runs schema %q, this client %q — rebuild one side",
				addr, h.Schema, SchemaVersion())
		}
		if h.Status != "ok" {
			return fmt.Errorf("wire: worker %s is %s", addr, h.Status)
		}
		if h.Capacity < 1 {
			h.Capacity = 1
		}
		c.caps[i] = h.Capacity
	}
	return nil
}

// health fetches one worker's /healthz.
func (c *Client) health(ctx context.Context, addr string) (Health, error) {
	ctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.scheme+"://"+addr+"/healthz", nil)
	if err != nil {
		return Health{}, err
	}
	c.authorize(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return Health{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Health{}, fmt.Errorf("healthz: %s", resp.Status)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return Health{}, fmt.Errorf("healthz: %w", err)
	}
	return h, nil
}

// Statz fetches one worker's live load counters (GET /statz) — the
// inputs of a least-loaded routing scorer. i indexes Addrs.
func (c *Client) Statz(ctx context.Context, i int) (Statz, error) {
	if i < 0 || i >= len(c.addrs) {
		return Statz{}, fmt.Errorf("wire: statz index %d out of range", i)
	}
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.scheme+"://"+c.addrs[i]+"/statz", nil)
	if err != nil {
		return Statz{}, err
	}
	c.authorize(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return Statz{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Statz{}, fmt.Errorf("statz: %s", resp.Status)
	}
	var st Statz
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return Statz{}, fmt.Errorf("statz: %w", err)
	}
	return st, nil
}

// Workers returns the fleet's total capacity — the fan-out width an
// executor should use over this backend. Before a successful Probe it
// falls back to one slot per worker.
func (c *Client) Workers() int {
	total := 0
	for _, n := range c.caps {
		total += n
	}
	if total <= 0 {
		total = len(c.addrs)
	}
	return total
}

// Replays returns how many dispatched runs the fleet answered from its
// own shared stores instead of simulating. The driver's executor counts
// every dispatch as a run (it cannot see inside the backend); subtract
// or report this to account for worker-side cache hits.
func (c *Client) Replays() uint64 { return c.replays.Load() }

// order returns the worker indices to try for one spec, best first.
// With a picker installed its order is used (padded with any indices
// it omitted, so failover always reaches the whole fleet); otherwise
// round-robin rotation.
func (c *Client) order(spec Spec) []int {
	n := len(c.addrs)
	out := make([]int, 0, n)
	seen := make([]bool, n)
	if c.pick != nil {
		for _, i := range c.pick(spec, n) {
			if i >= 0 && i < n && !seen[i] {
				seen[i] = true
				out = append(out, i)
			}
		}
	} else {
		start := int(c.next.Add(1) % uint64(n))
		for k := 0; k < n; k++ {
			i := (start + k) % n
			seen[i] = true
			out = append(out, i)
		}
	}
	for i := 0; i < n; i++ {
		if !seen[i] {
			out = append(out, i)
		}
	}
	return out
}

// Run resolves one spec on the worker fleet. Transient failures fail
// over along the routing order (trailed by at most one hedged
// half-open probe — see breaker.go), then retry whole rotations behind
// the deterministic retryBackoff schedule; protocol failures (schema
// mismatch, invalid spec) abort immediately — retrying cannot fix
// them. When every circuit is open the spec is undispatchable right
// now: Run returns a wrapped ErrFleetDown without burning rotations,
// and the driver may degrade to the in-process backend.
func (c *Client) Run(ctx context.Context, spec Spec) (Result, error) {
	if len(c.addrs) == 0 {
		return Result{}, fmt.Errorf("wire: no worker addresses")
	}
	order := c.order(spec)
	var lastErr error
	for pass := 0; pass < retryPasses; pass++ {
		if pass > 0 {
			// All admitted workers just failed; back off before the next
			// rotation so a momentarily-restarting fleet is not burned
			// through instantly.
			if err := c.sleep(ctx, retryBackoff[pass-1]); err != nil {
				return Result{}, err
			}
		}
		// Re-admit each rotation: circuits opened by this pass's
		// failures are skipped on the next, and lapsed cooldowns
		// re-enter as probes.
		try := c.admit(order)
		if len(try) == 0 {
			if lastErr != nil {
				return Result{}, fmt.Errorf("wire: %w; last failure: %w", ErrFleetDown, lastErr)
			}
			return Result{}, fmt.Errorf("wire: %w", ErrFleetDown)
		}
		for ti, w := range try {
			if err := ctx.Err(); err != nil {
				c.releaseProbes(try[ti:])
				return Result{}, err
			}
			addr := c.addrs[w]
			res, retry, err := c.runOn(ctx, addr, spec)
			if err == nil {
				c.markUp(w)
				c.releaseProbes(try[ti+1:])
				return res, nil
			}
			lastErr = fmt.Errorf("worker %s: %w", addr, err)
			if !retry {
				// Protocol disagreement, not worker health: leave the
				// breaker alone (beyond releasing probe claims).
				c.releaseProbes(try[ti:])
				return Result{}, fmt.Errorf("wire: %w", lastErr)
			}
			c.markDown(w)
		}
	}
	return Result{}, fmt.Errorf("wire: all %d workers failed over %d rotations; last: %w",
		len(c.addrs), retryPasses, lastErr)
}

// runOn POSTs one spec to one worker. retry reports whether the failure
// is worth trying elsewhere.
func (c *Client) runOn(ctx context.Context, addr string, spec Spec) (res Result, retry bool, err error) {
	body, err := json.Marshal(RunRequest{Schema: SchemaVersion(), Spec: spec})
	if err != nil {
		return Result{}, false, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.scheme+"://"+addr+"/run", bytes.NewReader(body))
	if err != nil {
		return Result{}, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	c.authorize(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return Result{}, true, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var rr RunResponse
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			return Result{}, true, fmt.Errorf("decoding response: %w", err)
		}
		if rr.Cached {
			c.replays.Add(1)
		}
		return rr.Result, false, nil
	case http.StatusConflict: // schema mismatch: no worker will fare better
		return Result{}, false, fmt.Errorf("schema mismatch: %s", readError(resp.Body))
	case http.StatusUnauthorized: // one shared token: retrying cannot fix it
		return Result{}, false, fmt.Errorf("unauthorized: %s", readError(resp.Body))
	case http.StatusBadRequest: // invalid spec: retrying cannot fix it
		return Result{}, false, fmt.Errorf("rejected spec: %s", readError(resp.Body))
	default: // 503 draining, 5xx, anything unexpected: try another worker
		return Result{}, true, fmt.Errorf("%s: %s", resp.Status, readError(resp.Body))
	}
}

// readError extracts a worker's JSON error body, falling back to the
// raw text for non-JSON replies.
func readError(r io.Reader) string {
	raw, err := io.ReadAll(io.LimitReader(r, 4<<10))
	if err != nil || len(raw) == 0 {
		return "(no body)"
	}
	var e Error
	if json.Unmarshal(raw, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(raw))
}
