package wire

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// Client dispatches specs to a set of bpserve workers over the wire
// protocol. It satisfies the experiment engine's Backend interface
// (Run(ctx, Spec) (Result, error)), so a set of remote daemons is a
// drop-in replacement for the in-process pool.
//
// Dispatch is round-robin with failover: a request that fails on one
// worker (network error, 5xx) is retried on the others before the run
// is reported failed. Results are pure functions of the spec, so which
// worker computes a run never affects the rendered tables.
type Client struct {
	addrs []string
	hc    *http.Client
	token string // shared bearer token ("" = none)
	// caps holds per-worker capacities learned by Probe; zero before.
	caps []int
	next atomic.Uint64
	// replays counts runs the fleet answered from its own stores
	// (RunResponse.Cached) — work dispatched but not simulated.
	replays atomic.Uint64
}

// retryPasses is how many full rotations over the worker set Run
// attempts before giving up.
const retryPasses = 2

// NewClient creates a client over host:port worker addresses (as given
// to bpsim -serve-addrs). Blank entries are dropped; whitespace is
// trimmed.
func NewClient(addrs []string) *Client {
	var clean []string
	for _, a := range addrs {
		if a = strings.TrimSpace(a); a != "" {
			clean = append(clean, a)
		}
	}
	return &Client{
		addrs: clean,
		// No overall timeout: a full-scale simulation can legitimately
		// take minutes. Cancellation flows through the request context.
		hc:   &http.Client{},
		caps: make([]int, len(clean)),
	}
}

// Addrs returns the worker addresses the client dispatches to.
func (c *Client) Addrs() []string { return append([]string(nil), c.addrs...) }

// SetToken attaches a shared bearer token to every request (the
// counterpart of bpserve -token). Set before Probe; an empty token
// sends no Authorization header.
func (c *Client) SetToken(token string) { c.token = token }

// authorize stamps the bearer header onto a request.
func (c *Client) authorize(req *http.Request) {
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
}

// Probe checks every worker's /healthz: reachability, schema agreement
// and capacity. It must succeed before the client is used as a backend —
// a sweep should fail fast on a misconfigured fleet, not at its first
// dispatched run.
func (c *Client) Probe(ctx context.Context) error {
	if len(c.addrs) == 0 {
		return fmt.Errorf("wire: no worker addresses")
	}
	for i, addr := range c.addrs {
		h, err := c.health(ctx, addr)
		if err != nil {
			return fmt.Errorf("wire: worker %s: %w", addr, err)
		}
		if h.Schema != SchemaVersion() {
			return fmt.Errorf("wire: worker %s runs schema %q, this client %q — rebuild one side",
				addr, h.Schema, SchemaVersion())
		}
		if h.Status != "ok" {
			return fmt.Errorf("wire: worker %s is %s", addr, h.Status)
		}
		if h.Capacity < 1 {
			h.Capacity = 1
		}
		c.caps[i] = h.Capacity
	}
	return nil
}

// health fetches one worker's /healthz.
func (c *Client) health(ctx context.Context, addr string) (Health, error) {
	ctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+"/healthz", nil)
	if err != nil {
		return Health{}, err
	}
	c.authorize(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return Health{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Health{}, fmt.Errorf("healthz: %s", resp.Status)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return Health{}, fmt.Errorf("healthz: %w", err)
	}
	return h, nil
}

// Workers returns the fleet's total capacity — the fan-out width an
// executor should use over this backend. Before a successful Probe it
// falls back to one slot per worker.
func (c *Client) Workers() int {
	total := 0
	for _, n := range c.caps {
		total += n
	}
	if total <= 0 {
		total = len(c.addrs)
	}
	return total
}

// Replays returns how many dispatched runs the fleet answered from its
// own shared stores instead of simulating. The driver's executor counts
// every dispatch as a run (it cannot see inside the backend); subtract
// or report this to account for worker-side cache hits.
func (c *Client) Replays() uint64 { return c.replays.Load() }

// Run resolves one spec on the worker fleet. Transient failures rotate
// to the next worker; protocol failures (schema mismatch, invalid spec)
// abort immediately — retrying cannot fix them.
func (c *Client) Run(ctx context.Context, spec Spec) (Result, error) {
	if len(c.addrs) == 0 {
		return Result{}, fmt.Errorf("wire: no worker addresses")
	}
	start := c.next.Add(1)
	var lastErr error
	for attempt := 0; attempt < len(c.addrs)*retryPasses; attempt++ {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		addr := c.addrs[(int(start)+attempt)%len(c.addrs)]
		res, retry, err := c.runOn(ctx, addr, spec)
		if err == nil {
			return res, nil
		}
		lastErr = fmt.Errorf("worker %s: %w", addr, err)
		if !retry {
			return Result{}, fmt.Errorf("wire: %w", lastErr)
		}
		// Brief pause between full rotations so a momentarily-restarting
		// fleet is not burned through instantly.
		if (attempt+1)%len(c.addrs) == 0 {
			select {
			case <-time.After(500 * time.Millisecond):
			case <-ctx.Done():
				return Result{}, ctx.Err()
			}
		}
	}
	return Result{}, fmt.Errorf("wire: all %d workers failed; last: %w", len(c.addrs), lastErr)
}

// runOn POSTs one spec to one worker. retry reports whether the failure
// is worth trying elsewhere.
func (c *Client) runOn(ctx context.Context, addr string, spec Spec) (res Result, retry bool, err error) {
	body, err := json.Marshal(RunRequest{Schema: SchemaVersion(), Spec: spec})
	if err != nil {
		return Result{}, false, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+addr+"/run", bytes.NewReader(body))
	if err != nil {
		return Result{}, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	c.authorize(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return Result{}, true, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var rr RunResponse
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			return Result{}, true, fmt.Errorf("decoding response: %w", err)
		}
		if rr.Cached {
			c.replays.Add(1)
		}
		return rr.Result, false, nil
	case http.StatusConflict: // schema mismatch: no worker will fare better
		return Result{}, false, fmt.Errorf("schema mismatch: %s", readError(resp.Body))
	case http.StatusUnauthorized: // one shared token: retrying cannot fix it
		return Result{}, false, fmt.Errorf("unauthorized: %s", readError(resp.Body))
	case http.StatusBadRequest: // invalid spec: retrying cannot fix it
		return Result{}, false, fmt.Errorf("rejected spec: %s", readError(resp.Body))
	default: // 503 draining, 5xx, anything unexpected: try another worker
		return Result{}, true, fmt.Errorf("%s: %s", resp.Status, readError(resp.Body))
	}
}

// readError extracts a worker's JSON error body, falling back to the
// raw text for non-JSON replies.
func readError(r io.Reader) string {
	raw, err := io.ReadAll(io.LimitReader(r, 4<<10))
	if err != nil || len(raw) == 0 {
		return "(no body)"
	}
	var e Error
	if json.Unmarshal(raw, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(raw))
}
