package wire_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)
import "xorbp/internal/wire"

// switchableWorker serves /run, failing with 503 while down.
type switchableWorker struct {
	down atomic.Bool
	hits atomic.Int64
}

func (s *switchableWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.hits.Add(1)
	if s.down.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(wire.Error{Error: "down"})
		return
	}
	_ = json.NewEncoder(w).Encode(wire.RunResponse{
		Schema: wire.SchemaVersion(),
		Result: wire.Result{Cycles: 9},
	})
}

func breakerClient(t *testing.T, workers ...*switchableWorker) *wire.Client {
	t.Helper()
	addrs := make([]string, len(workers))
	for i, sw := range workers {
		ts := httptest.NewServer(sw)
		t.Cleanup(ts.Close)
		addrs[i] = strings.TrimPrefix(ts.URL, "http://")
	}
	c := wire.NewClient(addrs)
	c.SetSleep(func(ctx context.Context, _ time.Duration) error { return ctx.Err() })
	return c
}

// TestBreakerOpensAfterConsecutiveFailures: a full Run's worth of
// consecutive retryable failures opens the circuit; once every circuit
// is open the next Run returns ErrFleetDown without touching the
// worker again.
func TestBreakerOpensAfterConsecutiveFailures(t *testing.T) {
	sw := &switchableWorker{}
	sw.down.Store(true)
	c := breakerClient(t, sw)

	_, err := c.Run(context.Background(), wire.Spec{Pred: "brk", Timer: 1})
	if err == nil {
		t.Fatal("run against a dead worker succeeded")
	}
	if got := sw.hits.Load(); got != 4 {
		t.Fatalf("worker saw %d requests, want the full 4 rotations before the circuit opened", got)
	}
	if c.OpenCircuits() != 1 {
		t.Fatalf("OpenCircuits = %d, want 1", c.OpenCircuits())
	}

	// While open, further Runs are refused without a dispatch.
	before := sw.hits.Load()
	if _, err := c.Run(context.Background(), wire.Spec{Pred: "brk", Timer: 2}); !errors.Is(err, wire.ErrFleetDown) {
		t.Fatalf("open-circuit Run returned %v, want ErrFleetDown", err)
	}
	if sw.hits.Load() != before {
		t.Fatal("an open circuit still dispatched to the worker")
	}
}

// TestBreakerHalfOpenProbeRecovers: once the admission-counted cooldown
// lapses the circuit half-opens, a single probe lands on the healed
// worker, and the circuit closes again.
func TestBreakerHalfOpenProbeRecovers(t *testing.T) {
	sw := &switchableWorker{}
	sw.down.Store(true)
	c := breakerClient(t, sw)

	if _, err := c.Run(context.Background(), wire.Spec{Pred: "brk", Timer: 1}); err == nil {
		t.Fatal("priming run against a dead worker succeeded")
	}
	sw.down.Store(false)
	probed := sw.hits.Load()

	// The cooldown ticks once per admission; keep running until the
	// half-open probe lands. 8 admissions at up to 4 per Run is at most
	// a handful of Runs — cap generously.
	for i := 0; i < 8; i++ {
		res, err := c.Run(context.Background(), wire.Spec{Pred: "brk", Timer: uint64(2 + i)})
		if err == nil {
			if res.Cycles != 9 {
				t.Fatalf("probe result = %+v", res)
			}
			if got := sw.hits.Load(); got != probed+1 {
				t.Fatalf("recovery took %d dispatches, want exactly 1 probe", got-probed)
			}
			if c.OpenCircuits() != 0 {
				t.Fatalf("OpenCircuits = %d after a successful probe, want 0", c.OpenCircuits())
			}
			return
		}
		if !errors.Is(err, wire.ErrFleetDown) {
			t.Fatalf("cooldown run %d returned %v", i, err)
		}
	}
	t.Fatal("circuit never half-opened within the cooldown budget")
}

// TestBreakerFailedProbeReopens: a probe that fails reopens the circuit
// immediately (no three-strikes grace) — the worker sees exactly one
// request per half-open window while it stays down.
func TestBreakerFailedProbeReopens(t *testing.T) {
	sw := &switchableWorker{}
	sw.down.Store(true)
	c := breakerClient(t, sw)

	if _, err := c.Run(context.Background(), wire.Spec{Pred: "brk", Timer: 1}); err == nil {
		t.Fatal("priming run against a dead worker succeeded")
	}
	opened := sw.hits.Load()

	// Drive enough admissions for at least one half-open probe; the
	// worker stays down, so every probe fails and the circuit reopens
	// with a doubled cooldown.
	for i := 0; i < 12; i++ {
		if _, err := c.Run(context.Background(), wire.Spec{Pred: "brk", Timer: uint64(10 + i)}); !errors.Is(err, wire.ErrFleetDown) {
			t.Fatalf("run %d returned %v, want ErrFleetDown", i, err)
		}
	}
	probes := sw.hits.Load() - opened
	if probes < 1 || probes > 2 {
		t.Fatalf("dead worker saw %d probes over 12 open-circuit runs, want 1-2 (geometric cooldown)", probes)
	}
	if c.OpenCircuits() != 1 {
		t.Fatalf("OpenCircuits = %d, want 1", c.OpenCircuits())
	}
}

// TestBreakerFailsOverAroundOpenCircuit: with one worker dead and one
// healthy, the sweep keeps running on the healthy worker and the dead
// one is skipped once its circuit opens.
func TestBreakerFailsOverAroundOpenCircuit(t *testing.T) {
	dead, alive := &switchableWorker{}, &switchableWorker{}
	dead.down.Store(true)
	c := breakerClient(t, dead, alive)
	// Deterministic routing: always try the dead worker first so the
	// breaker, not round-robin luck, is what protects the sweep.
	c.SetPicker(func(wire.Spec, int) []int { return []int{0, 1} })

	for i := 0; i < 12; i++ {
		res, err := c.Run(context.Background(), wire.Spec{Pred: "brk", Timer: uint64(i + 1)})
		if err != nil || res.Cycles != 9 {
			t.Fatalf("run %d: %+v, %v", i, res, err)
		}
	}
	if got := dead.hits.Load(); got >= 6 {
		t.Fatalf("dead worker saw %d dispatches over 12 runs; breaker never engaged", got)
	}
	if alive.hits.Load() != 12 {
		t.Fatalf("healthy worker served %d runs, want 12", alive.hits.Load())
	}
	if c.OpenCircuits() == 0 {
		t.Fatal("dead worker's circuit is not open")
	}
}
