// Package wire defines the versioned wire schema of the experiment
// engine: the canonical, exported JSON forms of a simulation spec and
// its result. It is the contract shared by every execution backend —
// the in-process pool, the bpserve work-server protocol, and the
// persistent run cache, whose keys are derived from the canonical spec
// encoding. One schema everywhere means a result computed by any
// process (local worker, remote daemon, earlier invocation) is
// interchangeable with every other.
//
// The encoding is deterministic by construction: fixed struct field
// order, no maps, interface-valued options carried by their registered
// names. Golden tests (testdata/) lock the byte-level form, so schema
// drift fails loudly instead of silently aliasing or orphaning cache
// entries.
package wire

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"

	"xorbp/internal/core"
	"xorbp/internal/cpu"
	"xorbp/internal/runcache"
)

// Scale sets simulation sizes. The paper runs billions of instructions
// on real SPEC; the harness scales budgets and timer periods together so
// the ratios that drive every result (warm-up cost per isolation event
// vs cycles between events) are preserved. See EXPERIMENTS.md.
type Scale struct {
	// WarmupInstr and MeasureInstr are per-run instruction budgets for
	// single-core runs.
	WarmupInstr  uint64 `json:"warmup_instr"`
	MeasureInstr uint64 `json:"measure_instr"`
	// SMTWarmupInstr and SMTMeasureInstr are the (larger) budgets for SMT
	// runs: isolation events arrive per Mcycle, and an SMT window must
	// contain enough of them for a stable flush-cost estimate.
	SMTWarmupInstr  uint64 `json:"smt_warmup_instr"`
	SMTMeasureInstr uint64 `json:"smt_measure_instr"`
	// TimerPeriods are the scaled flush/switch periods standing in for
	// the paper's 4M/8M/12M cycles (labels keep the paper's names).
	TimerPeriods [3]uint64 `json:"timer_periods"`
	// TimerLabels are the paper's names for the three periods.
	TimerLabels [3]string `json:"timer_labels"`
	// Seed diversifies the whole experiment deterministically.
	Seed uint64 `json:"seed"`
}

// KindAttack marks a Spec as an attack job. The zero Kind ("") is a
// performance run — the schema's original, and still most common, kind.
const KindAttack = "attack"

// Spec is the canonical wire form of one simulation: everything a
// worker needs to reproduce the run bit-for-bit. The Codec and
// Scrambler interfaces of core.Options are carried by their registered
// names (core.CodecByName / core.ScramblerByName), never by value.
//
// A Spec is one of two kinds. A performance run (Kind "") measures a
// workload's execution under a mechanism: Cfg, Timer, Threads and Scale
// are live, Attack is nil. An attack job (Kind "attack") measures a
// PoC's success against a mechanism: Attack is live, and the
// microarchitecture fields are zero (the attack harness drives the
// predictor structures directly). Both kinds share Opts, Codec,
// Scrambler and Pred — the mechanism and predictor under test.
type Spec struct {
	// Kind discriminates the run kinds: "" (performance) or KindAttack.
	Kind string `json:"kind,omitempty"`
	// Opts is the mechanism configuration with the interface fields
	// excluded from the encoding (their identities are Codec/Scrambler
	// below).
	Opts core.Options `json:"opts"`
	// Codec and Scrambler are the Name() values of the normalized
	// options' interface fields.
	Codec     string `json:"codec"`
	Scrambler string `json:"scrambler"`
	// Pred names the direction predictor (experiment.NewDirPredictor).
	// For attack jobs, "" selects the PoC's default bimodal table.
	Pred string `json:"pred"`
	// Cfg is the core microarchitecture.
	Cfg cpu.Config `json:"cfg"`
	// Timer is the scheduler timer period in cycles.
	Timer uint64 `json:"timer"`
	// Threads are the software-thread workload names; the first is the
	// measurement target.
	Threads []string `json:"threads"`
	// Scale is the simulation size.
	Scale Scale `json:"scale"`
	// Attack is the attack-job payload (Kind == KindAttack only).
	Attack *AttackSpec `json:"attack,omitempty"`
}

// AttackSpec is the attack-specific half of an attack job: which
// registered PoC to run, on which core arrangement, and how big.
type AttackSpec struct {
	// Name is the registered attack (attack.ByName).
	Name string `json:"name"`
	// Scenario is the core arrangement by wire name: "single" or "SMT"
	// (attack.ScenarioByName).
	Scenario string `json:"scenario"`
	// RekeyPeriod is the isolation controller's timer period in
	// scheduling events; 0 is the paper's event-driven design (see
	// attack.Env).
	RekeyPeriod uint64 `json:"rekey_period"`
	// Trials sizes the measurement (iterations, secret bits — the
	// attack's outer loop).
	Trials int `json:"trials"`
	// Attempts sizes the inner loop of the attacks that have one
	// (pht_training, pht_steering); 0 otherwise.
	Attempts int `json:"attempts"`
	// Seed diversifies the measurement deterministically.
	Seed uint64 `json:"seed"`
}

// Result is one simulation's measurement window — the engine's
// RunResult, promoted to the wire schema. For attack jobs the
// performance fields are zero and Attack carries the counted outcome.
type Result struct {
	Cycles       uint64            `json:"cycles"`
	Target       cpu.ThreadStats   `json:"target"`
	Others       []cpu.ThreadStats `json:"others"`
	PrivSwitches uint64            `json:"priv_switches"`
	CtxSwitches  uint64            `json:"ctx_switches"`
	BTBHitRate   float64           `json:"btb_hit_rate"`
	// Attack is the attack-job outcome (attack-kind specs only).
	Attack *AttackResult `json:"attack,omitempty"`
}

// AttackResult is an attack job's counted measurement. Counts (not a
// rate) travel on the wire so independent seed batches of one logical
// cell merge exactly by integer addition.
type AttackResult struct {
	Successes int `json:"successes"`
	Trials    int `json:"trials"`
}

// Rate returns Successes/Trials (0 when empty).
func (a AttackResult) Rate() float64 {
	if a.Trials == 0 {
		return 0
	}
	return float64(a.Successes) / float64(a.Trials)
}

// PrivPerMcycle returns privilege switches per million cycles.
func (r Result) PrivPerMcycle() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.PrivSwitches) / float64(r.Cycles) * 1e6
}

// CtxPerMcycle returns context switches per million cycles.
func (r Result) CtxPerMcycle() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.CtxSwitches) / float64(r.Cycles) * 1e6
}

// schemaEpoch distinguishes encoding generations that a type signature
// cannot: bump it when simulation semantics change in a way that makes
// previously stored results stale (e.g. a scheduler-model fix) without
// any key or result field changing shape.
//
// Epoch 2: spec/result promoted to this package's canonical snake_case
// wire form (PR 3); epoch-1 entries used the internal persistedKey
// encoding.
//
// Epoch 3: the schema became a union of run kinds — attack jobs joined
// performance runs (Spec.Kind/Attack, Result.Attack). The type-signature
// component changes too, but the epoch bump makes the supersession
// explicit: epoch-2 cache directories are stale and GC removes them.
const schemaEpoch = 3

// SchemaVersion identifies the wire encoding (and therefore the
// persistent run cache's encoding). It embeds a recursive signature of
// the Spec and Result types, so adding, removing, renaming or retyping
// any field reachable from them produces a new version — stale entries
// and mismatched peers are rejected, never aliased.
func SchemaVersion() string { return schemaVersion }

// schemaVersion is computed once; the types are static, so the
// signature cannot change within a process.
var schemaVersion = fmt.Sprintf("xorbp-run/epoch%d/%s->%s", schemaEpoch,
	typeSig(reflect.TypeOf(Spec{}), nil),
	typeSig(reflect.TypeOf(Result{}), nil))

// typeSig renders a type's full structure: struct fields recurse, so a
// change anywhere in the spec or result type tree changes the signature.
func typeSig(t reflect.Type, seen map[reflect.Type]bool) string {
	if seen == nil {
		seen = make(map[reflect.Type]bool)
	}
	switch t.Kind() {
	case reflect.Struct:
		if seen[t] {
			return t.String()
		}
		seen[t] = true
		var b strings.Builder
		b.WriteString(t.String())
		b.WriteByte('{')
		for i := 0; i < t.NumField(); i++ {
			if i > 0 {
				b.WriteByte(';')
			}
			f := t.Field(i)
			b.WriteString(f.Name)
			b.WriteByte(':')
			b.WriteString(typeSig(f.Type, seen))
		}
		b.WriteByte('}')
		return b.String()
	case reflect.Slice:
		return "[]" + typeSig(t.Elem(), seen)
	case reflect.Array:
		return fmt.Sprintf("[%d]%s", t.Len(), typeSig(t.Elem(), seen))
	case reflect.Pointer:
		return "*" + typeSig(t.Elem(), seen)
	case reflect.Map:
		return "map[" + typeSig(t.Key(), seen) + "]" + typeSig(t.Elem(), seen)
	default:
		// Basic kinds and interfaces: the name is the identity (interface
		// implementations are keyed separately, by registered name).
		return t.String()
	}
}

// Encode renders the canonical byte form of the spec: single-line JSON
// with fixed field order. Two equal Specs always encode to identical
// bytes, so the encoding doubles as the cache-key payload.
func (s Spec) Encode() []byte {
	// The interface fields carry json:"-" so a populated Options cannot
	// leak implementation-dependent bytes into the canonical form; the
	// identities must already be in Codec/Scrambler.
	b, err := json.Marshal(s)
	if err != nil {
		// Every encoded field is a plain value type; Marshal cannot fail.
		panic(fmt.Sprintf("wire: encoding spec: %v", err))
	}
	return b
}

// DecodeSpec parses a canonical spec encoding. Unknown fields are
// rejected: a worker on a different schema must fail loudly, not guess.
func DecodeSpec(b []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("wire: decoding spec: %w", err)
	}
	return s, nil
}

// Key derives the spec's persistent-store key: the keyed hash of the
// schema version and the canonical encoding. Every process that agrees
// on the schema derives the same key for the same spec — the property
// that lets local runs, remote workers and warm caches interoperate.
func (s Spec) Key() string {
	return runcache.Key(schemaVersion, s.Encode())
}

// Encode renders the canonical byte form of the result.
func (r Result) Encode() []byte {
	b, err := json.Marshal(r)
	if err != nil {
		panic(fmt.Sprintf("wire: encoding result: %v", err))
	}
	return b
}

// DecodeResult parses a canonical result encoding (strict, like
// DecodeSpec).
func DecodeResult(b []byte) (Result, error) {
	var r Result
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return Result{}, fmt.Errorf("wire: decoding result: %w", err)
	}
	return r, nil
}

// RunRequest is the body of POST /run on a bpserve worker.
type RunRequest struct {
	// Schema is the client's SchemaVersion; the worker rejects a
	// mismatch with 409 rather than computing an incompatible result.
	Schema string `json:"schema"`
	Spec   Spec   `json:"spec"`
}

// RunResponse is the successful reply to POST /run.
type RunResponse struct {
	Schema string `json:"schema"`
	Result Result `json:"result"`
	// Cached reports that the worker served the result from its shared
	// store instead of simulating.
	Cached bool `json:"cached"`
	// DurationMS is the worker-side simulation time (0 when Cached).
	DurationMS float64 `json:"duration_ms"`
}

// Health is the body of GET /healthz on a bpserve worker.
type Health struct {
	// Status is "ok", or "draining" once shutdown has begun.
	Status string `json:"status"`
	// Schema is the worker's SchemaVersion, checked by clients at probe
	// time.
	Schema string `json:"schema"`
	// Capacity is the worker's concurrency limit; clients size their
	// fan-out to the sum of their workers' capacities.
	Capacity int    `json:"capacity"`
	Inflight int    `json:"inflight"`
	Runs     uint64 `json:"runs"`
	Replays  uint64 `json:"replays"`
}

// Statz is the body of GET /statz on a bpserve worker: the live load
// and cache counters routing scorers decide on (internal/fleet). It is
// telemetry, not schema — adding fields never invalidates caches.
type Statz struct {
	// Capacity is the worker's concurrency limit (as in Health).
	Capacity int `json:"capacity"`
	// Inflight counts simulations holding a slot right now.
	Inflight int `json:"inflight"`
	// Queued counts accepted requests waiting for a simulation slot —
	// the backlog a least-loaded scorer steers around.
	Queued int `json:"queued"`
	// Runs and Replays mirror Health: simulations executed vs answered
	// from the worker's store.
	Runs    uint64 `json:"runs"`
	Replays uint64 `json:"replays"`
	// CacheHits/CacheMisses are the worker store's Get counters; an
	// affinity router sending specs to the right worker drives the hit
	// rate up.
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
}

// Error is the JSON error body returned by a worker for non-2xx
// statuses.
type Error struct {
	Error string `json:"error"`
}
