package wire_test

import (
	"context"
	"crypto/x509"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"xorbp/internal/wire"
)

// flakyWorker is a /run endpoint that fails its first failures
// requests with 503 and then serves a fixed result — the shape of a
// worker mid-restart.
type flakyWorker struct {
	failures int64
	hits     atomic.Int64
}

func (f *flakyWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := f.hits.Add(1)
	if n <= f.failures {
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(wire.Error{Error: "restarting"})
		return
	}
	var req wire.RunRequest
	_ = json.NewDecoder(r.Body).Decode(&req)
	_ = json.NewEncoder(w).Encode(wire.RunResponse{
		Schema: wire.SchemaVersion(),
		Result: wire.Result{Cycles: 7},
	})
}

// sleepRecorder is the injected backoff sleeper: it records each
// requested duration and returns instantly, so the retry schedule is
// asserted, not waited out.
func sleepRecorder(into *[]time.Duration) func(context.Context, time.Duration) error {
	return func(ctx context.Context, d time.Duration) error {
		*into = append(*into, d)
		return ctx.Err()
	}
}

func flakyClient(t *testing.T, fw *flakyWorker) (*wire.Client, *[]time.Duration) {
	t.Helper()
	ts := httptest.NewServer(fw)
	t.Cleanup(ts.Close)
	c := wire.NewClient([]string{strings.TrimPrefix(ts.URL, "http://")})
	var sleeps []time.Duration
	c.SetSleep(sleepRecorder(&sleeps))
	return c, &sleeps
}

// TestRunRetriesWithBackoff: a worker that 503s three times is retried
// behind the deterministic 250ms/1s/4s schedule and the fourth rotation
// lands the result.
func TestRunRetriesWithBackoff(t *testing.T) {
	fw := &flakyWorker{failures: 3}
	c, sleeps := flakyClient(t, fw)

	res, err := c.Run(context.Background(), wire.Spec{Pred: "retry-test", Timer: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 7 {
		t.Fatalf("cycles = %d, want 7", res.Cycles)
	}
	want := []time.Duration{250 * time.Millisecond, time.Second, 4 * time.Second}
	if len(*sleeps) != len(want) {
		t.Fatalf("backoff sleeps %v, want %v", *sleeps, want)
	}
	for i, d := range want {
		if (*sleeps)[i] != d {
			t.Fatalf("backoff sleeps %v, want %v", *sleeps, want)
		}
	}
	if fw.hits.Load() != 4 {
		t.Fatalf("worker saw %d requests, want 4", fw.hits.Load())
	}
}

// TestRunExhaustsRotations: a worker that never recovers consumes
// exactly retryPasses rotations and the full backoff schedule, then
// Run reports the last failure.
func TestRunExhaustsRotations(t *testing.T) {
	fw := &flakyWorker{failures: 1 << 30}
	c, sleeps := flakyClient(t, fw)

	_, err := c.Run(context.Background(), wire.Spec{Pred: "retry-test", Timer: 2})
	if err == nil || !strings.Contains(err.Error(), "4 rotations") {
		t.Fatalf("err = %v, want an all-rotations-failed report", err)
	}
	if fw.hits.Load() != 4 {
		t.Fatalf("worker saw %d requests, want 4 (one per rotation)", fw.hits.Load())
	}
	if len(*sleeps) != 3 {
		t.Fatalf("slept %v, want the full 3-step schedule", *sleeps)
	}
}

// TestRunAbortsOnNonRetryable: a 401 means the shared token is wrong
// everywhere — no second attempt, no backoff.
func TestRunAbortsOnNonRetryable(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusUnauthorized)
		_ = json.NewEncoder(w).Encode(wire.Error{Error: "bad token"})
	}))
	t.Cleanup(ts.Close)
	c := wire.NewClient([]string{strings.TrimPrefix(ts.URL, "http://")})
	var sleeps []time.Duration
	c.SetSleep(sleepRecorder(&sleeps))

	_, err := c.Run(context.Background(), wire.Spec{Pred: "retry-test", Timer: 3})
	if err == nil || !strings.Contains(err.Error(), "unauthorized") {
		t.Fatalf("err = %v, want unauthorized", err)
	}
	if hits.Load() != 1 || len(sleeps) != 0 {
		t.Fatalf("non-retryable failure got %d attempts and %v backoff, want 1 and none", hits.Load(), sleeps)
	}
}

// TestClientTLSPinning: SetTLS pins the fleet CA — a client holding
// the right CA probes a TLS worker fine, a client with an empty pool
// (or none at all) is refused before any spec crosses the wire.
func TestClientTLSPinning(t *testing.T) {
	ts := httptest.NewTLSServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(wire.Health{
			Status: "ok", Schema: wire.SchemaVersion(), Capacity: 2,
		})
	}))
	t.Cleanup(ts.Close)
	addr := strings.TrimPrefix(ts.URL, "https://")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	pinned := wire.NewClient([]string{addr})
	pool := x509.NewCertPool()
	pool.AddCert(ts.Certificate())
	pinned.SetTLS(pool)
	if err := pinned.Probe(ctx); err != nil {
		t.Fatalf("CA-pinned probe failed: %v", err)
	}
	if pinned.Workers() != 2 {
		t.Fatalf("probed capacity %d, want 2", pinned.Workers())
	}

	wrongCA := wire.NewClient([]string{addr})
	wrongCA.SetTLS(x509.NewCertPool())
	if err := wrongCA.Probe(ctx); err == nil {
		t.Fatal("probe with an empty CA pool trusted an unknown certificate")
	}

	plain := wire.NewClient([]string{addr})
	plain.SetSleep(func(ctx context.Context, _ time.Duration) error { return ctx.Err() })
	if err := plain.Probe(ctx); err == nil {
		t.Fatal("plain-HTTP probe succeeded against a TLS worker")
	}
}
