package wire

import "errors"

// ErrFleetDown is returned (wrapped) by Client.Run when every worker's
// circuit breaker is open: nothing is dispatchable right now. Callers
// that can degrade — the driver falls back to the in-process backend —
// test for it with errors.Is; everything else should treat it like any
// other backend failure.
var ErrFleetDown = errors.New("every worker's circuit is open")

// Breaker tuning. All thresholds are counted in events, never in wall
// time, so breaker behavior is deterministic and testable without a
// clock: a circuit opens after breakerFailThreshold consecutive
// retryable failures, waits out a cooldown counted in Run admissions,
// then half-opens for a single hedged probe. A failed probe reopens
// the circuit with the cooldown doubled (capped); a success closes it.
//
// The threshold equals retryPasses so a single Run never trips the
// breaker before its own final rotation: one spec's retries keep their
// full schedule, and only once a worker has failed a whole Run's worth
// of attempts do later Runs start skipping it.
const (
	breakerFailThreshold = retryPasses
	breakerCooldown      = 8
	breakerCooldownMax   = 64
)

// Breaker states.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is one worker address's circuit state. Guarded by Client.bmu.
type breaker struct {
	state    int
	fails    int // consecutive retryable failures while closed
	cooldown int // admissions left before an open circuit half-opens
	opens    int // times opened since last success; scales the cooldown
	probing  bool
}

// admit partitions a dispatch order into the addresses worth trying
// now: closed circuits in routing order, then at most one half-open
// probe per address appended last — the probe is hedged behind every
// healthy worker, so a recovering address cannot stall a spec that a
// healthy one would have answered. Open circuits tick their cooldown
// (one tick per admission) and are skipped until it lapses.
func (c *Client) admit(order []int) []int {
	c.bmu.Lock()
	defer c.bmu.Unlock()
	var healthy, probes []int
	for _, w := range order {
		b := &c.brk[w]
		switch b.state {
		case breakerClosed:
			healthy = append(healthy, w)
		case breakerOpen:
			b.cooldown--
			if b.cooldown <= 0 {
				b.state = breakerHalfOpen
			}
		}
		// A fresh or lapsed circuit half-opens above; hand out one
		// probe at a time so concurrent Runs don't stampede a worker
		// that is quite possibly still down.
		if b.state == breakerHalfOpen && !b.probing {
			b.probing = true
			probes = append(probes, w)
		}
	}
	return append(healthy, probes...)
}

// markUp records a successful dispatch on worker w: the circuit closes
// and its failure history clears.
func (c *Client) markUp(w int) {
	c.bmu.Lock()
	b := &c.brk[w]
	b.state = breakerClosed
	b.fails, b.opens, b.cooldown = 0, 0, 0
	b.probing = false
	c.bmu.Unlock()
}

// markDown records a retryable dispatch failure on worker w. A closed
// circuit opens after breakerFailThreshold consecutive failures; a
// half-open circuit reopens immediately with its cooldown doubled
// (capped at breakerCooldownMax), so a persistently dead worker is
// probed geometrically less often instead of burning every Run's
// retry rotations.
func (c *Client) markDown(w int) {
	c.bmu.Lock()
	b := &c.brk[w]
	b.probing = false
	b.fails++
	if b.state == breakerHalfOpen || b.fails >= breakerFailThreshold {
		b.opens++
		cd := breakerCooldown << (b.opens - 1)
		if cd > breakerCooldownMax || cd <= 0 {
			cd = breakerCooldownMax
		}
		b.state = breakerOpen
		b.cooldown = cd
		b.fails = 0
	}
	c.bmu.Unlock()
}

// releaseProbes clears the probe claims a Run was handed by admit but
// never issued — a spec answered by an earlier worker (or aborted) must
// not leave a half-open circuit permanently claimed, or the recovering
// worker would never be probed again.
func (c *Client) releaseProbes(rest []int) {
	if len(rest) == 0 {
		return
	}
	c.bmu.Lock()
	for _, w := range rest {
		if c.brk[w].state == breakerHalfOpen {
			c.brk[w].probing = false
		}
	}
	c.bmu.Unlock()
}

// breakerStates snapshots per-address circuit states, index-aligned
// with Addrs — observability for tests and end-of-run reporting.
func (c *Client) breakerStates() []int {
	c.bmu.Lock()
	defer c.bmu.Unlock()
	out := make([]int, len(c.brk))
	for i := range c.brk {
		out[i] = c.brk[i].state
	}
	return out
}

// OpenCircuits counts workers whose circuit is currently open or
// half-open — the fleet-health figure the driver's degradation warning
// and chaosbench's report print.
func (c *Client) OpenCircuits() int {
	n := 0
	for _, st := range c.breakerStates() {
		if st != breakerClosed {
			n++
		}
	}
	return n
}
