package fleet

import (
	"context"
	"time"

	"xorbp/internal/experiment"
	"xorbp/internal/wire"
)

// Throttle wraps an execution backend with a fixed pre-simulation
// delay — the slow-worker model the strategy benchmarks and the CI
// smoke topology use to build a skewed fleet on one machine (bpserve
// -slow). Results are untouched: a throttled worker is late, never
// wrong.
type Throttle struct {
	Inner experiment.Backend
	Delay time.Duration
}

// Run waits out the delay, then delegates.
func (t Throttle) Run(ctx context.Context, spec wire.Spec) (wire.Result, error) {
	if t.Delay > 0 {
		if err := sleepWall(ctx, t.Delay); err != nil {
			return wire.Result{}, err
		}
	}
	return t.Inner.Run(ctx, spec)
}
