package fleet

import (
	"reflect"
	"sort"
	"testing"

	"xorbp/internal/wire"
)

func testView(n int) View {
	v := View{}
	for i := 0; i < n; i++ {
		v.Addrs = append(v.Addrs, "10.0.0.1:"+string(rune('a'+i)))
		v.Caps = append(v.Caps, 1)
		v.Statz = append(v.Statz, wire.Statz{})
	}
	return v
}

func sspec(i int) wire.Spec {
	return wire.Spec{Pred: "scorer-test", Timer: uint64(2000 + i)}
}

// TestScorerRegistryRoundTrip: every listed policy constructs, reports
// its own name, and the ledger covers scorers, baselines and pull.
func TestScorerRegistryRoundTrip(t *testing.T) {
	names := ScorerNames()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("ScorerNames not sorted: %v", names)
	}
	for _, name := range names {
		s, ok := ScorerByName(name)
		if !ok {
			t.Fatalf("ScorerByName(%q) missing", name)
		}
		if s.Name() != name {
			t.Fatalf("ScorerByName(%q).Name() = %q", name, s.Name())
		}
	}
	if _, ok := ScorerByName("nope"); ok {
		t.Fatal("ScorerByName accepted an unknown policy")
	}
	ledger := make(map[string]bool)
	for _, p := range LedgerPolicies() {
		ledger[p] = true
	}
	for _, want := range append(names, "serial", "shard", "pull") {
		if !ledger[want] {
			t.Fatalf("LedgerPolicies misses %q: %v", want, LedgerPolicies())
		}
	}
}

// TestScorerOrdersArePermutations: every scorer returns each worker
// exactly once, for a spread of specs and sequence numbers — failover
// must be able to reach the whole fleet.
func TestScorerOrdersArePermutations(t *testing.T) {
	v := testView(5)
	v.Caps = []int{4, 1, 2, 8, 1}
	v.Statz[2] = wire.Statz{Inflight: 3, Queued: 7}
	for _, name := range ScorerNames() {
		s, _ := ScorerByName(name)
		for seq := uint64(0); seq < 12; seq++ {
			order := s.Order(sspec(int(seq%3)), v, seq)
			seen := make([]bool, 5)
			for _, i := range order {
				if i < 0 || i >= 5 || seen[i] {
					t.Fatalf("%s: order %v is not a permutation (seq %d)", name, order, seq)
				}
				seen[i] = true
			}
			if len(order) != 5 {
				t.Fatalf("%s: order %v misses workers (seq %d)", name, order, seq)
			}
		}
	}
}

// TestScorersDeterministic: identical inputs yield identical orders —
// the property the byte-identity guarantee and the ledger's
// reproducibility both lean on.
func TestScorersDeterministic(t *testing.T) {
	v := testView(4)
	v.Caps = []int{2, 5, 1, 3}
	v.Statz[1] = wire.Statz{Inflight: 2, Queued: 1}
	for _, name := range ScorerNames() {
		s, _ := ScorerByName(name)
		for seq := uint64(0); seq < 8; seq++ {
			a := s.Order(sspec(1), v, seq)
			b := s.Order(sspec(1), v, seq)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%s: order not deterministic at seq %d: %v vs %v", name, seq, a, b)
			}
		}
	}
}

// TestRoundRobinRotates: dispatch k leads with worker k mod n.
func TestRoundRobinRotates(t *testing.T) {
	v := testView(3)
	for seq := uint64(0); seq < 9; seq++ {
		order := RoundRobin{}.Order(sspec(0), v, seq)
		if order[0] != int(seq%3) {
			t.Fatalf("seq %d leads with %d, want %d", seq, order[0], seq%3)
		}
	}
}

// TestLeastLoadedSteersAroundBacklog: the deepest queue goes last, the
// idle worker first, with capacity normalizing the comparison.
func TestLeastLoadedSteersAroundBacklog(t *testing.T) {
	v := testView(3)
	v.Statz = []wire.Statz{{Inflight: 5}, {}, {Inflight: 2}}
	order := LeastLoaded{}.Order(sspec(0), v, 0)
	if order[0] != 1 || order[2] != 0 {
		t.Fatalf("loads [5 0 2] ordered %v, want idle first and the backlog last", order)
	}

	// Same absolute load, different capacity: 4-in-flight on an 8-slot
	// worker is lighter than 1-in-flight on a 1-slot worker.
	v = testView(2)
	v.Caps = []int{8, 1}
	v.Statz = []wire.Statz{{Inflight: 4}, {Inflight: 1}}
	order = LeastLoaded{}.Order(sspec(0), v, 0)
	if order[0] != 0 {
		t.Fatalf("capacity-normalized order %v, want the wide worker first", order)
	}
}

// TestCapacityWeightsDispatch: over one full schedule, each worker
// leads in proportion to its probed capacity.
func TestCapacityWeightsDispatch(t *testing.T) {
	v := testView(2)
	v.Caps = []int{3, 1}
	leads := map[int]int{}
	for seq := uint64(0); seq < 4; seq++ {
		leads[Capacity{}.Order(sspec(0), v, seq)[0]]++
	}
	if leads[0] != 3 || leads[1] != 1 {
		t.Fatalf("capacity 3:1 led %v, want 3:1", leads)
	}
}

// TestAffinityStableAndSpread: one spec always routes to one worker
// (regardless of seq), different specs spread over the fleet, and
// removing a worker only remaps the specs that hashed to it.
func TestAffinityStableAndSpread(t *testing.T) {
	v := testView(4)
	lead := make(map[int]int)
	for i := 0; i < 32; i++ {
		first := Affinity{}.Order(sspec(i), v, 0)[0]
		for seq := uint64(1); seq < 4; seq++ {
			if got := (Affinity{}).Order(sspec(i), v, seq)[0]; got != first {
				t.Fatalf("spec %d moved from worker %d to %d at seq %d", i, first, got, seq)
			}
		}
		lead[first]++
	}
	if len(lead) < 2 {
		t.Fatalf("32 specs all routed to %v — rendezvous hashing is not spreading", lead)
	}

	// Drop the last worker: specs that routed elsewhere must not move
	// (the minimal-disruption property of rendezvous hashing).
	small := testView(3)
	small.Addrs = v.Addrs[:3]
	for i := 0; i < 32; i++ {
		before := Affinity{}.Order(sspec(i), v, 0)[0]
		after := Affinity{}.Order(sspec(i), small, 0)[0]
		if before != 3 && after != before {
			t.Fatalf("spec %d moved %d -> %d when an unrelated worker left", i, before, after)
		}
	}
}
