package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xorbp/internal/core"
	"xorbp/internal/cpu"
	"xorbp/internal/experiment"
	"xorbp/internal/runcache"
	"xorbp/internal/wire"
)

// simScale is MicroScale, shrunk a further 4x under -short, matching
// the serve package's test scale so CI stays fast.
func simScale() experiment.Scale {
	s := experiment.MicroScale()
	if testing.Short() {
		s.WarmupInstr /= 4
		s.MeasureInstr /= 4
		s.SMTWarmupInstr /= 4
		s.SMTMeasureInstr /= 4
		for i := range s.TimerPeriods {
			s.TimerPeriods[i] /= 4
		}
	}
	return s
}

// simSpec builds a real runnable spec (unlike qspec, which only the
// queue's key function ever touches); i varies the timer period so
// each spec is distinct.
func simSpec(i int) wire.Spec {
	o := core.OptionsFor(core.Baseline).Normalized()
	spec := wire.Spec{
		Opts:      o,
		Codec:     o.Codec.Name(),
		Scrambler: o.Scrambler.Name(),
		Pred:      "tage",
		Cfg:       cpu.FPGAConfig(),
		Timer:     uint64(50_000 + 1000*i),
		Threads:   []string{"gcc", "calculix"},
		Scale:     simScale(),
	}
	spec.Opts.Codec, spec.Opts.Scrambler = nil, nil
	return spec
}

// startLeader exposes a queue over the real HTTP protocol and returns
// the host:port a bpserve -pull worker would be pointed at.
func startLeader(t *testing.T, q *Queue) string {
	t.Helper()
	ts := httptest.NewServer(NewLeader(q, "").Handler())
	t.Cleanup(ts.Close)
	return strings.TrimPrefix(ts.URL, "http://")
}

// serialResult runs one spec on the local backend, bypassing the fleet
// entirely — the reference every fleet execution must match byte for
// byte.
func serialResult(t *testing.T, spec wire.Spec) wire.Result {
	t.Helper()
	res, err := experiment.LocalBackend{}.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestPullMatchesSerial is the fleet's core guarantee: a figure
// rendered through a pull-queue leader with two claiming workers is
// byte-identical to the serial render, because dispatch order, worker
// identity, and batch boundaries never touch the results.
func TestPullMatchesSerial(t *testing.T) {
	scale := simScale()
	serial := experiment.NewSessionWith(scale, experiment.NewExecutor(1)).Figure1().Render()

	q := NewQueue(0, time.Now)
	leader := NewLeader(q, "")
	ts := httptest.NewServer(leader.Handler())
	t.Cleanup(ts.Close)
	addr := strings.TrimPrefix(ts.URL, "http://")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	workers := make([]*PullWorker, 2)
	for i := range workers {
		w := NewPullWorker(addr, fmt.Sprintf("w%d", i), experiment.LocalBackend{}, nil, 0, 2)
		workers[i] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(ctx); err != nil {
				t.Errorf("worker: %v", err)
			}
		}()
	}

	exec := experiment.NewExecutorWith(4, leader.Backend())
	pull := experiment.NewSessionWith(scale, exec).Figure1().Render()
	cancel()
	wg.Wait()

	if serial != pull {
		t.Fatalf("pull Figure 1 differs from serial:\n--- serial ---\n%s\n--- pull ---\n%s",
			serial, pull)
	}
	if err := exec.Err(); err != nil {
		t.Fatalf("pull executor poisoned: %v", err)
	}
	st := q.Stats()
	if st.Done == 0 || st.Done != st.Submitted {
		t.Fatalf("queue did not drain: %+v", st)
	}
	if int(workers[0].Runs()+workers[1].Runs()) != st.Done {
		t.Fatalf("workers simulated %d+%d specs, queue completed %d",
			workers[0].Runs(), workers[1].Runs(), st.Done)
	}
}

// blockBackend parks every Run until the worker's context dies —
// the stand-in for a wedged or crashed worker process.
type blockBackend struct{}

func (blockBackend) Run(ctx context.Context, _ wire.Spec) (experiment.RunResult, error) {
	<-ctx.Done()
	return wire.Result{}, ctx.Err()
}

// TestPullWorkStealing kills a worker mid-batch and checks the fleet's
// recovery story end to end over real HTTP: the lease expires, a
// second worker steals the whole batch, the merged results are
// byte-identical to serial, and no spec lands in the cache twice.
func TestPullWorkStealing(t *testing.T) {
	clk := newFakeClock()
	q := NewQueue(10*time.Second, clk.Now)
	addr := startLeader(t, q)

	const n = 4
	var resc [n]<-chan wire.Result
	var errc [n]<-chan error
	for i := 0; i < n; i++ {
		resc[i], errc[i] = submitAsync(q, simSpec(i))
	}
	waitPending(t, q, n)

	// The doomed worker claims the whole batch and wedges. Its sleeper
	// blocks forever, so it never heartbeats — exactly a hung process.
	ctxA, killA := context.WithCancel(context.Background())
	doomed := NewPullWorker(addr, "doomed", blockBackend{}, nil, n, n)
	doomed.SetSleep(func(ctx context.Context, _ time.Duration) error {
		<-ctx.Done()
		return ctx.Err()
	})
	aDone := make(chan error, 1)
	go func() { aDone <- doomed.Run(ctxA) }()

	deadline := time.Now().Add(5 * time.Second)
	for q.Stats().Leased < n {
		if time.Now().After(deadline) {
			t.Fatalf("doomed worker never claimed the batch: %+v", q.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	killA()
	if err := <-aDone; err != nil {
		t.Fatalf("killed worker returned %v, want nil", err)
	}
	if doomed.Runs() != 0 {
		t.Fatalf("doomed worker claims %d completed runs", doomed.Runs())
	}
	clk.Advance(11 * time.Second)

	// The successor steals the expired lease and finishes the job,
	// writing each spec into the shared cache exactly once.
	st, err := runcache.Open(t.TempDir(), wire.SchemaVersion())
	if err != nil {
		t.Fatal(err)
	}
	ctxB, stopB := context.WithCancel(context.Background())
	defer stopB()
	thief := NewPullWorker(addr, "thief", experiment.LocalBackend{}, st, n, 2)
	bDone := make(chan error, 1)
	go func() { bDone <- thief.Run(ctxB) }()

	for i := 0; i < n; i++ {
		if err := <-errc[i]; err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		got := <-resc[i]
		want := serialResult(t, simSpec(i))
		if !bytes.Equal(got.Encode(), want.Encode()) {
			t.Fatalf("spec %d: stolen result differs from serial:\n%s\nvs\n%s",
				i, got.Encode(), want.Encode())
		}
	}
	stopB()
	if err := <-bDone; err != nil {
		t.Fatal(err)
	}

	stats := q.Stats()
	if stats.Stolen != n {
		t.Fatalf("stats.Stolen = %d, want %d (%+v)", stats.Stolen, n, stats)
	}
	if thief.Runs() != n {
		t.Fatalf("thief simulated %d specs, want %d", thief.Runs(), n)
	}
	if st.Len() != n {
		t.Fatalf("cache holds %d entries for %d distinct specs — a spec was simulated twice into the cache", st.Len(), n)
	}
}

// gatedBackend signals when its first simulation starts and holds it
// until the gate opens, then behaves like the local backend.
type gatedBackend struct {
	started chan struct{}
	gate    chan struct{}
	once    sync.Once
}

func (g *gatedBackend) Run(ctx context.Context, spec wire.Spec) (experiment.RunResult, error) {
	g.once.Do(func() { close(g.started) })
	select {
	case <-g.gate:
	case <-ctx.Done():
		return wire.Result{}, ctx.Err()
	}
	return experiment.LocalBackend{}.Run(ctx, spec)
}

// TestPullDrainNacks is the graceful-shutdown contract: a draining
// worker finishes the spec it already started, nacks the unstarted
// remainder back to the leader immediately (no lease-expiry wait), and
// a successor picks them up — results still byte-identical to serial.
func TestPullDrainNacks(t *testing.T) {
	q := NewQueue(0, time.Now)
	addr := startLeader(t, q)

	const n = 4
	var resc [n]<-chan wire.Result
	var errc [n]<-chan error
	for i := 0; i < n; i++ {
		resc[i], errc[i] = submitAsync(q, simSpec(i))
	}
	waitPending(t, q, n)

	gb := &gatedBackend{started: make(chan struct{}), gate: make(chan struct{})}
	w := NewPullWorker(addr, "drainer", gb, nil, n, 1)
	done := make(chan error, 1)
	go func() { done <- w.Run(context.Background()) }()

	<-gb.started // one spec is mid-simulation; three are unstarted
	w.Drain()    // the SIGTERM path: stop claiming, finish, hand back
	close(gb.gate)
	if err := <-done; err != nil {
		t.Fatalf("draining worker returned %v, want nil", err)
	}
	if w.Runs() != 1 || w.Nacked() != n-1 {
		t.Fatalf("drainer ran %d and nacked %d, want 1 and %d", w.Runs(), w.Nacked(), n-1)
	}
	if st := q.Stats(); st.Nacked != n-1 || st.Pending != n-1 || st.Leased != 0 {
		t.Fatalf("queue after drain: %+v", st)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	successor := NewPullWorker(addr, "successor", experiment.LocalBackend{}, nil, n, 2)
	sDone := make(chan error, 1)
	go func() { sDone <- successor.Run(ctx) }()

	for i := 0; i < n; i++ {
		if err := <-errc[i]; err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		got := <-resc[i]
		want := serialResult(t, simSpec(i))
		if !bytes.Equal(got.Encode(), want.Encode()) {
			t.Fatalf("spec %d: drained+resumed result differs from serial", i)
		}
	}
	cancel()
	if err := <-sDone; err != nil {
		t.Fatal(err)
	}
	if successor.Runs() != n-1 {
		t.Fatalf("successor simulated %d specs, want the %d nacked ones", successor.Runs(), n-1)
	}
}

// workerFaultStub drives PullWorker's fault hooks from plain counters —
// the unit-test stand-in for chaos.FleetFaults.
type workerFaultStub struct {
	crashLeft atomic.Int64 // CrashBatch fires while positive
	dup       bool         // DuplicateComplete fires on every completion
}

func (f *workerFaultStub) CrashBatch() bool        { return f.crashLeft.Add(-1) >= 0 }
func (f *workerFaultStub) DropHeartbeat() bool     { return false }
func (f *workerFaultStub) DuplicateComplete() bool { return f.dup }

// TestPullWorkerCrashFaultAbandonsBatch: an injected mid-batch crash
// abandons the whole claimed batch — nothing completed, nothing nacked —
// and once the lease lapses the same (restarted) worker steals it back
// and finishes, results byte-identical to serial.
func TestPullWorkerCrashFaultAbandonsBatch(t *testing.T) {
	clk := newFakeClock()
	q := NewQueue(10*time.Second, clk.Now)
	addr := startLeader(t, q)

	const n = 2
	var resc [n]<-chan wire.Result
	var errc [n]<-chan error
	for i := 0; i < n; i++ {
		resc[i], errc[i] = submitAsync(q, simSpec(i))
	}
	waitPending(t, q, n)

	faults := &workerFaultStub{}
	faults.crashLeft.Store(1)
	w := NewPullWorker(addr, "crashy", experiment.LocalBackend{}, nil, n, 1)
	w.SetFaults(faults)
	w.SetSleep(func(ctx context.Context, _ time.Duration) error { return ctx.Err() })
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()

	// Wait for the injected crash, then let the lease lapse so the
	// worker's next claim steals its own abandoned batch.
	deadline := time.Now().Add(5 * time.Second)
	for w.Crashes() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("crash fault never fired: %+v", q.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if w.Runs() != 0 {
		t.Fatalf("crashed worker completed %d specs, want 0", w.Runs())
	}
	clk.Advance(11 * time.Second)

	for i := 0; i < n; i++ {
		if err := <-errc[i]; err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		got := <-resc[i]
		want := serialResult(t, simSpec(i))
		if !bytes.Equal(got.Encode(), want.Encode()) {
			t.Fatalf("spec %d: post-crash result differs from serial", i)
		}
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if w.Crashes() != 1 || w.Runs() != n {
		t.Fatalf("crashes = %d, runs = %d; want 1 and %d", w.Crashes(), w.Runs(), n)
	}
	if st := q.Stats(); st.Stolen != n || st.Nacked != 0 {
		t.Fatalf("queue after crash recovery: %+v, want %d stolen and nothing nacked", st, n)
	}
}

// TestPullWorkerDuplicateCompletesDropped: a worker that reports every
// completion twice exercises the queue's first-wins idempotency — all
// specs resolve once, the extras are counted and dropped.
func TestPullWorkerDuplicateCompletesDropped(t *testing.T) {
	q := NewQueue(0, time.Now)
	addr := startLeader(t, q)

	const n = 2
	var resc [n]<-chan wire.Result
	var errc [n]<-chan error
	for i := 0; i < n; i++ {
		resc[i], errc[i] = submitAsync(q, simSpec(i))
	}
	waitPending(t, q, n)

	w := NewPullWorker(addr, "stutter", experiment.LocalBackend{}, nil, n, 1)
	w.SetFaults(&workerFaultStub{dup: true})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()

	for i := 0; i < n; i++ {
		if err := <-errc[i]; err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		<-resc[i]
	}
	// The last spec's duplicate completion may still be in flight when
	// its submitter returns; give the worker a moment to post it.
	deadline := time.Now().Add(5 * time.Second)
	for q.Stats().Duplicates < n {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if st := q.Stats(); st.Done != n || st.Duplicates != n {
		t.Fatalf("queue stats = %+v, want %d done and %d duplicates dropped", st, n, n)
	}
}

// TestClaimSchemaMismatch covers both halves of the schema handshake:
// the leader 409s a claim from a worker on another schema, and a worker
// receiving that 409 stops for good instead of retrying forever.
func TestClaimSchemaMismatch(t *testing.T) {
	// Leader side: a real leader refuses a mismatched ClaimRequest.
	q := NewQueue(0, time.Now)
	addr := startLeader(t, q)
	body, _ := json.Marshal(ClaimRequest{Worker: "w9", Schema: "bogus-schema/0"})
	resp, err := http.Post("http://"+addr+"/queue/claim", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("mismatched claim got %s, want 409", resp.Status)
	}

	// Worker side: a 409 from the leader is fatal — one request, a
	// clear error, no retry loop.
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusConflict)
		_ = json.NewEncoder(w).Encode(wire.Error{Error: "worker w9 runs schema \"a\", this leader \"b\" — rebuild one side"})
	}))
	t.Cleanup(ts.Close)
	w := NewPullWorker(strings.TrimPrefix(ts.URL, "http://"), "w9", experiment.LocalBackend{}, nil, 1, 1)
	w.SetSleep(func(ctx context.Context, _ time.Duration) error { return ctx.Err() })
	err = w.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "rebuild one side") {
		t.Fatalf("worker returned %v, want the leader's rebuild-one-side error", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("worker retried a fatal 409 (%d requests)", hits.Load())
	}
}

// TestPullLeaderRestartWorkerRejoins: the leader process dies and comes
// back on the same address with a fresh queue (as the journal-recovery
// path restarts it); a running worker rides out the outage on its retry
// loop and picks up the resubmitted work without being restarted itself.
func TestPullLeaderRestartWorkerRejoins(t *testing.T) {
	l1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l1.Addr().String()
	q1 := NewQueue(0, time.Now)
	srv1 := &http.Server{Handler: NewLeader(q1, "").Handler()}
	go func() { _ = srv1.Serve(l1) }()

	const n = 2
	collect := func(q *Queue, base int) {
		t.Helper()
		var resc [n]<-chan wire.Result
		var errc [n]<-chan error
		for i := 0; i < n; i++ {
			resc[i], errc[i] = submitAsync(q, simSpec(base+i))
		}
		for i := 0; i < n; i++ {
			if err := <-errc[i]; err != nil {
				t.Fatalf("spec %d: %v", base+i, err)
			}
			got := <-resc[i]
			want := serialResult(t, simSpec(base+i))
			if !bytes.Equal(got.Encode(), want.Encode()) {
				t.Fatalf("spec %d: fleet result differs from serial", base+i)
			}
		}
	}

	w := NewPullWorker(addr, "survivor", experiment.LocalBackend{}, nil, n, 1)
	w.SetSleep(func(ctx context.Context, _ time.Duration) error { return ctx.Err() })
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()

	collect(q1, 0)
	_ = srv1.Close() // the leader dies; the worker starts seeing claim errors

	// A recovered leader binds the same address with a rebuilt queue.
	var l2 net.Listener
	deadline := time.Now().Add(5 * time.Second)
	for {
		if l2, err = net.Listen("tcp", addr); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("could not rebind %s: %v", addr, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	q2 := NewQueue(0, time.Now)
	srv2 := &http.Server{Handler: NewLeader(q2, "").Handler()}
	t.Cleanup(func() { _ = srv2.Close() })
	go func() { _ = srv2.Serve(l2) }()

	collect(q2, n)
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("worker did not survive the leader restart: %v", err)
	}
	if w.Runs() != 2*n {
		t.Fatalf("worker simulated %d specs across the restart, want %d", w.Runs(), 2*n)
	}
}

// TestPollWaitJitter: the idle-poll jitter is seeded by worker id —
// reproducible per worker, different across workers, and always within
// [base/2, 3*base/2).
func TestPollWaitJitter(t *testing.T) {
	mk := func(id string) *PullWorker {
		return NewPullWorker("127.0.0.1:0", id, experiment.LocalBackend{}, nil, 1, 1)
	}
	const base = 100 * time.Millisecond
	a, b, c := mk("w0"), mk("w0"), mk("w1")
	same, allSame := true, true
	for i := 0; i < 32; i++ {
		wa, wb, wc := a.pollWait(base), b.pollWait(base), c.pollWait(base)
		if wa != wb {
			same = false
		}
		if wa != wc {
			allSame = false
		}
		for _, d := range []time.Duration{wa, wc} {
			if d < base/2 || d >= base/2+base {
				t.Fatalf("pollWait(%v) = %v, outside [base/2, 3*base/2)", base, d)
			}
		}
	}
	if !same {
		t.Fatal("two workers with the same id jitter differently")
	}
	if allSame {
		t.Fatal("workers w0 and w1 share an identical 32-poll jitter sequence")
	}
	if got := a.pollWait(0); got < idleWait/2 || got >= idleWait/2+idleWait {
		t.Fatalf("pollWait(0) = %v, want an idleWait-based default", got)
	}
}
