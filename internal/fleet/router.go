package fleet

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"xorbp/internal/wire"
)

// DefaultStatzInterval paces the Router's background /statz polling:
// fast enough that least-loaded sees a forming backlog within a few
// dispatches, slow enough that the polling traffic is noise.
const DefaultStatzInterval = 500 * time.Millisecond

// Router glues a Scorer into a wire.Client: it snapshots the fleet
// view (addresses, probed capacities, polled /statz samples), numbers
// each dispatch, and installs itself as the client's picker. One
// router serves one client.
type Router struct {
	client *wire.Client
	scorer Scorer
	seq    atomic.Uint64

	// sleep paces Poll; injectable so tests run on a fake clock.
	sleep func(ctx context.Context, d time.Duration) error

	mu    sync.RWMutex
	statz []wire.Statz
}

// NewRouter wraps client with scorer-driven routing. Call Install to
// take over the client's dispatch order, and (for statz-driven scorers
// like leastloaded) run Poll in the background.
func NewRouter(client *wire.Client, scorer Scorer) *Router {
	return &Router{
		client: client,
		scorer: scorer,
		sleep:  sleepWall,
		statz:  make([]wire.Statz, len(client.Addrs())),
	}
}

// Scorer returns the routing policy in force.
func (r *Router) Scorer() Scorer { return r.scorer }

// SetSleep replaces the polling sleeper (tests inject a fake).
func (r *Router) SetSleep(sleep func(ctx context.Context, d time.Duration) error) {
	if sleep != nil {
		r.sleep = sleep
	}
}

// Install points the client's dispatch order at this router.
func (r *Router) Install() {
	r.client.SetPicker(r.pick)
}

// pick is the wire.Client picker: build the current view, stamp the
// dispatch number, and let the scorer order the fleet.
func (r *Router) pick(spec wire.Spec, n int) []int {
	_ = n // the view carries the fleet size
	seq := r.seq.Add(1) - 1
	r.mu.RLock()
	statz := append([]wire.Statz(nil), r.statz...)
	r.mu.RUnlock()
	return r.scorer.Order(spec, View{
		Addrs: r.client.Addrs(),
		Caps:  r.client.Capacities(),
		Statz: statz,
	}, seq)
}

// Refresh samples every worker's /statz once. A worker that fails to
// answer keeps its previous sample — momentarily stale routing beats
// dropping the worker from consideration.
func (r *Router) Refresh(ctx context.Context) {
	addrs := r.client.Addrs()
	fresh := make([]wire.Statz, len(addrs))
	ok := make([]bool, len(addrs))
	for i := range addrs {
		if st, err := r.client.Statz(ctx, i); err == nil {
			fresh[i], ok[i] = st, true
		}
	}
	r.mu.Lock()
	if len(r.statz) != len(addrs) {
		r.statz = make([]wire.Statz, len(addrs))
	}
	for i := range addrs {
		if ok[i] {
			r.statz[i] = fresh[i]
		}
	}
	r.mu.Unlock()
}

// Poll refreshes /statz samples every interval (<= 0 selects
// DefaultStatzInterval) until ctx cancels. Run it in the background
// for statz-driven scorers; rotation and hash scorers don't need it.
func (r *Router) Poll(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = DefaultStatzInterval
	}
	for {
		r.Refresh(ctx)
		if err := r.sleep(ctx, interval); err != nil {
			return
		}
	}
}
