package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"

	"xorbp/internal/wire"
)

// View is the fleet snapshot a Scorer ranks against: worker addresses
// (stable identities for affinity hashing), probed capacities, and the
// latest /statz sample per worker (zero value when none has been
// fetched). Index-aligned with the wire.Client's address list.
type View struct {
	Addrs []string
	Caps  []int
	Statz []wire.Statz
}

// cap returns worker i's capacity, defaulting to one slot when the
// fleet has not been probed.
func (v View) cap(i int) int {
	if i < len(v.Caps) && v.Caps[i] > 0 {
		return v.Caps[i]
	}
	return 1
}

// statz returns worker i's latest load sample (zero value when none).
func (v View) statz(i int) wire.Statz {
	if i < len(v.Statz) {
		return v.Statz[i]
	}
	return wire.Statz{}
}

// addr returns worker i's identity for hashing, falling back to the
// index when the view carries no addresses.
func (v View) addr(i int) string {
	if i < len(v.Addrs) && v.Addrs[i] != "" {
		return v.Addrs[i]
	}
	return "worker-" + strconv.Itoa(i)
}

// Scorer orders the workers a push-mode dispatch should try for one
// spec, best first (wire.Client failover walks the order). Scorers are
// stateless and deterministic: the order is a pure function of the
// spec, the view, and seq — the dispatch sequence number that stands
// in for mutable rotation state. Routing only chooses where a spec
// executes; results are pure functions of the spec, so every scorer
// yields byte-identical merged tables.
type Scorer interface {
	Name() string
	Order(spec wire.Spec, v View, seq uint64) []int
}

// RoundRobin is the naive baseline (and the wire.Client default):
// rotate the starting worker per dispatch, ignore the spec and the
// view. On a uniform fleet it is hard to beat — the ledger says so.
type RoundRobin struct{}

// Name returns the registry key.
func (RoundRobin) Name() string { return "roundrobin" }

// Order rotates the fleet by the dispatch sequence number.
func (RoundRobin) Order(_ wire.Spec, v View, seq uint64) []int {
	n := len(v.Addrs)
	if n == 0 {
		return nil
	}
	out := make([]int, n)
	start := int(seq % uint64(n))
	for k := range out {
		out[k] = (start + k) % n
	}
	return out
}

// LeastLoaded routes each spec to the worker with the smallest
// outstanding-work-to-capacity ratio in the latest /statz sample —
// the policy that steers around a slow or backlogged node. Samples
// are polled (Router.Poll), so the view lags reality by the polling
// interval; ties fall back to a seq rotation so an idle uniform fleet
// still spreads.
type LeastLoaded struct{}

// Name returns the registry key.
func (LeastLoaded) Name() string { return "leastloaded" }

// Order sorts workers by (inflight+queued)/capacity ascending,
// comparing cross-multiplied so the ratio stays exact integer math.
func (LeastLoaded) Order(_ wire.Spec, v View, seq uint64) []int {
	n := len(v.Addrs)
	if n == 0 {
		return nil
	}
	out := make([]int, n)
	rot := make([]int, n) // tie-break: position in the seq rotation
	start := int(seq % uint64(n))
	for k := range out {
		out[k] = k
		rot[k] = (k - start + n) % n
	}
	load := func(i int) int {
		st := v.statz(i)
		return st.Inflight + st.Queued
	}
	sort.SliceStable(out, func(a, b int) bool {
		ia, ib := out[a], out[b]
		la, lb := load(ia)*v.cap(ib), load(ib)*v.cap(ia)
		if la != lb {
			return la < lb
		}
		return rot[ia] < rot[ib]
	})
	return out
}

// Capacity weights dispatch by probed capacity: a 16-slot worker gets
// four times the traffic of a 4-slot one, via a deterministic weighted
// schedule indexed by seq. The static analog of leastloaded — right
// when the fleet is heterogeneous by construction and idle otherwise.
type Capacity struct{}

// Name returns the registry key.
func (Capacity) Name() string { return "capacity" }

// Order picks the lead worker from the capacity-expanded schedule at
// seq, then fails over through the rest by capacity descending.
func (Capacity) Order(_ wire.Spec, v View, seq uint64) []int {
	n := len(v.Addrs)
	if n == 0 {
		return nil
	}
	var slots []int
	for i := 0; i < n; i++ {
		for k := 0; k < v.cap(i); k++ {
			slots = append(slots, i)
		}
	}
	lead := slots[int(seq%uint64(len(slots)))]
	out := make([]int, 0, n)
	out = append(out, lead)
	rest := make([]int, 0, n-1)
	for i := 0; i < n; i++ {
		if i != lead {
			rest = append(rest, i)
		}
	}
	sort.SliceStable(rest, func(a, b int) bool {
		ca, cb := v.cap(rest[a]), v.cap(rest[b])
		if ca != cb {
			return ca > cb
		}
		return rest[a] < rest[b]
	})
	return append(out, rest...)
}

// Affinity routes each spec to the worker that owns it under
// rendezvous (highest-random-weight) hashing of (worker address, spec
// wire key): re-dispatching a spec always lands on the worker whose
// run-cache already holds it, so warm re-runs and re-key sweeps replay
// instead of re-simulating. Failover follows descending hash weight —
// the same worker sequence every time, so even the fallback cache
// placement is stable. Adding or removing one worker remaps only the
// specs that hashed to it.
type Affinity struct{}

// Name returns the registry key.
func (Affinity) Name() string { return "affinity" }

// Order ranks workers by descending rendezvous weight for the spec.
func (Affinity) Order(spec wire.Spec, v View, _ uint64) []int {
	n := len(v.Addrs)
	if n == 0 {
		return nil
	}
	key := spec.Key()
	weights := make([]uint64, n)
	for i := 0; i < n; i++ {
		weights[i] = rendezvousWeight(v.addr(i), key)
	}
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	sort.SliceStable(out, func(a, b int) bool {
		if weights[out[a]] != weights[out[b]] {
			return weights[out[a]] > weights[out[b]]
		}
		return out[a] < out[b]
	})
	return out
}

// rendezvousWeight hashes one (worker, spec-key) pair to its
// highest-random-weight score.
func rendezvousWeight(addr, key string) uint64 {
	h := sha256.New()
	_, _ = h.Write([]byte(addr))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(key))
	var sum [sha256.Size]byte
	return binary.BigEndian.Uint64(h.Sum(sum[:0]))
}

// ScorerByName returns the routing scorer registered under name. The
// bpvet exhaustive analyzer holds this switch, ScorerNames, and
// STRATEGY_LEDGER.md's policy list mutually complete.
func ScorerByName(name string) (Scorer, bool) {
	switch name {
	case RoundRobin{}.Name():
		return RoundRobin{}, true
	case LeastLoaded{}.Name():
		return LeastLoaded{}, true
	case Capacity{}.Name():
		return Capacity{}, true
	case Affinity{}.Name():
		return Affinity{}, true
	}
	return nil, false
}

// ScorerNames lists every registered routing policy, sorted — the
// -route flag's vocabulary.
func ScorerNames() []string {
	return []string{"affinity", "capacity", "leastloaded", "roundrobin"}
}

// LedgerPolicies lists every dispatch strategy STRATEGY_LEDGER.md must
// benchmark: the serial and static-shard baselines, every push-mode
// scorer, and the pull queue. The exhaustive analyzer pins this list
// to the scorer registry, so adding a scorer without extending the
// ledger is a build error.
func LedgerPolicies() []string {
	return []string{"serial", "shard", "roundrobin", "leastloaded", "capacity", "affinity", "pull"}
}
