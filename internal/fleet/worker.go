package fleet

import (
	"bytes"
	"context"
	"crypto/tls"
	"crypto/x509"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"xorbp/internal/experiment"
	"xorbp/internal/rng"
	"xorbp/internal/runcache"
	"xorbp/internal/wire"
)

// WorkerFaults is the chaos layer's worker-lifecycle hook (implemented
// by chaos.FleetFaults; nil in production). Each method is one
// injection decision point.
type WorkerFaults interface {
	// CrashBatch, answered true, kills the worker mid-batch: remaining
	// specs are neither completed nor nacked and the heartbeat stops,
	// so the lease lapses and the fleet steals them.
	CrashBatch() bool
	// DropHeartbeat suppresses one heartbeat post.
	DropHeartbeat() bool
	// DuplicateComplete reports one completion a second time.
	DuplicateComplete() bool
}

// claimTimeout bounds one leader round-trip (claim, health probe): a
// hung leader connection must surface as a retryable error, not wedge
// the poll loop — a draining worker checks its flag between polls, so
// an unbounded poll would also wedge drain.
const claimTimeout = 10 * time.Second

// PullWorker is the bpserve `-pull` loop: claim a batch from the
// leader, simulate it on the local backend (replaying from the shared
// store where possible), heartbeat while working, report each result
// as it lands, and go back for more. Pacing is implicit — a fast
// worker simply claims more often — and a worker that dies mid-batch
// loses its lease, so the fleet steals the stalled specs.
type PullWorker struct {
	leader string // leader host:port
	scheme string // "http", or "https" after SetTLS
	id     string // stable worker identity for lease bookkeeping
	token  string
	hc     *http.Client

	backend experiment.Backend
	store   *runcache.Store // may be nil (no replay / write-through)
	batch   int             // max specs claimed per lease
	slots   int             // concurrent simulations within a batch

	// sleep paces the idle-poll and heartbeat loops; injectable so the
	// package stays free of wall-clock reads and tests run fast.
	sleep func(ctx context.Context, d time.Duration) error

	// jitter drives the idle-poll jitter: a per-worker seeded stream
	// (from the worker id), so poll pacing is deterministic per worker
	// yet decorrelated across the fleet. Only the claim-loop goroutine
	// touches it.
	jitter *rng.SplitMix64

	// faults, when set, injects worker-lifecycle failures (chaos
	// testing only).
	faults WorkerFaults

	// draining stops the claim loop: started specs finish, unstarted
	// ones are nacked back to the leader immediately.
	draining atomic.Bool

	claims  atomic.Uint64 // non-empty batches claimed
	runs    atomic.Uint64 // specs simulated
	replays atomic.Uint64 // specs answered from the store
	nacked  atomic.Uint64 // specs handed back while draining
	crashes atomic.Uint64 // injected mid-batch crashes (chaos)
}

// NewPullWorker creates a worker that polls leader (host:port) under
// the given stable identity, simulating up to slots specs concurrently
// and claiming up to batch specs per lease (<= 0 selects slots*2, so a
// claim keeps every slot busy with one spec of lookahead each).
func NewPullWorker(leader, id string, backend experiment.Backend, store *runcache.Store, batch, slots int) *PullWorker {
	if slots < 1 {
		slots = 1
	}
	if batch < 1 {
		batch = slots * 2
	}
	return &PullWorker{
		leader:  leader,
		scheme:  "http",
		id:      id,
		hc:      &http.Client{},
		backend: backend,
		store:   store,
		batch:   batch,
		slots:   slots,
		sleep:   sleepWall,
		jitter:  rng.NewSplitMix64(rng.Mix64(fnv64a(id))),
	}
}

// fnv64a hashes s (FNV-1a) to seed the per-worker jitter stream.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// sleepWall is the default sleeper: a timer racing the context.
func sleepWall(ctx context.Context, d time.Duration) error {
	select {
	case <-time.After(d):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// SetToken attaches a shared bearer token to every leader request (the
// counterpart of the leader's -token).
func (w *PullWorker) SetToken(token string) { w.token = token }

// SetSleep replaces the poll/heartbeat sleeper (tests inject a fake).
func (w *PullWorker) SetSleep(sleep func(ctx context.Context, d time.Duration) error) {
	if sleep != nil {
		w.sleep = sleep
	}
}

// SetTLS switches the worker to HTTPS with the fleet CA pinned — only
// a leader presenting a chain to ca is trusted with this worker's
// labor and results.
func (w *PullWorker) SetTLS(ca *x509.CertPool) {
	w.scheme = "https"
	w.hc.Transport = &http.Transport{TLSClientConfig: &tls.Config{RootCAs: ca}}
}

// SetFaults arms the chaos layer's worker-lifecycle faults (tests and
// chaosbench only; nil in production).
func (w *PullWorker) SetFaults(f WorkerFaults) { w.faults = f }

// Drain stops the claim loop: the worker finishes the specs it has
// already started, nacks the rest of its lease back to the leader, and
// Run returns. Safe to call from a signal handler.
func (w *PullWorker) Drain() { w.draining.Store(true) }

// Runs returns how many specs this worker simulated.
func (w *PullWorker) Runs() uint64 { return w.runs.Load() }

// Replays returns how many claimed specs the worker answered from its
// store without simulating.
func (w *PullWorker) Replays() uint64 { return w.replays.Load() }

// Nacked returns how many specs the worker handed back while draining.
func (w *PullWorker) Nacked() uint64 { return w.nacked.Load() }

// Claims returns how many non-empty batches the worker has claimed.
func (w *PullWorker) Claims() uint64 { return w.claims.Load() }

// Crashes returns how many injected mid-batch crashes this worker has
// suffered (always 0 outside chaos runs).
func (w *PullWorker) Crashes() uint64 { return w.crashes.Load() }

// Run polls the leader until ctx cancels or Drain is called. Transient
// leader errors (leader not up yet, restarting) are retried behind the
// idle-poll pace; only an unrecoverable protocol disagreement (schema
// mismatch, bad token) returns an error.
func (w *PullWorker) Run(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return nil
		}
		if w.draining.Load() {
			return nil
		}
		resp, err := w.claim(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			if isFatal(err) {
				return err
			}
			if err := w.sleep(ctx, w.pollWait(idleWait)); err != nil {
				return nil
			}
			continue
		}
		if resp.Lease == 0 {
			wait := time.Duration(resp.WaitMS) * time.Millisecond
			if err := w.sleep(ctx, w.pollWait(wait)); err != nil {
				return nil
			}
			continue
		}
		if resp.Schema != wire.SchemaVersion() {
			// Never compute under a schema disagreement: hand the batch
			// back and stop — rebuilding one side is the only fix.
			_ = w.nack(ctx, resp.Lease, nil)
			return fmt.Errorf("fleet: leader runs schema %q, this worker %q — rebuild one side",
				resp.Schema, wire.SchemaVersion())
		}
		w.claims.Add(1)
		w.processBatch(ctx, resp)
	}
}

// pollWait jitters an idle-poll wait: uniform in [base/2, 3*base/2)
// from the worker's seeded stream, so workers started on the same beat
// spread their polls instead of thundering the leader together — and
// the spread is reproducible per worker id, not wall-clock dependent.
func (w *PullWorker) pollWait(base time.Duration) time.Duration {
	if base <= 0 {
		base = idleWait
	}
	return base/2 + time.Duration(w.jitter.Next()%uint64(base))
}

// fatalError marks a protocol disagreement no retry can fix.
type fatalError struct{ err error }

func (e fatalError) Error() string { return e.err.Error() }
func (e fatalError) Unwrap() error { return e.err }

func isFatal(err error) bool {
	_, ok := err.(fatalError)
	return ok
}

// processBatch simulates one claimed batch: slots concurrent workers
// drain the spec list, a heartbeat loop keeps the lease alive, and a
// drain request stops the intake so unstarted specs are nacked back.
func (w *PullWorker) processBatch(ctx context.Context, claim ClaimResponse) {
	leaseDur := time.Duration(claim.LeaseMS) * time.Millisecond
	if leaseDur <= 0 {
		leaseDur = DefaultLease
	}

	// crashed simulates a worker dying mid-batch (chaos only): the
	// intake stops taking specs, nothing is completed or nacked, and
	// the heartbeat goes silent so the lease lapses and the fleet
	// steals the remainder.
	var crashed atomic.Bool

	// Heartbeat at a third of the lease: two beats can be lost to a
	// hiccup before the lease lapses.
	hbCtx, stopHB := context.WithCancel(ctx)
	var hbDone sync.WaitGroup
	hbDone.Add(1)
	go func() {
		defer hbDone.Done()
		for {
			if err := w.sleep(hbCtx, leaseDur/3); err != nil {
				return
			}
			if crashed.Load() {
				return
			}
			if w.faults != nil && w.faults.DropHeartbeat() {
				continue
			}
			if !w.heartbeat(hbCtx, claim.Lease) {
				return
			}
		}
	}()

	// Intake: each slot takes the next spec; a draining worker stops
	// taking, so whatever is left in the channel gets nacked.
	in := make(chan wire.Spec, len(claim.Specs))
	for _, spec := range claim.Specs {
		in <- spec
	}
	close(in)

	var mu sync.Mutex
	var leftover []string

	var wg sync.WaitGroup
	for range w.slots {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for spec := range in {
				if crashed.Load() {
					// A crashed worker reports nothing — not even a nack.
					// Its specs sit out the lease and get stolen.
					continue
				}
				if w.faults != nil && w.faults.CrashBatch() {
					crashed.Store(true)
					w.crashes.Add(1)
					continue
				}
				if w.draining.Load() || ctx.Err() != nil {
					mu.Lock()
					leftover = append(leftover, spec.Key())
					mu.Unlock()
					continue
				}
				w.runOne(ctx, claim.Lease, spec)
			}
		}()
	}
	wg.Wait()
	stopHB()
	hbDone.Wait()

	if len(leftover) > 0 && !crashed.Load() {
		sort.Strings(leftover)
		// Nack with a background-ish context: ctx may already be
		// cancelled, but handing the batch back beats waiting out the
		// lease. Bound it so a dead leader can't hang shutdown.
		nctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 5*time.Second)
		defer cancel()
		if err := w.nack(nctx, claim.Lease, leftover); err == nil {
			w.nacked.Add(uint64(len(leftover)))
		}
	}
}

// runOne resolves one spec — store replay or local simulation — and
// reports the outcome to the leader.
func (w *PullWorker) runOne(ctx context.Context, leaseID uint64, spec wire.Spec) {
	key := spec.Key()
	report := func(res wire.Result, cached bool) {
		_ = w.complete(ctx, leaseID, key, res, cached)
		if w.faults != nil && w.faults.DuplicateComplete() {
			// Chaos: report the same completion twice — the queue must
			// absorb the echo as a duplicate, not double-count or error.
			_ = w.complete(ctx, leaseID, key, res, cached)
		}
	}
	if w.store != nil {
		if raw, ok := w.store.Get(key); ok {
			if res, err := wire.DecodeResult(raw); err == nil {
				w.replays.Add(1)
				report(res, true)
				return
			}
		}
	}
	res, err := w.backend.Run(ctx, spec)
	if err != nil {
		if ctx.Err() != nil {
			// Cancelled mid-run, not a verdict on the spec: say nothing
			// and let the lease expire (or the nack path return it).
			return
		}
		_ = w.fail(ctx, leaseID, key, err.Error())
		return
	}
	w.runs.Add(1)
	if w.store != nil {
		_ = w.store.Put(key, res.Encode())
	}
	report(res, false)
}

// post sends one queue-protocol request and decodes the reply into out.
func (w *PullWorker) post(ctx context.Context, path string, body, out any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		w.scheme+"://"+w.leader+path, bytes.NewReader(raw))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if w.token != "" {
		req.Header.Set("Authorization", "Bearer "+w.token)
	}
	resp, err := w.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusUnauthorized {
		return fatalError{fmt.Errorf("fleet: leader refused token: %s", readBody(resp.Body))}
	}
	if resp.StatusCode == http.StatusConflict {
		// The leader refused this worker outright (schema mismatch at
		// registration): no retry can fix a build disagreement.
		return fatalError{fmt.Errorf("fleet: %s", readBody(resp.Body))}
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleet: leader %s: %s: %s", path, resp.Status, readBody(resp.Body))
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func readBody(r io.Reader) string {
	raw, err := io.ReadAll(io.LimitReader(r, 4<<10))
	if err != nil || len(raw) == 0 {
		return "(no body)"
	}
	var e wire.Error
	if json.Unmarshal(raw, &e) == nil && e.Error != "" {
		return e.Error
	}
	return string(bytes.TrimSpace(raw))
}

func (w *PullWorker) claim(ctx context.Context) (ClaimResponse, error) {
	// A per-poll deadline keeps a hung leader connection from wedging
	// the claim loop (and with it, Drain, which is checked between
	// polls).
	cctx, cancel := context.WithTimeout(ctx, claimTimeout)
	defer cancel()
	var resp ClaimResponse
	err := w.post(cctx, "/queue/claim",
		ClaimRequest{Worker: w.id, Max: w.batch, Schema: wire.SchemaVersion()}, &resp)
	return resp, err
}

func (w *PullWorker) heartbeat(ctx context.Context, leaseID uint64) bool {
	var resp HeartbeatResponse
	if err := w.post(ctx, "/queue/heartbeat", HeartbeatRequest{Lease: leaseID}, &resp); err != nil {
		// Transient leader trouble: keep beating — the next one may land
		// before the lease lapses.
		return ctx.Err() == nil
	}
	return resp.Live
}

func (w *PullWorker) complete(ctx context.Context, leaseID uint64, key string, res wire.Result, cached bool) error {
	return w.post(ctx, "/queue/complete",
		CompleteRequest{Lease: leaseID, Key: key, Result: res, Cached: cached}, nil)
}

func (w *PullWorker) fail(ctx context.Context, leaseID uint64, key, msg string) error {
	return w.post(ctx, "/queue/complete",
		CompleteRequest{Lease: leaseID, Key: key, Err: msg}, nil)
}

func (w *PullWorker) nack(ctx context.Context, leaseID uint64, keys []string) error {
	return w.post(ctx, "/queue/nack", NackRequest{Lease: leaseID, Keys: keys}, nil)
}
