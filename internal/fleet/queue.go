// Package fleet is the dispatch layer for heterogeneous worker fleets.
//
// The static distribution the engine grew up with — `-shard I/N` hash
// partitioning and round-robin `-serve-addrs` — assigns work blindly:
// one slow node stalls the whole sweep, and a spec whose warm run-cache
// entry lives on worker A is routinely sent to worker B. This package
// inverts and scores that control flow, in two complementary modes:
//
//   - Pull (work-stealing): the driver runs a Queue behind a Leader
//     HTTP endpoint; bpserve workers in `-pull` mode claim batches of
//     specs under a lease, heartbeat while simulating, and report
//     results back. A lease that expires — dead worker, partitioned
//     worker, worker too slow to heartbeat — re-enqueues its
//     outstanding specs, so the rest of the fleet steals the stalled
//     cells instead of waiting on them.
//
//   - Push (scored routing): a Scorer orders the workers a wire.Client
//     should try for each spec — round-robin (the old behavior),
//     least-loaded on live /statz counters, probed-capacity-weighted,
//     or run-cache affinity (rendezvous-hashed on the spec's wire key,
//     so a spec deterministically lands where its cache entry lives).
//
// Neither mode changes what a sweep computes: results are pure
// functions of their canonical specs, so every policy and topology
// yields byte-identical merged tables (tested; STRATEGY_LEDGER.md
// records the honest wall-clock comparison, including where the naive
// policy wins).
package fleet

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"xorbp/internal/wire"
)

// DefaultLease is the claim lease duration: a worker that neither
// completes nor heartbeats within this window forfeits its batch to
// the rest of the fleet. Long enough that an honest worker's periodic
// heartbeat (sent every lease/3) never lapses by accident; short
// enough that a dead worker stalls a sweep by seconds, not minutes.
const DefaultLease = 15 * time.Second

// itemState tracks one spec through the queue.
type itemState uint8

const (
	statePending itemState = iota // waiting in the queue
	stateLeased                   // claimed by a worker, lease live
	stateDone                     // resolved (result or terminal error)
)

// item is one queued spec and its resolution.
type item struct {
	key   string
	spec  wire.Spec
	state itemState
	lease uint64 // owning lease while stateLeased

	res     wire.Result
	cached  bool   // worker answered from its store
	failMsg string // terminal failure ("" = success)
	done    chan struct{}
}

// lease is one worker's claim over a batch of items.
type lease struct {
	id       uint64
	worker   string
	deadline time.Time
	// out holds the lease's still-outstanding items by key.
	out map[string]*item
}

// Stats is a point-in-time summary of queue traffic.
type Stats struct {
	Submitted  int // distinct specs ever enqueued
	Pending    int // waiting for a claim right now
	Leased     int // claimed, not yet resolved
	Done       int // resolved
	Stolen     int // re-enqueued from expired leases
	Nacked     int // returned by draining workers
	Duplicates int // completions for already-resolved specs (dropped)
	Late       int // completions accepted after their lease expired
	Workers    int // distinct worker IDs ever seen
}

// Queue is the leader-side pull queue: the driver submits specs and
// blocks on their results; workers claim batches under leases and
// report back. All clocks are injected (the bpvet determinism rule,
// and lease-expiry tests run on a fake clock).
type Queue struct {
	now   func() time.Time
	lease time.Duration

	mu      sync.Mutex
	pending []*item // FIFO; stolen/nacked work returns to the front
	items   map[string]*item
	leases  map[uint64]*lease
	nextID  uint64
	workers map[string]bool
	stats   Stats
}

// NewQueue creates a queue with the given lease duration (<= 0 selects
// DefaultLease). now supplies the clock (time.Now in production;
// injected so expiry is testable and the package stays free of
// wall-clock reads).
func NewQueue(leaseDur time.Duration, now func() time.Time) *Queue {
	if leaseDur <= 0 {
		leaseDur = DefaultLease
	}
	return &Queue{
		now:     now,
		lease:   leaseDur,
		items:   make(map[string]*item),
		leases:  make(map[uint64]*lease),
		workers: make(map[string]bool),
	}
}

// Lease returns the queue's lease duration (workers size their
// heartbeat interval from it).
func (q *Queue) Lease() time.Duration { return q.lease }

// Submit enqueues one spec and blocks until a worker resolves it (or
// ctx cancels). Concurrent submissions of one spec (by wire key)
// coalesce into a single queue entry. cached reports that the worker
// answered from its own store rather than simulating.
func (q *Queue) Submit(ctx context.Context, spec wire.Spec) (res wire.Result, cached bool, err error) {
	key := spec.Key()
	q.mu.Lock()
	it, ok := q.items[key]
	if !ok {
		it = &item{key: key, spec: spec, done: make(chan struct{})}
		q.items[key] = it
		q.pending = append(q.pending, it)
		q.stats.Submitted++
	}
	q.mu.Unlock()

	select {
	case <-it.done:
	case <-ctx.Done():
		return wire.Result{}, false, ctx.Err()
	}
	// state is immutable once done closes; no lock needed to read it.
	if it.failMsg != "" {
		return wire.Result{}, false, fmt.Errorf("fleet: %s", it.failMsg)
	}
	return it.res, it.cached, nil
}

// Claim hands worker up to max pending specs under a fresh lease.
// Expired leases are reclaimed first, so a starving worker steals a
// dead peer's batch on its next claim. A zero lease ID means no work
// is available right now.
func (q *Queue) Claim(worker string, max int) (leaseID uint64, specs []wire.Spec) {
	if max < 1 {
		max = 1
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.workers[worker] = true
	q.reclaimExpiredLocked()
	if len(q.pending) == 0 {
		return 0, nil
	}
	n := min(max, len(q.pending))
	q.nextID++
	l := &lease{
		id:       q.nextID,
		worker:   worker,
		deadline: q.now().Add(q.lease), //bpvet:locked(q.mu) the injected clock is a non-blocking read; the deadline must be consistent with the claim
		out:      make(map[string]*item, n),
	}
	for _, it := range q.pending[:n] {
		it.state = stateLeased
		it.lease = l.id
		l.out[it.key] = it
		specs = append(specs, it.spec)
	}
	q.pending = append([]*item(nil), q.pending[n:]...)
	q.leases[l.id] = l
	return l.id, specs
}

// Heartbeat extends a live lease to now+lease and reports whether the
// lease still exists. A false return tells the worker its batch has
// been forfeited (it may keep simulating — late results are still
// accepted — but it should not count on exclusivity).
func (q *Queue) Heartbeat(leaseID uint64) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.reclaimExpiredLocked()
	l, ok := q.leases[leaseID]
	if !ok {
		return false
	}
	l.deadline = q.now().Add(q.lease) //bpvet:locked(q.mu) the injected clock is a non-blocking read; the extension must be atomic with the lookup
	return true
}

// Complete resolves one spec of a lease with its result. Completions
// are idempotent: the first one wins, later ones (a stolen batch both
// the original and the stealing worker finished) are counted and
// dropped — a spec is never delivered twice to a submitter. Late
// completions from an expired lease are accepted: the result is a pure
// function of the spec, so it is as good as anyone else's.
func (q *Queue) Complete(leaseID uint64, key string, res wire.Result, cached bool) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	it, ok := q.items[key]
	if !ok {
		return fmt.Errorf("fleet: complete for unknown spec %s", key)
	}
	if it.state == stateDone {
		q.stats.Duplicates++
		return nil
	}
	if _, live := q.leases[leaseID]; !live {
		q.stats.Late++
	}
	// Drop the item from wherever it now sits — its current lease (which
	// may be a different worker's, if the batch was stolen and re-leased)
	// or the pending queue — so no one re-simulates it.
	q.dropLocked(it)
	it.res, it.cached = res, cached
	q.resolveLocked(it)
	return nil
}

// Fail resolves one spec of a lease with a terminal error — the worker
// validated the spec and cannot ever run it (unknown registry name,
// malformed payload). Retrying elsewhere cannot fix such a spec, so
// the error propagates to the submitter (poisoning the sweep loudly)
// instead of bouncing the spec between workers forever.
func (q *Queue) Fail(leaseID uint64, key, msg string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	it, ok := q.items[key]
	if !ok {
		return fmt.Errorf("fleet: fail for unknown spec %s", key)
	}
	if it.state == stateDone {
		q.stats.Duplicates++
		return nil
	}
	if _, live := q.leases[leaseID]; !live {
		q.stats.Late++
	}
	q.dropLocked(it)
	if msg == "" {
		msg = "worker reported an unspecified terminal failure"
	}
	it.failMsg = msg
	q.resolveLocked(it)
	return nil
}

// Nack returns a lease's outstanding specs to the queue front — the
// drain path: a worker stopping on SIGTERM finishes what it started
// and hands the rest back immediately instead of letting the lease
// time out. keys selects a subset; nil nacks everything outstanding.
func (q *Queue) Nack(leaseID uint64, keys []string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	l, ok := q.leases[leaseID]
	if !ok {
		// Expired meanwhile: the reclaimer already re-enqueued it.
		return nil
	}
	if keys == nil {
		keys = make([]string, 0, len(l.out))
		for k := range l.out {
			keys = append(keys, k)
		}
		// Map order is random; the queue's scheduling should not be.
		sort.Strings(keys)
	}
	var back []*item
	for _, k := range keys {
		if it, out := l.out[k]; out {
			delete(l.out, k)
			it.state = statePending
			it.lease = 0
			back = append(back, it)
			q.stats.Nacked++
		}
	}
	q.pending = append(back, q.pending...)
	if len(l.out) == 0 {
		delete(q.leases, leaseID)
	}
	return nil
}

// Stats returns a snapshot of queue traffic (reclaiming any expired
// leases first, so Pending/Leased reflect reality).
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.reclaimExpiredLocked()
	st := q.stats
	st.Pending = len(q.pending)
	st.Workers = len(q.workers)
	for _, l := range q.leases {
		st.Leased += len(l.out)
	}
	return st
}

// Outstanding reports how many submitted specs are not yet resolved.
func (q *Queue) Outstanding() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for _, it := range q.items {
		if it.state != stateDone {
			n++
		}
	}
	return n
}

// resolveLocked marks an item done and wakes its submitters.
func (q *Queue) resolveLocked(it *item) {
	it.state = stateDone
	it.lease = 0
	q.stats.Done++
	close(it.done)
}

// dropLocked removes an item from the pending queue and from any lease
// holding it (used when a late completion resolves a re-enqueued
// spec: whoever was about to redo it should not).
func (q *Queue) dropLocked(it *item) {
	switch it.state {
	case statePending:
		for i, p := range q.pending {
			if p == it {
				q.pending = append(q.pending[:i:i], q.pending[i+1:]...)
				break
			}
		}
	case stateLeased:
		if l, ok := q.leases[it.lease]; ok {
			delete(l.out, it.key)
			if len(l.out) == 0 {
				delete(q.leases, it.lease)
			}
		}
	}
}

// reclaimExpiredLocked re-enqueues every expired lease's outstanding
// items at the queue front — the work-stealing half of the design: the
// next claimer (a live, fast worker) picks up the stalled cells.
func (q *Queue) reclaimExpiredLocked() {
	now := q.now()
	var expired []*lease
	for _, l := range q.leases {
		if now.After(l.deadline) {
			expired = append(expired, l)
		}
	}
	// Map order is random; steal in lease-id order so scheduling is
	// reproducible under a fake clock.
	sort.Slice(expired, func(i, j int) bool { return expired[i].id < expired[j].id })
	for _, l := range expired {
		keys := make([]string, 0, len(l.out))
		for k := range l.out {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var back []*item
		for _, k := range keys {
			it := l.out[k]
			it.state = statePending
			it.lease = 0
			back = append(back, it)
			q.stats.Stolen++
		}
		q.pending = append(back, q.pending...)
		delete(q.leases, l.id)
	}
}
