package fleet

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"xorbp/internal/wire"
)

// fakeClock is the injected queue clock: lease expiry is driven by
// explicit Advance calls, never the wall.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2021, 12, 5, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// qspec builds distinct minimal specs; the queue keys on Spec.Key()
// and never interprets the contents.
func qspec(i int) wire.Spec {
	return wire.Spec{Pred: "queue-test", Timer: uint64(1000 + i)}
}

// submitAsync submits a spec on a goroutine and returns channels with
// its outcome.
func submitAsync(q *Queue, spec wire.Spec) (<-chan wire.Result, <-chan error) {
	resc := make(chan wire.Result, 1)
	errc := make(chan error, 1)
	go func() {
		res, _, err := q.Submit(context.Background(), spec)
		resc <- res
		errc <- err
	}()
	return resc, errc
}

// waitPending spins until the queue holds want pending specs (Submit
// runs on goroutines; the claim must not race the enqueue).
func waitPending(t *testing.T, q *Queue, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for q.Stats().Pending < want {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d pending specs (stats %+v)", want, q.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestQueueClaimComplete(t *testing.T) {
	clk := newFakeClock()
	q := NewQueue(0, clk.Now)

	specs := []wire.Spec{qspec(0), qspec(1), qspec(2)}
	var resc [3]<-chan wire.Result
	var errc [3]<-chan error
	for i, s := range specs {
		resc[i], errc[i] = submitAsync(q, s)
	}
	waitPending(t, q, 3)

	id, claimed := q.Claim("w1", 10)
	if id == 0 || len(claimed) != 3 {
		t.Fatalf("claim: lease %d, %d specs, want a lease over 3", id, len(claimed))
	}
	for _, s := range claimed {
		if err := q.Complete(id, s.Key(), wire.Result{Cycles: s.Timer}, false); err != nil {
			t.Fatal(err)
		}
	}
	for i := range specs {
		if err := <-errc[i]; err != nil {
			t.Fatal(err)
		}
		if res := <-resc[i]; res.Cycles != specs[i].Timer {
			t.Fatalf("spec %d: got cycles %d, want %d", i, res.Cycles, specs[i].Timer)
		}
	}
	st := q.Stats()
	if st.Done != 3 || st.Pending != 0 || st.Leased != 0 {
		t.Fatalf("stats after completion: %+v", st)
	}
	if _, more := q.Claim("w1", 10); more != nil {
		t.Fatal("claim on an empty queue returned specs")
	}
}

func TestQueueLeaseExpirySteals(t *testing.T) {
	clk := newFakeClock()
	q := NewQueue(10*time.Second, clk.Now)

	resc, errc := submitAsync(q, qspec(0))
	waitPending(t, q, 1)

	dead, specs := q.Claim("dead-worker", 10)
	if dead == 0 || len(specs) != 1 {
		t.Fatalf("claim: lease %d over %d specs", dead, len(specs))
	}
	// Before expiry nothing is stealable.
	if id, _ := q.Claim("thief", 10); id != 0 {
		t.Fatal("live lease was stolen")
	}
	clk.Advance(11 * time.Second)
	thief, stolen := q.Claim("thief", 10)
	if thief == 0 || len(stolen) != 1 || stolen[0].Key() != qspec(0).Key() {
		t.Fatalf("expired lease not stolen: lease %d, specs %v", thief, stolen)
	}
	if live := q.Heartbeat(dead); live {
		t.Fatal("heartbeat revived an expired lease")
	}
	if err := q.Complete(thief, stolen[0].Key(), wire.Result{Cycles: 7}, false); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if res := <-resc; res.Cycles != 7 {
		t.Fatalf("stolen spec resolved with cycles %d, want 7", res.Cycles)
	}
	if st := q.Stats(); st.Stolen != 1 {
		t.Fatalf("stats.Stolen = %d, want 1 (%+v)", st.Stolen, st)
	}
}

func TestQueueHeartbeatExtendsLease(t *testing.T) {
	clk := newFakeClock()
	q := NewQueue(10*time.Second, clk.Now)

	_, errc := submitAsync(q, qspec(0))
	waitPending(t, q, 1)
	id, _ := q.Claim("w1", 10)

	for i := 0; i < 3; i++ {
		clk.Advance(8 * time.Second)
		if !q.Heartbeat(id) {
			t.Fatalf("heartbeat %d lost a live lease", i)
		}
	}
	if thief, _ := q.Claim("thief", 10); thief != 0 {
		t.Fatal("heartbeated lease was stolen")
	}
	if err := q.Complete(id, qspec(0).Key(), wire.Result{Cycles: 1}, false); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

func TestQueueLateAndDuplicateCompletions(t *testing.T) {
	clk := newFakeClock()
	q := NewQueue(10*time.Second, clk.Now)

	resc, errc := submitAsync(q, qspec(0))
	waitPending(t, q, 1)
	key := qspec(0).Key()

	slow, _ := q.Claim("slow", 10)
	clk.Advance(11 * time.Second)
	fast, stolen := q.Claim("fast", 10)
	if fast == 0 || len(stolen) != 1 {
		t.Fatalf("steal failed: lease %d over %d specs", fast, len(stolen))
	}

	// The slow worker finishes anyway: its lease is gone, but the result
	// is a pure function of the spec, so it is accepted (Late) — and it
	// must be pulled out of the fast worker's lease so nobody redoes it.
	if err := q.Complete(slow, key, wire.Result{Cycles: 42}, false); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if res := <-resc; res.Cycles != 42 {
		t.Fatalf("late completion delivered cycles %d, want 42", res.Cycles)
	}
	// The fast worker's completion of the same spec is a dropped
	// duplicate, not an error and not a second delivery.
	if err := q.Complete(fast, key, wire.Result{Cycles: 99}, false); err != nil {
		t.Fatal(err)
	}
	st := q.Stats()
	if st.Late != 1 || st.Duplicates != 1 || st.Done != 1 || st.Leased != 0 {
		t.Fatalf("stats after late+duplicate: %+v", st)
	}
}

func TestQueueNackReturnsToFront(t *testing.T) {
	clk := newFakeClock()
	q := NewQueue(0, clk.Now)

	for i := 0; i < 4; i++ {
		submitAsync(q, qspec(i))
	}
	waitPending(t, q, 4)

	id, claimed := q.Claim("draining", 2)
	if len(claimed) != 2 {
		t.Fatalf("claimed %d specs, want 2", len(claimed))
	}
	if err := q.Nack(id, nil); err != nil {
		t.Fatal(err)
	}
	st := q.Stats()
	if st.Nacked != 2 || st.Pending != 4 || st.Leased != 0 {
		t.Fatalf("stats after nack: %+v", st)
	}
	// Nacked work comes back at the queue front: the next claim must
	// hand out exactly the two returned specs first.
	_, next := q.Claim("successor", 2)
	got := map[string]bool{next[0].Key(): true, next[1].Key(): true}
	if !got[claimed[0].Key()] || !got[claimed[1].Key()] {
		t.Fatalf("nacked specs were not re-dispatched first: got %v, want %v and %v",
			got, claimed[0].Key(), claimed[1].Key())
	}
	// Nacking a dead lease is a quiet no-op (the reclaimer owns it now).
	if err := q.Nack(9999, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQueueFailPropagatesToSubmitter(t *testing.T) {
	clk := newFakeClock()
	q := NewQueue(0, clk.Now)

	_, errc := submitAsync(q, qspec(0))
	waitPending(t, q, 1)
	id, _ := q.Claim("w1", 1)
	if err := q.Fail(id, qspec(0).Key(), "unknown codec nope"); err != nil {
		t.Fatal(err)
	}
	err := <-errc
	if err == nil || !strings.Contains(err.Error(), "unknown codec nope") {
		t.Fatalf("submitter error = %v, want the worker's terminal message", err)
	}
}

func TestQueueSubmitCoalescesDuplicates(t *testing.T) {
	clk := newFakeClock()
	q := NewQueue(0, clk.Now)

	ra, ea := submitAsync(q, qspec(0))
	rb, eb := submitAsync(q, qspec(0))
	waitPending(t, q, 1)
	if st := q.Stats(); st.Submitted != 1 {
		t.Fatalf("two submits of one spec enqueued %d items", st.Submitted)
	}
	id, specs := q.Claim("w1", 10)
	if len(specs) != 1 {
		t.Fatalf("claimed %d specs, want the coalesced 1", len(specs))
	}
	if err := q.Complete(id, specs[0].Key(), wire.Result{Cycles: 5}, true); err != nil {
		t.Fatal(err)
	}
	for _, ec := range []<-chan error{ea, eb} {
		if err := <-ec; err != nil {
			t.Fatal(err)
		}
	}
	if (<-ra).Cycles != 5 || (<-rb).Cycles != 5 {
		t.Fatal("coalesced submitters disagree on the result")
	}
}

func TestQueueSubmitHonorsContext(t *testing.T) {
	clk := newFakeClock()
	q := NewQueue(0, clk.Now)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := q.Submit(ctx, qspec(0)); err == nil {
		t.Fatal("Submit returned despite a cancelled context and no worker")
	}
}
