package fleet

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"xorbp/internal/wire"
)

// The queue wire protocol: every message carries the leader's schema
// version implicitly (claims echo it; a worker on a different schema
// must refuse the batch rather than compute incompatible results).
// These types are leader↔worker control traffic, not cache content —
// changing them never invalidates stored results.

// ClaimRequest is the body of POST /queue/claim.
type ClaimRequest struct {
	// Worker identifies the claimer (stable per process; host:pid by
	// convention) for lease bookkeeping and the leader's log.
	Worker string `json:"worker"`
	// Max bounds the batch size handed out under one lease.
	Max int `json:"max"`
	// Schema is the worker's wire schema version. The leader refuses a
	// mismatched claim outright (409) so an incompatible worker fails
	// its first poll with a clear "rebuild one side" error instead of
	// computing results nobody can decode. Empty skips the check (the
	// worker-side check in Run still applies).
	Schema string `json:"schema,omitempty"`
}

// ClaimResponse is the reply to a claim.
type ClaimResponse struct {
	Schema string `json:"schema"`
	// Lease is 0 when no work is available; Specs is then empty and
	// WaitMS hints how long to sleep before asking again.
	Lease   uint64      `json:"lease,omitempty"`
	Specs   []wire.Spec `json:"specs,omitempty"`
	LeaseMS int64       `json:"lease_ms,omitempty"`
	WaitMS  int64       `json:"wait_ms,omitempty"`
}

// CompleteRequest is the body of POST /queue/complete: one resolved
// spec of a lease. Err marks a terminal validation failure — the spec
// can never run anywhere, so the sweep must fail loudly.
type CompleteRequest struct {
	Lease  uint64      `json:"lease"`
	Key    string      `json:"key"`
	Result wire.Result `json:"result"`
	Cached bool        `json:"cached,omitempty"`
	Err    string      `json:"error,omitempty"`
}

// HeartbeatRequest is the body of POST /queue/heartbeat.
type HeartbeatRequest struct {
	Lease uint64 `json:"lease"`
}

// HeartbeatResponse reports whether the lease is still live; a false
// Live tells the worker its batch has been forfeited to the fleet.
type HeartbeatResponse struct {
	Live bool `json:"live"`
}

// NackRequest is the body of POST /queue/nack: a draining worker hands
// the named outstanding specs of its lease back (nil/empty = all).
type NackRequest struct {
	Lease uint64   `json:"lease"`
	Keys  []string `json:"keys,omitempty"`
}

// OK is the empty success body of the queue's state-changing endpoints.
type OK struct {
	OK bool `json:"ok"`
}

// idleWait is the sleep hint handed to a worker that claimed nothing:
// long enough to keep an idle fleet's polling traffic trivial, short
// enough that a burst of submissions is picked up promptly.
const idleWait = 200 * time.Millisecond

// maxQueueBody bounds a queue-endpoint request body. A claim or nack
// is tiny; a complete carries one canonical result (well under a
// kilobyte). Anything larger is garbage.
const maxQueueBody = 1 << 20

// Leader serves a Queue over HTTP — the endpoint bpserve -pull workers
// poll. It shares bpserve's trust model: an optional bearer token
// (constant-time compared) authenticates peers, and the driver can
// wrap the listener in TLS for untrusted networks.
type Leader struct {
	q     *Queue
	token string
	// batches/completes count protocol traffic for the leader's log.
	claims    atomic.Uint64
	completes atomic.Uint64
}

// NewLeader wraps a queue in the HTTP protocol. token "" leaves the
// endpoint open (the trusted-LAN default).
func NewLeader(q *Queue, token string) *Leader {
	return &Leader{q: q, token: token}
}

// Queue returns the wrapped queue.
func (l *Leader) Queue() *Queue { return l.q }

// Backend returns the executor-facing half: an experiment.Backend
// whose Run submits the spec to the queue and blocks until a worker
// resolves it.
func (l *Leader) Backend() *Backend { return &Backend{q: l.q} }

// authorized checks the request's bearer token against the leader's.
func (l *Leader) authorized(r *http.Request) bool {
	if l.token == "" {
		return true
	}
	got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
	return ok && subtle.ConstantTimeCompare([]byte(got), []byte(l.token)) == 1
}

// Handler returns the queue-protocol HTTP handler.
func (l *Leader) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", l.handleHealth)
	mux.HandleFunc("/queue/claim", l.handleClaim)
	mux.HandleFunc("/queue/heartbeat", l.handleHeartbeat)
	mux.HandleFunc("/queue/complete", l.handleComplete)
	mux.HandleFunc("/queue/nack", l.handleNack)
	return mux
}

// handleHealth lets workers probe the leader before their first claim:
// reachability, schema agreement, and the live queue depth.
func (l *Leader) handleHealth(w http.ResponseWriter, r *http.Request) {
	if !l.authorized(r) {
		writeError(w, http.StatusUnauthorized, "missing or wrong bearer token")
		return
	}
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "healthz is GET-only")
		return
	}
	st := l.q.Stats()
	writeJSON(w, http.StatusOK, wire.Health{
		Status:   "ok",
		Schema:   wire.SchemaVersion(),
		Capacity: 0, // the leader simulates nothing itself
		Inflight: st.Leased,
		Runs:     uint64(st.Done),
	})
}

// decodeInto strictly parses a queue-protocol body.
func decodeInto(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxQueueBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decoding request: %v", err))
		return false
	}
	return true
}

// guard centralizes the POST+token preamble of the state-changing
// endpoints.
func (l *Leader) guard(w http.ResponseWriter, r *http.Request) bool {
	if !l.authorized(r) {
		writeError(w, http.StatusUnauthorized, "missing or wrong bearer token")
		return false
	}
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "queue endpoints are POST-only")
		return false
	}
	return true
}

func (l *Leader) handleClaim(w http.ResponseWriter, r *http.Request) {
	if !l.guard(w, r) {
		return
	}
	var req ClaimRequest
	if !decodeInto(w, r, &req) {
		return
	}
	if req.Schema != "" && req.Schema != wire.SchemaVersion() {
		writeError(w, http.StatusConflict,
			fmt.Sprintf("worker %s runs schema %q, this leader %q — rebuild one side",
				req.Worker, req.Schema, wire.SchemaVersion()))
		return
	}
	id, specs := l.q.Claim(req.Worker, req.Max)
	resp := ClaimResponse{Schema: wire.SchemaVersion()}
	if id == 0 {
		resp.WaitMS = int64(idleWait / time.Millisecond)
	} else {
		l.claims.Add(1)
		resp.Lease = id
		resp.Specs = specs
		resp.LeaseMS = int64(l.q.Lease() / time.Millisecond)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (l *Leader) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	if !l.guard(w, r) {
		return
	}
	var req HeartbeatRequest
	if !decodeInto(w, r, &req) {
		return
	}
	writeJSON(w, http.StatusOK, HeartbeatResponse{Live: l.q.Heartbeat(req.Lease)})
}

func (l *Leader) handleComplete(w http.ResponseWriter, r *http.Request) {
	if !l.guard(w, r) {
		return
	}
	var req CompleteRequest
	if !decodeInto(w, r, &req) {
		return
	}
	var err error
	if req.Err != "" {
		err = l.q.Fail(req.Lease, req.Key, req.Err)
	} else {
		err = l.q.Complete(req.Lease, req.Key, req.Result, req.Cached)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	l.completes.Add(1)
	writeJSON(w, http.StatusOK, OK{OK: true})
}

func (l *Leader) handleNack(w http.ResponseWriter, r *http.Request) {
	if !l.guard(w, r) {
		return
	}
	var req NackRequest
	if !decodeInto(w, r, &req) {
		return
	}
	if err := l.q.Nack(req.Lease, req.Keys); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, OK{OK: true})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, wire.Error{Error: msg})
}

// Backend is the executor-facing half of the pull queue: a drop-in
// experiment.Backend (beside LocalBackend and wire.Client) whose Run
// enqueues the spec and blocks until some worker claims and resolves
// it. Fan-out comes from the executor running many Runs concurrently;
// scheduling comes from workers pulling at their own pace.
type Backend struct {
	q       *Queue
	replays atomic.Uint64
}

// Run submits one spec to the queue and waits out its resolution.
func (b *Backend) Run(ctx context.Context, spec wire.Spec) (wire.Result, error) {
	res, cached, err := b.q.Submit(ctx, spec)
	if err != nil {
		return wire.Result{}, err
	}
	if cached {
		b.replays.Add(1)
	}
	return res, nil
}

// Replays counts dispatched runs the fleet answered from worker-side
// stores instead of simulating (the pull-mode analog of
// wire.Client.Replays).
func (b *Backend) Replays() uint64 { return b.replays.Load() }
