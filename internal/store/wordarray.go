// Package store provides the secured storage primitives on which every
// predictor table is built: packed arrays of n-bit logical entries whose
// physical words pass through the isolation Guard's content codec on every
// access, plus the per-entry owner tracking Precise Flush requires.
//
// The word-granularity layout mirrors the paper's observation that "the
// physical implementation of the table using SRAM is most likely using a
// wider row already" (§5.2): a 4K-entry 2-bit PHT is physically 128
// 64-bit words here, and Enhanced-XOR-PHT encodes whole words with a
// word-indexed key schedule.
package store

import (
	"xorbp/internal/bitutil"
	"xorbp/internal/core"
	"xorbp/internal/snap"
)

// WordArray is an array of 2^indexBits logical entries, each entryBits
// wide (1..64, power-of-two packing within 64-bit words). All reads and
// writes are mediated by the Guard: contents are encoded with the
// accessing domain's content key (XOR-BP) and, for sub-word entries, the
// word-indexed Enhanced schedule when enabled.
//
// Index scrambling is deliberately NOT applied here: tables differ in
// which bits form the index (PC bits, history hashes, ...), so predictors
// scramble indexes themselves via Guard.ScrambleIndex before calling Get
// and Set. WordArray is purely the content-encoding layer.
type WordArray struct {
	guard     *core.Guard
	words     []uint64
	entryBits uint
	perWord   uint // logical entries per 64-bit word
	indexBits uint
	initWords []uint64 // physical word pattern restored by a flush

	// Hot-path precomputation: perWord is always a power of two (64 is
	// only divisible by powers of two; awkward widths use one entry per
	// word), so locate reduces to a shift and a mask. plain records a
	// pass-through guard, skipping the codec calls entirely — Get/Set
	// are the innermost operations of every predictor access.
	wordShift  uint   // log2(perWord)
	slotMask   uint64 // perWord - 1
	entryMask  uint64 // Mask(entryBits)
	entryShift uint64 // log2(entryBits) for packed layouts (slot * entryBits == slot << entryShift)
	plain      bool   // guard performs no content encoding

	// owners tracks the hardware thread that last wrote each *word* (the
	// paper's Precise Flush augments entries with thread IDs; tracking at
	// word granularity models the SRAM-row reality and is strictly
	// coarser, i.e. flushes at least as much). nil unless the guard's
	// mechanism needs it.
	owners []core.HWThread
	valid  []bool
}

// NewWordArray builds an array of 2^indexBits entries of entryBits bits.
// initValue is the per-entry reset value (e.g. a weak saturating-counter
// state); it is replicated into every word on construction and on flushes.
func NewWordArray(guard *core.Guard, indexBits, entryBits uint, initValue uint64) *WordArray {
	return NewWordArrayInit(guard, indexBits, entryBits,
		func(uint64) uint64 { return initValue })
}

// NewWordArrayInit builds an array whose reset value varies per entry
// (initFn maps entry index to reset value). Hardware uses this for
// structures whose entries must reset to distinct values — e.g. a local
// history table reset to the row index so freshly-flushed branches do not
// all alias onto the zero-pattern counter.
func NewWordArrayInit(guard *core.Guard, indexBits, entryBits uint, initFn func(idx uint64) uint64) *WordArray {
	if entryBits == 0 || entryBits > 64 {
		panic("store: entry width out of range")
	}
	// Divisor widths pack 64/entryBits entries per word; awkward widths
	// (11, 52, ...) get one entry per word, which only costs simulator
	// memory, not modelled SRAM bits.
	perWord := uint(1)
	if 64%entryBits == 0 {
		perWord = 64 / entryBits
	}
	entries := uint(1) << indexBits
	nWords := (entries + perWord - 1) / perWord

	a := &WordArray{
		guard:     guard,
		words:     make([]uint64, nWords),
		entryBits: entryBits,
		perWord:   perWord,
		indexBits: indexBits,
		initWords: make([]uint64, nWords),
		wordShift: bitutil.Log2(uint64(perWord)),
		slotMask:  uint64(perWord) - 1,
		entryMask: bitutil.Mask(entryBits),
		plain:     !guard.Encodes(),
	}
	if perWord > 1 {
		// Packed layouts only exist for power-of-two entry widths (the
		// divisors of 64), so the slot-to-bit-offset multiply is a shift.
		a.entryShift = uint64(bitutil.Log2(uint64(entryBits)))
	}
	for idx := uint64(0); idx < uint64(entries); idx++ {
		word, shift := a.locate(idx)
		a.initWords[word] |= (initFn(idx) & bitutil.Mask(entryBits)) << shift
	}
	copy(a.words, a.initWords)
	if guard.TracksOwners() {
		a.owners = make([]core.HWThread, nWords)
		a.valid = make([]bool, nWords)
	}
	return a
}

// Len returns the number of logical entries.
func (a *WordArray) Len() uint64 { return 1 << a.indexBits }

// IndexBits returns the index width in bits.
func (a *WordArray) IndexBits() uint { return a.indexBits }

// EntryBits returns the logical entry width in bits.
func (a *WordArray) EntryBits() uint { return a.entryBits }

// locate maps a logical index to (word, bit offset).
func (a *WordArray) locate(idx uint64) (word uint64, shift uint) {
	return idx >> a.wordShift, uint(idx&a.slotMask) * a.entryBits
}

// Get reads entry idx as domain d, decoding the containing word with d's
// content key. Reading a word written by a different domain (or before a
// key rotation) therefore yields noise — the content-isolation property.
// The pass-through case is kept small enough to inline into predictor
// lookup loops; the encoded case pays one out-of-line call.
//
//bpvet:hotpath
func (a *WordArray) Get(d core.Domain, idx uint64) uint64 {
	if a.plain {
		return (a.words[idx>>a.wordShift] >> ((idx & a.slotMask) << a.entryShift)) & a.entryMask
	}
	return a.getEncoded(d, idx)
}

func (a *WordArray) getEncoded(d core.Domain, idx uint64) uint64 {
	word, shift := a.locate(idx)
	w := a.guard.DecodeWord(a.words[word], d, word)
	return (w >> shift) & a.entryMask
}

// Set writes entry idx as domain d: the containing word is decoded,
// modified, and re-encoded with d's key, modelling the hardware
// read-modify-write of a sub-word update (§5.2 "the original counter needs
// to be read out of the PHT (and decoded) first before being updated,
// re-encoded, and written back").
//
//bpvet:hotpath
func (a *WordArray) Set(d core.Domain, idx uint64, v uint64) {
	word, shift := a.locate(idx)
	w := a.words[word]
	if !a.plain {
		w = a.guard.DecodeWord(w, d, word)
	}
	m := a.entryMask << shift
	w = (w &^ m) | ((v << shift) & m)
	if !a.plain {
		w = a.guard.EncodeWord(w, d, word)
	}
	a.words[word] = w
	if a.owners != nil {
		a.owners[word] = d.Thread
		a.valid[word] = true
	}
}

// Update applies fn to entry idx under domain d in one decode/encode pass.
//
//bpvet:hotpath
func (a *WordArray) Update(d core.Domain, idx uint64, fn func(uint64) uint64) {
	word, shift := a.locate(idx)
	w := a.words[word]
	if !a.plain {
		w = a.guard.DecodeWord(w, d, word)
	}
	old := (w >> shift) & a.entryMask
	v := fn(old) & a.entryMask
	m := a.entryMask << shift
	w = (w &^ m) | (v << shift)
	if !a.plain {
		w = a.guard.EncodeWord(w, d, word)
	}
	a.words[word] = w
	if a.owners != nil {
		a.owners[word] = d.Thread
		a.valid[word] = true
	}
}

// FlushAll resets every entry to the init value (Complete Flush).
//
//bpvet:hotpath
func (a *WordArray) FlushAll() {
	copy(a.words, a.initWords)
	if a.owners != nil {
		for i := range a.valid {
			a.valid[i] = false
		}
	}
}

// FlushThread resets words last written by thread t (Precise Flush). On an
// array without owner tracking it degrades to FlushAll, mirroring the
// paper's point that precise flushing requires the extra thread-ID state.
//
//bpvet:hotpath
func (a *WordArray) FlushThread(t core.HWThread) {
	if a.owners == nil {
		a.FlushAll()
		return
	}
	for i := range a.words {
		if a.valid[i] && a.owners[i] == t {
			a.words[i] = a.initWords[i]
			a.valid[i] = false
		}
	}
}

// Snapshot writes the physical words and, when owner tracking is active,
// the per-word owner/valid metadata. Words are serialized exactly as
// stored — still encoded under whatever keys were live — so a snapshot
// round-trips byte-identically without consulting the guard; the key file
// restores separately and the pairing stays consistent.
func (a *WordArray) Snapshot(w *snap.Writer) {
	w.U64s(a.words)
	w.Bool(a.owners != nil)
	if a.owners != nil {
		for i := range a.owners {
			w.U8(uint8(a.owners[i]))
			w.Bool(a.valid[i])
		}
	}
}

// Restore replaces the physical words and owner metadata. The snapshot
// must come from an array of identical geometry and owner-tracking mode.
func (a *WordArray) Restore(r *snap.Reader) {
	r.U64sInto(a.words)
	tracked := r.Bool()
	if tracked != (a.owners != nil) {
		r.Fail("owner tracking mismatch: snapshot %v, array %v", tracked, a.owners != nil)
		return
	}
	if a.owners != nil {
		for i := range a.owners {
			a.owners[i] = core.HWThread(r.U8())
			a.valid[i] = r.Bool()
		}
	}
}

// StorageBits returns the number of SRAM bits the array occupies
// (logical payload only, excluding owner metadata), for the hardware cost
// model and for configuration reporting.
func (a *WordArray) StorageBits() uint64 {
	return uint64(a.Len()) * uint64(a.entryBits)
}
