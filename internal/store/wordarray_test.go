package store

import (
	"testing"
	"testing/quick"

	"xorbp/internal/core"
)

func guardFor(m core.Mechanism, enhanced bool) *core.Guard {
	o := core.OptionsFor(m)
	o.EnhancedPHT = enhanced
	return core.NewController(o, 1).Guard(42, core.StructAll)
}

func TestWordArrayRoundTripSameDomain(t *testing.T) {
	for _, m := range []core.Mechanism{core.Baseline, core.XOR, core.NoisyXOR} {
		for _, entryBits := range []uint{1, 2, 4, 8, 11, 16, 32, 64} {
			a := NewWordArray(guardFor(m, true), 6, entryBits, 0)
			d := core.Domain{Thread: 0, Priv: core.User}
			for i := uint64(0); i < a.Len(); i++ {
				v := (i * 0x9e37) & ((1 << entryBits) - 1)
				a.Set(d, i, v)
			}
			for i := uint64(0); i < a.Len(); i++ {
				want := (i * 0x9e37) & ((1 << entryBits) - 1)
				if got := a.Get(d, i); got != want {
					t.Fatalf("%v w=%d: entry %d = %d, want %d", m, entryBits, i, got, want)
				}
			}
		}
	}
}

func TestWordArrayNeighboursUnaffected(t *testing.T) {
	// Writing one 2-bit entry must not disturb its word neighbours as seen
	// by the same domain.
	a := NewWordArray(guardFor(core.NoisyXOR, true), 8, 2, 1)
	d := core.Domain{Thread: 0, Priv: core.User}
	for i := uint64(0); i < 64; i++ {
		a.Set(d, i, 1)
	}
	a.Set(d, 10, 3)
	for i := uint64(0); i < 64; i++ {
		want := uint64(1)
		if i == 10 {
			want = 3
		}
		if got := a.Get(d, i); got != want {
			t.Fatalf("entry %d = %d, want %d", i, got, want)
		}
	}
}

func TestWordArrayCrossDomainNoise(t *testing.T) {
	// A value written by thread 0 must not be readable by thread 1 under
	// an encoding mechanism (with overwhelming probability for 32-bit
	// entries).
	a := NewWordArray(guardFor(core.XOR, true), 4, 32, 0)
	d0 := core.Domain{Thread: 0, Priv: core.User}
	d1 := core.Domain{Thread: 1, Priv: core.User}
	a.Set(d0, 3, 0xdeadbeef)
	if a.Get(d1, 3) == 0xdeadbeef {
		t.Fatal("cross-thread read decoded successfully")
	}
	if a.Get(d0, 3) != 0xdeadbeef {
		t.Fatal("same-thread read failed")
	}
}

func TestWordArrayKeyRotationInvalidates(t *testing.T) {
	o := core.OptionsFor(core.NoisyXOR)
	ctrl := core.NewController(o, 7)
	a := NewWordArray(ctrl.Guard(0, core.StructAll), 4, 32, 0)
	d := core.Domain{Thread: 0, Priv: core.User}
	a.Set(d, 5, 0xcafe1234)
	ctrl.ContextSwitch(0)
	if a.Get(d, 5) == 0xcafe1234 {
		t.Fatal("residual state readable after key rotation")
	}
}

func TestWordArrayBaselineSharedState(t *testing.T) {
	// The vulnerable baseline: thread 1 reads thread 0's value directly.
	a := NewWordArray(guardFor(core.Baseline, false), 4, 32, 0)
	d0 := core.Domain{Thread: 0, Priv: core.User}
	d1 := core.Domain{Thread: 1, Priv: core.User}
	a.Set(d0, 3, 0xdeadbeef)
	if a.Get(d1, 3) != 0xdeadbeef {
		t.Fatal("baseline should share contents across threads")
	}
}

func TestWordArrayFlushAll(t *testing.T) {
	a := NewWordArray(guardFor(core.CompleteFlush, false), 5, 2, 1)
	d := core.Domain{Thread: 0, Priv: core.User}
	a.Set(d, 0, 3)
	a.FlushAll()
	if a.Get(d, 0) != 1 {
		t.Fatalf("flush did not restore init value: %d", a.Get(d, 0))
	}
}

func TestWordArrayPreciseFlush(t *testing.T) {
	// Owner tracking: flushing thread 0 must clear its words but keep
	// thread 1's (different words).
	a := NewWordArray(guardFor(core.PreciseFlush, false), 4, 64, 0)
	d0 := core.Domain{Thread: 0, Priv: core.User}
	d1 := core.Domain{Thread: 1, Priv: core.User}
	a.Set(d0, 1, 111)
	a.Set(d1, 2, 222)
	a.FlushThread(0)
	if a.Get(d0, 1) != 0 {
		t.Fatal("thread 0's entry survived its flush")
	}
	if a.Get(d1, 2) != 222 {
		t.Fatal("thread 1's entry was flushed with thread 0")
	}
}

func TestWordArrayPreciseFlushWithoutOwnersDegrades(t *testing.T) {
	// Without owner metadata (non-PreciseFlush guard), FlushThread must
	// conservatively clear everything.
	a := NewWordArray(guardFor(core.CompleteFlush, false), 4, 8, 0)
	d := core.Domain{Thread: 1, Priv: core.User}
	a.Set(d, 1, 9)
	a.FlushThread(0)
	if a.Get(d, 1) != 0 {
		t.Fatal("owner-less FlushThread did not degrade to FlushAll")
	}
}

func TestWordArrayUpdate(t *testing.T) {
	a := NewWordArray(guardFor(core.NoisyXOR, true), 6, 2, 1)
	d := core.Domain{Thread: 0, Priv: core.User}
	// Note: before the first write by this domain, the entry decodes as
	// noise (the init pattern is not valid data for any key) — exactly the
	// paper's post-rotation behaviour. Write first, then update.
	a.Set(d, 7, 1)
	a.Update(d, 7, func(v uint64) uint64 { return v + 1 })
	if a.Get(d, 7) != 2 {
		t.Fatalf("update result %d, want 2", a.Get(d, 7))
	}
	// Updates mask to the entry width.
	a.Update(d, 7, func(v uint64) uint64 { return 0xff })
	if a.Get(d, 7) != 3 {
		t.Fatalf("update did not mask: %d", a.Get(d, 7))
	}
}

func TestWordArrayProperties(t *testing.T) {
	// Property: for any sequence of writes in one domain, the last write
	// per index wins.
	a := NewWordArray(guardFor(core.NoisyXOR, true), 6, 4, 0)
	d := core.Domain{Thread: 2, Priv: core.Kernel}
	last := map[uint64]uint64{}
	f := func(idx8 uint8, v8 uint8) bool {
		idx := uint64(idx8) % a.Len()
		v := uint64(v8) & 0xf
		a.Set(d, idx, v)
		last[idx] = v
		return a.Get(d, idx) == last[idx]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestWordArrayStorageBits(t *testing.T) {
	a := NewWordArray(guardFor(core.Baseline, false), 12, 2, 0)
	if a.StorageBits() != 4096*2 {
		t.Fatalf("StorageBits = %d, want 8192", a.StorageBits())
	}
}

func TestWordArrayInitValue(t *testing.T) {
	a := NewWordArray(guardFor(core.Baseline, false), 3, 2, 2)
	d := core.Domain{Thread: 0, Priv: core.User}
	for i := uint64(0); i < a.Len(); i++ {
		if a.Get(d, i) != 2 {
			t.Fatalf("entry %d init = %d, want 2", i, a.Get(d, i))
		}
	}
}

func TestWordArrayPanicsOnBadWidth(t *testing.T) {
	for _, w := range []uint{0, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("width %d did not panic", w)
				}
			}()
			NewWordArray(guardFor(core.Baseline, false), 3, w, 0)
		}()
	}
}
