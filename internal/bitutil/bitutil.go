// Package bitutil provides the small hardware-flavoured building blocks
// shared by every predictor in this repository: saturating counters,
// global/path/local history registers, the folded (cyclic-shift-register)
// histories used by TAGE-family indexing, and a Zipf sampler used by the
// workload generators.
package bitutil

import (
	"math"

	"xorbp/internal/rng"
	"xorbp/internal/snap"
)

// SatCounter is an n-bit unsigned saturating counter, the basic storage
// cell of pattern history tables. The zero value is a 2-bit counter at 0.
type SatCounter struct {
	value uint8
	max   uint8
}

// NewSatCounter returns an n-bit counter (1 <= bits <= 8) initialized to v.
func NewSatCounter(bits uint, v uint8) SatCounter {
	if bits == 0 || bits > 8 {
		panic("bitutil: SatCounter width out of range")
	}
	c := SatCounter{max: uint8(1<<bits - 1)}
	c.Set(v)
	return c
}

// Inc increments towards the maximum, saturating.
//
//bpvet:hotpath
func (c *SatCounter) Inc() {
	if c.value < c.max {
		c.value++
	}
}

// Dec decrements towards zero, saturating.
//
//bpvet:hotpath
func (c *SatCounter) Dec() {
	if c.value > 0 {
		c.value--
	}
}

// Update increments on taken, decrements otherwise.
//
//bpvet:hotpath
func (c *SatCounter) Update(taken bool) {
	if taken {
		c.Inc()
	} else {
		c.Dec()
	}
}

// Taken reports the predicted direction: the counter's MSB.
//
//bpvet:hotpath
func (c *SatCounter) Taken() bool { return c.value > c.max/2 }

// Value returns the raw counter value.
//
//bpvet:hotpath
func (c *SatCounter) Value() uint8 { return c.value }

// Max returns the saturation ceiling.
//
//bpvet:hotpath
func (c *SatCounter) Max() uint8 { return c.max }

// Set clamps v into range and stores it.
//
//bpvet:hotpath
func (c *SatCounter) Set(v uint8) {
	if c.max == 0 {
		c.max = 3 // zero value behaves as a 2-bit counter
	}
	if v > c.max {
		v = c.max
	}
	c.value = v
}

// Weak reports whether the counter is in one of the two central (weak)
// states. For even widths this is the pair around the midpoint.
//
//bpvet:hotpath
func (c *SatCounter) Weak() bool {
	mid := c.max / 2
	return c.value == mid || c.value == mid+1
}

// Snapshot writes the counter value (the width is static configuration).
func (c *SatCounter) Snapshot(w *snap.Writer) { w.U8(c.value) }

// Restore replaces the counter value, clamped to the configured width so a
// corrupt snapshot cannot produce an out-of-range counter.
func (c *SatCounter) Restore(r *snap.Reader) {
	v := r.U8()
	if c.max != 0 && v > c.max {
		v = c.max
	}
	c.value = v
}

// SignedCounter is an n-bit signed saturating counter in
// [-2^(bits-1), 2^(bits-1)-1], used by TAGE usefulness/USEALT counters and
// GEHL weight tables.
type SignedCounter struct {
	value int16
	min   int16
	max   int16
}

// NewSignedCounter returns a signed counter of the given width (2..15 bits)
// initialized to v (clamped).
func NewSignedCounter(bits uint, v int16) SignedCounter {
	if bits < 2 || bits > 15 {
		panic("bitutil: SignedCounter width out of range")
	}
	c := SignedCounter{
		min: -(1 << (bits - 1)),
		max: 1<<(bits-1) - 1,
	}
	c.Set(v)
	return c
}

// Inc saturating-increments.
//
//bpvet:hotpath
func (c *SignedCounter) Inc() {
	if c.value < c.max {
		c.value++
	}
}

// Dec saturating-decrements.
//
//bpvet:hotpath
func (c *SignedCounter) Dec() {
	if c.value > c.min {
		c.value--
	}
}

// Update increments on up, decrements otherwise.
//
//bpvet:hotpath
func (c *SignedCounter) Update(up bool) {
	if up {
		c.Inc()
	} else {
		c.Dec()
	}
}

// Value returns the current value.
//
//bpvet:hotpath
func (c *SignedCounter) Value() int16 { return c.value }

// Set clamps v into range and stores it.
//
//bpvet:hotpath
func (c *SignedCounter) Set(v int16) {
	if c.min == 0 && c.max == 0 {
		c.min, c.max = -4, 3 // zero value behaves as 3-bit
	}
	if v < c.min {
		v = c.min
	}
	if v > c.max {
		v = c.max
	}
	c.value = v
}

// Min and Max return the saturation bounds.
//
//bpvet:hotpath
func (c *SignedCounter) Min() int16 { return c.min }

// Max returns the upper saturation bound.
//
//bpvet:hotpath
func (c *SignedCounter) Max() int16 { return c.max }

// Snapshot writes the counter value.
func (c *SignedCounter) Snapshot(w *snap.Writer) { w.U16(uint16(c.value)) }

// Restore replaces the counter value, clamped to the configured range.
func (c *SignedCounter) Restore(r *snap.Reader) {
	v := int16(r.U16())
	if c.min != 0 || c.max != 0 {
		if v < c.min {
			v = c.min
		}
		if v > c.max {
			v = c.max
		}
	}
	c.value = v
}

// History is a shift register of branch outcomes of bounded length,
// supporting the long histories (up to 3000 bits for TAGE_SC_L) as a bit
// vector. Bit 0 is the most recent outcome.
type History struct {
	bits   []uint64
	length uint
}

// NewHistory returns a history register holding length outcome bits.
func NewHistory(length uint) *History {
	if length == 0 {
		panic("bitutil: zero-length history")
	}
	return &History{
		bits:   make([]uint64, (length+63)/64),
		length: length,
	}
}

// Len returns the register length in bits.
//
//bpvet:hotpath
func (h *History) Len() uint { return h.length }

// Push shifts in a new outcome as bit 0.
//
//bpvet:hotpath
func (h *History) Push(taken bool) {
	carry := uint64(0)
	if taken {
		carry = 1
	}
	for i := range h.bits {
		next := h.bits[i] >> 63
		h.bits[i] = h.bits[i]<<1 | carry
		carry = next
	}
	// Mask off bits beyond the configured length.
	top := h.length % 64
	if top != 0 {
		h.bits[len(h.bits)-1] &= (1 << top) - 1
	}
}

// Bit returns outcome i (0 = most recent). Out-of-range bits read as 0.
//
//bpvet:hotpath
func (h *History) Bit(i uint) uint64 {
	if i >= h.length {
		return 0
	}
	return (h.bits[i/64] >> (i % 64)) & 1
}

// Low returns the least significant n bits (n <= 64) as an integer.
//
//bpvet:hotpath
func (h *History) Low(n uint) uint64 {
	if n > 64 {
		panic("bitutil: History.Low beyond 64 bits")
	}
	v := h.bits[0]
	if n < 64 {
		v &= (1 << n) - 1
	}
	return v
}

// Reset clears the register.
//
//bpvet:hotpath
func (h *History) Reset() {
	for i := range h.bits {
		h.bits[i] = 0
	}
}

// Clone returns an independent copy (used to snapshot per-thread state).
func (h *History) Clone() *History {
	c := &History{bits: make([]uint64, len(h.bits)), length: h.length}
	copy(c.bits, h.bits)
	return c
}

// Snapshot writes the outcome bits (the length is static configuration).
func (h *History) Snapshot(w *snap.Writer) { w.U64s(h.bits) }

// Restore replaces the outcome bits. The snapshot must have been taken
// from a register of the same length.
func (h *History) Restore(r *snap.Reader) { r.U64sInto(h.bits) }

// Folded maintains a cyclically-folded image of a long history, the
// standard TAGE trick: an L-bit history is compressed into W bits such
// that pushing one outcome and retiring the outcome that falls off the far
// end costs O(1). See Seznec's TAGE papers.
// The metadata fields are deliberately narrow (histories are at most a
// few thousand bits): a Folded is 16 bytes, so a predictor's whole fold
// bank spans a handful of cache lines.
type Folded struct {
	comp     uint64
	origLen  uint16 // L: history length being folded
	compLen  uint16 // W: folded width
	outPoint uint16 // position where the oldest bit re-enters
}

// NewFolded returns a folder compressing origLen history bits to compLen.
func NewFolded(origLen, compLen uint) *Folded {
	if compLen == 0 || compLen > 63 {
		panic("bitutil: folded width out of range")
	}
	if origLen > 1<<16-1 {
		panic("bitutil: folded history too long")
	}
	return &Folded{
		origLen:  uint16(origLen),
		compLen:  uint16(compLen),
		outPoint: uint16(origLen % compLen),
	}
}

// Update incorporates a new outcome given the full history register h,
// which must already contain the new outcome at bit 0. The bit leaving the
// window is h.Bit(origLen), i.e. the one just pushed past the end.
//
//bpvet:hotpath
func (f *Folded) Update(h *History) {
	f.UpdateBits(h.Bit(0), h.Bit(uint(f.origLen)))
}

// UpdateBits incorporates a push given the entering bit (history bit 0
// after the push) and the bit leaving the fold's window (history bit
// origLen). Predictors that maintain several folds over the same history
// length — TAGE keeps three per table — read the two bits once and share
// them across the folds; this is the simulator's hottest loop.
//
//bpvet:hotpath
func (f *Folded) UpdateBits(in, out uint64) {
	f.comp = (f.comp << 1) | in
	f.comp ^= out << f.outPoint
	f.comp ^= f.comp >> f.compLen
	f.comp &= (1 << f.compLen) - 1
}

// Value returns the folded image.
//
//bpvet:hotpath
func (f *Folded) Value() uint64 { return f.comp }

// Reset clears the folded image (call together with History.Reset).
//
//bpvet:hotpath
func (f *Folded) Reset() { f.comp = 0 }

// Snapshot writes the folded image (the fold geometry is static).
func (f *Folded) Snapshot(w *snap.Writer) { w.U64(f.comp) }

// Restore replaces the folded image, masked to the fold width so corrupt
// input cannot set bits a live fold could never hold.
func (f *Folded) Restore(r *snap.Reader) {
	v := r.U64()
	if f.compLen != 0 {
		v &= (1 << f.compLen) - 1
	}
	f.comp = v
}

// FoldLane advances a contiguous lane of folds by one history push, with
// one leaving bit per fold. It is the lane-packed form of calling
// UpdateBits on each fold in turn: TAGE-family predictors keep their folds
// in three parallel lanes (index, tag-0, tag-1) over the same table order,
// gather the leaving bits once per push, and run this loop once per lane.
// The loop body keeps the fold image in a register and touches each Folded
// exactly once, so a whole lane streams through in a few cache lines.
// outs[i] is the bit leaving fold i's window (history bit origLen(i)).
//
//bpvet:hotpath
func FoldLane(fs []Folded, in uint64, outs []uint64) {
	if len(outs) < len(fs) {
		panic("bitutil: FoldLane outs shorter than lane")
	}
	for i := range fs {
		f := &fs[i]
		c := (f.comp << 1) | in
		c ^= outs[i] << f.outPoint
		c ^= c >> f.compLen
		f.comp = c & (1<<f.compLen - 1)
	}
}

// Mask returns a value with the low n bits set. n must be <= 64.
//
//bpvet:hotpath
func Mask(n uint) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (1 << n) - 1
}

// Log2 returns floor(log2(n)) for n >= 1.
//
//bpvet:hotpath
func Log2(n uint64) uint {
	var l uint
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

// IsPow2 reports whether n is a power of two (n >= 1).
//
//bpvet:hotpath
func IsPow2(n uint64) bool { return n != 0 && n&(n-1) == 0 }

// Zipf samples ranks in [0, n) with probability proportional to
// 1/(rank+1)^s, the standard model for hot/cold branch popularity in the
// synthetic workloads. It precomputes the CDF for O(log n) sampling.
type Zipf struct {
	cdf []float64
}

// NewZipf returns a sampler over n ranks with exponent s > 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("bitutil: Zipf over empty domain")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1.0 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf}
}

// Sample draws a rank using g.
//
//bpvet:hotpath
func (z *Zipf) Sample(g *rng.Xoshiro256) int {
	u := g.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
