package bitutil

import (
	"fmt"
	"testing"
	"testing/quick"

	"xorbp/internal/rng"
)

func TestSatCounterSaturation(t *testing.T) {
	c := NewSatCounter(2, 0)
	for i := 0; i < 10; i++ {
		c.Inc()
	}
	if c.Value() != 3 {
		t.Fatalf("2-bit counter saturated at %d, want 3", c.Value())
	}
	for i := 0; i < 10; i++ {
		c.Dec()
	}
	if c.Value() != 0 {
		t.Fatalf("2-bit counter floored at %d, want 0", c.Value())
	}
}

func TestSatCounterTakenThreshold(t *testing.T) {
	cases := []struct {
		v     uint8
		taken bool
	}{{0, false}, {1, false}, {2, true}, {3, true}}
	for _, tc := range cases {
		c := NewSatCounter(2, tc.v)
		if c.Taken() != tc.taken {
			t.Errorf("value %d: Taken=%v, want %v", tc.v, c.Taken(), tc.taken)
		}
	}
}

func TestSatCounterWeakStates(t *testing.T) {
	weak := map[uint8]bool{0: false, 1: true, 2: true, 3: false}
	for v, w := range weak {
		c := NewSatCounter(2, v)
		if c.Weak() != w {
			t.Errorf("value %d: Weak=%v, want %v", v, c.Weak(), w)
		}
	}
}

func TestSatCounterZeroValueIs2Bit(t *testing.T) {
	var c SatCounter
	c.Set(9)
	if c.Value() != 3 {
		t.Fatalf("zero-value counter clamped to %d, want 3", c.Value())
	}
}

func TestSatCounterInvariantProperty(t *testing.T) {
	// Any sequence of updates keeps the value within [0, max].
	f := func(bits uint8, ops []bool) bool {
		w := uint(bits%8) + 1
		c := NewSatCounter(w, 0)
		for _, op := range ops {
			c.Update(op)
			if c.Value() > c.Max() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSatCounterWidthPanics(t *testing.T) {
	for _, w := range []uint{0, 9} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("width %d did not panic", w)
				}
			}()
			NewSatCounter(w, 0)
		}()
	}
}

func TestSignedCounterBounds(t *testing.T) {
	c := NewSignedCounter(3, 0)
	for i := 0; i < 20; i++ {
		c.Inc()
	}
	if c.Value() != 3 {
		t.Fatalf("3-bit signed max %d, want 3", c.Value())
	}
	for i := 0; i < 20; i++ {
		c.Dec()
	}
	if c.Value() != -4 {
		t.Fatalf("3-bit signed min %d, want -4", c.Value())
	}
}

func TestSignedCounterSetClamps(t *testing.T) {
	c := NewSignedCounter(4, 0)
	c.Set(100)
	if c.Value() != 7 {
		t.Fatalf("Set(100) -> %d, want 7", c.Value())
	}
	c.Set(-100)
	if c.Value() != -8 {
		t.Fatalf("Set(-100) -> %d, want -8", c.Value())
	}
}

func TestSignedCounterInvariantProperty(t *testing.T) {
	f := func(ops []bool) bool {
		c := NewSignedCounter(5, 0)
		for _, op := range ops {
			c.Update(op)
			if c.Value() < c.Min() || c.Value() > c.Max() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistoryPushAndBit(t *testing.T) {
	h := NewHistory(130)
	h.Push(true)
	h.Push(false)
	h.Push(true)
	// Most recent first: 1, 0, 1.
	if h.Bit(0) != 1 || h.Bit(1) != 0 || h.Bit(2) != 1 {
		t.Fatalf("history bits wrong: %d %d %d", h.Bit(0), h.Bit(1), h.Bit(2))
	}
	if h.Bit(200) != 0 {
		t.Fatal("out-of-range bit should read 0")
	}
}

func TestHistoryLongShift(t *testing.T) {
	// A bit pushed in must appear at position i after i further pushes,
	// crossing the 64-bit word boundary.
	h := NewHistory(200)
	h.Push(true)
	for i := 0; i < 150; i++ {
		h.Push(false)
	}
	if h.Bit(150) != 1 {
		t.Fatal("pushed bit lost crossing word boundary")
	}
	if h.Bit(149) != 0 || h.Bit(151) != 0 {
		t.Fatal("neighbour bits polluted")
	}
}

func TestHistoryBoundedLength(t *testing.T) {
	h := NewHistory(10)
	h.Push(true)
	for i := 0; i < 9; i++ {
		h.Push(false)
	}
	if h.Bit(9) != 1 {
		t.Fatal("bit should still be visible at position 9")
	}
	h.Push(false)
	if h.Bit(9) != 0 && h.Bit(10) != 0 {
		t.Fatal("bit escaped the configured window")
	}
}

func TestHistoryLow(t *testing.T) {
	h := NewHistory(64)
	h.Push(true)
	h.Push(true)
	h.Push(false)
	// Stream (most recent first): 0,1,1. Bit 0 is the most recent, so the
	// integer reads 0b110.
	if got := h.Low(3); got != 0b110 {
		t.Fatalf("Low(3) = %b, want 110", got)
	}
}

func TestHistoryClone(t *testing.T) {
	h := NewHistory(64)
	h.Push(true)
	c := h.Clone()
	h.Push(true)
	if c.Bit(1) == 1 {
		t.Fatal("clone shares storage with original")
	}
}

func TestFoldedMatchesDirectFold(t *testing.T) {
	// The incremental folded image must equal folding the history from
	// scratch after every push, for several (L, W) combinations.
	combos := []struct{ l, w uint }{{12, 10}, {27, 11}, {44, 12}, {130, 12}, {7, 9}}
	g := rng.NewXoshiro256(123)
	for _, c := range combos {
		h := NewHistory(c.l + 1)
		f := NewFolded(c.l, c.w)
		for step := 0; step < 500; step++ {
			h.Push(g.Bool(0.5))
			f.Update(h)
			if got, want := f.Value(), directFold(h, c.l, c.w); got != want {
				t.Fatalf("L=%d W=%d step %d: folded %#x, want %#x",
					c.l, c.w, step, got, want)
			}
		}
	}
}

// directFold recomputes the cyclic fold from the raw history bits.
func directFold(h *History, l, w uint) uint64 {
	var v uint64
	for i := int(l) - 1; i >= 0; i-- {
		v = (v << 1) | h.Bit(uint(i))
		v = (v & Mask(w)) ^ (v >> w)
	}
	return v & Mask(w)
}

func TestFoldedReset(t *testing.T) {
	h := NewHistory(20)
	f := NewFolded(16, 8)
	for i := 0; i < 30; i++ {
		h.Push(i%3 == 0)
		f.Update(h)
	}
	h.Reset()
	f.Reset()
	if f.Value() != 0 {
		t.Fatal("Reset did not clear folded image")
	}
}

func TestMask(t *testing.T) {
	if Mask(0) != 0 || Mask(3) != 7 || Mask(64) != ^uint64(0) {
		t.Fatal("Mask wrong")
	}
}

func TestLog2(t *testing.T) {
	cases := map[uint64]uint{1: 0, 2: 1, 3: 1, 4: 2, 1024: 10, 4096: 12}
	for n, want := range cases {
		if got := Log2(n); got != want {
			t.Errorf("Log2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestIsPow2(t *testing.T) {
	for _, n := range []uint64{1, 2, 4, 8, 4096} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []uint64{0, 3, 6, 4097} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true", n)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	g := rng.NewXoshiro256(77)
	z := NewZipf(1000, 1.0)
	var first, rest int
	for i := 0; i < 100000; i++ {
		if z.Sample(g) < 10 {
			first++
		} else {
			rest++
		}
	}
	// With s=1 over 1000 ranks the top 10 ranks carry ~39% of the mass.
	p := float64(first) / 100000
	if p < 0.30 || p > 0.50 {
		t.Fatalf("Zipf top-10 mass %v, want ~0.39", p)
	}
}

func TestZipfRangeProperty(t *testing.T) {
	g := rng.NewXoshiro256(5)
	z := NewZipf(50, 0.8)
	for i := 0; i < 10000; i++ {
		r := z.Sample(g)
		if r < 0 || r >= 50 {
			t.Fatalf("Zipf sample out of range: %d", r)
		}
	}
}

// foldSerial is the pre-lane-packed update shape: one UpdateBits call
// per fold, kept as the benchmark baseline FoldLane is measured against.
func foldSerial(fs []Folded, in uint64, outs []uint64) {
	for i := range fs {
		fs[i].UpdateBits(in, outs[i])
	}
}

// BenchmarkFoldUpdate compares the lane-packed fold pass against the
// per-fold baseline at TAGE-like lane widths (the FPGA prototype keeps
// 7 tables, LTAGE-class configs 12-15).
func BenchmarkFoldUpdate(b *testing.B) {
	mkLane := func(n int) ([]Folded, []uint64) {
		fs := make([]Folded, n)
		outs := make([]uint64, n)
		for i := range fs {
			fs[i] = *NewFolded(uint(5+7*i), uint(10+i%3))
			outs[i] = uint64(i) & 1
		}
		return fs, outs
	}
	for _, n := range []int{7, 15} {
		fs, outs := mkLane(n)
		b.Run(fmt.Sprintf("lane-%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				FoldLane(fs, uint64(i)&1, outs)
			}
		})
		b.Run(fmt.Sprintf("serial-%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				foldSerial(fs, uint64(i)&1, outs)
			}
		})
	}
}

// TestFoldLaneMatchesSerial pins the lane-packed pass to the per-fold
// semantics it replaced, across every lane width TAGE configs use.
func TestFoldLaneMatchesSerial(t *testing.T) {
	for _, n := range []int{1, 7, 15} {
		lane := make([]Folded, n)
		serial := make([]Folded, n)
		for i := range lane {
			f := NewFolded(uint(5+7*i), uint(10+i%3))
			lane[i], serial[i] = *f, *f
		}
		outs := make([]uint64, n)
		for step := 0; step < 2000; step++ {
			in := uint64(step>>1) & 1
			for i := range outs {
				outs[i] = uint64(step*i) % 2
			}
			FoldLane(lane, in, outs)
			foldSerial(serial, in, outs)
		}
		for i := range lane {
			if lane[i].Value() != serial[i].Value() {
				t.Fatalf("lane %d of %d: FoldLane %#x != serial %#x", i, n, lane[i].Value(), serial[i].Value())
			}
		}
	}
}
