// Package gshare implements the Gshare direction predictor (McFarling):
// a single pattern history table of 2-bit counters indexed by the XOR of
// the branch PC and the global history register. It is the paper's
// simplest evaluated predictor (2 KB in the gem5 configuration) and the
// running example for Noisy-XOR-PHT in Figure 4(b).
package gshare

import (
	"xorbp/internal/bitutil"
	"xorbp/internal/core"
	"xorbp/internal/predictor"
	"xorbp/internal/snap"
	"xorbp/internal/store"
)

const pcShift = 2

// Config sizes a Gshare predictor.
type Config struct {
	// IndexBits is log2 of the PHT entry count.
	IndexBits uint
	// HistoryBits is the global history length folded into the index.
	HistoryBits uint
}

// Gem5Config is the paper's 2 KB Gshare: 8K entries × 2 bits.
func Gem5Config() Config { return Config{IndexBits: 13, HistoryBits: 13} }

// Gshare is the predictor. The PHT is a secured WordArray: contents pass
// through the content codec (Enhanced-XOR-PHT when enabled) and the index
// through the scrambler (Noisy-XOR-PHT).
type Gshare struct {
	cfg   Config
	guard *core.Guard
	pht   *store.WordArray

	ghr     [core.MaxHWThreads]uint64
	scratch [core.MaxHWThreads]uint64 // physical index used at predict
}

// New builds a Gshare predictor registered for flush events.
func New(cfg Config, ctrl *core.Controller) *Gshare {
	g := &Gshare{
		cfg:   cfg,
		guard: ctrl.Guard(0x65aa, core.StructPHT),
	}
	// Init to weak-not-taken (1 on the 0..3 scale).
	g.pht = store.NewWordArray(g.guard, cfg.IndexBits, 2, 1)
	ctrl.Register(g, core.StructPHT)
	return g
}

// Name implements predictor.DirPredictor.
func (g *Gshare) Name() string { return "gshare" }

// index computes the physical PHT index for (d, pc).
func (g *Gshare) index(d core.Domain, pc uint64) uint64 {
	h := g.ghr[d.Thread] & bitutil.Mask(g.cfg.HistoryBits)
	logical := ((pc >> pcShift) ^ h) & bitutil.Mask(g.cfg.IndexBits)
	return g.guard.ScrambleIndex(logical, d, g.cfg.IndexBits)
}

// Predict implements predictor.DirPredictor.
//
//bpvet:hotpath
func (g *Gshare) Predict(d core.Domain, pc uint64) bool {
	idx := g.index(d, pc)
	g.scratch[d.Thread] = idx
	return g.pht.Get(d, idx) >= 2
}

// Update implements predictor.DirPredictor. It trains the counter that
// produced the prediction and shifts the outcome into the thread's global
// history.
//
//bpvet:hotpath
func (g *Gshare) Update(d core.Domain, pc uint64, taken bool) {
	idx := g.scratch[d.Thread]
	g.pht.Update(d, idx, func(v uint64) uint64 { return bump(v, taken) })
	g.ghr[d.Thread] = g.ghr[d.Thread]<<1 | b2u(taken)
}

// PredictUpdate implements predictor.PredictUpdater: the fused
// predict-then-train call the simulator dispatches once per
// conditional branch. Predict already caches the physical index in
// scratch for Update, so the plain composition computes it once.
//
//bpvet:hotpath
func (g *Gshare) PredictUpdate(d core.Domain, pc uint64, taken bool) bool {
	pred := g.Predict(d, pc)
	g.Update(d, pc, taken)
	return pred
}

// bump saturates a 2-bit counter toward the outcome.
func bump(v uint64, taken bool) uint64 {
	if taken {
		if v < 3 {
			v++
		}
	} else if v > 0 {
		v--
	}
	return v
}

// FlushAll implements core.Flusher.
//
//bpvet:hotpath
func (g *Gshare) FlushAll() { g.pht.FlushAll() }

// FlushThread implements core.Flusher. The PHT has no owner bits (the
// paper's point about 2-bit entries), so this degrades to a full flush —
// except that a history-less structure owned entirely by one thread on a
// single-threaded core behaves identically either way.
//
//bpvet:hotpath
func (g *Gshare) FlushThread(t core.HWThread) { g.pht.FlushThread(t) }

// Snapshot writes the PHT words and per-thread global histories. The
// predict-to-update scratch is excluded: snapshots are taken at cycle
// boundaries, never between a Predict and its paired Update (the engine
// dispatches the fused PredictUpdate per branch).
func (g *Gshare) Snapshot(w *snap.Writer) {
	g.pht.Snapshot(w)
	for i := range g.ghr {
		w.U64(g.ghr[i])
	}
}

// Restore replaces the PHT and histories.
func (g *Gshare) Restore(r *snap.Reader) {
	g.pht.Restore(r)
	for i := range g.ghr {
		g.ghr[i] = r.U64()
	}
}

// StorageBits implements predictor.DirPredictor.
func (g *Gshare) StorageBits() uint64 { return g.pht.StorageBits() }

// Entries reports the logical entry count (for the Precise Flush walk
// cost model).
func (g *Gshare) Entries() uint64 { return g.pht.Len() }

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

var _ predictor.DirPredictor = (*Gshare)(nil)
var _ core.Flusher = (*Gshare)(nil)
