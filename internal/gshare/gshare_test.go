package gshare

import (
	"testing"

	"xorbp/internal/core"
)

func ctrl(m core.Mechanism) *core.Controller {
	return core.NewController(core.OptionsFor(m), 1)
}

func d(t core.HWThread) core.Domain { return core.Domain{Thread: t, Priv: core.User} }

// train runs n (predict, update) rounds with a fixed outcome.
func train(g *Gshare, dom core.Domain, pc uint64, taken bool, n int) {
	for i := 0; i < n; i++ {
		g.Predict(dom, pc)
		g.Update(dom, pc, taken)
	}
}

func TestLearnsBiasedBranch(t *testing.T) {
	// The GHR must reach its all-taken steady state (HistoryBits rounds)
	// before the final index stabilizes.
	for _, m := range []core.Mechanism{core.Baseline, core.NoisyXOR} {
		g := New(Gem5Config(), ctrl(m))
		train(g, d(0), 0x400100, true, 20)
		if !g.Predict(d(0), 0x400100) {
			t.Errorf("%v: always-taken branch predicted not-taken", m)
		}
	}
}

func TestLearnsAlternatingPatternViaHistory(t *testing.T) {
	// A strictly alternating branch is mispredicted by a plain bimodal
	// counter but captured by Gshare's history-indexed counters.
	g := New(Gem5Config(), ctrl(core.Baseline))
	pc := uint64(0x400200)
	taken := false
	// Warm up.
	for i := 0; i < 200; i++ {
		taken = !taken
		g.Predict(d(0), pc)
		g.Update(d(0), pc, taken)
	}
	correct := 0
	for i := 0; i < 100; i++ {
		taken = !taken
		if g.Predict(d(0), pc) == taken {
			correct++
		}
		g.Update(d(0), pc, taken)
	}
	if correct < 95 {
		t.Fatalf("alternating pattern accuracy %d/100, want >=95", correct)
	}
}

func TestPerThreadHistory(t *testing.T) {
	g := New(Gem5Config(), ctrl(core.Baseline))
	// Thread 1's updates must not disturb thread 0's history register.
	h0 := g.ghr[0]
	g.Predict(d(1), 0x100)
	g.Update(d(1), 0x100, true)
	if g.ghr[0] != h0 {
		t.Fatal("thread 1 update changed thread 0's GHR")
	}
	if g.ghr[1] == h0 {
		t.Fatal("thread 1's GHR did not record the outcome")
	}
}

func TestKeyRotationDegradesResidualState(t *testing.T) {
	// After a context switch under Noisy-XOR the trained state decodes as
	// noise; the branch needs retraining (the paper's §6.2.1 effect).
	c := ctrl(core.NoisyXOR)
	g := New(Gem5Config(), c)
	pc := uint64(0x400300)
	train(g, d(0), pc, true, 20)
	if !g.Predict(d(0), pc) {
		t.Fatal("training failed before rotation")
	}
	c.ContextSwitch(0)
	// Re-train from the garbled state: a couple of updates suffice for a
	// 2-bit counter, proving the "short warm-up" claim.
	train(g, d(0), pc, true, 3)
	if !g.Predict(d(0), pc) {
		t.Fatal("2-bit counter did not re-train within 3 updates")
	}
}

func TestCrossThreadSharingBaselineVsXOR(t *testing.T) {
	// Baseline: two threads at the same PC with the same history share
	// the counter (reuse attack surface). XOR: thread 1 sees noise.
	gb := New(Gem5Config(), ctrl(core.Baseline))
	train(gb, d(0), 0x400400, true, 8)
	if !gb.Predict(d(1), 0x400400) {
		t.Fatal("baseline should leak the trained direction cross-thread")
	}

	// Under XOR the trained strongly-taken counter decodes arbitrarily
	// for thread 1; after its own short training in the opposite
	// direction thread 1 must win out, and thread 0's state must survive
	// in its own view of other entries. The load-bearing check: thread
	// 1's prediction is driven by its own key, not thread 0's writes.
	gx := New(Gem5Config(), ctrl(core.XOR))
	train(gx, d(0), 0x400400, true, 8)
	train(gx, d(1), 0x400400, false, 8)
	if gx.Predict(d(1), 0x400400) {
		t.Fatal("thread 1 could not train its own view under XOR")
	}
}

func TestFlushRestoresWeakState(t *testing.T) {
	g := New(Gem5Config(), ctrl(core.CompleteFlush))
	pc := uint64(0x400500)
	train(g, d(0), pc, true, 20)
	g.FlushAll()
	// After flush the counter is weak-not-taken: a single taken update
	// flips it to weak-taken.
	g.Predict(d(0), pc)
	g.Update(d(0), pc, true)
	// Rebuild the same history state as before the check.
	if !g.Predict(d(0), pc) {
		t.Fatal("post-flush warmup did not behave like weak init")
	}
}

func TestStorageBits(t *testing.T) {
	g := New(Config{IndexBits: 13, HistoryBits: 13}, ctrl(core.Baseline))
	if g.StorageBits() != 8192*2 {
		t.Fatalf("StorageBits = %d, want 16384 (2 KB)", g.StorageBits())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() bool {
		g := New(Gem5Config(), ctrl(core.NoisyXOR))
		var acc bool
		for i := 0; i < 1000; i++ {
			pc := uint64(0x400000 + (i%37)*4)
			taken := i%3 != 0
			acc = g.Predict(d(0), pc)
			g.Update(d(0), pc, taken)
		}
		return acc
	}
	if run() != run() {
		t.Fatal("gshare simulation is not deterministic")
	}
}
