package runcache

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// GCOptions bounds a garbage-collection pass over a cache directory.
type GCOptions struct {
	// MaxAge removes entries not modified within the window (0 disables
	// the age bound). Quarantined ".corrupt" files age out the same way.
	MaxAge time.Duration
	// MaxBytes caps the total size of live entries after the pass;
	// oldest entries are removed first until the cap holds (0 disables
	// the size bound).
	MaxBytes int64
	// Now anchors age computation; the zero value means time.Now().
	Now time.Time
}

// GCReport summarizes one garbage-collection pass.
type GCReport struct {
	// SchemaDirsRemoved counts superseded per-schema subdirectories
	// removed wholesale.
	SchemaDirsRemoved int
	// EntriesRemoved counts files removed from live schema directories
	// (aged out, evicted for size, or quarantined leftovers).
	EntriesRemoved int
	// BytesFreed is the total size removed, across both categories.
	BytesFreed int64
	// EntriesKept / BytesKept describe what remains in live schema
	// directories.
	EntriesKept int
	BytesKept   int64
}

func (r GCReport) String() string {
	return fmt.Sprintf("removed %d superseded schema dir(s) and %d entr(ies), freed %s; kept %d entr(ies), %s",
		r.SchemaDirsRemoved, r.EntriesRemoved, human(r.BytesFreed), r.EntriesKept, human(r.BytesKept))
}

// human renders a byte count for the report line.
func human(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}

// GC garbage-collects the cache directory rooted at dir.
//
// Per-schema subdirectories whose schema is not in keepSchemas are
// superseded — a binary writing that encoding no longer exists — and
// are removed wholesale. Within the kept schemas, entries older than
// MaxAge are removed, then the oldest survivors are evicted until the
// directory fits MaxBytes. The pass is safe against concurrent readers
// and writers: removal uses the same per-file granularity as the
// store's own writes, so the worst case for a racing process is a
// cache miss, never a torn entry.
//
// A missing dir is not an error (there is nothing to collect).
func GC(dir string, keepSchemas []string, o GCOptions) (GCReport, error) {
	var rep GCReport
	if o.Now.IsZero() {
		o.Now = time.Now() //bpvet:allow GC age cutoff; tests inject a fixed Now, results never see it
	}
	keep := make(map[string]bool, len(keepSchemas))
	for _, s := range keepSchemas {
		keep[schemaID(s)] = true
	}
	des, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return rep, nil
	}
	if err != nil {
		return rep, fmt.Errorf("runcache: %w", err)
	}

	// liveEntry is a survivor candidate for the age/size bounds.
	type liveEntry struct {
		path string
		size int64
		mod  time.Time
	}
	var live []liveEntry

	for _, de := range des {
		if !de.IsDir() || !strings.HasPrefix(de.Name(), "v-") {
			// Foreign files at the root (and anything not schema-shaped)
			// are not ours to collect.
			continue
		}
		sub := filepath.Join(dir, de.Name())
		if !keep[de.Name()] {
			freed, err := dirSize(sub)
			if err != nil {
				return rep, err
			}
			if err := os.RemoveAll(sub); err != nil {
				return rep, fmt.Errorf("runcache: %w", err)
			}
			rep.SchemaDirsRemoved++
			rep.BytesFreed += freed
			continue
		}
		files, err := os.ReadDir(sub)
		if err != nil {
			return rep, fmt.Errorf("runcache: %w", err)
		}
		for _, fe := range files {
			if fe.IsDir() {
				continue
			}
			info, err := fe.Info()
			if err != nil {
				continue // vanished under a concurrent process
			}
			path := filepath.Join(sub, fe.Name())
			// In-progress temp files from live writers are skipped unless
			// plainly abandoned (older than the age bound).
			isTmp := strings.HasPrefix(fe.Name(), ".tmp-")
			aged := o.MaxAge > 0 && o.Now.Sub(info.ModTime()) > o.MaxAge
			if isTmp && !aged {
				continue
			}
			if aged {
				if os.Remove(path) == nil {
					rep.EntriesRemoved++
					rep.BytesFreed += info.Size()
				}
				continue
			}
			live = append(live, liveEntry{path: path, size: info.Size(), mod: info.ModTime()})
		}
	}

	var total int64
	for _, le := range live {
		total += le.size
	}
	if o.MaxBytes > 0 && total > o.MaxBytes {
		// Evict oldest-first until the cap holds.
		sort.Slice(live, func(i, j int) bool { return live[i].mod.Before(live[j].mod) })
		for i := range live {
			if total <= o.MaxBytes {
				break
			}
			if os.Remove(live[i].path) == nil {
				rep.EntriesRemoved++
				rep.BytesFreed += live[i].size
				total -= live[i].size
				live[i].size = -1 // mark evicted
			}
		}
		kept := live[:0]
		for _, le := range live {
			if le.size >= 0 {
				kept = append(kept, le)
			}
		}
		live = kept
	}
	rep.EntriesKept = len(live)
	rep.BytesKept = total
	return rep, nil
}

// dirSize sums the file sizes under a directory (one level of nesting
// is all the store ever creates, but walk defensively).
func dirSize(dir string) (int64, error) {
	var n int64
	err := filepath.WalkDir(dir, func(_ string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return nil // vanished; size it as zero
		}
		n += info.Size()
		return nil
	})
	if err != nil {
		return n, fmt.Errorf("runcache: %w", err)
	}
	return n, nil
}
