package runcache

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "schema-a")
	if err != nil {
		t.Fatal(err)
	}
	key := s.Key([]byte("payload-1"))
	if _, ok := s.Get(key); ok {
		t.Fatal("empty store reported a hit")
	}
	if err := s.Put(key, []byte(`{"cycles":42}`)); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Get(key); !ok || string(v) != `{"cycles":42}` {
		t.Fatalf("in-process Get = %q, %v", v, ok)
	}

	// A fresh Open on the same directory sees the entry.
	s2, err := Open(dir, "schema-a")
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := s2.Get(key); !ok || string(v) != `{"cycles":42}` {
		t.Fatalf("reopened Get = %q, %v", v, ok)
	}
	if st := s2.Stats(); st.Loaded != 1 || st.Hits != 1 {
		t.Fatalf("reopened stats = %+v, want 1 loaded, 1 hit", st)
	}
}

func TestSchemaMismatchInvalidates(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir, "schema-a")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Put(a.Key([]byte("k")), []byte(`1`)); err != nil {
		t.Fatal(err)
	}

	// A different schema starts empty: old entries are invalid for it and
	// its keys cannot alias them (the key hash includes the schema).
	b, err := Open(dir, "schema-b")
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("schema-b store loaded %d entries from schema-a", b.Len())
	}
	if _, ok := b.Get(b.Key([]byte("k"))); ok {
		t.Fatal("schema-b key aliased a schema-a entry")
	}
	if a.Key([]byte("k")) == b.Key([]byte("k")) {
		t.Fatal("identical payloads under different schemas share a key")
	}

	// The old schema's entries are untouched, not deleted.
	a2, err := Open(dir, "schema-a")
	if err != nil {
		t.Fatal(err)
	}
	if a2.Len() != 1 {
		t.Fatalf("schema-a store lost its entry: %d left", a2.Len())
	}
}

func TestCorruptEntryQuarantined(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "schema-a")
	if err != nil {
		t.Fatal(err)
	}
	good := s.Key([]byte("good"))
	if err := s.Put(good, []byte(`1`)); err != nil {
		t.Fatal(err)
	}
	// Three corruption shapes: unparseable bytes, a parseable entry
	// recorded under the wrong schema, and a file whose name disagrees
	// with its recorded key.
	writeRaw := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(s.Dir(), name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeRaw("feedfeed.json", "not json at all")
	writeRaw("deadbeef.json", `{"schema":"schema-z","key":"deadbeef","value":1}`)
	writeRaw("cafecafe.json", `{"schema":"schema-a","key":"somethingelse","value":1}`)

	s2, err := Open(dir, "schema-a")
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("store loaded %d entries, want only the good one", s2.Len())
	}
	if st := s2.Stats(); st.Quarantined != 3 {
		t.Fatalf("quarantined %d files, want 3 (%+v)", st.Quarantined, st)
	}
	quarantined, _ := filepath.Glob(filepath.Join(s2.Dir(), "*.corrupt"))
	if len(quarantined) != 3 {
		t.Fatalf("found %d .corrupt files, want 3", len(quarantined))
	}
	// Quarantine is sticky: the next Open does not re-examine them.
	s3, err := Open(dir, "schema-a")
	if err != nil {
		t.Fatal(err)
	}
	if st := s3.Stats(); st.Quarantined != 0 || st.Loaded != 1 {
		t.Fatalf("second reopen stats = %+v, want no new quarantines", st)
	}
	// The store stays usable after quarantining.
	if err := s2.Put(s2.Key([]byte("more")), []byte(`2`)); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentStores exercises two Store handles sharing one directory
// — the shape of two concurrent bpsim processes — under the race
// detector: overlapping Puts of identical content and concurrent Gets.
func TestConcurrentStores(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir, "schema-a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir, "schema-a")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for _, s := range []*Store{a, b} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := s.Key([]byte(fmt.Sprintf("k%d", i)))
				if err := s.Put(key, []byte(fmt.Sprintf(`{"v":%d}`, i))); err != nil {
					t.Error(err)
					return
				}
				if v, ok := s.Get(key); !ok || !strings.Contains(string(v), fmt.Sprint(i)) {
					t.Errorf("Get after Put: %q, %v", v, ok)
					return
				}
			}
		}()
	}
	wg.Wait()
	c, err := Open(dir, "schema-a")
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 50 || c.Stats().Quarantined != 0 {
		t.Fatalf("after concurrent writers: %d entries (%+v), want 50 clean",
			c.Len(), c.Stats())
	}
}

func TestKeyDeterministic(t *testing.T) {
	if Key("s", []byte("p")) != Key("s", []byte("p")) {
		t.Fatal("Key is not deterministic")
	}
	if Key("s", []byte("p")) == Key("s", []byte("q")) ||
		Key("s", []byte("p")) == Key("t", []byte("p")) {
		t.Fatal("distinct inputs collide")
	}
}
