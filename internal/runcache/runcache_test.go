package runcache

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "schema-a")
	if err != nil {
		t.Fatal(err)
	}
	key := s.Key([]byte("payload-1"))
	if _, ok := s.Get(key); ok {
		t.Fatal("empty store reported a hit")
	}
	if err := s.Put(key, []byte(`{"cycles":42}`)); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Get(key); !ok || string(v) != `{"cycles":42}` {
		t.Fatalf("in-process Get = %q, %v", v, ok)
	}

	// A fresh Open on the same directory sees the entry.
	s2, err := Open(dir, "schema-a")
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := s2.Get(key); !ok || string(v) != `{"cycles":42}` {
		t.Fatalf("reopened Get = %q, %v", v, ok)
	}
	if st := s2.Stats(); st.Loaded != 1 || st.Hits != 1 {
		t.Fatalf("reopened stats = %+v, want 1 loaded, 1 hit", st)
	}
}

func TestSchemaMismatchInvalidates(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir, "schema-a")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Put(a.Key([]byte("k")), []byte(`1`)); err != nil {
		t.Fatal(err)
	}

	// A different schema starts empty: old entries are invalid for it and
	// its keys cannot alias them (the key hash includes the schema).
	b, err := Open(dir, "schema-b")
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("schema-b store loaded %d entries from schema-a", b.Len())
	}
	if _, ok := b.Get(b.Key([]byte("k"))); ok {
		t.Fatal("schema-b key aliased a schema-a entry")
	}
	if a.Key([]byte("k")) == b.Key([]byte("k")) {
		t.Fatal("identical payloads under different schemas share a key")
	}

	// The old schema's entries are untouched, not deleted.
	a2, err := Open(dir, "schema-a")
	if err != nil {
		t.Fatal(err)
	}
	if a2.Len() != 1 {
		t.Fatalf("schema-a store lost its entry: %d left", a2.Len())
	}
}

func TestCorruptEntryQuarantined(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "schema-a")
	if err != nil {
		t.Fatal(err)
	}
	good := s.Key([]byte("good"))
	if err := s.Put(good, []byte(`1`)); err != nil {
		t.Fatal(err)
	}
	// Three corruption shapes: unparseable bytes, a parseable entry
	// recorded under the wrong schema, and a file whose name disagrees
	// with its recorded key.
	writeRaw := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(s.Dir(), name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeRaw("feedfeed.json", "not json at all")
	writeRaw("deadbeef.json", `{"schema":"schema-z","key":"deadbeef","value":1}`)
	writeRaw("cafecafe.json", `{"schema":"schema-a","key":"somethingelse","value":1}`)

	s2, err := Open(dir, "schema-a")
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("store loaded %d entries, want only the good one", s2.Len())
	}
	if st := s2.Stats(); st.Quarantined != 3 {
		t.Fatalf("quarantined %d files, want 3 (%+v)", st.Quarantined, st)
	}
	quarantined, _ := filepath.Glob(filepath.Join(s2.Dir(), "*.corrupt"))
	if len(quarantined) != 3 {
		t.Fatalf("found %d .corrupt files, want 3", len(quarantined))
	}
	// Quarantine is sticky: the next Open does not re-examine them.
	s3, err := Open(dir, "schema-a")
	if err != nil {
		t.Fatal(err)
	}
	if st := s3.Stats(); st.Quarantined != 0 || st.Loaded != 1 {
		t.Fatalf("second reopen stats = %+v, want no new quarantines", st)
	}
	// The store stays usable after quarantining.
	if err := s2.Put(s2.Key([]byte("more")), []byte(`2`)); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentStores exercises two Store handles sharing one directory
// — the shape of two concurrent bpsim processes — under the race
// detector: overlapping Puts of identical content and concurrent Gets.
func TestConcurrentStores(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir, "schema-a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir, "schema-a")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for _, s := range []*Store{a, b} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := s.Key([]byte(fmt.Sprintf("k%d", i)))
				if err := s.Put(key, []byte(fmt.Sprintf(`{"v":%d}`, i))); err != nil {
					t.Error(err)
					return
				}
				if v, ok := s.Get(key); !ok || !strings.Contains(string(v), fmt.Sprint(i)) {
					t.Errorf("Get after Put: %q, %v", v, ok)
					return
				}
			}
		}()
	}
	wg.Wait()
	c, err := Open(dir, "schema-a")
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 50 || c.Stats().Quarantined != 0 {
		t.Fatalf("after concurrent writers: %d entries (%+v), want 50 clean",
			c.Len(), c.Stats())
	}
}

// TestCRCMismatchQuarantined: an entry whose value was altered on disk
// but still parses as valid JSON under the right schema and key — the
// silent-corruption case only the checksum can catch — is quarantined
// at the next Open instead of replaying as a wrong result.
func TestCRCMismatchQuarantined(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "schema-a")
	if err != nil {
		t.Fatal(err)
	}
	key := s.Key([]byte("payload"))
	if err := s.Put(key, []byte(`{"cycles":42}`)); err != nil {
		t.Fatal(err)
	}
	// Rewrite the file with a different value under the stale CRC:
	// schema, key, and JSON shape all stay valid.
	path := filepath.Join(s.Dir(), key+".json")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(raw), `{"cycles":42}`, `{"cycles":43}`, 1)
	if tampered == string(raw) {
		t.Fatalf("tampering found nothing to replace in %q", raw)
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, "schema-a")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(key); ok {
		t.Fatal("a CRC-mismatched entry replayed")
	}
	if st := s2.Stats(); st.Quarantined != 1 {
		t.Fatalf("stats = %+v, want 1 quarantined", st)
	}
}

// TestBinaryEntriesChecksummed: PutBinary blobs ride the same entry
// format, so they round-trip across Opens and corrupting one on disk
// quarantines it like any result entry.
func TestBinaryEntriesChecksummed(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "schema-a")
	if err != nil {
		t.Fatal(err)
	}
	blob := []byte{0x00, 0x01, 0xFE, 0xFF, 0x42}
	key := s.Key([]byte("snap"))
	if err := s.PutBinary(key, blob); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, "schema-a")
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.GetBinary(key)
	if !ok || string(got) != string(blob) {
		t.Fatalf("GetBinary = %v, %v", got, ok)
	}

	// Swap the base64 payload for a different valid one under the stale
	// CRC; the checksum, not the decoder, must reject it.
	path := filepath.Join(s.Dir(), key+".json")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	old := `"AAH+/0I="`
	if !strings.Contains(string(raw), old) {
		t.Fatalf("entry %q does not contain the expected base64 value", raw)
	}
	tampered := strings.Replace(string(raw), old, `"AAH+/0M="`, 1)
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir, "schema-a")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s3.GetBinary(key); ok {
		t.Fatal("a tampered binary entry replayed")
	}
	if st := s3.Stats(); st.Quarantined != 1 {
		t.Fatalf("stats = %+v, want 1 quarantined", st)
	}
}

// faultStub is a test FileFault: it errors when failing is set, and
// otherwise flips the last byte of every entry on its way to disk.
type faultStub struct {
	failing bool
	writes  int
}

func (f *faultStub) WriteEntry(key string, raw []byte) ([]byte, error) {
	f.writes++
	if f.failing {
		return nil, fmt.Errorf("stub: no space left on device")
	}
	out := append([]byte(nil), raw...)
	out[len(out)-1] ^= 0xFF
	return out, nil
}

// TestFileFaultWriteError: a failed entry write is counted, reported,
// and does not evict the in-memory copy — but the entry is gone after a
// reopen (it never reached disk).
func TestFileFaultWriteError(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "schema-a")
	if err != nil {
		t.Fatal(err)
	}
	s.SetFileFault(&faultStub{failing: true})
	key := s.Key([]byte("k"))
	if err := s.Put(key, []byte(`1`)); err == nil {
		t.Fatal("Put under an erroring fault succeeded")
	}
	if v, ok := s.Get(key); !ok || string(v) != `1` {
		t.Fatalf("in-memory copy after failed write = %q, %v", v, ok)
	}
	if st := s.Stats(); st.PutErrors != 1 {
		t.Fatalf("stats = %+v, want 1 put error", st)
	}
	s2, err := Open(dir, "schema-a")
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 0 {
		t.Fatalf("reopened store holds %d entries, want 0", s2.Len())
	}
}

// TestFileFaultCorruptionCaught: bytes perturbed by the fault hook land
// on disk (the write itself succeeds) and the next Open quarantines
// them — the end-to-end contract chaosbench's cache scenario rides.
func TestFileFaultCorruptionCaught(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "schema-a")
	if err != nil {
		t.Fatal(err)
	}
	fs := &faultStub{}
	s.SetFileFault(fs)
	key := s.Key([]byte("k"))
	if err := s.Put(key, []byte(`{"cycles":7}`)); err != nil {
		t.Fatal(err)
	}
	if fs.writes != 1 {
		t.Fatalf("fault hook saw %d writes, want 1", fs.writes)
	}
	if v, ok := s.Get(key); !ok || string(v) != `{"cycles":7}` {
		t.Fatalf("in-memory copy = %q, %v", v, ok)
	}
	s2, err := Open(dir, "schema-a")
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 0 || s2.Stats().Quarantined != 1 {
		t.Fatalf("reopened store: %d entries, stats %+v; want the corrupt entry quarantined",
			s2.Len(), s2.Stats())
	}
}

func TestKeyDeterministic(t *testing.T) {
	if Key("s", []byte("p")) != Key("s", []byte("p")) {
		t.Fatal("Key is not deterministic")
	}
	if Key("s", []byte("p")) == Key("s", []byte("q")) ||
		Key("s", []byte("p")) == Key("t", []byte("p")) {
		t.Fatal("distinct inputs collide")
	}
}
