package runcache

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// FuzzOpenEntry feeds arbitrary bytes to the store's entry loader: a
// cache directory is shared, crash-prone state, so any on-disk file —
// torn, truncated, tampered, or from a foreign tool — must either load
// as a valid entry or be quarantined. Open must never panic and never
// trust a file whose recorded schema or key disagrees with its
// location.
func FuzzOpenEntry(f *testing.F) {
	const schema = "fuzz-schema-v1"
	const key = "00deadbeef"
	good, _ := json.Marshal(entry{Schema: schema, Key: key, Value: json.RawMessage(`{"x":1}`)})
	f.Add(good)
	f.Add([]byte(``))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"schema":"fuzz-schema-v1","key":"wrong","value":{}}`))
	f.Add([]byte(`{"schema":"other","key":"00deadbeef","value":{}}`))
	f.Add([]byte(`{"schema":"fuzz-schema-v1","key":"00deadbeef","value":null}`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		dir := t.TempDir()
		sub := filepath.Join(dir, schemaID(schema))
		if err := os.MkdirAll(sub, 0o755); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(sub, key+".json")
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, schema)
		if err != nil {
			t.Fatalf("Open must tolerate arbitrary entry bytes, got: %v", err)
		}
		st := s.Stats()
		if st.Loaded+st.Quarantined != 1 {
			t.Fatalf("entry neither loaded nor quarantined: %+v", st)
		}
		if st.Loaded == 1 {
			// A loaded entry must be exactly the recorded value, and the
			// file must re-parse as the entry it claimed to be.
			var e entry
			if json.Unmarshal(raw, &e) != nil || e.Schema != schema || e.Key != key {
				t.Fatal("loader accepted an entry the strict parse rejects")
			}
			got, ok := s.Get(key)
			if !ok || !bytes.Equal(got, e.Value) {
				t.Fatalf("loaded value mismatch: got %q want %q", got, e.Value)
			}
		} else {
			// Quarantine renames aside; the original name must be gone and
			// a re-Open must see an empty store, not re-trip on the file.
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatal("quarantined entry still present under its live name")
			}
			s2, err := Open(dir, schema)
			if err != nil || s2.Len() != 0 {
				t.Fatalf("re-Open after quarantine: len=%d err=%v", s2.Len(), err)
			}
		}
	})
}
