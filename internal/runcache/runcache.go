// Package runcache persists resolved simulation results across process
// invocations. It is the L2 behind the experiment engine's in-memory
// memo cache: once a spec has been simulated by any bpsim invocation,
// every later invocation replays the stored result instead of
// re-simulating it.
//
// The store is deliberately simple and crash-safe:
//
//   - One file per entry, named by the entry's key hash, written with
//     write-temp + rename so concurrent processes sharing a directory
//     never observe a torn entry (the last writer of a key wins, and
//     every writer of a key writes identical deterministic content).
//   - Entries live in a per-schema subdirectory. Opening a directory
//     with a new schema version starts empty — stale entries are
//     invalidated by construction and can never alias a current key.
//   - All entries load at Open; Get and Put are memory-speed afterward
//     (Put additionally writes through to disk).
//   - Files that fail to parse, whose recorded schema or key does not
//     match, or whose value fails its CRC-32 checksum, are quarantined
//     (renamed with a ".corrupt" suffix) rather than trusted or deleted.
//     The checksum catches silent corruption that still parses as JSON —
//     a flipped bit inside a number would otherwise replay a wrong
//     result forever.
package runcache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
)

// Stats counts store traffic since Open.
type Stats struct {
	Loaded      int // entries read at Open
	Quarantined int // corrupt files renamed aside at Open
	Hits        int // Get calls that found an entry
	Misses      int // Get calls that did not
	Puts        int // entries written
	PutErrors   int // writes that failed (entry kept in memory only)
}

// Store is an on-disk map from key hash to an opaque JSON value, with an
// in-memory mirror loaded at Open. Safe for concurrent use within a
// process; safe to share a directory across processes.
type Store struct {
	root   string // user-supplied cache directory
	dir    string // per-schema subdirectory actually holding entries
	schema string

	// fault, when set, intercepts entry bytes on their way to disk —
	// the chaos layer's corruption/ENOSPC seam. Never touches the
	// in-memory copy. Set once before concurrent use (SetFileFault).
	fault FileFault

	mu      sync.Mutex
	entries map[string]json.RawMessage
	stats   Stats
}

// FileFault intercepts an entry's serialized bytes just before the
// write-temp+rename. It may return altered bytes (simulated
// corruption: the checksum must catch it at the next Open) or an error
// (simulated full disk: counted as a PutError, entry kept in memory).
// chaos.CacheFaults implements it; production stores never set one.
type FileFault interface {
	WriteEntry(key string, raw []byte) ([]byte, error)
}

// entryFormat versions the on-disk entry file format. It is folded
// into schemaID, so bumping it supersedes every directory written
// under the old format — Open starts them empty and `-cache-gc` sweeps
// them, exactly like a schema change. Format 2 added the CRC field.
const entryFormat = 2

// entry is the on-disk file format. Schema and Key are recorded
// redundantly (the subdirectory and filename imply them) so a misplaced
// or tampered file is detected and quarantined at load; CRC is the
// IEEE CRC-32 of Value, verified at load so silent corruption that
// still parses as JSON cannot replay as a wrong result.
type entry struct {
	Schema string          `json:"schema"`
	Key    string          `json:"key"`
	CRC    uint32          `json:"crc"`
	Value  json.RawMessage `json:"value"`
}

// DefaultDir returns the conventional cache directory shared by the
// CLIs — ~/.cache/xorbp via the platform cache dir — or "" when no home
// is resolvable, which callers treat as cache-disabled.
func DefaultDir() string {
	dir, err := os.UserCacheDir()
	if err != nil {
		return ""
	}
	return filepath.Join(dir, "xorbp")
}

// Key derives the store key for a payload under a schema: the hex SHA-256
// of both. Including the schema means entries from different schema
// versions can never collide on a name.
func Key(schema string, payload []byte) string {
	h := sha256.New()
	h.Write([]byte(schema))
	h.Write([]byte{0})
	h.Write(payload)
	return hex.EncodeToString(h.Sum(nil))
}

// schemaID is the directory-name-safe digest of a schema string (the
// full string can be hundreds of characters of type signature). The
// entry file format version is folded in, so an entry-format change
// invalidates old directories exactly like a schema change: Open never
// sees old-format files, and GC treats their directories as
// superseded.
func schemaID(schema string) string {
	sum := sha256.Sum256([]byte("fmt" + strconv.Itoa(entryFormat) + "\x00" + schema))
	return "v-" + hex.EncodeToString(sum[:8])
}

// Open loads (creating if necessary) the store for one schema version
// under dir. Entries written under other schema versions are left
// untouched in their own subdirectories.
func Open(dir, schema string) (*Store, error) {
	sub := filepath.Join(dir, schemaID(schema))
	if err := os.MkdirAll(sub, 0o755); err != nil {
		return nil, fmt.Errorf("runcache: %w", err)
	}
	s := &Store{
		root:    dir,
		dir:     sub,
		schema:  schema,
		entries: make(map[string]json.RawMessage),
	}
	names, err := os.ReadDir(sub)
	if err != nil {
		return nil, fmt.Errorf("runcache: %w", err)
	}
	for _, de := range names {
		name := de.Name()
		// Skip in-progress writes from concurrent processes and anything
		// already quarantined.
		if de.IsDir() || !strings.HasSuffix(name, ".json") || strings.HasPrefix(name, ".") {
			continue
		}
		path := filepath.Join(sub, name)
		raw, err := os.ReadFile(path)
		if err != nil {
			continue // racing writer or permissions; neither is corruption
		}
		var e entry
		key := strings.TrimSuffix(name, ".json")
		if json.Unmarshal(raw, &e) != nil || e.Schema != schema || e.Key != key || len(e.Value) == 0 ||
			e.CRC != crc32.ChecksumIEEE(e.Value) {
			s.quarantine(path)
			continue
		}
		s.entries[key] = e.Value
		s.stats.Loaded++
	}
	return s, nil
}

// quarantine renames a corrupt entry aside so it is neither trusted nor
// re-examined on every Open. A failed rename (e.g. the file vanished
// under a concurrent process) is ignored.
func (s *Store) quarantine(path string) {
	if os.Rename(path, path+".corrupt") == nil {
		s.stats.Quarantined++
	}
}

// Contains reports whether key is present, without touching the
// hit/miss counters — for planners probing what a run will replay, as
// distinct from the engine actually consuming entries.
func (s *Store) Contains(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[key]
	return ok
}

// Get returns the stored value for key, if present.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.entries[key]
	if ok {
		s.stats.Hits++
	} else {
		s.stats.Misses++
	}
	return v, ok
}

// Put stores value under key, writing through to disk atomically
// (write-temp + rename). The entry is kept in memory even if the disk
// write fails — the caller already paid for the result — and the failure
// is reported and counted.
func (s *Store) Put(key string, value []byte) error {
	raw, err := json.Marshal(entry{Schema: s.schema, Key: key,
		CRC: crc32.ChecksumIEEE(value), Value: value})
	if err != nil {
		return fmt.Errorf("runcache: %w", err)
	}
	s.mu.Lock()
	s.entries[key] = json.RawMessage(value)
	s.stats.Puts++
	s.mu.Unlock()
	if err := s.writeFile(key, raw); err != nil {
		s.mu.Lock()
		s.stats.PutErrors++
		s.mu.Unlock()
		return err
	}
	return nil
}

// SetFileFault installs a write-path fault hook (chaos testing only).
// Set before the store sees concurrent traffic.
func (s *Store) SetFileFault(f FileFault) { s.fault = f }

func (s *Store) writeFile(key string, raw []byte) error {
	if s.fault != nil {
		var err error
		if raw, err = s.fault.WriteEntry(key, raw); err != nil {
			return fmt.Errorf("runcache: %w", err)
		}
	}
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("runcache: %w", err)
	}
	if _, err := tmp.Write(raw); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("runcache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("runcache: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, key+".json")); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("runcache: %w", err)
	}
	return nil
}

// PutBinary stores an opaque binary payload under key. The value is the
// payload's JSON base64 encoding, so binary entries (e.g. simulator
// snapshots) ride the same on-disk entry format — and the same
// quarantine rules — as JSON results.
func (s *Store) PutBinary(key string, data []byte) error {
	v, err := json.Marshal(data)
	if err != nil {
		return fmt.Errorf("runcache: %w", err)
	}
	return s.Put(key, v)
}

// GetBinary returns the binary payload stored under key via PutBinary.
// An entry whose value does not decode as a base64 string is treated as
// a miss, exactly like an undecodable result entry.
func (s *Store) GetBinary(key string) ([]byte, bool) {
	raw, ok := s.Get(key)
	if !ok {
		return nil, false
	}
	var data []byte
	if json.Unmarshal(raw, &data) != nil {
		return nil, false
	}
	return data, true
}

// Key derives the store key for a payload under this store's schema.
func (s *Store) Key(payload []byte) string { return Key(s.schema, payload) }

// Len returns the number of entries currently loaded.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Stats returns a snapshot of the traffic counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Dir returns the per-schema directory holding this store's entries.
func (s *Store) Dir() string { return s.dir }
