package runcache

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// fill opens a store under schema and writes n entries of roughly equal
// size, returning the store.
func fill(t *testing.T, dir, schema string, n int) *Store {
	t.Helper()
	st, err := Open(dir, schema)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		key := st.Key([]byte{byte(i)})
		if err := st.Put(key, []byte(`{"v":"0123456789abcdef"}`)); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// TestGCSweepsSupersededSchemas: directories of schemas not in the keep
// set are removed wholesale; every kept schema's entries survive.
func TestGCSweepsSupersededSchemas(t *testing.T) {
	dir := t.TempDir()
	fill(t, dir, "live-schema-a", 3)
	fill(t, dir, "live-schema-b", 2) // e.g. the trace cache sharing the dir
	fill(t, dir, "superseded-schema", 4)

	rep, err := GC(dir, []string{"live-schema-a", "live-schema-b"}, GCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SchemaDirsRemoved != 1 || rep.BytesFreed == 0 {
		t.Fatalf("report = %+v, want 1 schema dir removed with bytes freed", rep)
	}
	if rep.EntriesKept != 5 {
		t.Fatalf("kept %d entries, want 5", rep.EntriesKept)
	}
	for schema, want := range map[string]int{"live-schema-a": 3, "live-schema-b": 2} {
		st, err := Open(dir, schema)
		if err != nil {
			t.Fatal(err)
		}
		if st.Len() != want {
			t.Fatalf("schema %q has %d entries after GC, want %d", schema, st.Len(), want)
		}
	}
	if st, _ := Open(dir, "superseded-schema"); st.Len() != 0 {
		t.Fatal("superseded schema entries survived the sweep")
	}
}

// TestGCAgeBound: entries older than MaxAge are removed; younger ones
// survive. Quarantined files age out too.
func TestGCAgeBound(t *testing.T) {
	dir := t.TempDir()
	st := fill(t, dir, "s", 4)
	old := time.Now().Add(-48 * time.Hour)
	files, err := os.ReadDir(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	// Age two entries and plant an aged quarantine file.
	for _, de := range files[:2] {
		if err := os.Chtimes(filepath.Join(st.Dir(), de.Name()), old, old); err != nil {
			t.Fatal(err)
		}
	}
	corrupt := filepath.Join(st.Dir(), "junk.json.corrupt")
	if err := os.WriteFile(corrupt, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(corrupt, old, old); err != nil {
		t.Fatal(err)
	}

	rep, err := GC(dir, []string{"s"}, GCOptions{MaxAge: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if rep.EntriesRemoved != 3 { // 2 aged entries + 1 aged quarantine
		t.Fatalf("removed %d entries, want 3 (report %+v)", rep.EntriesRemoved, rep)
	}
	if st, _ := Open(dir, "s"); st.Len() != 2 {
		t.Fatalf("%d entries survived, want 2", st.Len())
	}
}

// TestGCSizeBound: with the directory over MaxBytes, the oldest entries
// are evicted first until it fits.
func TestGCSizeBound(t *testing.T) {
	dir := t.TempDir()
	st := fill(t, dir, "s", 4)
	// Stamp distinct mtimes so eviction order is deterministic: entry i
	// is older than entry i+1.
	files, err := os.ReadDir(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	var newest string
	for i, de := range files {
		mt := time.Now().Add(-time.Duration(len(files)-i) * time.Hour)
		if err := os.Chtimes(filepath.Join(st.Dir(), de.Name()), mt, mt); err != nil {
			t.Fatal(err)
		}
		newest = de.Name()
	}
	var one int64
	if info, err := os.Stat(filepath.Join(st.Dir(), newest)); err == nil {
		one = info.Size()
	} else {
		t.Fatal(err)
	}

	// Budget for two entries: the two oldest must go.
	rep, err := GC(dir, []string{"s"}, GCOptions{MaxBytes: 2 * one})
	if err != nil {
		t.Fatal(err)
	}
	if rep.EntriesRemoved != 2 || rep.EntriesKept != 2 {
		t.Fatalf("report = %+v, want 2 removed / 2 kept", rep)
	}
	if rep.BytesKept > 2*one {
		t.Fatalf("kept %d bytes, over the %d budget", rep.BytesKept, 2*one)
	}
	if _, err := os.Stat(filepath.Join(st.Dir(), newest)); err != nil {
		t.Fatalf("newest entry was evicted: %v", err)
	}
}

// TestGCMissingDirIsNoop: collecting a directory that does not exist is
// not an error.
func TestGCMissingDirIsNoop(t *testing.T) {
	rep, err := GC(filepath.Join(t.TempDir(), "never-created"), []string{"s"}, GCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep != (GCReport{}) {
		t.Fatalf("noop GC reported %+v", rep)
	}
}

// TestGCKeepsForeignRootFiles: files at the cache root that are not
// schema directories are not ours to collect.
func TestGCKeepsForeignRootFiles(t *testing.T) {
	dir := t.TempDir()
	foreign := filepath.Join(dir, "README.txt")
	if err := os.WriteFile(foreign, []byte("hands off"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := GC(dir, []string{"s"}, GCOptions{MaxAge: time.Nanosecond}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(foreign); err != nil {
		t.Fatalf("foreign root file was collected: %v", err)
	}
}
