package btb

import (
	"xorbp/internal/core"
	"xorbp/internal/snap"
)

// RAS is a return address stack. Commercial SMT processors already keep
// the RAS thread-private (§3), which this type models by default; the
// paper notes the XOR mechanism "still applies to shared RAS", so a
// shared, content-encoded variant is available for the ablation study.
type RAS struct {
	shared bool
	guard  *core.Guard
	stacks [core.MaxHWThreads][]uint64
	tops   [core.MaxHWThreads]int
	depth  int
}

// NewRAS returns a per-thread-private RAS of the given depth.
func NewRAS(depth int, ctrl *core.Controller) *RAS {
	r := &RAS{depth: depth, guard: ctrl.Guard(0x4a5, core.StructRAS)}
	for i := range r.stacks {
		r.stacks[i] = make([]uint64, depth)
	}
	ctrl.Register(r, core.StructRAS)
	return r
}

// NewSharedRAS returns a RAS where all hardware threads share one stack,
// with entries content-encoded per domain — the §3 extension. Sharing a
// speculative stack across threads corrupts it constantly; the type exists
// to demonstrate that the encoding still isolates the *contents*.
func NewSharedRAS(depth int, ctrl *core.Controller) *RAS {
	r := NewRAS(depth, ctrl)
	r.shared = true
	return r
}

func (r *RAS) stack(t core.HWThread) ([]uint64, *int) {
	if r.shared {
		return r.stacks[0], &r.tops[0]
	}
	return r.stacks[t], &r.tops[t]
}

// Push records a return address for a call executed by d.
//
//bpvet:hotpath
func (r *RAS) Push(d core.Domain, retAddr uint64) {
	s, top := r.stack(d.Thread)
	s[*top%r.depth] = r.guard.Encode(retAddr, d)
	*top++
}

// Pop predicts the target of a return executed by d. ok is false when the
// stack has underflowed.
//
//bpvet:hotpath
func (r *RAS) Pop(d core.Domain) (retAddr uint64, ok bool) {
	s, top := r.stack(d.Thread)
	if *top == 0 {
		return 0, false
	}
	*top--
	return r.guard.Decode(s[*top%r.depth], d), true
}

// Depth returns the stack capacity.
func (r *RAS) Depth() int { return r.depth }

// FlushAll clears all stacks.
//
//bpvet:hotpath
func (r *RAS) FlushAll() {
	for i := range r.tops {
		r.tops[i] = 0
	}
}

// Snapshot writes every stack's words and top pointer. Flushes only reset
// tops — stale words below the watermark stay physically readable (and
// Pop wraps modulo depth) — so the words themselves must round-trip, not
// just the live prefix.
func (r *RAS) Snapshot(w *snap.Writer) {
	for i := range r.stacks {
		w.U64s(r.stacks[i])
		w.I64(int64(r.tops[i]))
	}
}

// Restore replaces every stack and top pointer. The snapshot must come
// from a RAS of identical depth.
func (r *RAS) Restore(rd *snap.Reader) {
	for i := range r.stacks {
		rd.U64sInto(r.stacks[i])
		r.tops[i] = int(rd.I64())
	}
}

// FlushThread clears thread t's stack (for the shared variant this clears
// the common stack, the conservative behaviour).
//
//bpvet:hotpath
func (r *RAS) FlushThread(t core.HWThread) {
	if r.shared {
		r.tops[0] = 0
		return
	}
	r.tops[t] = 0
}
