package btb

import (
	"testing"

	"xorbp/internal/core"
	"xorbp/internal/predictor"
)

func ctrl(m core.Mechanism) *core.Controller {
	return core.NewController(core.OptionsFor(m), 1)
}

func d(t core.HWThread) core.Domain { return core.Domain{Thread: t, Priv: core.User} }

func TestBTBHitAfterUpdate(t *testing.T) {
	for _, m := range []core.Mechanism{core.Baseline, core.XOR, core.NoisyXOR, core.PreciseFlush} {
		b := New(FPGAConfig(), ctrl(m))
		b.Update(d(0), 0x400100, 0x400800, predictor.UncondDirect)
		tgt, hit := b.Lookup(d(0), 0x400100)
		if !hit || tgt != 0x400800 {
			t.Errorf("%v: hit=%v target=%#x, want hit 0x400800", m, hit, tgt)
		}
	}
}

func TestBTBMissOnUnknownPC(t *testing.T) {
	b := New(FPGAConfig(), ctrl(core.Baseline))
	if _, hit := b.Lookup(d(0), 0x400100); hit {
		t.Fatal("empty BTB reported a hit")
	}
}

func TestBTBCrossThreadIsolationUnderXOR(t *testing.T) {
	// Under XOR-BTB a different hardware thread must not decode the
	// stored tag/target (Listing 1 defense).
	b := New(FPGAConfig(), ctrl(core.XOR))
	b.Update(d(0), 0x400100, 0x400800, predictor.Indirect)
	if tgt, hit := b.Lookup(d(1), 0x400100); hit && tgt == 0x400800 {
		t.Fatal("victim thread decoded attacker's BTB entry under XOR-BTB")
	}
	// Baseline: the attack works.
	bb := New(FPGAConfig(), ctrl(core.Baseline))
	bb.Update(d(0), 0x400100, 0x400800, predictor.Indirect)
	if tgt, hit := bb.Lookup(d(1), 0x400100); !hit || tgt != 0x400800 {
		t.Fatal("baseline should share entries across threads")
	}
}

func TestBTBKeyRotationInvalidatesResidue(t *testing.T) {
	c := ctrl(core.NoisyXOR)
	b := New(FPGAConfig(), c)
	b.Update(d(0), 0x400100, 0x400800, predictor.UncondDirect)
	c.ContextSwitch(0)
	if tgt, hit := b.Lookup(d(0), 0x400100); hit && tgt == 0x400800 {
		t.Fatal("residual entry decoded after key rotation")
	}
}

func TestBTBIndexScramblingMovesEntries(t *testing.T) {
	// With Noisy-XOR, two threads writing the same PC land in different
	// sets (with probability 1 - 1/sets for random index keys).
	c := ctrl(core.NoisyXOR)
	b := New(FPGAConfig(), c)
	if b.index(d(0), 0x400100) == b.index(d(1), 0x400100) {
		// One collision is possible but suspicious; try another PC to
		// rule out systematic failure.
		if b.index(d(0), 0x400200) == b.index(d(1), 0x400200) {
			t.Fatal("index scrambling appears inactive across threads")
		}
	}
	// Without NoisyXOR the index is the plain PC slice.
	bb := New(FPGAConfig(), ctrl(core.XOR))
	if bb.index(d(0), 0x400100) != bb.index(d(1), 0x400100) {
		t.Fatal("XOR-BP must not scramble the index")
	}
}

func TestBTBEviction(t *testing.T) {
	// Filling one set beyond its ways evicts the LRU entry.
	cfg := Config{Sets: 4, Ways: 2, TagBits: 16, TargetBits: 32}
	b := New(cfg, ctrl(core.Baseline))
	// Same set: PCs differing only above index+shift bits.
	base := uint64(0x1000)
	stride := uint64(4 * 4) // sets * pcShift granularity
	b.Update(d(0), base, 0xa0, predictor.UncondDirect)
	b.Update(d(0), base+stride, 0xa1, predictor.UncondDirect)
	// Touch the first so the second becomes LRU.
	b.Lookup(d(0), base)
	b.Update(d(0), base+2*stride, 0xa2, predictor.UncondDirect)
	if _, hit := b.Lookup(d(0), base+stride); hit {
		t.Fatal("LRU entry was not evicted")
	}
	if _, hit := b.Lookup(d(0), base); !hit {
		t.Fatal("MRU entry was evicted")
	}
}

func TestBTBUpdateRefreshesExisting(t *testing.T) {
	b := New(FPGAConfig(), ctrl(core.NoisyXOR))
	b.Update(d(0), 0x400100, 0xaaa0, predictor.Indirect)
	b.Update(d(0), 0x400100, 0xbbb0, predictor.Indirect)
	tgt, hit := b.Lookup(d(0), 0x400100)
	if !hit || tgt != 0xbbb0 {
		t.Fatalf("refresh failed: hit=%v tgt=%#x", hit, tgt)
	}
	if got := b.OccupancyOf(0); got != 1 {
		t.Fatalf("occupancy %d, want 1 (no duplicate allocation)", got)
	}
}

func TestBTBFlushAll(t *testing.T) {
	b := New(FPGAConfig(), ctrl(core.CompleteFlush))
	b.Update(d(0), 0x400100, 0x400800, predictor.UncondDirect)
	b.FlushAll()
	if _, hit := b.Lookup(d(0), 0x400100); hit {
		t.Fatal("entry survived FlushAll")
	}
}

func TestBTBFlushThread(t *testing.T) {
	b := New(FPGAConfig(), ctrl(core.PreciseFlush))
	b.Update(d(0), 0x400100, 0xa0, predictor.UncondDirect)
	b.Update(d(1), 0x500100, 0xb0, predictor.UncondDirect)
	b.FlushThread(0)
	if _, hit := b.Lookup(d(0), 0x400100); hit {
		t.Fatal("thread 0 entry survived FlushThread(0)")
	}
	if _, hit := b.Lookup(d(1), 0x500100); !hit {
		t.Fatal("thread 1 entry did not survive FlushThread(0)")
	}
}

func TestBTBControllerIntegration(t *testing.T) {
	// A context switch under CompleteFlush must clear the registered BTB.
	c := ctrl(core.CompleteFlush)
	b := New(FPGAConfig(), c)
	b.Update(d(0), 0x400100, 0xa0, predictor.UncondDirect)
	c.ContextSwitch(0)
	if _, hit := b.Lookup(d(0), 0x400100); hit {
		t.Fatal("CompleteFlush controller event did not flush BTB")
	}
}

func TestBTBOccupancy(t *testing.T) {
	b := New(FPGAConfig(), ctrl(core.Baseline))
	for i := uint64(0); i < 100; i++ {
		// Stride of one fetch granule: each PC maps to its own set.
		b.Update(d(0), 0x400000+i*4, 0xdead, predictor.UncondDirect)
	}
	if got := b.OccupancyOf(0); got != 100 {
		t.Fatalf("occupancy %d, want 100", got)
	}
	if got := b.OccupancyOf(1); got != 0 {
		t.Fatalf("thread 1 occupancy %d, want 0", got)
	}
}

func TestBTBHitRateStats(t *testing.T) {
	b := New(FPGAConfig(), ctrl(core.Baseline))
	b.Update(d(0), 0x100, 0x200, predictor.UncondDirect)
	b.Lookup(d(0), 0x100) // hit
	b.Lookup(d(0), 0x104) // miss
	if hr := b.HitRate(); hr != 0.5 {
		t.Fatalf("hit rate %v, want 0.5", hr)
	}
	b.ResetStats()
	if b.HitRate() != 0 {
		t.Fatal("ResetStats did not clear counters")
	}
}

func TestBTBStorageBits(t *testing.T) {
	b := New(Config{Sets: 256, Ways: 2, TagBits: 12, TargetBits: 32}, ctrl(core.Baseline))
	want := uint64(256 * 2 * (1 + 3 + 12 + 32))
	if b.StorageBits() != want {
		t.Fatalf("StorageBits = %d, want %d", b.StorageBits(), want)
	}
}

func TestBTBPanicsOnBadGeometry(t *testing.T) {
	for _, cfg := range []Config{{Sets: 3, Ways: 2}, {Sets: 4, Ways: 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			New(cfg, ctrl(core.Baseline))
		}()
	}
}

func TestRASPushPop(t *testing.T) {
	r := NewRAS(16, ctrl(core.Baseline))
	r.Push(d(0), 0x1000)
	r.Push(d(0), 0x2000)
	if v, ok := r.Pop(d(0)); !ok || v != 0x2000 {
		t.Fatalf("pop = %#x,%v", v, ok)
	}
	if v, ok := r.Pop(d(0)); !ok || v != 0x1000 {
		t.Fatalf("pop = %#x,%v", v, ok)
	}
	if _, ok := r.Pop(d(0)); ok {
		t.Fatal("pop on empty stack succeeded")
	}
}

func TestRASPerThreadPrivate(t *testing.T) {
	r := NewRAS(16, ctrl(core.Baseline))
	r.Push(d(0), 0x1000)
	if _, ok := r.Pop(d(1)); ok {
		t.Fatal("thread 1 popped thread 0's private RAS")
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := NewRAS(4, ctrl(core.Baseline))
	for i := uint64(1); i <= 6; i++ {
		r.Push(d(0), i*0x10)
	}
	// Last 4 pushed survive: 0x60, 0x50, 0x40, 0x30.
	want := []uint64{0x60, 0x50, 0x40, 0x30}
	for _, w := range want {
		v, ok := r.Pop(d(0))
		if !ok || v != w {
			t.Fatalf("pop = %#x,%v, want %#x", v, ok, w)
		}
	}
}

func TestSharedRASEncoding(t *testing.T) {
	// Shared RAS under XOR: thread 1 pops thread 0's pushed address but
	// decodes garbage — content isolation holds even for the shared stack.
	c := ctrl(core.XOR)
	r := NewSharedRAS(16, c)
	r.Push(d(0), 0x1000)
	v, ok := r.Pop(d(1))
	if !ok {
		t.Fatal("shared stack should pop")
	}
	if v == 0x1000 {
		t.Fatal("cross-thread RAS value decoded successfully under XOR")
	}
}

func TestRASFlush(t *testing.T) {
	r := NewRAS(8, ctrl(core.CompleteFlush))
	r.Push(d(0), 0x1000)
	r.FlushAll()
	if _, ok := r.Pop(d(0)); ok {
		t.Fatal("RAS entry survived flush")
	}
	r.Push(d(1), 0x2000)
	r.FlushThread(0)
	if _, ok := r.Pop(d(1)); !ok {
		t.Fatal("FlushThread(0) cleared thread 1")
	}
}
