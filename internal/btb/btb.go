// Package btb implements the Branch Target Buffer and Return Address
// Stack with the paper's isolation hooks: BTB tags and targets pass
// through the content codec (XOR-BTB, §5.1) and the set index through the
// index scrambler (Noisy-XOR-BTB, §5.3).
package btb

import (
	"xorbp/internal/bitutil"
	"xorbp/internal/core"
	"xorbp/internal/predictor"
	"xorbp/internal/snap"
)

// pcShift drops the instruction alignment bits before indexing (4-byte
// RISC-V / fixed-width fetch granule).
const pcShift = 2

// Config sizes a BTB. The JSON tags define its canonical wire form
// (internal/wire).
type Config struct {
	// Sets is the number of sets (power of two).
	Sets uint `json:"sets"`
	// Ways is the set associativity.
	Ways uint `json:"ways"`
	// TagBits is the stored partial-tag width.
	TagBits uint `json:"tag_bits"`
	// TargetBits is the stored target width (low bits of the target
	// address; commercial BTBs store partial targets).
	TargetBits uint `json:"target_bits"`
}

// FPGAConfig is the paper's FPGA prototype BTB: 256 sets × 2 ways
// (Table 2, "256 × 2-way").
func FPGAConfig() Config {
	return Config{Sets: 256, Ways: 2, TagBits: 12, TargetBits: 32}
}

// Gem5Config is the paper's gem5 SMT model BTB: 1024 sets × 4 ways.
func Gem5Config() Config {
	return Config{Sets: 1024, Ways: 4, TagBits: 14, TargetBits: 32}
}

// entry is one BTB way. Tag and target are stored *encoded*; valid, class
// and owner are architectural control state (the paper encodes tag and
// target: "both the tag and the target address are encoded ... lest an
// attacker could use performance counters as a covert channel", §5.1).
type entry struct {
	valid  bool
	owner  core.HWThread
	class  predictor.Class
	lru    uint8
	tag    uint64
	target uint64
}

// BTB is a set-associative branch target buffer.
type BTB struct {
	cfg       Config
	guard     *core.Guard
	indexBits uint
	sets      [][]entry

	// stats
	lookups uint64
	hits    uint64
}

// New builds a BTB and registers it with the controller for flush events.
func New(cfg Config, ctrl *core.Controller) *BTB {
	if !bitutil.IsPow2(uint64(cfg.Sets)) {
		panic("btb: sets must be a power of two")
	}
	if cfg.Ways == 0 {
		panic("btb: zero ways")
	}
	b := &BTB{
		cfg:       cfg,
		guard:     ctrl.Guard(0xb7b, core.StructBTB),
		indexBits: bitutil.Log2(uint64(cfg.Sets)),
		sets:      make([][]entry, cfg.Sets),
	}
	for i := range b.sets {
		b.sets[i] = make([]entry, cfg.Ways)
	}
	ctrl.Register(b, core.StructBTB)
	return b
}

// index computes the physical set index for pc under domain d, applying
// the Noisy-XOR index encoding when active.
func (b *BTB) index(d core.Domain, pc uint64) uint64 {
	logical := (pc >> pcShift) & bitutil.Mask(b.indexBits)
	return b.guard.ScrambleIndex(logical, d, b.indexBits)
}

// tagOf extracts the logical (unencoded) tag of pc.
func (b *BTB) tagOf(pc uint64) uint64 {
	return (pc >> (pcShift + b.indexBits)) & bitutil.Mask(b.cfg.TagBits)
}

// Lookup predicts the target of the branch at pc. The stored tags are
// decoded with d's content key before comparison, so an entry written by
// another domain (or before a key rotation) matches only with probability
// 2^-TagBits — the content-isolation property. On a hit the stored target
// is decoded with the same key; a false hit therefore yields a garbage
// target, which the pipeline discovers at execute as a misprediction.
//
//bpvet:hotpath
func (b *BTB) Lookup(d core.Domain, pc uint64) (target uint64, hit bool) {
	b.lookups++
	set := b.sets[b.index(d, pc)]
	want := b.tagOf(pc)
	for i := range set {
		e := &set[i]
		if !e.valid {
			continue
		}
		// Precise Flush carries a thread ID per entry; the same ID gates
		// lookups, which is what defends SMT reuse attacks in Table 1
		// ("attaching the thread ID to each entry can help eliminate
		// malicious reuse across threads", §4.1).
		if b.guard.TracksOwners() && e.owner != d.Thread {
			continue
		}
		got := b.guard.Decode(e.tag, d) & bitutil.Mask(b.cfg.TagBits)
		if got == want {
			b.hits++
			b.touch(set, i)
			return b.guard.Decode(e.target, d) & bitutil.Mask(b.cfg.TargetBits), true
		}
	}
	return 0, false
}

// Update records a taken branch's target. Existing matching entries are
// refreshed; otherwise the LRU way is replaced. Tag and target are
// encoded with d's content key before being stored.
//
//bpvet:hotpath
func (b *BTB) Update(d core.Domain, pc uint64, target uint64, class predictor.Class) {
	set := b.sets[b.index(d, pc)]
	want := b.tagOf(pc)
	victim := 0
	for i := range set {
		e := &set[i]
		if e.valid && b.guard.Decode(e.tag, d)&bitutil.Mask(b.cfg.TagBits) == want &&
			(!b.guard.TracksOwners() || e.owner == d.Thread) {
			victim = i
			goto write
		}
		if !e.valid {
			victim = i
		} else if set[victim].valid && e.lru < set[victim].lru {
			victim = i
		}
	}
write:
	e := &set[victim]
	e.valid = true
	e.owner = d.Thread
	e.class = class
	e.tag = b.guard.Encode(want, d)
	e.target = b.guard.Encode(target&bitutil.Mask(b.cfg.TargetBits), d)
	b.touch(set, victim)
}

// touch bumps way i to most-recently-used by aging the others.
func (b *BTB) touch(set []entry, i int) {
	for j := range set {
		if set[j].lru > 0 {
			set[j].lru--
		}
	}
	set[i].lru = uint8(len(set))
}

// FlushAll invalidates every entry (Complete Flush).
//
//bpvet:hotpath
func (b *BTB) FlushAll() {
	for s := range b.sets {
		for w := range b.sets[s] {
			b.sets[s][w] = entry{}
		}
	}
}

// FlushThread invalidates entries owned by t (Precise Flush). Ownership is
// tracked unconditionally in the BTB because, unlike the PHT, BTB entries
// are wide enough that a thread-ID field is plausible (§4.1).
//
//bpvet:hotpath
func (b *BTB) FlushThread(t core.HWThread) {
	for s := range b.sets {
		for w := range b.sets[s] {
			if b.sets[s][w].valid && b.sets[s][w].owner == t {
				b.sets[s][w] = entry{}
			}
		}
	}
}

// Snapshot writes every way of every set plus the lookup/hit counters.
// Tags and targets are serialized in their stored (encoded) form, so the
// snapshot round-trips without touching keys.
func (b *BTB) Snapshot(w *snap.Writer) {
	for s := range b.sets {
		for i := range b.sets[s] {
			e := &b.sets[s][i]
			w.Bool(e.valid)
			w.U8(uint8(e.owner))
			w.U8(uint8(e.class))
			w.U8(e.lru)
			w.U64(e.tag)
			w.U64(e.target)
		}
	}
	w.U64(b.lookups)
	w.U64(b.hits)
}

// Restore replaces every way and the counters. The snapshot must come
// from a BTB of identical geometry.
func (b *BTB) Restore(r *snap.Reader) {
	for s := range b.sets {
		for i := range b.sets[s] {
			e := &b.sets[s][i]
			e.valid = r.Bool()
			e.owner = core.HWThread(r.U8())
			e.class = predictor.Class(r.U8())
			e.lru = r.U8()
			e.tag = r.U64()
			e.target = r.U64()
		}
	}
	b.lookups = r.U64()
	b.hits = r.U64()
}

// OccupancyOf counts valid entries owned by thread t — used to reproduce
// the paper's residual-entry analysis for Figure 7 (gobmk+libquantum
// retain 500–800 entries across switches).
func (b *BTB) OccupancyOf(t core.HWThread) int {
	n := 0
	for s := range b.sets {
		for w := range b.sets[s] {
			if b.sets[s][w].valid && b.sets[s][w].owner == t {
				n++
			}
		}
	}
	return n
}

// HitRate returns the fraction of lookups that hit.
func (b *BTB) HitRate() float64 {
	if b.lookups == 0 {
		return 0
	}
	return float64(b.hits) / float64(b.lookups)
}

// ResetStats clears the hit/lookup counters (e.g. after warmup).
func (b *BTB) ResetStats() { b.lookups, b.hits = 0, 0 }

// StorageBits reports the modelled SRAM payload: valid + class(3) +
// tag + target per entry (owner/LRU bookkeeping is costed separately by
// the hardware model when Precise Flush is configured).
func (b *BTB) StorageBits() uint64 {
	per := uint64(1 + 3 + b.cfg.TagBits + b.cfg.TargetBits)
	return uint64(b.cfg.Sets) * uint64(b.cfg.Ways) * per
}

// Entries reports the entry count (for the Precise Flush walk cost
// model).
func (b *BTB) Entries() uint64 { return uint64(b.cfg.Sets) * uint64(b.cfg.Ways) }

// Config returns the geometry.
func (b *BTB) Config() Config { return b.cfg }
