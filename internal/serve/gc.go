package serve

import (
	"fmt"
	"io"
	"sync"
	"time"

	"xorbp/internal/runcache"
)

// StartGC garbage-collects the cache directory on a fixed interval, so
// a long-lived worker bounds its own disk use instead of waiting for a
// manual `bpsim -cache-gc`. The schemas list names the live encodings
// whose subdirectories survive (superseded schema generations are
// removed wholesale); opts carries the same age/size bounds the manual
// sweep takes. Reports are written to log (one line per pass; nil
// discards them). The returned stop function ends the loop; it does not
// interrupt a pass already in flight.
//
// Deleting entries under a store another process has open is safe by
// the cache's design: loaded entries are memory-resident, content is
// immutable, and a vanished entry only costs a future re-simulation.
func StartGC(dir string, schemas []string, interval time.Duration, opts runcache.GCOptions, log io.Writer) (stop func()) {
	if interval <= 0 || dir == "" {
		return func() {}
	}
	done := make(chan struct{})
	pass := func() {
		rep, err := runcache.GC(dir, schemas, opts)
		if log == nil {
			return
		}
		if err != nil {
			fmt.Fprintf(log, "cache-gc %s: %v\n", dir, err) //bpvet:allow best-effort GC telemetry to the worker log
			return
		}
		fmt.Fprintf(log, "cache-gc %s: %s\n", dir, rep) //bpvet:allow best-effort GC telemetry to the worker log
	}
	go func() {
		// One pass up front: a worker restarted more often than the
		// interval must still shed superseded schema directories.
		pass()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
			}
			pass()
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}
