package serve_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"xorbp/internal/core"
	"xorbp/internal/cpu"
	"xorbp/internal/experiment"
	"xorbp/internal/runcache"
	"xorbp/internal/serve"
	"xorbp/internal/wire"
	"xorbp/internal/workload"
)

// testScale is MicroScale, shrunk a further 4x under -short (ratios
// preserved) so the race-enabled CI loop stays fast.
func testScale() experiment.Scale {
	s := experiment.MicroScale()
	if testing.Short() {
		s.WarmupInstr /= 4
		s.MeasureInstr /= 4
		s.SMTWarmupInstr /= 4
		s.SMTMeasureInstr /= 4
		for i := range s.TimerPeriods {
			s.TimerPeriods[i] /= 4
		}
	}
	return s
}

// startWorker spins up one in-process bpserve worker and returns its
// host:port address (what bpsim -serve-addrs takes) plus the server.
func startWorker(t *testing.T, capacity int, store *runcache.Store) (string, *serve.Server) {
	t.Helper()
	srv := serve.New(capacity, store)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return strings.TrimPrefix(ts.URL, "http://"), srv
}

// probedClient builds a wire.Client over the given workers and fails
// the test if the probe does.
func probedClient(t *testing.T, addrs ...string) *wire.Client {
	t.Helper()
	c := wire.NewClient(addrs)
	if err := c.Probe(t.Context()); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestRemoteMatchesSerial is the distributed engine's core guarantee:
// the same figure rendered through a serial local executor and through
// a remote worker (full wire round-trip: spec out, result back) must be
// byte-identical, because every simulation is a pure function of its
// canonical spec.
func TestRemoteMatchesSerial(t *testing.T) {
	scale := testScale()
	serial := experiment.NewSessionWith(scale, experiment.NewExecutor(1)).Figure1().Render()

	addr, srv := startWorker(t, 4, nil)
	client := probedClient(t, addr)
	exec := experiment.NewExecutorWith(client.Workers(), client)
	remote := experiment.NewSessionWith(scale, exec).Figure1().Render()

	if serial != remote {
		t.Fatalf("remote Figure 1 differs from serial:\n--- serial ---\n%s\n--- remote ---\n%s",
			serial, remote)
	}
	if err := exec.Err(); err != nil {
		t.Fatalf("remote executor poisoned: %v", err)
	}
	if srv.Runs() == 0 {
		t.Fatal("worker executed no simulations — the remote path was not exercised")
	}
}

// TestWorkerSharedStore: two specs through a store-backed worker; the
// same specs again replay from the worker's cache without simulating,
// and the store content decodes as canonical results.
func TestWorkerSharedStore(t *testing.T) {
	dir := t.TempDir()
	st, err := runcache.Open(dir, wire.SchemaVersion())
	if err != nil {
		t.Fatal(err)
	}
	addr, srv := startWorker(t, 2, st)
	client := probedClient(t, addr)

	scale := testScale()
	e1 := experiment.NewExecutorWith(2, client)
	first := experiment.NewSessionWith(scale, e1)
	a := first.SingleCoreOverhead(coreNoisy(), pair0(), 50_000)
	if srv.Runs() == 0 {
		t.Fatal("no simulations reached the worker")
	}
	runsAfterFirst := srv.Runs()

	// A later "process" (fresh executor, no local store) asks the same
	// worker: results come from the worker's store.
	e2 := experiment.NewExecutorWith(2, client)
	b := experiment.NewSessionWith(scale, e2).SingleCoreOverhead(coreNoisy(), pair0(), 50_000)
	if a != b {
		t.Fatalf("replayed overhead differs: %v vs %v", a, b)
	}
	if srv.Runs() != runsAfterFirst {
		t.Fatalf("worker re-simulated cached specs: %d -> %d runs", runsAfterFirst, srv.Runs())
	}
	if srv.Replays() == 0 {
		t.Fatal("worker reported no store replays")
	}
}

// TestWorkerSingleFlight: concurrent requests for one spec simulate it
// once — the first claims it, the rest wait and replay its stored
// result.
func TestWorkerSingleFlight(t *testing.T) {
	st, err := runcache.Open(t.TempDir(), wire.SchemaVersion())
	if err != nil {
		t.Fatal(err)
	}
	addr, srv := startWorker(t, 4, st)
	client := probedClient(t, addr)

	spec := specFor(t)
	const n = 4
	results := make([]wire.Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[g], errs[g] = client.Run(t.Context(), spec)
		}()
	}
	wg.Wait()
	for g := 0; g < n; g++ {
		if errs[g] != nil {
			t.Fatal(errs[g])
		}
		if results[g].Cycles == 0 || results[g].Cycles != results[0].Cycles {
			t.Fatalf("request %d disagrees: %+v vs %+v", g, results[g], results[0])
		}
	}
	if got := srv.Runs(); got != 1 {
		t.Fatalf("worker simulated %d times for %d concurrent identical requests, want 1", got, n)
	}
	if srv.Replays()+1 != n {
		t.Fatalf("replays = %d, want %d", srv.Replays(), n-1)
	}
	if client.Replays() != n-1 {
		t.Fatalf("client counted %d worker replays, want %d", client.Replays(), n-1)
	}
}

// TestWorkerSchemaMismatch: a client on a different schema generation
// is refused with 409, not answered with incompatible bytes.
func TestWorkerSchemaMismatch(t *testing.T) {
	addr, _ := startWorker(t, 1, nil)
	body, _ := json.Marshal(wire.RunRequest{Schema: "xorbp-run/epoch0/ancient", Spec: wire.Spec{}})
	resp, err := http.Post("http://"+addr+"/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("schema mismatch answered %s, want 409", resp.Status)
	}
}

// TestWorkerRejectsInvalidSpec: a spec naming unknown registries is a
// 400 — the client must not retry it elsewhere, and the worker must not
// guess.
func TestWorkerRejectsInvalidSpec(t *testing.T) {
	addr, _ := startWorker(t, 1, nil)
	spec := wire.Spec{Codec: "rot13", Scrambler: "xor", Pred: "tage",
		Threads: []string{"gcc"}, Scale: testScale()}
	body, _ := json.Marshal(wire.RunRequest{Schema: wire.SchemaVersion(), Spec: spec})
	resp, err := http.Post("http://"+addr+"/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid spec answered %s, want 400", resp.Status)
	}
	// And through the client: a non-retryable error that poisons the
	// executor rather than hanging the batch.
	client := probedClient(t, addr)
	if _, err := client.Run(t.Context(), spec); err == nil {
		t.Fatal("client accepted an invalid spec")
	}
}

// TestWorkerDrain: a draining worker flips /healthz and refuses new
// runs with 503 (the signal clients use to fail over).
func TestWorkerDrain(t *testing.T) {
	addr, srv := startWorker(t, 1, nil)
	srv.SetDraining(true)

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h wire.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Status != "draining" {
		t.Fatalf("draining worker reports status %q", h.Status)
	}

	body, _ := json.Marshal(wire.RunRequest{Schema: wire.SchemaVersion()})
	resp, err = http.Post("http://"+addr+"/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining worker answered %s, want 503", resp.Status)
	}
}

// TestClientCapacityFanOut: Probe learns each worker's capacity and
// Workers() sums them — the executor's fan-out width over the fleet.
func TestClientCapacityFanOut(t *testing.T) {
	a1, _ := startWorker(t, 3, nil)
	a2, _ := startWorker(t, 2, nil)
	client := probedClient(t, a1, a2)
	if got := client.Workers(); got != 5 {
		t.Fatalf("fleet capacity = %d, want 5", got)
	}
}

// TestClientFailsOverToLiveWorker: with one dead address in the set,
// runs still resolve on the live worker.
func TestClientFailsOverToLiveWorker(t *testing.T) {
	addr, srv := startWorker(t, 2, nil)
	// A port from the dynamic range that nothing in this test listens
	// on; probe only the live worker (Probe is strict by design), then
	// hand the client a fleet where the dead address comes first.
	client := wire.NewClient([]string{"127.0.0.1:1", addr})
	if err := client.Probe(t.Context()); err == nil {
		t.Fatal("probe accepted a dead worker")
	}
	spec := specFor(t)
	res, err := client.Run(t.Context(), spec)
	if err != nil {
		t.Fatalf("failover run: %v", err)
	}
	if res.Cycles == 0 || srv.Runs() != 1 {
		t.Fatalf("failover did not execute on the live worker (cycles=%d, runs=%d)",
			res.Cycles, srv.Runs())
	}
}

// specFor hand-builds one valid canonical spec (the same shape the
// engine's specToWire emits).
func specFor(t *testing.T) wire.Spec {
	t.Helper()
	o := core.OptionsFor(core.Baseline).Normalized()
	spec := wire.Spec{
		Opts:      o,
		Codec:     o.Codec.Name(),
		Scrambler: o.Scrambler.Name(),
		Pred:      "tage",
		Cfg:       cpu.FPGAConfig(),
		Timer:     50_000,
		Threads:   []string{"gcc", "calculix"},
		Scale:     testScale(),
	}
	spec.Opts.Codec, spec.Opts.Scrambler = nil, nil
	return spec
}

// coreNoisy is the paper's full mechanism, the configuration the shared
// -store test sweeps.
func coreNoisy() core.Options { return core.OptionsFor(core.NoisyXOR) }

// pair0 is the first Table 3 workload pair.
func pair0() workload.Pair { return workload.SingleCorePairs()[0] }

// TestWorkerTokenAuth: a -token worker refuses untokened and
// wrong-token requests with 401 on both endpoints, and serves a client
// carrying the right token end-to-end.
func TestWorkerTokenAuth(t *testing.T) {
	srv := serve.New(2, nil)
	srv.SetToken("hunter2")
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	addr := strings.TrimPrefix(ts.URL, "http://")

	// No token: 401 on both endpoints.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("untokened healthz answered %s, want 401", resp.Status)
	}
	body, _ := json.Marshal(wire.RunRequest{Schema: wire.SchemaVersion(), Spec: specFor(t)})
	resp, err = http.Post(ts.URL+"/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("untokened run answered %s, want 401", resp.Status)
	}

	// Wrong token: still 401.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("Authorization", "Bearer hunter3")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("wrong-token healthz answered %s, want 401", resp.Status)
	}

	// Untokened client: Probe must fail loudly, not at the first run.
	bare := wire.NewClient([]string{addr})
	if err := bare.Probe(t.Context()); err == nil {
		t.Fatal("untokened probe accepted by a token-protected worker")
	}

	// Right token: full round-trip.
	client := wire.NewClient([]string{addr})
	client.SetToken("hunter2")
	if err := client.Probe(t.Context()); err != nil {
		t.Fatal(err)
	}
	res, err := client.Run(t.Context(), specFor(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || srv.Runs() != 1 {
		t.Fatalf("tokened run did not execute (cycles=%d, runs=%d)", res.Cycles, srv.Runs())
	}
}

// TestWorkerRunsAttackJobs: the worker executes attack-kind specs
// through the same endpoint, store write-through included, and the
// result round-trips with its counted outcome.
func TestWorkerRunsAttackJobs(t *testing.T) {
	st, err := runcache.Open(t.TempDir(), wire.SchemaVersion())
	if err != nil {
		t.Fatal(err)
	}
	addr, srv := startWorker(t, 2, st)
	client := probedClient(t, addr)

	o := core.OptionsFor(core.NoisyXOR).Normalized()
	spec := wire.Spec{
		Kind:      wire.KindAttack,
		Opts:      o,
		Codec:     o.Codec.Name(),
		Scrambler: o.Scrambler.Name(),
		Attack: &wire.AttackSpec{
			Name:     "btb_training",
			Scenario: "single",
			Trials:   200,
			Seed:     5,
		},
	}
	spec.Opts.Codec, spec.Opts.Scrambler = nil, nil
	res, err := client.Run(t.Context(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Attack == nil || res.Attack.Trials != 200 {
		t.Fatalf("attack result = %+v, want 200 counted trials", res.Attack)
	}
	if srv.Runs() != 1 {
		t.Fatalf("worker runs = %d, want 1", srv.Runs())
	}
	// The same job again replays from the worker's store.
	res2, err := client.Run(t.Context(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if srv.Runs() != 1 || srv.Replays() != 1 {
		t.Fatalf("replay did not come from the store (runs=%d, replays=%d)", srv.Runs(), srv.Replays())
	}
	if *res2.Attack != *res.Attack {
		t.Fatalf("replayed outcome %+v differs from computed %+v", res2.Attack, res.Attack)
	}
	// An attack job naming an unregistered attack is a 400.
	bad := spec
	bad.Attack = &wire.AttackSpec{Name: "rowhammer", Scenario: "single", Trials: 10}
	if _, err := client.Run(t.Context(), bad); err == nil {
		t.Fatal("worker accepted an unregistered attack")
	}
}

// TestStartGC: the periodic sweep removes superseded schema directories
// and stops when told to.
func TestStartGC(t *testing.T) {
	dir := t.TempDir()
	stale, err := runcache.Open(dir, "xorbp-run/epoch0/fossil")
	if err != nil {
		t.Fatal(err)
	}
	if err := stale.Put(strings.Repeat("ab", 32), []byte(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	live, err := runcache.Open(dir, wire.SchemaVersion())
	if err != nil {
		t.Fatal(err)
	}
	if err := live.Put(strings.Repeat("cd", 32), []byte(`{"y":2}`)); err != nil {
		t.Fatal(err)
	}

	var log bytes.Buffer
	stop := serve.StartGC(dir, []string{wire.SchemaVersion()}, 10*time.Millisecond,
		runcache.GCOptions{}, &log)
	defer stop()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(filepath.Join(stale.Dir())); os.IsNotExist(err) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stale schema dir still present after 5s; log:\n%s", log.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := os.Stat(live.Dir()); err != nil {
		t.Fatalf("live schema dir was swept: %v", err)
	}
	stop()
	stop() // idempotent
}
