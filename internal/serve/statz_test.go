package serve_test

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"xorbp/internal/runcache"
	"xorbp/internal/serve"
	"xorbp/internal/wire"
)

// startWorkerFrom serves an already-configured server (startWorker
// always builds a fresh untokened one).
func startWorkerFrom(t *testing.T, srv *serve.Server) (string, *serve.Server) {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return strings.TrimPrefix(ts.URL, "http://"), srv
}

// TestStatzReportsLoadAndCache: /statz is the routing scorers' input —
// it must reflect the worker's capacity, run count, and store hit/miss
// counters, and honor the same bearer token as the other endpoints.
func TestStatzReportsLoadAndCache(t *testing.T) {
	dir := t.TempDir()
	store, err := runcache.Open(dir, wire.SchemaVersion())
	if err != nil {
		t.Fatal(err)
	}
	addr, _ := startWorker(t, 3, store)
	client := probedClient(t, addr)

	st, err := client.Statz(t.Context(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Capacity != 3 || st.Runs != 0 || st.Inflight != 0 {
		t.Fatalf("fresh worker statz %+v, want idle capacity-3", st)
	}

	spec := specFor(t)
	if _, err := client.Run(t.Context(), spec); err != nil {
		t.Fatal(err)
	}
	st, err = client.Statz(t.Context(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Runs != 1 || st.CacheMisses == 0 {
		t.Fatalf("statz after one simulation %+v, want runs=1 and a store miss", st)
	}

	// The same spec again replays from the store: hits move, runs don't.
	if _, err := client.Run(t.Context(), spec); err != nil {
		t.Fatal(err)
	}
	st, err = client.Statz(t.Context(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Runs != 1 || st.Replays != 1 || st.CacheHits == 0 {
		t.Fatalf("statz after replay %+v, want runs=1 replays=1 and a store hit", st)
	}

	if _, err := client.Statz(t.Context(), 9); err == nil {
		t.Fatal("statz accepted an out-of-range worker index")
	}
}

// TestStatzRequiresToken: a token-protected worker refuses an
// untokened statz poll — load telemetry is fleet-internal.
func TestStatzRequiresToken(t *testing.T) {
	srv := serve.New(2, nil)
	srv.SetToken("hunter2")
	addr, _ := startWorkerFrom(t, srv)

	resp, err := http.Get("http://" + addr + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("untokened statz answered %s, want 401", resp.Status)
	}

	client := wire.NewClient([]string{addr})
	client.SetToken("hunter2")
	if _, err := client.Statz(t.Context(), 0); err != nil {
		t.Fatalf("tokened statz failed: %v", err)
	}
}
