// Package serve implements the bpserve work-server: an HTTP daemon that
// accepts canonical wire specs (internal/wire), simulates them through
// the in-process backend, and returns canonical results. Workers
// write every result through to a run-cache directory, so a fleet of
// daemons sharing one directory (or sharing it with bpsim processes)
// forms a distributed, deduplicating sweep engine: within a daemon,
// concurrent requests for one spec single-flight, and a spec resolved
// by any process is never re-simulated by a process that opens the
// store afterwards.
package serve

import (
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"xorbp/internal/experiment"
	"xorbp/internal/runcache"
	"xorbp/internal/runner"
	"xorbp/internal/wire"
)

// Server handles the wire protocol over a bounded simulation pool.
type Server struct {
	backend  experiment.Backend
	store    *runcache.Store // may be nil (no write-through)
	sem      chan struct{}   // per-worker concurrency limit
	capacity int
	token    string // shared bearer token ("" = open)

	// single deduplicates concurrent requests for one spec (by wire
	// key): the first claims the key, the rest wait and replay its
	// stored result. Only effective with a store — without one there is
	// nowhere to share the result from.
	fmu    sync.Mutex
	single map[string]chan struct{}

	draining atomic.Bool
	inflight atomic.Int64
	queued   atomic.Int64 // accepted requests waiting for a slot
	runs     atomic.Uint64
	replays  atomic.Uint64
}

// New creates a server simulating at most capacity specs concurrently
// (<= 0 selects one per available CPU), writing results through to
// store (nil disables).
func New(capacity int, store *runcache.Store) *Server {
	if capacity <= 0 {
		capacity = runner.DefaultWorkers()
	}
	return &Server{
		backend:  experiment.LocalBackend{},
		store:    store,
		sem:      make(chan struct{}, capacity),
		capacity: capacity,
		single:   make(map[string]chan struct{}),
	}
}

// Capacity returns the concurrency limit.
func (s *Server) Capacity() int { return s.capacity }

// SetBackend replaces the execution backend (default: the in-process
// LocalBackend). Benchmark fleets substitute a throttled backend to
// model slow workers; results stay pure functions of the spec under
// any backend. Call before the server starts handling requests.
func (s *Server) SetBackend(b experiment.Backend) {
	if b != nil {
		s.backend = b
	}
}

// SetToken requires every request to carry "Authorization: Bearer
// <token>" (wire.Client.SetToken): mismatches and missing headers are
// refused with 401. Call before the server starts handling requests.
// The comparison is constant-time, so response timing leaks nothing
// about the token. An empty token leaves the server open (the trusted-
// LAN default). The wire protocol is still plaintext HTTP — the token
// authenticates peers on a network where eavesdropping is not the
// threat; it is not transport security.
func (s *Server) SetToken(token string) { s.token = token }

// authorized checks the request's bearer token against the server's.
func (s *Server) authorized(r *http.Request) bool {
	if s.token == "" {
		return true
	}
	got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
	return ok && subtle.ConstantTimeCompare([]byte(got), []byte(s.token)) == 1
}

// Runs returns how many simulations the server has executed.
func (s *Server) Runs() uint64 { return s.runs.Load() }

// Replays returns how many requests were served from the store.
func (s *Server) Replays() uint64 { return s.replays.Load() }

// SetDraining marks the server as shutting down: /healthz flips to
// "draining" and new /run requests are refused with 503, so clients
// fail over to other workers while http.Server.Shutdown waits out the
// in-flight simulations.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Handler returns the wire-protocol HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/statz", s.handleStatz)
	mux.HandleFunc("/run", s.handleRun)
	return mux
}

// handleStatz reports the worker's live load and cache counters — the
// inputs of the fleet routing scorers (least-loaded steers around deep
// queues; affinity watches the cache hit rate it creates).
func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	if !s.authorized(r) {
		writeError(w, http.StatusUnauthorized, "missing or wrong bearer token")
		return
	}
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "statz is GET-only")
		return
	}
	st := wire.Statz{
		Capacity: s.capacity,
		Inflight: int(s.inflight.Load()),
		Queued:   int(s.queued.Load()),
		Runs:     s.runs.Load(),
		Replays:  s.replays.Load(),
	}
	if s.store != nil {
		cs := s.store.Stats()
		st.CacheHits, st.CacheMisses = uint64(cs.Hits), uint64(cs.Misses)
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if !s.authorized(r) {
		writeError(w, http.StatusUnauthorized, "missing or wrong bearer token")
		return
	}
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "healthz is GET-only")
		return
	}
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, wire.Health{
		Status:   status,
		Schema:   wire.SchemaVersion(),
		Capacity: s.capacity,
		Inflight: int(s.inflight.Load()),
		Runs:     s.runs.Load(),
		Replays:  s.replays.Load(),
	})
}

// maxSpecBody bounds a /run request body: a canonical spec is well
// under a kilobyte, so anything approaching 1 MiB is garbage, not a
// spec.
const maxSpecBody = 1 << 20

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if !s.authorized(r) {
		writeError(w, http.StatusUnauthorized, "missing or wrong bearer token")
		return
	}
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "run is POST-only")
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "worker is draining")
		return
	}
	var req wire.RunRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decoding request: %v", err))
		return
	}
	if req.Schema != wire.SchemaVersion() {
		writeError(w, http.StatusConflict, fmt.Sprintf(
			"schema mismatch: client %q, worker %q", req.Schema, wire.SchemaVersion()))
		return
	}

	// Serve from the store when a past run already resolved this spec,
	// and single-flight concurrent requests for the same spec: the
	// first claims the key, later ones wait and replay its stored
	// result instead of simulating the same thing twice.
	var key string
	var claim chan struct{}
	if s.store != nil {
		key = req.Spec.Key()
		for {
			if raw, ok := s.store.Get(key); ok {
				if res, err := wire.DecodeResult(raw); err == nil {
					s.replays.Add(1)
					writeJSON(w, http.StatusOK, wire.RunResponse{
						Schema: wire.SchemaVersion(), Result: res, Cached: true,
					})
					return
				}
			}
			s.fmu.Lock()
			if ch, busy := s.single[key]; busy {
				s.fmu.Unlock()
				select {
				case <-ch: // owner finished (or failed): re-check the store
				case <-r.Context().Done():
					return
				}
				continue
			}
			claim = make(chan struct{})
			s.single[key] = claim
			s.fmu.Unlock()
			break
		}
		defer func() {
			s.fmu.Lock()
			close(claim)
			delete(s.single, key)
			s.fmu.Unlock()
		}()
	}

	// Bounded simulation slot; a disconnecting client frees its place in
	// line. The queued gauge counts the wait, so /statz exposes the
	// backlog a least-loaded router steers around.
	s.queued.Add(1)
	select {
	case s.sem <- struct{}{}:
		s.queued.Add(-1)
	case <-r.Context().Done():
		s.queued.Add(-1)
		return
	}
	s.inflight.Add(1)
	start := time.Now() //bpvet:allow per-request duration telemetry for the worker log
	res, err := s.backend.Run(r.Context(), req.Spec)
	dur := time.Since(start) //bpvet:allow per-request duration telemetry for the worker log
	s.inflight.Add(-1)
	<-s.sem
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.runs.Add(1)
	if s.store != nil {
		// Write-through, best-effort: canonical bytes, so every writer of
		// this key writes identical content.
		_ = s.store.Put(key, res.Encode())
	}
	writeJSON(w, http.StatusOK, wire.RunResponse{
		Schema:     wire.SchemaVersion(),
		Result:     res,
		DurationMS: float64(dur) / float64(time.Millisecond),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, wire.Error{Error: msg})
}
