// Package hwcost estimates the area and timing overhead of the
// Noisy-XOR-BP hardware (Table 5): the XOR encode/decode stages, the
// index scrambler, and the per-hardware-thread key registers, relative to
// the SRAM structures they attach to.
//
// The paper synthesized RTL with a TSMC 28 nm flow; this package provides
// a transparent first-order model in the CACTI tradition — decoder depth
// grows with log2(entries), array wire delay with sqrt(bits), and the
// added key-distribution network with the same sqrt term — with constants
// calibrated once against the paper's 2-way-256 BTB anchor (+0.94%
// timing, +0.15% area). Ratios, not picoseconds, are the deliverable:
// Table 5 reports percent increases, and the ratio of one XOR stage to an
// SRAM access path is technology-stable to first order (DESIGN.md §2).
package hwcost

import (
	"fmt"
	"math"

	"xorbp/internal/report"
)

// Technology constants (28 nm class, first order).
const (
	// SRAM access path: t = tBase + tDecode*log2(entries) + tWire*sqrt(bits).
	tBasePS   = 180.0
	tDecodePS = 28.0
	tWirePS   = 0.9

	// Added path: one XOR2 stage plus the key-distribution buffering that
	// scales with the physical array dimension.
	tXorPS     = 2.0
	tKeyDistPS = 0.018 // per sqrt(bit)

	// Exposure of the added logic on the critical path. The BTB's tag
	// XOR overlaps the compare; the PHT's sits behind the index hash.
	exposureBTB = 1.0
	exposurePHT = 2.6

	// Area: 6T bitcell with array overhead vs the XOR/scrambler gates.
	// Key registers are a per-core resource shared by every table and are
	// therefore excluded from per-structure area (the paper's convention,
	// which is what makes sub-0.3% figures possible).
	bitcellUM2  = 0.12
	arrayOvhd   = 1.35
	xorGateUM2  = 0.045 // array-pitch-matched XOR column cell
	scramGates  = 1.0   // scrambler XOR per index bit
	keyRegBits  = 128   // content + index key per hardware thread (core-level)
	keyRegFlop  = 1.2
	keyRegShare = 0.0 // amortized at core level, not per table
)

// Structure describes one SRAM structure being secured.
type Structure struct {
	// Name labels the row.
	Name string
	// Entries is the logical entry count.
	Entries uint64
	// EntryBits is the payload width per entry (encoded bits).
	EntryBits uint64
	// IndexBits is the decoder width (scrambled bits).
	IndexBits uint64
	// PHT marks direction tables (different path exposure than the BTB).
	PHT bool
}

// Bits returns the array payload size.
func (s Structure) Bits() float64 { return float64(s.Entries * s.EntryBits) }

// AccessPS estimates the unmodified SRAM access path.
func (s Structure) AccessPS() float64 {
	return tBasePS + tDecodePS*math.Log2(float64(s.Entries)) + tWirePS*math.Sqrt(s.Bits())
}

// AddedPS estimates the extra path delay of Noisy-XOR: the content XOR
// stage plus key distribution, weighted by the structure's exposure.
func (s Structure) AddedPS() float64 {
	exposure := exposureBTB
	if s.PHT {
		exposure = exposurePHT
	}
	return exposure * (tXorPS + tKeyDistPS*math.Sqrt(s.Bits()))
}

// TimingOverhead returns the fractional critical-path increase.
func (s Structure) TimingOverhead() float64 { return s.AddedPS() / s.AccessPS() }

// AreaUM2 estimates the SRAM macro area.
func (s Structure) AreaUM2() float64 { return s.Bits() * bitcellUM2 * arrayOvhd }

// AddedAreaUM2 estimates the added logic: encode + decode XOR columns on
// the row width plus the index scrambler, with the (core-shared) key
// registers amortized per structure by keyRegShare.
func (s Structure) AddedAreaUM2() float64 {
	xors := 2*float64(s.EntryBits) + scramGates*float64(s.IndexBits)
	return xors*xorGateUM2 + keyRegShare*keyRegBits*keyRegFlop
}

// AreaOverhead returns the fractional area increase.
func (s Structure) AreaOverhead() float64 { return s.AddedAreaUM2() / s.AreaUM2() }

// BTBConfigs are the paper's Table 5 BTB rows (2-way, 128/256/512 entries
// per way; tag 12 + target 32 + meta 4 bits per entry).
func BTBConfigs() []Structure {
	mk := func(name string, perWay uint64, idxBits uint64) Structure {
		return Structure{
			Name: name, Entries: 2 * perWay, EntryBits: 48, IndexBits: idxBits,
		}
	}
	return []Structure{
		mk("BTB 2w128", 128, 7),
		mk("BTB 2w256", 256, 8),
		mk("BTB 2w512", 512, 9),
	}
}

// PHTConfigs are the paper's Table 5 TAGE rows (1024/2048/4096 entries
// per tagged table; ~16-bit rows: tag + counter + usefulness).
func PHTConfigs() []Structure {
	mk := func(name string, entries uint64, idxBits uint64) Structure {
		return Structure{
			Name: name, Entries: entries, EntryBits: 16, IndexBits: idxBits, PHT: true,
		}
	}
	return []Structure{
		mk("PHT 1024/table", 1024, 10),
		mk("PHT 2048/table", 2048, 11),
		mk("PHT 4096/table", 4096, 12),
	}
}

// paperAnchor holds the paper's synthesized numbers for reference.
var paperAnchor = map[string][2]float64{ // name -> {timing%, area%}
	"BTB 2w128":      {0.70, 0.24},
	"BTB 2w256":      {0.94, 0.15},
	"BTB 2w512":      {1.46, 0.13},
	"PHT 1024/table": {2.10, 0.11},
	"PHT 2048/table": {1.98, 0.09},
	"PHT 4096/table": {2.01, 0.03},
}

// Table5 renders the area/timing comparison with the paper's synthesis
// anchors alongside the model's estimates.
func Table5() *report.Table {
	t := &report.Table{
		Title: "Table 5: Noisy-XOR-BP area and timing overhead",
		Header: []string{"configuration", "timing (model)", "timing (paper)",
			"area (model)", "area (paper)"},
		Caption: "First-order 28nm model (see package hwcost). Shape targets:\n" +
			"sub-2.5% timing, sub-0.3% area everywhere; area share shrinks as\n" +
			"tables grow (fixed XOR columns vs growing SRAM).",
	}
	rows := append(BTBConfigs(), PHTConfigs()...)
	for _, s := range rows {
		anchor := paperAnchor[s.Name]
		t.AddRow(s.Name,
			fmt.Sprintf("%.2f%%", s.TimingOverhead()*100),
			fmt.Sprintf("%.2f%%", anchor[0]),
			fmt.Sprintf("%.3f%%", s.AreaOverhead()*100),
			fmt.Sprintf("%.2f%%", anchor[1]))
	}
	return t
}
