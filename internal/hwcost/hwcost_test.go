package hwcost

import "testing"

func TestTimingOverheadRange(t *testing.T) {
	// The paper's headline: the XOR stages stay in low single digits.
	for _, s := range append(BTBConfigs(), PHTConfigs()...) {
		ov := s.TimingOverhead() * 100
		if ov <= 0 || ov > 4 {
			t.Errorf("%s: timing overhead %.2f%%, want (0, 4]", s.Name, ov)
		}
	}
}

func TestAreaOverheadRange(t *testing.T) {
	for _, s := range append(BTBConfigs(), PHTConfigs()...) {
		ov := s.AreaOverhead() * 100
		if ov <= 0 || ov > 0.8 {
			t.Errorf("%s: area overhead %.3f%%, want (0, 0.8]", s.Name, ov)
		}
	}
}

func TestAreaShareShrinksWithSize(t *testing.T) {
	// Fixed XOR columns against a growing array: the paper's area trend.
	btb := BTBConfigs()
	if !(btb[0].AreaOverhead() > btb[1].AreaOverhead() &&
		btb[1].AreaOverhead() > btb[2].AreaOverhead()) {
		t.Error("BTB area overhead should shrink with entries")
	}
	pht := PHTConfigs()
	if !(pht[0].AreaOverhead() > pht[2].AreaOverhead()) {
		t.Error("PHT area overhead should shrink with entries")
	}
}

func TestBTBTimingTrendGrowsWithSize(t *testing.T) {
	// Key-distribution buffering grows with the physical array: the
	// paper's measured BTB trend (0.70 -> 0.94 -> 1.46).
	btb := BTBConfigs()
	if !(btb[0].TimingOverhead() < btb[2].TimingOverhead()) {
		t.Error("BTB timing overhead should grow with entries")
	}
}

func TestPHTCostsMoreTimingThanBTB(t *testing.T) {
	// The PHT's added stage sits behind the index hash (paper: ~2% vs
	// ~1%).
	btb := BTBConfigs()[1]
	pht := PHTConfigs()[1]
	if pht.TimingOverhead() <= btb.TimingOverhead() {
		t.Errorf("PHT timing %.2f%% should exceed BTB %.2f%%",
			pht.TimingOverhead()*100, btb.TimingOverhead()*100)
	}
}

func TestAccessPathMonotone(t *testing.T) {
	small := Structure{Entries: 256, EntryBits: 48, IndexBits: 7}
	big := Structure{Entries: 1024, EntryBits: 48, IndexBits: 9}
	if small.AccessPS() >= big.AccessPS() {
		t.Error("larger arrays should have longer access paths")
	}
}

func TestTable5Shape(t *testing.T) {
	tab := Table5()
	if len(tab.Rows) != 6 {
		t.Fatalf("Table 5 has %d rows, want 6", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if len(r) != 5 {
			t.Fatalf("row %v has %d cells, want 5", r, len(r))
		}
	}
}
