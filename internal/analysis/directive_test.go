package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseDirectives(t *testing.T, src string) (*token.FileSet, *Directives) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, ParseDirectives(fset, []*ast.File{f})
}

func TestAllowRequiresReason(t *testing.T) {
	_, d := parseDirectives(t, `package p

func f() {
	g() //bpvet:allow
}

func g() {}
`)
	mal := d.Malformed()
	if len(mal) != 1 {
		t.Fatalf("got %d malformed diagnostics, want 1: %v", len(mal), mal)
	}
	if !strings.Contains(mal[0].Message, "requires a reason") {
		t.Errorf("message %q does not explain the missing reason", mal[0].Message)
	}
	if mal[0].Pos.Line != 4 {
		t.Errorf("diagnostic at line %d, want 4", mal[0].Pos.Line)
	}
}

func TestColdinitRequiresReason(t *testing.T) {
	_, d := parseDirectives(t, `package p

//bpvet:coldinit
func f() {}
`)
	mal := d.Malformed()
	if len(mal) != 1 || !strings.Contains(mal[0].Message, "requires a reason") {
		t.Fatalf("got %v, want one missing-reason diagnostic", mal)
	}
}

func TestHotpathTakesNoArgument(t *testing.T) {
	_, d := parseDirectives(t, `package p

//bpvet:hotpath because it is fast
func f() {}
`)
	mal := d.Malformed()
	if len(mal) != 1 || !strings.Contains(mal[0].Message, "takes no argument") {
		t.Fatalf("got %v, want one no-argument diagnostic", mal)
	}
}

func TestHotpathMustAttachToFunction(t *testing.T) {
	_, d := parseDirectives(t, `package p

//bpvet:hotpath
var x int
`)
	mal := d.Malformed()
	if len(mal) != 1 || !strings.Contains(mal[0].Message, "function declaration") {
		t.Fatalf("got %v, want one attachment diagnostic", mal)
	}
}

func TestUnknownVerb(t *testing.T) {
	_, d := parseDirectives(t, `package p

func f() {
	g() //bpvet:permit because reasons
}

func g() {}
`)
	mal := d.Malformed()
	if len(mal) != 1 || !strings.Contains(mal[0].Message, "unknown //bpvet directive") {
		t.Fatalf("got %v, want one unknown-verb diagnostic", mal)
	}
}

func TestAllowCoverageAndUnused(t *testing.T) {
	fset, d := parseDirectives(t, `package p

func f() {
	g() //bpvet:allow trailing form covers this line

	//bpvet:allow lead form covers the next line
	g()
	g() //bpvet:allow this one suppresses nothing real
}

func g() {}
`)
	file := fset.Position(token.Pos(1)).Filename
	if !d.Allowed(positionAt(file, 4)) {
		t.Error("trailing allow does not cover its own line")
	}
	if !d.Allowed(positionAt(file, 7)) {
		t.Error("lead allow does not cover the following line")
	}
	unused := d.Unused()
	if len(unused) != 1 {
		t.Fatalf("got %d unused diagnostics, want 1 (only the third allow): %v", len(unused), unused)
	}
	if unused[0].Pos.Line != 8 {
		t.Errorf("unused allow reported at line %d, want 8", unused[0].Pos.Line)
	}
}

func TestDuplicateMarkRejected(t *testing.T) {
	_, d := parseDirectives(t, `package p

//bpvet:hotpath
//bpvet:coldinit it cannot be both
func f() {}
`)
	mal := d.Malformed()
	if len(mal) != 1 || !strings.Contains(mal[0].Message, "already marked") {
		t.Fatalf("got %v, want one duplicate-mark diagnostic", mal)
	}
}

func positionAt(file string, line int) token.Position {
	return token.Position{Filename: file, Line: line}
}
