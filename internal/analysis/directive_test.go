package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseDirectives(t *testing.T, src string) (*token.FileSet, *Directives) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, ParseDirectives(fset, []*ast.File{f})
}

func TestAllowRequiresReason(t *testing.T) {
	_, d := parseDirectives(t, `package p

func f() {
	g() //bpvet:allow
}

func g() {}
`)
	mal := d.Malformed()
	if len(mal) != 1 {
		t.Fatalf("got %d malformed diagnostics, want 1: %v", len(mal), mal)
	}
	if !strings.Contains(mal[0].Message, "requires a reason") {
		t.Errorf("message %q does not explain the missing reason", mal[0].Message)
	}
	if mal[0].Pos.Line != 4 {
		t.Errorf("diagnostic at line %d, want 4", mal[0].Pos.Line)
	}
}

func TestColdinitRequiresReason(t *testing.T) {
	_, d := parseDirectives(t, `package p

//bpvet:coldinit
func f() {}
`)
	mal := d.Malformed()
	if len(mal) != 1 || !strings.Contains(mal[0].Message, "requires a reason") {
		t.Fatalf("got %v, want one missing-reason diagnostic", mal)
	}
}

func TestHotpathTakesNoArgument(t *testing.T) {
	_, d := parseDirectives(t, `package p

//bpvet:hotpath because it is fast
func f() {}
`)
	mal := d.Malformed()
	if len(mal) != 1 || !strings.Contains(mal[0].Message, "takes no argument") {
		t.Fatalf("got %v, want one no-argument diagnostic", mal)
	}
}

func TestHotpathMustAttachToFunction(t *testing.T) {
	_, d := parseDirectives(t, `package p

//bpvet:hotpath
var x int
`)
	mal := d.Malformed()
	if len(mal) != 1 || !strings.Contains(mal[0].Message, "function declaration") {
		t.Fatalf("got %v, want one attachment diagnostic", mal)
	}
}

func TestUnknownVerb(t *testing.T) {
	_, d := parseDirectives(t, `package p

func f() {
	g() //bpvet:permit because reasons
}

func g() {}
`)
	mal := d.Malformed()
	if len(mal) != 1 || !strings.Contains(mal[0].Message, "unknown //bpvet directive") {
		t.Fatalf("got %v, want one unknown-verb diagnostic", mal)
	}
}

func TestAllowCoverageAndUnused(t *testing.T) {
	fset, d := parseDirectives(t, `package p

func f() {
	g() //bpvet:allow trailing form covers this line

	//bpvet:allow lead form covers the next line
	g()
	g() //bpvet:allow this one suppresses nothing real
}

func g() {}
`)
	file := fset.Position(token.Pos(1)).Filename
	if !d.Allowed(positionAt(file, 4)) {
		t.Error("trailing allow does not cover its own line")
	}
	if !d.Allowed(positionAt(file, 7)) {
		t.Error("lead allow does not cover the following line")
	}
	unused := d.Unused()
	if len(unused) != 1 {
		t.Fatalf("got %d unused diagnostics, want 1 (only the third allow): %v", len(unused), unused)
	}
	if unused[0].Pos.Line != 8 {
		t.Errorf("unused allow reported at line %d, want 8", unused[0].Pos.Line)
	}
}

func TestDuplicateMarkRejected(t *testing.T) {
	_, d := parseDirectives(t, `package p

//bpvet:hotpath
//bpvet:coldinit it cannot be both
func f() {}
`)
	mal := d.Malformed()
	if len(mal) != 1 || !strings.Contains(mal[0].Message, "already marked") {
		t.Fatalf("got %v, want one duplicate-mark diagnostic", mal)
	}
}

func TestLockedRequiresLockName(t *testing.T) {
	_, d := parseDirectives(t, `package p

func f() {
	g() //bpvet:locked the lock name is missing
}

func g() {}
`)
	mal := d.Malformed()
	if len(mal) != 1 || !strings.Contains(mal[0].Message, "requires the held lock in parentheses") {
		t.Fatalf("got %v, want one missing-lock diagnostic", mal)
	}
}

func TestLockedRequiresReason(t *testing.T) {
	_, d := parseDirectives(t, `package p

func f() {
	g() //bpvet:locked(e.mu)
}

func g() {}
`)
	mal := d.Malformed()
	if len(mal) != 1 || !strings.Contains(mal[0].Message, "requires a reason") {
		t.Fatalf("got %v, want one missing-reason diagnostic", mal)
	}
}

func TestLockedCoverageMatchesLockName(t *testing.T) {
	fset, d := parseDirectives(t, `package p

func f() {
	g() //bpvet:locked(e.mu) the write must be atomic with the read above
}

func g() {}
`)
	file := fset.Position(token.Pos(1)).Filename
	if d.LockedAt(positionAt(file, 4), "e.other") {
		t.Error("locked directive matched a different lock name")
	}
	if !d.LockedAt(positionAt(file, 4), "e.mu") {
		t.Error("locked directive does not cover its own line for the named lock")
	}
	if len(d.Unused()) != 0 {
		t.Errorf("consumed locked directive still reported unused: %v", d.Unused())
	}
}

func TestUnusedLockedCarriesDeletionFix(t *testing.T) {
	_, d := parseDirectives(t, `package p

func f() {
	g() //bpvet:locked(e.mu) nothing here needs it
}

func g() {}
`)
	unused := d.Unused()
	if len(unused) != 1 {
		t.Fatalf("got %d unused diagnostics, want 1: %v", len(unused), unused)
	}
	if !strings.Contains(unused[0].Message, "//bpvet:locked(e.mu)") {
		t.Errorf("message %q does not name the directive", unused[0].Message)
	}
	if len(unused[0].Fixes) != 1 || len(unused[0].Fixes[0].Edits) != 1 {
		t.Fatalf("unused locked directive carries no deletion fix: %+v", unused[0])
	}
	e := unused[0].Fixes[0].Edits[0]
	if e.NewText != "" || e.End <= e.Offset {
		t.Errorf("fix is not a deletion of the comment span: %+v", e)
	}
}

func positionAt(file string, line int) token.Position {
	return token.Position{Filename: file, Line: line}
}
