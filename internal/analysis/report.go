package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// Machine-readable diagnostic output. The JSON report is the canonical
// interchange form — versioned, sorted, byte-deterministic — and the
// SARIF and GitHub-annotation emitters are projections of it, so a
// report written by one bpvet run can be re-rendered by another process
// (CI downloads bpvet.json, emits annotations) without re-analyzing.

// ReportVersion is the JSON report schema version, bumped on any
// incompatible field change.
const ReportVersion = 1

// Report is the serialized form of one bpvet run.
type Report struct {
	// Version is the report schema version (ReportVersion).
	Version int `json:"version"`
	// Tool identifies the producer ("bpvet").
	Tool string `json:"tool"`
	// Diagnostics are the findings, sorted by file, line, column,
	// analyzer, message.
	Diagnostics []ReportDiagnostic `json:"diagnostics"`
}

// ReportDiagnostic is one finding in a report.
type ReportDiagnostic struct {
	File     string      `json:"file"`
	Line     int         `json:"line"`
	Column   int         `json:"column"`
	Analyzer string      `json:"analyzer"`
	Message  string      `json:"message"`
	Fixes    []ReportFix `json:"fixes,omitempty"`
}

// ReportFix is one suggested fix in a report.
type ReportFix struct {
	Message string       `json:"message"`
	Edits   []ReportEdit `json:"edits"`
}

// ReportEdit is one text edit in a report. Offsets are byte offsets
// into the named file.
type ReportEdit struct {
	File    string `json:"file"`
	Offset  int    `json:"offset"`
	End     int    `json:"end"`
	NewText string `json:"newText"`
}

// NewReport builds a report from diagnostics, relativizing file paths
// against baseDir (usually the module root) so the output is
// machine-independent: the same tree produces the same bytes regardless
// of where it is checked out.
func NewReport(diags []Diagnostic, baseDir string) *Report {
	rel := func(path string) string {
		if baseDir == "" {
			return path
		}
		if r, err := filepath.Rel(baseDir, path); err == nil && !strings.HasPrefix(r, "..") {
			return filepath.ToSlash(r)
		}
		return path
	}
	r := &Report{Version: ReportVersion, Tool: "bpvet", Diagnostics: []ReportDiagnostic{}}
	for _, d := range diags {
		rd := ReportDiagnostic{
			File:     rel(d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		}
		for _, f := range d.Fixes {
			rf := ReportFix{Message: f.Message, Edits: []ReportEdit{}}
			for _, e := range f.Edits {
				rf.Edits = append(rf.Edits, ReportEdit{
					File: rel(e.File), Offset: e.Offset, End: e.End, NewText: e.NewText,
				})
			}
			rd.Fixes = append(rd.Fixes, rf)
		}
		r.Diagnostics = append(r.Diagnostics, rd)
	}
	sort.Slice(r.Diagnostics, func(i, j int) bool {
		a, b := r.Diagnostics[i], r.Diagnostics[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return r
}

// EncodeJSON renders the report as indented JSON with a trailing
// newline. The encoding is byte-deterministic: struct field order is
// fixed and diagnostics are sorted.
func (r *Report) EncodeJSON() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		// A Report contains only marshalable types; this is unreachable.
		panic(err)
	}
	return append(b, '\n')
}

// DecodeReport parses a JSON report, verifying the schema version.
func DecodeReport(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("analysis: decoding report: %v", err)
	}
	if r.Version != ReportVersion {
		return nil, fmt.Errorf("analysis: report schema version %d, want %d", r.Version, ReportVersion)
	}
	return &r, nil
}

// SARIF 2.1.0 skeleton — just enough of the standard for code-scanning
// uploads: one run, one rule per analyzer, one result per diagnostic.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID string `json:"id"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// EncodeSARIF renders the report as a SARIF 2.1.0 log. Because it is
// derived from the Report (not from live analysis state), a JSON report
// round-trips: DecodeReport(jsonBytes).EncodeSARIF() equals the SARIF a
// single run would have emitted directly.
func (r *Report) EncodeSARIF() []byte {
	seen := make(map[string]bool)
	var rules []sarifRule
	results := []sarifResult{}
	for _, d := range r.Diagnostics {
		if !seen[d.Analyzer] {
			seen[d.Analyzer] = true
			rules = append(rules, sarifRule{ID: d.Analyzer})
		}
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: d.File},
				Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Column},
			}}},
		})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })
	if rules == nil {
		rules = []sarifRule{}
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: r.Tool, Rules: rules}},
			Results: results,
		}},
	}
	b, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		panic(err)
	}
	return append(b, '\n')
}

// WriteGitHubAnnotations emits one ::error workflow command per
// diagnostic, which GitHub Actions renders as an inline annotation on
// the PR diff. Message text is escaped per the workflow-command rules.
func (r *Report) WriteGitHubAnnotations(w io.Writer) {
	esc := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A")
	for _, d := range r.Diagnostics {
		fmt.Fprintf(w, "::error file=%s,line=%d,col=%d,title=bpvet/%s::%s\n",
			d.File, d.Line, d.Column, d.Analyzer, esc.Replace(d.Message))
	}
}
