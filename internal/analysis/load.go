package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the import path.
	Path string
	// Dir is the package's source directory.
	Dir string
	// Imports are the package's direct imports (module-internal only),
	// used to order passes so fact producers run before consumers.
	Imports []string
	// Fset, Files, Types, Info are the parse and type-check results.
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Directives are the package's parsed //bpvet comments.
	Directives *Directives
}

// listEntry is the subset of `go list -json` output the loader consumes.
type listEntry struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
	Standard   bool
}

// Load resolves the package patterns with `go list` (run in dir, which
// must be inside the module) and returns the matched non-standard
// packages parsed and type-checked, ordered so every package appears
// after its in-set imports (dependency order, ties broken by path).
//
// Type checking uses go/types with the stdlib source importer:
// dependencies — standard library and module-internal alike — are
// type-checked from source, so no compiled export data and no module
// proxy are required. One importer instance is shared across the load,
// so each dependency is checked once per process.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	entries, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)

	inSet := make(map[string]*listEntry, len(entries))
	for _, e := range entries {
		inSet[e.ImportPath] = e
	}
	order := topoOrder(entries, inSet)

	var pkgs []*Package
	for _, e := range order {
		p, err := check(fset, imp, e, inSet)
		if err != nil {
			return nil, fmt.Errorf("analysis: %s: %w", e.ImportPath, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// goList shells out to the go command to resolve patterns. The go
// toolchain is the one component the build environment guarantees, and
// it is the only authority on build constraints and file sets.
func goList(dir string, patterns []string) ([]*listEntry, error) {
	args := append([]string{"list", "-json=ImportPath,Dir,Name,GoFiles,Imports,Standard", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, errb.Bytes())
	}
	var entries []*listEntry
	dec := json.NewDecoder(&out)
	for dec.More() {
		var e listEntry
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if e.Standard {
			continue
		}
		entries = append(entries, &e)
	}
	return entries, nil
}

// topoOrder sorts entries so imports precede importers (within the
// loaded set), with lexicographic tie-breaking for deterministic output.
func topoOrder(entries []*listEntry, inSet map[string]*listEntry) []*listEntry {
	sorted := append([]*listEntry(nil), entries...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ImportPath < sorted[j].ImportPath })

	var order []*listEntry
	state := make(map[string]int, len(sorted)) // 0 unvisited, 1 visiting, 2 done
	var visit func(e *listEntry)
	visit = func(e *listEntry) {
		switch state[e.ImportPath] {
		case 1, 2:
			return // Go forbids import cycles, so "visiting" only recurs on diamonds.
		}
		state[e.ImportPath] = 1
		deps := append([]string(nil), e.Imports...)
		sort.Strings(deps)
		for _, d := range deps {
			if de, ok := inSet[d]; ok {
				visit(de)
			}
		}
		state[e.ImportPath] = 2
		order = append(order, e)
	}
	for _, e := range sorted {
		visit(e)
	}
	return order
}

// check parses and type-checks one package.
func check(fset *token.FileSet, imp types.Importer, e *listEntry, inSet map[string]*listEntry) (*Package, error) {
	var files []*ast.File
	for _, name := range e.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(e.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(e.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	var imports []string
	for _, dep := range e.Imports {
		if _, ok := inSet[dep]; ok {
			imports = append(imports, dep)
		}
	}
	return &Package{
		Path:       e.ImportPath,
		Dir:        e.Dir,
		Imports:    imports,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		Directives: ParseDirectives(fset, files),
	}, nil
}

// CheckSource type-checks an already-parsed file set as one package —
// the analysistest entry point, where testdata files are parsed directly
// rather than resolved through go list. pkgPath is the import path the
// package claims; scope predicates key off it, so tests can place a
// testdata package anywhere in the virtual tree. deps supplies
// already-checked packages (earlier testdata packages) consulted before
// the on-disk source importer, letting testdata packages import each
// other under spoofed paths.
func CheckSource(fset *token.FileSet, pkgPath string, files []*ast.File, deps map[string]*types.Package) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: &chainImporter{deps: deps, base: importer.ForCompiler(fset, "source", nil)}}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{
		Path:       pkgPath,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		Directives: ParseDirectives(fset, files),
	}, nil
}

// chainImporter resolves imports from a fixed set of already-checked
// packages first, falling back to the source importer.
type chainImporter struct {
	deps map[string]*types.Package
	base types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.deps[path]; ok {
		return p, nil
	}
	return c.base.Import(path)
}

func (c *chainImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := c.deps[path]; ok {
		return p, nil
	}
	if from, ok := c.base.(types.ImporterFrom); ok {
		return from.ImportFrom(path, dir, mode)
	}
	return c.base.Import(path)
}
