// Package analysistest runs bpvet analyzers over golden testdata
// packages, mirroring golang.org/x/tools/go/analysis/analysistest with
// the same expectation syntax: a trailing comment
//
//	// want "regexp"
//
// on a source line asserts that exactly one diagnostic is reported on
// that line whose message matches the regexp; several quoted regexps
// assert several diagnostics. Lines without a want comment must produce
// no diagnostics.
//
// Testdata packages are parsed straight from a directory and
// type-checked under a caller-chosen import path, so a test can place
// its package anywhere in the virtual tree ("xorbp/internal/wire",
// "xorbp/internal/fake") and exercise the analyzers' path-scoped
// predicates without touching real packages. Diagnostics flow through
// the real runner, so //bpvet:allow suppression, malformed-directive
// and unused-allow reporting behave exactly as in cmd/bpvet.
package analysistest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"xorbp/internal/analysis"
)

// Pkg names one testdata package: the directory holding its .go files
// and the import path it should claim during type checking.
type Pkg struct {
	Dir  string
	Path string
}

// Run loads one testdata package and checks the analyzers' diagnostics
// against its // want comments.
func Run(t *testing.T, dir, pkgPath string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	RunPkgs(t, []Pkg{{Dir: dir, Path: pkgPath}}, analyzers...)
}

// RunPkgs loads several testdata packages — in the order given, which
// the fact store treats as dependency order — runs the analyzers, and
// checks diagnostics against the union of the packages' // want
// comments.
func RunPkgs(t *testing.T, pkgSpecs []Pkg, analyzers ...*analysis.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	var pkgs []*analysis.Package
	deps := make(map[string]*types.Package)
	wants := make(map[string][]*want) // filename -> expectations
	for _, ps := range pkgSpecs {
		files, err := parseDir(fset, ps.Dir)
		if err != nil {
			t.Fatalf("parsing %s: %v", ps.Dir, err)
		}
		pkg, err := analysis.CheckSource(fset, ps.Path, files, deps)
		if err != nil {
			t.Fatalf("type-checking %s as %s: %v", ps.Dir, ps.Path, err)
		}
		pkgs = append(pkgs, pkg)
		deps[ps.Path] = pkg.Types
		for _, f := range files {
			collectWants(t, fset, f, wants)
		}
	}

	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}

	for _, d := range diags {
		if !claim(wants[d.Pos.Filename], d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
			}
		}
	}
	checkFixes(t, pkgSpecs, diags)
}

// checkFixes verifies suggested fixes against golden files: every
// source file some diagnostic wants to edit must have a sibling
// <file>.fixed whose content equals the source with all edits applied,
// and a .fixed golden for a file no diagnostic edits is stale. The
// goldens double as documentation of what `bpvet -fix` does to each
// violation.
func checkFixes(t *testing.T, pkgSpecs []Pkg, diags []analysis.Diagnostic) {
	t.Helper()
	edits := make(map[string][]analysis.TextEdit)
	for _, d := range diags {
		for _, f := range d.Fixes {
			for _, e := range f.Edits {
				edits[e.File] = append(edits[e.File], e)
			}
		}
	}
	for _, ps := range pkgSpecs {
		entries, err := os.ReadDir(ps.Dir)
		if err != nil {
			t.Fatalf("listing %s: %v", ps.Dir, err)
		}
		for _, entry := range entries {
			if entry.IsDir() || !strings.HasSuffix(entry.Name(), ".go") {
				continue
			}
			src := filepath.Join(ps.Dir, entry.Name())
			golden := src + ".fixed"
			want, goldenErr := os.ReadFile(golden)
			es := edits[src]
			if len(es) == 0 {
				if goldenErr == nil {
					t.Errorf("%s exists but no diagnostic suggests fixes for %s", golden, src)
				}
				continue
			}
			if goldenErr != nil {
				t.Errorf("diagnostics suggest fixes for %s but reading its golden failed: %v", src, goldenErr)
				continue
			}
			orig, err := os.ReadFile(src)
			if err != nil {
				t.Fatalf("reading %s: %v", src, err)
			}
			got, err := analysis.ApplyEdits(orig, es)
			if err != nil {
				t.Errorf("applying fixes to %s: %v", src, err)
				continue
			}
			if string(got) != string(want) {
				t.Errorf("fixed output for %s does not match %s\n--- got ---\n%s--- want ---\n%s", src, golden, got, want)
			}
		}
	}
}

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// claim marks the first unmatched expectation on the diagnostic's line
// whose regexp matches the message.
func claim(ws []*want, d analysis.Diagnostic) bool {
	for _, w := range ws {
		if !w.matched && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// parseDir parses every .go file in dir, sorted by name for stable
// positions.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// collectWants extracts // want "re" expectations, keyed by filename.
func collectWants(t *testing.T, fset *token.FileSet, f *ast.File, wants map[string][]*want) {
	t.Helper()
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			var rest string
			if strings.HasPrefix(text, "want ") {
				rest = strings.TrimPrefix(text, "want ")
			} else if i := strings.LastIndex(text, "// want "); i >= 0 {
				// A "// want" embedded in another comment's tail, for
				// lines whose only comment is itself under test (e.g. an
				// unused //bpvet directive).
				rest = text[i+len("// want "):]
			} else {
				continue
			}
			pos := fset.Position(c.Pos())
			for _, q := range splitQuoted(rest) {
				pattern, err := strconv.Unquote(q)
				if err != nil {
					t.Fatalf("%s:%d: malformed want expectation %s: %v", pos.Filename, pos.Line, q, err)
				}
				re, err := regexp.Compile(pattern)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pattern, err)
				}
				wants[pos.Filename] = append(wants[pos.Filename], &want{
					file: pos.Filename, line: pos.Line, re: re,
				})
			}
		}
	}
}

// splitQuoted returns the top-level quoted segments of s; both
// "double-quoted" and `backquoted` forms are accepted, as in the
// upstream analysistest.
func splitQuoted(s string) []string {
	var out []string
	for {
		start := strings.IndexAny(s, "\"`")
		if start < 0 {
			return out
		}
		q := s[start]
		i := start + 1
		for i < len(s) {
			if q == '"' && s[i] == '\\' {
				i += 2
				continue
			}
			if s[i] == q {
				break
			}
			i++
		}
		if i >= len(s) {
			return out
		}
		out = append(out, s[start:i+1])
		s = s[i+1:]
	}
}
