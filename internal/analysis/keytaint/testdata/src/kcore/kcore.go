// Package kcore is the dependency half of the keytaint cross-package
// fixture: its function summaries must travel through the fact store
// to the purity roots in the runcache package.
package kcore

import "time"

// Codec is a module-internal interface; dispatch through it is opaque
// to the analysis and therefore tainted.
type Codec interface {
	Name() string
}

// Stamp is tainted two hops down: Stamp → clock → time.Now.
func Stamp() int64 {
	return clock()
}

func clock() int64 {
	return time.Now().UnixNano()
}

// Salt reads the clock too, but the deviation is justified at its
// source: the allow cleans this site for every caller.
func Salt() int64 {
	return time.Now().Unix() //bpvet:allow telemetry only; the salt is logged beside results, never keyed
}

// Fold is a pure helper: deterministic arithmetic over its input.
func Fold(parts []string) uint32 {
	var h uint32 = 2166136261
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			h = (h ^ uint32(p[i])) * 16777619
		}
	}
	return h
}
