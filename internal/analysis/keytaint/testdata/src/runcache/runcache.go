// Package runcache spoofs the real cache-key package: Key, schemaID
// and (Store).Key are purity roots, and the taints they reach live in
// the kcore dependency — visible only through published facts.
package runcache

import "xorbp/internal/kcore"

// Key folds a wall-clock stamp into the cache key; the reach is two
// calls down in another package.
func Key(spec string) uint32 {
	n := kcore.Stamp() // want `Key must stay cache-key pure but reaches Stamp → clock → time\.Now \(wall-clock read\)`
	return kcore.Fold([]string{spec}) + uint32(n)
}

// schemaID is clean: Salt's clock read is allow-justified at its
// source, so the summary arriving here is pure.
func schemaID() string {
	_ = kcore.Salt()
	return "bp-cache-v1"
}

// Store keys through an interface it cannot see the implementations
// of.
type Store struct {
	codec kcore.Codec
}

// Key derives the store's key prefix through dynamic dispatch.
func (s *Store) Key(spec string) string {
	return s.codec.Name() + "/" + spec // want `\(Store\)\.Key must stay cache-key pure but reaches a dynamic call through Codec\.Name \(implementation not statically known\)`
}

var _ = schemaID
