// Package wire spoofs the real wire package: the encoder, key and
// schema-version roots must reject pointer identity and mutable
// package state, while init-populated registries and self-recursion
// stay clean.
package wire

import "fmt"

// schemaCache memoizes through a mutable package variable — the
// antipattern: the root both writes it and reads it back.
var schemaCache string

// SchemaVersion is a purity root; every touch of schemaCache is a
// separate finding.
func SchemaVersion() string {
	if schemaCache == "" { // want `SchemaVersion must stay cache-key pure but reaches package variable schemaCache, which is reassigned after initialization`
		schemaCache = "v1+" + typeSig(0) // want `SchemaVersion must stay cache-key pure but reaches a write to package variable schemaCache`
	}
	return schemaCache // want `SchemaVersion must stay cache-key pure but reaches package variable schemaCache, which is reassigned after initialization`
}

// Spec is the canonical run description.
type Spec struct {
	Name string
}

// Encode leaks a pointer address into what should be canonical bytes.
func (s *Spec) Encode() string {
	return fmt.Sprintf("%s@%p", s.Name, s) // want `\(Spec\)\.Encode must stay cache-key pure but reaches a %p format verb \(renders a pointer address\)`
}

// Key is clean: canonical string building through the pure recursive
// helper.
func (s *Spec) Key() string {
	return s.Name + "/" + typeSig(0)
}

// typeSig is itself a root; the self-recursion must neither hang the
// summarizer nor taint the summary.
func typeSig(depth int) string {
	if depth > 3 {
		return ""
	}
	return "s" + typeSig(depth+1)
}

// kinds is populated element-wise in init and never rebound: reading
// it by key is pure.
var kinds = map[string]int{}

func init() {
	kinds["perf"] = 1
	kinds["attack"] = 2
}

// DecodeSpec validates against the init-populated registry — a clean
// read despite touching package state.
func DecodeSpec(kind string) (Spec, error) {
	if _, ok := kinds[kind]; !ok {
		return Spec{}, fmt.Errorf("wire: unknown kind %q", kind)
	}
	return Spec{Name: kind}, nil
}
