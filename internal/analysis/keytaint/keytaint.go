// Package keytaint proves the transitive purity of everything that
// feeds a cache key or wire encoding. The determinism analyzer (PR 6)
// rejects *direct* nondeterminism in scoped packages; keytaint closes
// the interprocedural hole: it marks the key-derivation entry points —
// experiment.runKey/specKey and the spec↔wire converters, the wire
// Spec/Result encoders and decoders, the runcache schema/key
// derivation — as purity roots and walks the call graph (same-package
// summaries, cross-package FactStore facts) rejecting any transitive
// reach to
//
//   - wall-clock, environment, randomness, or runtime-state reads;
//   - pointer identity (%p formatting, pointer→uintptr conversion,
//     reflect.Value.Pointer);
//   - map iteration, channel operations, select, or goroutine spawns;
//   - writes to package-level variables, or reads of package-level
//     variables that are reassigned after initialization (init-time
//     element inserts into a never-reassigned registry map are fine);
//   - dynamic dispatch through module-internal interfaces, whose
//     implementations the analysis cannot enumerate.
//
// Diagnostics carry the offending call chain ("specKey → readClock →
// time.Now (wall-clock read)") and are positioned at the root's own
// offending line, so a taint introduced two calls down still annotates
// the key function that absorbs it. A //bpvet:allow on the line where
// taint enters a function cleans that site for every caller — the
// justified deviation is justified once, at its source.
package keytaint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"xorbp/internal/analysis"
)

// Analyzer is the keytaint entry point.
var Analyzer = &analysis.Analyzer{
	Name: "keytaint",
	Doc:  "prove cache-key and wire-encoding purity transitively through the call graph",
	Run:  run,
}

// roots maps a package-path suffix to the FuncKeys of its purity roots:
// every function whose output becomes a cache key, schema version, or
// canonical wire encoding.
var roots = map[string][]string{
	"internal/experiment": {"runKey", "specKey", "specToWire", "specFromWire", "attackSpecFromWire"},
	"internal/wire":       {"(Spec).Encode", "(Spec).Key", "(Result).Encode", "DecodeSpec", "DecodeResult", "SchemaVersion", "typeSig"},
	"internal/runcache":   {"Key", "schemaID", "(Store).Key"},
	"internal/chaos":      {"(FaultPlan).Encode", "DecodePlan"},
}

// rootKeys returns the purity-root FuncKeys for the pass's package.
func rootKeys(path string) map[string]bool {
	for suffix, keys := range roots {
		if strings.HasSuffix(path, suffix) {
			set := make(map[string]bool, len(keys))
			for _, k := range keys {
				set[k] = true
			}
			return set
		}
	}
	return nil
}

func run(pass *analysis.Pass) error {
	w := &walker{pass: pass, reassigned: reassignedGlobals(pass)}
	sum := analysis.NewSummarizer(pass, "keytaint")
	sum.External = externalTaint
	sum.Local = func(decl *ast.FuncDecl) string {
		var first string
		w.walk(decl, sum, func(_ token.Pos, msg string) bool {
			first = msg
			return false
		})
		return first
	}
	w.sum = sum

	isRoot := rootKeys(pass.Path)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			key := analysis.DeclKey(pass.Info, fd)
			if !isRoot[key] {
				continue
			}
			w.walk(fd, sum, func(pos token.Pos, msg string) bool {
				pass.Reportf(pos, "%s must stay cache-key pure but reaches %s", key, msg)
				return true
			})
		}
	}
	sum.Publish()
	return nil
}

// reassignedGlobals finds package-level variables assigned as whole
// variables anywhere outside their declaration. Reading such a variable
// from a purity root is tainted; reading a registry map that is only
// populated element-wise during init and never rebound is not.
func reassignedGlobals(pass *analysis.Pass) map[types.Object]bool {
	out := make(map[types.Object]bool)
	mark := func(e ast.Expr) {
		if id, ok := analysis.Unparen(e).(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil && isGlobalVar(pass, obj) {
				out[obj] = true
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					mark(lhs)
				}
			case *ast.IncDecStmt:
				mark(n.X)
			}
			return true
		})
	}
	return out
}

// isGlobalVar reports whether obj is a package-level variable of the
// package under analysis.
func isGlobalVar(pass *analysis.Pass, obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && v.Pkg() == pass.Pkg && v.Parent() == pass.Pkg.Scope()
}

// externalTaint classifies calls leaving the module: the nondeterminism
// sources a cache key must never touch. Everything else in the standard
// library is trusted pure-enough (strconv, strings, hashing, sorting).
func externalTaint(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	name := fn.Name()
	fullName := pkg.Name() + "." + name
	switch pkg.Path() {
	case "time":
		switch name {
		case "Now", "Since", "Until":
			return fullName + " (wall-clock read)"
		}
	case "os":
		switch name {
		case "Getenv", "LookupEnv", "Environ", "ExpandEnv", "Hostname",
			"Getpid", "Getppid", "Getuid", "Getgid", "Geteuid",
			"Getwd", "TempDir", "UserCacheDir", "UserConfigDir", "UserHomeDir":
			return fullName + " (environment read)"
		case "Open", "OpenFile", "ReadFile", "ReadDir", "Stat", "Lstat":
			return fullName + " (file-system read)"
		}
	case "math/rand", "math/rand/v2", "crypto/rand":
		return pkg.Path() + "." + name + " (randomness)"
	case "runtime":
		switch name {
		case "NumCPU", "NumGoroutine", "GOMAXPROCS", "Caller", "Callers", "ReadMemStats":
			return fullName + " (runtime-state read)"
		}
	case "reflect":
		switch analysis.FuncKey(fn) {
		case "(Value).Pointer", "(Value).UnsafePointer", "(Value).UnsafeAddr":
			return "reflect." + name + " (pointer identity)"
		}
	case "net", "net/http":
		return fullName + " (network)"
	}
	return ""
}

type walker struct {
	pass       *analysis.Pass
	sum        *analysis.Summarizer
	reassigned map[types.Object]bool
}

// walk inspects one function body, invoking report for every taint
// site with its position and chain description. report returning false
// stops the walk (summary mode keeps only the first site; root mode
// reports all).
func (w *walker) walk(decl *ast.FuncDecl, sum *analysis.Summarizer, report func(token.Pos, string) bool) {
	stop := false
	emit := func(pos token.Pos, msg string) {
		if stop {
			return
		}
		// An allow directive where the taint enters cleans the site for
		// every caller: the deviation is justified at its source.
		if w.pass.Directives.Allowed(w.pass.Fset.Position(pos)) {
			return
		}
		if !report(pos, msg) {
			stop = true
		}
	}
	// Whole-variable assignment targets are reported as writes; exclude
	// them from the reassigned-global read check so one site is not
	// reported twice.
	written := make(map[*ast.Ident]bool)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if id, ok := analysis.Unparen(lhs).(*ast.Ident); ok {
					written[id] = true
				}
			}
		}
		return true
	})
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if stop {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			w.checkCall(n, sum, emit)
		case *ast.RangeStmt:
			if t := w.pass.Info.Types[n.X].Type; t != nil {
				switch t.Underlying().(type) {
				case *types.Map:
					emit(n.Pos(), "map iteration (nondeterministic order)")
				case *types.Chan:
					emit(n.Pos(), "a channel receive (scheduling-dependent)")
				}
			}
		case *ast.SelectStmt:
			emit(n.Pos(), "select (scheduling-dependent)")
		case *ast.SendStmt:
			emit(n.Pos(), "a channel send (scheduling-dependent)")
		case *ast.GoStmt:
			emit(n.Pos(), "a goroutine spawn (scheduling-dependent)")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				emit(n.Pos(), "a channel receive (scheduling-dependent)")
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if name, ok := w.globalWrite(lhs); ok {
					emit(lhs.Pos(), "a write to package variable "+name)
				}
			}
		case *ast.IncDecStmt:
			if name, ok := w.globalWrite(n.X); ok {
				emit(n.X.Pos(), "a write to package variable "+name)
			}
		case *ast.Ident:
			if obj := w.pass.Info.Uses[n]; obj != nil && !written[n] && w.reassigned[obj] {
				emit(n.Pos(), "package variable "+obj.Name()+", which is reassigned after initialization")
			}
		}
		return true
	})
}

// globalWrite reports whether lhs writes (wholly or element-wise)
// through a package-level variable, returning its name.
func (w *walker) globalWrite(lhs ast.Expr) (string, bool) {
	for {
		switch e := analysis.Unparen(lhs).(type) {
		case *ast.Ident:
			if obj := w.pass.Info.Uses[e]; obj != nil && isGlobalVar(w.pass, obj) {
				return obj.Name(), true
			}
			if obj := w.pass.Info.Defs[e]; obj != nil && isGlobalVar(w.pass, obj) {
				return obj.Name(), true
			}
			return "", false
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		case *ast.SelectorExpr:
			lhs = e.X
		default:
			return "", false
		}
	}
}

func (w *walker) checkCall(call *ast.CallExpr, sum *analysis.Summarizer, emit func(token.Pos, string)) {
	if tv, ok := w.pass.Info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion — tainted only when it launders a pointer into an
		// integer, making the result address-dependent.
		if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Kind() == types.Uintptr && len(call.Args) == 1 {
			if at := w.pass.Info.Types[call.Args[0]].Type; at != nil {
				switch u := at.Underlying().(type) {
				case *types.Pointer:
					emit(call.Pos(), "a pointer-to-uintptr conversion (address-dependent)")
				case *types.Basic:
					if u.Kind() == types.UnsafePointer {
						emit(call.Pos(), "a pointer-to-uintptr conversion (address-dependent)")
					}
				}
			}
		}
		return
	}
	if id, ok := analysis.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := w.pass.Info.Uses[id].(*types.Builtin); isBuiltin {
			return
		}
	}
	fn := analysis.Callee(w.pass.Info, call)
	if fn == nil {
		// Dynamic call. Dispatch through a stdlib-declared interface
		// (hash.Hash, reflect.Type, io.Writer) is trusted — its
		// implementations live outside the module's control and behave
		// like the stdlib functions we already trust. Dispatch through a
		// module-internal interface or a bare func value is opaque:
		// implementations can do anything, so the call is tainted.
		if sel, ok := analysis.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if s, ok := w.pass.Info.Selections[sel]; ok && types.IsInterface(s.Recv()) {
				if ifacePkg, name := ifaceOrigin(s.Recv()); ifacePkg != nil && w.inModule(ifacePkg.Path()) {
					emit(call.Pos(), "a dynamic call through "+name+"."+sel.Sel.Name+" (implementation not statically known)")
				}
				return
			}
		}
		emit(call.Pos(), "a call through a function value (target not statically known)")
		return
	}
	if w.checkPointerVerb(call, fn, emit) {
		return
	}
	var taint string
	if fn.Pkg() != nil && !w.inModule(fn.Pkg().Path()) {
		taint = externalTaint(fn)
	} else {
		taint = sum.Summary(fn)
		if taint != "" {
			taint = analysis.FuncKey(fn) + " → " + taint
		}
	}
	if taint != "" {
		emit(call.Pos(), taint)
	}
}

// checkPointerVerb flags %p in a constant format string passed to a fmt
// formatting function: the rendered address varies run to run.
func (w *walker) checkPointerVerb(call *ast.CallExpr, fn *types.Func, emit func(token.Pos, string)) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || !strings.Contains(fn.Name(), "rintf") && fn.Name() != "Errorf" {
		return false
	}
	for _, a := range call.Args {
		if lit, ok := analysis.Unparen(a).(*ast.BasicLit); ok && lit.Kind == token.STRING && strings.Contains(lit.Value, "%p") {
			emit(a.Pos(), "a %p format verb (renders a pointer address)")
			return true
		}
	}
	return false
}

// ifaceOrigin returns the defining package and name of a (possibly
// named) interface type.
func ifaceOrigin(t types.Type) (*types.Package, string) {
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Pkg(), named.Obj().Name()
	}
	return nil, ""
}

// inModule reports whether path is inside the module under analysis.
func (w *walker) inModule(path string) bool {
	mod := w.pass.Path
	if i := strings.IndexByte(mod, '/'); i >= 0 {
		mod = mod[:i]
	}
	return strings.HasPrefix(path, mod+"/") || path == mod
}
