package keytaint_test

import (
	"testing"

	"xorbp/internal/analysis/analysistest"
	"xorbp/internal/analysis/keytaint"
)

// TestKeytaintCrossPackage proves taint travels through fact-store
// summaries: the wall-clock read lives two calls down in kcore, the
// report lands on the runcache roots.
func TestKeytaintCrossPackage(t *testing.T) {
	analysistest.RunPkgs(t, []analysistest.Pkg{
		{Dir: "testdata/src/kcore", Path: "xorbp/internal/kcore"},
		{Dir: "testdata/src/runcache", Path: "xorbp/internal/runcache"},
	}, keytaint.Analyzer)
}

// TestKeytaintWire exercises the single-package rules: mutable-global
// memoization, %p formatting, recursion safety, and init-populated
// registry reads.
func TestKeytaintWire(t *testing.T) {
	analysistest.Run(t, "testdata/src/wire", "xorbp/internal/wire", keytaint.Analyzer)
}
