package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// The //bpvet directive grammar. Directives are ordinary line comments
// beginning exactly with "//bpvet:" (no space, mirroring //go:):
//
//	//bpvet:allow <reason>     suppress bpvet diagnostics on the
//	                           directive's line (trailing form) or on the
//	                           line directly below the comment group
//	                           (lead form); the reason is mandatory and
//	                           should say why the deviation is sound
//	                           (e.g. "telemetry only, never keyed or
//	                           serialized").
//	//bpvet:hotpath            on a function declaration: the function is
//	                           a simulation inner-loop; the hotpath
//	                           analyzer bans allocation, interface
//	                           boxing, map access and escaping closures
//	                           in its body and requires its statically
//	                           resolved callees to be hotpath or coldinit.
//	//bpvet:coldinit <reason>  on a function declaration: callable from
//	                           hotpath code but runs only outside the
//	                           measured steady state (lazy per-thread
//	                           state, construction). Body checks are
//	                           waived; the runtime AllocsPerRun guards
//	                           remain the safety net. Reason mandatory.
//	//bpvet:locked(mu) <reason> the statement on the directive's line
//	                           (trailing form) or directly below (lead
//	                           form) intentionally runs while holding the
//	                           named lock — a blocking call or nested
//	                           acquisition the lockcheck analyzer would
//	                           otherwise reject. The lock name must match
//	                           the held lock's receiver expression
//	                           (e.g. e.pmu), so the annotation breaks
//	                           when the code it justifies moves. Reason
//	                           mandatory.
//
// Malformed directives (missing reason, unknown verb, hotpath/coldinit
// not attached to a function, locked without a lock name) are themselves
// diagnostics: a directive that silently does nothing is worse than none.

// Directive verbs.
const (
	VerbAllow    = "allow"
	VerbHotpath  = "hotpath"
	VerbColdinit = "coldinit"
	VerbLocked   = "locked"
)

const directivePrefix = "//bpvet:"

// Directive is one parsed //bpvet comment.
type Directive struct {
	Verb   string
	Reason string
	// Lock is the locked directive's lock name (the held lock's receiver
	// expression, e.g. "e.pmu").
	Lock string
	Pos  token.Pos
	// end is the comment's end position, kept so suggested fixes can
	// delete the directive exactly.
	end token.Pos
	// effectLines are the lines an allow/locked directive covers: its own
	// line (trailing form) and the first line after its comment group
	// (lead form). Covering both keeps attachment independent of comment
	// placement details.
	effectLines [2]int
	used        bool
}

// Directives holds one package's parsed //bpvet comments.
type Directives struct {
	fset *token.FileSet
	// allows maps filename -> the file's allow directives.
	allows map[string][]*Directive
	// locked maps filename -> the file's locked directives.
	locked map[string][]*Directive
	// marks maps a function declaration to its hotpath/coldinit
	// directive.
	marks map[*ast.FuncDecl]*Directive
	// malformed directives, reported by the runner.
	malformed []Diagnostic
}

// ParseDirectives scans the files' comments for //bpvet directives.
func ParseDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{
		fset:   fset,
		allows: make(map[string][]*Directive),
		locked: make(map[string][]*Directive),
		marks:  make(map[*ast.FuncDecl]*Directive),
	}
	for _, f := range files {
		// Map every function declaration to its doc comment so hotpath
		// and coldinit directives attach to the function.
		docOwner := make(map[*ast.CommentGroup]*ast.FuncDecl)
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
				docOwner[fd.Doc] = fd
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				dir, errMsg := parseOne(c.Text)
				dir.Pos = c.Pos()
				dir.end = c.End()
				if errMsg != "" {
					d.malformed = append(d.malformed, Diagnostic{
						Pos:      fset.Position(c.Pos()),
						Analyzer: "directive",
						Message:  errMsg,
					})
					continue
				}
				switch dir.Verb {
				case VerbAllow:
					pos := fset.Position(c.Pos())
					dir.effectLines = [2]int{pos.Line, fset.Position(cg.End()).Line + 1}
					d.allows[pos.Filename] = append(d.allows[pos.Filename], dir)
				case VerbLocked:
					pos := fset.Position(c.Pos())
					dir.effectLines = [2]int{pos.Line, fset.Position(cg.End()).Line + 1}
					d.locked[pos.Filename] = append(d.locked[pos.Filename], dir)
				case VerbHotpath, VerbColdinit:
					fd := docOwner[cg]
					if fd == nil {
						d.malformed = append(d.malformed, Diagnostic{
							Pos:      fset.Position(c.Pos()),
							Analyzer: "directive",
							Message:  "//bpvet:" + dir.Verb + " must be part of a function declaration's doc comment",
						})
						continue
					}
					if prev, dup := d.marks[fd]; dup {
						d.malformed = append(d.malformed, Diagnostic{
							Pos:      fset.Position(c.Pos()),
							Analyzer: "directive",
							Message:  "function already marked //bpvet:" + prev.Verb,
						})
						continue
					}
					d.marks[fd] = dir
				}
			}
		}
	}
	return d
}

// parseOne splits a //bpvet comment into verb and reason, validating the
// grammar. The returned message is non-empty for malformed directives.
func parseOne(text string) (*Directive, string) {
	body := strings.TrimPrefix(text, directivePrefix)
	verb, reason, _ := strings.Cut(body, " ")
	reason = strings.TrimSpace(reason)
	if lock, isLocked := strings.CutPrefix(verb, VerbLocked); isLocked {
		lock, closed := strings.CutSuffix(strings.TrimPrefix(lock, "("), ")")
		if !strings.HasPrefix(strings.TrimPrefix(verb, VerbLocked), "(") || !closed || lock == "" {
			return &Directive{Verb: VerbLocked}, "//bpvet:locked requires the held lock in parentheses: //bpvet:locked(<lock>) <why the lock is intentionally held here>"
		}
		if reason == "" {
			return &Directive{Verb: VerbLocked}, "//bpvet:locked(" + lock + ") requires a reason: //bpvet:locked(" + lock + ") <why the lock is intentionally held here>"
		}
		return &Directive{Verb: VerbLocked, Lock: lock, Reason: reason}, ""
	}
	switch verb {
	case VerbAllow:
		if reason == "" {
			return &Directive{Verb: verb}, "//bpvet:allow requires a reason: //bpvet:allow <why this deviation is sound>"
		}
	case VerbColdinit:
		if reason == "" {
			return &Directive{Verb: verb}, "//bpvet:coldinit requires a reason: //bpvet:coldinit <why this never runs in the measured steady state>"
		}
	case VerbHotpath:
		if reason != "" {
			return &Directive{Verb: verb}, "//bpvet:hotpath takes no argument (it is a marker, not an exemption)"
		}
	default:
		return &Directive{Verb: verb}, "unknown //bpvet directive " + strconv.Quote(verb) + " (valid: allow, hotpath, coldinit, locked)"
	}
	return &Directive{Verb: verb, Reason: reason}, ""
}

// Mark returns the hotpath/coldinit directive attached to fn, if any.
func (d *Directives) Mark(fn *ast.FuncDecl) *Directive {
	if d == nil {
		return nil
	}
	return d.marks[fn]
}

// Allowed reports whether an allow directive covers the diagnostic
// position, consuming (marking used) the directive.
func (d *Directives) Allowed(pos token.Position) bool {
	if d == nil {
		return false
	}
	// Prefer an unused covering directive so overlapping allows each
	// get credit before any is reported stale.
	var hit *Directive
	for _, dir := range d.allows[pos.Filename] {
		if pos.Line == dir.effectLines[0] || pos.Line == dir.effectLines[1] {
			if !dir.used {
				dir.used = true
				return true
			}
			hit = dir
		}
	}
	return hit != nil
}

// LockedAt reports whether a locked directive naming lock covers the
// diagnostic position, consuming (marking used) the directive. The lock
// name must match the held lock's receiver expression exactly.
func (d *Directives) LockedAt(pos token.Position, lock string) bool {
	if d == nil {
		return false
	}
	var hit *Directive
	for _, dir := range d.locked[pos.Filename] {
		if dir.Lock != lock {
			continue
		}
		if pos.Line == dir.effectLines[0] || pos.Line == dir.effectLines[1] {
			if !dir.used {
				dir.used = true
				return true
			}
			hit = dir
		}
	}
	return hit != nil
}

// Unused returns diagnostics for allow and locked directives that
// suppressed nothing: a stale directive hides the next real finding on
// its line, so the set is ratcheted to exactly the justified ones. Each
// diagnostic carries a suggested fix deleting the directive comment.
func (d *Directives) Unused() []Diagnostic {
	var ds []Diagnostic
	report := func(dir *Directive, what string) {
		pos := d.fset.Position(dir.Pos)
		ds = append(ds, Diagnostic{
			Pos:      pos,
			Analyzer: "directive",
			Message:  "unused //bpvet:" + what + " (nothing to suppress here; remove it)",
			Fixes: []SuggestedFix{{
				Message: "delete the unused //bpvet:" + what + " directive",
				Edits: []TextEdit{{
					File:   pos.Filename,
					Offset: pos.Offset,
					End:    d.fset.Position(dir.end).Offset,
				}},
			}},
		})
	}
	for _, dirs := range d.allows {
		for _, dir := range dirs {
			if !dir.used {
				report(dir, VerbAllow)
			}
		}
	}
	for _, dirs := range d.locked {
		for _, dir := range dirs {
			if !dir.used {
				report(dir, VerbLocked+"("+dir.Lock+")")
			}
		}
	}
	return ds
}

// Malformed returns the syntax diagnostics collected during parsing.
func (d *Directives) Malformed() []Diagnostic { return d.malformed }
