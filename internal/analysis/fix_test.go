package analysis

import (
	"strings"
	"testing"
)

func TestApplyEditsReplacement(t *testing.T) {
	src := []byte("f.Sync()\n")
	got, err := ApplyEdits(src, []TextEdit{{Offset: 0, End: 0, NewText: "_ = "}})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "_ = f.Sync()\n" {
		t.Errorf("got %q", got)
	}
}

func TestApplyEditsDeletionWidensTrailingComment(t *testing.T) {
	src := []byte("\tdo() //bpvet:allow stale\n\tnext()\n")
	start := strings.Index(string(src), "//")
	got, err := ApplyEdits(src, []TextEdit{{Offset: start, End: start + len("//bpvet:allow stale")}})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "\tdo()\n\tnext()\n" {
		t.Errorf("trailing-comment deletion left %q", got)
	}
}

func TestApplyEditsDeletionRemovesBlankLine(t *testing.T) {
	src := []byte("\t//bpvet:allow stale\n\tnext()\n")
	got, err := ApplyEdits(src, []TextEdit{{Offset: 1, End: 1 + len("//bpvet:allow stale")}})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "\tnext()\n" {
		t.Errorf("lead-form deletion left %q", got)
	}
}

func TestApplyEditsCollapsesDuplicates(t *testing.T) {
	src := []byte("x\n")
	e := TextEdit{Offset: 0, End: 0, NewText: "_ = "}
	got, err := ApplyEdits(src, []TextEdit{e, e})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "_ = x\n" {
		t.Errorf("duplicate edits applied twice: %q", got)
	}
}

func TestApplyEditsRejectsOverlap(t *testing.T) {
	src := []byte("abcdef\n")
	_, err := ApplyEdits(src, []TextEdit{
		{Offset: 0, End: 4, NewText: "x"},
		{Offset: 2, End: 5, NewText: "y"},
	})
	if err == nil || !strings.Contains(err.Error(), "overlapping") {
		t.Fatalf("overlapping edits not rejected: %v", err)
	}
}

func TestApplyEditsRejectsOutOfRange(t *testing.T) {
	if _, err := ApplyEdits([]byte("ab"), []TextEdit{{Offset: 1, End: 9}}); err == nil {
		t.Fatal("out-of-range edit not rejected")
	}
}
