package analysis

// RunOpts tunes one analyzer run.
type RunOpts struct {
	// ReportUnused enables the unused-directive ratchet (stale
	// //bpvet:allow and //bpvet:locked comments become diagnostics). It
	// must be off when the analyzer set is filtered (cmd/bpvet -run): a
	// directive justifying a lockcheck finding is legitimately unused in
	// a determinism-only run.
	ReportUnused bool
}

// Run applies the analyzers to the packages with the default options
// (full ratchet). See RunWith.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunWith(pkgs, analyzers, RunOpts{ReportUnused: true})
}

// RunWith applies the analyzers to the packages, in the order given (the
// loader emits dependency order, so fact producers run before
// consumers), and returns the surviving diagnostics sorted by position.
//
// Suppression happens here, not in the analyzers: a //bpvet:allow on
// the diagnostic's line (or the line below the directive's comment
// group) consumes the diagnostic, and analyzers stay oblivious to the
// directive grammar. (The one exception is //bpvet:locked, which is
// lock-specific and consumed by the lockcheck analyzer itself.)
// Malformed directives and — under RunOpts.ReportUnused — directives
// that suppressed nothing are themselves diagnostics, so the directive
// set ratchets down to exactly the justified ones.
func RunWith(pkgs []*Package, analyzers []*Analyzer, opts RunOpts) ([]Diagnostic, error) {
	facts := NewFactStore()
	var out []Diagnostic
	for _, pkg := range pkgs {
		var raw []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:   a,
				Path:       pkg.Path,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				Info:       pkg.Info,
				Directives: pkg.Directives,
				Facts:      facts,
				report:     func(d Diagnostic) { raw = append(raw, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, err
			}
		}
		facts.MarkAnalyzed(pkg.Path)
		for _, d := range raw {
			if !pkg.Directives.Allowed(d.Pos) {
				out = append(out, d)
			}
		}
		out = append(out, pkg.Directives.Malformed()...)
		if opts.ReportUnused {
			out = append(out, pkg.Directives.Unused()...)
		}
	}
	SortDiagnostics(out)
	return out, nil
}
