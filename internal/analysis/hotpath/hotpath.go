// Package hotpath implements the bpvet analyzer that turns the repo's
// AllocsPerRun runtime guards into compile-time facts.
//
// A function marked //bpvet:hotpath is a simulation inner-loop: the cpu
// engines, the predictors' predict/update paths, the event ring, the
// key-rotation guards. Inside it (and inside every same-package
// function it statically reaches) the analyzer bans the constructs that
// heap-allocate or would wreck the PR 5 inline budgets:
//
//   - make / new / append / &T{} / slice and map literals
//   - map access (index, range, delete) — hashing plus potential growth
//   - channel operations, select, go, defer
//   - string concatenation and string<->[]byte/[]rune conversions
//   - boxing a concrete value into an interface (call args,
//     assignments, returns, conversions)
//   - function literals anywhere but direct call arguments (a closure
//     passed straight to a call stays inlinable / non-escaping; one
//     stored in a variable is an allocation the inliner won't save)
//   - method values (they capture the receiver)
//
// Plain struct/array value literals, builtin len/cap/copy/min/max,
// interface method dispatch, and calls through func values are fine —
// none of them allocate.
//
// Cross-package static callees must themselves be //bpvet:hotpath or
// //bpvet:coldinit; the runner analyzes packages in dependency order
// and shares the marks through the fact store. //bpvet:coldinit
// exempts a function's body: it is reachable from hot code but runs
// only outside the measured steady state (lazy per-thread state), and
// the runtime guards remain its safety net.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"xorbp/internal/analysis"
)

// name is the analyzer's identity in diagnostics and fact keys.
const name = "hotpath"

// Analyzer is the zero-allocation hot-path checker.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc:  "ban allocation, interface boxing, map access, and escaping closures in //bpvet:hotpath functions",
	Run:  run,
}

// allowedStdlib are the non-module packages hot code may call into:
// audited pure-computation packages that never allocate.
var allowedStdlib = map[string]bool{
	"math":      true,
	"math/bits": true,
}

// allowedBuiltins never allocate (panic is a termination path, not
// steady state).
var allowedBuiltins = map[string]bool{
	"len": true, "cap": true, "copy": true, "min": true, "max": true,
	"panic": true, "recover": true, "real": true, "imag": true,
	"complex": true, "print": true, "println": true,
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass, decls: make(map[*types.Func]*ast.FuncDecl), visited: make(map[*ast.FuncDecl]bool)}

	// Index declarations and export marks first, so same-package calls
	// between hot functions resolve no matter the file order and other
	// packages can verify cross-package callees.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				c.decls[obj] = fd
			}
			if m := pass.Directives.Mark(fd); m != nil {
				pass.Facts.Set(name, pass.Path+"."+analysis.DeclKey(pass.Info, fd), m.Verb)
			}
		}
	}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if m := pass.Directives.Mark(fd); m != nil && m.Verb == analysis.VerbHotpath {
				c.checkFunc(fd, fd.Name.Name)
			}
		}
	}
	return nil
}

type checker struct {
	pass    *analysis.Pass
	decls   map[*types.Func]*ast.FuncDecl
	visited map[*ast.FuncDecl]bool
}

// checkFunc checks one function body in hot context. origin names the
// //bpvet:hotpath root for diagnostics when fd was reached indirectly.
func (c *checker) checkFunc(fd *ast.FuncDecl, origin string) {
	if c.visited[fd] || fd.Body == nil {
		return
	}
	c.visited[fd] = true
	where := "in hotpath " + fd.Name.Name
	if origin != fd.Name.Name {
		where = "in " + fd.Name.Name + " (reached from hotpath " + origin + ")"
	}
	var sig *types.Signature
	if obj, ok := c.pass.Info.Defs[fd.Name].(*types.Func); ok {
		sig = obj.Type().(*types.Signature)
	}
	c.walkBody(fd.Body, sig, where, origin)
}

// walkBody walks one function (or function-literal) body. sig is the
// enclosing signature, for return-statement boxing checks.
func (c *checker) walkBody(body *ast.BlockStmt, sig *types.Signature, where, origin string) {
	ast.Inspect(body, func(n ast.Node) bool {
		return c.visitExpr(n, sig, where, origin)
	})
}

// visitExpr handles one node of a hot body. Returning false prunes
// children (calls and function literals route their operands manually).
func (c *checker) visitExpr(n ast.Node, sig *types.Signature, where, origin string) bool {
	info := c.pass.Info
	switch n := n.(type) {
	case *ast.CallExpr:
		c.checkCall(n, where, origin)
		// Visit operands manually: a function literal passed directly
		// to a call (or invoked in place) is the sanctioned closure
		// form — its body is walked as hot code without the escape
		// diagnostic a free-standing literal gets below. The callee
		// selector itself is skipped (a method *call* is not a method
		// *value*); only its receiver expression is walked.
		fun := analysis.Unparen(n.Fun)
		switch f := fun.(type) {
		case *ast.FuncLit:
			lsig, _ := info.Types[f].Type.(*types.Signature)
			c.walkBody(f.Body, lsig, where, origin)
		case *ast.SelectorExpr:
			ast.Inspect(f.X, func(m ast.Node) bool {
				return c.visitExpr(m, sig, where, origin)
			})
		case *ast.Ident:
			// nothing to recurse into
		default:
			ast.Inspect(fun, func(m ast.Node) bool {
				return c.visitExpr(m, sig, where, origin)
			})
		}
		for _, e := range n.Args {
			if lit, ok := analysis.Unparen(e).(*ast.FuncLit); ok {
				lsig, _ := info.Types[lit].Type.(*types.Signature)
				c.walkBody(lit.Body, lsig, where, origin)
			} else {
				ast.Inspect(e, func(m ast.Node) bool {
					return c.visitExpr(m, sig, where, origin)
				})
			}
		}
		return false
	case *ast.FuncLit:
		c.report(n.Pos(), "function literal escapes (assigned or returned, not passed directly to a call): closure allocation %s; hoist it to a named function", where)
		lsig, _ := info.Types[n].Type.(*types.Signature)
		c.walkBody(n.Body, lsig, where, origin)
		return false
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if _, ok := analysis.Unparen(n.X).(*ast.CompositeLit); ok {
				c.report(n.Pos(), "&composite literal heap-allocates %s", where)
			}
		}
		if n.Op == token.ARROW {
			c.report(n.Pos(), "channel receive %s: hot loops must not synchronize", where)
		}
	case *ast.CompositeLit:
		if t, ok := info.Types[n]; ok {
			switch t.Type.Underlying().(type) {
			case *types.Slice:
				c.report(n.Pos(), "slice literal allocates %s; reuse a preallocated buffer", where)
			case *types.Map:
				c.report(n.Pos(), "map literal allocates %s", where)
			}
		}
	case *ast.IndexExpr:
		if t, ok := info.Types[n.X]; ok {
			if _, isMap := t.Type.Underlying().(*types.Map); isMap {
				c.report(n.Pos(), "map access %s: map lookups hash and may grow; use a dense slice keyed by index", where)
			}
		}
	case *ast.RangeStmt:
		if t, ok := info.Types[n.X]; ok {
			if _, isMap := t.Type.Underlying().(*types.Map); isMap {
				c.report(n.Pos(), "map range %s: iteration order is randomized and lookups hash; use a dense slice", where)
			}
		}
	case *ast.SendStmt:
		c.report(n.Pos(), "channel send %s: hot loops must not synchronize", where)
	case *ast.SelectStmt:
		c.report(n.Pos(), "select %s: hot loops must not synchronize", where)
	case *ast.GoStmt:
		c.report(n.Pos(), "go statement %s: spawning goroutines allocates", where)
	case *ast.DeferStmt:
		c.report(n.Pos(), "defer %s: deferred calls are not free on the steady-state path", where)
	case *ast.BinaryExpr:
		if n.Op == token.ADD {
			if t, ok := info.Types[n]; ok && t.Value == nil {
				if b, ok := t.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					c.report(n.Pos(), "string concatenation allocates %s", where)
				}
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[n]; ok && sel.Kind() == types.MethodVal {
			c.report(n.Pos(), "method value captures its receiver (closure allocation) %s", where)
		}
	case *ast.ReturnStmt:
		if sig != nil && sig.Results() != nil && len(n.Results) == sig.Results().Len() {
			for i, e := range n.Results {
				c.checkBox(e, sig.Results().At(i).Type(), "returning", where)
			}
		}
	case *ast.AssignStmt:
		if len(n.Lhs) == len(n.Rhs) {
			for i, lhs := range n.Lhs {
				lt, ok := info.Types[lhs]
				if !ok {
					if id, isIdent := lhs.(*ast.Ident); isIdent {
						if obj := info.Defs[id]; obj != nil {
							c.checkBox(n.Rhs[i], obj.Type(), "assigning", where)
						}
					}
					continue
				}
				c.checkBox(n.Rhs[i], lt.Type, "assigning", where)
			}
		}
	case *ast.ValueSpec:
		if n.Type != nil {
			if t, ok := info.Types[n.Type]; ok {
				for _, v := range n.Values {
					c.checkBox(v, t.Type, "assigning", where)
				}
			}
		}
	}
	return true
}

// checkCall classifies one call: builtin, conversion, static function
// or method, interface dispatch, or func value.
func (c *checker) checkCall(call *ast.CallExpr, where, origin string) {
	info := c.pass.Info
	fun := analysis.Unparen(call.Fun)

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			if !allowedBuiltins[b.Name()] {
				switch b.Name() {
				case "make", "new", "append":
					c.report(call.Pos(), "%s allocates %s; size buffers at construction and reuse them (//bpvet:allow <reason> for proven capacity reuse)", b.Name(), where)
				case "delete", "clear":
					c.report(call.Pos(), "%s %s: map mutation on the hot path", b.Name(), where)
				default:
					c.report(call.Pos(), "builtin %s is not audited for hot-path use %s", b.Name(), where)
				}
			}
			return
		}
	}

	// Conversions.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		c.checkConversion(call, tv.Type, where)
		return
	}

	// Interface dispatch carries no allocation of its own; the
	// implementations are covered by their own hotpath marks and the
	// runtime alloc guards.
	if analysis.IsInterfaceCall(info, call) {
		return
	}

	fn := analysis.Callee(info, call)
	if fn == nil {
		// A call through a func value (parameter, field); calling one
		// does not allocate. Boxing into one was flagged at creation.
		c.checkArgs(call, where)
		return
	}
	c.checkArgs(call, where)

	pkg := fn.Pkg()
	if pkg == nil {
		return
	}
	key := analysis.FuncKey(fn)
	switch {
	case pkg.Path() == c.pass.Path:
		fd := c.decls[fn]
		if fd == nil {
			return
		}
		if m := c.pass.Directives.Mark(fd); m != nil {
			return // hotpath: checked on its own; coldinit: exempt by contract
		}
		c.checkFunc(fd, origin)
	case strings.HasPrefix(pkg.Path(), moduleOf(c.pass.Path)+"/") || pkg.Path() == moduleOf(c.pass.Path):
		if !c.pass.Facts.Analyzed(pkg.Path()) {
			return // single-package run: callee's package not in scope
		}
		if _, ok := c.pass.Facts.Get(name, pkg.Path()+"."+key); !ok {
			c.report(call.Pos(), "call to %s.%s %s, but it is not marked //bpvet:hotpath or //bpvet:coldinit", pkg.Path(), key, where)
		}
	default:
		if !allowedStdlib[pkg.Path()] {
			c.report(call.Pos(), "call to %s.%s %s: stdlib outside math/math/bits is not audited for allocation", pkg.Path(), key, where)
		}
	}
}

// moduleOf derives the module root from an import path ("xorbp/..." ->
// "xorbp").
func moduleOf(path string) string {
	if i := strings.Index(path, "/"); i >= 0 {
		return path[:i]
	}
	return path
}

// checkArgs flags concrete values boxed into interface parameters.
func (c *checker) checkArgs(call *ast.CallExpr, where string) {
	tv, ok := c.pass.Info.Types[analysis.Unparen(call.Fun)]
	if !ok {
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	if call.Ellipsis.IsValid() {
		return // s... passes the slice through; no per-element boxing
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		c.checkBox(arg, pt, "passing", where)
	}
}

// checkBox reports moving a concrete value into an interface slot.
func (c *checker) checkBox(e ast.Expr, target types.Type, how, where string) {
	if target == nil || !types.IsInterface(target.Underlying()) {
		return
	}
	tv, ok := c.pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return
	}
	if tv.IsNil() || types.IsInterface(tv.Type.Underlying()) {
		return
	}
	c.report(e.Pos(), "%s concrete %s as interface %s boxes it (heap allocation) %s", how, tv.Type.String(), target.String(), where)
}

// checkConversion flags allocating conversions: interface boxing and
// string<->byte/rune-slice copies.
func (c *checker) checkConversion(call *ast.CallExpr, target types.Type, where string) {
	if len(call.Args) != 1 {
		return
	}
	if types.IsInterface(target.Underlying()) {
		c.checkBox(call.Args[0], target, "converting", where)
		return
	}
	st, ok := c.pass.Info.Types[call.Args[0]]
	if !ok {
		return
	}
	tb, tIsBasic := target.Underlying().(*types.Basic)
	sb, sIsBasic := st.Type.Underlying().(*types.Basic)
	_, sIsSlice := st.Type.Underlying().(*types.Slice)
	_, tIsSlice := target.Underlying().(*types.Slice)
	switch {
	case tIsBasic && tb.Info()&types.IsString != 0 && (sIsSlice || (sIsBasic && sb.Info()&types.IsInteger != 0 && st.Value == nil)):
		c.report(call.Pos(), "conversion to string copies %s", where)
	case tIsSlice && sIsBasic && sb.Info()&types.IsString != 0:
		c.report(call.Pos(), "conversion of string to slice copies %s", where)
	}
}

func (c *checker) report(pos token.Pos, format string, args ...any) {
	c.pass.Reportf(pos, format, args...)
}
