// Package driver is the fact-store consumer half of the cross-package
// hotpath testdata: calling a marked function in another analyzed
// package is fine, calling an unmarked one is a diagnostic.
package driver

import "xorbp/fakedep"

//bpvet:hotpath
func Drive(x uint64) uint64 {
	return dep.Hot(x) // marked in dep: fine
}

//bpvet:hotpath
func DriveCold(n int) int {
	return len(dep.Cold(n)) // want `not marked //bpvet:hotpath or //bpvet:coldinit`
}
