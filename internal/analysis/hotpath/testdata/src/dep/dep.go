// Package dep is the fact-store producer half of the cross-package
// hotpath testdata: Hot exports a hotpath fact, Cold exports nothing.
package dep

//bpvet:hotpath
func Hot(x uint64) uint64 {
	return x * 2654435761
}

func Cold(n int) []int {
	return make([]int, n)
}
