// Package hot is hotpath-analyzer testdata: one marked function per
// banned construct (true positives) interleaved with the sanctioned
// forms (true negatives).
package hot

import (
	"math/bits"
	"sort"
)

type ring struct {
	buf [8]uint64
	n   int
}

type counter interface{ Bump(int) }

type impl struct{ total int }

func (i *impl) Bump(d int) { i.total += d }

//bpvet:hotpath
func hotMake(n int) int {
	s := make([]int, n) // want `make allocates`
	return len(s)
}

//bpvet:hotpath
func hotSliceLit() int {
	s := []int{1, 2, 3} // want `slice literal allocates`
	return len(s)
}

//bpvet:hotpath
func hotPtrLit() *ring {
	return &ring{} // want `&composite literal heap-allocates`
}

//bpvet:hotpath
func hotValueLit() ring {
	return ring{n: 1} // plain value literal: fine
}

//bpvet:hotpath
func hotArray() [4]uint64 {
	return [4]uint64{1, 2, 3, 4} // array value literal: fine
}

//bpvet:hotpath
func hotMapAccess(m map[int]int, k int) int {
	return m[k] // want `map access`
}

//bpvet:hotpath
func hotMapRange(m map[int]int) int {
	total := 0
	for _, v := range m { // want `map range`
		total += v
	}
	return total
}

//bpvet:hotpath
func hotChanSend(ch chan int) {
	ch <- 1 // want `channel send`
}

//bpvet:hotpath
func hotChanRecv(ch chan int) int {
	return <-ch // want `channel receive`
}

//bpvet:hotpath
func hotDefer(f func()) {
	defer f() // want `defer`
}

//bpvet:hotpath
func hotGo(f func()) {
	go f() // want `go statement`
}

//bpvet:hotpath
func hotConcat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//bpvet:hotpath
func hotStringConv(b []byte) string {
	return string(b) // want `conversion to string copies`
}

//bpvet:hotpath
func hotBoxArg(i *impl) {
	sink(i) // want `boxes it`
}

func sink(v any) { _ = v }

//bpvet:hotpath
func hotBoxAssign(i *impl) {
	var c counter = i // want `boxes it`
	c.Bump(1)
}

//bpvet:hotpath
func hotBoxReturn(i *impl) counter {
	return i // want `boxes it`
}

//bpvet:hotpath
func hotDispatch(c counter, v int) {
	c.Bump(v) // interface dispatch: fine, nothing boxes
}

//bpvet:hotpath
func hotMethodValue(i *impl) func(int) {
	return i.Bump // want `method value captures its receiver`
}

//bpvet:hotpath
func hotClosureArg(r *ring, v uint64) {
	update(r, func(x uint64) uint64 { return x + v }) // direct-arg closure: fine
}

//bpvet:hotpath
func hotClosureEscapes(v uint64) func() uint64 {
	f := func() uint64 { return v } // want `function literal escapes`
	return f
}

//bpvet:hotpath
func hotClosureBodyChecked(n int) {
	run(func() {
		_ = make([]int, n) // want `make allocates`
	})
}

func run(f func())                          { f() }
func update(r *ring, f func(uint64) uint64) { r.buf[0] = f(r.buf[0]) }

//bpvet:hotpath
func hotRoot(n int) int {
	return helper(n) // unannotated same-package callee: checked below
}

func helper(n int) int {
	s := make([]int, n) // want `make allocates.*reached from hotpath hotRoot`
	return len(s)
}

//bpvet:coldinit sized once per thread before the measured window opens
func lazyInit(n int) []int {
	return make([]int, n) // exempt: coldinit body is not checked
}

//bpvet:hotpath
func hotUsesCold(n int) int {
	return len(lazyInit(n)) // call to coldinit: fine
}

//bpvet:hotpath
func hotAppendAllowed(buf []uint64, v uint64) []uint64 {
	buf = append(buf, v) //bpvet:allow capacity preallocated by the generator; steady state never grows
	return buf
}

//bpvet:hotpath
func hotBits(x uint64) int {
	return bits.OnesCount64(x) // math/bits is on the audited allowlist
}

//bpvet:hotpath
func hotStdlib(s []int) {
	sort.Ints(s) // want `stdlib outside math/math/bits`
}

func coldHelper() []int {
	return make([]int, 8) // unmarked and unreachable from hot code: fine
}
