package hotpath_test

import (
	"testing"

	"xorbp/internal/analysis/analysistest"
	"xorbp/internal/analysis/hotpath"
)

// TestHotpath pins one true positive per banned construct and the
// sanctioned counterparts: value literals, direct-arg closures,
// interface dispatch, coldinit callees, allowed appends, math/bits.
func TestHotpath(t *testing.T) {
	analysistest.Run(t, "testdata/src/hot", "xorbp/internal/fake", hotpath.Analyzer)
}

// TestCrossPackageFacts pins the fact-store handshake: a hot function
// may call a //bpvet:hotpath function from an already-analyzed package
// but not an unmarked one.
func TestCrossPackageFacts(t *testing.T) {
	analysistest.RunPkgs(t, []analysistest.Pkg{
		{Dir: "testdata/src/dep", Path: "xorbp/fakedep"},
		{Dir: "testdata/src/driver", Path: "xorbp/fakedriver"},
	}, hotpath.Analyzer)
}
