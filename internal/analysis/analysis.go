// Package analysis is the repository's static-invariant framework: a
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// vocabulary (Analyzer, Pass, Diagnostic) plus the //bpvet directive
// grammar that lets code opt in to stricter rules (hotpath) or justify a
// deviation (allow).
//
// Every guarantee the experiment engine rests on — byte-identical
// results across serial/parallel/distributed execution, schema-keyed
// caching, zero-allocation steady state — has at some point been
// violated by an innocent-looking edit (the %+v cache key, the
// mislabeled single-only attack cache entry, a blown inline budget).
// The analyzers in the subpackages turn those runtime-test findings
// into build-time facts: cmd/bpvet runs them as a CI gate.
//
// The framework is stdlib-only by necessity and by design: the build
// environment bakes in the Go toolchain but no module proxy, so
// golang.org/x/tools cannot be fetched. Packages are loaded with
// `go list` and type-checked with go/types using the source importer
// (see load.go); the analyzer API mirrors go/analysis closely enough
// that porting to the real multichecker later is mechanical.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one invariant checker. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics (lowercase, no spaces).
	Name string
	// Doc is the analyzer's one-paragraph description.
	Doc string
	// Run applies the analyzer to one package. Diagnostics are reported
	// through the pass; the error return is for operational failures
	// (malformed anchor shapes, not findings).
	Run func(*Pass) error
}

// Pass carries one package's load results to an analyzer.
type Pass struct {
	// Analyzer is the checker being applied.
	Analyzer *Analyzer
	// Path is the package's import path. Scope predicates key off it.
	Path string
	// Fset maps positions for every file in the pass.
	Fset *token.FileSet
	// Files are the package's parsed source files (with comments).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info is the package's type information (Types, Defs, Uses,
	// Selections, Implicits populated).
	Info *types.Info
	// Directives are the package's parsed //bpvet directives.
	Directives *Directives
	// Facts is the run-wide fact store for cross-package analysis
	// (hotpath marks). Nil-safe: a pass run standalone gets an empty
	// store.
	Facts *FactStore

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportFix records a diagnostic at pos carrying one suggested fix.
// Fixes must be safe mechanical edits: applying them (cmd/bpvet -fix)
// resolves the diagnostic without changing behavior.
func (p *Pass) ReportFix(pos token.Pos, fix SuggestedFix, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Fixes:    []SuggestedFix{fix},
	})
}

// Edit builds a TextEdit replacing the source range [pos, end) with
// newText, resolved to a file offset pair immediately so fixes survive
// being serialized (JSON reports) and applied in a later process.
func (p *Pass) Edit(pos, end token.Pos, newText string) TextEdit {
	from := p.Fset.Position(pos)
	to := p.Fset.Position(end)
	return TextEdit{File: from.Filename, Offset: from.Offset, End: to.Offset, NewText: newText}
}

// Diagnostic is one analyzer finding, positioned and attributed, with
// zero or more suggested mechanical fixes.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	Fixes    []SuggestedFix
}

// SuggestedFix is one safe mechanical resolution of a diagnostic: a
// message describing the edit plus the text edits realizing it.
type SuggestedFix struct {
	Message string
	Edits   []TextEdit
}

// TextEdit replaces the byte range [Offset, End) of File with NewText.
// Ranges are file offsets (not token.Pos values) so edits can round-trip
// through the machine-readable report formats.
type TextEdit struct {
	File    string
	Offset  int
	End     int
	NewText string
}

// String renders the conventional file:line:col: [analyzer] message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// FactStore shares analyzer facts across the packages of one run, in
// dependency order: a pass may read facts about its imports because the
// runner analyzes imported packages first.
type FactStore struct {
	// analyzed records which package paths have been processed, so
	// consumers can distinguish "not marked" from "not analyzed".
	analyzed map[string]bool
	// facts maps "<analyzer>\x00<key>" to an opaque string value.
	facts map[string]string
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{analyzed: make(map[string]bool), facts: make(map[string]string)}
}

// MarkAnalyzed records that pkgPath has been processed by the run.
func (s *FactStore) MarkAnalyzed(pkgPath string) {
	if s != nil {
		s.analyzed[pkgPath] = true
	}
}

// Analyzed reports whether pkgPath was processed earlier in the run.
func (s *FactStore) Analyzed(pkgPath string) bool {
	return s != nil && s.analyzed[pkgPath]
}

// Set records fact key=value for the given analyzer.
func (s *FactStore) Set(analyzer, key, value string) {
	if s != nil {
		s.facts[analyzer+"\x00"+key] = value
	}
}

// Get reads a fact recorded by Set.
func (s *FactStore) Get(analyzer, key string) (string, bool) {
	if s == nil {
		return "", false
	}
	v, ok := s.facts[analyzer+"\x00"+key]
	return v, ok
}

// SortDiagnostics orders diagnostics by file, line, column, analyzer,
// message — the stable order bpvet prints and tests compare against.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
