// Package wire is exhaustive-analyzer testdata for the Kind-switch
// rule, checked under a spoofed path ending in "wire" so the Spec
// anchor matches.
package wire

const (
	KindAttack = "attack"
	KindSweep  = "sweep"
)

type Spec struct {
	Kind string
	Seed uint64
}

func dispatchGood(s Spec) int {
	switch s.Kind {
	case KindAttack:
		return 1
	case KindSweep:
		return 2
	case "":
		return 0
	default:
		return -1
	}
}

func dispatchMissing(s Spec) int {
	switch s.Kind { // want `does not handle .*KindSweep` `has no default arm`
	case KindAttack:
		return 1
	case "":
		return 0
	}
	return -1
}

func notAKindSwitch(s Spec) int {
	switch s.Seed { // switches on other fields are not anchored
	case 0:
		return 0
	}
	return 1
}
