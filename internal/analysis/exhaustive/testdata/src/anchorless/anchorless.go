package anchorless // want `predictor anchor functions missing: NewDirPredictor, validPredictor`

// A package on the experiment path whose anchors have been refactored
// away must say so rather than silently passing.

func PredictorNames() []string {
	return []string{"gshare"}
}
