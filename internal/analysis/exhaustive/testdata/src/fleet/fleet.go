// Package fleet is exhaustive-analyzer testdata for the scorer
// registry and ledger rules, checked under the spoofed path
// xorbp/internal/fleet: one scorer is unregistered, the name list has
// drifted from the registry in both directions, and the ledger is
// missing a scorer row and the pull queue.
package fleet

type Scorer interface {
	Name() string
	Order(n int) []int
}

type Alpha struct{}

func (Alpha) Name() string      { return "alpha" }
func (Alpha) Order(n int) []int { return nil }

type Beta struct{}

func (Beta) Name() string      { return "beta" }
func (Beta) Order(n int) []int { return nil }

type Rogue struct{} // want `Rogue implements Scorer but is missing from ScorerByName`

func (Rogue) Name() string      { return "rogue" }
func (Rogue) Order(n int) []int { return nil }

func ScorerByName(name string) (Scorer, bool) {
	switch name {
	case Alpha{}.Name():
		return Alpha{}, true
	case Beta{}.Name():
		return Beta{}, true
	}
	return nil, false
}

func ScorerNames() []string { // want `ScorerNames lists "gamma" but ScorerByName has no case for it` `ScorerByName constructs "beta" but ScorerNames does not list it`
	return []string{"alpha", "gamma"}
}

func LedgerPolicies() []string { // want `scorer "alpha" is missing from LedgerPolicies` `LedgerPolicies omits "pull"`
	return []string{"serial", "gamma", "beta"}
}
