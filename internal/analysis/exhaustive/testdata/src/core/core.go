// Package core is exhaustive-analyzer testdata for the ByName registry
// rule, checked under the spoofed path xorbp/internal/core.
package core

type Codec interface {
	Name() string
	Encode(uint64) uint64
}

type AddCodec struct{}

func (AddCodec) Name() string           { return "add" }
func (AddCodec) Encode(x uint64) uint64 { return x + 1 }

type SwapCodec struct{}

func (SwapCodec) Name() string           { return "swap" }
func (SwapCodec) Encode(x uint64) uint64 { return x<<32 | x>>32 }

type MulCodec struct{} // want `MulCodec implements Codec but is missing from CodecByName`

func (MulCodec) Name() string           { return "mul" }
func (MulCodec) Encode(x uint64) uint64 { return x * 3 }

func CodecByName(name string) (Codec, bool) {
	switch name {
	case AddCodec{}.Name():
		return AddCodec{}, true
	case SwapCodec{}.Name(): // want `case key is SwapCodec.* but the clause returns AddCodec`
		return AddCodec{}, true
	}
	return nil, false
}
