// Package experiment is exhaustive-analyzer testdata for the predictor
// list rule, checked under the spoofed path xorbp/internal/experiment:
// the name list, constructor switch, and wire validator have been
// deliberately drifted apart.
package experiment

func PredictorNames() []string { // want `PredictorNames lists "mystery" but NewDirPredictor has no case for it`
	return []string{"gshare", "mystery"}
}

func NewDirPredictor(name string) int {
	switch name {
	case "gshare":
		return 1
	case "tage":
		return 2
	default:
		panic(name)
	}
}

func validPredictor(name string) bool { // want `NewDirPredictor accepts "tage" but validPredictor rejects it` `validPredictor accepts "extra" but NewDirPredictor cannot construct it`
	switch name {
	case "gshare", "extra":
		return true
	}
	return false
}
