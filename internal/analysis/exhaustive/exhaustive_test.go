package exhaustive_test

import (
	"testing"

	"xorbp/internal/analysis/analysistest"
	"xorbp/internal/analysis/exhaustive"
)

// TestKindSwitches pins the Kind-switch rule: a complete switch is
// silent, a switch missing a kind or a default arm is diagnosed, and
// switches on other Spec fields are not anchored.
func TestKindSwitches(t *testing.T) {
	analysistest.Run(t, "testdata/src/wire", "xorbp/internal/fake/wire", exhaustive.Analyzer)
}

// TestRegistry pins the ByName registry rule: an unregistered
// implementation and a case-key/return-type mismatch are diagnosed;
// correctly registered codecs are silent.
func TestRegistry(t *testing.T) {
	analysistest.Run(t, "testdata/src/core", "xorbp/internal/core", exhaustive.Analyzer)
}

// TestPredictorLists pins the three-way predictor list consistency
// checks on a deliberately drifted testdata package.
func TestPredictorLists(t *testing.T) {
	analysistest.Run(t, "testdata/src/experiment", "xorbp/internal/experiment", exhaustive.Analyzer)
}

// TestMissingAnchors pins that refactoring the anchor functions away
// is itself a diagnostic, not a silent pass.
func TestMissingAnchors(t *testing.T) {
	analysistest.Run(t, "testdata/src/anchorless", "xorbp/internal/experiment", exhaustive.Analyzer)
}

// TestScorerLists pins the fleet dispatch registry rule on a
// deliberately drifted testdata package: an unregistered scorer, name
// list drift in both directions, and missing ledger rows (a scorer's
// and the pull queue's) are all diagnosed.
func TestScorerLists(t *testing.T) {
	analysistest.Run(t, "testdata/src/fleet", "xorbp/internal/fleet", exhaustive.Analyzer)
}
