// Package exhaustive implements the bpvet analyzer that keeps the
// repo's three dispatch registries closed under extension.
//
// Adding a mechanism (STBPU, CIBPU) or predictor touches several
// mirrored lists: the wire Kind* constants and the switches that
// dispatch on Spec.Kind; the core Codec/Scrambler interfaces and their
// ByName registries; the experiment predictor name list, constructor
// switch, and wire-side validator. Each pair has already drifted once
// in review. The analyzer makes drift a build error:
//
//  1. every switch on a wire Spec's Kind field has a case for "" (the
//     zero kind), a case for every Kind* string constant the Spec's
//     package declares, and a default arm for forward compatibility;
//  2. in internal/core, every named type implementing Codec (or
//     Scrambler) appears in CodecByName (ScramblerByName), and each
//     `case T{}.Name():` clause returns that same T;
//  3. in internal/experiment, PredictorNames() is a subset of
//     NewDirPredictor's switch, and NewDirPredictor's case set equals
//     validPredictor's — the wire validator may not drift from the
//     constructor;
//  4. in internal/fleet, every Scorer implementation appears in
//     ScorerByName (rule 2's shape), ScorerNames() equals the registry
//     case set, and LedgerPolicies() — the strategies
//     STRATEGY_LEDGER.md must benchmark — contains every scorer name
//     plus "pull": a routing policy cannot ship without its committed
//     ledger row;
//  5. in internal/chaos, every Fault implementation appears in
//     FaultByName (rule 2's shape) and FaultNames() equals the registry
//     case set — the FaultPlan rule vocabulary may not drift from the
//     kinds an injector can actually fire.
//
// The anchors are recognized by shape (package path suffix, type and
// function names); an anchor that exists but no longer parses as the
// expected shape is itself a diagnostic, so refactors cannot silently
// detach the checks.
package exhaustive

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"

	"xorbp/internal/analysis"
)

// Analyzer is the registry/dispatch exhaustiveness checker.
var Analyzer = &analysis.Analyzer{
	Name: "exhaustive",
	Doc:  "require Kind switches, ByName registries, and predictor name lists to stay mutually complete",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	checkKindSwitches(pass)
	if strings.HasSuffix(pass.Path, "internal/core") {
		checkRegistry(pass, "Codec", "CodecByName")
		checkRegistry(pass, "Scrambler", "ScramblerByName")
	}
	if strings.HasSuffix(pass.Path, "internal/experiment") {
		checkPredictorLists(pass)
	}
	if strings.HasSuffix(pass.Path, "internal/fleet") {
		checkRegistry(pass, "Scorer", "ScorerByName")
		checkScorerLists(pass)
	}
	if strings.HasSuffix(pass.Path, "internal/chaos") {
		checkRegistry(pass, "Fault", "FaultByName")
		checkFaultLists(pass)
	}
	return nil
}

// --- rule 1: Kind switches -------------------------------------------

func checkKindSwitches(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			sel, ok := analysis.Unparen(sw.Tag).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Kind" {
				return true
			}
			spec := specStructOf(pass.Info, sel.X)
			if spec == nil {
				return true
			}
			declared := kindConsts(spec.Obj().Pkg())
			handled := make(map[string]bool)
			hasDefault := false
			for _, stmt := range sw.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				if cc.List == nil {
					hasDefault = true
					continue
				}
				for _, e := range cc.List {
					if tv, ok := pass.Info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
						handled[constant.StringVal(tv.Value)] = true
					}
				}
			}
			var missing []string
			if !handled[""] {
				missing = append(missing, `"" (the zero kind)`)
			}
			for _, k := range declared {
				if !handled[k.val] {
					missing = append(missing, k.name)
				}
			}
			sort.Strings(missing)
			if len(missing) > 0 {
				pass.Reportf(sw.Pos(), "switch on %s.Spec.Kind does not handle %s", spec.Obj().Pkg().Path(), strings.Join(missing, ", "))
			}
			if !hasDefault {
				pass.Reportf(sw.Pos(), "switch on %s.Spec.Kind has no default arm: unknown kinds from newer peers must be rejected explicitly, not fall through", spec.Obj().Pkg().Path())
			}
			return true
		})
	}
}

// specStructOf returns the named type of x when x is a value of a
// struct named Spec declared in a package whose path ends in "wire".
func specStructOf(info *types.Info, x ast.Expr) *types.Named {
	tv, ok := info.Types[x]
	if !ok {
		return nil
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Spec" || named.Obj().Pkg() == nil {
		return nil
	}
	if !strings.HasSuffix(named.Obj().Pkg().Path(), "wire") {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	return named
}

type kindConst struct{ name, val string }

// kindConsts lists pkg's exported Kind* string constants.
func kindConsts(pkg *types.Package) []kindConst {
	var out []kindConst
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		if !strings.HasPrefix(name, "Kind") {
			continue
		}
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || c.Val().Kind() != constant.String {
			continue
		}
		out = append(out, kindConst{name: pkg.Path() + "." + name, val: constant.StringVal(c.Val())})
	}
	return out
}

// --- rule 2: core ByName registries ----------------------------------

func checkRegistry(pass *analysis.Pass, ifaceName, funcName string) {
	scope := pass.Pkg.Scope()
	ifaceObj, ok := scope.Lookup(ifaceName).(*types.TypeName)
	if !ok {
		return // package declares no such interface; nothing anchors here
	}
	iface, ok := ifaceObj.Type().Underlying().(*types.Interface)
	if !ok {
		return
	}

	// All package-level named types implementing the interface.
	var impls []*types.TypeName
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn == ifaceObj || tn.IsAlias() {
			continue
		}
		if _, isIface := tn.Type().Underlying().(*types.Interface); isIface {
			continue
		}
		if types.Implements(tn.Type(), iface) || types.Implements(types.NewPointer(tn.Type()), iface) {
			impls = append(impls, tn)
		}
	}

	fd := findFunc(pass, funcName)
	if fd == nil {
		if len(impls) > 0 {
			pass.Reportf(ifaceObj.Pos(), "interface %s has implementations but no %s registry function", ifaceName, funcName)
		}
		return
	}

	// Walk the registry switch: each case must be T{}.Name() and return
	// that same T.
	registered := make(map[string]bool)
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok {
			return true
		}
		found = true
		for _, stmt := range sw.Body.List {
			cc, ok := stmt.(*ast.CaseClause)
			if !ok || cc.List == nil {
				continue
			}
			var caseTypes []string
			for _, e := range cc.List {
				t := nameCallType(pass.Info, e)
				if t == "" {
					pass.Reportf(e.Pos(), "%s case key must be a T{}.Name() call so the key cannot drift from the type", funcName)
					continue
				}
				caseTypes = append(caseTypes, t)
				registered[t] = true
			}
			retType := returnedCompositeType(pass.Info, cc.Body)
			if retType == "" {
				pass.Reportf(cc.Pos(), "%s case must return a composite literal of the registered type", funcName)
				continue
			}
			for _, ct := range caseTypes {
				if ct != retType {
					pass.Reportf(cc.Pos(), "%s case key is %s{}.Name() but the clause returns %s{}", funcName, ct, retType)
				}
			}
		}
		return false
	})
	if !found {
		pass.Reportf(fd.Pos(), "%s does not switch on its name argument; the exhaustive analyzer cannot verify the registry", funcName)
		return
	}
	for _, tn := range impls {
		if !registered[tn.Name()] {
			pass.Reportf(tn.Pos(), "%s implements %s but is missing from %s; the wire protocol cannot reconstruct it", tn.Name(), ifaceName, funcName)
		}
	}
}

// nameCallType matches the expression T{}.Name() and returns "T".
func nameCallType(info *types.Info, e ast.Expr) string {
	call, ok := analysis.Unparen(e).(*ast.CallExpr)
	if !ok {
		return ""
	}
	sel, ok := analysis.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Name" {
		return ""
	}
	return compositeTypeName(info, sel.X)
}

// returnedCompositeType returns the named type "T" of the first result
// in the clause's return statement when it is a composite literal.
func returnedCompositeType(info *types.Info, body []ast.Stmt) string {
	for _, stmt := range body {
		ret, ok := stmt.(*ast.ReturnStmt)
		if !ok || len(ret.Results) == 0 {
			continue
		}
		return compositeTypeName(info, ret.Results[0])
	}
	return ""
}

// compositeTypeName returns "T" for a composite literal T{} (possibly
// parenthesized or address-taken), else "".
func compositeTypeName(info *types.Info, e ast.Expr) string {
	e = analysis.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok {
		e = analysis.Unparen(u.X)
	}
	lit, ok := e.(*ast.CompositeLit)
	if !ok {
		return ""
	}
	tv, ok := info.Types[lit]
	if !ok {
		return ""
	}
	if named, ok := tv.Type.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// --- rule 3: experiment predictor lists ------------------------------

func checkPredictorLists(pass *analysis.Pass) {
	names := findFunc(pass, "PredictorNames")
	ctor := findFunc(pass, "NewDirPredictor")
	valid := findFunc(pass, "validPredictor")
	if names == nil || ctor == nil || valid == nil {
		var missing []string
		for _, m := range []struct {
			fd   *ast.FuncDecl
			name string
		}{{names, "PredictorNames"}, {ctor, "NewDirPredictor"}, {valid, "validPredictor"}} {
			if m.fd == nil {
				missing = append(missing, m.name)
			}
		}
		pass.Reportf(pass.Files[0].Pos(), "predictor anchor functions missing: %s; the exhaustive analyzer cannot verify the predictor registry", strings.Join(missing, ", "))
		return
	}

	listed := stringLiteralSet(pass, names.Body)
	ctorCases := caseStringSet(pass, ctor.Body)
	validCases := caseStringSet(pass, valid.Body)
	if listed == nil || ctorCases == nil || validCases == nil {
		pass.Reportf(names.Pos(), "predictor anchors did not parse as string-literal list / name switches; the exhaustive analyzer cannot verify the predictor registry")
		return
	}

	for _, n := range sortedDiff(listed, ctorCases) {
		pass.Reportf(names.Pos(), "PredictorNames lists %q but NewDirPredictor has no case for it (sweeps would panic)", n)
	}
	for _, n := range sortedDiff(ctorCases, validCases) {
		pass.Reportf(valid.Pos(), "NewDirPredictor accepts %q but validPredictor rejects it; the wire validator drifted from the constructor", n)
	}
	for _, n := range sortedDiff(validCases, ctorCases) {
		pass.Reportf(valid.Pos(), "validPredictor accepts %q but NewDirPredictor cannot construct it (remote peers would panic the worker)", n)
	}
}

// stringLiteralSet collects the string constants of the first []string
// composite literal in body.
func stringLiteralSet(pass *analysis.Pass, body *ast.BlockStmt) map[string]bool {
	var set map[string]bool
	ast.Inspect(body, func(n ast.Node) bool {
		if set != nil {
			return false
		}
		lit, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		set = make(map[string]bool)
		for _, e := range lit.Elts {
			if tv, ok := pass.Info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
				set[constant.StringVal(tv.Value)] = true
			}
		}
		return false
	})
	return set
}

// caseStringSet collects all string constants appearing in case clauses
// within body.
func caseStringSet(pass *analysis.Pass, body *ast.BlockStmt) map[string]bool {
	var set map[string]bool
	ast.Inspect(body, func(n ast.Node) bool {
		cc, ok := n.(*ast.CaseClause)
		if !ok {
			return true
		}
		if set == nil {
			set = make(map[string]bool)
		}
		for _, e := range cc.List {
			if tv, ok := pass.Info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
				set[constant.StringVal(tv.Value)] = true
			}
		}
		return true
	})
	return set
}

func sortedDiff(a, b map[string]bool) []string {
	var out []string
	for k := range a {
		if !b[k] {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// --- rule 4: fleet scorer lists --------------------------------------

// checkScorerLists holds the fleet dispatch vocabulary mutually
// complete: ScorerNames (the -route flag's vocabulary) must equal the
// ScorerByName case set, and LedgerPolicies (the strategies the
// committed STRATEGY_LEDGER.md benchmarks) must contain every scorer
// name plus "pull" — a routing policy cannot ship without its ledger
// row, and the pull queue may not drop out of the comparison.
func checkScorerLists(pass *analysis.Pass) {
	names := findFunc(pass, "ScorerNames")
	ctor := findFunc(pass, "ScorerByName")
	ledger := findFunc(pass, "LedgerPolicies")
	if names == nil || ctor == nil || ledger == nil {
		var missing []string
		for _, m := range []struct {
			fd   *ast.FuncDecl
			name string
		}{{names, "ScorerNames"}, {ctor, "ScorerByName"}, {ledger, "LedgerPolicies"}} {
			if m.fd == nil {
				missing = append(missing, m.name)
			}
		}
		pass.Reportf(pass.Files[0].Pos(), "fleet scorer anchor functions missing: %s; the exhaustive analyzer cannot verify the dispatch registry", strings.Join(missing, ", "))
		return
	}

	listed := stringLiteralSet(pass, names.Body)
	registered := scorerCaseSet(pass, ctor)
	policies := stringLiteralSet(pass, ledger.Body)
	if listed == nil || registered == nil || policies == nil {
		pass.Reportf(names.Pos(), "fleet scorer anchors did not parse as string-literal lists / a T{}.Name() switch; the exhaustive analyzer cannot verify the dispatch registry")
		return
	}

	for _, n := range sortedDiff(listed, registered) {
		pass.Reportf(names.Pos(), "ScorerNames lists %q but ScorerByName has no case for it (-route would reject a documented policy)", n)
	}
	for _, n := range sortedDiff(registered, listed) {
		pass.Reportf(names.Pos(), "ScorerByName constructs %q but ScorerNames does not list it; the -route vocabulary drifted from the registry", n)
	}
	for _, n := range sortedDiff(listed, policies) {
		pass.Reportf(ledger.Pos(), "scorer %q is missing from LedgerPolicies; a routing policy cannot ship without its STRATEGY_LEDGER.md row", n)
	}
	if !policies["pull"] {
		pass.Reportf(ledger.Pos(), `LedgerPolicies omits "pull"; the pull queue must stay in the strategy ledger's comparison`)
	}
}

// scorerCaseSet resolves ScorerByName's case keys — T{}.Name() calls,
// per rule 2 — to their string values by reading each T's Name method
// literal. A case that is not a Name call, or a Name method that does
// not return a plain string literal, yields nil (the caller reports
// the anchor as unparseable).
func scorerCaseSet(pass *analysis.Pass, fd *ast.FuncDecl) map[string]bool {
	set := make(map[string]bool)
	parsed := true
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok {
			return true
		}
		for _, stmt := range sw.Body.List {
			cc, ok := stmt.(*ast.CaseClause)
			if !ok || cc.List == nil {
				continue
			}
			for _, e := range cc.List {
				t := nameCallType(pass.Info, e)
				if t == "" {
					parsed = false // rule 2 already reported the malformed key
					continue
				}
				val, ok := nameMethodLiteral(pass, t)
				if !ok {
					parsed = false
					continue
				}
				set[val] = true
			}
		}
		return false
	})
	if !parsed || len(set) == 0 {
		return nil
	}
	return set
}

// nameMethodLiteral returns the string literal T's Name method
// returns, when the method body is a single plain return.
func nameMethodLiteral(pass *analysis.Pass, typeName string) (string, bool) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Name.Name != "Name" || fd.Body == nil {
				continue
			}
			if recvTypeName(fd.Recv) != typeName {
				continue
			}
			for _, stmt := range fd.Body.List {
				ret, ok := stmt.(*ast.ReturnStmt)
				if !ok || len(ret.Results) != 1 {
					continue
				}
				if tv, ok := pass.Info.Types[ret.Results[0]]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
					return constant.StringVal(tv.Value), true
				}
			}
		}
	}
	return "", false
}

// recvTypeName extracts the bare receiver type name ("T" from (T),
// (*T), (r T), (r *T)).
func recvTypeName(recv *ast.FieldList) string {
	if recv == nil || len(recv.List) != 1 {
		return ""
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// --- rule 5: chaos fault lists ----------------------------------------

// checkFaultLists holds the chaos vocabulary mutually complete:
// FaultNames (the FaultPlan rule vocabulary) must equal the FaultByName
// case set, so a documented fault name always resolves to a kind the
// injector can fire and every registered kind is plannable.
func checkFaultLists(pass *analysis.Pass) {
	names := findFunc(pass, "FaultNames")
	ctor := findFunc(pass, "FaultByName")
	if names == nil || ctor == nil {
		var missing []string
		for _, m := range []struct {
			fd   *ast.FuncDecl
			name string
		}{{names, "FaultNames"}, {ctor, "FaultByName"}} {
			if m.fd == nil {
				missing = append(missing, m.name)
			}
		}
		pass.Reportf(pass.Files[0].Pos(), "chaos fault anchor functions missing: %s; the exhaustive analyzer cannot verify the fault registry", strings.Join(missing, ", "))
		return
	}

	listed := stringLiteralSet(pass, names.Body)
	registered := scorerCaseSet(pass, ctor)
	if listed == nil || registered == nil {
		pass.Reportf(names.Pos(), "chaos fault anchors did not parse as a string-literal list / a T{}.Name() switch; the exhaustive analyzer cannot verify the fault registry")
		return
	}

	for _, n := range sortedDiff(listed, registered) {
		pass.Reportf(names.Pos(), "FaultNames lists %q but FaultByName has no case for it (a plan scheduling it would never fire)", n)
	}
	for _, n := range sortedDiff(registered, listed) {
		pass.Reportf(names.Pos(), "FaultByName resolves %q but FaultNames does not list it; the FaultPlan vocabulary drifted from the registry", n)
	}
}

// findFunc returns the package-level function declaration named name.
func findFunc(pass *analysis.Pass, name string) *ast.FuncDecl {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == name {
				return fd
			}
		}
	}
	return nil
}
