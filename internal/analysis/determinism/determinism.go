// Package determinism implements the bpvet analyzer that keeps
// nondeterminism out of the simulation and serialization paths.
//
// The engine's contract is byte-identical results for identical specs
// across serial, parallel, distributed, and cached execution. Four
// stdlib conveniences quietly break it:
//
//   - time.Now/time.Since smuggle wall-clock values into results,
//   - math/rand draws from unseeded (or globally shared) generators
//     where the repo's seeded rng package must be used,
//   - ranging over a map feeds Go's randomized iteration order into
//     whatever the loop body writes,
//   - %v/%+v/%#v of a struct bakes the field set into cache keys and
//     wire bytes, so adding a field silently changes them (the PR 1
//     cache-key incident).
//
// Telemetry that genuinely wants wall-clock time carries a
// //bpvet:allow <reason> directive; everything else is a diagnostic.
package determinism

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strconv"
	"strings"

	"xorbp/internal/analysis"
)

// Analyzer is the determinism checker.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock reads, math/rand, map-order-dependent output, and %v struct formatting on keyed paths",
	Run:  run,
}

// wirePathSuffixes are the packages whose formatted strings can become
// cache keys or wire bytes; %v-family struct formatting is banned there.
var wirePathSuffixes = []string{
	"internal/wire",
	"internal/runcache",
	"internal/experiment",
	"internal/serve",
	"internal/driver",
	"internal/fleet",
	"internal/chaos",
}

func run(pass *analysis.Pass) error {
	internal := strings.Contains(pass.Path+"/", "internal/")
	wirePath := false
	for _, s := range wirePathSuffixes {
		if strings.HasSuffix(pass.Path, s) {
			wirePath = true
			break
		}
	}

	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			p, _ := strconv.Unquote(imp.Path.Value)
			if p == "math/rand" || p == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s: use the seeded generators in xorbp/internal/rng so runs are reproducible", p)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if internal {
					for _, name := range []string{"Now", "Since"} {
						if analysis.IsPkgCall(pass.Info, n, "time", name) {
							pass.Reportf(n.Pos(), "time.%s reads the wall clock; results must be a pure function of the spec (//bpvet:allow <reason> for telemetry)", name)
						}
					}
				}
				if wirePath {
					checkFormat(pass, n)
				}
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkMapRange flags `for k := range m` loops whose body calls an
// output/serialization sink: map iteration order is randomized per run,
// so anything written inside the loop inherits that order.
func checkMapRange(pass *analysis.Pass, rs *ast.RangeStmt) {
	tv, ok := pass.Info.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sink, what := sinkCall(pass.Info, call); sink {
			pass.Reportf(rs.Pos(), "map iteration order is randomized, but this loop writes to %s; iterate a sorted key slice instead", what)
			return false
		}
		return true
	})
}

// sinkNames are method names that emit bytes: writers, encoders, and
// hash inputs all make map order observable.
var sinkNames = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"WriteTo": true, "Encode": true, "Render": true,
}

func sinkCall(info *types.Info, call *ast.CallExpr) (bool, string) {
	if fn := analysis.Callee(info, call); fn != nil && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "fmt", "encoding/json":
			return true, fn.Pkg().Path() + "." + fn.Name()
		}
		if sinkNames[fn.Name()] {
			return true, fn.Name()
		}
	}
	// Interface dispatch (io.Writer, json.Marshaler targets) resolves to
	// no static callee; match on the selector name.
	if sel, ok := analysis.Unparen(call.Fun).(*ast.SelectorExpr); ok && sinkNames[sel.Sel.Name] {
		return true, sel.Sel.Name
	}
	return false, ""
}

// formatFuncs maps fmt functions to the position of their format-string
// argument.
var formatFuncs = map[string]int{
	"Printf": 0, "Sprintf": 0, "Errorf": 0,
	"Fprintf": 1, "Appendf": 1,
}

// checkFormat flags %v/%+v/%#v applied to structs, maps, or plain
// interfaces in wire-path packages. Types with an explicit String() or
// Error() contract are exempt: their rendering is a deliberate API, not
// an accidental field dump.
func checkFormat(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.Callee(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return
	}
	fmtArg, ok := formatFuncs[fn.Name()]
	if !ok || len(call.Args) <= fmtArg {
		return
	}
	tv, ok := pass.Info.Types[call.Args[fmtArg]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	format := constant.StringVal(tv.Value)
	for _, v := range parseVerbs(format) {
		if v.verb != 'v' {
			continue
		}
		argIdx := fmtArg + 1 + v.arg
		if argIdx >= len(call.Args) {
			continue // malformed call; vet's territory
		}
		arg := call.Args[argIdx]
		atv, ok := pass.Info.Types[arg]
		if !ok {
			continue
		}
		if kind, bad := opaqueAggregate(atv.Type); bad {
			pass.Reportf(arg.Pos(), "%%%sv formats a %s: the rendering changes when fields change, which breaks cache keys and wire bytes; marshal explicit fields or implement String()", v.flags, kind)
		}
	}
}

type verbAt struct {
	verb  rune
	flags string // "+" or "#" when present, for the message
	arg   int    // variadic argument index consumed by this verb
}

// parseVerbs extracts the verbs of a fmt format string together with
// the variadic argument index each consumes, accounting for '*'
// width/precision and explicit [n] argument indexes.
func parseVerbs(format string) []verbAt {
	var out []verbAt
	arg := 0
	rs := []rune(format)
	for i := 0; i < len(rs); i++ {
		if rs[i] != '%' {
			continue
		}
		i++
		flags := ""
		for i < len(rs) && strings.ContainsRune("+-# 0", rs[i]) {
			if rs[i] == '+' || rs[i] == '#' {
				flags += string(rs[i])
			}
			i++
		}
		// Explicit argument index: %[n]v.
		if i < len(rs) && rs[i] == '[' {
			j := i + 1
			n := 0
			for j < len(rs) && rs[j] >= '0' && rs[j] <= '9' {
				n = n*10 + int(rs[j]-'0')
				j++
			}
			if j < len(rs) && rs[j] == ']' && n > 0 {
				arg = n - 1
				i = j + 1
			}
		}
		// Width, then optional precision; '*' consumes an argument.
		for pass := 0; pass < 2; pass++ {
			if i < len(rs) && rs[i] == '*' {
				arg++
				i++
			}
			for i < len(rs) && rs[i] >= '0' && rs[i] <= '9' {
				i++
			}
			if pass == 0 && i < len(rs) && rs[i] == '.' {
				i++
				continue
			}
			break
		}
		if i >= len(rs) {
			break
		}
		if rs[i] == '%' {
			continue
		}
		out = append(out, verbAt{verb: rs[i], flags: flags, arg: arg})
		arg++
	}
	return out
}

// opaqueAggregate reports whether %v of a value of type t dumps an
// implicit field/element set. Stringer and error implementors are
// exempt — fmt uses their methods, which are explicit contracts.
func opaqueAggregate(t types.Type) (string, bool) {
	if t == nil || hasStringContract(t) {
		return "", false
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		return "struct", true
	case *types.Map:
		return "map", true
	case *types.Interface:
		if u.NumMethods() == 0 {
			return "", false // any/error params already filtered; bare any is the caller's dynamic type, unknowable — leave to the concrete sites
		}
		return "", false
	case *types.Pointer:
		if hasStringContract(u.Elem()) {
			return "", false
		}
		if _, ok := u.Elem().Underlying().(*types.Struct); ok {
			return "struct", true
		}
	}
	return "", false
}

// hasStringContract reports whether t (or *t) has String() string or
// Error() string.
func hasStringContract(t types.Type) bool {
	for _, name := range []string{"String", "Error"} {
		obj, _, _ := types.LookupFieldOrMethod(t, true, nil, name)
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		sig := fn.Type().(*types.Signature)
		if sig.Params().Len() == 0 && sig.Results().Len() == 1 {
			if b, ok := sig.Results().At(0).Type().(*types.Basic); ok && b.Kind() == types.String {
				return true
			}
		}
	}
	return false
}
