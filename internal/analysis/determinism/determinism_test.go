package determinism_test

import (
	"testing"

	"xorbp/internal/analysis/analysistest"
	"xorbp/internal/analysis/determinism"
)

// TestWirePath pins the true positives (wall clock, math/rand, map
// order into sinks, %v struct formatting) and true negatives (explicit
// field formatting, Stringer/error rendering, sorted-key iteration,
// allowed telemetry) under a wire-path import path.
func TestWirePath(t *testing.T) {
	analysistest.Run(t, "testdata/src/wire", "xorbp/internal/wire", determinism.Analyzer)
}

// TestTelemetryScope pins the scope boundary: outside the wire-path
// packages, %v struct formatting is legal and an allowed time.Now
// produces nothing — the package must be diagnostic-free.
func TestTelemetryScope(t *testing.T) {
	analysistest.Run(t, "testdata/src/telemetry", "xorbp/internal/fake", determinism.Analyzer)
}
