// Package telemetry is determinism-analyzer testdata checked under the
// spoofed path xorbp/internal/fake — inside internal (wall-clock rule
// applies) but not on a wire path, so %v struct formatting is legal
// here. The file expects no diagnostics: the one wall-clock read
// carries a justified allow.
package telemetry

import (
	"fmt"
	"time"
)

type snapshot struct {
	Runs int
	Hits int
}

func render(s snapshot) string {
	return fmt.Sprintf("%+v", s) // not a wire path: fine
}

func stamp() time.Time {
	return time.Now() //bpvet:allow log line timestamp, never keyed or serialized
}
