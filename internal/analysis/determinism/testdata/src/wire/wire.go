// Package wire is determinism-analyzer testdata checked under the
// spoofed import path xorbp/internal/wire, so both the internal-only
// wall-clock rule and the wire-path formatting rule apply.
package wire

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

type payload struct {
	A int
	B int
}

type named struct{ id string }

func (n named) String() string { return n.id }

func badKey(p payload) string {
	return fmt.Sprintf("%+v", p) // want `formats a struct`
}

func badPtrKey(p *payload) string {
	return fmt.Sprintf("spec=%v", p) // want `formats a struct`
}

func badMapKey(m map[string]int) string {
	return fmt.Sprintf("%v", m) // want `formats a map`
}

func goodKey(p payload) string {
	return fmt.Sprintf("a=%d;b=%d", p.A, p.B)
}

func goodStringer(n named) string {
	return fmt.Sprintf("%v", n) // String() is an explicit contract
}

func goodError(err error) string {
	return fmt.Sprintf("%v", err)
}

func stamp() int64 {
	return time.Now().UnixNano() // want `time\.Now reads the wall clock`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time\.Since reads the wall clock`
}

func allowedStamp() time.Time {
	return time.Now() //bpvet:allow telemetry timestamp, never part of a result or key
}

func badRender(m map[string]int, w io.Writer) {
	for k, v := range m { // want `map iteration order is randomized`
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

func badEncode(m map[string]int, enc *json.Encoder) error {
	for k := range m { // want `map iteration order is randomized`
		if err := enc.Encode(k); err != nil {
			return err
		}
	}
	return nil
}

func goodRender(m map[string]int, w io.Writer) {
	keys := make([]string, 0, len(m))
	for k := range m { // no sink inside: collecting keys is fine
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}
