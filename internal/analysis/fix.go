package analysis

import (
	"bytes"
	"fmt"
	"os"
	"sort"
)

// ApplyFixes collects every suggested fix carried by the diagnostics and
// returns the rewritten content of each affected file (keyed by the
// path the edits name), without writing anything. Callers decide what
// to do with the result: cmd/bpvet -fix writes the files back,
// analysistest diffs them against .fixed goldens.
func ApplyFixes(diags []Diagnostic) (map[string][]byte, error) {
	perFile := make(map[string][]TextEdit)
	for _, d := range diags {
		for _, f := range d.Fixes {
			for _, e := range f.Edits {
				perFile[e.File] = append(perFile[e.File], e)
			}
		}
	}
	files := make([]string, 0, len(perFile))
	for file := range perFile {
		files = append(files, file)
	}
	sort.Strings(files)
	out := make(map[string][]byte, len(perFile))
	for _, file := range files {
		edits := perFile[file]
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, fmt.Errorf("analysis: applying fixes: %v", err)
		}
		fixed, err := ApplyEdits(src, edits)
		if err != nil {
			return nil, fmt.Errorf("analysis: applying fixes to %s: %v", file, err)
		}
		out[file] = fixed
	}
	return out, nil
}

// ApplyEdits applies the edits (all naming the same file) to src.
// Identical duplicate edits collapse; distinct overlapping edits are an
// error, because applying either would invalidate the other's offsets.
//
// Pure deletions get a small amount of cleanup: the deleted range is
// widened over the horizontal whitespace before it, and when that
// leaves the line blank the line itself is removed — so deleting a
// trailing directive comment doesn't strand a trailing space, and
// deleting a lead-form directive doesn't leave an empty line behind.
func ApplyEdits(src []byte, edits []TextEdit) ([]byte, error) {
	es := append([]TextEdit(nil), edits...)
	sort.Slice(es, func(i, j int) bool {
		if es[i].Offset != es[j].Offset {
			return es[i].Offset < es[j].Offset
		}
		return es[i].End < es[j].End
	})
	var buf bytes.Buffer
	last := 0
	for i, e := range es {
		if i > 0 && e == es[i-1] {
			continue
		}
		if e.Offset < 0 || e.End < e.Offset || e.End > len(src) {
			return nil, fmt.Errorf("edit range [%d,%d) outside file of %d bytes", e.Offset, e.End, len(src))
		}
		if e.Offset < last {
			return nil, fmt.Errorf("overlapping edits at offset %d", e.Offset)
		}
		start, end := e.Offset, e.End
		if e.NewText == "" {
			start, end = widenDeletion(src, start, end)
			if start < last {
				start = last
			}
		}
		buf.Write(src[last:start])
		buf.WriteString(e.NewText)
		last = end
	}
	buf.Write(src[last:])
	return buf.Bytes(), nil
}

// widenDeletion grows a deletion range leftward over spaces and tabs,
// then — if the deletion now spans a complete line — takes the trailing
// newline with it.
func widenDeletion(src []byte, start, end int) (int, int) {
	for start > 0 && (src[start-1] == ' ' || src[start-1] == '\t') {
		start--
	}
	atLineStart := start == 0 || src[start-1] == '\n'
	if atLineStart && end < len(src) && src[end] == '\n' {
		end++
	}
	return start, end
}
