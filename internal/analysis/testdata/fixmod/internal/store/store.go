// Package store seeds the CI -fix smoke: a nested module (invisible
// to the repo's own build and sweep) carrying exactly the violations
// `bpvet -fix` can repair — a dropped I/O error and a stale allow
// directive. The smoke job copies this module aside, asserts bpvet
// fails on it, fixes it, and asserts a second -fix changes nothing.
package store

import "os"

// Flush persists the file. The bare Sync drops its error (errcheck
// inserts `_ = `), and the directive below it suppresses nothing
// (the unused-directive ratchet deletes it).
func Flush(f *os.File) {
	f.Sync()
	f.Name() //bpvet:allow stale justification kept so -fix has a deletion to apply
}
