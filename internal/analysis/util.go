package analysis

import (
	"go/ast"
	"go/types"
)

// Unparen strips any number of enclosing parentheses.
func Unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// Callee returns the function or method statically called by call, or
// nil when the callee is dynamic (a func value, an interface method) or
// not a function at all (a conversion, a builtin).
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
		// A method-value selection through an interface receiver is
		// dynamic dispatch, not a static call.
		if sel, ok := info.Selections[fun]; ok && types.IsInterface(sel.Recv()) {
			return nil
		}
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	if fn == nil {
		return nil
	}
	if _, isSig := fn.Type().(*types.Signature); !isSig {
		return nil
	}
	return fn
}

// IsPkgCall reports whether call statically invokes pkgPath.name (a
// package-level function, e.g. "time".Now).
func IsPkgCall(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := Callee(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name &&
		fn.Type().(*types.Signature).Recv() == nil
}

// IsInterfaceCall reports whether call dispatches through an interface
// method (dynamic dispatch).
func IsInterfaceCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s, ok := info.Selections[sel]
	return ok && s.Kind() == types.MethodVal && types.IsInterface(s.Recv())
}

// FuncKey is the fact-store key for a function: "Name" for
// package-level functions, "(Recv).Name" for methods, where Recv is the
// receiver's named type (pointer stripped).
func FuncKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	if named, ok := rt.(*types.Named); ok {
		return "(" + named.Obj().Name() + ")." + fn.Name()
	}
	return fn.Name()
}

// DeclKey is FuncKey computed from a declaration's AST, matching the
// key FuncKey derives from the types.Func.
func DeclKey(info *types.Info, fd *ast.FuncDecl) string {
	if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
		return FuncKey(obj)
	}
	return fd.Name.Name
}
