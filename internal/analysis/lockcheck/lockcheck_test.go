package lockcheck_test

import (
	"testing"

	"xorbp/internal/analysis/analysistest"
	"xorbp/internal/analysis/lockcheck"
)

func TestLockcheck(t *testing.T) {
	analysistest.Run(t, "testdata/src/locks", "xorbp/internal/locks", lockcheck.Analyzer)
}

// TestLockcheckCrossPackage exercises the acquired-locks summaries
// through the fact store: the deadlock in uselock is only visible via
// liblock's published facts.
func TestLockcheckCrossPackage(t *testing.T) {
	analysistest.RunPkgs(t, []analysistest.Pkg{
		{Dir: "testdata/src/liblock", Path: "xorbp/internal/liblock"},
		{Dir: "testdata/src/uselock", Path: "xorbp/internal/uselock"},
	}, lockcheck.Analyzer)
}
