// Package lockcheck audits sync.Mutex/RWMutex/WaitGroup discipline by
// abstract interpretation over each function body: it tracks which
// locks are held (definitely, or only on some paths) at every
// statement and reports
//
//   - returning, panicking, or falling off the end of a function while
//     a lock is held with no deferred unlock registered;
//   - blocking operations — file/network I/O, channel sends and
//     receives, select, sync waits, writes through io.Writer-shaped
//     stdlib helpers, dynamic calls whose target cannot be seen — while
//     a lock is held;
//   - acquiring a second lock while one is held (lock-ordering risk),
//     and re-acquiring a lock this function already holds (deadlock);
//   - calling a function that transitively acquires a lock the caller
//     already holds (deadlock through the call graph, resolved via
//     same-package summaries and cross-package FactStore facts);
//   - copying a value containing a sync primitive;
//   - WaitGroup.Add inside the goroutine it accounts for, which races
//     the corresponding Wait.
//
// Intentional held-across-call sections — the progress write under
// Executor.pmu, the documented pmu→mu nesting — are annotated
// //bpvet:locked(<lock>) <reason>; the directive names the held lock,
// so it stops matching (and is reported stale) when the code moves.
package lockcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"xorbp/internal/analysis"
)

// Analyzer is the lockcheck entry point.
var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc:  "report lock-discipline violations: leaks on return paths, blocking calls and nested acquisitions under a held lock, lock copies, WaitGroup.Add races",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	sum := analysis.NewSummarizer(pass, "lockcheck")
	sum.Local = func(decl *ast.FuncDecl) string { return acquiredKeys(pass, sum, decl) }

	c := &ctx{pass: pass, sum: sum}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				c.fn(fd)
			}
		}
		c.copyLocks(f)
		c.goroutineAdds(f)
	}
	sum.Publish()
	return nil
}

// lock-operation classification

type opKind int

const (
	opNone   opKind = iota
	opLock          // Mutex.Lock, RWMutex.Lock
	opRLock         // RWMutex.RLock
	opUnlock        // Mutex.Unlock, RWMutex.Unlock
	opRUnlock
	opWait // WaitGroup.Wait, Cond.Wait, Once.Do — blocking sync ops
)

// lockOp classifies a call on a sync primitive, returning the receiver
// expression rendered as the lock's key ("e.mu", "s.fmu", "mu").
func lockOp(info *types.Info, call *ast.CallExpr) (key string, kind opKind) {
	sel, ok := analysis.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", opNone
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", opNone
	}
	recv := analysis.FuncKey(fn) // "(Mutex).Lock" etc.
	key = types.ExprString(sel.X)
	switch recv {
	case "(Mutex).Lock", "(RWMutex).Lock":
		return key, opLock
	case "(RWMutex).RLock":
		return key, opRLock
	case "(Mutex).Unlock", "(RWMutex).Unlock":
		return key, opUnlock
	case "(RWMutex).RUnlock":
		return key, opRUnlock
	case "(WaitGroup).Wait", "(Cond).Wait", "(Once).Do":
		return key, opWait
	}
	return "", opNone
}

// blockingFuncs classifies stdlib calls that can block for I/O or
// scheduling. "*" covers a whole package; otherwise entries are FuncKey
// forms.
var blockingFuncs = map[string]map[string]bool{
	"net":      {"*": true},
	"net/http": {"*": true},
	"os/exec":  {"*": true},
	"bufio":    {"*": true},
	"log":      {"*": true},
	"time":     {"Sleep": true},
	"os": {
		"Create": true, "Open": true, "OpenFile": true, "ReadFile": true,
		"WriteFile": true, "Remove": true, "RemoveAll": true, "Rename": true,
		"Mkdir": true, "MkdirAll": true, "ReadDir": true, "Stat": true,
		"Lstat": true, "Chmod": true, "Chtimes": true, "Truncate": true,
		"Symlink": true, "Link": true, "CreateTemp": true, "MkdirTemp": true,
		"(File).Read": true, "(File).ReadAt": true, "(File).Write": true,
		"(File).WriteAt": true, "(File).WriteString": true, "(File).Close": true,
		"(File).Sync": true, "(File).Seek": true, "(File).Readdir": true,
		"(File).ReadDir": true,
	},
	"io": {
		"Copy": true, "CopyN": true, "CopyBuffer": true, "ReadAll": true,
		"ReadFull": true, "WriteString": true,
	},
	"fmt": {
		"Fprint": true, "Fprintf": true, "Fprintln": true,
		"Print": true, "Printf": true, "Println": true,
		"Scan": true, "Scanf": true, "Scanln": true,
		"Fscan": true, "Fscanf": true, "Fscanln": true,
	},
	"encoding/json": {
		"(Encoder).Encode": true, "(Decoder).Decode": true,
		"(Decoder).More": true, "(Decoder).Token": true,
	},
}

// blockingDesc describes why a static stdlib call may block, or "".
func blockingDesc(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	set := blockingFuncs[pkg.Path()]
	if set == nil {
		return ""
	}
	if set["*"] || set[analysis.FuncKey(fn)] {
		return "calling " + pkg.Name() + "." + fn.Name() + " (may block)"
	}
	return ""
}

// abstract lock state

type lockInfo struct {
	pos      token.Pos // acquisition site
	maybe    bool      // held on some paths only
	read     bool      // RLock
	deferred bool      // a deferred unlock is registered
}

type state map[string]lockInfo

func (s state) clone() state {
	c := make(state, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// merge joins the states of two reachable paths: locks held on both
// stay definite, locks held on one become maybe-held.
func merge(a, b state) state {
	out := make(state, len(a))
	for k, va := range a {
		if vb, ok := b[k]; ok {
			va.maybe = va.maybe || vb.maybe
			va.deferred = va.deferred || vb.deferred
		} else {
			va.maybe = true
		}
		out[k] = va
	}
	for k, vb := range b {
		if _, ok := a[k]; !ok {
			vb.maybe = true
			out[k] = vb
		}
	}
	return out
}

// heldKeys returns the held lock keys in sorted order, optionally
// restricted to definitely-held ones.
func heldKeys(st state, definiteOnly bool) []string {
	var keys []string
	for k, v := range st {
		if definiteOnly && v.maybe {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

type ctx struct {
	pass *analysis.Pass
	sum  *analysis.Summarizer
}

// fn interprets one function declaration from an empty lock state.
func (c *ctx) fn(decl *ast.FuncDecl) {
	st, reachable := c.block(decl.Body.List, make(state))
	if reachable {
		for _, k := range heldKeys(st, true) {
			if info := st[k]; !info.deferred {
				c.pass.Reportf(info.pos, "%s is still held when the function returns: no unlock on the fall-through path and no deferred unlock", k)
			}
		}
	}
}

// fresh interprets a function literal as its own context: it runs on
// its own goroutine or call frame, so it inherits no lock state.
func (c *ctx) fresh(body *ast.BlockStmt) {
	c.freshWith(body, nil)
}

// freshWith interprets a function literal starting from seed — the
// lock state a deferred closure inherits for the locks it is
// responsible for releasing.
func (c *ctx) freshWith(body *ast.BlockStmt, seed state) {
	st := make(state, len(seed))
	for k, v := range seed {
		st[k] = v
	}
	st, reachable := c.block(body.List, st)
	if reachable {
		for _, k := range heldKeys(st, true) {
			if info := st[k]; !info.deferred {
				c.pass.Reportf(info.pos, "%s is still held when the function literal returns: no unlock on the fall-through path and no deferred unlock", k)
			}
		}
	}
}

// block interprets a statement list, returning the post-state and
// whether the end of the list is reachable.
func (c *ctx) block(list []ast.Stmt, st state) (state, bool) {
	for _, s := range list {
		var ok bool
		st, ok = c.stmt(s, st)
		if !ok {
			return st, false
		}
	}
	return st, true
}

func (c *ctx) stmt(s ast.Stmt, st state) (state, bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := analysis.Unparen(s.X).(*ast.CallExpr); ok {
			if id, ok := analysis.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := c.pass.Info.Uses[id].(*types.Builtin); isBuiltin {
					for _, a := range call.Args {
						c.scanExpr(a, st)
					}
					c.checkExit(call.Pos(), st, "panicking")
					return st, false
				}
			}
			return c.call(call, st, true), true
		}
		c.scanExpr(s.X, st)
		return st, true

	case *ast.DeferStmt:
		if key, kind := lockOp(c.pass.Info, s.Call); kind == opUnlock || kind == opRUnlock {
			if info, held := st[key]; held {
				info.deferred = true
				st[key] = info
			}
			return st, true
		}
		if lit, ok := analysis.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			// The closure runs at function exit holding whatever it is
			// responsible for releasing, so seed those locks into its
			// context instead of analyzing it cold — a closure that only
			// unlocks is not a stray unlock.
			seed := make(state)
			for _, k := range deferredClosureUnlocks(c.pass.Info, lit) {
				if info, held := st[k]; held {
					info.deferred = true
					st[k] = info
					seed[k] = lockInfo{pos: s.Pos()}
				}
			}
			c.freshWith(lit.Body, seed)
		}
		for _, a := range s.Call.Args {
			c.scanExpr(a, st)
		}
		return st, true

	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.scanExpr(r, st)
		}
		c.checkExit(s.Pos(), st, "returning")
		return st, false

	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.scanExpr(e, st)
		}
		for _, e := range s.Lhs {
			c.scanExpr(e, st)
		}
		return st, true

	case *ast.IfStmt:
		if s.Init != nil {
			st, _ = c.stmt(s.Init, st)
		}
		c.scanExpr(s.Cond, st)
		thenSt, thenOK := c.block(s.Body.List, st.clone())
		elseSt, elseOK := st, true
		if s.Else != nil {
			elseSt, elseOK = c.stmt(s.Else, st.clone())
		}
		switch {
		case thenOK && elseOK:
			return merge(thenSt, elseSt), true
		case thenOK:
			return thenSt, true
		case elseOK:
			return elseSt, true
		default:
			return st, false
		}

	case *ast.BlockStmt:
		return c.block(s.List, st)

	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = c.stmt(s.Init, st)
		}
		if s.Cond != nil {
			c.scanExpr(s.Cond, st)
		}
		bodySt, bodyOK := c.block(s.Body.List, st.clone())
		if s.Post != nil && bodyOK {
			bodySt, _ = c.stmt(s.Post, bodySt)
		}
		if bodyOK {
			return merge(st, bodySt), true
		}
		return st, true

	case *ast.RangeStmt:
		c.scanExpr(s.X, st)
		if t := c.pass.Info.Types[s.X].Type; t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				c.checkBlocking(s.Pos(), "receiving from a channel", st)
			}
		}
		bodySt, bodyOK := c.block(s.Body.List, st.clone())
		if bodyOK {
			return merge(st, bodySt), true
		}
		return st, true

	case *ast.SelectStmt:
		hasDefault := false
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			c.checkBlocking(s.Pos(), "blocking in select", st)
		}
		return c.clauses(s.Body.List, st, hasDefault)

	case *ast.SwitchStmt:
		if s.Init != nil {
			st, _ = c.stmt(s.Init, st)
		}
		if s.Tag != nil {
			c.scanExpr(s.Tag, st)
		}
		return c.clauses(s.Body.List, st, !hasDefaultClause(s.Body.List))

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st, _ = c.stmt(s.Init, st)
		}
		return c.clauses(s.Body.List, st, !hasDefaultClause(s.Body.List))

	case *ast.SendStmt:
		c.scanExpr(s.Chan, st)
		c.scanExpr(s.Value, st)
		c.checkBlocking(s.Pos(), "sending on a channel", st)
		return st, true

	case *ast.GoStmt:
		// The spawned call runs on another goroutine with its own lock
		// state; only its argument expressions evaluate here.
		if lit, ok := analysis.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			c.fresh(lit.Body)
		}
		for _, a := range s.Call.Args {
			c.scanExpr(a, st)
		}
		return st, true

	case *ast.BranchStmt:
		return st, s.Tok == token.FALLTHROUGH

	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, st)

	case *ast.IncDecStmt:
		c.scanExpr(s.X, st)
		return st, true

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.scanExpr(v, st)
					}
				}
			}
		}
		return st, true

	default:
		return st, true
	}
}

// hasDefaultClause reports whether a switch body contains a default
// case.
func hasDefaultClause(list []ast.Stmt) bool {
	for _, cl := range list {
		if cc, ok := cl.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// clauses interprets switch/select clause bodies, each from a copy of
// the entry state, merging the reachable exits. skipped indicates the
// construct can fall through without entering any clause (no default).
func (c *ctx) clauses(list []ast.Stmt, st state, skipped bool) (state, bool) {
	out := st
	reached := skipped
	for _, cl := range list {
		var body []ast.Stmt
		clSt := st.clone()
		switch cl := cl.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				c.scanExpr(e, clSt)
			}
			body = cl.Body
		case *ast.CommClause:
			if cl.Comm != nil {
				clSt, _ = c.stmt(cl.Comm, clSt)
			}
			body = cl.Body
		default:
			continue
		}
		exit, ok := c.block(body, clSt)
		if ok {
			if reached {
				out = merge(out, exit)
			} else {
				out = exit
			}
			reached = true
		}
	}
	return out, reached
}

// scanExpr walks an expression for blocking operations (calls, channel
// receives) and function literals. Lock-state mutations cannot occur in
// expression position (Lock returns nothing), so the state is read-only
// here.
func (c *ctx) scanExpr(e ast.Expr, st state) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.fresh(n.Body)
			return false
		case *ast.CallExpr:
			// call scans the arguments and callee base itself.
			c.call(n, st, false)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				c.checkBlocking(n.Pos(), "receiving from a channel", st)
			}
		}
		return true
	})
}

// call processes one call expression. stmtLevel is true when the call
// is its own statement, where lock-state mutations (Lock/Unlock) take
// effect; in expression position sync ops other than the blocking waits
// are ignored.
func (c *ctx) call(call *ast.CallExpr, st state, stmtLevel bool) state {
	for _, a := range call.Args {
		c.scanExpr(a, st)
	}
	switch fun := analysis.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		// Immediately-invoked literal: interpreted as a fresh context,
		// which keeps the model simple and errs toward missing, not
		// inventing, violations.
		c.fresh(fun.Body)
		return st
	case *ast.SelectorExpr:
		c.scanExpr(fun.X, st)
	case *ast.Ident:
		// nothing nested to scan
	default:
		c.scanExpr(call.Fun, st)
	}

	if key, kind := lockOp(c.pass.Info, call); kind != opNone {
		switch kind {
		case opWait:
			c.checkBlocking(call.Pos(), "calling sync."+analysis.Unparen(call.Fun).(*ast.SelectorExpr).Sel.Name+" (may block)", st)
		case opLock, opRLock:
			if !stmtLevel {
				return st
			}
			if info, held := st[key]; held && !info.maybe {
				c.pass.Reportf(call.Pos(), "%s is locked again while already held (acquired at %s): deadlock", key, c.pos(info.pos))
			} else {
				for _, h := range heldKeys(st, true) {
					if h == key {
						continue
					}
					if c.pass.Directives.LockedAt(c.pass.Fset.Position(call.Pos()), h) {
						continue
					}
					c.pass.Reportf(call.Pos(), "acquiring %s while holding %s (acquired at %s) risks deadlock by lock-order inversion; annotate //bpvet:locked(%s) <reason> if the nesting order is intentional", key, h, c.pos(st[h].pos), h)
				}
			}
			st[key] = lockInfo{pos: call.Pos(), read: kind == opRLock}
		case opUnlock, opRUnlock:
			if !stmtLevel {
				return st
			}
			if _, held := st[key]; !held {
				c.pass.Reportf(call.Pos(), "unlocking %s, which this function does not hold on any path", key)
			}
			delete(st, key)
		}
		return st
	}

	fn := analysis.Callee(c.pass.Info, call)
	if fn == nil {
		if tv, ok := c.pass.Info.Types[call.Fun]; ok && tv.IsType() {
			return st // conversion
		}
		if id, ok := analysis.Unparen(call.Fun).(*ast.Ident); ok {
			if _, isBuiltin := c.pass.Info.Uses[id].(*types.Builtin); isBuiltin {
				return st
			}
		}
		c.checkBlocking(call.Pos(), "a dynamic call (func value or interface method, may block)", st)
		return st
	}
	if desc := blockingDesc(fn); desc != "" {
		c.checkBlocking(call.Pos(), desc, st)
		return st
	}
	// Module-internal static call: consult the callee's transitive
	// acquired-locks summary for deadlock through the call graph.
	for _, k := range strings.Split(c.sum.Summary(fn), ",") {
		if k == "" {
			continue
		}
		ck := qualifyKey(callerKey(k, call), fn, c.pass.Pkg)
		if ck == "" {
			continue
		}
		if info, held := st[ck]; held && !info.maybe {
			c.pass.Reportf(call.Pos(), "calling %s, which acquires %s — already held here (acquired at %s): deadlock", analysis.FuncKey(fn), ck, c.pos(info.pos))
		}
	}
	return st
}

// checkBlocking reports desc happening while any lock is held, unless a
// //bpvet:locked directive naming the held lock covers the line.
func (c *ctx) checkBlocking(pos token.Pos, desc string, st state) {
	for _, k := range heldKeys(st, false) {
		if c.pass.Directives.LockedAt(c.pass.Fset.Position(pos), k) {
			continue
		}
		c.pass.Reportf(pos, "%s while %s is held (acquired at %s); release the lock first or annotate //bpvet:locked(%s) <reason> if holding it here is intentional", desc, k, c.pos(st[k].pos), k)
	}
}

// checkExit reports definitely-held locks without a deferred unlock at
// an explicit exit (return, panic).
func (c *ctx) checkExit(pos token.Pos, st state, how string) {
	for _, k := range heldKeys(st, true) {
		if info := st[k]; !info.deferred {
			c.pass.Reportf(pos, "%s while %s is held (acquired at %s) with no deferred unlock", how, k, c.pos(info.pos))
		}
	}
}

func (c *ctx) pos(p token.Pos) string {
	pp := c.pass.Fset.Position(p)
	return pp.Filename[strings.LastIndexByte(pp.Filename, '/')+1:] + ":" + itoa(pp.Line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// deferredClosureUnlocks returns the lock keys a deferred closure
// reliably releases: an Unlock(k) in the closure not preceded by a
// Lock(k) there (a closure that locks then unlocks nets to zero for a
// lock already held at the defer).
func deferredClosureUnlocks(info *types.Info, lit *ast.FuncLit) []string {
	locked := make(map[string]bool)
	var unlocks []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch key, kind := lockOp(info, call); kind {
		case opLock, opRLock:
			locked[key] = true
		case opUnlock, opRUnlock:
			if !locked[key] {
				unlocks = append(unlocks, key)
			}
		}
		return true
	})
	return unlocks
}

// interprocedural acquired-locks summaries

// recvName returns the receiver identifier of a method declaration.
func recvName(decl *ast.FuncDecl) string {
	if decl.Recv == nil || len(decl.Recv.List) == 0 || len(decl.Recv.List[0].Names) == 0 {
		return ""
	}
	return decl.Recv.List[0].Names[0].Name
}

// relKey rewrites a lock key on the declaration's receiver to
// receiver-relative form ("e.mu" → ".mu"), so callers can translate it
// to their own receiver expression.
func relKey(key, recv string) string {
	if recv != "" && strings.HasPrefix(key, recv+".") {
		return key[len(recv):]
	}
	return key
}

// callerKey translates a summary key into the caller's frame:
// receiver-relative keys attach to the call's receiver expression,
// absolute keys pass through. "" means untranslatable (dropped).
func callerKey(sumKey string, call *ast.CallExpr) string {
	if !strings.HasPrefix(sumKey, ".") {
		return sumKey
	}
	if sel, ok := analysis.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return types.ExprString(sel.X) + sumKey
	}
	return ""
}

// qualifyKey prefixes a callee's unqualified package-level lock key
// ("Mu") with the callee's package name when the call crosses a package
// boundary, matching how the caller's own source spells the lock
// ("liblock.Mu").
func qualifyKey(key string, fn *types.Func, caller *types.Package) string {
	if key == "" || strings.Contains(key, ".") || fn.Pkg() == nil || fn.Pkg() == caller {
		return key
	}
	return fn.Pkg().Name() + "." + key
}

// acquiredKeys is the Summarizer.Local callback: the set of lock keys
// the function (transitively) acquires, receiver-relative, sorted,
// comma-joined.
func acquiredKeys(pass *analysis.Pass, sum *analysis.Summarizer, decl *ast.FuncDecl) string {
	recv := recvName(decl)
	set := make(map[string]bool)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if key, kind := lockOp(pass.Info, call); kind == opLock || kind == opRLock {
			set[relKey(key, recv)] = true
			return true
		}
		if fn := analysis.Callee(pass.Info, call); fn != nil {
			for _, k := range strings.Split(sum.Summary(fn), ",") {
				if k == "" {
					continue
				}
				if ck := qualifyKey(callerKey(k, call), fn, pass.Pkg); ck != "" {
					set[relKey(ck, recv)] = true
				}
			}
		}
		return true
	})
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ",")
}

// structural checks (copylocks, WaitGroup.Add placement)

// lockTypeName reports the sync primitive a type contains by value, or
// "".
func lockTypeName(t types.Type) string {
	return lockIn(t, make(map[types.Type]bool))
}

func lockIn(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond":
				return "sync." + obj.Name()
			}
		}
		return lockIn(named.Underlying(), seen)
	}
	switch t := t.(type) {
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if name := lockIn(t.Field(i).Type(), seen); name != "" {
				return name
			}
		}
	case *types.Array:
		return lockIn(t.Elem(), seen)
	}
	return ""
}

// addressable reports whether copying e duplicates existing state (an
// identifier, field, element or dereference — not a fresh composite
// literal or call result).
func addressable(e ast.Expr) bool {
	switch e := analysis.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		_ = e
		return true
	}
	return false
}

// copyLocks reports by-value copies of lock-containing values in
// assignments, declarations, call arguments and range clauses.
func (c *ctx) copyLocks(f *ast.File) {
	check := func(e ast.Expr, what string) {
		if e == nil || !addressable(e) {
			return
		}
		tv, ok := c.pass.Info.Types[e]
		if !ok {
			return
		}
		if name := lockTypeName(tv.Type); name != "" {
			c.pass.Reportf(e.Pos(), "%s copies %s, which contains a %s by value; use a pointer", what, types.ExprString(e), name)
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, r := range n.Rhs {
				// Assigning to the blank identifier discards the value;
				// no second copy of the lock survives.
				if len(n.Lhs) == len(n.Rhs) {
					if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						continue
					}
				}
				check(r, "assignment")
			}
		case *ast.ValueSpec:
			for _, v := range n.Values {
				check(v, "declaration")
			}
		case *ast.CallExpr:
			if key, kind := lockOp(c.pass.Info, n); kind != opNone && key != "" {
				return true // method on the primitive itself, not a copy
			}
			if tv, ok := c.pass.Info.Types[n.Fun]; ok && tv.IsType() {
				return true // conversion, not a call
			}
			for _, a := range n.Args {
				check(a, "call argument")
			}
		case *ast.RangeStmt:
			if n.Value != nil {
				if tv, ok := c.pass.Info.Types[n.Value]; ok {
					if name := lockTypeName(tv.Type); name != "" {
						c.pass.Reportf(n.Value.Pos(), "range value copies an element containing a %s by value; iterate by index or use pointer elements", name)
					}
				}
			}
		}
		return true
	})
}

// goroutineAdds reports WaitGroup.Add calls inside the goroutine they
// account for: the spawned body may not run before Wait, so the Add
// must happen on the spawning side.
func (c *ctx) goroutineAdds(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := analysis.Unparen(g.Call.Fun).(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if inner, ok := m.(*ast.FuncLit); ok && inner != lit {
				return false
			}
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := analysis.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if fn, ok := c.pass.Info.Uses[sel.Sel].(*types.Func); ok &&
					fn.Pkg() != nil && fn.Pkg().Path() == "sync" && analysis.FuncKey(fn) == "(WaitGroup).Add" {
					c.pass.Reportf(call.Pos(), "%s.Add inside the spawned goroutine races the corresponding Wait; call Add before the go statement", types.ExprString(sel.X))
				}
			}
			return true
		})
		return true
	})
}
