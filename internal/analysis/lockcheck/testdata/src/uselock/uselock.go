// Package uselock calls into liblock while holding its lock: the
// deadlock is only visible through the cross-package summary facts.
package uselock

import "xorbp/internal/liblock"

// Reenter deadlocks: Locked acquires the mutex Reenter already holds.
func Reenter() {
	liblock.Mu.Lock()
	defer liblock.Mu.Unlock()
	liblock.Locked() // want `calling Locked, which acquires liblock\.Mu — already held`
}

// Sequential is the fixed shape: the helper runs after release.
func Sequential() {
	liblock.Mu.Lock()
	liblock.Count = 0
	liblock.Mu.Unlock()
	liblock.Locked()
}
