package locks

import "sync"

var smu sync.Mutex

// stale holds a directive the code outgrew: the critical section is
// pure arithmetic now, so the annotation suppresses nothing and the
// ratchet reports it with a deletion fix (see stale.go.fixed).
func stale() int {
	smu.Lock()
	defer smu.Unlock()
	//bpvet:locked(smu) arithmetic only, nothing blocks here // want `unused //bpvet:locked\(smu\)`
	return 1 + 2
}
