// Package locks is lockcheck testdata: one function per discipline
// rule, true positives annotated with want expectations and true
// negatives left bare.
package locks

import (
	"fmt"
	"io"
	"sync"
)

type counter struct {
	mu sync.Mutex
	n  int
}

// inc is the sanctioned shape: lock, defer unlock.
func (c *counter) inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// leak returns while holding the lock on one path.
func (c *counter) leak(v bool) int {
	c.mu.Lock()
	if v {
		return c.n // want `returning while c\.mu is held .* no deferred unlock`
	}
	c.mu.Unlock()
	return 0
}

// fallOff never unlocks on the fall-through path.
func (c *counter) fallOff() {
	c.mu.Lock() // want `c\.mu is still held when the function returns`
	c.n++
}

// dump blocks on I/O while holding the lock.
func (c *counter) dump(w io.Writer) {
	c.mu.Lock()
	fmt.Fprintf(w, "%d\n", c.n) // want `calling fmt\.Fprintf \(may block\) while c\.mu is held`
	c.mu.Unlock()
}

// dumpLocked is the same shape made intentional with a directive.
func (c *counter) dumpLocked(w io.Writer) {
	c.mu.Lock()
	fmt.Fprintf(w, "%d\n", c.n) //bpvet:locked(c.mu) the write must be atomic with the counter read
	c.mu.Unlock()
}

// double re-locks a lock the function already holds.
func (c *counter) double() {
	c.mu.Lock()
	c.mu.Lock() // want `c\.mu is locked again while already held .* deadlock`
	c.mu.Unlock()
}

// strayUnlock releases a lock this function never took.
func (c *counter) strayUnlock() {
	c.mu.Unlock() // want `unlocking c\.mu, which this function does not hold`
}

// get is a locked accessor; sum deadlocks by calling it under the same
// lock — found through the acquired-locks summary, not syntax.
func (c *counter) get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) sum() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.get() // want `calling \(counter\)\.get, which acquires c\.mu — already held`
}

type pair struct {
	a, b sync.Mutex
}

// both nests lock acquisitions without documenting the order.
func (p *pair) both() {
	p.a.Lock()
	p.b.Lock() // want `acquiring p\.b while holding p\.a .* risks deadlock`
	p.b.Unlock()
	p.a.Unlock()
}

// bothOrdered documents the nesting order with a directive.
func (p *pair) bothOrdered() {
	p.a.Lock()
	p.b.Lock() //bpvet:locked(p.a) a-then-b is the documented order everywhere in this package
	p.b.Unlock()
	p.a.Unlock()
}

// snapshot copies a value embedding a mutex.
func snapshot(c *counter) {
	v := *c // want `assignment copies \*c, which contains a sync\.Mutex by value`
	_ = v
}

// spawn accounts for the goroutine from inside it, racing Wait.
func spawn(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		go func() {
			wg.Add(1) // want `wg\.Add inside the spawned goroutine races the corresponding Wait`
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// spawnRight adds before spawning and waits without a lock held.
func spawnRight(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// manualBranches locks and unlocks correctly across branches; the
// maybe-held tracking must not report the conditional unlock.
func (c *counter) manualBranches(active bool) {
	if active {
		c.mu.Lock()
	}
	c.n++
	if active {
		c.mu.Unlock()
	}
}

// waitUnder blocks on a WaitGroup while holding a lock.
func (c *counter) waitUnder(wg *sync.WaitGroup) {
	c.mu.Lock()
	wg.Wait() // want `calling sync\.Wait \(may block\) while c\.mu is held`
	c.mu.Unlock()
}

// deferredClosure releases through a deferred closure, the serve.go
// single-flight shape: no leak on any return path.
func (c *counter) deferredClosure() int {
	c.mu.Lock()
	defer func() {
		c.n++
		c.mu.Unlock()
	}()
	return c.n
}
