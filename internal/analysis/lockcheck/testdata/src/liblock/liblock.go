// Package liblock is the dependency half of the cross-package
// lockcheck fixture: its acquired-locks summary must travel through
// the fact store to the caller package.
package liblock

import "sync"

// Mu guards Count.
var Mu sync.Mutex

// Count is the guarded state.
var Count int

// Locked bumps Count under Mu; callers must not already hold it.
func Locked() {
	Mu.Lock()
	defer Mu.Unlock()
	Count++
}
