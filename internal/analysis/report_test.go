package analysis

import (
	"bytes"
	"go/token"
	"strings"
	"testing"
)

func sampleDiags() []Diagnostic {
	// Deliberately unsorted: the report must impose its own order.
	return []Diagnostic{
		{
			Pos:      token.Position{Filename: "/mod/b/b.go", Line: 9, Column: 2},
			Analyzer: "lockcheck",
			Message:  "b finding with 100% weird\ncharacters",
		},
		{
			Pos:      token.Position{Filename: "/mod/a/a.go", Line: 3, Column: 1},
			Analyzer: "keytaint",
			Message:  "a finding",
			Fixes: []SuggestedFix{{
				Message: "delete it",
				Edits:   []TextEdit{{File: "/mod/a/a.go", Offset: 10, End: 20}},
			}},
		},
		{
			Pos:      token.Position{Filename: "/elsewhere/c.go", Line: 1, Column: 1},
			Analyzer: "keytaint",
			Message:  "outside the base dir",
		},
	}
}

func TestReportRelativizesAndSorts(t *testing.T) {
	r := NewReport(sampleDiags(), "/mod")
	if len(r.Diagnostics) != 3 {
		t.Fatalf("got %d diagnostics, want 3", len(r.Diagnostics))
	}
	gotFiles := []string{r.Diagnostics[0].File, r.Diagnostics[1].File, r.Diagnostics[2].File}
	wantFiles := []string{"/elsewhere/c.go", "a/a.go", "b/b.go"}
	for i := range wantFiles {
		if gotFiles[i] != wantFiles[i] {
			t.Errorf("diagnostic %d file = %q, want %q", i, gotFiles[i], wantFiles[i])
		}
	}
	if r.Diagnostics[1].Fixes[0].Edits[0].File != "a/a.go" {
		t.Errorf("fix edit path not relativized: %q", r.Diagnostics[1].Fixes[0].Edits[0].File)
	}
}

func TestReportJSONByteDeterministic(t *testing.T) {
	a := NewReport(sampleDiags(), "/mod").EncodeJSON()
	b := NewReport(sampleDiags(), "/mod").EncodeJSON()
	if !bytes.Equal(a, b) {
		t.Fatal("two encodings of the same diagnostics differ")
	}
	if a[len(a)-1] != '\n' {
		t.Error("encoding lacks a trailing newline")
	}
}

func TestReportRoundTripsThroughSARIF(t *testing.T) {
	r := NewReport(sampleDiags(), "/mod")
	direct := r.EncodeSARIF()

	decoded, err := DecodeReport(r.EncodeJSON())
	if err != nil {
		t.Fatalf("decoding our own JSON: %v", err)
	}
	viaJSON := decoded.EncodeSARIF()
	if !bytes.Equal(direct, viaJSON) {
		t.Errorf("SARIF from the decoded report differs from direct emission\n--- direct ---\n%s--- via JSON ---\n%s", direct, viaJSON)
	}
	if !strings.Contains(string(direct), `sarif-2.1.0.json`) {
		t.Error("SARIF output does not reference the 2.1.0 schema")
	}
}

func TestDecodeReportRejectsWrongVersion(t *testing.T) {
	if _, err := DecodeReport([]byte(`{"version": 99, "tool": "bpvet", "diagnostics": []}`)); err == nil {
		t.Fatal("decoding a version-99 report succeeded")
	}
}

func TestGitHubAnnotationsEscapeMessages(t *testing.T) {
	r := NewReport(sampleDiags(), "/mod")
	var buf bytes.Buffer
	r.WriteGitHubAnnotations(&buf)
	out := buf.String()
	if got := strings.Count(out, "::error "); got != 3 {
		t.Fatalf("got %d annotations, want 3:\n%s", got, out)
	}
	if !strings.Contains(out, "100%25 weird%0Acharacters") {
		t.Errorf("workflow-command escaping missing:\n%s", out)
	}
	if !strings.Contains(out, "file=b/b.go,line=9,col=2,title=bpvet/lockcheck::") {
		t.Errorf("annotation location fields malformed:\n%s", out)
	}
}
