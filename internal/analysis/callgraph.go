package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// This file is the framework's interprocedural layer. Analyzers that
// need to see through calls (keytaint's transitive purity, lockcheck's
// callee-acquires deadlock check) build a Summarizer: a memoized
// bottom-up walk that assigns every function a summary string, where ""
// always means "clean" and anything else is an analyzer-defined
// description of the property, typically carrying a call chain and a
// position ("readClock → time.Now (wall-clock read) at util.go:14").
//
// Cross-package reach costs nothing extra: the runner analyzes packages
// in dependency order, so when a pass asks about a callee in an import,
// that package's summaries are already published in the FactStore. Only
// non-clean summaries are stored — absence of a fact for an analyzed
// package means clean, which keeps the store proportional to the
// violations, not the tree.

// Funcs indexes a package's function declarations by their type-checker
// object, the lookup a Summarizer needs to descend into same-package
// callees.
func Funcs(pass *Pass) map[*types.Func]*ast.FuncDecl {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				decls[obj] = fd
			}
		}
	}
	return decls
}

// Summarizer computes memoized per-function summaries across the call
// graph. Construct with NewSummarizer, then set Local (and optionally
// External) before the first Summary call; Local typically re-enters
// Summary on the declaration's callees, which is what makes the result
// transitive.
type Summarizer struct {
	// Pass is the package being analyzed.
	Pass *Pass
	// Name namespaces the published facts (conventionally the analyzer
	// name).
	Name string
	// Decls indexes the pass's function declarations (from Funcs).
	Decls map[*types.Func]*ast.FuncDecl
	// Local computes the summary of one same-package declaration from
	// its body, folding in callee summaries via Summary. "" means clean.
	Local func(decl *ast.FuncDecl) string
	// External classifies a function outside the module (stdlib). Nil or
	// "" means trusted clean.
	External func(obj *types.Func) string

	// modPrefix is the module path prefix ("xorbp/") distinguishing
	// module-internal callees (fact lookups) from stdlib ones.
	modPrefix string
	memo      map[*types.Func]string
	busy      map[*types.Func]bool
}

// NewSummarizer builds a Summarizer for the pass publishing facts under
// name. The caller must set Local before use.
func NewSummarizer(pass *Pass, name string) *Summarizer {
	prefix := pass.Path
	if i := strings.IndexByte(prefix, '/'); i >= 0 {
		prefix = prefix[:i]
	}
	return &Summarizer{
		Pass:      pass,
		Name:      name,
		Decls:     Funcs(pass),
		modPrefix: prefix + "/",
		memo:      make(map[*types.Func]string),
		busy:      make(map[*types.Func]bool),
	}
}

// Summary returns obj's summary: "" for clean, else the analyzer's
// description. Same-package functions are walked (recursion is broken
// optimistically: a cycle member contributes "" to itself, so a
// recursive function's summary reflects everything but the back edge);
// module-internal imports are answered from the fact store; anything
// else is classified by External.
func (s *Summarizer) Summary(obj *types.Func) string {
	if v, ok := s.memo[obj]; ok {
		return v
	}
	if s.busy[obj] {
		return ""
	}
	pkg := obj.Pkg()
	if pkg == nil {
		// Universe-scope functions (error.Error) have no package and
		// nothing to report.
		return ""
	}
	if pkg.Path() != s.Pass.Path {
		var v string
		if strings.HasPrefix(pkg.Path(), s.modPrefix) {
			v, _ = s.Pass.Facts.Get(s.Name, pkg.Path()+"."+FuncKey(obj))
		} else if s.External != nil {
			v = s.External(obj)
		}
		s.memo[obj] = v
		return v
	}
	decl := s.Decls[obj]
	if decl == nil || decl.Body == nil {
		s.memo[obj] = ""
		return ""
	}
	s.busy[obj] = true
	v := s.Local(decl)
	delete(s.busy, obj)
	s.memo[obj] = v
	return v
}

// Publish computes every declared function's summary and records the
// non-clean ones in the fact store, making them visible to passes over
// importing packages. Call once at the end of the analyzer's Run.
func (s *Summarizer) Publish() {
	for obj := range s.Decls {
		if v := s.Summary(obj); v != "" {
			s.Pass.Facts.Set(s.Name, s.Pass.Path+"."+FuncKey(obj), v)
		}
	}
}
