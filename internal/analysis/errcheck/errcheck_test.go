package errcheck_test

import (
	"testing"

	"xorbp/internal/analysis/analysistest"
	"xorbp/internal/analysis/errcheck"
)

// TestDroppedErrors pins the true positive (a bare error-returning call
// statement) and the sanctioned forms: explicit `_ =` discard, handled
// errors, deferred cleanup, and calls without error results.
func TestDroppedErrors(t *testing.T) {
	analysistest.Run(t, "testdata/src/store", "xorbp/internal/store", errcheck.Analyzer)
}

// TestOutOfScope pins that the same code outside the I/O-bearing
// packages produces nothing.
func TestOutOfScope(t *testing.T) {
	analysistest.Run(t, "testdata/src/outofscope", "xorbp/internal/fake", errcheck.Analyzer)
}
