// Package store is errcheck-analyzer testdata, checked under the
// spoofed path xorbp/internal/store (an I/O-bearing scope).
package store

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

type file struct{ dirty bool }

func (f *file) Sync() error  { return errors.New("sync failed") }
func (f *file) Close() error { return nil }
func (f *file) touch()       { f.dirty = true }

func flush(f *file) {
	f.Sync()     // want `\(file\)\.Sync returns an error that is dropped`
	_ = f.Sync() // explicit discard is visible in review: fine
	f.touch()    // no error result: fine
	if err := f.Sync(); err != nil {
		_ = err
	}
}

func withCleanup(f *file) error {
	defer f.Close() // deferred cleanup is exempt
	return f.Sync()
}

func report(b *strings.Builder) {
	b.WriteString("ok")              // strings.Builder never fails: exempt
	fmt.Fprintf(os.Stderr, "done\n") // console diagnostics: exempt
	fmt.Fprintf(os.Stdout, "done\n") // console diagnostics: exempt
}
