// Package outofscope mirrors the store testdata's dropped error under
// a path outside the errcheck scope: no diagnostics expected.
package outofscope

import "errors"

type file struct{}

func (f *file) Sync() error { return errors.New("sync failed") }

func flush(f *file) {
	f.Sync() // outside the I/O scopes: not errcheck's business
}
