// Package errcheck implements the bpvet analyzer that forbids silently
// dropped errors on the I/O-bearing paths: the run cache, the wire
// protocol, the HTTP server, trace handling, the backing stores, and
// the driver.
//
// The rule is deliberately narrower than a full errcheck: only a call
// used as a bare expression statement is flagged, and only in the
// packages where a swallowed error corrupts persisted or transmitted
// state. Writing `_ = f()` remains legal — it is visible in review —
// and `defer f()` cleanup is exempt (the interesting error already
// happened). Two sinks are exempt because their errors are vacuous by
// contract: writers documented never to fail (strings.Builder,
// bytes.Buffer, hash.Hash) and fmt.Fprint* straight to os.Stderr or
// os.Stdout (console diagnostics — there is no one left to tell).
package errcheck

import (
	"go/ast"
	"go/types"
	"strings"

	"xorbp/internal/analysis"
)

// Analyzer is the dropped-error checker.
var Analyzer = &analysis.Analyzer{
	Name: "errcheck",
	Doc:  "forbid bare call statements that discard an error on cache/wire/serve/store I/O paths",
	Run:  run,
}

// scopedSuffixes are the packages where dropped errors poison durable
// or transmitted state.
var scopedSuffixes = []string{
	"internal/runcache",
	"internal/serve",
	"internal/wire",
	"internal/trace",
	"internal/store",
	"internal/driver",
	"internal/fleet",
}

func run(pass *analysis.Pass) error {
	inScope := false
	for _, s := range scopedSuffixes {
		if strings.HasSuffix(pass.Path, s) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := analysis.Unparen(stmt.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			if returnsError(pass.Info, call) && !exemptSink(pass.Info, call) {
				name := callName(pass.Info, call)
				// One blank per result, so the fix compiles for
				// multi-valued callees too.
				blanks := "_ = "
				if t, ok := pass.Info.Types[call].Type.(*types.Tuple); ok {
					blanks = strings.Repeat("_, ", t.Len()-1) + "_ = "
				}
				fix := analysis.SuggestedFix{
					Message: "make the discard explicit with `" + blanks + name + "(...)`",
					Edits:   []analysis.TextEdit{pass.Edit(stmt.Pos(), stmt.Pos(), blanks)},
				}
				pass.ReportFix(stmt.Pos(), fix, "%s returns an error that is dropped; handle it, or make a best-effort discard explicit with `_ = %s(...)`", name, name)
			}
			return true
		})
	}
	return nil
}

// neverFailRecv are receiver types whose Write-family methods are
// documented to always return a nil error.
var neverFailRecv = map[string]bool{
	"strings.Builder": true,
	"bytes.Buffer":    true,
	"hash.Hash":       true,
}

// exemptSink reports whether the dropped error is vacuous by contract:
// a never-fail writer method, or console output to stderr/stdout.
func exemptSink(info *types.Info, call *ast.CallExpr) bool {
	if sel, ok := analysis.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if tv, ok := info.Types[sel.X]; ok && tv.Type != nil {
			t := tv.Type
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
				if neverFailRecv[named.Obj().Pkg().Path()+"."+named.Obj().Name()] {
					return true
				}
			}
		}
	}
	if fn := analysis.Callee(info, call); fn != nil && fn.Pkg() != nil &&
		fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "Fprint") && len(call.Args) > 0 {
		if sel, ok := analysis.Unparen(call.Args[0]).(*ast.SelectorExpr); ok {
			if v, ok := info.Uses[sel.Sel].(*types.Var); ok && v.Pkg() != nil && v.Pkg().Path() == "os" &&
				(v.Name() == "Stderr" || v.Name() == "Stdout") {
				return true
			}
		}
	}
	return false
}

// returnsError reports whether any of the call's results is error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// callName renders the called function for the diagnostic.
func callName(info *types.Info, call *ast.CallExpr) string {
	if fn := analysis.Callee(info, call); fn != nil {
		return analysis.FuncKey(fn)
	}
	if sel, ok := analysis.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	if id, ok := analysis.Unparen(call.Fun).(*ast.Ident); ok {
		return id.Name
	}
	return "call"
}
