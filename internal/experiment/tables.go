package experiment

import (
	"fmt"

	"xorbp/internal/btb"
	"xorbp/internal/core"
	"xorbp/internal/cpu"
	"xorbp/internal/workload"
)

// Table2 renders the two processor configurations (the paper's Table 2),
// read back from the actual simulator configuration structs so the report
// cannot drift from the code.
func Table2() *Table {
	fpga := cpu.FPGAConfig()
	gem5 := cpu.Gem5Config(2)
	t := &Table{
		Title:  "Table 2: OoO processor core configurations",
		Header: []string{"parameter", "FPGA prototype", "gem5 simulation"},
	}
	t.AddRow("ISA (modelled)", "RISC-V", "ALPHA")
	t.AddRow("fetch width", fmt.Sprint(fpga.FetchWidth), fmt.Sprint(gem5.FetchWidth))
	t.AddRow("mispredict penalty", fmt.Sprintf("%d cycles", fpga.MispredictPenalty),
		fmt.Sprintf("%d cycles", gem5.MispredictPenalty))
	t.AddRow("BTB", btbString(fpga.BTB), btbString(gem5.BTB))
	t.AddRow("direction predictor", "TAGE 6x4096 (hist 12..130)",
		"Gshare / Tournament / LTAGE / TAGE_SC_L")
	t.AddRow("RAS", fmt.Sprintf("%d entries", fpga.RASDepth),
		fmt.Sprintf("%d entries", gem5.RASDepth))
	t.AddRow("hardware threads", fmt.Sprint(fpga.HWThreads), "2 or 4 (SMT)")
	return t
}

func btbString(c btb.Config) string {
	return fmt.Sprintf("%d x %d-way, %db tag", c.Sets, c.Ways, c.TagBits)
}

// Table3 renders the benchmark sets (the paper's Table 3) from the
// workload registry.
func Table3() *Table {
	t := &Table{
		Title:  "Table 3: benchmark sets",
		Header: []string{"test", "single-threaded core", "SMT-2"},
	}
	single := workload.SingleCorePairs()
	smt := workload.SMTPairs()
	for i := range single {
		t.AddRow(single[i].ID,
			single[i].First+"+"+single[i].Second,
			smt[i].First+"+"+smt[i].Second)
	}
	return t
}

// Table4 reproduces "The number of privilege switches per million
// cycles": single-core FPGA runs under Noisy-XOR-BP-12M. Paper: 1.6–7.0
// per Mcycle, dwarfing the ~0.08 context switches per Mcycle.
func (s *Session) Table4() *Table {
	t := &Table{
		Title:  "Table 4: privilege switches per million cycles (Noisy-XOR-BP-12M)",
		Header: []string{"case", "priv/Mcycle", "ctx/Mcycle"},
		Caption: "Paper shape: privilege switches (1.6-7.0/Mcycle) dominate\n" +
			"timer context switches by more than an order of magnitude.",
	}
	period := s.scale.TimerPeriods[2]
	// Rate estimation needs a longer window than the overhead runs: the
	// slowest syscall rates are ~1 event per Mcycle. The longer-window
	// session shares the executor, so its runs land in the same cache.
	big := s.scale
	big.MeasureInstr *= 4
	pairs := workload.SingleCorePairs()
	b := NewSessionWith(big, s.exec).batch()
	plan := make([]pending, len(pairs))
	for i, pair := range pairs {
		plan[i] = b.add(singleSpec(core.OptionsFor(core.NoisyXOR), pair, period))
	}
	b.exec()
	for i, pair := range pairs {
		r := plan[i].result()
		t.AddRow(pair.ID, fmt.Sprintf("%.1f", r.PrivPerMcycle()),
			fmt.Sprintf("%.2f", r.CtxPerMcycle()))
	}
	return t
}

// MPKI reproduces the §6.3 baseline accuracy anchor: average direction
// MPKI per predictor over the SMT-2 set without protection. Paper:
// Gshare 8.45, Tournament 5.17, LTAGE 4.10, TAGE_SC_L 3.99.
func (s *Session) MPKI() *Table {
	t := &Table{
		Title:  "Baseline MPKI per predictor (SMT-2 set)",
		Header: []string{"predictor", "MPKI"},
		Caption: "Paper anchors: Gshare 8.45, Tournament 5.17, LTAGE 4.10,\n" +
			"TAGE_SC_L 3.99 - the ordering is the load-bearing shape.",
	}
	period := s.scale.TimerPeriods[1]
	preds := PredictorNames()
	pairs := workload.SMTPairs()
	b := s.batch()
	plan := make([][]pending, len(preds))
	for i, p := range preds {
		plan[i] = make([]pending, len(pairs))
		for j, pair := range pairs {
			plan[i][j] = b.add(smt2Spec(baselineOpts(), p, pair, period))
		}
	}
	b.exec()
	for i, p := range preds {
		var misp, instr uint64
		for j := range pairs {
			r := plan[i][j].result()
			misp += r.Target.DirMisp
			instr += r.Target.Instructions
			for _, o := range r.Others {
				misp += o.DirMisp
				instr += o.Instructions
			}
		}
		t.AddRow(p, fmt.Sprintf("%.2f", float64(misp)/float64(instr)*1000))
	}
	return t
}

// BTBResidency reports per-case BTB occupancy and hit rate on the FPGA
// core, the diagnostic behind the paper's Figure 7 discussion (case6
// keeps 500-800 residual entries; libquantum reaches 99.3% BTB accuracy).
func (s *Session) BTBResidency() *Table {
	t := &Table{
		Title:  "BTB residency and hit rate per case (baseline, single core)",
		Header: []string{"case", "BTB hit rate"},
	}
	period := s.scale.TimerPeriods[1]
	pairs := workload.SingleCorePairs()
	b := s.batch()
	plan := make([]pending, len(pairs))
	for i, pair := range pairs {
		plan[i] = b.add(singleSpec(baselineOpts(), pair, period))
	}
	b.exec()
	for i, pair := range pairs {
		t.AddRow(pair.ID, fmt.Sprintf("%.1f%%", plan[i].result().BTBHitRate*100))
	}
	return t
}
