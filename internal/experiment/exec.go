package experiment

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"xorbp/internal/core"
	"xorbp/internal/cpu"
	"xorbp/internal/runcache"
	"xorbp/internal/runner"
	"xorbp/internal/wire"
)

// runKey is the comparable identity of a runSpec, used as the memo-cache
// key. Embedding core.Options and cpu.Config as struct values (rather
// than formatting them to a string, as the old fmt.Sprintf key did) means
// any field added to either type automatically becomes part of the key —
// two specs differing in a new field can never alias the same cache
// entry.
type runKey struct {
	// kind discriminates the run kinds ("" performance, "attack").
	kind string
	// opts holds the spec's options with the Codec and Scrambler
	// interface fields blanked; their identities live in codec/scrambler
	// below. Keying the interfaces by dynamic type name keeps runKey
	// usable as a map key even if a future Codec carries un-comparable
	// state (every current implementation is a stateless struct).
	opts      core.Options
	codec     string
	scrambler string
	predName  string
	cfg       cpu.Config
	timer     uint64
	// names is the software-thread list joined with NUL (workload names
	// never contain NUL); a variable-length slice cannot sit in a
	// comparable struct directly.
	names string
	scale Scale
	// atk is the attack-job payload (zero for performance runs); every
	// field is scalar, so it embeds in the comparable key directly.
	atk attackCell
}

// specKey builds the cache key for a fully-populated spec (scale set).
// Options are normalized first, so a zero Scope/Codec/Scrambler and the
// explicit paper defaults — which the controller runs identically — map
// to the same cache entry.
func specKey(s runSpec) runKey {
	o := s.opts.Normalized()
	k := runKey{
		kind:      s.kind,
		opts:      o,
		codec:     fmt.Sprintf("%T", o.Codec),
		scrambler: fmt.Sprintf("%T", o.Scrambler),
		predName:  s.predName,
		cfg:       s.cfg,
		timer:     s.timer,
		names:     strings.Join(s.names, "\x00"),
		scale:     s.scale,
		atk:       s.atk,
	}
	k.opts.Codec, k.opts.Scrambler = nil, nil
	return k
}

// Executor runs batches of simulations with a thread-safe memo cache,
// dispatching every cache miss through a pluggable Backend: the
// in-process bounded pool by default (LocalBackend), or a fleet of
// bpserve daemons (wire.Client). One Executor can back several Sessions
// (the figures sharing baselines, Table 4's longer-window session) so a
// spec simulated for one figure is never recomputed for another. An
// optional persistent store (SetStore) acts as an L2 behind the memo
// cache so results survive the process — and, shared between shards,
// acts as the merge substrate for distributed sweeps.
type Executor struct {
	workers int
	backend Backend
	// sem bounds simulations in flight across ALL concurrent RunBatch
	// calls — the worker limit is per executor, not per batch.
	sem      chan struct{}
	progress io.Writer
	pmu      sync.Mutex // serializes progress lines

	// dry marks a planner (NewPlanner): RunBatch records each batch's
	// distinct specs and returns zero results without simulating.
	dry bool

	// shardI/shardN statically partition the grid: a sharded executor
	// only simulates specs whose wire key hashes to its shard, skipping
	// the rest (SetShard).
	shardI, shardN int

	store  *runcache.Store
	record func(RunRecord)
	rmu    sync.Mutex // serializes record-hook invocations

	// journal, when set, receives every resolved (key, result) pair —
	// the crash-safe sweep WAL's feed (driver.Journal). The sink
	// serializes its own writes.
	journal JournalSink
	// primed holds results pre-resolved from a sweep journal (Prime):
	// consulted like the store, counted as replays. Written only
	// before the first batch, read-only afterward, so batches read it
	// without locking.
	primed map[string]RunResult

	// snaps backs cross-cell prefix sharing (see fork.go): misses that
	// differ only in re-key period are chained so each extends the
	// longest snapshotted shared prefix instead of re-simulating it.
	// In-memory by default; nil disables forking entirely.
	snaps *SnapStore

	mu sync.Mutex
	// err is sticky: the first backend failure poisons the executor, and
	// later batches short-circuit instead of piling more failures on a
	// dead fleet.
	err   error
	cache map[runKey]RunResult
	// inflight marks specs claimed by a running batch; a concurrent batch
	// needing the same spec waits on the channel instead of simulating it
	// a second time.
	inflight map[runKey]chan struct{}
	// planned holds every distinct spec declared (via Plan) or seen by a
	// batch, mapped to its wire key when known ("" otherwise); progress
	// lines and the ETA are computed against it, so a pre-planned session
	// reports x/total over the whole grid rather than per batch.
	planned map[runKey]string
	// warm holds planned specs that were resident in the persistent
	// store at Plan time and are not yet resolved: they will replay, not
	// simulate, so the ETA excludes them from its backlog. Keys are
	// deleted as their cells resolve — however they resolve, so a store
	// entry vanishing between Plan and RunBatch (concurrent GC,
	// corruption) cannot skew the count.
	warm map[runKey]bool
	// skipped holds the distinct specs this executor declined under its
	// shard assignment.
	skipped map[runKey]struct{}
	// replays counts persistent-store replays published by this executor.
	replays int
	// simStart/simsDone drive the ETA estimate: observed simulation
	// throughput since the first simulation began.
	simStart time.Time
	simsDone int

	runs atomic.Uint64 // simulations executed (cache misses)
}

// RunRecord describes one resolved spec: an executed simulation, or a
// result replayed from the persistent store (Cached). Within-process
// memo hits are not re-reported. Performance runs carry Cycles/MPKI;
// attack jobs carry Rate instead.
type RunRecord struct {
	Label      string  `json:"label"`
	Key        string  `json:"key"` // persistent-store key hash
	Cycles     uint64  `json:"cycles"`
	MPKI       float64 `json:"mpki"`
	Rate       float64 `json:"rate,omitempty"` // attack jobs: measured success rate
	DurationMS float64 `json:"duration_ms"`    // 0 for cached replays
	Cached     bool    `json:"cached"`
}

// recordFor assembles the RunRecord for a resolved spec of either kind.
func recordFor(s runSpec, dk string, r RunResult, durMS float64, cached bool) RunRecord {
	rec := RunRecord{
		Label:      specLabel(s),
		Key:        dk,
		DurationMS: durMS,
		Cached:     cached,
	}
	if r.Attack != nil {
		rec.Rate = r.Attack.Rate()
	} else {
		rec.Cycles = r.Cycles
		rec.MPKI = r.Target.MPKI()
	}
	return rec
}

// NewExecutor creates an executor over the in-process backend with the
// given worker-pool size. workers <= 0 selects one worker per available
// CPU.
func NewExecutor(workers int) *Executor {
	return NewExecutorWith(workers, nil)
}

// NewExecutorWith creates an executor dispatching through backend (nil
// selects the in-process LocalBackend). workers bounds specs in flight;
// for a remote backend, size it to the fleet's total capacity
// (wire.Client.Workers).
func NewExecutorWith(workers int, backend Backend) *Executor {
	if workers <= 0 {
		workers = runner.DefaultWorkers()
	}
	if backend == nil {
		backend = LocalBackend{}
	}
	return &Executor{
		workers:  workers,
		backend:  backend,
		sem:      make(chan struct{}, workers),
		cache:    make(map[runKey]RunResult),
		inflight: make(map[runKey]chan struct{}),
		planned:  make(map[runKey]string),
		warm:     make(map[runKey]bool),
		skipped:  make(map[runKey]struct{}),
		snaps:    NewSnapStore(nil),
	}
}

// NewPlanner returns a planning executor: its RunBatch records every
// distinct spec without simulating and returns zero results. Render a
// session's figures against a planner to enumerate the full grid
// cheaply (the tables produced are garbage and must be discarded), then
// declare the grid on the real executor with Plan.
func NewPlanner() *Executor {
	e := NewExecutor(1)
	e.dry = true
	return e
}

// Workers returns the worker-pool size.
func (e *Executor) Workers() int { return e.workers }

// SetProgress makes the executor emit one line per completed simulation
// to w (pass nil to disable). Lines are serialized; safe with any worker
// count.
func (e *Executor) SetProgress(w io.Writer) { e.progress = w }

// SetStore attaches a persistent result store as the L2 behind the
// in-memory memo cache: cache misses consult it before simulating, and
// every completed simulation writes through to it. Attach before the
// first batch runs.
func (e *Executor) SetStore(st *runcache.Store) { e.store = st }

// Store returns the attached persistent store (nil if none).
func (e *Executor) Store() *runcache.Store { return e.store }

// SetSnapshots replaces the divergence-snapshot store backing prefix
// sharing: attach NewSnapStore(store) to persist prefixes across
// processes, or nil to disable forking and run every cell cold. Set
// before the first batch runs.
func (e *Executor) SetSnapshots(ss *SnapStore) { e.snaps = ss }

// Snapshots returns the divergence-snapshot store (nil when forking is
// disabled).
func (e *Executor) Snapshots() *SnapStore { return e.snaps }

// JournalSink receives every resolved spec — executed, replayed from
// the store, or primed — keyed by canonical wire key. driver.Journal
// implements it as an append-only WAL so a killed sweep can resume
// simulating only the remainder. Implementations must tolerate
// duplicate keys (idempotent append) and serialize their own writes.
type JournalSink interface {
	Completed(key string, res RunResult)
}

// SetJournal attaches the sweep journal sink. Install before the first
// batch runs.
func (e *Executor) SetJournal(j JournalSink) { e.journal = j }

// Prime pre-resolves a wire key with a result replayed from a sweep
// journal: a planned cell whose wire key is primed replays instead of
// simulating, exactly like a persistent-store hit (counted as a
// replay). Call before the first batch runs — priming is not safe
// concurrently with batches.
func (e *Executor) Prime(key string, res RunResult) {
	if e.primed == nil {
		e.primed = make(map[string]RunResult)
	}
	e.primed[key] = res
}

// Primed returns how many wire keys have been pre-resolved via Prime.
func (e *Executor) Primed() int { return len(e.primed) }

// PlannedKeys returns the wire keys of every planned spec whose key is
// known (Plan records them; specs first seen by a live batch before
// planning have none yet), sorted for deterministic journaling.
func (e *Executor) PlannedKeys() []string {
	e.mu.Lock()
	keys := make([]string, 0, len(e.planned))
	for _, dk := range e.planned {
		if dk != "" {
			keys = append(keys, dk)
		}
	}
	e.mu.Unlock()
	sort.Strings(keys)
	return keys
}

// SetRecord installs a hook receiving one RunRecord per resolved spec —
// each executed simulation and each persistent-store replay.
// Invocations are serialized; install before the first batch runs.
func (e *Executor) SetRecord(fn func(RunRecord)) { e.record = fn }

// SetShard restricts the executor to shard i of n (0-based): specs whose
// wire key hashes outside the shard are skipped instead of simulated,
// and their results stay zero. Shard assignment depends only on the
// canonical wire key, so n cooperating processes partition any grid
// exactly, with no coordination beyond agreeing on n. Sharded runs are
// cache-population runs: point every shard at one store directory, then
// render with an unsharded run that replays the union. Set before the
// first batch runs.
func (e *Executor) SetShard(i, n int) {
	if n < 1 || i < 0 || i >= n {
		panic(fmt.Sprintf("experiment: invalid shard %d/%d", i, n))
	}
	e.shardI, e.shardN = i, n
}

// Shard returns the executor's shard assignment (0, 1 when unsharded).
func (e *Executor) Shard() (i, n int) {
	if e.shardN == 0 {
		return 0, 1
	}
	return e.shardI, e.shardN
}

// shardOf maps a wire key (hex SHA-256) to its owning shard by its
// leading 64 bits.
func shardOf(dk string, n int) int {
	if len(dk) < 16 {
		return 0
	}
	v, err := strconv.ParseUint(dk[:16], 16, 64)
	if err != nil {
		return 0
	}
	return int(v % uint64(n))
}

// Err returns the sticky backend error, if any batch has failed.
func (e *Executor) Err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// Plan copies the distinct specs recorded by a planning executor into
// e's planned set and returns the total now planned. Progress lines and
// the ETA are then computed over the whole declared grid instead of
// growing batch by batch. If a persistent store is attached, the
// planned keys are probed against it so the ETA's backlog counts only
// the cells that will actually simulate — on a warm cache, the ETA
// reflects the handful of new cells, not the whole grid.
func (e *Executor) Plan(planner *Executor) int {
	type pk struct {
		k  runKey
		dk string
	}
	planner.mu.Lock()
	pks := make([]pk, 0, len(planner.planned))
	for k, dk := range planner.planned {
		pks = append(pks, pk{k, dk})
	}
	planner.mu.Unlock()
	// Probe the store outside e.mu: Contains is memory-speed, but the
	// grid can be large and the store has its own lock.
	var warm []runKey
	if e.store != nil {
		for _, p := range pks {
			if p.dk != "" && e.store.Contains(p.dk) {
				warm = append(warm, p.k)
			}
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, p := range pks {
		if cur, ok := e.planned[p.k]; !ok || cur == "" {
			e.planned[p.k] = p.dk
		}
	}
	for _, k := range warm {
		// A cell resolved before Plan was called is already out of the
		// backlog; marking it warm now would undercount forever.
		if _, done := e.cache[k]; !done {
			e.warm[k] = true
		}
	}
	return len(e.planned)
}

// Planned returns the number of distinct specs declared or seen so far.
func (e *Executor) Planned() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.planned)
}

// Done returns the number of distinct specs resolved so far.
func (e *Executor) Done() int { return e.CacheSize() }

// Runs returns how many simulations have actually executed — cache hits
// and within-batch duplicates are not counted.
func (e *Executor) Runs() uint64 { return e.runs.Load() }

// Replays returns how many results were replayed from the persistent
// store.
func (e *Executor) Replays() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.replays
}

// Skipped returns how many distinct specs this executor declined under
// its shard assignment.
func (e *Executor) Skipped() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.skipped)
}

// CacheSize returns the number of distinct specs resolved so far.
func (e *Executor) CacheSize() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.cache)
}

// RunBatch resolves a batch of specs and returns their results in spec
// order. Specs already in the memo cache are served from it; remaining
// specs consult the persistent store (if attached); the rest are
// deduplicated (a spec appearing twice simulates once, including across
// concurrent batches) and fanned out across the backend, bounded by the
// worker count. Every simulation is a pure function of its spec, so the
// results — and any report rendered from them — are identical for every
// worker count and every backend.
//
// Under a shard assignment, misses owned by other shards are skipped and
// their results stay zero; after a backend failure the executor is
// poisoned (Err) and further batches return zero results immediately.
func (e *Executor) RunBatch(specs []runSpec) []RunResult {
	keys := make([]runKey, len(specs))
	for i, s := range specs {
		keys[i] = specKey(s)
	}
	if e.dry {
		// Planning: record the grid with its wire keys (the hash lets
		// Plan probe the store and shard assignments stay computable).
		e.mu.Lock()
		for i, k := range keys {
			if _, ok := e.planned[k]; !ok {
				e.planned[k] = specToWire(specs[i]).Key()
			}
		}
		e.mu.Unlock()
		return make([]RunResult, len(specs))
	}
	if e.Err() != nil {
		return make([]RunResult, len(specs))
	}

	// Plan, phase 1: collect the distinct memo-cache misses.
	type candidate struct {
		i  int
		k  runKey
		w  wire.Spec
		dk string // persistent-store key hash, computed off-lock below
		r  RunResult
		ok bool // r was replayed from the store
	}
	var cands []candidate
	seen := make(map[runKey]bool)
	e.mu.Lock()
	for i, k := range keys {
		if _, ok := e.planned[k]; !ok {
			e.planned[k] = ""
		}
		if _, hit := e.cache[k]; hit || seen[k] {
			continue
		}
		seen[k] = true
		cands = append(cands, candidate{i: i, k: k})
	}
	e.mu.Unlock()

	// Plan, phase 2: render each candidate's wire form (the backend
	// contract), hash it where needed (the hash names the run in records,
	// keys the store, and assigns shards) and consult the persistent
	// store — all outside e.mu, so neither the marshal+SHA-256 nor the
	// store's own lock extends the executor's critical section.
	hashKeys := e.store != nil || e.record != nil || e.shardN > 1 ||
		e.journal != nil || len(e.primed) > 0
	for c := range cands {
		cands[c].w = specToWire(specs[cands[c].i])
		if hashKeys {
			cands[c].dk = cands[c].w.Key()
		}
		cands[c].r, cands[c].ok = e.decodeStored(cands[c].dk)
	}

	// Plan, phase 3: publish the replays, skip cells owned by other
	// shards, and claim the rest, re-checking against batches that raced
	// ahead between the phases. Misses already claimed by a
	// concurrently-running batch are not simulated again; we wait for
	// their channels before assembling.
	type replayed struct {
		rec RunRecord
		r   RunResult
	}
	var (
		missSpecs []runSpec
		missKeys  []runKey
		missDKs   []string
		missWire  []wire.Spec
		waits     []chan struct{}
		replays   []replayed
	)
	e.mu.Lock()
	for _, c := range cands {
		if _, hit := e.cache[c.k]; hit {
			continue // a concurrent batch resolved it meanwhile
		}
		if ch, busy := e.inflight[c.k]; busy {
			waits = append(waits, ch)
			continue
		}
		if c.ok {
			e.cache[c.k] = c.r
			e.replays++
			delete(e.warm, c.k)
			replays = append(replays, replayed{recordFor(specs[c.i], c.dk, c.r, 0, true), c.r})
			continue
		}
		if e.shardN > 1 && shardOf(c.dk, e.shardN) != e.shardI {
			e.skipped[c.k] = struct{}{}
			delete(e.warm, c.k)
			continue
		}
		e.inflight[c.k] = make(chan struct{})
		missSpecs = append(missSpecs, specs[c.i])
		missKeys = append(missKeys, c.k)
		missDKs = append(missDKs, c.dk)
		missWire = append(missWire, c.w)
	}
	e.mu.Unlock()
	for _, rep := range replays {
		// Journal replays too (the sink dedups): a resumed or warm sweep
		// leaves a journal complete enough to resume from on its own,
		// whatever mix of cache, journal and simulation resolved it.
		if e.journal != nil {
			e.journal.Completed(rep.rec.Key, rep.r)
		}
		e.emit(rep.rec)
	}

	// Execute: fan the misses out across the backend as units. With the
	// in-process backend and a snapshot store, forkable misses sharing a
	// divergence prefix are chained into one unit (ascending re-key
	// period) so each member extends the longest already-snapshotted
	// prefix instead of re-simulating it; everything else dispatches one
	// spec per unit. Each simulation publishes to the cache (and writes
	// through to the store) as it completes, so concurrent batches
	// waiting on it unblock early and progress counters advance per run,
	// not per unit. Remote backends never chain: per-spec dispatch keeps
	// the wire contract unchanged, and byte-identity of forked results
	// makes the two paths interchangeable.
	type unit struct {
		idxs []int
		fork bool
	}
	var units []unit
	if _, local := e.backend.(LocalBackend); local && e.snaps != nil {
		chains, singles := forkFamilies(missSpecs)
		for _, i := range singles {
			units = append(units, unit{idxs: []int{i}})
		}
		for _, ch := range chains {
			units = append(units, unit{idxs: ch, fork: true})
		}
	} else {
		for i := range missSpecs {
			units = append(units, unit{idxs: []int{i}})
		}
	}
	runner.Map(len(units), e.workers, func(u int) struct{} {
		var (
			prefixDK string
			prior    []uint64 // divergence cycles deposited by earlier members
		)
		for _, i := range units[u].idxs {
			k := missKeys[i]
			if e.Err() != nil {
				// The fleet is already failing: release the claim so
				// waiters unblock, without piling on more doomed
				// dispatches.
				e.release(k)
				continue
			}
			e.sem <- struct{}{} // a slot is held only while simulating
			start := time.Now() //bpvet:allow progress/ETA telemetry; durations never reach results or keys
			e.noteSimStart(start)
			var (
				r   RunResult
				err error
			)
			if units[u].fork {
				// Decode through the wire form like LocalBackend does, so
				// the simulated spec is normalization-identical either way.
				var s runSpec
				if s, err = specFromWire(missWire[i]); err == nil {
					if prefixDK == "" {
						prefixDK = specToWire(prefixSpec(s)).Key()
					}
					r = runForked(s, prefixDK, prior, e.snaps)
					prior = append(prior, rekeyOf(s))
				}
			} else {
				r, err = e.backend.Run(context.Background(), missWire[i])
			}
			<-e.sem
			if err != nil {
				e.fail(fmt.Errorf("experiment: %s: %w", specLabel(missSpecs[i]), err))
				e.release(k)
				continue
			}
			e.publish(missSpecs[i], k, missDKs[i], r, start)
		}
		return struct{}{}
	})

	// Wait out any runs owned by other batches, then assemble in
	// submission order. Skipped and failed specs stay zero-valued.
	for _, ch := range waits {
		<-ch
	}
	e.mu.Lock()
	out := make([]RunResult, len(specs))
	for i, k := range keys {
		out[i] = e.cache[k]
	}
	e.mu.Unlock()
	return out
}

// publish records one completed simulation: memo cache, in-flight claim
// release, progress line, persistent store write-through, and the record
// hook.
func (e *Executor) publish(s runSpec, k runKey, dk string, r RunResult, start time.Time) {
	dur := time.Since(start) //bpvet:allow progress/ETA telemetry; durations never reach results or keys
	e.runs.Add(1)
	// pmu is taken before e.mu (the only ordering used anywhere), so
	// publishing a result and printing its progress line are atomic
	// with respect to other workers: the done/planned counters on
	// stderr are monotonic.
	if e.progress != nil {
		e.pmu.Lock()
	}
	e.mu.Lock()
	e.cache[k] = r
	close(e.inflight[k])
	delete(e.inflight, k)
	delete(e.warm, k)
	e.simsDone++
	done, planned := len(e.cache)+len(e.skipped), len(e.planned)
	eta := e.etaLocked()
	e.mu.Unlock()
	if e.progress != nil {
		//bpvet:locked(e.pmu) the progress line must be atomic with the counters read under e.mu above; pmu orders writers and is held only for one Fprintf to a local writer
		fmt.Fprintf(e.progress, "[run %d/%d] %s (%v)%s\n",
			done, planned, specLabel(s),
			dur.Round(time.Millisecond), eta)
		e.pmu.Unlock()
	}
	if e.store != nil {
		e.storePut(dk, r)
	}
	e.journalDone(dk, r)
	e.emit(recordFor(s, dk, r, float64(dur)/float64(time.Millisecond), false))
}

// journalDone forwards one completion to the journal sink, if any.
func (e *Executor) journalDone(dk string, r RunResult) {
	if e.journal != nil {
		e.journal.Completed(dk, r)
	}
}

// fail records the first backend error; the executor is poisoned from
// then on.
func (e *Executor) fail(err error) {
	e.mu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.mu.Unlock()
}

// release abandons an in-flight claim without publishing a result, so
// concurrent batches waiting on it unblock (to a zero result) instead
// of deadlocking.
func (e *Executor) release(k runKey) {
	e.mu.Lock()
	if ch, ok := e.inflight[k]; ok {
		close(ch)
		delete(e.inflight, k)
	}
	e.mu.Unlock()
}

// decodeStored consults the journal-primed results, then the
// persistent store, for a wire key. The store's content is
// memory-resident after Open, so this is a map lookup plus a decode.
// An undecodable value (which load-time validation makes unlikely) is
// treated as a miss and overwritten by the re-run.
func (e *Executor) decodeStored(dk string) (RunResult, bool) {
	if dk == "" {
		return RunResult{}, false
	}
	if r, ok := e.primed[dk]; ok {
		return r, true
	}
	if e.store == nil {
		return RunResult{}, false
	}
	raw, ok := e.store.Get(dk)
	if !ok {
		return RunResult{}, false
	}
	r, err := wire.DecodeResult(raw)
	if err != nil {
		return RunResult{}, false
	}
	return r, true
}

// storePut writes a completed simulation through to the persistent
// store in its canonical encoding — byte-identical to what a bpserve
// worker sharing the directory would write for the same spec.
// Best-effort: a failed write (full disk, read-only cache dir) only
// costs a future re-simulation, and the store counts it.
func (e *Executor) storePut(dk string, r RunResult) {
	_ = e.store.Put(dk, r.Encode())
}

// emit delivers one RunRecord to the hook, serialized.
func (e *Executor) emit(rec RunRecord) {
	if e.record == nil {
		return
	}
	e.rmu.Lock()
	e.record(rec) //bpvet:locked(e.rmu) rmu exists to serialize this hook call; the hook is caller-owned and documented to be brief and non-reentrant
	e.rmu.Unlock()
}

// noteSimStart records the first simulation's start time, the basis of
// the ETA's throughput estimate.
func (e *Executor) noteSimStart(t time.Time) {
	e.mu.Lock()
	if e.simStart.IsZero() {
		e.simStart = t
	}
	e.mu.Unlock()
}

// etaLocked estimates the time to resolve the rest of the simulatable
// backlog from the observed simulation throughput. The backlog excludes
// cells already resolved, cells skipped by the shard assignment, and
// planned cells known (at Plan time) to be store-resident — a warm run
// that only adds a few new cells gets an ETA for those cells, not a
// bogus estimate over the whole grid. Called with e.mu held; returns ""
// until there is both a backlog and a throughput sample.
func (e *Executor) etaLocked() string {
	remaining := len(e.planned) - len(e.cache) - len(e.skipped) - len(e.warm)
	if remaining <= 0 || e.simsDone == 0 || e.simStart.IsZero() {
		return ""
	}
	elapsed := time.Since(e.simStart) //bpvet:allow ETA estimation for the progress line only
	if elapsed <= 0 {
		return ""
	}
	perRun := elapsed / time.Duration(e.simsDone)
	return fmt.Sprintf(" eta %v", (perRun * time.Duration(remaining)).Round(time.Second))
}

// specLabel is the human-readable one-line description used by progress
// output.
func specLabel(s runSpec) string {
	o := s.opts.Normalized()
	if s.kind == wire.KindAttack {
		pred := s.predName
		if pred == "" {
			pred = "bimodal"
		}
		return fmt.Sprintf("attack=%s %s scope=%s sc=%s pred=%s rekey=%d trials=%d seed=%d",
			s.atk.name, o.Mechanism, o.Scope, s.atk.scenario, pred,
			s.atk.rekey, s.atk.trials, s.atk.seed)
	}
	return fmt.Sprintf("%s scope=%s pred=%s cfg=%s timer=%d threads=%s",
		o.Mechanism, o.Scope, s.predName, s.cfg.Name, s.timer,
		strings.Join(s.names, "+"))
}

// A batch is the planning half of the two-phase engine. Figure and table
// runners first declare every simulation they need with add, then call
// exec once; independent simulations — baselines for all periods, pairs
// and predictors — resolve concurrently instead of one at a time.
type batch struct {
	s     *Session
	specs []runSpec
	res   []RunResult
	done  bool
}

// batch starts an empty plan against the session's scale and executor.
func (s *Session) batch() *batch { return &batch{s: s} }

// add schedules one simulation and returns a handle whose result becomes
// available after exec.
func (b *batch) add(spec runSpec) pending {
	spec.scale = b.s.scale
	b.specs = append(b.specs, spec)
	return pending{b: b, i: len(b.specs) - 1}
}

// exec resolves every scheduled simulation through the executor.
func (b *batch) exec() {
	b.res = b.s.exec.RunBatch(b.specs)
	b.done = true
}

// oPair is a planned baseline/mechanism run pair resolving to one
// normalized overhead — the shape of nearly every figure cell.
type oPair struct{ base, mech pending }

// overheadPair schedules a baseline and a mechanism run. Cache dedup
// makes a baseline shared between several pairs free.
func (b *batch) overheadPair(base, mech runSpec) oPair {
	return oPair{base: b.add(base), mech: b.add(mech)}
}

// overhead resolves the pair to the mechanism's overhead vs its baseline.
func (p oPair) overhead() float64 {
	return Overhead(p.mech.result().Cycles, p.base.result().Cycles)
}

// pending is a handle to one scheduled simulation's future result.
type pending struct {
	b *batch
	i int
}

// result returns the resolved RunResult; it panics if the batch has not
// executed (a planning bug, not a runtime condition).
func (p pending) result() RunResult {
	if !p.b.done {
		panic("experiment: pending.result read before batch.exec")
	}
	return p.b.res[p.i]
}
