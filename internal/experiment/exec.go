package experiment

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"xorbp/internal/core"
	"xorbp/internal/cpu"
	"xorbp/internal/runner"
)

// runKey is the comparable identity of a runSpec, used as the memo-cache
// key. Embedding core.Options and cpu.Config as struct values (rather
// than formatting them to a string, as the old fmt.Sprintf key did) means
// any field added to either type automatically becomes part of the key —
// two specs differing in a new field can never alias the same cache
// entry.
type runKey struct {
	// opts holds the spec's options with the Codec and Scrambler
	// interface fields blanked; their identities live in codec/scrambler
	// below. Keying the interfaces by dynamic type name keeps runKey
	// usable as a map key even if a future Codec carries un-comparable
	// state (every current implementation is a stateless struct).
	opts      core.Options
	codec     string
	scrambler string
	predName  string
	cfg       cpu.Config
	timer     uint64
	// names is the software-thread list joined with NUL (workload names
	// never contain NUL); a variable-length slice cannot sit in a
	// comparable struct directly.
	names string
	scale Scale
}

// specKey builds the cache key for a fully-populated spec (scale set).
// Options are normalized first, so a zero Scope/Codec/Scrambler and the
// explicit paper defaults — which the controller runs identically — map
// to the same cache entry.
func specKey(s runSpec) runKey {
	o := s.opts.Normalized()
	k := runKey{
		opts:      o,
		codec:     fmt.Sprintf("%T", o.Codec),
		scrambler: fmt.Sprintf("%T", o.Scrambler),
		predName:  s.predName,
		cfg:       s.cfg,
		timer:     s.timer,
		names:     strings.Join(s.names, "\x00"),
		scale:     s.scale,
	}
	k.opts.Codec, k.opts.Scrambler = nil, nil
	return k
}

// Executor runs batches of simulations across a bounded worker pool with
// a thread-safe memo cache. One Executor can back several Sessions (the
// figures sharing baselines, Table 4's longer-window session) so a spec
// simulated for one figure is never recomputed for another.
type Executor struct {
	workers int
	// sem bounds simulations in flight across ALL concurrent RunBatch
	// calls — the worker limit is per executor, not per batch.
	sem      chan struct{}
	progress io.Writer
	pmu      sync.Mutex // serializes progress lines

	mu    sync.Mutex
	cache map[runKey]RunResult
	// inflight marks specs claimed by a running batch; a concurrent batch
	// needing the same spec waits on the channel instead of simulating it
	// a second time.
	inflight map[runKey]chan struct{}

	runs atomic.Uint64 // simulations executed (cache misses)
}

// NewExecutor creates an executor with the given worker-pool size.
// workers <= 0 selects one worker per available CPU.
func NewExecutor(workers int) *Executor {
	if workers <= 0 {
		workers = runner.DefaultWorkers()
	}
	return &Executor{
		workers:  workers,
		sem:      make(chan struct{}, workers),
		cache:    make(map[runKey]RunResult),
		inflight: make(map[runKey]chan struct{}),
	}
}

// Workers returns the worker-pool size.
func (e *Executor) Workers() int { return e.workers }

// SetProgress makes the executor emit one line per completed simulation
// to w (pass nil to disable). Lines are serialized; safe with any worker
// count.
func (e *Executor) SetProgress(w io.Writer) { e.progress = w }

// Runs returns how many simulations have actually executed — cache hits
// and within-batch duplicates are not counted.
func (e *Executor) Runs() uint64 { return e.runs.Load() }

// CacheSize returns the number of distinct specs resolved so far.
func (e *Executor) CacheSize() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.cache)
}

// RunBatch resolves a batch of specs and returns their results in spec
// order. Specs already in the cache are served from it; the remainder are
// deduplicated (a spec appearing twice simulates once, including across
// concurrent batches) and fanned out across the worker pool. Every
// simulation is a pure function of its spec, so the results — and any
// report rendered from them — are identical for every worker count.
func (e *Executor) RunBatch(specs []runSpec) []RunResult {
	keys := make([]runKey, len(specs))
	for i, s := range specs {
		keys[i] = specKey(s)
	}

	// Plan: collect the distinct cache misses. Misses already claimed by
	// a concurrently-running batch are not simulated again; we wait for
	// their channels before assembling.
	var (
		missSpecs []runSpec
		missKeys  []runKey
		waits     []chan struct{}
	)
	seen := make(map[runKey]bool)
	e.mu.Lock()
	for i, k := range keys {
		if _, hit := e.cache[k]; hit || seen[k] {
			continue
		}
		seen[k] = true
		if ch, busy := e.inflight[k]; busy {
			waits = append(waits, ch)
			continue
		}
		e.inflight[k] = make(chan struct{})
		missSpecs = append(missSpecs, specs[i])
		missKeys = append(missKeys, k)
	}
	e.mu.Unlock()

	// Execute: fan the misses out across the pool.
	total := len(missSpecs)
	var completed atomic.Uint64
	missRes := runner.Map(total, e.workers, func(i int) RunResult {
		e.sem <- struct{}{} // a slot is held only while simulating
		start := time.Now()
		r := run(missSpecs[i])
		<-e.sem
		e.runs.Add(1)
		if e.progress != nil {
			e.pmu.Lock()
			fmt.Fprintf(e.progress, "[run %d/%d] %s (%v)\n",
				completed.Add(1), total, specLabel(missSpecs[i]),
				time.Since(start).Round(time.Millisecond))
			e.pmu.Unlock()
		}
		return r
	})

	// Publish our runs, then wait out any runs owned by other batches,
	// and assemble in submission order.
	e.mu.Lock()
	for i, k := range missKeys {
		e.cache[k] = missRes[i]
		close(e.inflight[k])
		delete(e.inflight, k)
	}
	e.mu.Unlock()
	for _, ch := range waits {
		<-ch
	}
	e.mu.Lock()
	out := make([]RunResult, len(specs))
	for i, k := range keys {
		out[i] = e.cache[k]
	}
	e.mu.Unlock()
	return out
}

// specLabel is the human-readable one-line description used by progress
// output.
func specLabel(s runSpec) string {
	o := s.opts.Normalized()
	return fmt.Sprintf("%s scope=%s pred=%s cfg=%s timer=%d threads=%s",
		o.Mechanism, o.Scope, s.predName, s.cfg.Name, s.timer,
		strings.Join(s.names, "+"))
}

// A batch is the planning half of the two-phase engine. Figure and table
// runners first declare every simulation they need with add, then call
// exec once; independent simulations — baselines for all periods, pairs
// and predictors — resolve concurrently instead of one at a time.
type batch struct {
	s     *Session
	specs []runSpec
	res   []RunResult
	done  bool
}

// batch starts an empty plan against the session's scale and executor.
func (s *Session) batch() *batch { return &batch{s: s} }

// add schedules one simulation and returns a handle whose result becomes
// available after exec.
func (b *batch) add(spec runSpec) pending {
	spec.scale = b.s.scale
	b.specs = append(b.specs, spec)
	return pending{b: b, i: len(b.specs) - 1}
}

// exec resolves every scheduled simulation through the executor.
func (b *batch) exec() {
	b.res = b.s.exec.RunBatch(b.specs)
	b.done = true
}

// oPair is a planned baseline/mechanism run pair resolving to one
// normalized overhead — the shape of nearly every figure cell.
type oPair struct{ base, mech pending }

// overheadPair schedules a baseline and a mechanism run. Cache dedup
// makes a baseline shared between several pairs free.
func (b *batch) overheadPair(base, mech runSpec) oPair {
	return oPair{base: b.add(base), mech: b.add(mech)}
}

// overhead resolves the pair to the mechanism's overhead vs its baseline.
func (p oPair) overhead() float64 {
	return Overhead(p.mech.result().Cycles, p.base.result().Cycles)
}

// pending is a handle to one scheduled simulation's future result.
type pending struct {
	b *batch
	i int
}

// result returns the resolved RunResult; it panics if the batch has not
// executed (a planning bug, not a runtime condition).
func (p pending) result() RunResult {
	if !p.b.done {
		panic("experiment: pending.result read before batch.exec")
	}
	return p.b.res[p.i]
}
