package experiment

// Cross-cell prefix sharing. A re-key period sweep simulates the same
// workload under options that are identical except for RekeyPeriod — and
// a periodic re-key is provably inert before its first firing, so every
// member of such a family traces the identical trajectory up to its
// divergence cycle. Instead of re-simulating that shared prefix once per
// cell, the executor chains the family: the shortest-period member runs
// first, deposits a snapshot of the complete simulator state at the last
// cycle before its first re-key, and each later member restores the
// longest already-deposited prefix and simulates only its own tail.
//
// Correctness rests on two facts, both enforced by tests:
//
//   - The cpu snapshot seam is byte-exact: a restored core continues the
//     identical trajectory (cycle counts, stats, controller counters) as
//     the donor — verified against cpu.EngineReference.
//   - A member whose re-key period is P runs cycles 1..P-1 identically
//     to a re-key-free core: the re-key check at each fetch-group entry
//     compares c.cycle >= P and cannot fire before cycle P. The straight
//     run fires the first re-key inside the fetch group at cycle P, so
//     the divergence snapshot is taken at the cycle-(P-1) boundary and
//     the tail resumes with the rekey scheduled for cycle P.
//
// Snapshots also serialize through the schema-versioned runcache store
// (SnapStore with a disk layer), so distributed shards and warm reruns
// reuse prefixes across processes, not just within one.

import (
	"fmt"
	"sort"
	"sync"

	"xorbp/internal/core"
	"xorbp/internal/cpu"
	"xorbp/internal/runcache"
	"xorbp/internal/snap"
	"xorbp/internal/wire"
	"xorbp/internal/workload"
)

// sim lifecycle phases. A snapshot taken mid-warmup or mid-measurement
// resumes in the same phase; simDone states are never snapshotted (the
// result is already final).
const (
	simWarmup uint8 = iota
	simMeasure
	simDone
)

// sim is one performance run's lifecycle — construct, warm up, reset
// stats, measure, assemble the result — restructured from the straight-
// line run() into a resumable state machine so it can be stopped at an
// arbitrary cycle, snapshotted, and continued (possibly in a different
// process) with a byte-identical outcome.
type sim struct {
	s    runSpec
	smt  bool
	ctrl *core.Controller
	c    *cpu.Core

	phase uint8
	// ctx0/priv0/measStart anchor the measurement window: controller
	// counters and the cycle at the stats reset.
	ctx0      uint64
	priv0     uint64
	measStart uint64
}

// newSim constructs the simulator for a performance spec, exactly as
// run() does.
func newSim(s runSpec) *sim {
	ctrl := core.NewController(s.opts, s.scale.Seed)
	dir := NewDirPredictor(s.predName, ctrl)
	c := cpu.New(s.cfg, cpu.DefaultScheduler(s.timer), ctrl, dir)
	c.SetEngine(runEngine)
	var progs []workload.Program
	for i, n := range s.names {
		progs = append(progs, workload.NewGenerator(workload.MustByName(n), s.scale.Seed*1000+uint64(i)))
	}
	c.Assign(progs...)
	return &sim{s: s, smt: s.cfg.HWThreads > 1, ctrl: ctrl, c: c}
}

func (m *sim) warmupGoal() uint64 {
	if m.smt {
		return m.s.scale.SMTWarmupInstr
	}
	return m.s.scale.WarmupInstr
}

func (m *sim) measureGoal() uint64 {
	if m.smt {
		return m.s.scale.SMTMeasureInstr
	}
	return m.s.scale.MeasureInstr
}

// instr returns the current phase's progress toward its goal: retired
// target-thread instructions (single-core) or user instructions across
// all threads (SMT), both counted since the phase's stats reset.
func (m *sim) instr() uint64 {
	if m.smt {
		return m.c.UserInstructions()
	}
	return m.c.ThreadStatsOf(0, 0).Instructions
}

// runUntil advances toward the current phase goal, stopping exactly at
// cycLimit; reports whether the goal was reached.
func (m *sim) runUntil(remaining, cycLimit uint64) bool {
	if m.smt {
		_, ok := m.c.RunTotalInstructionsUntil(remaining, cycLimit)
		return ok
	}
	_, ok := m.c.RunTargetInstructionsUntil(remaining, cycLimit)
	return ok
}

// advance drives the lifecycle forward until the run is complete or the
// global cycle counter reaches cycLimit, whichever comes first; it
// reports whether the run completed. Phase transitions (the stats reset
// between warmup and measurement) happen at the exact instruction
// boundaries the straight run() uses, so a segmented run — any sequence
// of advance calls with increasing limits — is trajectory-identical to
// one advance(cpu.NoCycleLimit).
func (m *sim) advance(cycLimit uint64) bool {
	if m.phase == simWarmup {
		if cur := m.instr(); cur < m.warmupGoal() {
			if !m.runUntil(m.warmupGoal()-cur, cycLimit) {
				return false
			}
		}
		m.c.ResetStats()
		m.ctx0, m.priv0, _, _ = m.ctrl.Stats()
		m.measStart = m.c.Cycles()
		m.phase = simMeasure
	}
	if m.phase == simMeasure {
		if cur := m.instr(); cur < m.measureGoal() {
			if !m.runUntil(m.measureGoal()-cur, cycLimit) {
				return false
			}
		}
		m.phase = simDone
	}
	return true
}

// result assembles the RunResult for a completed lifecycle, identically
// to the straight run().
func (m *sim) result() RunResult {
	if m.phase != simDone {
		panic("experiment: sim.result before the lifecycle completed")
	}
	ctx1, priv1, _, _ := m.ctrl.Stats()
	var cycles uint64
	if m.smt {
		cycles = m.c.Cycles() - m.measStart
	} else {
		// Single core: measure cycles attributed to the target thread
		// (scheduler-slice quantization would dominate wall time at
		// simulation scale — see swThread.activeCycles).
		cycles = m.c.ThreadCyclesOf(0, 0)
	}
	res := RunResult{
		Cycles:       cycles,
		Target:       m.c.ThreadStatsOf(0, 0),
		PrivSwitches: priv1 - m.priv0,
		CtxSwitches:  ctx1 - m.ctx0,
		BTBHitRate:   m.c.BTBUnit().HitRate(),
	}
	if m.smt {
		for hw := 1; hw < m.s.cfg.HWThreads; hw++ {
			res.Others = append(res.Others, m.c.ThreadStatsOf(hw, 0))
		}
	} else {
		for i := 1; i < len(m.s.names); i++ {
			res.Others = append(res.Others, m.c.ThreadStatsOf(0, i))
		}
	}
	return res
}

// snapshot serializes the lifecycle state (phase and measurement-window
// anchors) followed by the complete core state.
func (m *sim) snapshot() []byte {
	w := &snap.Writer{}
	w.U8(m.phase)
	w.U64(m.ctx0)
	w.U64(m.priv0)
	w.U64(m.measStart)
	m.c.Snapshot(w)
	return w.Bytes()
}

// restore replaces the lifecycle and core state from a snapshot taken of
// a sim built from the same prefix spec. On error the sim is partially
// restored and poisoned: the caller must discard it and build a fresh
// one.
func (m *sim) restore(data []byte) error {
	r := snap.NewReader(data)
	phase := r.U8()
	if phase > simMeasure {
		r.Fail("experiment: snapshot phase %d not resumable", phase)
	}
	m.ctx0 = r.U64()
	m.priv0 = r.U64()
	m.measStart = r.U64()
	m.c.Restore(r)
	if err := r.Err(); err != nil {
		return err
	}
	if n := r.Remaining(); n != 0 {
		return fmt.Errorf("experiment: %d trailing bytes in snapshot", n)
	}
	m.phase = phase
	return nil
}

// forkable reports whether a spec can join a divergence family: a
// performance run whose normalized options carry a periodic re-key. All
// other option fields are live from cycle zero, so the re-key period is
// the only parameter that is provably inert before a known cycle.
func forkable(s runSpec) bool {
	return s.kind == "" && s.opts.Normalized().RekeyPeriod > 0
}

// rekeyOf returns a spec's normalized re-key period — the divergence
// cycle of its first re-key.
func rekeyOf(s runSpec) uint64 { return s.opts.Normalized().RekeyPeriod }

// prefixSpec strips the one diverging parameter, naming the shared
// prefix every family member traces before its own divergence cycle.
func prefixSpec(s runSpec) runSpec {
	s.opts.RekeyPeriod = 0
	return s
}

// forkFamilies partitions spec indices into fork chains — groups whose
// specs are identical up to the re-key period, ordered by ascending
// period so each member extends the longest snapshotted prefix — and
// singles that cannot fork. Chains appear in first-appearance order and
// ties break on index, so the partition is deterministic.
func forkFamilies(specs []runSpec) (chains [][]int, singles []int) {
	slot := make(map[runKey]int)
	for i, s := range specs {
		if !forkable(s) {
			singles = append(singles, i)
			continue
		}
		pk := specKey(prefixSpec(s))
		j, ok := slot[pk]
		if !ok {
			j = len(chains)
			slot[pk] = j
			chains = append(chains, nil)
		}
		chains[j] = append(chains[j], i)
	}
	for _, ch := range chains {
		sort.Slice(ch, func(a, b int) bool {
			pa, pb := rekeyOf(specs[ch[a]]), rekeyOf(specs[ch[b]])
			if pa != pb {
				return pa < pb
			}
			return ch[a] < ch[b]
		})
	}
	return chains, singles
}

// snapEpoch versions the binary snapshot layout itself, independent of
// the wire schema: bump it when the snap encoding of any component
// changes without a wire-visible field changing.
const snapEpoch = 1

// SnapSchema identifies the snapshot store encoding: the snapshot layout
// epoch plus the full wire schema. Any spec field change re-keys prefix
// identities, so stale snapshots can never be restored into a core built
// from a newer spec shape.
func SnapSchema() string {
	return fmt.Sprintf("snap/%d/%s", snapEpoch, wire.SchemaVersion())
}

// snapKey names the snapshot of a prefix's state at a divergence cycle:
// the prefix spec's canonical wire key plus the cycle, hashed under the
// snapshot schema.
func snapKey(prefixDK string, at uint64) string {
	return runcache.Key(SnapSchema(), []byte(fmt.Sprintf("%s@%d", prefixDK, at)))
}

// SnapStore holds divergence-point snapshots: an in-memory layer that
// always serves the current process's chains, over an optional runcache
// layer that shares prefixes across processes (distributed shards, warm
// reruns). Safe for concurrent use.
type SnapStore struct {
	mu   sync.Mutex
	mem  map[string][]byte
	disk *runcache.Store
}

// NewSnapStore creates a snapshot store; disk may be nil for an
// in-memory-only store.
func NewSnapStore(disk *runcache.Store) *SnapStore {
	return &SnapStore{mem: make(map[string][]byte), disk: disk}
}

// Get returns the snapshot of prefixDK's state at divergence cycle at,
// consulting memory first, then the disk layer (promoting a disk hit).
func (ss *SnapStore) Get(prefixDK string, at uint64) ([]byte, bool) {
	k := snapKey(prefixDK, at)
	ss.mu.Lock()
	v, ok := ss.mem[k]
	ss.mu.Unlock()
	if ok {
		return v, true
	}
	if ss.disk == nil {
		return nil, false
	}
	v, ok = ss.disk.GetBinary(k)
	if ok {
		ss.mu.Lock()
		ss.mem[k] = v
		ss.mu.Unlock()
	}
	return v, ok
}

// Put deposits a snapshot. The in-memory layer keeps the first deposit
// for a key (every depositor of a key writes identical bytes, so this is
// only a cheap idempotence guard); the disk write is best-effort — a
// failure costs a future re-simulation, never correctness.
func (ss *SnapStore) Put(prefixDK string, at uint64, data []byte) {
	k := snapKey(prefixDK, at)
	ss.mu.Lock()
	if _, dup := ss.mem[k]; dup {
		ss.mu.Unlock()
		return
	}
	ss.mem[k] = data
	ss.mu.Unlock()
	if ss.disk != nil {
		_ = ss.disk.PutBinary(k, data)
	}
}

// Len returns the number of snapshots resident in memory.
func (ss *SnapStore) Len() int {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return len(ss.mem)
}

// runForked executes one family member by extending the longest
// already-snapshotted prefix. prior lists divergence cycles deposited
// (or attempted) by earlier members of the chain, ascending; candidates
// above the member's own period are unusable (their prefixes have
// already re-keyed). The member probes its own divergence cycle first —
// a warm rerun restores the full prefix and simulates only the tail —
// then shorter prior cycles, then falls back to a cold start. If the
// lifecycle completes before the divergence cycle the re-key never fires
// and the result is final; otherwise the member deposits the snapshot at
// its own divergence cycle for the rest of the family before finishing
// its tail.
//
// The result is byte-identical to run(s): restoration is exact, the
// prefix cycles never observe a re-key in either path, and the tail
// resumes with the first re-key scheduled at the same cycle the straight
// run fires it.
func runForked(s runSpec, prefixDK string, prior []uint64, snaps *SnapStore) RunResult {
	p := rekeyOf(s)
	m := newSim(s)
	restoredAt := uint64(0)
	cands := append(append([]uint64(nil), prior...), p)
	for j := len(cands) - 1; j >= 0; j-- {
		q := cands[j]
		if q > p {
			continue
		}
		data, ok := snaps.Get(prefixDK, q)
		if !ok {
			continue
		}
		if m.restore(data) != nil {
			m = newSim(s) // the failed restore poisoned it
			continue
		}
		// The snapshot predates the prefix's first re-key; put this
		// member's own schedule in force over the donor's.
		m.c.ScheduleRekey(p)
		restoredAt = q
		break
	}
	switch {
	case restoredAt == p:
		// Already at the divergence boundary; only the tail remains.
	case m.advance(p - 1):
		// Completed before the divergence cycle: the re-key never fires,
		// the result is final, and there is no prefix worth depositing.
		return m.result()
	default:
		snaps.Put(prefixDK, p, m.snapshot())
	}
	m.advance(cpu.NoCycleLimit)
	return m.result()
}
