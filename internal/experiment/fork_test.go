package experiment

import (
	"bytes"
	"reflect"
	"testing"

	"xorbp/internal/core"
	"xorbp/internal/cpu"
	"xorbp/internal/runcache"
	"xorbp/internal/workload"
)

// rekeySpec builds one divergence-family member at the test scale.
func rekeySpec(period uint64, scale Scale) runSpec {
	s := singleSpec(rekeyOpts(period), workload.SingleCorePairs()[0], 300_000)
	s.scale = scale
	return s
}

// TestForkFamilies checks the family planner's invariants: the chains
// and singles partition the input exactly; only re-key-bearing
// performance specs join families; any spec field other than the re-key
// period keeps specs apart; members sort by ascending period.
func TestForkFamilies(t *testing.T) {
	scale := microScale()
	pairs := workload.SingleCorePairs()
	mk := func(period uint64, mut func(*runSpec)) runSpec {
		s := singleSpec(rekeyOpts(period), pairs[0], 300_000)
		s.scale = scale
		if mut != nil {
			mut(&s)
		}
		return s
	}
	specs := []runSpec{
		mk(4000, nil), // 0: family A
		mk(0, nil),    // 1: single (no re-key)
		mk(1000, nil), // 2: family A
		mk(1000, func(s *runSpec) { s.predName = "gshare" }), // 3: family B (non-inert param)
		mk(2000, nil), // 4: family A
		mk(2000, func(s *runSpec) { s.timer = 77_777 }), // 5: family C (non-inert param)
		mk(3000, func(s *runSpec) { // 6: single (re-key normalizes away)
			s.opts = core.OptionsFor(core.CompleteFlush)
			s.opts.RekeyPeriod = 3000
		}),
		mk(500, func(s *runSpec) { s.predName = "gshare" }), // 7: family B
	}
	chains, singles := forkFamilies(specs)

	count := make(map[int]int)
	for _, ch := range chains {
		if len(ch) == 0 {
			t.Fatal("empty chain")
		}
		for _, i := range ch {
			count[i]++
		}
		for j := 1; j < len(ch); j++ {
			if rekeyOf(specs[ch[j-1]]) >= rekeyOf(specs[ch[j]]) {
				t.Fatalf("chain not ascending by period: %v", ch)
			}
		}
	}
	for _, i := range singles {
		count[i]++
	}
	for i := range specs {
		if count[i] != 1 {
			t.Fatalf("index %d appears %d times across chains+singles", i, count[i])
		}
	}
	want := [][]int{{2, 4, 0}, {7, 3}, {5}}
	if !reflect.DeepEqual(chains, want) {
		t.Fatalf("chains = %v, want %v", chains, want)
	}
	if !reflect.DeepEqual(singles, []int{1, 6}) {
		t.Fatalf("singles = %v, want [1 6]", singles)
	}
}

// TestForkedMatchesStraight is the tentpole's correctness gate: a
// divergence family resolved through the fork path (shared prefix,
// snapshot at each divergence cycle, forked tails) must be byte-
// identical to the same specs each simulated cold — per predictor and
// per encoding mechanism, since the snapshot seam serializes each
// predictor's own tables.
func TestForkedMatchesStraight(t *testing.T) {
	scale := microScale()
	preds := []string{"tage", "gshare", "perceptron", "tournament", "ltage", "tage_sc_l"}
	mechs := []core.Mechanism{core.NoisyXOR, core.XOR}
	if testing.Short() {
		preds = []string{"tage", "tage_sc_l"}
		mechs = []core.Mechanism{core.NoisyXOR}
	}
	for _, pred := range preds {
		for _, mech := range mechs {
			var specs []runSpec
			for _, period := range []uint64{5_000, 20_000, 60_000} {
				o := core.OptionsFor(mech)
				o.RekeyPeriod = period
				s := singleSpec(o, workload.SingleCorePairs()[1], 300_000)
				s.predName = pred
				s.scale = scale
				specs = append(specs, s)
			}

			forked := NewExecutor(2)
			got := forked.RunBatch(specs)
			if forked.Snapshots().Len() == 0 {
				t.Fatalf("%s/%s: fork path deposited no snapshots", pred, mech)
			}

			straight := NewExecutor(2)
			straight.SetSnapshots(nil) // disable forking: every cell cold
			want := straight.RunBatch(specs)

			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s/%s: forked results differ from straight runs:\nforked:   %+v\nstraight: %+v",
					pred, mech, got, want)
			}
		}
	}
}

// TestForkedMatchesReferenceEngine ties the fork path to the oracle: a
// forked family under the fast engine must match the same cells run
// cold under the reference stepper.
func TestForkedMatchesReferenceEngine(t *testing.T) {
	scale := microScale()
	if testing.Short() {
		scale = quarter(scale)
	}
	specs := []runSpec{rekeySpec(8_000, scale), rekeySpec(30_000, scale)}

	forked := NewExecutor(1)
	got := forked.RunBatch(specs)

	runEngine = cpu.EngineReference
	defer func() { runEngine = cpu.EngineFast }()
	straight := NewExecutor(1)
	straight.SetSnapshots(nil)
	want := straight.RunBatch(specs)

	if !reflect.DeepEqual(got, want) {
		t.Fatalf("forked fast-engine results differ from cold reference runs:\nforked: %+v\nref:    %+v", got, want)
	}
}

// TestSimSnapshotRestoreByteStable: restoring a mid-run snapshot into a
// fresh sim and re-snapshotting must reproduce the donor bytes exactly
// (so deposited prefixes are stable however many times they are
// re-derived), and the restored sim must finish with the donor's result.
func TestSimSnapshotRestoreByteStable(t *testing.T) {
	spec := rekeySpec(40_000, microScale())
	donor := newSim(spec)
	if donor.advance(10_000) {
		t.Fatal("sim completed before the snapshot point; scale too small")
	}
	data := donor.snapshot()

	clone := newSim(spec)
	if err := clone.restore(data); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if again := clone.snapshot(); !bytes.Equal(again, data) {
		t.Fatal("restored sim re-snapshots differently from the donor bytes")
	}
	donor.advance(cpu.NoCycleLimit)
	clone.advance(cpu.NoCycleLimit)
	if dr, cr := donor.result(), clone.result(); !reflect.DeepEqual(dr, cr) {
		t.Fatalf("restored sim result differs:\ndonor: %+v\nclone: %+v", dr, cr)
	}
}

// TestSnapStoreDiskLayer: snapshots deposited through a disk-backed
// SnapStore must be restorable by a second process (modeled as a fresh
// SnapStore over the same runcache directory), and a fresh executor
// reusing those prefixes must produce byte-identical results — the
// distributed / warm-rerun path.
func TestSnapStoreDiskLayer(t *testing.T) {
	dir := t.TempDir()
	open := func() *runcache.Store {
		st, err := runcache.Open(dir, SnapSchema())
		if err != nil {
			t.Fatalf("open snap store: %v", err)
		}
		return st
	}
	specs := []runSpec{rekeySpec(8_000, microScale()), rekeySpec(30_000, microScale())}

	first := NewExecutor(1)
	first.SetSnapshots(NewSnapStore(open()))
	want := first.RunBatch(specs)
	if first.Snapshots().Len() == 0 {
		t.Fatal("no snapshots deposited")
	}

	second := NewExecutor(1)
	disk := open()
	second.SetSnapshots(NewSnapStore(disk))
	got := second.RunBatch(specs)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("second process produced different results:\nfirst:  %+v\nsecond: %+v", want, got)
	}
	if disk.Stats().Hits == 0 {
		t.Fatal("second process never restored a prefix from disk")
	}
}

// TestRekeySweepDeterministicAcrossWorkers: the forked sweep rendered
// serially and with a worker pool must be byte-identical (the fork
// chains schedule deterministically regardless of concurrency).
func TestRekeySweepDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	scale := microScale()
	serial := NewSessionWith(scale, NewExecutor(1)).RekeySweep().Render()
	parallel := NewSessionWith(scale, NewExecutor(8)).RekeySweep().Render()
	if serial != parallel {
		t.Fatalf("parallel RekeySweep differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}

// TestForkSavesWork: the chain must simulate strictly fewer cycles than
// cold runs — observable as the later family members starting from a
// restored prefix. We assert through the snapshot store: one deposit
// per member (each extends the prefix for the next), and a rerun of the
// same batch is served from the memo cache without new simulations.
func TestForkSavesWork(t *testing.T) {
	specs := []runSpec{
		rekeySpec(8_000, microScale()),
		rekeySpec(16_000, microScale()),
		rekeySpec(24_000, microScale()),
	}
	e := NewExecutor(1)
	e.RunBatch(specs)
	if got, want := e.Runs(), uint64(3); got != want {
		t.Fatalf("simulated %d runs, want %d", got, want)
	}
	if got := e.Snapshots().Len(); got != 3 {
		t.Fatalf("deposited %d snapshots, want 3 (one per member)", got)
	}
	e.RunBatch(specs)
	if got := e.Runs(); got != 3 {
		t.Fatalf("rerun simulated again: %d total runs", got)
	}
}

// TestMeasureForkBench pins the bpbench fork section's correctness
// half: the forked sweep must reproduce the straight runs exactly and
// must beat their wall-clock (the committed <MaxForkRatio ratio gate is
// enforced by bpbench -check at bench scale, where fixed per-member
// costs amortize).
func TestMeasureForkBench(t *testing.T) {
	fb := MeasureForkBench(microScale())
	if len(fb.Periods) != 8 {
		t.Fatalf("fork bench measured %d periods, want 8", len(fb.Periods))
	}
	if !fb.Match {
		t.Fatal("forked sweep results diverge from straight runs")
	}
	if fb.SpeedupVsStraight <= 1 {
		t.Fatalf("forked sweep slower than straight re-simulation: %.2fx", fb.SpeedupVsStraight)
	}
}

// FuzzSnapshotDecode: sim.restore on arbitrary bytes must never panic —
// corrupt, truncated or hostile snapshots fail through the reader's
// error (and are then discarded by the fork path), exactly like corrupt
// runcache entries are quarantined rather than trusted.
func FuzzSnapshotDecode(f *testing.F) {
	spec := rekeySpec(10_000, quarter(microScale()))
	donor := newSim(spec)
	donor.advance(2_000)
	valid := donor.snapshot()
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:len(valid)/2])
	mut := append([]byte(nil), valid...)
	mut[0] ^= 0xff
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		m := newSim(spec)
		if err := m.restore(data); err != nil {
			return // rejected: exactly the quarantine contract
		}
		// An accepted snapshot must leave a runnable sim: advance a
		// bounded slice and assemble a result if it completes.
		if m.advance(m.c.Cycles() + 50_000) {
			_ = m.result()
		}
	})
}
