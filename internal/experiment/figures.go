package experiment

import (
	"fmt"

	"xorbp/internal/core"
	"xorbp/internal/cpu"
	"xorbp/internal/workload"
)

// Session memoizes simulation runs so figures sharing baselines (7/8/9)
// do not recompute them.
type Session struct {
	scale Scale
	cache map[string]RunResult
}

// NewSession creates a session at the given scale.
func NewSession(scale Scale) *Session {
	return &Session{scale: scale, cache: make(map[string]RunResult)}
}

// Scale returns the session's scale.
func (s *Session) Scale() Scale { return s.scale }

func (s *Session) run(spec runSpec) RunResult {
	spec.scale = s.scale
	key := fmt.Sprintf("%+v|%s|%s|%d|%v|%d", spec.opts, spec.predName,
		spec.cfg.Name, spec.cfg.HWThreads, spec.names, spec.timer)
	if r, ok := s.cache[key]; ok {
		return r
	}
	r := run(spec)
	s.cache[key] = r
	return r
}

// baselineOpts is the unprotected configuration.
func baselineOpts() core.Options { return core.OptionsFor(core.Baseline) }

// figure1CF is Complete Flush as evaluated in Figure 1: flushed only at
// the periodic timer switch, not on syscalls.
func figure1CF() core.Options {
	o := core.OptionsFor(core.CompleteFlush)
	o.FlushOnPrivilege = false
	return o
}

// scopedOpts returns an encoding mechanism limited to a structure set.
func scopedOpts(m core.Mechanism, scope core.Structure) core.Options {
	o := core.OptionsFor(m)
	o.Scope = scope
	return o
}

// singleSpec builds an FPGA single-core run over a Table 3 pair.
func singleSpec(opts core.Options, pair workload.Pair, timer uint64) runSpec {
	return runSpec{
		opts:     opts,
		predName: "tage",
		cfg:      cpu.FPGAConfig(),
		timer:    timer,
		names:    []string{pair.First, pair.Second},
	}
}

// smt2Spec builds a gem5 SMT-2 run.
func smt2Spec(opts core.Options, predName string, pair workload.Pair, timer uint64) runSpec {
	return runSpec{
		opts:     opts,
		predName: predName,
		cfg:      cpu.Gem5Config(2),
		timer:    timer,
		names:    []string{pair.First, pair.Second},
	}
}

// smt4Spec builds a gem5 SMT-4 run.
func smt4Spec(opts core.Options, predName string, quad workload.Quad, timer uint64) runSpec {
	return runSpec{
		opts:     opts,
		predName: predName,
		cfg:      cpu.Gem5Config(4),
		timer:    timer,
		names:    quad.Names[:],
	}
}

// Figure1 reproduces "Performance overhead of flushing branch predictor
// on single-threaded processor" — Complete Flush at the three timer
// periods, averaged over the 12 single-core cases. Paper: all bars below
// ~1%, decreasing with the period.
func (s *Session) Figure1() *Table {
	t := &Table{
		Title:  "Figure 1: Complete Flush overhead, single-threaded core",
		Header: []string{"case", "flush-4M", "flush-8M", "flush-12M"},
		Caption: "Normalized performance overhead vs baseline (no isolation).\n" +
			"Paper shape: average < 1%, shrinking as the flush period grows.",
	}
	var avg [3][]float64
	for _, pair := range workload.SingleCorePairs() {
		row := []string{pair.ID}
		for i, period := range s.scale.TimerPeriods {
			base := s.run(singleSpec(baselineOpts(), pair, period))
			cf := s.run(singleSpec(figure1CF(), pair, period))
			ov := Overhead(cf.Cycles, base.Cycles)
			avg[i] = append(avg[i], ov)
			row = append(row, pct(ov))
		}
		t.AddRow(row...)
	}
	t.AddRow("average", pct(mean(avg[0])), pct(mean(avg[1])), pct(mean(avg[2])))
	return t
}

// Figure2 reproduces "Performance overhead of flushing branch history on
// an SMT core": Complete Flush (context + privilege switches) on SMT-2
// and SMT-4. Paper shape: far worse than Figure 1; SMT-4 worse than
// SMT-2.
func (s *Session) Figure2() *Table {
	t := &Table{
		Title:  "Figure 2: Complete Flush overhead on an SMT core",
		Header: []string{"config", "overhead"},
		Caption: "LTAGE predictor, flush on context and privilege switches.\n" +
			"Paper shape: several percent on SMT-2, higher on SMT-4.",
	}
	period := s.scale.TimerPeriods[1]
	var smt2 []float64
	for _, pair := range workload.SMTPairs() {
		base := s.run(smt2Spec(baselineOpts(), "ltage", pair, period))
		cf := s.run(smt2Spec(core.OptionsFor(core.CompleteFlush), "ltage", pair, period))
		smt2 = append(smt2, Overhead(cf.Cycles, base.Cycles))
	}
	var smt4 []float64
	for _, quad := range workload.SMTQuads() {
		base := s.run(smt4Spec(baselineOpts(), "ltage", quad, period))
		cf := s.run(smt4Spec(core.OptionsFor(core.CompleteFlush), "ltage", quad, period))
		smt4 = append(smt4, Overhead(cf.Cycles, base.Cycles))
	}
	t.AddRow("SMT-2", pct(mean(smt2)))
	t.AddRow("SMT-4", pct(mean(smt4)))
	return t
}

// Figure3 reproduces "Comparison between Complete Flush and Precise Flush
// in SMT-2". Paper shape: Precise Flush lower but still elevated.
func (s *Session) Figure3() *Table {
	t := &Table{
		Title:  "Figure 3: Complete vs Precise Flush, SMT-2",
		Header: []string{"case", "CompleteFlush", "PreciseFlush"},
		Caption: "LTAGE predictor. Paper shape: PF < CF, both well above\n" +
			"the single-threaded core's cost.",
	}
	period := s.scale.TimerPeriods[1]
	var cfAll, pfAll []float64
	for _, pair := range workload.SMTPairs() {
		base := s.run(smt2Spec(baselineOpts(), "ltage", pair, period))
		cf := s.run(smt2Spec(core.OptionsFor(core.CompleteFlush), "ltage", pair, period))
		pf := s.run(smt2Spec(core.OptionsFor(core.PreciseFlush), "ltage", pair, period))
		co := Overhead(cf.Cycles, base.Cycles)
		po := Overhead(pf.Cycles, base.Cycles)
		cfAll = append(cfAll, co)
		pfAll = append(pfAll, po)
		t.AddRow(pair.ID, pct(co), pct(po))
	}
	t.AddRow("average", pct(mean(cfAll)), pct(mean(pfAll)))
	return t
}

// figureScoped runs the Figure 7/8/9 family: XOR and Noisy-XOR limited to
// a structure scope on the FPGA core, per case and timer period.
func (s *Session) figureScoped(title string, scope core.Structure, shape string) *Table {
	label := scope.String()
	t := &Table{
		Title: title,
		Header: []string{"case",
			"XOR-" + label + "-4M", "XOR-" + label + "-8M", "XOR-" + label + "-12M",
			"Noisy-XOR-" + label + "-4M", "Noisy-XOR-" + label + "-8M", "Noisy-XOR-" + label + "-12M"},
		Caption: shape,
	}
	var avgs [6][]float64
	for _, pair := range workload.SingleCorePairs() {
		row := []string{pair.ID}
		col := 0
		for _, mech := range []core.Mechanism{core.XOR, core.NoisyXOR} {
			for _, period := range s.scale.TimerPeriods {
				base := s.run(singleSpec(baselineOpts(), pair, period))
				m := s.run(singleSpec(scopedOpts(mech, scope), pair, period))
				ov := Overhead(m.Cycles, base.Cycles)
				avgs[col] = append(avgs[col], ov)
				row = append(row, pct(ov))
				col++
			}
		}
		t.AddRow(row...)
	}
	avgRow := []string{"average"}
	for col := 0; col < 6; col++ {
		avgRow = append(avgRow, pct(mean(avgs[col])))
	}
	t.AddRow(avgRow...)
	return t
}

// Figure7 reproduces "Performance overhead of XOR-BTB and Noisy-XOR-BTB".
// Paper shape: average < 0.2%, worst ≈ 1% (case6), case2 slightly
// negative.
func (s *Session) Figure7() *Table {
	return s.figureScoped(
		"Figure 7: XOR-BTB / Noisy-XOR-BTB overhead (single-threaded core)",
		core.StructBTB,
		"Paper shape: average < 0.2%; case6 worst (~1%); case2 can go negative\n"+
			"(BTB loss overturns wrong direction predictions via fall-through).")
}

// Figure8 reproduces "Performance overhead of XOR-PHT and Noisy-XOR-PHT".
// Paper shape: average < 1.1%, case1 worst (~2.5%), decreasing slightly
// with longer switch periods.
func (s *Session) Figure8() *Table {
	return s.figureScoped(
		"Figure 8: XOR-PHT / Noisy-XOR-PHT overhead (single-threaded core)",
		core.StructPHT,
		"Paper shape: average < 1.1%; case1 worst (~2.5%).")
}

// Figure9 reproduces "Performance overhead of XOR-BP and Noisy-XOR-BP"
// (both structures protected). Paper shape: average < 1.3%, worst ≈ 2.5%
// (case1), largely insensitive to the timer period because privilege
// switches dominate (Table 4).
func (s *Session) Figure9() *Table {
	return s.figureScoped(
		"Figure 9: XOR-BP / Noisy-XOR-BP overhead (single-threaded core)",
		core.StructAll,
		"Paper shape: average < 1.3%; worst ~2.5% (case1); flat across timer\n"+
			"periods because privilege switches dominate key rotations.")
}

// Figure10 reproduces "Performance cost of three isolation mechanisms on
// four different predictors on an SMT core". Paper shape: Noisy-XOR-BP
// beats both flushes (26–37% lower loss than CF on average); more
// accurate predictors pay more on average (2.3% → 4.9%).
func (s *Session) Figure10() *Table {
	preds := PredictorNames()
	header := []string{"case"}
	for _, p := range preds {
		header = append(header, p+"-CF", p+"-PF", p+"-NXOR")
	}
	t := &Table{
		Title:  "Figure 10: isolation mechanisms x predictors, SMT-2",
		Header: header,
		Caption: "Overhead vs the same predictor without protection.\n" +
			"Paper shape: NXOR < PF < CF on average; cost grows with\n" +
			"predictor accuracy (gshare -> tage_sc_l).",
	}
	period := s.scale.TimerPeriods[1]
	sums := make(map[string][]float64)
	for _, pair := range workload.SMTPairs() {
		row := []string{pair.ID}
		for _, p := range preds {
			base := s.run(smt2Spec(baselineOpts(), p, pair, period))
			for _, mech := range []core.Mechanism{core.CompleteFlush, core.PreciseFlush, core.NoisyXOR} {
				m := s.run(smt2Spec(core.OptionsFor(mech), p, pair, period))
				ov := Overhead(m.Cycles, base.Cycles)
				key := p + "-" + mech.String()
				sums[key] = append(sums[key], ov)
				row = append(row, pct(ov))
			}
		}
		t.AddRow(row...)
	}
	avgRow := []string{"average"}
	for _, p := range preds {
		for _, mech := range []core.Mechanism{core.CompleteFlush, core.PreciseFlush, core.NoisyXOR} {
			avgRow = append(avgRow, pct(mean(sums[p+"-"+mech.String()])))
		}
	}
	t.AddRow(avgRow...)
	return t
}
