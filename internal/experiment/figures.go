package experiment

import (
	"xorbp/internal/core"
	"xorbp/internal/cpu"
	"xorbp/internal/workload"
)

// Session renders figures and tables at one scale against a shared
// Executor, so figures sharing baselines (7/8/9) do not recompute them.
// Every runner follows the engine's two-phase style: plan the full set of
// simulations a figure needs into a batch, execute the batch (cache-
// deduplicated, fanned across the worker pool), then render rows from the
// resolved results.
type Session struct {
	scale Scale
	exec  *Executor
}

// NewSession creates a session at the given scale with its own executor
// sized to the available CPUs.
func NewSession(scale Scale) *Session {
	return NewSessionWith(scale, NewExecutor(0))
}

// NewSessionWith creates a session backed by an existing executor.
// Sessions sharing an executor share its memo cache: a spec simulated for
// one session is served from cache for every other.
func NewSessionWith(scale Scale, exec *Executor) *Session {
	return &Session{scale: scale, exec: exec}
}

// Scale returns the session's scale.
func (s *Session) Scale() Scale { return s.scale }

// Executor returns the session's run engine.
func (s *Session) Executor() *Executor { return s.exec }

// run resolves a single spec immediately — the one-off convenience path;
// figure runners plan batches instead.
func (s *Session) run(spec runSpec) RunResult {
	spec.scale = s.scale
	return s.exec.RunBatch([]runSpec{spec})[0]
}

// SingleCoreOverhead measures the overhead of opts relative to the
// unprotected baseline for one Table 3 pair on the FPGA single core —
// the engine-cached entry point for one-off comparisons (ablations,
// exploratory sweeps). Both runs resolve through the session's executor,
// so repeated calls share the baseline.
func (s *Session) SingleCoreOverhead(opts core.Options, pair workload.Pair, timer uint64) float64 {
	b := s.batch()
	p := b.overheadPair(singleSpec(baselineOpts(), pair, timer), singleSpec(opts, pair, timer))
	b.exec()
	return p.overhead()
}

// baselineOpts is the unprotected configuration.
func baselineOpts() core.Options { return core.OptionsFor(core.Baseline) }

// figure1CF is Complete Flush as evaluated in Figure 1: flushed only at
// the periodic timer switch, not on syscalls.
func figure1CF() core.Options {
	o := core.OptionsFor(core.CompleteFlush)
	o.FlushOnPrivilege = false
	return o
}

// scopedOpts returns an encoding mechanism limited to a structure set.
func scopedOpts(m core.Mechanism, scope core.Structure) core.Options {
	o := core.OptionsFor(m)
	o.Scope = scope
	return o
}

// singleSpec builds an FPGA single-core run over a Table 3 pair.
func singleSpec(opts core.Options, pair workload.Pair, timer uint64) runSpec {
	return runSpec{
		opts:     opts,
		predName: "tage",
		cfg:      cpu.FPGAConfig(),
		timer:    timer,
		names:    []string{pair.First, pair.Second},
	}
}

// smt2Spec builds a gem5 SMT-2 run.
func smt2Spec(opts core.Options, predName string, pair workload.Pair, timer uint64) runSpec {
	return runSpec{
		opts:     opts,
		predName: predName,
		cfg:      cpu.Gem5Config(2),
		timer:    timer,
		names:    []string{pair.First, pair.Second},
	}
}

// smt4Spec builds a gem5 SMT-4 run.
func smt4Spec(opts core.Options, predName string, quad workload.Quad, timer uint64) runSpec {
	return runSpec{
		opts:     opts,
		predName: predName,
		cfg:      cpu.Gem5Config(4),
		timer:    timer,
		names:    quad.Names[:],
	}
}

// Figure1 reproduces "Performance overhead of flushing branch predictor
// on single-threaded processor" — Complete Flush at the three timer
// periods, averaged over the 12 single-core cases. Paper: all bars below
// ~1%, decreasing with the period.
func (s *Session) Figure1() *Table {
	t := &Table{
		Title:  "Figure 1: Complete Flush overhead, single-threaded core",
		Header: []string{"case", "flush-4M", "flush-8M", "flush-12M"},
		Caption: "Normalized performance overhead vs baseline (no isolation).\n" +
			"Paper shape: average < 1%, shrinking as the flush period grows.",
	}
	pairs := workload.SingleCorePairs()
	b := s.batch()
	plan := make([][3]oPair, len(pairs))
	for pi, pair := range pairs {
		for i, period := range s.scale.TimerPeriods {
			plan[pi][i] = b.overheadPair(
				singleSpec(baselineOpts(), pair, period),
				singleSpec(figure1CF(), pair, period))
		}
	}
	b.exec()

	var avg [3][]float64
	for pi, pair := range pairs {
		row := []string{pair.ID}
		for i := range s.scale.TimerPeriods {
			ov := plan[pi][i].overhead()
			avg[i] = append(avg[i], ov)
			row = append(row, pct(ov))
		}
		t.AddRow(row...)
	}
	t.AddRow("average", pct(mean(avg[0])), pct(mean(avg[1])), pct(mean(avg[2])))
	return t
}

// Figure2 reproduces "Performance overhead of flushing branch history on
// an SMT core": Complete Flush (context + privilege switches) on SMT-2
// and SMT-4. Paper shape: far worse than Figure 1; SMT-4 worse than
// SMT-2.
func (s *Session) Figure2() *Table {
	t := &Table{
		Title:  "Figure 2: Complete Flush overhead on an SMT core",
		Header: []string{"config", "overhead"},
		Caption: "LTAGE predictor, flush on context and privilege switches.\n" +
			"Paper shape: several percent on SMT-2, higher on SMT-4.",
	}
	period := s.scale.TimerPeriods[1]
	pairs := workload.SMTPairs()
	quads := workload.SMTQuads()
	b := s.batch()
	plan2 := make([]oPair, len(pairs))
	for i, pair := range pairs {
		plan2[i] = b.overheadPair(
			smt2Spec(baselineOpts(), "ltage", pair, period),
			smt2Spec(core.OptionsFor(core.CompleteFlush), "ltage", pair, period))
	}
	plan4 := make([]oPair, len(quads))
	for i, quad := range quads {
		plan4[i] = b.overheadPair(
			smt4Spec(baselineOpts(), "ltage", quad, period),
			smt4Spec(core.OptionsFor(core.CompleteFlush), "ltage", quad, period))
	}
	b.exec()

	var smt2, smt4 []float64
	for _, p := range plan2 {
		smt2 = append(smt2, p.overhead())
	}
	for _, p := range plan4 {
		smt4 = append(smt4, p.overhead())
	}
	t.AddRow("SMT-2", pct(mean(smt2)))
	t.AddRow("SMT-4", pct(mean(smt4)))
	return t
}

// Figure3 reproduces "Comparison between Complete Flush and Precise Flush
// in SMT-2". Paper shape: Precise Flush lower but still elevated.
func (s *Session) Figure3() *Table {
	t := &Table{
		Title:  "Figure 3: Complete vs Precise Flush, SMT-2",
		Header: []string{"case", "CompleteFlush", "PreciseFlush"},
		Caption: "LTAGE predictor. Paper shape: PF < CF, both well above\n" +
			"the single-threaded core's cost.",
	}
	period := s.scale.TimerPeriods[1]
	pairs := workload.SMTPairs()
	b := s.batch()
	type cell struct{ cf, pf oPair } // both share the pair's baseline (dedup'd)
	plan := make([]cell, len(pairs))
	for i, pair := range pairs {
		base := smt2Spec(baselineOpts(), "ltage", pair, period)
		plan[i] = cell{
			cf: b.overheadPair(base, smt2Spec(core.OptionsFor(core.CompleteFlush), "ltage", pair, period)),
			pf: b.overheadPair(base, smt2Spec(core.OptionsFor(core.PreciseFlush), "ltage", pair, period)),
		}
	}
	b.exec()

	var cfAll, pfAll []float64
	for i, pair := range pairs {
		co := plan[i].cf.overhead()
		po := plan[i].pf.overhead()
		cfAll = append(cfAll, co)
		pfAll = append(pfAll, po)
		t.AddRow(pair.ID, pct(co), pct(po))
	}
	t.AddRow("average", pct(mean(cfAll)), pct(mean(pfAll)))
	return t
}

// figureScoped runs the Figure 7/8/9 family: XOR and Noisy-XOR limited to
// a structure scope on the FPGA core, per case and timer period.
func (s *Session) figureScoped(title string, scope core.Structure, shape string) *Table {
	label := scope.String()
	t := &Table{
		Title: title,
		Header: []string{"case",
			"XOR-" + label + "-4M", "XOR-" + label + "-8M", "XOR-" + label + "-12M",
			"Noisy-XOR-" + label + "-4M", "Noisy-XOR-" + label + "-8M", "Noisy-XOR-" + label + "-12M"},
		Caption: shape,
	}
	pairs := workload.SingleCorePairs()
	b := s.batch()
	plan := make([][6]oPair, len(pairs))
	for pi, pair := range pairs {
		col := 0
		for _, mech := range []core.Mechanism{core.XOR, core.NoisyXOR} {
			for _, period := range s.scale.TimerPeriods {
				plan[pi][col] = b.overheadPair(
					singleSpec(baselineOpts(), pair, period),
					singleSpec(scopedOpts(mech, scope), pair, period))
				col++
			}
		}
	}
	b.exec()

	var avgs [6][]float64
	for pi, pair := range pairs {
		row := []string{pair.ID}
		for col := 0; col < 6; col++ {
			ov := plan[pi][col].overhead()
			avgs[col] = append(avgs[col], ov)
			row = append(row, pct(ov))
		}
		t.AddRow(row...)
	}
	avgRow := []string{"average"}
	for col := 0; col < 6; col++ {
		avgRow = append(avgRow, pct(mean(avgs[col])))
	}
	t.AddRow(avgRow...)
	return t
}

// Figure7 reproduces "Performance overhead of XOR-BTB and Noisy-XOR-BTB".
// Paper shape: average < 0.2%, worst ≈ 1% (case6), case2 slightly
// negative.
func (s *Session) Figure7() *Table {
	return s.figureScoped(
		"Figure 7: XOR-BTB / Noisy-XOR-BTB overhead (single-threaded core)",
		core.StructBTB,
		"Paper shape: average < 0.2%; case6 worst (~1%); case2 can go negative\n"+
			"(BTB loss overturns wrong direction predictions via fall-through).")
}

// Figure8 reproduces "Performance overhead of XOR-PHT and Noisy-XOR-PHT".
// Paper shape: average < 1.1%, case1 worst (~2.5%), decreasing slightly
// with longer switch periods.
func (s *Session) Figure8() *Table {
	return s.figureScoped(
		"Figure 8: XOR-PHT / Noisy-XOR-PHT overhead (single-threaded core)",
		core.StructPHT,
		"Paper shape: average < 1.1%; case1 worst (~2.5%).")
}

// Figure9 reproduces "Performance overhead of XOR-BP and Noisy-XOR-BP"
// (both structures protected). Paper shape: average < 1.3%, worst ≈ 2.5%
// (case1), largely insensitive to the timer period because privilege
// switches dominate (Table 4).
func (s *Session) Figure9() *Table {
	return s.figureScoped(
		"Figure 9: XOR-BP / Noisy-XOR-BP overhead (single-threaded core)",
		core.StructAll,
		"Paper shape: average < 1.3%; worst ~2.5% (case1); flat across timer\n"+
			"periods because privilege switches dominate key rotations.")
}

// RekeyPeriods returns the geometric re-key period ladder the sweep
// measures: eight periods from 1/256th to 1/2 of the scale's total
// single-core instruction budget (in cycles — the simulated CPI is
// below 1, so the short periods re-key many times per run and the long
// ones a handful). The ladder is a pure function of the scale, so every
// invocation sweeps identical cells and the cache and snapshot store
// both hit.
func (s *Session) RekeyPeriods() []uint64 {
	t := s.scale.WarmupInstr + s.scale.MeasureInstr
	ps := make([]uint64, 8)
	for k := range ps {
		ps[k] = t >> (8 - k)
	}
	return ps
}

// rekeyOpts is Noisy-XOR-BP re-keyed every period cycles, on top of the
// event-driven rotations it already performs.
func rekeyOpts(period uint64) core.Options {
	o := core.OptionsFor(core.NoisyXOR)
	o.RekeyPeriod = period
	return o
}

// RekeySweep measures the performance cost of periodic re-keying:
// Noisy-XOR-BP with a forced key rotation every P cycles, for the
// RekeyPeriods ladder, against the same unprotected baselines as
// Figures 7-9. The paper re-keys on isolation events only (§5); this
// sweep quantifies the cost of the natural hardening extension — a
// wall-clock re-key bounding any key's lifetime — and is the
// demonstrator for the executor's prefix-sharing fork path: the eight
// cells of each case differ only in RekeyPeriod, so they form one
// divergence family and share each prefix simulation.
func (s *Session) RekeySweep() *Table {
	periods := s.RekeyPeriods()
	header := []string{"case"}
	for _, p := range periods {
		header = append(header, fmtCount(p))
	}
	t := &Table{
		Title:  "Re-key period sweep: Noisy-XOR-BP with periodic key rotation",
		Header: header,
		Caption: "Overhead vs baseline per forced re-key period (cycles).\n" +
			"Expected shape: overhead decays toward the event-driven cost\n" +
			"as the period grows and rotations become rare.",
	}
	timer := s.scale.TimerPeriods[1]
	pairs := workload.SingleCorePairs()
	b := s.batch()
	plan := make([][]oPair, len(pairs))
	for pi, pair := range pairs {
		plan[pi] = make([]oPair, len(periods))
		for i, p := range periods {
			plan[pi][i] = b.overheadPair(
				singleSpec(baselineOpts(), pair, timer),
				singleSpec(rekeyOpts(p), pair, timer))
		}
	}
	b.exec()

	avgs := make([][]float64, len(periods))
	for pi, pair := range pairs {
		row := []string{pair.ID}
		for i := range periods {
			ov := plan[pi][i].overhead()
			avgs[i] = append(avgs[i], ov)
			row = append(row, pct(ov))
		}
		t.AddRow(row...)
	}
	avgRow := []string{"average"}
	for i := range periods {
		avgRow = append(avgRow, pct(mean(avgs[i])))
	}
	t.AddRow(avgRow...)
	return t
}

// Figure10 reproduces "Performance cost of three isolation mechanisms on
// four different predictors on an SMT core". Paper shape: Noisy-XOR-BP
// beats both flushes (26–37% lower loss than CF on average); more
// accurate predictors pay more on average (2.3% → 4.9%).
func (s *Session) Figure10() *Table {
	preds := PredictorNames()
	mechs := []core.Mechanism{core.CompleteFlush, core.PreciseFlush, core.NoisyXOR}
	header := []string{"case"}
	for _, p := range preds {
		header = append(header, p+"-CF", p+"-PF", p+"-NXOR")
	}
	t := &Table{
		Title:  "Figure 10: isolation mechanisms x predictors, SMT-2",
		Header: header,
		Caption: "Overhead vs the same predictor without protection.\n" +
			"Paper shape: NXOR < PF < CF on average; cost grows with\n" +
			"predictor accuracy (gshare -> tage_sc_l).",
	}
	period := s.scale.TimerPeriods[1]
	pairs := workload.SMTPairs()
	b := s.batch()
	// plan[i][j][k]: pair i, predictor j, mechanism k; the three
	// mechanisms share the (pair, predictor) baseline via dedup.
	plan := make([][][3]oPair, len(pairs))
	for i, pair := range pairs {
		plan[i] = make([][3]oPair, len(preds))
		for j, p := range preds {
			base := smt2Spec(baselineOpts(), p, pair, period)
			for k, mech := range mechs {
				plan[i][j][k] = b.overheadPair(base, smt2Spec(core.OptionsFor(mech), p, pair, period))
			}
		}
	}
	b.exec()

	sums := make(map[string][]float64)
	for i, pair := range pairs {
		row := []string{pair.ID}
		for j, p := range preds {
			for k, mech := range mechs {
				ov := plan[i][j][k].overhead()
				sums[p+"-"+mech.String()] = append(sums[p+"-"+mech.String()], ov)
				row = append(row, pct(ov))
			}
		}
		t.AddRow(row...)
	}
	avgRow := []string{"average"}
	for _, p := range preds {
		for _, mech := range mechs {
			avgRow = append(avgRow, pct(mean(sums[p+"-"+mech.String()])))
		}
	}
	t.AddRow(avgRow...)
	return t
}
