package experiment

import (
	"strings"
	"testing"

	"xorbp/internal/cpu"
)

// TestTablesByteIdenticalAcrossEngines renders a representative set of
// figures through the full session/executor stack under the fast engine
// and the reference stepper and requires byte-identical output. This is
// the end-to-end form of the cpu package's equivalence suite — it is
// what guarantees that run-cache entries populated by either engine
// (or by fleets running different engine defaults) can be mixed freely.
func TestTablesByteIdenticalAcrossEngines(t *testing.T) {
	render := func() string {
		s := NewSessionWith(MicroScale(), NewExecutor(0))
		var b strings.Builder
		b.WriteString(s.Figure1().Render())
		if !testing.Short() {
			b.WriteString(s.Figure9().Render())
			b.WriteString(s.Table4().Render())
		}
		return b.String()
	}
	fast := render()
	runEngine = cpu.EngineReference
	defer func() { runEngine = cpu.EngineFast }()
	ref := render()
	if fast != ref {
		t.Fatal("rendered tables differ between the fast engine and the reference stepper")
	}
}
