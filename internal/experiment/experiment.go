// Package experiment contains one runner per table and figure in the
// paper's evaluation (§6). Each runner builds the matching processor
// configuration, executes the Table 3 workloads under the mechanisms the
// figure compares, and renders the same rows/series the paper reports.
//
// Runs are deterministic for a given Scale and seed.
package experiment

import (
	"fmt"
	"sort"
	"strings"

	"xorbp/internal/attack"
	"xorbp/internal/core"
	"xorbp/internal/cpu"
	"xorbp/internal/gshare"
	"xorbp/internal/perceptron"
	"xorbp/internal/predictor"
	"xorbp/internal/report"
	"xorbp/internal/tage"
	"xorbp/internal/tagescl"
	"xorbp/internal/tournament"
	"xorbp/internal/wire"
)

// Scale sets simulation sizes. It is an alias of the canonical wire
// type (internal/wire.Scale) so specs serialize identically everywhere;
// see that type for field semantics and EXPERIMENTS.md for calibration.
type Scale = wire.Scale

// FullScale is the configuration used by cmd/bpsim: large enough for
// stable estimates (tens of isolation events per run).
func FullScale() Scale {
	return Scale{
		WarmupInstr:     4_000_000,
		MeasureInstr:    16_000_000,
		SMTWarmupInstr:  8_000_000,
		SMTMeasureInstr: 48_000_000,
		TimerPeriods:    [3]uint64{1_000_000, 2_000_000, 3_000_000},
		TimerLabels:     [3]string{"4M", "8M", "12M"},
		Seed:            1,
	}
}

// BenchScale is a reduced configuration for `go test -bench`: same
// structure, noisier estimates.
func BenchScale() Scale {
	return Scale{
		WarmupInstr:     1_000_000,
		MeasureInstr:    4_000_000,
		SMTWarmupInstr:  2_000_000,
		SMTMeasureInstr: 14_000_000,
		TimerPeriods:    [3]uint64{500_000, 1_000_000, 1_500_000},
		TimerLabels:     [3]string{"4M", "8M", "12M"},
		Seed:            1,
	}
}

// MicroScale is the smallest stable configuration: tables are
// structurally complete but magnitudes are not calibrated. It backs
// engine tests (serial vs parallel vs distributed determinism) and
// quick smoke runs where only the plumbing is under test.
func MicroScale() Scale {
	return Scale{
		WarmupInstr:     75_000,
		MeasureInstr:    300_000,
		SMTWarmupInstr:  150_000,
		SMTMeasureInstr: 1_000_000,
		TimerPeriods:    [3]uint64{50_000, 100_000, 150_000},
		TimerLabels:     [3]string{"4M", "8M", "12M"},
		Seed:            1,
	}
}

// PredictorNames lists the sweep-grid direction predictors: the gem5
// predictors of Figure 10 in the paper's accuracy order (least accurate
// first), extended with the perceptron (a ROADMAP growth item — the
// paper never evaluates a weight-table predictor).
func PredictorNames() []string {
	return []string{"gshare", "perceptron", "tournament", "ltage", "tage_sc_l"}
}

// NewDirPredictor constructs a named predictor against a controller.
// Valid names: gshare, tournament, ltage, tage_sc_l (gem5 set),
// perceptron, and tage (the FPGA prototype predictor).
func NewDirPredictor(name string, ctrl *core.Controller) predictor.DirPredictor {
	switch name {
	case "gshare":
		return gshare.New(gshare.Gem5Config(), ctrl)
	case "perceptron":
		return perceptron.New(perceptron.DefaultConfig(), ctrl)
	case "tournament":
		return tournament.New(tournament.Gem5Config(), ctrl)
	case "ltage":
		return tage.New(tage.LTAGEConfig(), ctrl)
	case "tage_sc_l":
		return tagescl.New(tagescl.Gem5Config(), ctrl)
	case "tage":
		return tage.New(tage.FPGAConfig(), ctrl)
	default:
		panic(fmt.Sprintf("experiment: unknown predictor %q", name))
	}
}

// RunResult is one simulation's measurement window. It is an alias of
// the canonical wire type (internal/wire.Result), so results computed
// by any backend — in-process, remote daemon, cache replay — are the
// same type with the same encoding.
type RunResult = wire.Result

// runSpec fully describes one simulation — a performance run (kind "")
// or an attack job (kind wire.KindAttack, payload in atk).
type runSpec struct {
	kind     string
	opts     core.Options
	predName string
	cfg      cpu.Config
	timer    uint64
	names    []string // software threads, first = target
	scale    Scale
	atk      attackCell
}

// attackCell is the attack-job payload of a runSpec: the comparable
// in-process mirror of wire.AttackSpec.
type attackCell struct {
	name     string
	scenario attack.Scenario
	rekey    uint64
	trials   int
	attempts int
	seed     uint64
}

// runEngine selects the cpu execution engine for every simulation the
// engine executes. It exists for the equivalence suite: flipping it to
// cpu.EngineReference must leave every rendered table byte-identical,
// which is what makes results cached by either engine interchangeable.
var runEngine = cpu.EngineFast

// run executes one simulation cold: warmup, stat reset, measurement —
// or, for an attack job, the registered PoC measurement. Performance
// runs drive the resumable lifecycle machine (fork.go) straight through;
// the fork path runs the same machine segmented around a divergence
// snapshot, which is what makes the two paths byte-identical.
func run(s runSpec) RunResult {
	if s.kind == wire.KindAttack {
		return runAttack(s)
	}
	m := newSim(s)
	m.advance(cpu.NoCycleLimit)
	return m.result()
}

// Overhead is the normalized performance overhead of a mechanism run
// relative to a baseline run on identical workloads.
func Overhead(mechCycles, baseCycles uint64) float64 {
	return float64(mechCycles)/float64(baseCycles) - 1
}

// Table is the shared aligned-text table type (see internal/report).
type Table = report.Table

// pct formats a ratio as a signed percentage.
func pct(v float64) string { return fmt.Sprintf("%+.2f%%", v*100) }

// fmtCount renders a cycle or instruction count compactly for column
// headers (1500 -> "1.5k", 2_000_000 -> "2M").
func fmtCount(v uint64) string {
	switch {
	case v >= 1_000_000 && v%100_000 == 0:
		return trimZero(float64(v)/1e6) + "M"
	case v >= 1_000:
		return trimZero(float64(v)/1e3) + "k"
	default:
		return fmt.Sprintf("%d", v)
	}
}

// trimZero formats with one decimal, dropping a trailing ".0".
func trimZero(f float64) string {
	s := fmt.Sprintf("%.1f", f)
	return strings.TrimSuffix(s, ".0")
}

// mean averages a slice.
func mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}

// sortedKeys returns map keys in order (for deterministic rendering).
func sortedKeys[M ~map[string]V, V any](m M) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
