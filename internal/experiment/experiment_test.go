package experiment

import (
	"strings"
	"testing"

	"xorbp/internal/core"
	"xorbp/internal/cpu"
	"xorbp/internal/workload"
)

// tinyScale keeps integration tests fast; the assertions only check
// structure and gross shape, not calibrated magnitudes. Under -short the
// budgets shrink a further 4x (ratios preserved) so `go test -short` is a
// quick local loop.
func tinyScale() Scale {
	s := Scale{
		WarmupInstr:     300_000,
		MeasureInstr:    1_200_000,
		SMTWarmupInstr:  600_000,
		SMTMeasureInstr: 4_000_000,
		TimerPeriods:    [3]uint64{200_000, 400_000, 600_000},
		TimerLabels:     [3]string{"4M", "8M", "12M"},
		Seed:            1,
	}
	if testing.Short() {
		s = quarter(s)
	}
	return s
}

// quarter shrinks every budget and period 4x, preserving the ratios that
// drive the results.
func quarter(s Scale) Scale {
	s.WarmupInstr /= 4
	s.MeasureInstr /= 4
	s.SMTWarmupInstr /= 4
	s.SMTMeasureInstr /= 4
	for i := range s.TimerPeriods {
		s.TimerPeriods[i] /= 4
	}
	return s
}

// microScale is tinyScale shrunk a further 4x, for tests that assert
// table structure or engine behavior — properties independent of the
// simulation window, so the smallest stable scale wins.
func microScale() Scale { return quarter(tinyScale()) }

// sharedSession returns a microScale session backed by one package-wide
// executor, so structural tests reuse each other's simulations (the same
// dedup that lets Figures 7/8/9 share baselines). Tests that count runs
// or cache entries create private sessions instead.
func sharedSession() *Session {
	return NewSessionWith(microScale(), sharedExec)
}

var sharedExec = NewExecutor(0)

func TestNewDirPredictorNames(t *testing.T) {
	ctrl := core.NewController(core.OptionsFor(core.Baseline), 1)
	for _, n := range append(PredictorNames(), "tage") {
		p := NewDirPredictor(n, ctrl)
		if p.Name() != n {
			t.Errorf("predictor %q reports name %q", n, p.Name())
		}
		if p.StorageBits() == 0 {
			t.Errorf("predictor %q reports zero storage", n)
		}
	}
}

func TestNewDirPredictorUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown predictor did not panic")
		}
	}()
	NewDirPredictor("oracle", core.NewController(core.OptionsFor(core.Baseline), 1))
}

func TestRunSingleProducesStats(t *testing.T) {
	s := runSpec{
		opts:     core.OptionsFor(core.Baseline),
		predName: "tage",
		cfg:      cpu.FPGAConfig(),
		timer:    300_000,
		names:    []string{"gcc", "calculix"},
		scale:    tinyScale(),
	}
	r := run(s)
	if r.Cycles == 0 || r.Target.Instructions == 0 {
		t.Fatalf("empty result: %+v", r)
	}
	if r.Target.MPKI() <= 0 {
		t.Fatal("zero MPKI")
	}
}

func TestSessionMemoizes(t *testing.T) {
	s := NewSession(tinyScale())
	spec := singleSpec(baselineOpts(), workload.SingleCorePairs()[0], 300_000)
	a := s.run(spec)
	b := s.run(spec)
	if a.Cycles != b.Cycles || a.Target != b.Target {
		t.Fatal("memoized runs differ")
	}
	if n := s.Executor().CacheSize(); n != 1 {
		t.Fatalf("cache has %d entries, want 1", n)
	}
	if n := s.Executor().Runs(); n != 1 {
		t.Fatalf("executor simulated %d times, want 1", n)
	}
}

func TestSessionCacheKeysDistinguishMechanisms(t *testing.T) {
	s := NewSession(tinyScale())
	pair := workload.SingleCorePairs()[0]
	s.run(singleSpec(scopedOpts(core.XOR, core.StructBTB), pair, 300_000))
	s.run(singleSpec(scopedOpts(core.NoisyXOR, core.StructBTB), pair, 300_000))
	if n := s.Executor().CacheSize(); n != 2 {
		t.Fatalf("cache has %d entries, want 2 (mechanisms must not collide)", n)
	}
}

func TestFigure1Structure(t *testing.T) {
	tab := sharedSession().Figure1()
	if len(tab.Rows) != 13 { // 12 cases + average
		t.Fatalf("Figure 1 has %d rows, want 13", len(tab.Rows))
	}
	if tab.Rows[12][0] != "average" {
		t.Fatal("last row should be the average")
	}
	if len(tab.Header) != 4 {
		t.Fatalf("Figure 1 has %d columns, want 4", len(tab.Header))
	}
}

func TestFigure10Structure(t *testing.T) {
	// Structural check only at tiny scale (two cases would be enough, but
	// the runner covers all 12; keep the tiny scale cheap).
	if testing.Short() {
		t.Skip("long integration test")
	}
	tab := sharedSession().Figure10()
	if len(tab.Rows) != 13 {
		t.Fatalf("Figure 10 has %d rows, want 13", len(tab.Rows))
	}
	if want := 1 + len(PredictorNames())*3; len(tab.Header) != want {
		t.Fatalf("Figure 10 has %d columns, want %d (3 mechanisms per predictor)", len(tab.Header), want)
	}
}

func TestTable2And3Static(t *testing.T) {
	t2 := Table2()
	if len(t2.Rows) < 6 {
		t.Fatalf("Table 2 too small: %d rows", len(t2.Rows))
	}
	t3 := Table3()
	if len(t3.Rows) != 12 {
		t.Fatalf("Table 3 has %d rows, want 12", len(t3.Rows))
	}
	if !strings.Contains(t3.Rows[0][1], "gcc") {
		t.Fatalf("Table 3 case1 should contain gcc: %v", t3.Rows[0])
	}
}

func TestOverheadMath(t *testing.T) {
	if Overhead(110, 100) < 0.099 || Overhead(110, 100) > 0.101 {
		t.Fatal("Overhead(110,100) != ~0.10")
	}
	if Overhead(95, 100) > -0.04 {
		t.Fatal("negative overhead lost")
	}
}

func TestRenderAligned(t *testing.T) {
	tab := &Table{
		Title:  "T",
		Header: []string{"a", "bb"},
	}
	tab.AddRow("xxx", "y")
	out := tab.Render()
	if !strings.Contains(out, "xxx") || !strings.Contains(out, "---") {
		t.Fatalf("render output malformed:\n%s", out)
	}
}

func TestMeanAndPct(t *testing.T) {
	if mean(nil) != 0 {
		t.Fatal("mean(nil) != 0")
	}
	if mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean wrong")
	}
	if pct(0.0123) != "+1.23%" {
		t.Fatalf("pct formatting: %q", pct(0.0123))
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	ks := sortedKeys(m)
	if len(ks) != 3 || ks[0] != "a" || ks[2] != "c" {
		t.Fatalf("sortedKeys wrong: %v", ks)
	}
}

func TestBaselineFasterThanFlushSingleCore(t *testing.T) {
	// Gross shape at tiny scale: periodic Complete Flush must cost
	// something on the single-threaded core, but very little.
	s := NewSession(tinyScale())
	pair := workload.SingleCorePairs()[2]
	base := s.run(singleSpec(baselineOpts(), pair, 300_000))
	cf := s.run(singleSpec(figure1CF(), pair, 300_000))
	over := Overhead(cf.Cycles, base.Cycles)
	if over < -0.01 {
		t.Fatalf("flush run faster than baseline by %.2f%%", -over*100)
	}
	if over > 0.10 {
		t.Fatalf("periodic flush overhead %.1f%% implausibly high", over*100)
	}
}
