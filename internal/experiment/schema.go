package experiment

import (
	"encoding/json"
	"fmt"
	"reflect"
	"strings"

	"xorbp/internal/core"
	"xorbp/internal/cpu"
	"xorbp/internal/runcache"
)

// schemaEpoch distinguishes encoding generations that a type signature
// cannot: bump it when simulation semantics change in a way that makes
// previously stored results stale (e.g. a scheduler-model fix) without
// any key or result field changing shape.
const schemaEpoch = 1

// persistedKey is the stable, exported-field mirror of runKey used for
// the on-disk cache encoding. Its JSON form is deterministic (fixed
// field order, no maps), so hashing it yields a stable key.
type persistedKey struct {
	Opts      core.Options `json:"opts"` // Codec/Scrambler blanked; identities below
	Codec     string       `json:"codec"`
	Scrambler string       `json:"scrambler"`
	Pred      string       `json:"pred"`
	Cfg       cpu.Config   `json:"cfg"`
	Timer     uint64       `json:"timer"`
	Names     string       `json:"names"`
	Scale     Scale        `json:"scale"`
}

// SchemaVersion identifies the persistent run cache's encoding. It
// embeds a recursive signature of the key and result types, so adding,
// removing, renaming or retyping any field reachable from core.Options,
// cpu.Config, Scale or RunResult produces a new version — stale entries
// are invalidated, never aliased.
func SchemaVersion() string { return schemaVersion }

// schemaVersion is computed once; the types are static, so the
// signature cannot change within a process.
var schemaVersion = fmt.Sprintf("xorbp-run/epoch%d/%s->%s", schemaEpoch,
	typeSig(reflect.TypeOf(persistedKey{}), nil),
	typeSig(reflect.TypeOf(RunResult{}), nil))

// typeSig renders a type's full structure: struct fields recurse, so a
// change anywhere in the key or result type tree changes the signature.
func typeSig(t reflect.Type, seen map[reflect.Type]bool) string {
	if seen == nil {
		seen = make(map[reflect.Type]bool)
	}
	switch t.Kind() {
	case reflect.Struct:
		if seen[t] {
			return t.String()
		}
		seen[t] = true
		var b strings.Builder
		b.WriteString(t.String())
		b.WriteByte('{')
		for i := 0; i < t.NumField(); i++ {
			if i > 0 {
				b.WriteByte(';')
			}
			f := t.Field(i)
			b.WriteString(f.Name)
			b.WriteByte(':')
			b.WriteString(typeSig(f.Type, seen))
		}
		b.WriteByte('}')
		return b.String()
	case reflect.Slice:
		return "[]" + typeSig(t.Elem(), seen)
	case reflect.Array:
		return fmt.Sprintf("[%d]%s", t.Len(), typeSig(t.Elem(), seen))
	case reflect.Pointer:
		return "*" + typeSig(t.Elem(), seen)
	case reflect.Map:
		return "map[" + typeSig(t.Key(), seen) + "]" + typeSig(t.Elem(), seen)
	default:
		// Basic kinds and interfaces: the name is the identity (interface
		// implementations are keyed separately, by dynamic type name).
		return t.String()
	}
}

// diskKey derives the persistent-store key for a runKey.
func diskKey(k runKey) string {
	payload, err := json.Marshal(persistedKey{
		Opts:      k.opts,
		Codec:     k.codec,
		Scrambler: k.scrambler,
		Pred:      k.predName,
		Cfg:       k.cfg,
		Timer:     k.timer,
		Names:     k.names,
		Scale:     k.scale,
	})
	if err != nil {
		// Every field is a plain value type; Marshal cannot fail.
		panic(fmt.Sprintf("experiment: encoding run key: %v", err))
	}
	return runcache.Key(schemaVersion, payload)
}
