package experiment

import (
	"context"
	"fmt"

	"xorbp/internal/attack"
	"xorbp/internal/core"
	"xorbp/internal/wire"
	"xorbp/internal/workload"
)

// SchemaVersion identifies the persistent run cache's encoding: the
// wire schema's version. The engine, the bpserve daemon and every bpsim
// invocation sharing a cache directory agree on keys exactly when they
// agree on this string.
func SchemaVersion() string { return wire.SchemaVersion() }

// specToWire renders a spec in its canonical wire form. Options are
// normalized first, so a zero Scope/Codec/Scrambler and the explicit
// paper defaults — which the controller runs identically — map to the
// same wire bytes, and therefore the same cache key, everywhere.
func specToWire(s runSpec) wire.Spec {
	o := s.opts.Normalized()
	w := wire.Spec{
		Kind:      s.kind,
		Opts:      o,
		Codec:     o.Codec.Name(),     //bpvet:allow Codec.Name implementations are compile-time string literals; the registry round-trip test pins them
		Scrambler: o.Scrambler.Name(), //bpvet:allow Scrambler.Name implementations are compile-time string literals; the registry round-trip test pins them
		Pred:      s.predName,
		Cfg:       s.cfg,
		Timer:     s.timer,
		Threads:   append([]string(nil), s.names...),
		Scale:     s.scale,
	}
	if s.kind == wire.KindAttack {
		w.Attack = &wire.AttackSpec{
			Name:        s.atk.name,
			Scenario:    s.atk.scenario.String(),
			RekeyPeriod: s.atk.rekey,
			Trials:      s.atk.trials,
			Attempts:    s.atk.attempts,
			Seed:        s.atk.seed,
		}
	}
	// The interface values are excluded from the encoding (json:"-");
	// blank them anyway so a wire.Spec compares by its canonical content.
	w.Opts.Codec, w.Opts.Scrambler = nil, nil
	return w
}

// specFromWire reconstructs a runnable spec from its wire form,
// validating every name field against the local registries. A worker
// must reject a spec it cannot faithfully execute — a silently-wrong
// result would poison every cache sharing the schema.
func specFromWire(w wire.Spec) (runSpec, error) {
	codec, ok := core.CodecByName(w.Codec)
	if !ok {
		return runSpec{}, fmt.Errorf("experiment: unknown codec %q", w.Codec)
	}
	scrambler, ok := core.ScramblerByName(w.Scrambler)
	if !ok {
		return runSpec{}, fmt.Errorf("experiment: unknown scrambler %q", w.Scrambler)
	}
	opts := w.Opts
	opts.Codec, opts.Scrambler = codec, scrambler

	switch w.Kind {
	case wire.KindAttack:
		return attackSpecFromWire(w, opts)
	case "":
		// Performance run: fall through to the original validation.
	default:
		return runSpec{}, fmt.Errorf("experiment: unknown run kind %q", w.Kind)
	}

	if !validPredictor(w.Pred) {
		return runSpec{}, fmt.Errorf("experiment: unknown predictor %q", w.Pred)
	}
	if w.Attack != nil {
		return runSpec{}, fmt.Errorf("experiment: performance spec carries an attack payload")
	}
	if len(w.Threads) == 0 {
		return runSpec{}, fmt.Errorf("experiment: spec has no software threads")
	}
	for _, n := range w.Threads {
		if _, err := workload.ByName(n); err != nil {
			return runSpec{}, fmt.Errorf("experiment: %w", err)
		}
	}
	if w.Scale.MeasureInstr == 0 {
		return runSpec{}, fmt.Errorf("experiment: spec has a zero measurement budget")
	}
	return runSpec{
		opts:     opts,
		predName: w.Pred,
		cfg:      w.Cfg,
		timer:    w.Timer,
		names:    append([]string(nil), w.Threads...),
		scale:    w.Scale,
	}, nil
}

// attackSpecFromWire validates and reconstructs an attack job. Like the
// performance path, every name field is checked against the local
// registries — a worker must reject a job it cannot faithfully execute.
func attackSpecFromWire(w wire.Spec, opts core.Options) (runSpec, error) {
	if w.Attack == nil {
		return runSpec{}, fmt.Errorf("experiment: attack spec has no attack payload")
	}
	info, ok := attack.ByName(w.Attack.Name)
	if !ok {
		return runSpec{}, fmt.Errorf("experiment: unknown attack %q", w.Attack.Name)
	}
	sc, ok := attack.ScenarioByName(w.Attack.Scenario)
	if !ok {
		return runSpec{}, fmt.Errorf("experiment: unknown attack scenario %q", w.Attack.Scenario)
	}
	if info.SingleOnly && sc != attack.SingleThreaded {
		// The runner would silently measure the single-threaded variant;
		// caching that under an SMT key would mislabel the result forever.
		return runSpec{}, fmt.Errorf("experiment: attack %q only exists on the single-threaded scenario", w.Attack.Name)
	}
	if w.Pred != "" && !validPredictor(w.Pred) {
		return runSpec{}, fmt.Errorf("experiment: unknown predictor %q", w.Pred)
	}
	if w.Attack.Trials <= 0 {
		return runSpec{}, fmt.Errorf("experiment: attack spec has no trials")
	}
	return runSpec{
		kind:     wire.KindAttack,
		opts:     opts,
		predName: w.Pred,
		atk: attackCell{
			name:     w.Attack.Name,
			scenario: sc,
			rekey:    w.Attack.RekeyPeriod,
			trials:   w.Attack.Trials,
			attempts: w.Attack.Attempts,
			seed:     w.Attack.Seed,
		},
	}, nil
}

// validPredictor mirrors NewDirPredictor's accepted names without
// constructing anything.
func validPredictor(name string) bool {
	switch name {
	case "gshare", "perceptron", "tournament", "ltage", "tage_sc_l", "tage":
		return true
	}
	return false
}

// Backend resolves one canonical spec to its result. The Executor
// dispatches every cache miss through its backend, so swapping the
// in-process pool for a remote worker fleet (wire.Client) changes
// where simulations run but nothing about what they compute: results
// are pure functions of the spec under either backend.
type Backend interface {
	Run(ctx context.Context, spec wire.Spec) (RunResult, error)
}

// LocalBackend executes specs in-process. It is the Executor's default
// backend and the execution core of the bpserve work-server daemon.
type LocalBackend struct{}

// Run decodes and simulates one spec.
func (LocalBackend) Run(_ context.Context, spec wire.Spec) (RunResult, error) {
	s, err := specFromWire(spec)
	if err != nil {
		return RunResult{}, err
	}
	return run(s), nil
}
