package experiment

import (
	"fmt"

	"xorbp/internal/attack"
	"xorbp/internal/core"
	"xorbp/internal/predictor"
	"xorbp/internal/wire"
)

// AttackJob describes one attack cell as an engine job: a registered
// PoC against a mechanism configuration, on one core arrangement, with
// the security grid's two extra knobs (direction predictor, re-key
// period). Jobs resolve through the same Executor path as performance
// runs — memo cache, persistent store, worker pool, remote backends and
// shard assignments all apply.
type AttackJob struct {
	// Attack is the registered attack name (attack.ByName).
	Attack string
	// Opts is the mechanism configuration under attack.
	Opts core.Options
	// Scenario is the core arrangement.
	Scenario attack.Scenario
	// Pred names the direction predictor under attack; "" selects the
	// PoC's default bimodal table.
	Pred string
	// RekeyPeriod is the isolation timer period in scheduling events
	// (0 = the paper's event-driven design). See attack.Env.
	RekeyPeriod uint64
	// Trials and Attempts size the measurement (attack.Request).
	Trials   int
	Attempts int
	// Seed diversifies the measurement deterministically.
	Seed uint64
}

// JobFor converts a logical attack request into its engine-job form.
func JobFor(r attack.Request) AttackJob {
	return AttackJob{
		Attack:   r.Attack,
		Opts:     r.Opts,
		Scenario: r.Scenario,
		Trials:   r.Trials,
		Attempts: r.Attempts,
		Seed:     r.Seed,
	}
}

// attackRunSpec builds the internal spec for a job.
func attackRunSpec(j AttackJob) runSpec {
	return runSpec{
		kind:     wire.KindAttack,
		opts:     j.Opts,
		predName: j.Pred,
		atk: attackCell{
			name:     j.Attack,
			scenario: j.Scenario,
			rekey:    j.RekeyPeriod,
			trials:   j.Trials,
			attempts: j.Attempts,
			seed:     j.Seed,
		},
	}
}

// RunAttackBatch resolves a batch of attack jobs and returns their
// counted outcomes in job order. It shares everything with RunBatch —
// dedup, the memo cache, the persistent store, the backend fan-out, the
// shard assignment and the planner/progress machinery — because attack
// jobs ARE engine runs; only their payload differs. Skipped (sharded)
// and failed jobs return zero outcomes.
func (e *Executor) RunAttackBatch(jobs []AttackJob) []attack.Outcome {
	specs := make([]runSpec, len(jobs))
	for i, j := range jobs {
		specs[i] = attackRunSpec(j)
	}
	res := e.RunBatch(specs)
	outs := make([]attack.Outcome, len(jobs))
	for i, r := range res {
		if r.Attack != nil {
			outs[i] = attack.Outcome{Successes: r.Attack.Successes, Trials: r.Attack.Trials}
		}
	}
	return outs
}

// runAttack executes one attack job in-process. The measured counts are
// a pure function of the spec — the registry runner derives every bit
// of randomness from the spec's seed — so attack cells replay from the
// cache and distribute across workers exactly like performance runs.
func runAttack(s runSpec) RunResult {
	info, ok := attack.ByName(s.atk.name)
	if !ok {
		// specFromWire validates the name; reaching this is an engine bug.
		panic(fmt.Sprintf("experiment: running unregistered attack %q", s.atk.name))
	}
	ev := attack.Env{
		Scenario:    s.atk.scenario,
		Seed:        s.atk.seed,
		RekeyPeriod: s.atk.rekey,
	}
	if s.predName != "" {
		pred := s.predName
		ev.NewDir = func(ctrl *core.Controller) predictor.DirPredictor {
			return NewDirPredictor(pred, ctrl)
		}
	}
	out := info.Run(s.opts, ev, s.atk.trials, s.atk.attempts)
	return RunResult{Attack: &wire.AttackResult{Successes: out.Successes, Trials: out.Trials}}
}
