package experiment

import (
	"reflect"
	"time"

	"xorbp/internal/cpu"
	"xorbp/internal/workload"
)

// ForkBench is the wall-clock demonstration of the prefix-sharing fork
// path, recorded in BENCH_*.json: an eight-member re-key divergence
// family resolved through the fork chain versus the same cells each
// simulated cold, both measured against the cost of one cold run.
type ForkBench struct {
	// Periods are the divergence cycles, derived from BaseCycles so the
	// ladder scales with the measurement budget.
	Periods []uint64 `json:"periods"`
	// BaseCycles is the total cycle count of the family's shared-prefix
	// run (no re-key) at this scale — deterministic for a given seed.
	BaseCycles uint64 `json:"base_cycles"`
	// SingleMs is one cold run's wall time; StraightMs covers all eight
	// cells cold; ForkedMs covers the same eight through the fork chain.
	SingleMs   float64 `json:"single_ms"`
	StraightMs float64 `json:"straight_ms"`
	ForkedMs   float64 `json:"forked_ms"`
	// RatioVsSingle is ForkedMs over the average cold run (StraightMs/8)
	// — the committed gate asserts the whole forked sweep costs less
	// than MaxForkRatio cold runs. The eight-run average is the stable
	// estimate of one run's cost; the one-shot SingleMs is informational.
	RatioVsSingle float64 `json:"ratio_vs_single"`
	// SpeedupVsStraight is StraightMs/ForkedMs.
	SpeedupVsStraight float64 `json:"speedup_vs_straight"`
	// Match records that the forked results were byte-identical to the
	// straight runs' — a correctness gate, not a performance one.
	Match bool `json:"match"`
}

// MaxForkRatio is the regression gate on ForkBench.RatioVsSingle: the
// eight-period sweep must cost less than this many single cold runs.
// The periods sit in the run's last fifth, so the chain simulates about
// one full prefix plus ~1.1 runs' worth of tails; 2.5 leaves room for
// snapshot/restore overhead while still failing if forking degrades to
// anywhere near the 8x cost of straight re-simulation.
const MaxForkRatio = 2.5

// MeasureForkBench times the fork-vs-straight comparison at the given
// scale. Both sides run serially on the calling goroutine, so the ratio
// is hardware-neutral the same way the engine speedups are.
func MeasureForkBench(scale Scale) ForkBench {
	mk := func(period uint64) runSpec {
		s := singleSpec(rekeyOpts(period), workload.SingleCorePairs()[0], 300_000)
		s.scale = scale
		return s
	}

	// One cold run of the family's shared prefix (no re-key): its wall
	// time is the sweep's unit of cost and its cycle count anchors the
	// divergence ladder.
	start := time.Now() //bpvet:allow wall-clock benchmark harness; durations never reach results or keys
	probe := newSim(mk(0))
	probe.advance(cpu.NoCycleLimit)
	probe.result()
	singleMs := ms(time.Since(start)) //bpvet:allow wall-clock benchmark harness; durations never reach results or keys
	base := probe.c.Cycles()

	// Eight divergence cycles clustered in the run's last fifth, where
	// prefix sharing dominates: 80%..94% of the cold run in 2% steps.
	periods := make([]uint64, 8)
	for i := range periods {
		periods[i] = base * uint64(80+2*i) / 100
	}

	straight := make([]RunResult, len(periods))
	start = time.Now() //bpvet:allow wall-clock benchmark harness; durations never reach results or keys
	for i, p := range periods {
		straight[i] = run(mk(p))
	}
	straightMs := ms(time.Since(start)) //bpvet:allow wall-clock benchmark harness; durations never reach results or keys

	snaps := NewSnapStore(nil)
	forked := make([]RunResult, len(periods))
	var prior []uint64
	prefixDK := specToWire(prefixSpec(mk(periods[0]))).Key()
	start = time.Now() //bpvet:allow wall-clock benchmark harness; durations never reach results or keys
	for i, p := range periods {
		forked[i] = runForked(mk(p), prefixDK, prior, snaps)
		prior = append(prior, p)
	}
	forkedMs := ms(time.Since(start)) //bpvet:allow wall-clock benchmark harness; durations never reach results or keys

	return ForkBench{
		Periods:           periods,
		BaseCycles:        base,
		SingleMs:          singleMs,
		StraightMs:        straightMs,
		ForkedMs:          forkedMs,
		RatioVsSingle:     forkedMs / (straightMs / float64(len(periods))),
		SpeedupVsStraight: straightMs / forkedMs,
		Match:             reflect.DeepEqual(forked, straight),
	}
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
