package experiment

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"xorbp/internal/attack"
	"xorbp/internal/core"
	"xorbp/internal/wire"
	"xorbp/internal/workload"
)

// TestParallelMatchesSerial is the engine's core guarantee: the same
// figure rendered through a 1-worker executor and a many-worker executor
// must be byte-identical, because every simulation is a pure function of
// its spec.
func TestParallelMatchesSerial(t *testing.T) {
	scale := microScale()
	serial := NewSessionWith(scale, NewExecutor(1)).Figure1().Render()
	parallel := NewSessionWith(scale, NewExecutor(8)).Figure1().Render()
	if serial != parallel {
		t.Fatalf("parallel Figure 1 differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}

// TestExecutorDedupsWithinBatch: a spec submitted several times in one
// batch simulates exactly once, and every copy gets the same result.
func TestExecutorDedupsWithinBatch(t *testing.T) {
	e := NewExecutor(4)
	spec := singleSpec(baselineOpts(), workload.SingleCorePairs()[0], 300_000)
	spec.scale = tinyScale()
	res := e.RunBatch([]runSpec{spec, spec, spec})
	if got := e.Runs(); got != 1 {
		t.Fatalf("executor simulated %d times, want 1 (within-batch dedup)", got)
	}
	if res[0].Cycles == 0 || res[0].Cycles != res[2].Cycles || res[0].Target != res[2].Target {
		t.Fatalf("duplicate specs returned different results: %+v vs %+v", res[0], res[2])
	}
}

// TestExecutorSharesBaselinesAcrossFigures: Figures 7 and 9 both need the
// single-core baselines for every pair and period. Running Figure 9 after
// Figure 7 on a shared executor must add only Figure 9's mechanism runs —
// the 36 baselines (12 pairs x 3 periods) come from cache.
func TestExecutorSharesBaselinesAcrossFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	s := sharedSession() // warm the shared cache too, while we're at it
	s.Figure7()
	after7 := s.Executor().Runs()
	s.Figure9()
	added := s.Executor().Runs() - after7
	// Figure 9 needs 12 pairs x 3 periods x 2 mechanisms = 72 scoped runs;
	// its 36 baselines must all be cache hits from Figure 7.
	if added != 72 {
		t.Fatalf("Figure 9 after Figure 7 simulated %d new runs, want 72 (baselines must be shared)", added)
	}
}

// TestExecutorConcurrentBatchesShareWork: two batches racing on a shared
// executor must simulate an overlapping spec once — whichever batch
// claims it runs it, the other waits on the in-flight marker.
func TestExecutorConcurrentBatchesShareWork(t *testing.T) {
	e := NewExecutor(2)
	spec := singleSpec(baselineOpts(), workload.SingleCorePairs()[0], 300_000)
	spec.scale = microScale()
	results := make([][]RunResult, 2)
	var wg sync.WaitGroup
	for g := range results {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[g] = e.RunBatch([]runSpec{spec})
		}()
	}
	wg.Wait()
	if got := e.Runs(); got != 1 {
		t.Fatalf("concurrent batches simulated %d times, want 1", got)
	}
	if results[0][0].Cycles == 0 || results[0][0].Cycles != results[1][0].Cycles {
		t.Fatalf("concurrent batches disagree: %+v vs %+v", results[0][0], results[1][0])
	}
}

// TestRunKeyDistinguishesOptionFields guards the comparable cache key:
// specs differing in any Options field, the timer, or the thread list map
// to distinct keys, while an identical spec maps to the same key.
func TestRunKeyDistinguishesOptionFields(t *testing.T) {
	base := singleSpec(baselineOpts(), workload.SingleCorePairs()[0], 300_000)
	base.scale = tinyScale()

	same := base
	if specKey(same) != specKey(base) {
		t.Fatal("identical specs produced different keys")
	}

	variants := map[string]func(*runSpec){
		"mechanism": func(s *runSpec) { s.opts.Mechanism = core.NoisyXOR },
		"scope":     func(s *runSpec) { s.opts.Scope = core.StructBTB },
		"enhanced":  func(s *runSpec) { s.opts.EnhancedPHT = !s.opts.EnhancedPHT },
		"rotate":    func(s *runSpec) { s.opts.RotateOnPrivilege = !s.opts.RotateOnPrivilege },
		"flushpriv": func(s *runSpec) { s.opts.FlushOnPrivilege = !s.opts.FlushOnPrivilege },
		"codec":     func(s *runSpec) { s.opts.Codec = core.RotXORCodec{} },
		"scrambler": func(s *runSpec) { s.opts.Scrambler = core.FeistelScrambler{} },
		"pred":      func(s *runSpec) { s.predName = "gshare" },
		"timer":     func(s *runSpec) { s.timer = 123_456 },
		"names":     func(s *runSpec) { s.names = []string{"gcc", "mcf"} },
		"seed":      func(s *runSpec) { s.scale.Seed = 99 },
	}
	for name, mutate := range variants {
		v := base
		v.names = append([]string(nil), base.names...)
		mutate(&v)
		if specKey(v) == specKey(base) {
			t.Errorf("variant %q aliases the base key", name)
		}
	}
}

// TestRunKeyNormalizesDefaults: zero-valued Codec/Scrambler/Scope and
// the explicit paper defaults run identically (the controller normalizes
// them), so they must share one cache entry.
func TestRunKeyNormalizesDefaults(t *testing.T) {
	pair := workload.SingleCorePairs()[0]
	implicit := singleSpec(core.OptionsFor(core.NoisyXOR), pair, 300_000) // Scope 0
	explicit := implicit
	explicit.opts.Scope = core.StructAll
	explicit.opts.Codec = core.XORCodec{}
	explicit.opts.Scrambler = core.XORScrambler{}
	nilIfaces := implicit
	nilIfaces.opts.Codec = nil
	nilIfaces.opts.Scrambler = nil
	if specKey(implicit) != specKey(explicit) || specKey(implicit) != specKey(nilIfaces) {
		t.Fatal("semantically identical option spellings map to different cache keys")
	}
}

// TestExecutorProgress: the progress writer gets one serialized line per
// executed simulation, none for cache hits.
func TestExecutorProgress(t *testing.T) {
	e := NewExecutor(2)
	var buf bytes.Buffer
	e.SetProgress(&buf)
	s := NewSessionWith(tinyScale(), e)
	pair := workload.SingleCorePairs()[0]
	s.run(singleSpec(baselineOpts(), pair, 300_000))
	s.run(singleSpec(baselineOpts(), pair, 300_000)) // cache hit: no line
	s.run(singleSpec(figure1CF(), pair, 300_000))
	lines := strings.Count(buf.String(), "\n")
	if lines != 2 {
		t.Fatalf("progress emitted %d lines, want 2:\n%s", lines, buf.String())
	}
	if !strings.Contains(buf.String(), "CompleteFlush") {
		t.Fatalf("progress lines missing mechanism label:\n%s", buf.String())
	}
}

// TestSpecLabel locks the progress-line format: every keyed dimension
// of the spec appears, in a stable order, so grep-driven sweep scripts
// can rely on it.
func TestSpecLabel(t *testing.T) {
	spec := singleSpec(figure1CF(), workload.SingleCorePairs()[0], 300_000)
	got := specLabel(spec)
	want := "CompleteFlush scope=BP pred=tage cfg=fpga-boom timer=300000 threads=gcc+calculix"
	if got != want {
		t.Fatalf("specLabel:\n got %q\nwant %q", got, want)
	}
}

// TestSpecWireRoundTrip: a spec survives the canonical wire encoding —
// specToWire -> Encode -> DecodeSpec -> specFromWire — with its cache
// identity intact. This is what makes a remote worker's results
// interchangeable with local ones.
func TestSpecWireRoundTrip(t *testing.T) {
	specs := []runSpec{
		singleSpec(baselineOpts(), workload.SingleCorePairs()[0], 300_000),
		singleSpec(figure1CF(), workload.SingleCorePairs()[1], 200_000),
		singleSpec(scopedOpts(core.NoisyXOR, core.StructBTB), workload.SingleCorePairs()[2], 100_000),
	}
	for _, spec := range specs {
		spec.scale = microScale()
		w := specToWire(spec)
		enc := w.Encode()
		dec, err := wire.DecodeSpec(enc)
		if err != nil {
			t.Fatal(err)
		}
		back, err := specFromWire(dec)
		if err != nil {
			t.Fatal(err)
		}
		if specKey(back) != specKey(spec) {
			t.Fatalf("wire round-trip changed the cache identity of %s", specLabel(spec))
		}
		if specToWire(back).Key() != w.Key() {
			t.Fatalf("wire round-trip changed the wire key of %s", specLabel(spec))
		}
	}
}

// TestLocalBackendMatchesDirectRun: the backend seam adds a wire
// round-trip in front of run(); the result must be identical — the
// determinism guarantee every backend inherits.
func TestLocalBackendMatchesDirectRun(t *testing.T) {
	spec := singleSpec(baselineOpts(), workload.SingleCorePairs()[0], 300_000)
	spec.scale = microScale()
	direct := run(spec)
	viaBackend, err := LocalBackend{}.Run(context.Background(), specToWire(spec))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, viaBackend) {
		t.Fatalf("backend result differs from direct run:\n%+v\nvs\n%+v", direct, viaBackend)
	}
}

// TestSpecFromWireRejectsGarbage: every name field is validated — a
// worker must refuse what it cannot faithfully execute.
func TestSpecFromWireRejectsGarbage(t *testing.T) {
	good := specToWire(withScale(singleSpec(baselineOpts(), workload.SingleCorePairs()[0], 300_000), microScale()))
	breakers := map[string]func(*wire.Spec){
		"codec":     func(w *wire.Spec) { w.Codec = "rot13" },
		"scrambler": func(w *wire.Spec) { w.Scrambler = "enigma" },
		"pred":      func(w *wire.Spec) { w.Pred = "oracle" },
		"kind":      func(w *wire.Spec) { w.Kind = "benchmark" },
		"workload":  func(w *wire.Spec) { w.Threads = []string{"doom"} },
		"threads":   func(w *wire.Spec) { w.Threads = nil },
		"scale":     func(w *wire.Spec) { w.Scale.MeasureInstr = 0 },
	}
	for name, mutate := range breakers {
		w := good
		w.Threads = append([]string(nil), good.Threads...)
		mutate(&w)
		if _, err := specFromWire(w); err == nil {
			t.Errorf("specFromWire accepted a spec with a bad %s", name)
		}
	}
	if _, err := specFromWire(good); err != nil {
		t.Fatalf("specFromWire rejected a valid spec: %v", err)
	}
}

// withScale returns the spec with its scale set (test helper).
func withScale(s runSpec, sc Scale) runSpec {
	s.scale = sc
	return s
}

// TestExecutorShardsPartitionExactly: two executors sharded 0/2 and 1/2
// over one store directory split the grid without overlap or gaps, and
// an unsharded executor afterwards replays the union without
// simulating.
func TestExecutorShardsPartitionExactly(t *testing.T) {
	dir := t.TempDir()
	specs := testSpecs(microScale())

	var simulated uint64
	for i := 0; i < 2; i++ {
		e := storedExec(t, dir, 2)
		e.SetShard(i, 2)
		e.RunBatch(specs)
		if got := int(e.Runs()) + e.Skipped() + e.Replays(); got != len(specs) {
			t.Fatalf("shard %d resolved %d cells (runs+skipped+replays), want %d", i, got, len(specs))
		}
		simulated += e.Runs()
	}
	if simulated != uint64(len(specs)) {
		t.Fatalf("shards simulated %d cells total, want exactly %d (no overlap, no gaps)",
			simulated, len(specs))
	}

	merge := storedExec(t, dir, 2)
	res := merge.RunBatch(specs)
	if merge.Runs() != 0 {
		t.Fatalf("merge run simulated %d cells, want 0", merge.Runs())
	}
	for i, r := range res {
		if r.Cycles == 0 {
			t.Fatalf("merged result %d is zero — a shard dropped it", i)
		}
	}
}

// TestExecutorShardSkipsAreZero: without a shared store, a sharded
// executor leaves non-owned cells zero-valued and counts them skipped.
func TestExecutorShardSkipsAreZero(t *testing.T) {
	specs := testSpecs(microScale())
	e := NewExecutor(2)
	e.SetShard(0, 2)
	res := e.RunBatch(specs)
	if e.Skipped() == 0 && e.Runs() == uint64(len(specs)) {
		t.Skip("shard 0/2 happens to own every test spec; partition asserted elsewhere")
	}
	zeros := 0
	for _, r := range res {
		if r.Cycles == 0 {
			zeros++
		}
	}
	if zeros != e.Skipped() {
		t.Fatalf("%d zero results for %d skipped cells", zeros, e.Skipped())
	}
}

// failingBackend rejects every spec.
type failingBackend struct{}

func (failingBackend) Run(context.Context, wire.Spec) (RunResult, error) {
	return RunResult{}, errors.New("fleet unreachable")
}

// TestExecutorBackendErrorPoisons: a backend failure must not hang the
// batch (in-flight claims are released) and must poison the executor so
// later batches short-circuit instead of re-dialing a dead fleet.
func TestExecutorBackendErrorPoisons(t *testing.T) {
	e := NewExecutorWith(2, failingBackend{})
	specs := testSpecs(microScale())
	done := make(chan []RunResult, 1)
	go func() { done <- e.RunBatch(specs) }()
	select {
	case res := <-done:
		for i, r := range res {
			if r.Cycles != 0 {
				t.Fatalf("failed batch returned a non-zero result at %d", i)
			}
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RunBatch hung after backend failure")
	}
	if e.Err() == nil {
		t.Fatal("backend failure did not poison the executor")
	}
	if e.RunBatch(specs[:1]); e.Runs() != 0 {
		t.Fatal("poisoned executor kept dispatching")
	}
}

// TestBatchResultBeforeExecPanics: reading a pending handle before the
// batch executes is a planning bug and must fail loudly.
func TestBatchResultBeforeExecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("pending.result before exec did not panic")
		}
	}()
	s := NewSession(tinyScale())
	b := s.batch()
	p := b.add(singleSpec(baselineOpts(), workload.SingleCorePairs()[0], 300_000))
	p.result()
}

// TestAttackSpecFromWireRejectsGarbage: attack-kind validation — a
// worker must refuse what it cannot faithfully execute, including
// single-only attacks requested on SMT (the runner would silently
// measure the single-threaded variant under an SMT cache key).
func TestAttackSpecFromWireRejectsGarbage(t *testing.T) {
	good := specToWire(attackRunSpec(AttackJob{
		Attack:   "reference",
		Opts:     core.OptionsFor(core.XOR),
		Scenario: attack.SingleThreaded,
		Trials:   100,
		Seed:     1,
	}))
	if _, err := specFromWire(good); err != nil {
		t.Fatalf("specFromWire rejected a valid attack spec: %v", err)
	}
	breakers := map[string]func(*wire.Spec){
		"attack name":        func(w *wire.Spec) { w.Attack.Name = "rowhammer" },
		"scenario":           func(w *wire.Spec) { w.Attack.Scenario = "quad" },
		"single-only on SMT": func(w *wire.Spec) { w.Attack.Scenario = "SMT" },
		"trials":             func(w *wire.Spec) { w.Attack.Trials = 0 },
		"pred":               func(w *wire.Spec) { w.Pred = "oracle" },
		"no payload":         func(w *wire.Spec) { w.Attack = nil },
	}
	for name, mutate := range breakers {
		w := good
		if w.Attack != nil {
			cp := *good.Attack
			w.Attack = &cp
		}
		mutate(&w)
		if _, err := specFromWire(w); err == nil {
			t.Errorf("specFromWire accepted an attack spec with a bad %s", name)
		}
	}
}

// TestRunAttackBatchDeduplicates: identical attack jobs resolve once.
func TestRunAttackBatchDeduplicates(t *testing.T) {
	e := NewExecutor(2)
	job := AttackJob{Attack: "btb_training", Opts: core.OptionsFor(core.Baseline),
		Scenario: attack.SingleThreaded, Trials: 50, Seed: 9}
	outs := e.RunAttackBatch([]AttackJob{job, job, job})
	if e.Runs() != 1 {
		t.Fatalf("3 identical jobs executed %d times, want 1", e.Runs())
	}
	if outs[0] != outs[1] || outs[1] != outs[2] {
		t.Fatalf("identical jobs disagree: %+v", outs)
	}
	if outs[0].Trials != 50 {
		t.Fatalf("outcome = %+v, want 50 counted trials", outs[0])
	}
}
