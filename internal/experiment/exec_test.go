package experiment

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"xorbp/internal/core"
	"xorbp/internal/workload"
)

// TestParallelMatchesSerial is the engine's core guarantee: the same
// figure rendered through a 1-worker executor and a many-worker executor
// must be byte-identical, because every simulation is a pure function of
// its spec.
func TestParallelMatchesSerial(t *testing.T) {
	scale := microScale()
	serial := NewSessionWith(scale, NewExecutor(1)).Figure1().Render()
	parallel := NewSessionWith(scale, NewExecutor(8)).Figure1().Render()
	if serial != parallel {
		t.Fatalf("parallel Figure 1 differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}

// TestExecutorDedupsWithinBatch: a spec submitted several times in one
// batch simulates exactly once, and every copy gets the same result.
func TestExecutorDedupsWithinBatch(t *testing.T) {
	e := NewExecutor(4)
	spec := singleSpec(baselineOpts(), workload.SingleCorePairs()[0], 300_000)
	spec.scale = tinyScale()
	res := e.RunBatch([]runSpec{spec, spec, spec})
	if got := e.Runs(); got != 1 {
		t.Fatalf("executor simulated %d times, want 1 (within-batch dedup)", got)
	}
	if res[0].Cycles == 0 || res[0].Cycles != res[2].Cycles || res[0].Target != res[2].Target {
		t.Fatalf("duplicate specs returned different results: %+v vs %+v", res[0], res[2])
	}
}

// TestExecutorSharesBaselinesAcrossFigures: Figures 7 and 9 both need the
// single-core baselines for every pair and period. Running Figure 9 after
// Figure 7 on a shared executor must add only Figure 9's mechanism runs —
// the 36 baselines (12 pairs x 3 periods) come from cache.
func TestExecutorSharesBaselinesAcrossFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	s := sharedSession() // warm the shared cache too, while we're at it
	s.Figure7()
	after7 := s.Executor().Runs()
	s.Figure9()
	added := s.Executor().Runs() - after7
	// Figure 9 needs 12 pairs x 3 periods x 2 mechanisms = 72 scoped runs;
	// its 36 baselines must all be cache hits from Figure 7.
	if added != 72 {
		t.Fatalf("Figure 9 after Figure 7 simulated %d new runs, want 72 (baselines must be shared)", added)
	}
}

// TestExecutorConcurrentBatchesShareWork: two batches racing on a shared
// executor must simulate an overlapping spec once — whichever batch
// claims it runs it, the other waits on the in-flight marker.
func TestExecutorConcurrentBatchesShareWork(t *testing.T) {
	e := NewExecutor(2)
	spec := singleSpec(baselineOpts(), workload.SingleCorePairs()[0], 300_000)
	spec.scale = microScale()
	results := make([][]RunResult, 2)
	var wg sync.WaitGroup
	for g := range results {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[g] = e.RunBatch([]runSpec{spec})
		}()
	}
	wg.Wait()
	if got := e.Runs(); got != 1 {
		t.Fatalf("concurrent batches simulated %d times, want 1", got)
	}
	if results[0][0].Cycles == 0 || results[0][0].Cycles != results[1][0].Cycles {
		t.Fatalf("concurrent batches disagree: %+v vs %+v", results[0][0], results[1][0])
	}
}

// TestRunKeyDistinguishesOptionFields guards the comparable cache key:
// specs differing in any Options field, the timer, or the thread list map
// to distinct keys, while an identical spec maps to the same key.
func TestRunKeyDistinguishesOptionFields(t *testing.T) {
	base := singleSpec(baselineOpts(), workload.SingleCorePairs()[0], 300_000)
	base.scale = tinyScale()

	same := base
	if specKey(same) != specKey(base) {
		t.Fatal("identical specs produced different keys")
	}

	variants := map[string]func(*runSpec){
		"mechanism": func(s *runSpec) { s.opts.Mechanism = core.NoisyXOR },
		"scope":     func(s *runSpec) { s.opts.Scope = core.StructBTB },
		"enhanced":  func(s *runSpec) { s.opts.EnhancedPHT = !s.opts.EnhancedPHT },
		"rotate":    func(s *runSpec) { s.opts.RotateOnPrivilege = !s.opts.RotateOnPrivilege },
		"flushpriv": func(s *runSpec) { s.opts.FlushOnPrivilege = !s.opts.FlushOnPrivilege },
		"codec":     func(s *runSpec) { s.opts.Codec = core.RotXORCodec{} },
		"scrambler": func(s *runSpec) { s.opts.Scrambler = core.FeistelScrambler{} },
		"pred":      func(s *runSpec) { s.predName = "gshare" },
		"timer":     func(s *runSpec) { s.timer = 123_456 },
		"names":     func(s *runSpec) { s.names = []string{"gcc", "mcf"} },
		"seed":      func(s *runSpec) { s.scale.Seed = 99 },
	}
	for name, mutate := range variants {
		v := base
		v.names = append([]string(nil), base.names...)
		mutate(&v)
		if specKey(v) == specKey(base) {
			t.Errorf("variant %q aliases the base key", name)
		}
	}
}

// TestRunKeyNormalizesDefaults: zero-valued Codec/Scrambler/Scope and
// the explicit paper defaults run identically (the controller normalizes
// them), so they must share one cache entry.
func TestRunKeyNormalizesDefaults(t *testing.T) {
	pair := workload.SingleCorePairs()[0]
	implicit := singleSpec(core.OptionsFor(core.NoisyXOR), pair, 300_000) // Scope 0
	explicit := implicit
	explicit.opts.Scope = core.StructAll
	explicit.opts.Codec = core.XORCodec{}
	explicit.opts.Scrambler = core.XORScrambler{}
	nilIfaces := implicit
	nilIfaces.opts.Codec = nil
	nilIfaces.opts.Scrambler = nil
	if specKey(implicit) != specKey(explicit) || specKey(implicit) != specKey(nilIfaces) {
		t.Fatal("semantically identical option spellings map to different cache keys")
	}
}

// TestExecutorProgress: the progress writer gets one serialized line per
// executed simulation, none for cache hits.
func TestExecutorProgress(t *testing.T) {
	e := NewExecutor(2)
	var buf bytes.Buffer
	e.SetProgress(&buf)
	s := NewSessionWith(tinyScale(), e)
	pair := workload.SingleCorePairs()[0]
	s.run(singleSpec(baselineOpts(), pair, 300_000))
	s.run(singleSpec(baselineOpts(), pair, 300_000)) // cache hit: no line
	s.run(singleSpec(figure1CF(), pair, 300_000))
	lines := strings.Count(buf.String(), "\n")
	if lines != 2 {
		t.Fatalf("progress emitted %d lines, want 2:\n%s", lines, buf.String())
	}
	if !strings.Contains(buf.String(), "CompleteFlush") {
		t.Fatalf("progress lines missing mechanism label:\n%s", buf.String())
	}
}

// TestBatchResultBeforeExecPanics: reading a pending handle before the
// batch executes is a planning bug and must fail loudly.
func TestBatchResultBeforeExecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("pending.result before exec did not panic")
		}
	}()
	s := NewSession(tinyScale())
	b := s.batch()
	p := b.add(singleSpec(baselineOpts(), workload.SingleCorePairs()[0], 300_000))
	p.result()
}
