package experiment

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"xorbp/internal/runcache"
	"xorbp/internal/wire"
	"xorbp/internal/workload"
)

// storedExec opens (or reopens) a store on dir under the current schema
// and attaches it to a fresh executor.
func storedExec(t *testing.T, dir string, workers int) *Executor {
	t.Helper()
	st, err := runcache.Open(dir, SchemaVersion())
	if err != nil {
		t.Fatal(err)
	}
	e := NewExecutor(workers)
	e.SetStore(st)
	return e
}

// testSpecs is a small distinct-spec batch for store tests.
func testSpecs(scale Scale) []runSpec {
	pairs := workload.SingleCorePairs()
	specs := []runSpec{
		singleSpec(baselineOpts(), pairs[0], 300_000),
		singleSpec(figure1CF(), pairs[0], 300_000),
		singleSpec(baselineOpts(), pairs[1], 300_000),
	}
	for i := range specs {
		specs[i].scale = scale
	}
	return specs
}

// TestExecutorStoreRoundTrip is the tentpole's core guarantee: a second
// executor (a later process) backed by the same cache directory resolves
// an identical batch with zero simulations and identical results.
func TestExecutorStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	specs := testSpecs(microScale())

	e1 := storedExec(t, dir, 2)
	first := e1.RunBatch(specs)
	if got := e1.Runs(); got != uint64(len(specs)) {
		t.Fatalf("cold store executed %d runs, want %d", got, len(specs))
	}

	e2 := storedExec(t, dir, 2)
	second := e2.RunBatch(specs)
	if got := e2.Runs(); got != 0 {
		t.Fatalf("warm store executed %d runs, want 0", got)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("replayed results differ:\n%+v\nvs\n%+v", first, second)
	}
}

// TestExecutorStoreSchemaMismatch: entries written under another schema
// version are invisible — the executor re-simulates rather than aliasing
// them.
func TestExecutorStoreSchemaMismatch(t *testing.T) {
	dir := t.TempDir()
	specs := testSpecs(microScale())
	storedExec(t, dir, 2).RunBatch(specs)

	stale, err := runcache.Open(dir, "some-older-schema")
	if err != nil {
		t.Fatal(err)
	}
	e := NewExecutor(2)
	e.SetStore(stale)
	e.RunBatch(specs)
	if got := e.Runs(); got != uint64(len(specs)) {
		t.Fatalf("schema-mismatched store replayed entries: %d runs, want %d",
			got, len(specs))
	}
}

// TestExecutorsConcurrentSharedCacheDir: two executors, each with its
// own Store handle on one directory (two concurrent bpsim processes),
// run overlapping batches under -race; afterwards a third executor
// replays the union without simulating.
func TestExecutorsConcurrentSharedCacheDir(t *testing.T) {
	dir := t.TempDir()
	specs := testSpecs(microScale())
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		e := storedExec(t, dir, 2)
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.RunBatch(specs)
		}()
	}
	wg.Wait()

	e := storedExec(t, dir, 2)
	e.RunBatch(specs)
	if got := e.Runs(); got != 0 {
		t.Fatalf("after concurrent writers, replay executed %d runs, want 0", got)
	}
	if n := e.Store().Len(); n != len(specs) {
		t.Fatalf("shared dir holds %d entries, want %d", n, len(specs))
	}
}

// TestRunRecords: the record hook sees one Cached=false record per
// simulation, one Cached=true record per store replay, and nothing for
// in-process memo hits.
func TestRunRecords(t *testing.T) {
	dir := t.TempDir()
	spec := testSpecs(microScale())[0]

	var mu sync.Mutex
	var recs []RunRecord
	collect := func(r RunRecord) { mu.Lock(); recs = append(recs, r); mu.Unlock() }

	e1 := storedExec(t, dir, 2)
	e1.SetRecord(collect)
	e1.RunBatch([]runSpec{spec})
	e1.RunBatch([]runSpec{spec}) // memo hit: no record
	if len(recs) != 1 || recs[0].Cached || recs[0].Cycles == 0 ||
		recs[0].DurationMS <= 0 || recs[0].Key == "" ||
		!strings.Contains(recs[0].Label, "Baseline") {
		t.Fatalf("cold-run records = %+v, want one uncached record", recs)
	}

	recs = nil
	e2 := storedExec(t, dir, 2)
	e2.SetRecord(collect)
	e2.RunBatch([]runSpec{spec})
	if len(recs) != 1 || !recs[0].Cached || recs[0].Cycles == 0 {
		t.Fatalf("warm-run records = %+v, want one cached record", recs)
	}
	if e2.Runs() != 0 {
		t.Fatalf("warm run simulated %d times", e2.Runs())
	}
}

// TestPlannerDeclaresGrid: a planning session enumerates Figure 1's full
// grid (12 pairs x 3 periods x {baseline, flush} = 72 distinct specs)
// without simulating, and Plan transfers it to a real executor's
// denominator.
func TestPlannerDeclaresGrid(t *testing.T) {
	planner := NewPlanner()
	NewSessionWith(microScale(), planner).Figure1()
	if planner.Runs() != 0 {
		t.Fatalf("planner simulated %d times", planner.Runs())
	}
	e := NewExecutor(1)
	if got := e.Plan(planner); got != 72 {
		t.Fatalf("planned %d distinct specs, want 72", got)
	}
	if e.Planned() != 72 || e.Done() != 0 {
		t.Fatalf("Planned/Done = %d/%d, want 72/0", e.Planned(), e.Done())
	}
}

// TestProgressCountsOverPlannedGrid: with a pre-declared plan, progress
// lines report done/total over the whole grid, not the current batch.
func TestProgressCountsOverPlannedGrid(t *testing.T) {
	planner := NewPlanner()
	scale := microScale()
	specs := testSpecs(scale)
	planner.RunBatch(specs)

	e := NewExecutor(1)
	var buf strings.Builder
	e.SetProgress(&buf)
	e.Plan(planner)
	e.RunBatch(specs[:1]) // first batch resolves 1 of the 3 planned
	out := buf.String()
	if !strings.Contains(out, "[run 1/3]") {
		t.Fatalf("progress not counted over the planned grid:\n%s", out)
	}
	if !strings.Contains(out, " eta ") {
		t.Fatalf("progress line missing ETA while backlog remains:\n%s", out)
	}
}

// TestProgressETAWarmRun: planning against a warm store must exclude
// store-resident cells from the ETA backlog. With every planned cell
// but one already stored, the single cold simulation's progress line
// reports the grid position with NO eta — the old throughput estimate
// extrapolated one sample over hundreds of cells that were about to
// replay in microseconds.
func TestProgressETAWarmRun(t *testing.T) {
	dir := t.TempDir()
	specs := testSpecs(microScale())
	storedExec(t, dir, 2).RunBatch(specs[1:]) // warm all but specs[0]

	planner := NewPlanner()
	planner.RunBatch(specs)

	e := storedExec(t, dir, 1)
	var buf strings.Builder
	e.SetProgress(&buf)
	e.Plan(planner)
	e.RunBatch(specs[:1]) // the one cold cell, first batch of the session
	out := buf.String()
	if !strings.Contains(out, "[run 1/3]") {
		t.Fatalf("cold cell not counted over the planned grid:\n%s", out)
	}
	if strings.Contains(out, " eta ") {
		t.Fatalf("warm run printed a bogus ETA over store-resident cells:\n%s", out)
	}
}

// TestProgressAllCacheHit: a fully warm run simulates nothing and must
// print no progress lines (and, trivially, no throughput estimate).
func TestProgressAllCacheHit(t *testing.T) {
	dir := t.TempDir()
	specs := testSpecs(microScale())
	storedExec(t, dir, 2).RunBatch(specs)

	planner := NewPlanner()
	planner.RunBatch(specs)
	e := storedExec(t, dir, 2)
	var buf strings.Builder
	e.SetProgress(&buf)
	e.Plan(planner)
	e.RunBatch(specs)
	if got := buf.String(); got != "" {
		t.Fatalf("all-hit warm run printed progress lines:\n%s", got)
	}
	if e.Runs() != 0 || e.Replays() != len(specs) {
		t.Fatalf("runs/replays = %d/%d, want 0/%d", e.Runs(), e.Replays(), len(specs))
	}
}

// TestSchemaVersionIsWireSchema: the engine's cache schema IS the wire
// schema — a bpserve worker, a sharded bpsim and a local run sharing a
// cache directory must agree on keys. (The version string's structure
// is asserted in the wire package's own tests.)
func TestSchemaVersionIsWireSchema(t *testing.T) {
	if SchemaVersion() != wire.SchemaVersion() {
		t.Fatalf("experiment schema %q != wire schema %q",
			SchemaVersion(), wire.SchemaVersion())
	}
}
