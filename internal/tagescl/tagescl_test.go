package tagescl

import (
	"testing"

	"xorbp/internal/core"
	"xorbp/internal/gshare"
	"xorbp/internal/rng"
)

func ctrl(m core.Mechanism) *core.Controller {
	return core.NewController(core.OptionsFor(m), 1)
}

func d(t core.HWThread) core.Domain { return core.Domain{Thread: t, Priv: core.User} }

func train(p *TAGESCL, dom core.Domain, pc uint64, taken bool, n int) {
	for i := 0; i < n; i++ {
		p.Predict(dom, pc)
		p.Update(dom, pc, taken)
	}
}

func TestLearnsBiasedBranch(t *testing.T) {
	for _, m := range []core.Mechanism{core.Baseline, core.NoisyXOR} {
		p := New(Gem5Config(), ctrl(m))
		train(p, d(0), 0x400100, true, 20)
		if !p.Predict(d(0), 0x400100) {
			t.Errorf("%v: biased branch not learned", m)
		}
	}
}

func TestLoopOverride(t *testing.T) {
	// Fixed trip-count loop: TAGE-SC-L predicts the exit once the loop
	// predictor is confident.
	p := New(Gem5Config(), ctrl(core.Baseline))
	pc := uint64(0x400200)
	exitRight, exits := 0, 0
	for rep := 0; rep < 60; rep++ {
		for it := 0; it < 23; it++ {
			p.Predict(d(0), pc)
			p.Update(d(0), pc, true)
		}
		got := p.Predict(d(0), pc)
		if rep >= 20 {
			exits++
			if !got {
				exitRight++
			}
		}
		p.Update(d(0), pc, false)
	}
	if exitRight < exits*9/10 {
		t.Fatalf("loop exits predicted %d/%d, want >=90%%", exitRight, exits)
	}
}

func TestStatCorrectorHelpsBiasedNoise(t *testing.T) {
	// A branch that is 80% taken with no usable pattern: the statistical
	// corrector should converge near the bias rate rather than thrash.
	p := New(Gem5Config(), ctrl(core.Baseline))
	g := rng.NewXoshiro256(5)
	pc := uint64(0x400300)
	correct, total := 0, 0
	for i := 0; i < 20000; i++ {
		taken := g.Bool(0.8)
		got := p.Predict(d(0), pc)
		if i > 5000 {
			total++
			if got == taken {
				correct++
			}
		}
		p.Update(d(0), pc, taken)
	}
	acc := float64(correct) / float64(total)
	if acc < 0.72 {
		t.Fatalf("accuracy %.3f on 80%%-biased noise, want >=0.72", acc)
	}
}

func TestMoreAccurateThanGshareOnMixedWorkload(t *testing.T) {
	// The paper's §6.3 accuracy ordering on a mixed synthetic stream:
	// TAGE_SC_L must beat Gshare.
	cs := ctrl(core.Baseline)
	cg := ctrl(core.Baseline)
	ps := New(Gem5Config(), cs)
	pg := gshare.New(gshare.Gem5Config(), cg)
	g := rng.NewXoshiro256(11)

	missS, missG, total := 0, 0, 0
	pattern := []bool{true, true, false, true, false, false, true, true, true, false}
	step := 0
	for i := 0; i < 60000; i++ {
		var pc uint64
		var taken bool
		switch i % 4 {
		case 0: // loop-ish branch, 9 taken 1 not
			pc = 0x400100
			taken = i%40 != 36
		case 1: // long pattern branch
			pc = 0x400200
			taken = pattern[step%len(pattern)]
			step++
		case 2: // correlated with the pattern branch
			pc = 0x400300
			taken = pattern[(step+len(pattern)-1)%len(pattern)]
		default: // biased random
			pc = 0x400000 + uint64(g.Intn(64))*4
			taken = g.Bool(0.7)
		}
		if i > 20000 {
			total++
			if ps.Predict(d(0), pc) != taken {
				missS++
			}
			if pg.Predict(d(0), pc) != taken {
				missG++
			}
		} else {
			ps.Predict(d(0), pc)
			pg.Predict(d(0), pc)
		}
		ps.Update(d(0), pc, taken)
		pg.Update(d(0), pc, taken)
	}
	if missS >= missG {
		t.Fatalf("TAGE_SC_L mispredicts %d >= Gshare %d on mixed stream", missS, missG)
	}
}

func TestKeyRotationForcesRetrain(t *testing.T) {
	// Training must run long enough for every corrector index to reach
	// steady state (runLen cap 31, longest fold 33) so the garbage
	// counters at freshly-touched indexes are all overwritten.
	c := ctrl(core.NoisyXOR)
	p := New(Gem5Config(), c)
	pc := uint64(0x400400)
	train(p, d(0), pc, true, 120)
	if !p.Predict(d(0), pc) {
		t.Fatal("training failed")
	}
	c.ContextSwitch(0)
	train(p, d(0), pc, true, 120)
	if !p.Predict(d(0), pc) {
		t.Fatal("did not recover after key rotation")
	}
}

func TestFlushViaController(t *testing.T) {
	c := ctrl(core.CompleteFlush)
	p := New(Gem5Config(), c)
	train(p, d(0), 0x400500, true, 60)
	c.ContextSwitch(0)
	train(p, d(0), 0x400500, false, 12)
	if p.Predict(d(0), 0x400500) {
		t.Fatal("state survived complete flush")
	}
}

func TestStorageBudget(t *testing.T) {
	p := New(Gem5Config(), ctrl(core.Baseline))
	kb := float64(p.StorageBits()) / 8192
	// Paper: 66.6 KB. Accept the ballpark.
	if kb < 45 || kb > 90 {
		t.Fatalf("TAGE_SC_L storage %.1f KB, want ~66 KB", kb)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() int {
		p := New(Gem5Config(), ctrl(core.NoisyXOR))
		g := rng.NewXoshiro256(17)
		correct := 0
		for i := 0; i < 3000; i++ {
			pc := uint64(0x400000 + (i%61)*4)
			taken := g.Bool(0.6)
			if p.Predict(d(0), pc) == taken {
				correct++
			}
			p.Update(d(0), pc, taken)
		}
		return correct
	}
	if run() != run() {
		t.Fatal("TAGE-SC-L simulation is not deterministic")
	}
}
