// Package tagescl implements TAGE_SC_L (Seznec [40]), the most accurate
// predictor evaluated in the paper (66.6 KB in the gem5 configuration):
// a TAGE core, the loop predictor, and a Multi-GEHL statistical corrector
// combining global-history, recent-run (IMLI-like) and local-history
// components (Figure 6b).
//
// Every table — TAGE's, the loop predictor's, the corrector's GEHL tables
// and the local history table — is accessed through the isolation guard:
// contents encoded with the domain's content key, indexes scrambled with
// its index key, exactly as Figure 6(b) draws.
//
// Substitution note (DESIGN.md §2): the reference TAGE-SC-L derives its
// backward-branch and IMLI components from branch *targets*, which the
// direction-predictor interface does not carry; those components are
// approximated by a taken-run-length (IMLI-like) history. This preserves
// the relevant property — TAGE_SC_L is the most accurate and therefore
// pays the largest isolation cost (§6.3 observation 3).
package tagescl

import (
	"xorbp/internal/bitutil"
	"xorbp/internal/core"
	"xorbp/internal/predictor"
	"xorbp/internal/snap"
	"xorbp/internal/store"
	"xorbp/internal/tage"
)

const pcShift = 2

// Config sizes the TAGE-SC-L predictor.
type Config struct {
	// TAGE is the core configuration.
	TAGE tage.Config
	// SCIndexBits is log2 of each GEHL component table.
	SCIndexBits uint
	// SCCtrBits is the GEHL counter width.
	SCCtrBits uint
	// GlobalLens are the global-history lengths of the GEHL components.
	GlobalLens []uint
	// LocalBits is the per-branch local history length of the local GEHL
	// components; the local history table has 256 entries (Figure 6b).
	LocalBits uint
}

// Gem5Config is the paper's 66.6 KB TAGE_SC_L.
func Gem5Config() Config {
	return Config{
		TAGE: tage.Config{
			Name:     "tage_sc_l",
			BaseBits: 13,
			// Approximates the paper's bank-interleaved organization (ten
			// 1K banks of 12-bit entries + twenty 1K banks of 16-bit
			// entries) with eight 1K short-history tables and eight 2K
			// long-history tables — the same ~66 KB budget and history
			// reach.
			TableBits: []uint{10, 10, 10, 10, 10, 10, 10, 10, 11, 11, 11, 11, 11, 11, 11, 11},
			TagBits:   []uint{8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13, 14, 14, 15, 15},
			// The first twelve lengths match LTAGE's ladder; four longer
			// tables extend the reach (the paper's 3000-bit history is
			// scaled with the table budget).
			HistLengths: []uint{
				4, 6, 10, 16, 25, 40, 64, 101, 160, 254, 403,
				640, 880, 1200, 1600, 1800,
			},
			UResetPeriod: 256 * 1024,
			Loop:         tage.DefaultLoopConfig(),
			Seed:         0x5c1,
		},
		SCIndexBits: 11,
		SCCtrBits:   6,
		GlobalLens:  []uint{13, 33},
		LocalBits:   11,
	}
}

// scThread is the per-hardware-thread corrector state.
type scThread struct {
	hist   *bitutil.History // corrector's own global history
	folds  []bitutil.Folded // per global component (by value: hot update loop)
	runLen uint64           // IMLI-like: current taken-run length
}

// scScratch carries predict-time corrector state to the update.
type scScratch struct {
	sum      int
	thrUsed  int
	scPred   bool
	tagePred bool
	loopUsed bool
	final    bool
	idx      []uint64 // per component, physical indexes
}

// TAGESCL is the predictor.
type TAGESCL struct {
	cfg Config
	t   *tage.TAGE

	guards []*core.Guard
	tables []*store.WordArray // component counter tables
	nComp  int                // bias + len(GlobalLens) + run + 1 local

	guardLH   *core.Guard
	localHist *store.WordArray // 256 x LocalBits

	threshold int
	tc        bitutil.SignedCounter

	threads [core.MaxHWThreads]*scThread
	scratch [core.MaxHWThreads]*scScratch
}

// New builds a TAGE-SC-L predictor registered for flush events.
func New(cfg Config, ctrl *core.Controller) *TAGESCL {
	p := &TAGESCL{
		cfg:       cfg,
		t:         tage.New(cfg.TAGE, ctrl),
		guardLH:   ctrl.Guard(0x5c1f, core.StructPHT),
		threshold: 6,
		tc:        bitutil.NewSignedCounter(6, 0),
	}
	p.nComp = 1 + len(cfg.GlobalLens) + 1 + 1 // bias, globals, run, local
	for i := 0; i < p.nComp; i++ {
		g := ctrl.Guard(0x5c00+uint64(i), core.StructPHT)
		p.guards = append(p.guards, g)
		// Counters stored biased by 2^(SCCtrBits-1); init to the midpoint
		// (logical zero).
		tab := store.NewWordArray(g, cfg.SCIndexBits, cfg.SCCtrBits, 1<<(cfg.SCCtrBits-1))
		p.tables = append(p.tables, tab)
		ctrl.Register(tab, core.StructPHT)
	}
	p.localHist = store.NewWordArray(p.guardLH, 8, cfg.LocalBits, 0)
	ctrl.Register(p.localHist, core.StructPHT)
	return p
}

// Name implements predictor.DirPredictor.
func (p *TAGESCL) Name() string { return p.cfg.TAGE.Name }

//bpvet:coldinit allocates once per hardware thread on first touch; every later call is a nil-checked array load
func (p *TAGESCL) state(th core.HWThread) *scThread {
	if p.threads[th] == nil {
		maxLen := uint(0)
		for _, l := range p.cfg.GlobalLens {
			if l > maxLen {
				maxLen = l
			}
		}
		ts := &scThread{hist: bitutil.NewHistory(maxLen + 1)}
		for _, l := range p.cfg.GlobalLens {
			ts.folds = append(ts.folds, *bitutil.NewFolded(l, p.cfg.SCIndexBits))
		}
		p.threads[th] = ts
		p.scratch[th] = &scScratch{idx: make([]uint64, p.nComp)}
	}
	return p.threads[th]
}

// ctrValue converts a stored biased counter to its signed value.
func (p *TAGESCL) ctrValue(stored uint64) int {
	return int(stored) - (1 << (p.cfg.SCCtrBits - 1))
}

// componentIndexes computes each component's physical table index.
func (p *TAGESCL) componentIndexes(ts *scThread, d core.Domain, pc uint64, idx []uint64) {
	b := p.cfg.SCIndexBits
	pcb := pc >> pcShift
	k := 0
	// Bias component: PC only.
	idx[k] = p.guards[k].ScrambleIndex(pcb&bitutil.Mask(b), d, b)
	k++
	// Global components: PC x folded global history.
	for i := range p.cfg.GlobalLens {
		logical := (pcb ^ ts.folds[i].Value() ^ (pcb >> 3)) & bitutil.Mask(b)
		idx[k] = p.guards[k].ScrambleIndex(logical, d, b)
		k++
	}
	// Run-length (IMLI-like) component.
	logical := (pcb ^ (ts.runLen << 4) ^ (ts.runLen >> 2)) & bitutil.Mask(b)
	idx[k] = p.guards[k].ScrambleIndex(logical, d, b)
	k++
	// Local component: PC x per-branch local history.
	lhIdx := p.guardLH.ScrambleIndex(pcb&bitutil.Mask(8), d, 8)
	lh := p.localHist.Get(d, lhIdx)
	logical = (pcb ^ (lh << 2) ^ lh) & bitutil.Mask(b)
	idx[k] = p.guards[k].ScrambleIndex(logical, d, b)
}

// Predict implements predictor.DirPredictor.
//
//bpvet:hotpath
func (p *TAGESCL) Predict(d core.Domain, pc uint64) bool {
	ts := p.state(d.Thread)
	s := p.scratch[d.Thread]

	s.tagePred = p.t.Predict(d, pc)
	s.loopUsed = p.t.ProviderIsLoop(d.Thread)
	if s.loopUsed {
		// A confident loop prediction is final (the "L" ordering).
		s.final = s.tagePred
		return s.final
	}

	p.componentIndexes(ts, d, pc, s.idx)
	sum := 0
	for k := 0; k < p.nComp; k++ {
		c := p.ctrValue(p.tables[k].Get(d, s.idx[k]))
		w := 1
		if k == 0 {
			// The PC-indexed bias component carries double weight, as in
			// the reference predictor's multiple bias tables.
			w = 2
		}
		sum += w * (2*c + 1)
	}
	// The TAGE prediction enters the sum weighted by its confidence.
	conf := p.t.LastConfidence(d.Thread)
	bias := 4 * (1 + conf)
	if s.tagePred {
		sum += bias
	} else {
		sum -= bias
	}
	s.sum = sum
	s.thrUsed = p.threshold
	s.scPred = sum >= 0

	if abs(sum) >= p.threshold {
		s.final = s.scPred
	} else {
		s.final = s.tagePred
	}
	return s.final
}

// Update implements predictor.DirPredictor.
//
//bpvet:hotpath
func (p *TAGESCL) Update(d core.Domain, pc uint64, taken bool) {
	ts := p.state(d.Thread)
	s := p.scratch[d.Thread]

	if !s.loopUsed {
		// Threshold adaptation: when SC and TAGE disagreed, track which
		// was right. The rise is deliberately much faster than the decay:
		// after a key rotation the corrector tables decode as large-
		// magnitude noise, and the threshold must outrun the garbage sums
		// quickly so TAGE regains control while the counters retrain (the
		// role Seznec's adaptive update threshold plays in the reference
		// predictor).
		if s.scPred != s.tagePred {
			if s.scPred == taken {
				p.tc.Update(true)
				if p.tc.Value() == p.tc.Max() {
					if p.threshold > 4 {
						p.threshold--
					}
					p.tc.Set(0)
				}
			} else if abs(s.sum) >= s.thrUsed {
				// Only a wrong *override* escalates: the fast rise exists
				// to strip garbage counters of their veto, not to punish
				// weak sums that never won.
				p.threshold += 4
				if p.threshold > 300 {
					p.threshold = 300
				}
			} else {
				p.tc.Update(false)
				if p.tc.Value() == p.tc.Min() {
					p.threshold++
					p.tc.Set(0)
				}
			}
		}
		// Train components whenever the corrector itself was wrong or the
		// sum was weak (the reference update rule; keying on the
		// corrector's own prediction washes out stale counters quickly,
		// which matters after a key rotation leaves them as noise).
		if s.scPred != taken || abs(s.sum) < s.thrUsed {
			for k := 0; k < p.nComp; k++ {
				p.tables[k].Update(d, s.idx[k], func(v uint64) uint64 {
					c := p.ctrValue(v)
					if taken {
						if c < (1<<(p.cfg.SCCtrBits-1))-1 {
							c++
						}
					} else if c > -(1 << (p.cfg.SCCtrBits - 1)) {
						c--
					}
					return uint64(c + (1 << (p.cfg.SCCtrBits - 1)))
				})
			}
		}
		// Per-branch local history.
		pcb := pc >> pcShift
		lhIdx := p.guardLH.ScrambleIndex(pcb&bitutil.Mask(8), d, 8)
		p.localHist.Update(d, lhIdx, func(v uint64) uint64 {
			return (v<<1 | b2u(taken)) & bitutil.Mask(p.cfg.LocalBits)
		})
	}

	// TAGE core update (also advances its own histories and the loop
	// predictor).
	p.t.Update(d, pc, taken)

	// Corrector histories.
	ts.hist.Push(taken)
	for i := range ts.folds {
		ts.folds[i].Update(ts.hist)
	}
	// IMLI-like counter, capped so long runs map to a stable index (index
	// reuse is what lets the component retrain after a key rotation).
	if taken {
		if ts.runLen < 31 {
			ts.runLen++
		}
	} else {
		ts.runLen = 0
	}
}

// Flush handling: every constituent table (TAGE's, the loop predictor's,
// the SC tables, the local history table) registers its own flusher with
// the controller at construction, so flush events reach them directly.

// Snapshot writes the TAGE core, the corrector tables and local history,
// the adaptive threshold state, and each lazily-created thread's corrector
// history (scratch is predict-to-update carry state, dead at cycle
// boundaries).
func (p *TAGESCL) Snapshot(w *snap.Writer) {
	p.t.Snapshot(w)
	for _, tab := range p.tables {
		tab.Snapshot(w)
	}
	p.localHist.Snapshot(w)
	w.I64(int64(p.threshold))
	p.tc.Snapshot(w)
	for th := range p.threads {
		ts := p.threads[th]
		w.Bool(ts != nil)
		if ts == nil {
			continue
		}
		ts.hist.Snapshot(w)
		for i := range ts.folds {
			ts.folds[i].Snapshot(w)
		}
		w.U64(ts.runLen)
	}
}

// Restore replaces the predictor's mutable state, recreating thread
// states through the lazy constructor so geometry always matches.
func (p *TAGESCL) Restore(r *snap.Reader) {
	p.t.Restore(r)
	for _, tab := range p.tables {
		tab.Restore(r)
	}
	p.localHist.Restore(r)
	p.threshold = int(r.I64())
	p.tc.Restore(r)
	for th := range p.threads {
		if !r.Bool() {
			p.threads[th] = nil
			p.scratch[th] = nil
			continue
		}
		ts := p.state(core.HWThread(th))
		ts.hist.Restore(r)
		for i := range ts.folds {
			ts.folds[i].Restore(r)
		}
		ts.runLen = r.U64()
	}
}

// StorageBits implements predictor.DirPredictor.
func (p *TAGESCL) StorageBits() uint64 {
	total := p.t.StorageBits() + p.localHist.StorageBits()
	for _, tab := range p.tables {
		total += tab.StorageBits()
	}
	return total
}

// Entries reports the logical entry count across TAGE, the corrector
// tables and the local history table (for the Precise Flush walk cost
// model).
func (p *TAGESCL) Entries() uint64 {
	n := p.t.Entries() + p.localHist.Len()
	for _, tab := range p.tables {
		n += tab.Len()
	}
	return n
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

var _ predictor.DirPredictor = (*TAGESCL)(nil)

// PredictUpdate implements predictor.PredictUpdater: the fused
// predict-then-train call the simulator dispatches once per conditional
// branch (identical to Predict followed by Update).
//
//bpvet:hotpath
func (p *TAGESCL) PredictUpdate(d core.Domain, pc uint64, taken bool) bool {
	pred := p.Predict(d, pc)
	p.Update(d, pc, taken)
	return pred
}

var _ predictor.PredictUpdater = (*TAGESCL)(nil)
