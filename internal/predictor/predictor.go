// Package predictor defines the common vocabulary of the branch
// prediction stack: branch classes, the direction-predictor interface
// every predictor implements, and per-structure statistics.
package predictor

import "xorbp/internal/core"

// Class categorizes a branch instruction. It determines which predictor
// structures are consulted and how mispredictions are penalized.
type Class uint8

// Branch classes.
const (
	// CondDirect is a conditional direct branch (PHT + BTB).
	CondDirect Class = iota
	// UncondDirect is an unconditional direct jump (BTB only; a miss is a
	// cheap decode-time redirect).
	UncondDirect
	// Indirect is an indirect jump (BTB provides the target; wrong target
	// is a full misprediction).
	Indirect
	// Call is a direct call (BTB + pushes the RAS).
	Call
	// IndirectCall is an indirect call (BTB target + pushes the RAS).
	IndirectCall
	// Return pops the RAS.
	Return
)

// String names the class.
func (c Class) String() string {
	switch c {
	case CondDirect:
		return "cond"
	case UncondDirect:
		return "jmp"
	case Indirect:
		return "ind"
	case Call:
		return "call"
	case IndirectCall:
		return "icall"
	case Return:
		return "ret"
	default:
		return "class?"
	}
}

// Conditional reports whether the class is direction-predicted.
func (c Class) Conditional() bool { return c == CondDirect }

// UsesBTB reports whether a taken branch of this class allocates in the
// BTB.
func (c Class) UsesBTB() bool { return c != Return }

// PushesRAS reports whether the class pushes a return address.
func (c Class) PushesRAS() bool { return c == Call || c == IndirectCall }

// DirPredictor is the contract every direction predictor implements.
//
// Contract: Update must be called after Predict for the same domain with
// no intervening Predict on that hardware thread; predictors may keep
// per-thread scratch state between the two calls (the prediction's
// provider metadata). The CPU model resolves each branch immediately
// after prediction, so this holds by construction.
type DirPredictor interface {
	// Name returns the predictor's configuration name (e.g. "tage_sc_l").
	Name() string
	// Predict returns the predicted direction of the conditional branch
	// at pc, executed by domain d.
	Predict(d core.Domain, pc uint64) bool
	// Update trains the predictor with the resolved outcome.
	Update(d core.Domain, pc uint64, taken bool)
	// StorageBits reports the modelled SRAM payload size.
	StorageBits() uint64
}

// PredictUpdater is an optional DirPredictor fast path: one call that
// performs Predict followed immediately by Update with the resolved
// outcome — the simulator's only access pattern (see the DirPredictor
// contract). The CPU model type-asserts for it once at construction and
// saves an interface dispatch per conditional branch. Implementations
// must behave exactly as Predict-then-Update; the engine equivalence
// suite relies on it.
type PredictUpdater interface {
	// PredictUpdate predicts the branch at pc, trains with the resolved
	// outcome, and returns the prediction.
	PredictUpdate(d core.Domain, pc uint64, taken bool) bool
}

// Stats accumulates direction-prediction accuracy per hardware thread.
type Stats struct {
	Lookups     uint64
	Mispredicts uint64
}

// Record adds one prediction outcome.
func (s *Stats) Record(correct bool) {
	s.Lookups++
	if !correct {
		s.Mispredicts++
	}
}

// Accuracy returns the fraction of correct predictions (1.0 when empty).
func (s *Stats) Accuracy() float64 {
	if s.Lookups == 0 {
		return 1.0
	}
	return 1.0 - float64(s.Mispredicts)/float64(s.Lookups)
}

// Add merges other into s.
func (s *Stats) Add(other Stats) {
	s.Lookups += other.Lookups
	s.Mispredicts += other.Mispredicts
}
