package predictor

import "testing"

func TestClassPredicates(t *testing.T) {
	if !CondDirect.Conditional() || UncondDirect.Conditional() {
		t.Fatal("Conditional predicate wrong")
	}
	if Return.UsesBTB() {
		t.Fatal("returns must not allocate in the BTB (RAS-predicted)")
	}
	for _, c := range []Class{CondDirect, UncondDirect, Indirect, Call, IndirectCall} {
		if !c.UsesBTB() {
			t.Errorf("%v should use the BTB", c)
		}
	}
	if !Call.PushesRAS() || !IndirectCall.PushesRAS() || Return.PushesRAS() {
		t.Fatal("PushesRAS predicate wrong")
	}
}

func TestClassStrings(t *testing.T) {
	names := map[Class]string{
		CondDirect: "cond", UncondDirect: "jmp", Indirect: "ind",
		Call: "call", IndirectCall: "icall", Return: "ret",
	}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
}

func TestStats(t *testing.T) {
	var s Stats
	if s.Accuracy() != 1.0 {
		t.Fatal("empty stats accuracy should be 1.0")
	}
	s.Record(true)
	s.Record(true)
	s.Record(false)
	if s.Lookups != 3 || s.Mispredicts != 1 {
		t.Fatalf("counts wrong: %+v", s)
	}
	if acc := s.Accuracy(); acc < 0.66 || acc > 0.67 {
		t.Fatalf("accuracy = %v, want 2/3", acc)
	}
	var other Stats
	other.Record(false)
	s.Add(other)
	if s.Lookups != 4 || s.Mispredicts != 2 {
		t.Fatalf("Add wrong: %+v", s)
	}
}
