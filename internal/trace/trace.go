// Package trace records and replays branch traces in a compact binary
// format. Traces decouple workload generation from simulation: a
// synthetic (or, in principle, externally captured) branch stream can be
// stored once and replayed bit-identically across experiments, predictor
// configurations and machines — the reproduction workflow gem5 users get
// from SimPoint checkpoints.
//
// Format (little-endian):
//
//	header:  magic "XBPT" | u16 version | u16 flags | u64 reserved
//	record:  u8 class+flags | uvarint pcDelta(zigzag) | uvarint gap
//	         | uvarint targetDelta(zigzag, taken records only)
//	end:     u8 0xFF | uvarint count
//
// PC and target are delta-encoded against the previous record's values;
// typical records take 3-6 bytes. The 0xFF sentinel (an invalid class
// nibble) terminates the stream and carries the record count for
// integrity checking.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"xorbp/internal/predictor"
	"xorbp/internal/workload"
)

// Magic identifies trace files.
const Magic = "XBPT"

// Version of the on-disk format.
const Version = 1

// cacheEpoch versions the record cache beyond the trace file format:
// bump it when workload generator semantics change (profile branch
// mixes, syscall rates, RNG draws) so stale recordings are invalidated
// rather than served — Version only tracks the on-disk encoding, not
// what the generators emit.
const cacheEpoch = 1

// CacheSchema identifies bptrace's recording cache encoding within a
// shared runcache directory. It lives here (not in cmd/bptrace) so
// cache maintenance — bpsim -cache-gc — can recognize the trace schema
// as live rather than sweeping it as superseded.
func CacheSchema() string {
	return fmt.Sprintf("xorbp-trace/v%d/epoch%d", Version, cacheEpoch)
}

const (
	flagTaken   = 1 << 4
	flagSyscall = 1 << 5
	classMask   = 0x0f
)

var (
	// ErrBadMagic reports a non-trace file.
	ErrBadMagic = errors.New("trace: bad magic")
	// ErrVersion reports an unsupported format version.
	ErrVersion = errors.New("trace: unsupported version")
)

// Writer streams branch events to w.
type Writer struct {
	w      *bufio.Writer
	count  uint64
	lastPC uint64
	lastTG uint64
	closed bool
}

// NewWriter starts a trace on w. Call Close to finalize the count
// trailer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(Magic); err != nil {
		return nil, err
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint16(hdr[0:2], Version)
	binary.LittleEndian.PutUint16(hdr[2:4], 0)
	binary.LittleEndian.PutUint64(hdr[4:12], 0) // reserved
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// noEOF converts a bare io.EOF inside a record into ErrUnexpectedEOF:
// only the sentinel may end a stream cleanly.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// zigzag encodes a signed delta as unsigned.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Write appends one event.
func (t *Writer) Write(ev *workload.BranchEvent) error {
	if t.closed {
		return errors.New("trace: write after Close")
	}
	head := byte(ev.Class) & classMask
	if ev.Taken {
		head |= flagTaken
	}
	if ev.Syscall {
		head |= flagSyscall
	}
	if err := t.w.WriteByte(head); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], zigzag(int64(ev.PC)-int64(t.lastPC)))
	if _, err := t.w.Write(buf[:n]); err != nil {
		return err
	}
	n = binary.PutUvarint(buf[:], uint64(ev.Gap))
	if _, err := t.w.Write(buf[:n]); err != nil {
		return err
	}
	if ev.Taken {
		n = binary.PutUvarint(buf[:], zigzag(int64(ev.Target)-int64(t.lastTG)))
		if _, err := t.w.Write(buf[:n]); err != nil {
			return err
		}
		t.lastTG = ev.Target
	}
	t.lastPC = ev.PC
	t.count++
	return nil
}

// Count returns the number of events written so far.
func (t *Writer) Count() uint64 { return t.count }

// Close writes the end sentinel with the record count and flushes.
func (t *Writer) Close() error {
	if t.closed {
		return nil
	}
	t.closed = true
	if err := t.w.WriteByte(0xff); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], t.count)
	if _, err := t.w.Write(buf[:n]); err != nil {
		return err
	}
	return t.w.Flush()
}

// Reader streams events back from r.
type Reader struct {
	r      *bufio.Reader
	n      uint64 // records read
	lastPC uint64
	lastTG uint64
}

// NewReader validates the header and returns a reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != Magic {
		return nil, ErrBadMagic
	}
	hdr := make([]byte, 12)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, err
	}
	if v := binary.LittleEndian.Uint16(hdr[0:2]); v != Version {
		return nil, fmt.Errorf("%w: %d", ErrVersion, v)
	}
	return &Reader{r: br}, nil
}

// Next reads one event; io.EOF after the sentinel (whose count is
// verified against the records actually read).
func (t *Reader) Next(ev *workload.BranchEvent) error {
	head, err := t.r.ReadByte()
	if err == io.EOF {
		// Raw EOF without the sentinel: the stream was truncated.
		return io.ErrUnexpectedEOF
	}
	if err != nil {
		return err
	}
	if head == 0xff {
		count, err := binary.ReadUvarint(t.r)
		if err != nil {
			return noEOF(err)
		}
		if count != t.n {
			return fmt.Errorf("trace: corrupt stream: sentinel count %d, read %d records", count, t.n)
		}
		return io.EOF
	}
	dpc, err := binary.ReadUvarint(t.r)
	if err != nil {
		return noEOF(err)
	}
	gap, err := binary.ReadUvarint(t.r)
	if err != nil {
		return noEOF(err)
	}
	ev.Class = predictor.Class(head & classMask)
	ev.Taken = head&flagTaken != 0
	ev.Syscall = head&flagSyscall != 0
	ev.PC = uint64(int64(t.lastPC) + unzigzag(dpc))
	ev.Gap = uint16(gap)
	ev.Target = 0
	if ev.Taken {
		dtg, err := binary.ReadUvarint(t.r)
		if err != nil {
			return noEOF(err)
		}
		ev.Target = uint64(int64(t.lastTG) + unzigzag(dtg))
		t.lastTG = ev.Target
	}
	t.lastPC = ev.PC
	t.n++
	return nil
}

// ReadBatch decodes up to len(evs) events straight into evs — the bulk
// seam simulation rings refill through, so replay pays the decode loop
// once per batch instead of a call per record. It returns the number of
// events decoded; io.EOF (with n possibly > 0) after the verified
// sentinel, or the first decode error.
func (t *Reader) ReadBatch(evs []workload.BranchEvent) (int, error) {
	for i := range evs {
		if err := t.Next(&evs[i]); err != nil {
			return i, err
		}
	}
	return len(evs), nil
}

// Program wraps a fully-buffered trace as a workload.Program that loops
// over the recorded events (so simulations can run longer than the
// capture).
type Program struct {
	name   string
	events []workload.BranchEvent
	pos    int
}

// Record captures n events from any Program into a replayable Program
// and, optionally, writes them to w (pass nil to skip serialization).
func Record(src workload.Program, n int, w io.Writer) (*Program, error) {
	p := &Program{name: src.Name() + ".trace"}
	var tw *Writer
	if w != nil {
		var err error
		tw, err = NewWriter(w)
		if err != nil {
			return nil, err
		}
	}
	var ev workload.BranchEvent
	for i := 0; i < n; i++ {
		src.Next(&ev)
		if !ev.Taken {
			// The target of a not-taken branch is architecturally
			// irrelevant and is not serialized; normalize so replay is
			// bit-identical to the on-disk form.
			ev.Target = 0
		}
		p.events = append(p.events, ev)
		if tw != nil {
			if err := tw.Write(&ev); err != nil {
				return nil, err
			}
		}
	}
	if tw != nil {
		if err := tw.Close(); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Load reads an entire trace from r into a replayable Program, decoding
// in batches.
func Load(name string, r io.Reader) (*Program, error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	p := &Program{name: name}
	var chunk [1024]workload.BranchEvent
	for {
		n, err := tr.ReadBatch(chunk[:])
		p.events = append(p.events, chunk[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	if len(p.events) == 0 {
		return nil, errors.New("trace: empty trace")
	}
	return p, nil
}

// Name implements workload.Program.
func (p *Program) Name() string { return p.name }

// Len returns the captured event count.
func (p *Program) Len() int { return len(p.events) }

// Next implements workload.Program, looping over the capture.
func (p *Program) Next(ev *workload.BranchEvent) {
	*ev = p.events[p.pos]
	p.pos++
	if p.pos == len(p.events) {
		p.pos = 0
	}
}

// NextBatch implements workload.BatchProgram: recorded events are copied
// straight into the caller's ring, wrapping over the capture boundary.
func (p *Program) NextBatch(evs []workload.BranchEvent) int {
	n := 0
	for n < len(evs) {
		c := copy(evs[n:], p.events[p.pos:])
		p.pos += c
		if p.pos == len(p.events) {
			p.pos = 0
		}
		n += c
	}
	return n
}

var _ workload.BatchProgram = (*Program)(nil)
