package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"xorbp/internal/predictor"
	"xorbp/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	src := workload.NewGenerator(workload.MustByName("gcc"), 7)
	var buf bytes.Buffer
	rec, err := Record(src, 20000, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() != 20000 {
		t.Fatalf("recorded %d events, want 20000", rec.Len())
	}
	loaded, err := Load("gcc", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 20000 {
		t.Fatalf("loaded %d events, want 20000", loaded.Len())
	}
	// Replay both and compare bit-identically.
	var a, b workload.BranchEvent
	for i := 0; i < 40000; i++ { // loops past the end deliberately
		rec.Next(&a)
		loaded.Next(&b)
		if a != b {
			t.Fatalf("event %d mismatch: %+v vs %+v", i, a, b)
		}
	}
}

func TestCompactEncoding(t *testing.T) {
	src := workload.NewGenerator(workload.MustByName("libquantum"), 3)
	var buf bytes.Buffer
	if _, err := Record(src, 10000, &buf); err != nil {
		t.Fatal(err)
	}
	perRecord := float64(buf.Len()) / 10000
	if perRecord > 8 {
		t.Fatalf("%.1f bytes/record, want <= 8 (delta coding broken?)", perRecord)
	}
}

func TestZigzagProperty(t *testing.T) {
	f := func(v int64) bool { return unzigzag(zigzag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEventFieldFidelity(t *testing.T) {
	// Every class/flag combination survives the round trip.
	events := []workload.BranchEvent{
		{PC: 0x1000, Class: predictor.CondDirect, Taken: true, Target: 0x2000, Gap: 1},
		{PC: 0x1004, Class: predictor.CondDirect, Taken: false, Gap: 63},
		{PC: 0x99999999, Class: predictor.Indirect, Taken: true, Target: 0x10, Gap: 7, Syscall: true},
		{PC: 0x8, Class: predictor.Return, Taken: true, Target: 0xffffffff, Gap: 255},
		{PC: 0x40, Class: predictor.Call, Taken: true, Target: 0x44, Gap: 2},
		{PC: 0x44, Class: predictor.UncondDirect, Taken: true, Target: 0x40, Gap: 12},
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range events {
		if err := w.Write(&events[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range events {
		var got workload.BranchEvent
		if err := r.Next(&got); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if got != events[i] {
			t.Fatalf("event %d: got %+v, want %+v", i, got, events[i])
		}
	}
	var sentinel workload.BranchEvent
	if err := r.Next(&sentinel); err != io.EOF {
		t.Fatalf("expected EOF after sentinel, got %v", err)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOPE0000000000000000"))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("expected ErrBadMagic, got %v", err)
	}
}

func TestCorruptCountDetected(t *testing.T) {
	src := workload.NewGenerator(workload.MustByName("mcf"), 1)
	var buf bytes.Buffer
	if _, err := Record(src, 100, &buf); err != nil {
		t.Fatal(err)
	}
	// Truncate mid-stream: drop the last 3 bytes (sentinel + count).
	data := buf.Bytes()[:buf.Len()-3]
	_, err := Load("mcf", bytes.NewReader(data))
	if err == nil {
		t.Fatal("truncated trace loaded without error")
	}
}

func TestWriteAfterClose(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	ev := workload.BranchEvent{PC: 4, Gap: 1}
	if err := w.Write(&ev); err == nil {
		t.Fatal("write after close succeeded")
	}
}

func TestTraceDrivesSimulator(t *testing.T) {
	// A replayed trace must be usable anywhere a generator is.
	src := workload.NewGenerator(workload.MustByName("hmmer"), 5)
	var buf bytes.Buffer
	if _, err := Record(src, 5000, &buf); err != nil {
		t.Fatal(err)
	}
	prog, err := Load("hmmer", &buf)
	if err != nil {
		t.Fatal(err)
	}
	var ev workload.BranchEvent
	conds := 0
	for i := 0; i < 10000; i++ {
		prog.Next(&ev)
		if ev.Class == predictor.CondDirect {
			conds++
		}
	}
	if conds == 0 {
		t.Fatal("replayed trace has no conditional branches")
	}
	if prog.Name() != "hmmer" {
		t.Fatalf("name = %q", prog.Name())
	}
}

// TestReadBatchAndProgramNextBatch covers the bulk decode path: a
// recorded stream batch-decoded straight into caller buffers matches
// per-record decoding, and the buffered Program's NextBatch replays the
// loop identically to Next.
func TestReadBatchAndProgramNextBatch(t *testing.T) {
	src := workload.NewGenerator(workload.MustByName("gcc"), 5)
	var buf bytes.Buffer
	if _, err := Record(src, 3000, &buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	one, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var want []workload.BranchEvent
	var ev workload.BranchEvent
	for {
		if err := one.Next(&ev); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		want = append(want, ev)
	}

	batch, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var got []workload.BranchEvent
	chunk := make([]workload.BranchEvent, 257)
	for {
		n, err := batch.ReadBatch(chunk)
		got = append(got, chunk[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("batch decoded %d events, per-record %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d differs between decode paths", i)
		}
	}

	// Program.NextBatch must loop over the capture exactly like Next.
	pa, err := Load("a", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	pb, err := Load("b", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	ring := make([]workload.BranchEvent, 331)
	for round := 0; round < 20; round++ {
		pb.NextBatch(ring)
		for i := range ring {
			pa.Next(&ev)
			if ring[i] != ev {
				t.Fatalf("round %d event %d differs between NextBatch and Next", round, i)
			}
		}
	}
}
