// Package snap is the deterministic binary codec behind the simulator's
// Snapshot/Restore seam. A snapshot captures exactly the *mutable* state
// of a running simulation — table words, history registers, RNG streams,
// key files, ring buffers, cycle counters — and never static configuration,
// which is rebuilt from the run spec on restore. That split keeps the
// encoding small and makes a snapshot meaningless outside the spec that
// produced it, which is why the snapshot store keys entries by spec prefix
// (see internal/experiment).
//
// The format is a flat little-endian byte stream with no self-description:
// writer and reader must agree on the field sequence, which they do by
// construction — every component's Snapshot and Restore methods are
// adjacent in its own package and visit fields in the same order. Schema
// drift across builds is caught one level up: stored snapshots are wrapped
// in a schema-versioned runcache entry whose version string includes both
// the wire schema (spec layout) and the snapshot format epoch, so any
// incompatible change quarantines old entries instead of misdecoding them.
//
// Readers are hardened against arbitrary input: every read is bounds
// checked, declared lengths are validated against the bytes actually
// remaining, and the first failure latches a sticky error that makes all
// subsequent reads return zero values. Restore implementations therefore
// never panic on truncated or corrupt input — they observe r.Err() after
// decoding and discard the partially written state.
package snap

import (
	"errors"
	"fmt"
)

// ErrCorrupt is the sticky error latched by a Reader when the input is
// truncated or a declared length exceeds the remaining bytes.
var ErrCorrupt = errors.New("snap: corrupt or truncated snapshot")

// Writer serializes a snapshot. The zero value is ready to use. Writers
// never fail: all sizing errors are caller bugs surfaced by the paired
// Reader during tests.
type Writer struct {
	buf []byte
}

// Bytes returns the encoded snapshot.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// U64 appends a 64-bit value little-endian.
func (w *Writer) U64(v uint64) {
	w.buf = append(w.buf,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// U32 appends a 32-bit value little-endian.
func (w *Writer) U32(v uint32) {
	w.buf = append(w.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// U16 appends a 16-bit value little-endian.
func (w *Writer) U16(v uint16) {
	w.buf = append(w.buf, byte(v), byte(v>>8))
}

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// I64 appends a signed 64-bit value (two's complement).
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// U64s appends a length-prefixed slice of 64-bit values.
func (w *Writer) U64s(vs []uint64) {
	w.U32(uint32(len(vs)))
	for _, v := range vs {
		w.U64(v)
	}
}

// U8s appends a length-prefixed byte slice.
func (w *Writer) U8s(vs []uint8) {
	w.U32(uint32(len(vs)))
	w.buf = append(w.buf, vs...)
}

// Reader decodes a snapshot produced by Writer. The first out-of-bounds
// read latches ErrCorrupt; every later read returns the zero value.
type Reader struct {
	buf []byte
	pos int
	err error
}

// NewReader returns a reader over an encoded snapshot.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the sticky decode error, or nil if every read so far was in
// bounds. Callers must check Err after decoding and before trusting the
// restored state.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of undecoded bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.pos }

// Fail latches a caller-detected inconsistency (for example a slice length
// that does not match the restoring structure) as the reader's sticky
// error.
func (r *Reader) Fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("snap: "+format, args...)
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.buf)-r.pos < n {
		r.err = ErrCorrupt
		return nil
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b
}

// U64 reads a 64-bit value.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// U32 reads a 32-bit value.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// U16 reads a 16-bit value.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return uint16(b[0]) | uint16(b[1])<<8
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a boolean. Any nonzero byte is true.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// I64 reads a signed 64-bit value.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// U64sInto reads a length-prefixed slice of 64-bit values into dst. The
// declared length must equal len(dst): snapshots restore into structures
// whose geometry is rebuilt from the spec, so a mismatch means the
// snapshot belongs to a different configuration and the reader fails.
func (r *Reader) U64sInto(dst []uint64) {
	n := int(r.U32())
	if r.err != nil {
		return
	}
	if n != len(dst) {
		r.Fail("u64 slice length %d, restoring structure wants %d", n, len(dst))
		return
	}
	if r.Remaining() < 8*n {
		r.err = ErrCorrupt
		return
	}
	for i := range dst {
		dst[i] = r.U64()
	}
}

// U8sInto reads a length-prefixed byte slice into dst, with the same
// exact-length contract as U64sInto.
func (r *Reader) U8sInto(dst []uint8) {
	n := int(r.U32())
	if r.err != nil {
		return
	}
	if n != len(dst) {
		r.Fail("u8 slice length %d, restoring structure wants %d", n, len(dst))
		return
	}
	b := r.take(n)
	if b == nil {
		return
	}
	copy(dst, b)
}

// Snapshotter is implemented by every component whose mutable state can be
// captured and restored. Restore must be called on a component built from
// the same static configuration (spec, seed, geometry) as the one that
// produced the snapshot; implementations validate what they can through
// the reader's length checks and report the rest via r.Err().
type Snapshotter interface {
	Snapshot(w *Writer)
	Restore(r *Reader)
}
