package tage

import (
	"testing"

	"xorbp/internal/core"
	"xorbp/internal/predictor"
	"xorbp/internal/workload"
)

// BenchmarkPredictUpdateGcc drives the fused predict+update path with
// the branch-dense gcc event stream — the hottest cell of the
// performance sweeps, and the workload the lane-packed fold update
// (bitutil.FoldLane over the index/tag-0/tag-1 lanes) is aimed at. The
// loop allocates nothing; bpvet's hotpath analysis guards the
// zero-alloc property of every function on this path.
func BenchmarkPredictUpdateGcc(b *testing.B) {
	for _, cfg := range []struct {
		name string
		mk   func(*core.Controller) *TAGE
	}{
		{"fpga", func(c *core.Controller) *TAGE { return New(FPGAConfig(), c) }},
		{"ltage", func(c *core.Controller) *TAGE { return New(LTAGEConfig(), c) }},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			p := cfg.mk(ctrl(core.NoisyXOR))
			gen := workload.NewGenerator(workload.MustByName("gcc"), 11)
			evs := make([]workload.BranchEvent, 4096)
			var pcs []uint64
			var takens []bool
			for len(pcs) < 4096 {
				n := gen.NextBatch(evs)
				for _, ev := range evs[:n] {
					if ev.Class == predictor.CondDirect {
						pcs = append(pcs, ev.PC)
						takens = append(takens, ev.Taken)
					}
				}
			}
			dom := d(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j := i & 4095
				p.PredictUpdate(dom, pcs[j], takens[j])
			}
		})
	}
}
