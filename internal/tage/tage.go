// Package tage implements the TAGE family core: a base bimodal predictor
// plus tagged tables indexed with geometrically increasing history
// lengths (Seznec [39]). LTAGE adds the loop predictor. The package
// provides both the FPGA prototype configuration (Table 2: "TAGE: 33 KB,
// 6 × 4096 entries, history length: 12, 27, 44, 63, 90, 130") and the
// gem5 32 KB LTAGE.
//
// Isolation hooks follow Figure 6: every table (base, tagged, loop) is
// accessed through its own guard — indexes scrambled with the domain's
// index key, entries content-encoded with the domain's content key. The
// usefulness (u) bits are replacement metadata, kept architectural
// (unencoded) like the BTB's LRU state; only predictive payload —
// tag and counter — is encoded.
package tage

import (
	"xorbp/internal/bitutil"
	"xorbp/internal/core"
	"xorbp/internal/predictor"
	"xorbp/internal/rng"
	"xorbp/internal/snap"
	"xorbp/internal/store"
)

const pcShift = 2

// Config sizes a TAGE predictor.
type Config struct {
	// Name is the reported predictor name ("tage", "ltage").
	Name string
	// BaseBits is log2 of the base bimodal table.
	BaseBits uint
	// TableBits[i] is log2 of tagged table i's entry count.
	TableBits []uint
	// TagBits[i] is tagged table i's tag width.
	TagBits []uint
	// HistLengths[i] is the (geometric) history length of table i,
	// shortest first.
	HistLengths []uint
	// UResetPeriod is the number of updates between usefulness-bit aging
	// passes.
	UResetPeriod uint64
	// Loop enables the loop predictor (LTAGE).
	Loop *LoopConfig
	// Seed drives the allocation tie-break randomness.
	Seed uint64
}

// FPGAConfig is the paper's FPGA prototype direction predictor (Table 2).
func FPGAConfig() Config {
	return Config{
		Name:         "tage",
		BaseBits:     12,
		TableBits:    []uint{12, 12, 12, 12, 12, 12},
		TagBits:      []uint{8, 8, 9, 10, 11, 12},
		HistLengths:  []uint{12, 27, 44, 63, 90, 130},
		UResetPeriod: 256 * 1024,
		Seed:         0x7a6e,
	}
}

// LTAGEConfig is the gem5 32 KB LTAGE (Table 2).
func LTAGEConfig() Config {
	return Config{
		Name:         "ltage",
		BaseBits:     13,
		TableBits:    []uint{10, 10, 10, 10, 10, 10, 10, 10, 10, 10, 10, 10},
		TagBits:      []uint{7, 7, 8, 8, 9, 10, 11, 12, 12, 13, 14, 15},
		HistLengths:  []uint{4, 6, 10, 16, 25, 40, 64, 101, 160, 254, 403, 640},
		UResetPeriod: 256 * 1024,
		Loop:         DefaultLoopConfig(),
		Seed:         0x17a6e,
	}
}

// Tagged entry word layout: [ ctr(3) | tag(n) ]. Usefulness lives in a
// separate architectural array.
const ctrBits = 3

// threadState is the per-hardware-thread speculative state: the raw
// history register and the folded images used for indexing and tagging.
//
// The folds are lane-packed: one flat slice of 3*nTab images laid out as
// three parallel lanes in table order — index folds in [0, nTab), first
// tag folds in [nTab, 2*nTab), second tag folds in [2*nTab, 3*nTab). The
// per-branch fold advance (the simulator's hottest loop) gathers each
// table's leaving history bit once into outs, then streams each lane
// through bitutil.FoldLane: three tight register-resident loops over
// contiguous 16-byte Folded values, with no per-table struct hop.
type threadState struct {
	hist  *bitutil.History
	folds []bitutil.Folded // 3*nTab images in three lanes (idx, t0, t1)
	outs  []uint64         // per-table leaving-bit scratch for the fold pass
}

// Lane accessors for threadState.folds. i is the tagged table index.
func (ts *threadState) idxFold(n, i int) *bitutil.Folded { return &ts.folds[i] }
func (ts *threadState) t0Fold(n, i int) *bitutil.Folded  { return &ts.folds[n+i] }
func (ts *threadState) t1Fold(n, i int) *bitutil.Folded  { return &ts.folds[2*n+i] }

// scratch carries the prediction's provider metadata to the update.
type scratch struct {
	baseIdx   uint64
	baseCtr   uint64
	basePred  bool
	provider  int // tagged table index, -1 = base
	provIdx   uint64
	provCtr   uint64
	provPred  bool
	altTable  int // -1 = base
	altIdx    uint64
	altPred   bool
	usedAlt   bool
	finalPred bool
	// per-table values computed at predict time (for allocation)
	indexes []uint64
	tags    []uint64

	loop loopScratch
}

// table bundles one tagged table's hot-path state: geometry masks and
// shifts precomputed at construction, the guard, the storage and the
// usefulness column. One slice of these replaces seven parallel slices,
// so the per-branch table walk performs one bounds check per table.
type table struct {
	arr     *store.WordArray
	guard   *core.Guard
	u       []uint8 // usefulness per physical entry (architectural)
	bits    uint    // log2 entries
	tagBits uint
	histLen uint
	idxMask uint64
	tagMask uint64
	pcFold  uint // precomputed bits - i%bits shift of the index hash
}

// TAGE is the predictor.
type TAGE struct {
	cfg    Config
	nTab   int
	guardB *core.Guard // base table
	base   *store.WordArray
	tabs   []table

	loop *LoopPredictor

	useAltOnNA bitutil.SignedCounter
	tick       uint64
	alloc      *rng.Xoshiro256

	threads [core.MaxHWThreads]*threadState
	scratch [core.MaxHWThreads]*scratch
}

// New builds a TAGE (or LTAGE, when cfg.Loop is set) predictor and
// registers it for flush events.
func New(cfg Config, ctrl *core.Controller) *TAGE {
	n := len(cfg.TableBits)
	if n == 0 || len(cfg.TagBits) != n || len(cfg.HistLengths) != n {
		panic("tage: inconsistent table configuration")
	}
	t := &TAGE{
		cfg:        cfg,
		nTab:       n,
		guardB:     ctrl.Guard(0x7a60, core.StructPHT),
		useAltOnNA: bitutil.NewSignedCounter(4, 0),
		alloc:      rng.NewXoshiro256(cfg.Seed),
	}
	t.base = store.NewWordArray(t.guardB, cfg.BaseBits, 2, 1)
	for i := 0; i < n; i++ {
		g := ctrl.Guard(0x7a61+uint64(i), core.StructPHT)
		width := cfg.TagBits[i] + ctrBits
		bits := cfg.TableBits[i]
		t.tabs = append(t.tabs, table{
			arr:     store.NewWordArray(g, bits, width, 0),
			guard:   g,
			u:       make([]uint8, 1<<bits),
			bits:    bits,
			tagBits: cfg.TagBits[i],
			histLen: cfg.HistLengths[i],
			idxMask: bitutil.Mask(bits),
			tagMask: bitutil.Mask(cfg.TagBits[i]),
			pcFold:  bits - uint(i)%bits,
		})
	}
	if cfg.Loop != nil {
		t.loop = NewLoopPredictor(*cfg.Loop, ctrl)
	}
	ctrl.Register(t, core.StructPHT)
	return t
}

// Name implements predictor.DirPredictor.
func (t *TAGE) Name() string { return t.cfg.Name }

// maxHist returns the longest configured history.
func (t *TAGE) maxHist() uint { return t.cfg.HistLengths[t.nTab-1] }

// state returns (lazily creating) the per-thread history state.
//
//bpvet:coldinit allocates once per hardware thread on first touch; every later call is a nil-checked array load
func (t *TAGE) state(th core.HWThread) *threadState {
	if t.threads[th] == nil {
		ts := &threadState{
			hist:  bitutil.NewHistory(t.maxHist() + 1),
			folds: make([]bitutil.Folded, 3*t.nTab),
			outs:  make([]uint64, t.nTab),
		}
		for i := 0; i < t.nTab; i++ {
			ts.folds[i] = *bitutil.NewFolded(t.cfg.HistLengths[i], t.cfg.TableBits[i])
			ts.folds[t.nTab+i] = *bitutil.NewFolded(t.cfg.HistLengths[i], t.cfg.TagBits[i])
			ts.folds[2*t.nTab+i] = *bitutil.NewFolded(t.cfg.HistLengths[i], t.cfg.TagBits[i]-1)
		}
		t.threads[th] = ts
		t.scratch[th] = &scratch{
			indexes: make([]uint64, t.nTab),
			tags:    make([]uint64, t.nTab),
		}
	}
	return t.threads[th]
}

// index computes tagged table i's physical index for (d, pc).
func (t *TAGE) index(ts *threadState, d core.Domain, i int, pc uint64) uint64 {
	tb := &t.tabs[i]
	p := pc >> pcShift
	logical := p ^ (p >> tb.pcFold) ^ ts.idxFold(t.nTab, i).Value()
	return tb.guard.ScrambleIndex(logical&tb.idxMask, d, tb.bits)
}

// tag computes tagged table i's logical tag for pc.
func (t *TAGE) tag(ts *threadState, i int, pc uint64) uint64 {
	p := pc >> pcShift
	v := p ^ ts.t0Fold(t.nTab, i).Value() ^ (ts.t1Fold(t.nTab, i).Value() << 1)
	return v & t.tabs[i].tagMask
}

// unpack splits a tagged entry word into (tag, ctr).
func (t *TAGE) unpack(i int, w uint64) (tag, ctr uint64) {
	tb := &t.tabs[i]
	return w & tb.tagMask, (w >> tb.tagBits) & bitutil.Mask(ctrBits)
}

// pack builds a tagged entry word.
func (t *TAGE) pack(i int, tag, ctr uint64) uint64 {
	tb := &t.tabs[i]
	return (ctr << tb.tagBits) | (tag & tb.tagMask)
}

// Predict implements predictor.DirPredictor.
//
//bpvet:hotpath
func (t *TAGE) Predict(d core.Domain, pc uint64) bool {
	ts := t.state(d.Thread)
	s := t.scratch[d.Thread]

	// Base prediction.
	baseLogical := (pc >> pcShift) & bitutil.Mask(t.cfg.BaseBits)
	s.baseIdx = t.guardB.ScrambleIndex(baseLogical, d, t.cfg.BaseBits)
	s.baseCtr = t.base.Get(d, s.baseIdx)
	s.basePred = s.baseCtr >= 2

	// Scan tagged tables from longest history down for the provider and
	// the alternate, computing each table's index hash and tag lazily as
	// the scan reaches it. Tables below the early break never compute
	// either: every later consumer of s.indexes/s.tags — the provider
	// and alternate training, the usefulness update, and allocation
	// (which only touches tables above the provider) — reads entries the
	// scan visited, so the skipped hashes are provably dead.
	s.provider, s.altTable = -1, -1
	s.usedAlt = false
	for i := t.nTab - 1; i >= 0; i-- {
		s.indexes[i] = t.index(ts, d, i, pc)
		s.tags[i] = t.tag(ts, i, pc)
		w := t.tabs[i].arr.Get(d, s.indexes[i])
		tag, ctr := t.unpack(i, w)
		if tag != s.tags[i] {
			continue
		}
		if s.provider == -1 {
			s.provider = i
			s.provIdx = s.indexes[i]
			s.provCtr = ctr
			s.provPred = ctr >= 4
		} else {
			s.altTable = i
			s.altIdx = s.indexes[i]
			s.altPred = ctr >= 4
			break
		}
	}
	if s.provider == -1 {
		s.finalPred = s.basePred
	} else {
		if s.altTable == -1 {
			s.altPred = s.basePred
		}
		// A "newly allocated" provider (weak counter) defers to the
		// alternate prediction when USEALT says alternates have been more
		// reliable.
		weak := s.provCtr == 3 || s.provCtr == 4
		if weak && t.useAltOnNA.Value() >= 0 {
			s.usedAlt = true
			s.finalPred = s.altPred
		} else {
			s.finalPred = s.provPred
		}
	}

	// The loop predictor overrides TAGE when confident (LTAGE).
	if t.loop != nil {
		if pred, ok := t.loop.Predict(d, pc, &s.loop); ok {
			s.finalPred = pred
		}
	}
	return s.finalPred
}

// Update implements predictor.DirPredictor.
//
//bpvet:hotpath
func (t *TAGE) Update(d core.Domain, pc uint64, taken bool) {
	ts := t.state(d.Thread)
	s := t.scratch[d.Thread]

	if t.loop != nil {
		t.loop.Update(d, pc, taken, &s.loop)
	}

	if s.provider >= 0 {
		// Train USEALT on newly-allocated weak providers that disagreed
		// with the alternate.
		weak := s.provCtr == 3 || s.provCtr == 4
		if weak && s.provPred != s.altPred {
			t.useAltOnNA.Update(s.altPred == taken)
		}
		// Train the provider counter.
		i := s.provider
		t.tabs[i].arr.Update(d, s.provIdx, func(w uint64) uint64 {
			tag, ctr := t.unpack(i, w)
			return t.pack(i, tag, bump3(ctr, taken))
		})
		// Usefulness: provider distinguished itself from the alternate.
		if s.provPred != s.altPred {
			uc := &t.tabs[i].u[s.provIdx]
			if s.provPred == taken {
				if *uc < 3 {
					*uc++
				}
			} else if *uc > 0 {
				*uc--
			}
		}
		// When the weak provider deferred to a tagged alternate, train the
		// alternate too.
		if s.usedAlt && s.altTable >= 0 {
			j := s.altTable
			t.tabs[j].arr.Update(d, s.altIdx, func(w uint64) uint64 {
				tag, ctr := t.unpack(j, w)
				return t.pack(j, tag, bump3(ctr, taken))
			})
		}
		// When the alternate was the base predictor and it was consulted,
		// train the base.
		if s.usedAlt && s.altTable == -1 {
			t.updateBase(d, s, taken)
		}
	} else {
		t.updateBase(d, s, taken)
	}

	// Allocate on a misprediction, in a table with longer history.
	if s.finalPred != taken && s.provider < t.nTab-1 {
		t.allocate(d, s, taken)
	}

	// Periodic usefulness aging keeps allocation possible.
	t.tick++
	if t.cfg.UResetPeriod > 0 && t.tick%t.cfg.UResetPeriod == 0 {
		t.ageUsefulness()
	}

	// Advance history: raw register first, then the folded images. The
	// leaving bits are gathered once per table, then the three fold lanes
	// stream through FoldLane back to back — the lane-packed form of the
	// per-table triple update (see threadState).
	ts.hist.Push(taken)
	in := b2u64(taken)
	outs := ts.outs
	for i := 0; i < t.nTab; i++ {
		outs[i] = ts.hist.Bit(t.cfg.HistLengths[i])
	}
	n := t.nTab
	bitutil.FoldLane(ts.folds[:n], in, outs)
	bitutil.FoldLane(ts.folds[n:2*n], in, outs)
	bitutil.FoldLane(ts.folds[2*n:], in, outs)
}

func b2u64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func (t *TAGE) updateBase(d core.Domain, s *scratch, taken bool) {
	t.base.Update(d, s.baseIdx, func(v uint64) uint64 { return bump2(v, taken) })
}

// allocate claims an entry with u==0 in a longer-history table, with a
// random skip so consecutive allocations spread across tables (Seznec's
// policy). When every candidate is useful, their u counters are decayed
// instead — the anti-ping-pong rule.
func (t *TAGE) allocate(d core.Domain, s *scratch, taken bool) {
	start := s.provider + 1
	// Random skip: with probability 1/2 start one table later (if room),
	// emulating the weighted table choice of the reference code.
	if start < t.nTab-1 && t.alloc.Uint64()&1 == 0 {
		start++
	}
	for i := start; i < t.nTab; i++ {
		idx := s.indexes[i]
		if t.tabs[i].u[idx] == 0 {
			ctr := uint64(3)
			if taken {
				ctr = 4
			}
			t.tabs[i].arr.Set(d, idx, t.pack(i, s.tags[i], ctr))
			return
		}
	}
	for i := start; i < t.nTab; i++ {
		if uc := &t.tabs[i].u[s.indexes[i]]; *uc > 0 {
			*uc--
		}
	}
}

// ageUsefulness halves every u counter. The reference predictors
// periodically reset u so stale entries can be reclaimed.
func (t *TAGE) ageUsefulness() {
	for i := range t.tabs {
		u := t.tabs[i].u
		for j := range u {
			u[j] >>= 1
		}
	}
}

// FlushAll implements core.Flusher.
//
//bpvet:hotpath
func (t *TAGE) FlushAll() {
	t.base.FlushAll()
	for i := range t.tabs {
		t.tabs[i].arr.FlushAll()
		u := t.tabs[i].u
		for j := range u {
			u[j] = 0
		}
	}
	// The loop predictor registers its own flusher with the controller.
}

// FlushThread implements core.Flusher. Usefulness metadata is cleared
// wholesale: it has no owner tags, and leaving stale high u values would
// block the flushed thread's re-allocations (a flush must restore
// allocatability, as a hardware flush of the metadata column would).
//
//bpvet:hotpath
func (t *TAGE) FlushThread(th core.HWThread) {
	t.base.FlushThread(th)
	for i := range t.tabs {
		t.tabs[i].arr.FlushThread(th)
		u := t.tabs[i].u
		for j := range u {
			u[j] = 0
		}
	}
}

// Snapshot writes the base and tagged tables (words plus usefulness), the
// USEALT counter, the aging tick, the allocation RNG, the loop predictor
// when configured, and each lazily-created thread's history state. The
// per-thread scratch is predict-to-update carry state, dead at cycle
// boundaries, and is not serialized.
func (t *TAGE) Snapshot(w *snap.Writer) {
	t.base.Snapshot(w)
	for i := range t.tabs {
		t.tabs[i].arr.Snapshot(w)
		w.U8s(t.tabs[i].u)
	}
	t.useAltOnNA.Snapshot(w)
	w.U64(t.tick)
	t.alloc.Snapshot(w)
	if t.loop != nil {
		t.loop.Snapshot(w)
	}
	for th := range t.threads {
		ts := t.threads[th]
		w.Bool(ts != nil)
		if ts == nil {
			continue
		}
		ts.hist.Snapshot(w)
		for i := range ts.folds {
			ts.folds[i].Snapshot(w)
		}
	}
}

// Restore replaces the predictor's mutable state. Thread states absent
// from the snapshot are dropped; present ones are (re)created through the
// same lazy constructor the predictor uses, so geometry always matches.
func (t *TAGE) Restore(r *snap.Reader) {
	t.base.Restore(r)
	for i := range t.tabs {
		t.tabs[i].arr.Restore(r)
		r.U8sInto(t.tabs[i].u)
	}
	t.useAltOnNA.Restore(r)
	t.tick = r.U64()
	t.alloc.Restore(r)
	if t.loop != nil {
		t.loop.Restore(r)
	}
	for th := range t.threads {
		if !r.Bool() {
			t.threads[th] = nil
			t.scratch[th] = nil
			continue
		}
		ts := t.state(core.HWThread(th))
		ts.hist.Restore(r)
		for i := range ts.folds {
			ts.folds[i].Restore(r)
		}
	}
}

// StorageBits implements predictor.DirPredictor. Usefulness bits (2 per
// tagged entry) count toward storage.
func (t *TAGE) StorageBits() uint64 {
	total := t.base.StorageBits()
	for i := range t.tabs {
		total += t.tabs[i].arr.StorageBits() + 2*uint64(len(t.tabs[i].u))
	}
	if t.loop != nil {
		total += t.loop.StorageBits()
	}
	return total
}

// ProviderIsLoop reports whether the last prediction on thread th was
// overridden by the loop predictor (diagnostics, and the TAGE-SC-L
// combination rule: a confident loop prediction is final).
//
//bpvet:hotpath
func (t *TAGE) ProviderIsLoop(th core.HWThread) bool {
	s := t.scratch[th]
	return s != nil && t.loop != nil && s.loop.used
}

// LastConfidence grades the last prediction on thread th: 0 (weak),
// 1 (medium) or 2 (high), from the provider counter's distance to its
// midpoint. The statistical corrector weighs the TAGE prediction by this
// grade.
//
//bpvet:hotpath
func (t *TAGE) LastConfidence(th core.HWThread) int {
	s := t.scratch[th]
	if s == nil {
		return 0
	}
	if t.loop != nil && s.loop.used {
		return 2
	}
	var dist uint64
	if s.provider >= 0 {
		// ctr in 0..7; distance of 2*ctr+1 from the midpoint 8, in 1..7.
		c := 2*s.provCtr + 1
		if c >= 8 {
			dist = c - 8
		} else {
			dist = 8 - c
		}
		switch {
		case dist >= 5:
			return 2
		case dist >= 3:
			return 1
		default:
			return 0
		}
	}
	// Base provider: saturated counters are medium confidence at best.
	if s.baseCtr == 0 || s.baseCtr == 3 {
		return 1
	}
	return 0
}

// Entries reports the logical entry count across the base, tagged and
// loop tables (for the Precise Flush walk cost model).
func (t *TAGE) Entries() uint64 {
	n := t.base.Len()
	for i := range t.tabs {
		n += t.tabs[i].arr.Len()
	}
	if t.loop != nil {
		n += t.loop.Entries()
	}
	return n
}

func bump2(v uint64, up bool) uint64 {
	if up {
		if v < 3 {
			return v + 1
		}
		return v
	}
	if v > 0 {
		return v - 1
	}
	return 0
}

func bump3(v uint64, up bool) uint64 {
	if up {
		if v < 7 {
			return v + 1
		}
		return v
	}
	if v > 0 {
		return v - 1
	}
	return 0
}

var _ predictor.DirPredictor = (*TAGE)(nil)
var _ core.Flusher = (*TAGE)(nil)

// PredictUpdate implements predictor.PredictUpdater: the fused
// predict-then-train call the simulator dispatches once per conditional
// branch (identical to Predict followed by Update).
//
//bpvet:hotpath
func (t *TAGE) PredictUpdate(d core.Domain, pc uint64, taken bool) bool {
	pred := t.Predict(d, pc)
	t.Update(d, pc, taken)
	return pred
}

var _ predictor.PredictUpdater = (*TAGE)(nil)
