package tage

import (
	"xorbp/internal/bitutil"
	"xorbp/internal/core"
	"xorbp/internal/snap"
	"xorbp/internal/store"
)

// LoopConfig sizes the loop predictor. The paper's TAGE_SC_L "loop
// predictor features 256 entries and is 4-way associative (256 × 52
// bits)" — 64 sets of 4 ways.
type LoopConfig struct {
	// SetBits is log2 of the set count (6 -> 64 sets).
	SetBits uint
	// Ways is the associativity.
	Ways uint
	// TagBits is the stored tag width.
	TagBits uint
	// IterBits is the iteration-counter width.
	IterBits uint
}

// DefaultLoopConfig matches the paper: 256 entries, 4-way, ~52-bit rows
// (14-bit tag, two 14-bit iteration counts, 2-bit confidence, valid and
// direction bits; an 8-bit age lives beside the row as replacement
// metadata).
func DefaultLoopConfig() *LoopConfig {
	return &LoopConfig{SetBits: 6, Ways: 4, TagBits: 14, IterBits: 14}
}

// loopScratch carries predict-time loop state to the update.
type loopScratch struct {
	way      int // way hit at predict, -1 = miss
	set      uint64
	tag      uint64
	pred     bool
	used     bool // prediction was confident enough to override
	predSeen bool // Predict ran for this branch (conditional path)
}

// LoopPredictor recognizes loop branches with regular trip counts and
// predicts their exit perfectly once confident. Entries are content-
// encoded and set-indexed through the scrambler like every other table.
type LoopPredictor struct {
	cfg   LoopConfig
	guard *core.Guard
	// rows[set*Ways+way], each a packed word in the WordArray.
	rows *store.WordArray
	age  []uint8 // architectural replacement metadata
}

// Row layout (LSB first): tag | past(IterBits) | current(IterBits) |
// conf(2) | dir(1) | valid(1).
func (l *LoopPredictor) unpackRow(w uint64) (tag, past, cur, conf, dir, valid uint64) {
	tb, ib := l.cfg.TagBits, l.cfg.IterBits
	tag = w & bitutil.Mask(tb)
	past = (w >> tb) & bitutil.Mask(ib)
	cur = (w >> (tb + ib)) & bitutil.Mask(ib)
	conf = (w >> (tb + 2*ib)) & 3
	dir = (w >> (tb + 2*ib + 2)) & 1
	valid = (w >> (tb + 2*ib + 3)) & 1
	return
}

func (l *LoopPredictor) packRow(tag, past, cur, conf, dir, valid uint64) uint64 {
	tb, ib := l.cfg.TagBits, l.cfg.IterBits
	return (valid << (tb + 2*ib + 3)) | (dir << (tb + 2*ib + 2)) |
		(conf << (tb + 2*ib)) | (cur << (tb + ib)) | (past << tb) |
		(tag & bitutil.Mask(tb))
}

// NewLoopPredictor builds the loop predictor and registers it for flush
// events.
func NewLoopPredictor(cfg LoopConfig, ctrl *core.Controller) *LoopPredictor {
	l := &LoopPredictor{
		cfg:   cfg,
		guard: ctrl.Guard(0x100b, core.StructPHT),
	}
	rowBits := cfg.TagBits + 2*cfg.IterBits + 2 + 1 + 1
	idxBits := cfg.SetBits + bitutil.Log2(uint64(cfg.Ways))
	if 1<<idxBits < uint64(cfg.Ways)<<cfg.SetBits {
		idxBits++
	}
	l.rows = store.NewWordArray(l.guard, idxBits, rowBits, 0)
	l.age = make([]uint8, 1<<idxBits)
	ctrl.Register(l, core.StructPHT)
	return l
}

func (l *LoopPredictor) set(d core.Domain, pc uint64) uint64 {
	logical := (pc >> pcShift) & bitutil.Mask(l.cfg.SetBits)
	return l.guard.ScrambleIndex(logical, d, l.cfg.SetBits)
}

func (l *LoopPredictor) tagOf(pc uint64) uint64 {
	return (pc >> (pcShift + l.cfg.SetBits)) & bitutil.Mask(l.cfg.TagBits)
}

func (l *LoopPredictor) rowIdx(set uint64, way int) uint64 {
	return set*uint64(l.cfg.Ways) + uint64(way)
}

// Predict looks up pc. ok is true only when a confident entry hits; then
// pred is the loop-aware direction: the body direction until the recorded
// trip count is reached, the exit direction on the last iteration.
//
// Under an encoding mechanism a row written by another domain decodes as
// noise; its valid bit and tag gate with probability 2^-(TagBits+1), so
// cross-domain loop state is effectively invisible — the same isolation
// property as the other tables.
//
//bpvet:hotpath
func (l *LoopPredictor) Predict(d core.Domain, pc uint64, s *loopScratch) (pred, ok bool) {
	s.set = l.set(d, pc)
	s.tag = l.tagOf(pc)
	s.way = -1
	s.used = false
	s.predSeen = true
	for w := 0; w < int(l.cfg.Ways); w++ {
		row := l.rows.Get(d, l.rowIdx(s.set, w))
		tag, past, cur, conf, dir, valid := l.unpackRow(row)
		if valid == 0 || tag != s.tag {
			continue
		}
		s.way = w
		// Body direction until the known trip count, then the exit.
		s.pred = dir == 1
		if past != 0 && cur+1 >= past {
			s.pred = dir != 1
		}
		if conf == 3 && past != 0 {
			s.used = true
			return s.pred, true
		}
		return s.pred, false
	}
	return false, false
}

// Update trains the loop entry with the resolved outcome.
//
//bpvet:hotpath
func (l *LoopPredictor) Update(d core.Domain, pc uint64, taken bool, s *loopScratch) {
	if !s.predSeen {
		return
	}
	s.predSeen = false
	if s.way >= 0 {
		idx := l.rowIdx(s.set, s.way)
		l.rows.Update(d, idx, func(w uint64) uint64 {
			tag, past, cur, conf, dir, valid := l.unpackRow(w)
			if valid == 0 || tag != s.tag {
				return w // entry was reclaimed between predict and update
			}
			body := dir == 1
			if taken == body {
				// Still inside the loop.
				cur++
				if cur >= bitutil.Mask(l.cfg.IterBits) {
					// Trip-count overflow: give up on this entry.
					l.age[idx] = 0
					return 0
				}
				if past != 0 && cur > past {
					// Ran longer than the recorded trip count.
					conf = 0
				}
			} else {
				// Loop exit observed.
				if past != 0 && cur+1 == past {
					if conf < 3 {
						conf++
					}
				} else {
					past = cur + 1
					conf = 0
				}
				cur = 0
			}
			if l.age[idx] < 255 {
				l.age[idx]++
			}
			return l.packRow(tag, past, cur, conf, dir, 1)
		})
		return
	}
	// Miss: allocate only for a taken branch (candidate loop-body
	// branch), replacing the youngest way.
	if !taken {
		return
	}
	victim, victimAge := 0, uint8(255)
	for w := 0; w < int(l.cfg.Ways); w++ {
		idx := l.rowIdx(s.set, w)
		if l.age[idx] < victimAge {
			victim, victimAge = w, l.age[idx]
		}
	}
	idx := l.rowIdx(s.set, victim)
	// dir=1: body taken, exit not-taken (the common loop shape). The
	// first iteration has already executed, hence cur=1.
	l.rows.Set(d, idx, l.packRow(s.tag, 0, 1, 0, 1, 1))
	l.age[idx] = 1
}

// FlushAll implements core.Flusher.
//
//bpvet:hotpath
func (l *LoopPredictor) FlushAll() {
	l.rows.FlushAll()
	for i := range l.age {
		l.age[i] = 0
	}
}

// FlushThread implements core.Flusher. Ages reset with the rows so the
// flushed sets are allocatable again.
//
//bpvet:hotpath
func (l *LoopPredictor) FlushThread(t core.HWThread) {
	l.rows.FlushThread(t)
	for i := range l.age {
		l.age[i] = 0
	}
}

// Snapshot writes the rows and age metadata.
func (l *LoopPredictor) Snapshot(w *snap.Writer) {
	l.rows.Snapshot(w)
	w.U8s(l.age)
}

// Restore replaces the rows and age metadata.
func (l *LoopPredictor) Restore(r *snap.Reader) {
	l.rows.Restore(r)
	r.U8sInto(l.age)
}

// Entries reports the row count (for the Precise Flush walk cost model).
func (l *LoopPredictor) Entries() uint64 { return l.rows.Len() }

// StorageBits reports row payload plus age metadata.
func (l *LoopPredictor) StorageBits() uint64 {
	return l.rows.StorageBits() + 8*uint64(len(l.age))
}
