package tage

import (
	"testing"

	"xorbp/internal/core"
	"xorbp/internal/rng"
)

func ctrl(m core.Mechanism) *core.Controller {
	return core.NewController(core.OptionsFor(m), 1)
}

func d(t core.HWThread) core.Domain { return core.Domain{Thread: t, Priv: core.User} }

func train(p *TAGE, dom core.Domain, pc uint64, taken bool, n int) {
	for i := 0; i < n; i++ {
		p.Predict(dom, pc)
		p.Update(dom, pc, taken)
	}
}

func TestLearnsBiasedBranch(t *testing.T) {
	for _, m := range []core.Mechanism{core.Baseline, core.NoisyXOR} {
		p := New(FPGAConfig(), ctrl(m))
		train(p, d(0), 0x400100, true, 10)
		if !p.Predict(d(0), 0x400100) {
			t.Errorf("%v: biased branch not learned", m)
		}
	}
}

func TestLearnsLongPeriodPattern(t *testing.T) {
	// A periodic pattern of length 24 exceeds gshare-scale histories but
	// fits comfortably within TAGE's 27/44-bit tables.
	p := New(FPGAConfig(), ctrl(core.Baseline))
	pattern := make([]bool, 24)
	for i := range pattern {
		pattern[i] = i%5 == 0 || i%7 == 0
	}
	step := 0
	for i := 0; i < 6000; i++ {
		taken := pattern[step%len(pattern)]
		step++
		p.Predict(d(0), 0x400200)
		p.Update(d(0), 0x400200, taken)
	}
	correct := 0
	for i := 0; i < 1000; i++ {
		taken := pattern[step%len(pattern)]
		step++
		if p.Predict(d(0), 0x400200) == taken {
			correct++
		}
		p.Update(d(0), 0x400200, taken)
	}
	if correct < 950 {
		t.Fatalf("period-24 accuracy %d/1000, want >=950", correct)
	}
}

func TestBeatsGshareStyleOnCorrelation(t *testing.T) {
	// Sanity: TAGE must capture a long-range correlation: branch B equals
	// the outcome of branch A 20 dynamic branches earlier, with 19 noisy
	// branches between them.
	p := New(FPGAConfig(), ctrl(core.Baseline))
	g := rng.NewXoshiro256(9)
	window := make([]bool, 0, 32)
	correctB := 0
	totalB := 0
	for i := 0; i < 30000; i++ {
		// Branch A: random.
		a := g.Bool(0.5)
		p.Predict(d(0), 0x400100)
		p.Update(d(0), 0x400100, a)
		window = append(window, a)

		// 19 noise branches, each biased taken.
		for j := 0; j < 19; j++ {
			pc := 0x500000 + uint64(j)*4
			p.Predict(d(0), pc)
			p.Update(d(0), pc, true)
		}

		// Branch B repeats A's outcome.
		b := a
		got := p.Predict(d(0), 0x400400)
		if i > 20000 {
			totalB++
			if got == b {
				correctB++
			}
		}
		p.Update(d(0), 0x400400, b)
	}
	acc := float64(correctB) / float64(totalB)
	if acc < 0.9 {
		t.Fatalf("correlated-branch accuracy %.3f, want >=0.9", acc)
	}
}

func TestKeyRotationForcesRetrain(t *testing.T) {
	c := ctrl(core.NoisyXOR)
	p := New(FPGAConfig(), c)
	pc := uint64(0x400300)
	train(p, d(0), pc, true, 50)
	if !p.Predict(d(0), pc) {
		t.Fatal("training failed")
	}
	c.ContextSwitch(0)
	train(p, d(0), pc, true, 30)
	if !p.Predict(d(0), pc) {
		t.Fatal("did not recover after key rotation")
	}
}

func TestCompleteFlushResets(t *testing.T) {
	c := ctrl(core.CompleteFlush)
	p := New(FPGAConfig(), c)
	train(p, d(0), 0x400400, true, 100)
	c.ContextSwitch(0)
	// Fresh state: train the opposite direction quickly.
	train(p, d(0), 0x400400, false, 10)
	if p.Predict(d(0), 0x400400) {
		t.Fatal("trained state survived a complete flush")
	}
}

func TestPerThreadHistoryIsolation(t *testing.T) {
	p := New(FPGAConfig(), ctrl(core.Baseline))
	p.Predict(d(0), 0x100)
	p.Update(d(0), 0x100, true)
	h0 := p.threads[0].hist.Low(8)
	p.Predict(d(1), 0x200)
	p.Update(d(1), 0x200, true)
	if p.threads[0].hist.Low(8) != h0 {
		t.Fatal("thread 1 update disturbed thread 0's history")
	}
}

func TestStorageBitsPositive(t *testing.T) {
	p := New(LTAGEConfig(), ctrl(core.Baseline))
	// 32 KB ballpark: between 24 KB and 40 KB.
	kb := float64(p.StorageBits()) / 8192
	if kb < 24 || kb > 40 {
		t.Fatalf("LTAGE storage %.1f KB, want ~32 KB", kb)
	}
}

func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("inconsistent config did not panic")
		}
	}()
	New(Config{TableBits: []uint{10}, TagBits: []uint{8, 8}, HistLengths: []uint{5}}, ctrl(core.Baseline))
}

func TestDeterminism(t *testing.T) {
	run := func() int {
		p := New(LTAGEConfig(), ctrl(core.NoisyXOR))
		correct := 0
		g := rng.NewXoshiro256(4)
		for i := 0; i < 3000; i++ {
			pc := uint64(0x400000 + (i%71)*4)
			taken := g.Bool(0.6)
			if p.Predict(d(0), pc) == taken {
				correct++
			}
			p.Update(d(0), pc, taken)
		}
		return correct
	}
	if run() != run() {
		t.Fatal("TAGE simulation is not deterministic")
	}
}

func TestLoopPredictorLearnsTripCount(t *testing.T) {
	// An LTAGE must predict a fixed-trip-count loop exit once the loop
	// predictor's confidence saturates: 37 taken iterations then one
	// not-taken, repeatedly.
	p := New(LTAGEConfig(), ctrl(core.Baseline))
	pc := uint64(0x400500)
	runLoop := func(record bool) (exitRight, exits int) {
		for rep := 0; rep < 40; rep++ {
			for it := 0; it < 37; it++ {
				p.Predict(d(0), pc)
				p.Update(d(0), pc, true)
			}
			got := p.Predict(d(0), pc)
			if record {
				exits++
				if got == false {
					exitRight++
				}
			}
			p.Update(d(0), pc, false)
		}
		return
	}
	runLoop(false) // warm
	right, total := runLoop(true)
	if right < total*9/10 {
		t.Fatalf("loop exits predicted %d/%d, want >=90%%", right, total)
	}
}

func TestLoopPredictorCrossDomainInvisible(t *testing.T) {
	// A confident loop entry trained by thread 0 must not provide
	// predictions to thread 1 under XOR encoding.
	c := ctrl(core.XOR)
	lp := NewLoopPredictor(*DefaultLoopConfig(), c)
	var s loopScratch
	pc := uint64(0x400600)
	for rep := 0; rep < 10; rep++ {
		for it := 0; it < 5; it++ {
			lp.Predict(d(0), pc, &s)
			lp.Update(d(0), pc, true, &s)
		}
		lp.Predict(d(0), pc, &s)
		lp.Update(d(0), pc, false, &s)
	}
	if _, ok := lp.Predict(d(0), pc, &s); !ok {
		t.Fatal("loop entry did not become confident for its owner")
	}
	if _, ok := lp.Predict(d(1), pc, &s); ok {
		t.Fatal("cross-domain loop entry visible under XOR")
	}
}

func TestLoopPredictorFlush(t *testing.T) {
	c := ctrl(core.CompleteFlush)
	lp := NewLoopPredictor(*DefaultLoopConfig(), c)
	var s loopScratch
	pc := uint64(0x400700)
	for rep := 0; rep < 10; rep++ {
		for it := 0; it < 5; it++ {
			lp.Predict(d(0), pc, &s)
			lp.Update(d(0), pc, true, &s)
		}
		lp.Predict(d(0), pc, &s)
		lp.Update(d(0), pc, false, &s)
	}
	lp.FlushAll()
	if _, ok := lp.Predict(d(0), pc, &s); ok {
		t.Fatal("loop entry survived flush")
	}
}

func TestAllocationSpreadsAcrossTables(t *testing.T) {
	// After training many conflicting patterns, at least one longer table
	// must hold allocated (nonzero) entries.
	p := New(FPGAConfig(), ctrl(core.Baseline))
	g := rng.NewXoshiro256(3)
	for i := 0; i < 20000; i++ {
		pc := uint64(0x400000 + (i%97)*4)
		p.Predict(d(0), pc)
		p.Update(d(0), pc, g.Bool(0.5))
	}
	nonzero := 0
	for i := 1; i < p.nTab; i++ {
		for idx := uint64(0); idx < p.tabs[i].arr.Len(); idx++ {
			if p.tabs[i].arr.Get(d(0), idx) != 0 {
				nonzero++
			}
		}
	}
	if nonzero == 0 {
		t.Fatal("no allocations reached the longer-history tables")
	}
}
