package cpu

import (
	"reflect"
	"testing"

	"xorbp/internal/core"
	"xorbp/internal/gshare"
	"xorbp/internal/perceptron"
	"xorbp/internal/predictor"
	"xorbp/internal/tage"
	"xorbp/internal/tagescl"
	"xorbp/internal/tournament"
	"xorbp/internal/workload"
)

// The equivalence suite: the fast engine must be byte-identical to the
// reference stepper — same cycle counts, same per-thread statistics,
// same controller event counts, same BTB hit rate — for every isolation
// mechanism, every predictor, and every SMT arrangement. This is the
// repo's determinism guarantee extended across engines: cached results
// computed by either engine are interchangeable.

// allMechanisms are the five §4/§5 configurations.
var allMechanisms = []core.Mechanism{
	core.Baseline, core.CompleteFlush, core.PreciseFlush, core.XOR, core.NoisyXOR,
}

// allPredictors names every direction predictor the experiments build.
var allPredictors = []string{"gshare", "perceptron", "tournament", "ltage", "tage_sc_l", "tage"}

func newPred(name string, ctrl *core.Controller) predictor.DirPredictor {
	switch name {
	case "gshare":
		return gshare.New(gshare.Gem5Config(), ctrl)
	case "perceptron":
		return perceptron.New(perceptron.DefaultConfig(), ctrl)
	case "tournament":
		return tournament.New(tournament.Gem5Config(), ctrl)
	case "ltage":
		return tage.New(tage.LTAGEConfig(), ctrl)
	case "tage_sc_l":
		return tagescl.New(tagescl.Gem5Config(), ctrl)
	case "tage":
		return tage.New(tage.FPGAConfig(), ctrl)
	}
	panic("unknown predictor " + name)
}

// snapshot captures every architecture-visible output of a simulation.
type snapshot struct {
	Elapsed  uint64
	Cycle    uint64
	RR       int
	Threads  [][]ThreadStats
	Active   [][]uint64
	Kernels  []ThreadStats
	Ctx      uint64
	Priv     uint64
	Flushes  uint64
	Rot      uint64
	BTBHit   float64
	BTBOcc   int
	StallEnd []uint64
}

func capture(c *Core, elapsed uint64) snapshot {
	s := snapshot{
		Elapsed: elapsed,
		Cycle:   c.cycle,
		RR:      c.rr,
		BTBHit:  c.BTBUnit().HitRate(),
		BTBOcc:  c.BTBUnit().OccupancyOf(0),
	}
	s.Ctx, s.Priv, s.Flushes, s.Rot = c.Controller().Stats()
	for _, hc := range c.hw {
		var stats []ThreadStats
		var act []uint64
		for _, t := range hc.sw {
			stats = append(stats, t.stats)
			act = append(act, t.activeCycles)
		}
		s.Threads = append(s.Threads, stats)
		s.Active = append(s.Active, act)
		s.Kernels = append(s.Kernels, hc.kernel.stats)
		s.StallEnd = append(s.StallEnd, hc.stallUntil)
	}
	return s
}

// arrangement is one core/workload shape of the evaluation.
type arrangement struct {
	name    string
	cfg     Config
	timer   uint64
	names   []string
	warm    uint64
	measure uint64
	total   bool // RunTotalInstructions (the SMT measurement)
}

func arrangements() []arrangement {
	return []arrangement{
		{"single", FPGAConfig(), 30_000, []string{"gcc", "calculix"}, 60_000, 150_000, false},
		{"smt2", Gem5Config(2), 40_000, []string{"zeusmp", "lbm"}, 100_000, 250_000, true},
		{"smt4", Gem5Config(4), 50_000, []string{"zeusmp", "lbm", "bwaves", "milc"}, 120_000, 300_000, true},
	}
}

// simulate runs one cell under the given engine and snapshots it,
// following the experiment runner's warmup / reset / measure shape.
func simulate(t *testing.T, a arrangement, m core.Mechanism, pred string, e Engine) snapshot {
	t.Helper()
	ctrl := core.NewController(core.OptionsFor(m), 42)
	dir := newPred(pred, ctrl)
	c := New(a.cfg, DefaultScheduler(a.timer), ctrl, dir)
	c.SetEngine(e)
	var progs []workload.Program
	for i, n := range a.names {
		progs = append(progs, workload.NewGenerator(workload.MustByName(n), uint64(1000+i)))
	}
	c.Assign(progs...)
	var elapsed uint64
	if a.total {
		c.RunTotalInstructions(a.warm)
		c.ResetStats()
		elapsed = c.RunTotalInstructions(a.measure)
	} else {
		c.RunTargetInstructions(a.warm)
		c.ResetStats()
		elapsed = c.RunTargetInstructions(a.measure)
	}
	return capture(c, elapsed)
}

// TestFastEngineEquivalence sweeps mechanism x predictor x SMT
// arrangement and asserts the fast engine reproduces the reference
// stepper exactly. -short trims the grid to the corner cases that
// exercise every skip path (flush mechanisms stall hardest, gshare/tage
// cover both core configs).
func TestFastEngineEquivalence(t *testing.T) {
	mechs := allMechanisms
	preds := allPredictors
	if testing.Short() {
		mechs = []core.Mechanism{core.Baseline, core.CompleteFlush, core.NoisyXOR}
		preds = []string{"gshare", "tage"}
	}
	for _, a := range arrangements() {
		for _, m := range mechs {
			for _, pred := range preds {
				name := a.name + "/" + m.String() + "/" + pred
				t.Run(name, func(t *testing.T) {
					ref := simulate(t, a, m, pred, EngineReference)
					fast := simulate(t, a, m, pred, EngineFast)
					if !reflect.DeepEqual(ref, fast) {
						t.Fatalf("fast engine diverged from reference:\nref:  %+v\nfast: %+v", ref, fast)
					}
				})
			}
		}
	}
}
