package cpu

import (
	"fmt"
	"testing"

	"xorbp/internal/core"
	"xorbp/internal/workload"
)

// benchEngine measures end-to-end simulated-instruction throughput for
// one engine on the Figure-1 cell shape (FPGA core, tage, time-shared
// pair) under a given mechanism. b.N counts simulated instructions, so
// ns/op is ns per simulated instruction.
func benchEngine(b *testing.B, m core.Mechanism, e Engine) {
	ctrl := core.NewController(core.OptionsFor(m), 1)
	dir := newPred("tage", ctrl)
	c := New(FPGAConfig(), DefaultScheduler(1_000_000), ctrl, dir)
	c.SetEngine(e)
	c.Assign(
		workload.NewGenerator(workload.MustByName("gcc"), 1000),
		workload.NewGenerator(workload.MustByName("calculix"), 1001),
	)
	c.RunTargetInstructions(200_000) // warm tables and rings
	b.ReportAllocs()
	b.ResetTimer()
	c.RunTargetInstructions(uint64(b.N))
}

// BenchmarkEngines compares the fast engine against the reference
// stepper per mechanism on the single-core Figure-1 cell.
func BenchmarkEngines(b *testing.B) {
	for _, m := range []core.Mechanism{core.Baseline, core.CompleteFlush, core.NoisyXOR} {
		for _, e := range []Engine{EngineReference, EngineFast} {
			name := "reference"
			if e == EngineFast {
				name = "fast"
			}
			b.Run(fmt.Sprintf("%s/%s", m, name), func(b *testing.B) {
				benchEngine(b, m, e)
			})
		}
	}
}
