package cpu

import (
	"reflect"
	"testing"

	"xorbp/internal/core"
	"xorbp/internal/gshare"
	"xorbp/internal/predictor"
	"xorbp/internal/tage"
	"xorbp/internal/workload"
)

// Targeted fast-forward edge cases: scripted event streams place timer
// interrupts, stall expiries and goal crossings exactly on the
// boundaries the skip arithmetic clamps to, and each case asserts the
// fast engine lands on the reference cycle.

// scripted is a minimal looping Program. It deliberately does NOT
// implement workload.BatchProgram, so these tests also exercise the
// Batched single-Next adapter path of the event ring.
type scripted struct {
	name string
	evs  []workload.BranchEvent
	pos  int
}

func (s *scripted) Name() string { return s.name }

func (s *scripted) Next(ev *workload.BranchEvent) {
	*ev = s.evs[s.pos%len(s.evs)]
	s.pos++
}

// buildScripted wires a single-context FPGA core around fresh copies of
// the scripted programs.
func buildScripted(m core.Mechanism, timer uint64, e Engine, progs ...workload.Program) *Core {
	ctrl := core.NewController(core.OptionsFor(m), 7)
	dir := tage.New(tage.FPGAConfig(), ctrl)
	c := New(FPGAConfig(), DefaultScheduler(timer), ctrl, dir)
	c.SetEngine(e)
	c.Assign(progs...)
	return c
}

// compareEngines runs the same scenario under both engines and asserts
// identical snapshots; build must construct a fresh, identical core per
// call.
func compareEngines(t *testing.T, build func(Engine) *Core, run func(*Core) uint64) (snapshot, snapshot) {
	t.Helper()
	cr := build(EngineReference)
	er := run(cr)
	cf := build(EngineFast)
	ef := run(cf)
	sr, sf := capture(cr, er), capture(cf, ef)
	if !reflect.DeepEqual(sr, sf) {
		t.Fatalf("fast engine diverged from reference:\nref:  %+v\nfast: %+v", sr, sf)
	}
	return sr, sf
}

// TestTimerLandsMidGap forces timer interrupts to land inside long
// instruction gaps: a 3001-cycle timer against events whose gaps span
// thousands of fetch groups means nearly every interrupt preempts a gap
// mid-flight, and the partially-consumed gap must resume afterwards.
func TestTimerLandsMidGap(t *testing.T) {
	mkProg := func(name string, gap uint16) workload.Program {
		return &scripted{name: name, evs: []workload.BranchEvent{
			{PC: 0x1000, Target: 0x2000, Class: predictor.CondDirect, Taken: true, Gap: gap},
			{PC: 0x1100, Target: 0x1100 + 16, Class: predictor.CondDirect, Taken: false, Gap: gap / 3},
		}}
	}
	build := func(e Engine) *Core {
		return buildScripted(core.NoisyXOR, 3001, e,
			mkProg("gappy", 60000), mkProg("gappy2", 17))
	}
	compareEngines(t, build, func(c *Core) uint64 { return c.RunTargetInstructions(400_000) })
}

// TestStallExpiryOnSkippedToCycle drives a mispredict-heavy stream so
// stall windows are constant, with gaps sized so that gap skips land the
// cycle counter exactly on stall expiries and group boundaries.
func TestStallExpiryOnSkippedToCycle(t *testing.T) {
	// Alternating outcomes at one PC defeat the predictor persistently;
	// Gap values 4 and 8 are exact multiples of the FPGA fetch width, so
	// whole-gap skips end exactly where the branch group begins.
	evs := []workload.BranchEvent{
		{PC: 0x4000, Target: 0x4800, Class: predictor.CondDirect, Taken: true, Gap: 4},
		{PC: 0x4000, Target: 0x4800, Class: predictor.CondDirect, Taken: false, Gap: 8},
		{PC: 0x4100, Target: 0x4900, Class: predictor.Indirect, Taken: true, Gap: 12},
	}
	build := func(e Engine) *Core {
		return buildScripted(core.CompleteFlush, 5000, e,
			&scripted{name: "stally", evs: evs},
			&scripted{name: "stally2", evs: evs})
	}
	compareEngines(t, build, func(c *Core) uint64 { return c.RunTargetInstructions(300_000) })
}

// TestSMTRoundRobinFairnessOneWayStalled pins an SMT-2 core with one
// way in near-permanent stall (every branch mispredicts) against a way
// running pure whole-gap traffic. Arbitration must stay reference-exact
// — the stalled way's slots are burned, not donated — and both ways must
// make progress.
func TestSMTRoundRobinFairnessOneWayStalled(t *testing.T) {
	stally := func(name string) workload.Program {
		return &scripted{name: name, evs: []workload.BranchEvent{
			{PC: 0x6000, Target: 0x6800, Class: predictor.Indirect, Taken: true, Gap: 2},
			{PC: 0x6010, Target: 0x6900, Class: predictor.Indirect, Taken: true, Gap: 3},
		}}
	}
	gappy := func(name string) workload.Program {
		return &scripted{name: name, evs: []workload.BranchEvent{
			{PC: 0x7000, Target: 0x7100, Class: predictor.CondDirect, Taken: false, Gap: 4000},
		}}
	}
	build := func(e Engine) *Core {
		ctrl := core.NewController(core.OptionsFor(core.Baseline), 9)
		dir := gshare.New(gshare.Gem5Config(), ctrl)
		c := New(Gem5Config(2), DefaultScheduler(20_000), ctrl, dir)
		c.SetEngine(e)
		c.Assign(stally("stall-way"), gappy("gap-way"))
		return c
	}
	ref, _ := compareEngines(t, build, func(c *Core) uint64 { return c.RunTotalInstructions(500_000) })
	if ref.Threads[0][0].Instructions == 0 || ref.Threads[1][0].Instructions == 0 {
		t.Fatalf("an SMT way starved: %+v", ref.Threads)
	}
}

// TestRunTotalTerminationExactlyAtGoal asserts the run stops on the
// slot that crosses the goal: the overshoot is bounded by one fetch
// group, and the fast engine's cycle count matches the reference even
// when the goal lands mid-gap-skip.
func TestRunTotalTerminationExactlyAtGoal(t *testing.T) {
	// Goals chosen to land inside whole-gap skips (gap 64 = 16 FPGA
	// fetch groups) and off any group multiple.
	for _, goal := range []uint64{1, 7, 63, 64, 65, 100_003} {
		mk := func(e Engine) *Core {
			return buildScripted(core.Baseline, 50_000, e,
				&scripted{name: "wide", evs: []workload.BranchEvent{
					{PC: 0x9000, Target: 0x9100, Class: predictor.CondDirect, Taken: false, Gap: 64},
				}})
		}
		ref, _ := compareEngines(t, mk, func(c *Core) uint64 { return c.RunTotalInstructions(goal) })
		var user uint64
		for hw := range ref.Threads {
			for _, st := range ref.Threads[hw] {
				user += st.Instructions
			}
		}
		if user < goal {
			t.Fatalf("goal %d: only %d user instructions retired", goal, user)
		}
		if over := user - goal; over >= uint64(FPGAConfig().FetchWidth) {
			t.Fatalf("goal %d: overshoot %d >= one fetch group", goal, over)
		}
	}
}

// TestRunZeroInstructions: a zero-instruction run must not advance time
// under either engine.
func TestRunZeroInstructions(t *testing.T) {
	build := func(e Engine) *Core {
		return buildScripted(core.Baseline, 10_000, e,
			&scripted{name: "idle", evs: []workload.BranchEvent{
				{PC: 0xa000, Target: 0xa100, Class: predictor.CondDirect, Taken: false, Gap: 5},
			}})
	}
	ref, _ := compareEngines(t, build, func(c *Core) uint64 { return c.RunTotalInstructions(0) })
	if ref.Elapsed != 0 {
		t.Fatalf("zero-goal run advanced %d cycles", ref.Elapsed)
	}
}
