package cpu

import (
	"reflect"
	"testing"

	"xorbp/internal/core"
	"xorbp/internal/gshare"
	"xorbp/internal/predictor"
	"xorbp/internal/snap"
	"xorbp/internal/tage"
	"xorbp/internal/workload"
)

// Periodic re-key and cycle-limit edge cases: the re-key check lives at
// every fetch-group entry in the reference engine, so every fast-engine
// skip (stall burns, whole-gap groups, SMT round skips, the per-slot
// lookahead) must clamp to the next re-key cycle, and cycle-limited runs
// must stop exactly on the limit with resumable state.

// rekeyScripted builds a core over scripted programs with a periodic
// re-key on top of the mechanism's event-driven rotations.
func rekeyScripted(m core.Mechanism, rekey, timer uint64, e Engine, progs ...workload.Program) *Core {
	o := core.OptionsFor(m)
	o.RekeyPeriod = rekey
	ctrl := core.NewController(o, 7)
	dir := tage.New(tage.FPGAConfig(), ctrl)
	c := New(FPGAConfig(), DefaultScheduler(timer), ctrl, dir)
	c.SetEngine(e)
	c.Assign(progs...)
	return c
}

// TestPeriodicRekeyEquivalence sweeps re-key periods that land on and
// off fetch-group and gap-skip boundaries (primes, powers of two, a
// period shorter than the stall penalty) and asserts the fast engine is
// byte-identical to the reference stepper, including the rotation
// counters.
func TestPeriodicRekeyEquivalence(t *testing.T) {
	mkProg := func(name string, gap uint16) workload.Program {
		return &scripted{name: name, evs: []workload.BranchEvent{
			{PC: 0x1000, Target: 0x2000, Class: predictor.CondDirect, Taken: true, Gap: gap},
			{PC: 0x1100, Target: 0x1110, Class: predictor.Indirect, Taken: true, Gap: gap / 5},
			{PC: 0x1200, Target: 0x1210, Class: predictor.CondDirect, Taken: false, Gap: 3},
		}}
	}
	for _, rekey := range []uint64{13, 509, 1 << 12, 99_991} {
		build := func(e Engine) *Core {
			return rekeyScripted(core.NoisyXOR, rekey, 3001, e,
				mkProg("gappy", 6000), mkProg("chewy", 40))
		}
		ref, _ := compareEngines(t, build, func(c *Core) uint64 { return c.RunTargetInstructions(200_000) })
		if rekey < 1000 && ref.Rot == 0 {
			t.Fatalf("rekey=%d: no rotations recorded", rekey)
		}
	}
}

// TestRekeySMTPerSlotLookahead pins an SMT-4 core with heterogeneous
// ways — a persistent staller whose stall windows span timer interrupts,
// two whole-gap ways at different widths, and a dense mixed way — under
// a prime re-key period, so the per-slot lookahead path must interleave
// arithmetic slots, burned slots and re-key-carrying fetch groups within
// single rounds. Asserts byte-identical state against the reference
// stepper and that no way starves.
func TestRekeySMTPerSlotLookahead(t *testing.T) {
	stally := &scripted{name: "stall-way", evs: []workload.BranchEvent{
		{PC: 0x6000, Target: 0x6800, Class: predictor.Indirect, Taken: true, Gap: 2},
		{PC: 0x6010, Target: 0x6900, Class: predictor.Indirect, Taken: true, Gap: 3},
	}}
	wide := &scripted{name: "wide-way", evs: []workload.BranchEvent{
		{PC: 0x7000, Target: 0x7100, Class: predictor.CondDirect, Taken: false, Gap: 9000},
	}}
	narrow := &scripted{name: "narrow-way", evs: []workload.BranchEvent{
		{PC: 0x7200, Target: 0x7300, Class: predictor.CondDirect, Taken: false, Gap: 48},
	}}
	dense := &scripted{name: "dense-way", evs: []workload.BranchEvent{
		{PC: 0x7400, Target: 0x7500, Class: predictor.CondDirect, Taken: true, Gap: 2},
		{PC: 0x7410, Target: 0x7510, Class: predictor.CondDirect, Taken: false, Gap: 5},
	}}
	build := func(e Engine) *Core {
		o := core.OptionsFor(core.NoisyXOR)
		o.RekeyPeriod = 2503
		ctrl := core.NewController(o, 9)
		dir := gshare.New(gshare.Gem5Config(), ctrl)
		c := New(Gem5Config(4), DefaultScheduler(10_007), ctrl, dir)
		c.SetEngine(e)
		c.Assign(
			&scripted{name: stally.name, evs: stally.evs},
			&scripted{name: wide.name, evs: wide.evs},
			&scripted{name: narrow.name, evs: narrow.evs},
			&scripted{name: dense.name, evs: dense.evs})
		return c
	}
	ref, _ := compareEngines(t, build, func(c *Core) uint64 { return c.RunTotalInstructions(400_000) })
	for hw := range ref.Threads {
		if ref.Threads[hw][0].Instructions == 0 {
			t.Fatalf("SMT way %d starved: %+v", hw, ref.Threads)
		}
	}
}

// TestNonEncodingRekeyInert: flush mechanisms have no keys, so a
// RekeyPeriod on them normalizes away and the trajectory must be
// byte-identical to the same run without one.
func TestNonEncodingRekeyInert(t *testing.T) {
	mk := func(rekey uint64) snapshot {
		evs := []workload.BranchEvent{
			{PC: 0x4000, Target: 0x4800, Class: predictor.CondDirect, Taken: true, Gap: 24},
			{PC: 0x4100, Target: 0x4900, Class: predictor.Indirect, Taken: true, Gap: 7},
		}
		c := rekeyScripted(core.CompleteFlush, rekey, 5000, EngineFast,
			&scripted{name: "w", evs: evs})
		return capture(c, c.RunTargetInstructions(150_000))
	}
	with, without := mk(777), mk(0)
	if !reflect.DeepEqual(with, without) {
		t.Fatalf("RekeyPeriod on a flush mechanism changed the trajectory:\nwith:    %+v\nwithout: %+v", with, without)
	}
}

// TestCycleLimitedRunResumes: a run segmented across arbitrary cycle
// limits — including limits landing inside stall windows, gap skips and
// SMT rounds — must finish in exactly the state of the straight run.
func TestCycleLimitedRunResumes(t *testing.T) {
	build := func() *Core {
		evs := []workload.BranchEvent{
			{PC: 0x1000, Target: 0x2000, Class: predictor.CondDirect, Taken: true, Gap: 900},
			{PC: 0x1100, Target: 0x1110, Class: predictor.Indirect, Taken: true, Gap: 12},
		}
		return rekeyScripted(core.NoisyXOR, 997, 3001, EngineFast,
			&scripted{name: "a", evs: evs}, &scripted{name: "b", evs: evs})
	}
	const goal = 120_000
	straight := build()
	want := capture(straight, straight.RunTargetInstructions(goal))

	seg := build()
	start := seg.Cycles()
	for _, step := range []uint64{1, 2, 3, 499, 997, 1000, 4096, 10_000} {
		if _, done := seg.RunTargetInstructionsUntil(
			goal-seg.ThreadStatsOf(0, 0).Instructions, seg.Cycles()+step); done {
			break
		}
		if seg.Cycles() > start+step {
			// The limit must be landed on exactly (resumability), never
			// overshot.
			t.Fatalf("segment overshot its cycle limit: at %d, limit %d", seg.Cycles(), start+step)
		}
		start = seg.Cycles()
	}
	for {
		remaining := goal - seg.ThreadStatsOf(0, 0).Instructions
		if _, done := seg.RunTargetInstructionsUntil(remaining, seg.Cycles()+50_000); done {
			break
		}
	}
	got := capture(seg, seg.Cycles())
	want.Elapsed, got.Elapsed = 0, 0 // per-segment elapsed differs by construction
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("segmented run diverged from straight run:\nstraight:  %+v\nsegmented: %+v", want, got)
	}
	if straight.Cycles() != seg.Cycles() {
		t.Fatalf("segmented run ended on cycle %d, straight on %d", seg.Cycles(), straight.Cycles())
	}
}

// Snapshot/Restore for the scripted test program, so core-level snapshot
// tests can use the same event streams as the fast-forward edge cases.
func (s *scripted) Snapshot(w *snap.Writer) { w.U64(uint64(s.pos)) }
func (s *scripted) Restore(r *snap.Reader)  { s.pos = int(r.U64()) }

// TestCoreSnapshotRoundTrip stops a run mid-flight, snapshots, restores
// into a freshly built core, and requires (a) the restored core to
// re-snapshot byte-identically and (b) both cores to finish the
// remainder of the run in byte-identical state — under both engines,
// including across an engine swap (snapshot under fast, restore under
// reference), which is what ties the snapshot seam to the oracle.
func TestCoreSnapshotRoundTrip(t *testing.T) {
	evs := []workload.BranchEvent{
		{PC: 0x1000, Target: 0x2000, Class: predictor.CondDirect, Taken: true, Gap: 300},
		{PC: 0x1100, Target: 0x1110, Class: predictor.Indirect, Taken: true, Gap: 9},
		{PC: 0x1200, Target: 0x1210, Class: predictor.CondDirect, Taken: false, Gap: 2},
	}
	build := func(e Engine) *Core {
		return rekeyScripted(core.NoisyXOR, 1511, 2003, e,
			&scripted{name: "a", evs: evs}, &scripted{name: "b", evs: evs})
	}
	for _, engines := range [][2]Engine{
		{EngineFast, EngineFast},
		{EngineFast, EngineReference},
		{EngineReference, EngineFast},
	} {
		donor := build(engines[0])
		if !donor.Snapshottable() {
			t.Fatal("scripted core not snapshottable")
		}
		const goal, stopAt = 90_000, 20_000
		donor.RunTargetInstructionsUntil(goal, stopAt)
		w := &snap.Writer{}
		donor.Snapshot(w)
		data := w.Bytes()

		clone := build(engines[1])
		r := snap.NewReader(data)
		clone.Restore(r)
		if err := r.Err(); err != nil {
			t.Fatalf("restore: %v", err)
		}
		if r.Remaining() != 0 {
			t.Fatalf("restore left %d trailing bytes", r.Remaining())
		}
		w2 := &snap.Writer{}
		clone.Snapshot(w2)
		if string(w2.Bytes()) != string(data) {
			t.Fatalf("engines %v: restored core re-snapshots differently", engines)
		}

		dn := donor.RunTargetInstructions(goal - donor.ThreadStatsOf(0, 0).Instructions)
		cn := clone.RunTargetInstructions(goal - clone.ThreadStatsOf(0, 0).Instructions)
		ds, cs := capture(donor, dn), capture(clone, cn)
		if !reflect.DeepEqual(ds, cs) {
			t.Fatalf("engines %v: restored core diverged:\ndonor: %+v\nclone: %+v", engines, ds, cs)
		}
	}
}

// TestSnapshotRejectsMismatchedShape: restoring into a core with a
// different hardware-context count must fail via the reader error, not
// corrupt state silently or panic.
func TestSnapshotRejectsMismatchedShape(t *testing.T) {
	evs := []workload.BranchEvent{
		{PC: 0x1000, Target: 0x2000, Class: predictor.CondDirect, Taken: true, Gap: 10},
	}
	mk := func(threads int) *Core {
		o := core.OptionsFor(core.NoisyXOR)
		ctrl := core.NewController(o, 3)
		dir := gshare.New(gshare.Gem5Config(), ctrl)
		c := New(Gem5Config(threads), DefaultScheduler(5000), ctrl, dir)
		var progs []workload.Program
		for i := 0; i < threads; i++ {
			progs = append(progs, &scripted{name: "w", evs: evs})
		}
		c.Assign(progs...)
		return c
	}
	donor := mk(2)
	donor.RunTotalInstructions(10_000)
	w := &snap.Writer{}
	donor.Snapshot(w)

	clone := mk(4)
	r := snap.NewReader(w.Bytes())
	clone.Restore(r)
	if r.Err() == nil {
		t.Fatal("restore into a different core shape succeeded")
	}
}
