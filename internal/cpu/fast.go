package cpu

// This file is the event-batched fast engine: the production execution
// strategy behind RunTargetInstructions / RunTotalInstructions.
//
// The reference stepper (step, in cpu.go) advances exactly one cycle per
// call, which burns a function call — and an interface-dispatched event
// pull — on every stall cycle and every whole-gap fetch group. The fast
// engine produces the same architecture-visible trajectory while
// advancing time arithmetically through the windows where nothing can
// happen:
//
//   - Stall windows (misprediction penalties, Precise-Flush walks): no
//     fetch occurs until stallUntil, so the cycle counter jumps there
//     directly.
//   - Whole-gap fetch groups: while a branch event's instruction gap
//     spans the full fetch width, each cycle retires FetchWidth gap
//     instructions and touches no predictor, scheduler or RNG state, so
//     the whole run of groups collapses into arithmetic.
//
// Every skip is clamped so scheduling semantics are unchanged:
//
//   - to the next timer interrupt (checked at every user-mode fetch-group
//     boundary in the reference engine),
//   - to the next periodic re-key (checked at every fetch-group entry in
//     the reference engine),
//   - to SMT arbitration boundaries — multi-context cores skip whole
//     round-robin rounds while every context's own slots are provably
//     burns or whole-gap groups, and otherwise apply the classification
//     slot-by-slot within one round (per-slot lookahead): stalled and
//     whole-gap slots advance arithmetically, only genuinely interesting
//     slots enter the fetch-group path,
//   - to the caller's cycle limit (the snapshot/fork stop point), landing
//     exactly on the requested cycle,
//   - to the instruction goal, stopping short of the crossing group so
//     the loop terminates on exactly the reference cycle.
//
// The equivalence suite (equiv_test.go) asserts byte-identical
// ThreadStats, cycle counts and controller statistics against the
// reference stepper across every mechanism x predictor x SMT
// arrangement.

// Engine selects the core's execution strategy.
type Engine int

const (
	// EngineFast is the default production engine described above.
	EngineFast Engine = iota
	// EngineReference is the naive one-call-per-cycle stepper kept as
	// the oracle the fast engine is verified against.
	EngineReference
)

// SetEngine selects the execution engine (EngineFast by default).
func (c *Core) SetEngine(e Engine) { c.engine = e }

// EngineInUse reports the selected execution engine.
func (c *Core) EngineInUse() Engine { return c.engine }

// fastRun1 is the devirtualized single-hardware-context loop: no
// round-robin arbitration (the modulo and the per-cycle context lookup
// of step() disappear), stall windows and whole-gap groups fast-forward
// arithmetically, and the remaining "interesting" cycles run one
// reference-identical fetch group each.
//
// targetOnly selects the termination rule: true stops when hardware
// context 0's software thread 0 has retired `limit` total instructions
// (RunTargetInstructions); false stops when `limit` user instructions
// have retired across all threads since the call (RunTotalInstructions).
// cycLimit additionally stops the run when the global cycle counter
// reaches it (NoCycleLimit disables); every fast-forward is clamped to
// land exactly on it. Returns the user instructions retired since the
// call.
//
//bpvet:hotpath
func (c *Core) fastRun1(targetOnly bool, limit, cycLimit uint64) uint64 {
	hc := c.hw[0]
	fw := uint64(c.cfg.FetchWidth)
	target := hc.sw[0]
	var done uint64
	for {
		if targetOnly {
			if target.stats.Instructions >= limit {
				return done
			}
		} else if done >= limit {
			return done
		}
		if c.cycle >= cycLimit {
			return done
		}

		// Stall fast-forward: the reference engine burns one step per
		// stalled cycle with no state change beyond the cycle counter and
		// the scheduled thread's attribution; jump to the cycle fetch
		// resumes on. Timer interrupts and re-keys cannot fire mid-stall
		// (they are taken at fetch-group boundaries only), so only the
		// cycle limit clamps the jump.
		if s := hc.stallUntil; s > c.cycle+1 {
			burn := s - c.cycle - 1
			if lim := cycLimit - c.cycle; burn > lim {
				burn = lim
			}
			c.cycle += burn
			hc.sw[hc.cur].activeCycles += burn
			continue
		}

		// Gap fast-forward: while the pending event's gap covers the full
		// fetch width, each cycle is a whole-gap group — FetchWidth
		// instructions retire and nothing else happens. Clamped to the
		// timer (due interrupts preempt the group in user mode), to the
		// next re-key (each skipped cycle is a fetch-group entry in the
		// reference engine, where the re-key check lives), to the cycle
		// limit, and to the instruction goal (the crossing group must
		// execute normally so the run ends on the reference cycle).
		if hc.kernelLeft > 0 || c.cycle+1 < hc.nextTimer {
			t := hc.active()
			if !t.evLoaded {
				t.load()
			}
			if uint64(t.gapLeft) >= fw {
				groups := uint64(t.gapLeft) / fw
				if hc.kernelLeft == 0 {
					if lim := hc.nextTimer - c.cycle - 1; groups > lim {
						groups = lim
					}
				}
				if c.rekeyPeriod != 0 {
					if c.nextRekey <= c.cycle+1 {
						groups = 0
					} else if lim := c.nextRekey - c.cycle - 1; groups > lim {
						groups = lim
					}
				}
				if lim := cycLimit - c.cycle; groups > lim {
					groups = lim
				}
				if targetOnly {
					if t == target {
						if maxG := (limit - target.stats.Instructions - 1) / fw; groups > maxG {
							groups = maxG
						}
					}
				} else if !t.kernel {
					if maxG := (limit - done - 1) / fw; groups > maxG {
						groups = maxG
					}
				}
				if groups > 0 {
					inst := groups * fw
					c.cycle += groups
					hc.sw[hc.cur].activeCycles += groups
					t.gapLeft -= int(inst)
					t.stats.Instructions += inst
					if !t.kernel {
						done += inst
					}
					continue
				}
			}
		}

		// One reference step, inlined for the single context.
		c.cycle++
		hc.sw[hc.cur].activeCycles++
		if hc.stallUntil > c.cycle {
			continue
		}
		done += c.fetchGroup(hc)
	}
}

// fastRunN is the SMT loop. Slots are processed in the reference
// round-robin order; whenever every context's upcoming own-slots are
// arbitration-neutral — burned by a stall or consumed by whole-gap fetch
// groups — whole rounds are skipped at once. A round is len(hw) cycles
// with the round-robin pointer back where it started, so skipping whole
// rounds cannot change which context fetches on which cycle. When the
// whole-round skip does not apply (some context's next own-slot is
// interesting), the classification is consumed slot-by-slot over one
// round instead of being discarded: stalled and whole-gap slots advance
// arithmetically and only the interesting slots enter fetchGroup — the
// per-slot lookahead. One classification pass per round amortizes to
// constant overhead per slot, so no cool-off rate limiting is needed.
// Returns the user instructions retired since the call.
//
//bpvet:hotpath
func (c *Core) fastRunN(targetOnly bool, limit, cycLimit uint64) uint64 {
	nhw := uint64(len(c.hw))
	fw := uint64(c.cfg.FetchWidth)
	target := c.hw[0].sw[0]
	var done uint64
	for {
		if targetOnly {
			if target.stats.Instructions >= limit {
				return done
			}
		} else if done >= limit {
			return done
		}
		if c.cycle >= cycLimit {
			return done
		}

		// Classify each context's next own-slot window, head context
		// first: context at round-robin offset o fetches on cycles
		// first+o, first+o+nhw, ... A context's window is the number of
		// consecutive own-slots that are provably uniform (all stall
		// burns, or all whole-gap groups); the skippable round count is
		// the minimum over contexts. The full mask is always computed:
		// even when some context contributes zero rounds, the per-slot
		// pass below consumes the other contexts' classifications.
		rounds := ^uint64(0)
		var gapping uint64 // bitmask over offsets of gap-consuming contexts
		perRoundDone := uint64(0)
		perRoundTarget := uint64(0)
		for o := uint64(0); o < nhw; o++ {
			hc := c.hw[(uint64(c.rr)+o)%nhw]
			first := c.cycle + 1 + o
			var n uint64
			switch {
			case hc.stallUntil > first:
				// Burned slots: all own-slots strictly before stallUntil.
				n = (hc.stallUntil - first + nhw - 1) / nhw
			case hc.kernelLeft == 0 && first >= hc.nextTimer:
				// Next slot takes the timer interrupt: interesting.
			default:
				t := hc.active()
				if !t.evLoaded {
					t.load()
				}
				if uint64(t.gapLeft) >= fw {
					n = uint64(t.gapLeft) / fw
					if hc.kernelLeft == 0 {
						// Slots at cycles <= nextTimer-1 fetch; later ones
						// would take the interrupt instead.
						if lim := (hc.nextTimer-1-first)/nhw + 1; n > lim {
							n = lim
						}
					}
					if n > 0 {
						gapping |= 1 << o
						if !t.kernel {
							perRoundDone += fw
							if t == target {
								perRoundTarget = fw
							}
						}
					}
				}
			}
			if n < rounds {
				rounds = n
			}
		}

		// Re-key clamp: skipped gap slots are fetch-group entries in the
		// reference engine, where the re-key check lives; a pending
		// re-key must be reached at reference granularity.
		if rounds > 0 && c.rekeyPeriod != 0 {
			if c.nextRekey <= c.cycle+1 {
				rounds = 0
			} else if lim := (c.nextRekey - 1 - c.cycle) / nhw; rounds > lim {
				rounds = lim
			}
		}
		// Cycle-limit clamp: land exactly on the requested stop cycle.
		if rounds > 0 {
			if lim := (cycLimit - c.cycle) / nhw; rounds > lim {
				rounds = lim
			}
		}

		// Goal clamp: stop short of the crossing round so the final,
		// crossing slot executes at reference granularity.
		if rounds > 0 {
			if targetOnly {
				if perRoundTarget > 0 {
					if maxR := (limit - target.stats.Instructions - 1) / perRoundTarget; rounds > maxR {
						rounds = maxR
					}
				}
			} else if perRoundDone > 0 {
				if maxR := (limit - done - 1) / perRoundDone; rounds > maxR {
					rounds = maxR
				}
			}
		}

		// Bulk path: apply whole rounds at once when the skip pays for
		// its own bookkeeping; a one-round skip costs about as much as
		// the per-slot pass below, which handles it instead.
		if rounds >= 2 {
			for o := uint64(0); o < nhw; o++ {
				if gapping&(1<<o) == 0 {
					continue
				}
				t := c.hw[(uint64(c.rr)+o)%nhw].active()
				inst := rounds * fw
				t.gapLeft -= int(inst)
				t.stats.Instructions += inst
				if !t.kernel {
					done += inst
				}
			}
			c.cycle += rounds * nhw
			continue
		}

		// Per-slot lookahead over one round: context at offset o fetches
		// at exactly the cycle its classification examined, and earlier
		// slots in the round belong to other contexts, whose fetch groups
		// cannot alter this context's scheduling state or event stream —
		// so a gapping bit is still valid when its slot arrives. A
		// classified whole-gap slot applies arithmetically (exactly what
		// fetchGroup would do: FetchWidth gap instructions retire, nothing
		// else) unless a re-key is due at that cycle, which must go
		// through fetchGroup where the re-key check lives. Stalled slots
		// burn as in step(); everything else runs the reference group.
		for o := uint64(0); o < nhw; o++ {
			if targetOnly {
				if target.stats.Instructions >= limit {
					return done
				}
			} else if done >= limit {
				return done
			}
			if c.cycle >= cycLimit {
				return done
			}
			c.cycle++
			hc := c.hw[c.rr]
			c.rr++
			if c.rr == int(nhw) {
				c.rr = 0
			}
			if hc.stallUntil > c.cycle {
				continue
			}
			if gapping&(1<<o) != 0 && (c.rekeyPeriod == 0 || c.cycle < c.nextRekey) {
				t := hc.active()
				if t.evLoaded && uint64(t.gapLeft) >= fw {
					t.gapLeft -= int(fw)
					t.stats.Instructions += fw
					if !t.kernel {
						done += fw
					}
					continue
				}
			}
			done += c.fetchGroup(hc)
		}
	}
}
