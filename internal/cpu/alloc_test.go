package cpu

import (
	"testing"

	"xorbp/internal/core"
	"xorbp/internal/predictor"
	"xorbp/internal/workload"
)

// These guards are the runtime counterpart of the bpvet hotpath
// analyzer: every function marked //bpvet:hotpath must be alloc-free in
// steady state, and these tests measure that the annotated closures of
// functions — both simulation engines and each predictor's
// predict/update path — actually allocate nothing once the per-thread
// lazy state (//bpvet:coldinit) has been touched. A regression here
// means an annotation lies or an inline budget broke; fix the code (or
// the annotation), not the test.

// warmCore builds the Figure-1 cell (FPGA core, time-shared pair) for
// one predictor and engine and runs it past all cold-start allocation:
// generator buffers, event rings, lazy per-thread predictor state.
func warmCore(t testing.TB, pred string, e Engine) *Core {
	t.Helper()
	ctrl := core.NewController(core.OptionsFor(core.NoisyXOR), 7)
	dir := newPred(pred, ctrl)
	c := New(FPGAConfig(), DefaultScheduler(1_000_000), ctrl, dir)
	c.SetEngine(e)
	c.Assign(
		workload.NewGenerator(workload.MustByName("gcc"), 2000),
		workload.NewGenerator(workload.MustByName("calculix"), 2001),
	)
	c.RunTargetInstructions(200_000)
	return c
}

// TestEnginesSteadyStateAllocFree pins zero allocations per simulated
// chunk for both engines across every predictor the experiments build.
func TestEnginesSteadyStateAllocFree(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc guards need full warmup")
	}
	for _, pred := range allPredictors {
		for _, e := range []Engine{EngineReference, EngineFast} {
			name := pred + "/reference"
			if e == EngineFast {
				name = pred + "/fast"
			}
			t.Run(name, func(t *testing.T) {
				c := warmCore(t, pred, e)
				avg := testing.AllocsPerRun(10, func() {
					c.RunTargetInstructions(20_000)
				})
				if avg != 0 {
					t.Errorf("steady-state run allocates %.1f objects per 20k-instruction chunk, want 0", avg)
				}
			})
		}
	}
}

// TestPredictorPathsAllocFree exercises each predictor's fused
// PredictUpdate directly (the call the engines dispatch per conditional
// branch), bypassing the core, so an allocation is attributable to the
// predictor itself rather than the fetch loop around it.
func TestPredictorPathsAllocFree(t *testing.T) {
	for _, name := range allPredictors {
		t.Run(name, func(t *testing.T) {
			ctrl := core.NewController(core.OptionsFor(core.NoisyXOR), 9)
			dir := newPred(name, ctrl)
			pu, ok := dir.(predictor.PredictUpdater)
			if !ok {
				t.Fatalf("%s does not implement PredictUpdater", name)
			}
			d := core.Domain{Thread: 0, Priv: core.User}
			// Warm the lazy per-thread state and fill the tables.
			pc := uint64(0x4000)
			for i := 0; i < 50_000; i++ {
				pc = 0x4000 + uint64(i%257)*16
				pu.PredictUpdate(d, pc, i%3 != 0)
			}
			i := 0
			avg := testing.AllocsPerRun(2000, func() {
				pc := 0x4000 + uint64(i%257)*16
				pu.PredictUpdate(d, pc, i%3 != 0)
				i++
			})
			if avg != 0 {
				t.Errorf("%s.PredictUpdate allocates %.2f objects per call, want 0", name, avg)
			}
		})
	}
}
