package cpu

import (
	"testing"

	"xorbp/internal/core"
	"xorbp/internal/gshare"
	"xorbp/internal/tage"
	"xorbp/internal/workload"
)

// build wires a core with the FPGA configuration and a given mechanism.
func build(m core.Mechanism, timerPeriod uint64, progs ...workload.Program) *Core {
	ctrl := core.NewController(core.OptionsFor(m), 42)
	dir := tage.New(tage.FPGAConfig(), ctrl)
	c := New(FPGAConfig(), DefaultScheduler(timerPeriod), ctrl, dir)
	c.Assign(progs...)
	return c
}

func progs(names ...string) []workload.Program {
	var out []workload.Program
	for i, n := range names {
		out = append(out, workload.NewGenerator(workload.MustByName(n), uint64(100+i)))
	}
	return out
}

func TestRunRetiresInstructions(t *testing.T) {
	c := build(core.Baseline, 200000, progs("gcc", "calculix")...)
	cycles := c.RunTargetInstructions(500000)
	if cycles == 0 {
		t.Fatal("no cycles elapsed")
	}
	st := c.ThreadStatsOf(0, 0)
	if st.Instructions < 500000 {
		t.Fatalf("target retired %d instructions, want >= 500000", st.Instructions)
	}
	// IPC must be positive and below the fetch width.
	ipc := float64(st.Instructions) / float64(cycles)
	if ipc <= 0.1 || ipc >= 4 {
		t.Fatalf("implausible wall IPC %.2f for a time-shared 4-wide core", ipc)
	}
}

func TestDeterministicCycles(t *testing.T) {
	run := func() uint64 {
		c := build(core.NoisyXOR, 100000, progs("gcc", "calculix")...)
		return c.RunTargetInstructions(300000)
	}
	if run() != run() {
		t.Fatal("simulation is not cycle-deterministic")
	}
}

func TestContextSwitchesHappen(t *testing.T) {
	c := build(core.Baseline, 50000, progs("gcc", "calculix")...)
	c.RunTargetInstructions(400000)
	ctx, priv, _, _ := c.Controller().Stats()
	if ctx == 0 {
		t.Fatal("no context switches despite two time-shared threads")
	}
	if priv == 0 {
		t.Fatal("no privilege switches despite syscalls and timers")
	}
	// Both threads must have made progress.
	if c.ThreadStatsOf(0, 1).Instructions == 0 {
		t.Fatal("background thread never ran")
	}
}

func TestPrivilegeSwitchesDominateContextSwitches(t *testing.T) {
	// The paper's Table 4 observation: syscall-driven privilege changes
	// far outnumber timer context switches. (Timer interrupts themselves
	// contribute two privilege changes each, so the floor is 2x; the
	// syscall traffic must lift it well beyond that.)
	c := build(core.Baseline, 1000000, progs("gcc", "calculix")...)
	c.RunTargetInstructions(6000000)
	ctx, priv, _, _ := c.Controller().Stats()
	if priv < 4*ctx {
		t.Fatalf("privilege switches (%d) should dominate context switches (%d)", priv, ctx)
	}
}

func TestKernelRunsOnSyscall(t *testing.T) {
	c := build(core.Baseline, 10000000, progs("povray", "gcc")...)
	c.RunTargetInstructions(1000000)
	if c.KernelStatsOf(0).Instructions == 0 {
		t.Fatal("kernel handler never executed")
	}
	if c.ThreadStatsOf(0, 0).Syscalls == 0 {
		t.Fatal("no syscalls recorded for a syscall-heavy benchmark")
	}
}

func TestIsolationCostsCycles(t *testing.T) {
	// Noisy-XOR must cost something relative to baseline (key rotations
	// invalidate state) but only a few percent (the paper's headline).
	base := build(core.Baseline, 500000, progs("gcc", "calculix")...)
	nxor := build(core.NoisyXOR, 500000, progs("gcc", "calculix")...)
	const warm = 2000000
	const meas = 4000000
	base.RunTargetInstructions(warm)
	nxor.RunTargetInstructions(warm)
	base.ResetStats()
	nxor.ResetStats()
	base.RunTargetInstructions(meas)
	nxor.RunTargetInstructions(meas)
	// Compare target-attributed cycles: wall time at this scale is
	// dominated by scheduler-slice quantization.
	cb := base.ThreadCyclesOf(0, 0)
	cx := nxor.ThreadCyclesOf(0, 0)
	over := float64(cx)/float64(cb) - 1
	if over < -0.01 {
		t.Fatalf("Noisy-XOR faster than baseline by %.2f%%?", -over*100)
	}
	if over > 0.15 {
		t.Fatalf("Noisy-XOR overhead %.1f%% is implausibly high", over*100)
	}
}

func TestCompleteFlushWorseThanBaselineSMT(t *testing.T) {
	mk := func(m core.Mechanism) *Core {
		ctrl := core.NewController(core.OptionsFor(m), 7)
		dir := gshare.New(gshare.Gem5Config(), ctrl)
		c := New(Gem5Config(2), DefaultScheduler(500000), ctrl, dir)
		c.Assign(progs("zeusmp", "lbm")...)
		return c
	}
	base := mk(core.Baseline)
	cf := mk(core.CompleteFlush)
	base.RunTotalInstructions(1000000)
	cf.RunTotalInstructions(1000000)
	cb := base.RunTotalInstructions(3000000)
	cc := cf.RunTotalInstructions(3000000)
	if cc <= cb {
		t.Fatalf("CompleteFlush (%d cycles) should cost more than baseline (%d)", cc, cb)
	}
}

func TestSMTSharesFetchBandwidth(t *testing.T) {
	// Two SMT threads must both retire instructions, and total throughput
	// must stay below the fetch width.
	ctrl := core.NewController(core.OptionsFor(core.Baseline), 7)
	dir := gshare.New(gshare.Gem5Config(), ctrl)
	c := New(Gem5Config(2), DefaultScheduler(500000), ctrl, dir)
	c.Assign(progs("zeusmp", "lbm")...)
	cycles := c.RunTotalInstructions(2000000)
	s0 := c.ThreadStatsOf(0, 0)
	s1 := c.ThreadStatsOf(1, 0)
	if s0.Instructions == 0 || s1.Instructions == 0 {
		t.Fatal("an SMT thread starved")
	}
	ipc := float64(s0.Instructions+s1.Instructions) / float64(cycles)
	if ipc > 8 {
		t.Fatalf("total IPC %.1f exceeds the fetch width", ipc)
	}
}

func TestStatsReset(t *testing.T) {
	c := build(core.Baseline, 100000, progs("gcc", "calculix")...)
	c.RunTargetInstructions(100000)
	c.ResetStats()
	if c.ThreadStatsOf(0, 0).Instructions != 0 {
		t.Fatal("ResetStats left instruction counts")
	}
	c.RunTargetInstructions(50000)
	if c.ThreadStatsOf(0, 0).Instructions < 50000 {
		t.Fatal("stats did not resume accumulating")
	}
}

func TestMispredictionsArePenalized(t *testing.T) {
	// A hard-to-predict workload must have lower IPC than a predictable
	// one on the same core.
	easy := build(core.Baseline, 10000000, progs("lbm", "lbm")...)
	hard := build(core.Baseline, 10000000, progs("mcf", "mcf")...)
	ce := easy.RunTargetInstructions(1000000)
	ch := hard.RunTargetInstructions(1000000)
	ipcE := 1e6 / float64(ce)
	ipcH := 1e6 / float64(ch)
	if ipcE <= ipcH {
		t.Fatalf("predictable lbm IPC %.2f should exceed mcf IPC %.2f", ipcE, ipcH)
	}
}

func TestBTBFillsUp(t *testing.T) {
	c := build(core.Baseline, 10000000, progs("gobmk", "libquantum")...)
	c.RunTargetInstructions(2000000)
	if occ := c.BTBUnit().OccupancyOf(0); occ < 100 {
		t.Fatalf("BTB occupancy %d after 2M instructions of gobmk, want > 100", occ)
	}
}

func TestMPKIComputation(t *testing.T) {
	s := ThreadStats{Instructions: 2000, DirMisp: 9}
	if got := s.MPKI(); got != 4.5 {
		t.Fatalf("MPKI = %v, want 4.5", got)
	}
	var empty ThreadStats
	if empty.MPKI() != 0 {
		t.Fatal("empty MPKI should be 0")
	}
}

func TestPanicsWithoutPrograms(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Assign with a starved context did not panic")
		}
	}()
	ctrl := core.NewController(core.OptionsFor(core.Baseline), 1)
	dir := gshare.New(gshare.Gem5Config(), ctrl)
	c := New(Gem5Config(2), DefaultScheduler(1000), ctrl, dir)
	c.Assign(progs("gcc")...) // second context starves
}
